//===- tools/qcc/Main.cpp - The qcc command-line driver -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of Quantitative CompCert: compile a C file,
/// print verified stack bounds, emit intermediate representations or
/// assembly, and run the result on a finite stack.
///
///   qcc prog.c                      # bounds for every function
///   qcc prog.c --emit-asm           # assembly listing
///   qcc prog.c --measure            # run + measured stack usage
///   qcc prog.c --stack-size 256     # run on a 256-byte stack (ASM_sz)
///   qcc prog.c -D ALEN=4096         # override a #define
///   qcc --batch dir/ --jobs 8       # verify every dir/*.c in parallel
///   qcc --batch corpus --metrics-out m.json   # the built-in corpus
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "driver/Compiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace qcc;

namespace {

void usage() {
  printf(
      "usage: qcc [options] <file.c>\n"
      "\n"
      "  -D NAME=VALUE    override an integer #define (repeatable)\n"
      "  --bounds         print verified per-function stack bounds "
      "(default)\n"
      "  --emit-clight    print the Clight core IR\n"
      "  --emit-cminor    print Cminor\n"
      "  --emit-rtl       print RTL (after optimization)\n"
      "  --emit-mach      print Mach with the frame layout\n"
      "  --emit-asm       print the x86 assembly listing\n"
      "  --emit-proof     print each automatic bound's derivation in the\n"
      "                   quantitative Hoare logic\n"
      "  --measure        run on a large stack and report consumption\n"
      "  --stack-size N   run on a finite stack of exactly N bytes\n"
      "  --inline         inline small non-recursive functions\n"
      "  --tail-calls     recognize tail calls (constant-stack loops)\n"
      "  --no-opt         disable the RTL optimizations\n"
      "  --no-validate    skip per-pass translation validation\n"
      "\n"
      "batch mode (parallel verification of many programs):\n"
      "  --batch <dir>    verify every .c file under <dir>; the literal\n"
      "                   name 'corpus' runs the built-in evaluation\n"
      "                   corpus (Tables 1/2 + section 2)\n"
      "  --jobs N         worker threads (default: all hardware threads;\n"
      "                   1 gives the serial reference run)\n"
      "  --metrics-out F  write the batch metrics report (per-pass\n"
      "                   timings, refinement event counts, proof-checker\n"
      "                   node counts, cache statistics) as JSON to F\n"
      "  -D/--inline/--tail-calls/--no-opt/--no-validate apply to every\n"
      "  program in the batch\n");
}

/// Runs batch mode: collect jobs, fan out, print a per-program table.
int runBatchMode(const std::string &BatchArg, unsigned Jobs,
                 const std::string &MetricsOut,
                 const driver::CompilerOptions &Shared) {
  std::vector<batch::BatchJob> BatchJobs;
  if (BatchArg == "corpus") {
    BatchJobs = batch::corpusJobs(Shared.ValidateTranslation);
    for (batch::BatchJob &J : BatchJobs) {
      J.Options.Defines = Shared.Defines;
      J.Options.Optimize = Shared.Optimize;
      J.Options.Inline = Shared.Inline;
      J.Options.TailCalls = Shared.TailCalls;
    }
  } else {
    std::error_code Ec;
    std::vector<std::string> Paths;
    for (const auto &Entry :
         std::filesystem::directory_iterator(BatchArg, Ec))
      if (Entry.is_regular_file() && Entry.path().extension() == ".c")
        Paths.push_back(Entry.path().string());
    if (Ec) {
      fprintf(stderr, "qcc: cannot read directory '%s': %s\n",
              BatchArg.c_str(), Ec.message().c_str());
      return 2;
    }
    std::sort(Paths.begin(), Paths.end()); // Deterministic job order.
    for (const std::string &P : Paths) {
      std::ifstream In(P);
      if (!In) {
        fprintf(stderr, "qcc: cannot open '%s'\n", P.c_str());
        return 2;
      }
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      BatchJobs.push_back({P, Buffer.str(), Shared});
    }
    if (BatchJobs.empty()) {
      fprintf(stderr, "qcc: no .c files under '%s'\n", BatchArg.c_str());
      return 2;
    }
  }

  batch::ResultCache Cache;
  batch::BatchOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cache = &Cache;
  batch::BatchResult R = batch::runBatch(BatchJobs, Opts);

  printf("%-28s %-6s %10s %10s %s\n", "program", "ok", "bound(main)",
         "t1-stack", "time");
  for (const batch::ProgramResult &P : R.Programs) {
    std::string MainBound = "-";
    for (const batch::FunctionReport &F : P.Bounds)
      if (F.Function == "main" && F.ConcreteBytes)
        MainBound = std::to_string(*F.ConcreteBytes);
    std::string T1 =
        P.Theorem1Checked
            ? std::to_string(P.Theorem1StackBytes) + (P.Theorem1Ok
                                                          ? ""
                                                          : " FAIL")
            : "-";
    printf("%-28s %-6s %10s %10s %llu us%s\n", P.Id.c_str(),
           P.Ok ? "yes" : "NO", MainBound.c_str(), T1.c_str(),
           static_cast<unsigned long long>(P.Metrics.TotalMicros),
           P.CacheHit ? " (cached)" : "");
    if (!P.Ok && !P.Diagnostics.empty())
      fprintf(stderr, "%s: %s", P.Id.c_str(), P.Diagnostics.c_str());
  }
  size_t NumOk = 0;
  for (const batch::ProgramResult &P : R.Programs)
    NumOk += P.Ok;
  printf("\n%zu/%zu ok, %u jobs, %llu us wall, cache %llu/%llu "
         "hits/misses\n",
         NumOk, R.Programs.size(), R.Jobs,
         static_cast<unsigned long long>(R.WallMicros),
         static_cast<unsigned long long>(R.Cache.Hits),
         static_cast<unsigned long long>(R.Cache.Misses));

  if (!MetricsOut.empty()) {
    std::ofstream Out(MetricsOut);
    if (!Out) {
      fprintf(stderr, "qcc: cannot write '%s'\n", MetricsOut.c_str());
      return 2;
    }
    Out << batch::metricsJson(R) << '\n';
  }
  return R.allOk() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  driver::CompilerOptions Options;
  bool EmitClight = false, EmitCminor = false, EmitRtl = false,
       EmitMach = false, EmitAsm = false, EmitProof = false,
       Bounds = false, Measure = false;
  long StackSize = -1;
  std::string BatchArg, MetricsOut;
  unsigned Jobs = 0;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-D" && I + 1 < Argc) {
      std::string Def = Argv[++I];
      size_t Eq = Def.find('=');
      if (Eq == std::string::npos) {
        fprintf(stderr, "qcc: -D expects NAME=VALUE\n");
        return 2;
      }
      Options.Defines[Def.substr(0, Eq)] =
          static_cast<uint32_t>(strtoul(Def.c_str() + Eq + 1, nullptr, 0));
    } else if (Arg.rfind("-D", 0) == 0 && Arg.find('=') != std::string::npos) {
      size_t Eq = Arg.find('=');
      Options.Defines[Arg.substr(2, Eq - 2)] =
          static_cast<uint32_t>(strtoul(Arg.c_str() + Eq + 1, nullptr, 0));
    } else if (Arg == "--emit-clight") {
      EmitClight = true;
    } else if (Arg == "--emit-cminor") {
      EmitCminor = true;
    } else if (Arg == "--emit-rtl") {
      EmitRtl = true;
    } else if (Arg == "--emit-mach") {
      EmitMach = true;
    } else if (Arg == "--emit-asm") {
      EmitAsm = true;
    } else if (Arg == "--emit-proof") {
      EmitProof = true;
    } else if (Arg == "--bounds") {
      Bounds = true;
    } else if (Arg == "--measure") {
      Measure = true;
    } else if (Arg == "--stack-size" && I + 1 < Argc) {
      StackSize = strtol(Argv[++I], nullptr, 0);
    } else if (Arg == "--inline") {
      Options.Inline = true;
    } else if (Arg == "--tail-calls") {
      Options.TailCalls = true;
    } else if (Arg == "--no-opt") {
      Options.Optimize = false;
    } else if (Arg == "--no-validate") {
      Options.ValidateTranslation = false;
    } else if (Arg == "--batch" && I + 1 < Argc) {
      BatchArg = Argv[++I];
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      const char *Val = Argv[++I];
      char *End = nullptr;
      Jobs = static_cast<unsigned>(strtoul(Val, &End, 0));
      if (End == Val || *End != '\0') {
        fprintf(stderr, "qcc: --jobs expects a number, got '%s'\n", Val);
        return 2;
      }
    } else if (Arg == "--metrics-out" && I + 1 < Argc) {
      MetricsOut = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "qcc: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      fprintf(stderr, "qcc: multiple input files\n");
      return 2;
    }
  }
  if (!BatchArg.empty()) {
    if (!Path.empty()) {
      fprintf(stderr, "qcc: --batch takes a directory, not a file\n");
      return 2;
    }
    return runBatchMode(BatchArg, Jobs, MetricsOut, Options);
  }
  if (Path.empty()) {
    usage();
    return 2;
  }
  if (!EmitClight && !EmitCminor && !EmitRtl && !EmitMach && !EmitAsm &&
      !EmitProof && !Measure && StackSize < 0)
    Bounds = true;

  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "qcc: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  auto C = driver::compile(Buffer.str(), Diags, std::move(Options));
  // Warnings (e.g. skipped recursive functions) print either way.
  if (!Diags.diagnostics().empty())
    fprintf(stderr, "%s", Diags.str().c_str());
  if (!C)
    return 1;

  if (EmitClight)
    printf("%s", C->Clight.str().c_str());
  if (EmitCminor)
    printf("%s", C->Cminor.str().c_str());
  if (EmitRtl)
    printf("%s", C->Rtl.str().c_str());
  if (EmitMach)
    printf("%s", C->Mach.str().c_str());
  if (EmitAsm)
    printf("%s", C->Asm.str().c_str());

  if (Bounds) {
    printf("cost metric M(f) = SF(f) + 4: %s\n\n", C->Metric.str().c_str());
    printf("%-24s %-10s  %s\n", "function", "bytes", "symbolic bound");
    for (const auto &[F, Spec] : C->Bounds.Gamma) {
      logic::BoundExpr B = C->Bounds.callBound(F);
      auto Concrete = driver::concreteCallBound(*C, F);
      std::string Bytes =
          Concrete ? std::to_string(*Concrete) : "parametric";
      printf("%-24s %-10s  %s\n", F.c_str(), Bytes.c_str(),
             B->str().c_str());
    }
    for (const std::string &F : C->Bounds.SkippedRecursive)
      printf("%-24s %-10s  (recursive: needs an interactive spec)\n",
             F.c_str(), "-");
  }

  if (EmitProof) {
    for (const auto &[F, FB] : C->Bounds.Bounds) {
      printf("=== derivation for %s (%zu rule applications) ===\n",
             F.c_str(), FB.Body->size());
      printf("%s\n", FB.Body->str().c_str());
    }
  }

  if (Measure) {
    measure::Measurement M = driver::measureStack(*C);
    if (!M.Ok) {
      printf("run failed: %s\n", M.Error.c_str());
      return 1;
    }
    printf("exit code %d, measured stack %u bytes\n", M.ExitCode,
           M.StackBytes);
  }

  if (StackSize >= 0) {
    measure::Measurement M =
        driver::runWithStackSize(*C, static_cast<uint32_t>(StackSize));
    if (M.Ok)
      printf("runs on a %ld-byte stack (exit code %d)\n", StackSize,
             M.ExitCode);
    else
      printf("fails on a %ld-byte stack: %s\n", StackSize,
             M.Error.c_str());
    return M.Ok ? 0 : 1;
  }
  return 0;
}
