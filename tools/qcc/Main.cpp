//===- tools/qcc/Main.cpp - The qcc command-line driver -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of Quantitative CompCert: compile a C file,
/// print verified stack bounds, emit intermediate representations or
/// assembly, and run the result on a finite stack.
///
///   qcc prog.c                      # bounds for every function
///   qcc prog.c --emit-asm           # assembly listing
///   qcc prog.c --measure            # run + measured stack usage
///   qcc prog.c --stack-size 256     # run on a 256-byte stack (ASM_sz)
///   qcc prog.c -D ALEN=4096         # override a #define
///   qcc --batch dir/ --jobs 8       # verify every dir/*.c in parallel
///   qcc --batch corpus --metrics-out m.json   # the built-in corpus
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "daemon/Client.h"
#include "incremental/Incremental.h"
#include "store/Store.h"
#include "driver/Compiler.h"
#include "fuzz/Fuzz.h"
#include "support/FailPoint.h"
#include "support/Numeric.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace qcc;

namespace {

/// The process-wide interrupt token. Supervisor::cancel is atomics-only,
/// so cancelling it from the signal handler is async-signal-safe; every
/// per-job supervisor in batch/fuzz mode is parented to it, so one ^C
/// drains all in-flight jobs at their next poll point, after which the
/// engine flushes the journal and partial metrics and exits cleanly.
Supervisor GInterrupt;

extern "C" void onInterrupt(int) { GInterrupt.cancel(StopCause::Cancelled); }

void installInterruptHandler() { std::signal(SIGINT, onInterrupt); }

void usage() {
  printf(
      "usage: qcc [options] <file.c>\n"
      "\n"
      "  -D NAME=VALUE    override an integer #define (repeatable)\n"
      "  --bounds         print verified per-function stack bounds "
      "(default)\n"
      "  --emit-clight    print the Clight core IR\n"
      "  --emit-cminor    print Cminor\n"
      "  --emit-rtl       print RTL (after optimization)\n"
      "  --emit-mach      print Mach with the frame layout\n"
      "  --emit-asm       print the x86 assembly listing\n"
      "  --emit-proof     print each automatic bound's derivation in the\n"
      "                   quantitative Hoare logic\n"
      "  --measure        run on a large stack and report consumption\n"
      "  --stack-size N   run on a finite stack of exactly N bytes\n"
      "  --inline         inline small non-recursive functions\n"
      "  --tail-calls     recognize tail calls (constant-stack loops)\n"
      "  --no-opt         disable the RTL optimizations\n"
      "  --no-validate    skip per-pass translation validation\n"
      "\n"
      "batch mode (parallel verification of many programs):\n"
      "  --batch <dir>    verify every .c file under <dir>; the literal\n"
      "                   name 'corpus' runs the built-in evaluation\n"
      "                   corpus (Tables 1/2 + section 2)\n"
      "  --jobs N         worker threads (default: all hardware threads;\n"
      "                   1 gives the serial reference run)\n"
      "  --metrics-out F  write the batch metrics report (per-pass\n"
      "                   timings, refinement event counts, proof-checker\n"
      "                   node counts, cache statistics) as JSON to F\n"
      "  --deadline-ms N  per-job wall-clock deadline; a job past it is\n"
      "                   stopped, retried once at reduced fuel, and\n"
      "                   quarantined if it overruns again\n"
      "  --retry N        budget-stop retries before quarantine "
      "(default 1)\n"
      "  --memory-budget-mb N  per-job soft memory budget\n"
      "  --journal F      resume journal: finished jobs are appended to F\n"
      "                   as they complete; a rerun with the same F skips\n"
      "                   them (^C + rerun picks up where it stopped)\n"
      "  --store <dir>    persistent verification store: definitive\n"
      "                   verdicts (with their proof objects) are written\n"
      "                   to <dir>; a warm rerun - even in a fresh\n"
      "                   process - serves unchanged jobs from it\n"
      "  --store-budget-mb N  LRU byte budget for --store (0 = unbounded)\n"
      "  --store-verify   re-check each loaded proof with the proof\n"
      "                   checker before trusting a store entry\n"
      "  --incremental    function-granular verification: on a warm edit\n"
      "                   only the edited function and its transitive\n"
      "                   callers re-verify; unchanged functions' bounds\n"
      "                   and derivations are served from per-function\n"
      "                   keys (with --store they persist under\n"
      "                   <dir>/funcs, so a fresh process stays warm)\n"
      "  -D/--inline/--tail-calls/--no-opt/--no-validate apply to every\n"
      "  program in the batch\n"
      "\n"
      "  --connect <socket>  verify the batch through a running qccd\n"
      "                   daemon (see qccd --help) instead of in-process:\n"
      "                   jobs go over the Unix-domain socket at <socket>,\n"
      "                   verdicts and per-pass metrics come back framed;\n"
      "                   a warm daemon serves unchanged jobs from its\n"
      "                   store without recompiling. --deadline-ms and\n"
      "                   --memory-budget-mb travel with each job (the\n"
      "                   daemon clamps them to its own caps). Busy sheds\n"
      "                   and torn frames are retried with exponential\n"
      "                   backoff; a daemon that stays unreachable makes\n"
      "                   qcc verify the rest of the batch locally with\n"
      "                   identical verdicts and exit codes\n"
      "\n"
      "  batch exit codes: 0 all verified; 1 at least one verification\n"
      "  failure; 2 usage error; 3 at least one job quarantined or\n"
      "  cancelled (no verdict reached - not a refutation)\n"
      "\n"
      "fuzz mode (the no-crash / no-unsound-bound hardening harness):\n"
      "  --fuzz N         generate and verify N seeded programs (random\n"
      "                   and adversarial), forge derivation mutants the\n"
      "                   proof checker must reject, inject faults at\n"
      "                   every pass boundary, and run 200 seeded\n"
      "                   crash-recovery chaos scenarios against the\n"
      "                   persistent store (failpoint crashes and timed\n"
      "                   SIGKILLs of forked writers; recovery must be\n"
      "                   bit-identical to a fault-free run); any crash,\n"
      "                   silent failure, unsound bound, or corruption\n"
      "                   escape is a violation\n"
      "  --seed S         base seed for --fuzz (default 1); a report line\n"
      "                   names the seed that replays it\n"
      "  --jobs N         also applies to the fuzz batch\n");
}

/// Parses a numeric option operand with the strict shared parser
/// (support/Numeric.h): no sign, no leading whitespace, no trailing
/// garbage, no overflow. Rejection prints on stderr and the caller exits
/// 2, like every other usage error. qccd shares the same parser, so the
/// two command lines cannot drift in what they accept.
std::optional<uint64_t> parseCount(const char *Flag, const char *Val,
                                   uint64_t Max) {
  std::optional<uint64_t> V = parseUnsigned(Val, Max);
  if (!V)
    fprintf(stderr,
            "qcc: %s expects a non-negative number no larger than %llu, "
            "got '%s'\n",
            Flag, static_cast<unsigned long long>(Max), Val);
  return V;
}

/// Supervision and reporting knobs of batch mode, straight off argv.
struct BatchCliOptions {
  unsigned Jobs = 0;
  uint64_t DeadlineMs = 0;
  uint64_t MemoryBudgetMb = 0;
  unsigned Retry = 1;
  std::string JournalPath;
  std::string MetricsOut;
  std::string StoreDir;
  uint64_t StoreBudgetMb = 0;
  bool StoreVerify = false;
  bool Incremental = false;
};

/// Collects the jobs of one --batch run: the built-in corpus, or every
/// .c file under a directory, in deterministic order. Shared by the
/// local engine and --connect mode, so both verify the same job list.
/// False after a usage diagnostic (caller exits 2).
bool collectBatchJobs(const std::string &BatchArg,
                      const driver::CompilerOptions &Shared,
                      std::vector<batch::BatchJob> &BatchJobs) {
  if (BatchArg == "corpus") {
    BatchJobs = batch::corpusJobs(Shared.ValidateTranslation);
    for (batch::BatchJob &J : BatchJobs) {
      J.Options.Defines = Shared.Defines;
      J.Options.Optimize = Shared.Optimize;
      J.Options.Inline = Shared.Inline;
      J.Options.TailCalls = Shared.TailCalls;
    }
    return true;
  }
  std::error_code Ec;
  std::vector<std::string> Paths;
  for (const auto &Entry : std::filesystem::directory_iterator(BatchArg, Ec))
    if (Entry.is_regular_file() && Entry.path().extension() == ".c")
      Paths.push_back(Entry.path().string());
  if (Ec) {
    fprintf(stderr, "qcc: cannot read directory '%s': %s\n",
            BatchArg.c_str(), Ec.message().c_str());
    return false;
  }
  std::sort(Paths.begin(), Paths.end()); // Deterministic job order.
  for (const std::string &P : Paths) {
    std::ifstream In(P);
    if (!In) {
      fprintf(stderr, "qcc: cannot open '%s'\n", P.c_str());
      return false;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    BatchJobs.push_back({P, Buffer.str(), Shared});
  }
  if (BatchJobs.empty()) {
    fprintf(stderr, "qcc: no .c files under '%s'\n", BatchArg.c_str());
    return false;
  }
  return true;
}

/// Prints the per-program table, totals, status counts and the optional
/// JSON metrics file — the output contract both the local engine and
/// --connect mode share (what makes the two modes comparable byte for
/// byte, modulo timings). Returns the batch exit code, or 2 when the
/// metrics file cannot be written.
int finishBatchReport(const batch::BatchResult &R,
                      const BatchCliOptions &Cli) {
  printf("%-28s %-6s %-11s %10s %10s %s\n", "program", "ok", "status",
         "bound(main)", "t1-stack", "time");
  for (const batch::ProgramResult &P : R.Programs) {
    std::string MainBound = "-";
    for (const batch::FunctionReport &F : P.Bounds)
      if (F.Function == "main" && F.ConcreteBytes)
        MainBound = std::to_string(*F.ConcreteBytes);
    std::string T1 =
        P.Theorem1Checked
            ? std::to_string(P.Theorem1StackBytes) + (P.Theorem1Ok ? ""
                                                                   : " FAIL")
            : "-";
    std::string Status = batch::jobStatusName(P.Status);
    if (P.Stop != StopCause::None)
      Status += std::string(" (") + stopCauseName(P.Stop) + ")";
    printf("%-28s %-6s %-11s %10s %10s %llu us%s\n", P.Id.c_str(),
           P.Ok ? "yes" : "NO", Status.c_str(), MainBound.c_str(),
           T1.c_str(),
           static_cast<unsigned long long>(P.Metrics.TotalMicros),
           P.StoreHit ? " (store)" : P.CacheHit ? " (cached)" : "");
    if (!P.Ok && !P.Diagnostics.empty())
      fprintf(stderr, "%s: %s", P.Id.c_str(), P.Diagnostics.c_str());
  }
  size_t NumOk = 0;
  for (const batch::ProgramResult &P : R.Programs)
    NumOk += P.Ok;
  printf("\n%zu/%zu ok, %u jobs, %llu us wall, cache %llu/%llu "
         "hits/misses\n",
         NumOk, R.Programs.size(), R.Jobs,
         static_cast<unsigned long long>(R.WallMicros),
         static_cast<unsigned long long>(R.Cache.Hits),
         static_cast<unsigned long long>(R.Cache.Misses));
  if (unsigned Q = R.countStatus(batch::JobStatus::Quarantined))
    printf("%u quarantined (budget exhausted on every attempt)\n", Q);
  if (unsigned C = R.countStatus(batch::JobStatus::Cancelled))
    printf("%u cancelled (interrupt)\n", C);
  if (unsigned S = R.countStatus(batch::JobStatus::SkippedFromJournal))
    printf("%u skipped (already in journal '%s')\n", S,
           Cli.JournalPath.c_str());
  if (GInterrupt.stopRequested())
    printf("interrupted: in-flight jobs drained; journal and metrics "
           "flushed\n");

  if (!Cli.MetricsOut.empty()) {
    std::ofstream Out(Cli.MetricsOut);
    if (!Out) {
      fprintf(stderr, "qcc: cannot write '%s'\n", Cli.MetricsOut.c_str());
      return 2;
    }
    Out << batch::metricsJson(R) << '\n';
  }
  return R.exitCode();
}

/// --connect mode: the same job list, verified by a qccd daemon over its
/// Unix-domain socket instead of in-process. Jobs are submitted in order
/// through verifyWithRetry, which absorbs Busy sheds (backoff, retry),
/// torn frames, and daemon restarts (reconnect, resubmit — verdicts are
/// content-keyed, so resubmits are idempotent). When the daemon stays
/// unreachable past the retry budget, the remainder of the batch is
/// verified in-process with the same supervision knobs: the verdicts are
/// engine-identical and the exit-code taxonomy is preserved. ^C stops
/// submitting and reports the rest as cancelled.
int runConnectMode(const std::string &BatchArg, const std::string &Socket,
                   const BatchCliOptions &Cli,
                   const driver::CompilerOptions &Shared) {
  std::vector<batch::BatchJob> BatchJobs;
  if (!collectBatchJobs(BatchArg, Shared, BatchJobs))
    return 2;
  installInterruptHandler();

  daemon::RetryPolicy Policy;
  daemon::DaemonClient Client;
  bool DaemonUsable = Client.connectWithRetry(Socket, Policy);
  if (!DaemonUsable)
    fprintf(stderr, "qcc: daemon unreachable (%s); verifying locally\n",
            Client.error().c_str());

  batch::BatchResult R;
  R.Programs.resize(BatchJobs.size());
  R.Jobs = 1;
  // First job the daemon did not serve; everything from here on runs in
  // the local fallback engine below.
  size_t FirstLocal = BatchJobs.size();
  auto Start = std::chrono::steady_clock::now();
  for (size_t I = 0; I != BatchJobs.size(); ++I) {
    if (!DaemonUsable) {
      FirstLocal = I;
      break;
    }
    batch::ProgramResult &Slot = R.Programs[I];
    if (GInterrupt.stopRequested()) {
      Slot.Id = BatchJobs[I].Id;
      Slot.Status = batch::JobStatus::Cancelled;
      Slot.Stop = StopCause::Cancelled;
      Slot.Diagnostics = "cancelled before submission";
      continue;
    }
    daemon::JobRequest Req;
    Req.Job = BatchJobs[I];
    Req.CheckTheorem1 = true;
    Req.DeadlineMillis = Cli.DeadlineMs;
    Req.MemoryBudgetBytes = Cli.MemoryBudgetMb * (1ull << 20);
    daemon::ClientOutcome Outcome =
        Client.verifyWithRetry(Req, Socket, Policy);
    if (Outcome.HaveVerdict) {
      Slot = std::move(Outcome.Result);
      Slot.Id = BatchJobs[I].Id; // The daemon echoes it; pin it anyway.
      continue;
    }
    if (Outcome.Busy || Outcome.Transport || Outcome.ServerClosing) {
      // The retry budget is spent and the daemon is still shedding,
      // draining, or gone: stop submitting and verify the rest locally.
      fprintf(stderr,
              "qcc: %s: no verdict from daemon after retries (%s); "
              "falling back to local verification\n",
              BatchJobs[I].Id.c_str(), Outcome.Error.c_str());
      DaemonUsable = false;
      FirstLocal = I;
      break;
    }
    // A deliberate server Error frame (malformed request, a budget the
    // daemon's caps cancelled): resubmitting the same bytes — remotely
    // or locally — would only repeat it.
    fprintf(stderr, "qcc: %s: daemon error: %s\n", BatchJobs[I].Id.c_str(),
            Outcome.Error.c_str());
    Slot.Id = BatchJobs[I].Id;
    Slot.Status = batch::JobStatus::Quarantined;
    Slot.Diagnostics = "daemon error: " + Outcome.Error;
  }

  if (FirstLocal != BatchJobs.size()) {
    std::vector<batch::BatchJob> Rest(BatchJobs.begin() + FirstLocal,
                                      BatchJobs.end());
    batch::BatchOptions Opts;
    Opts.Jobs = Cli.Jobs;
    Opts.DeadlineMillis = Cli.DeadlineMs;
    Opts.MemoryBudgetBytes = Cli.MemoryBudgetMb * (1ull << 20);
    Opts.Retries = Cli.Retry;
    Opts.Interrupt = &GInterrupt;
    batch::BatchResult Local = batch::runBatch(Rest, Opts);
    for (size_t J = 0; J != Local.Programs.size(); ++J)
      R.Programs[FirstLocal + J] = std::move(Local.Programs[J]);
    R.Jobs = Local.Jobs;
    R.Cache = Local.Cache;
  }
  auto End = std::chrono::steady_clock::now();
  R.WallMicros =
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count();
  return finishBatchReport(R, Cli);
}

/// Runs batch mode: collect jobs, fan out, print a per-program table.
int runBatchMode(const std::string &BatchArg, const BatchCliOptions &Cli,
                 const driver::CompilerOptions &Shared) {
  std::vector<batch::BatchJob> BatchJobs;
  if (!collectBatchJobs(BatchArg, Shared, BatchJobs))
    return 2;

  installInterruptHandler();
  std::unique_ptr<store::VerificationStore> Store;
  if (!Cli.StoreDir.empty()) {
    store::StoreOptions SO;
    SO.Dir = Cli.StoreDir;
    SO.BudgetBytes = Cli.StoreBudgetMb * (1ull << 20);
    SO.VerifyProofsOnLoad = Cli.StoreVerify;
    std::string Error;
    Store = store::VerificationStore::open(SO, &Error);
    if (!Store) {
      fprintf(stderr, "qcc: %s\n", Error.c_str());
      return 2;
    }
  }
  batch::ResultCache Cache;
  std::unique_ptr<incremental::Engine> Inc;
  if (Cli.Incremental) {
    incremental::EngineOptions EO;
    if (!Cli.StoreDir.empty())
      EO.FuncStoreDir = Cli.StoreDir + "/funcs";
    Inc = std::make_unique<incremental::Engine>(std::move(EO));
  }
  batch::BatchOptions Opts;
  Opts.Jobs = Cli.Jobs;
  Opts.Cache = &Cache;
  Opts.Store = Store.get();
  Opts.Incremental = Inc.get();
  Opts.DeadlineMillis = Cli.DeadlineMs;
  Opts.MemoryBudgetBytes = Cli.MemoryBudgetMb * (1ull << 20);
  Opts.Retries = Cli.Retry;
  Opts.JournalPath = Cli.JournalPath;
  Opts.Interrupt = &GInterrupt;
  batch::BatchResult R = batch::runBatch(BatchJobs, Opts);

  int Code = finishBatchReport(R, Cli);
  if (Inc) {
    incremental::EngineStats IS = Inc->stats();
    printf("incremental: %llu functions reused, %llu re-verified, %llu "
           "invalidated, %llu/%llu replay hits/misses\n",
           static_cast<unsigned long long>(IS.FuncsReused),
           static_cast<unsigned long long>(IS.FuncsReVerified),
           static_cast<unsigned long long>(IS.FuncsInvalidated),
           static_cast<unsigned long long>(IS.ReplayHits),
           static_cast<unsigned long long>(IS.ReplayMisses));
  }
  if (Store) {
    store::StoreStats SS = Store->stats();
    printf("store '%s': %llu hits, %llu misses, %llu writes, %llu "
           "evicted, %llu quarantined%s\n",
           Cli.StoreDir.c_str(), static_cast<unsigned long long>(SS.Hits),
           static_cast<unsigned long long>(SS.Misses),
           static_cast<unsigned long long>(SS.Writes),
           static_cast<unsigned long long>(SS.EvictedEntries),
           static_cast<unsigned long long>(SS.Quarantined),
           Cli.StoreVerify
               ? (", proofs re-checked on load (" +
                  std::to_string(SS.VerifiedProofs) + " ok, " +
                  std::to_string(SS.VerifyFailures) + " rejected)")
                     .c_str()
               : "");
  }
  return Code;
}

} // namespace

int main(int Argc, char **Argv) {
  // Force the failpoint registry up front so a malformed QCC_FAILPOINTS
  // is a startup error (exit 2) even on code paths that never reach an
  // injection site — a bad spec must never yield a silently-clean run.
  failpoint::Registry::instance();
  std::string Path;
  driver::CompilerOptions Options;
  bool EmitClight = false, EmitCminor = false, EmitRtl = false,
       EmitMach = false, EmitAsm = false, EmitProof = false,
       Bounds = false, Measure = false;
  std::optional<uint32_t> StackSize;
  std::optional<uint64_t> FuzzCount;
  uint64_t FuzzSeed = 1;
  std::string BatchArg;
  std::string ConnectSocket;
  BatchCliOptions Cli;

  // Applies one "NAME=VALUE" define, validating both halves.
  auto AddDefine = [&Options](const std::string &Def) {
    size_t Eq = Def.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      fprintf(stderr, "qcc: -D expects NAME=VALUE, got '%s'\n", Def.c_str());
      return false;
    }
    auto V = parseCount("-D", Def.c_str() + Eq + 1,
                        std::numeric_limits<uint32_t>::max());
    if (!V)
      return false;
    Options.Defines[Def.substr(0, Eq)] = static_cast<uint32_t>(*V);
    return true;
  };

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-D") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: -D is missing its NAME=VALUE operand\n");
        return 2;
      }
      if (!AddDefine(Argv[++I]))
        return 2;
    } else if (Arg.rfind("-D", 0) == 0 && Arg.size() > 2) {
      if (!AddDefine(Arg.substr(2)))
        return 2;
    } else if (Arg == "--emit-clight") {
      EmitClight = true;
    } else if (Arg == "--emit-cminor") {
      EmitCminor = true;
    } else if (Arg == "--emit-rtl") {
      EmitRtl = true;
    } else if (Arg == "--emit-mach") {
      EmitMach = true;
    } else if (Arg == "--emit-asm") {
      EmitAsm = true;
    } else if (Arg == "--emit-proof") {
      EmitProof = true;
    } else if (Arg == "--bounds") {
      Bounds = true;
    } else if (Arg == "--measure") {
      Measure = true;
    } else if (Arg == "--stack-size") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --stack-size is missing its byte count\n");
        return 2;
      }
      // Theorem 1's sz: any value the machine can host, including 0.
      auto V = parseCount("--stack-size", Argv[++I], measure::MaxStackSize);
      if (!V)
        return 2;
      StackSize = static_cast<uint32_t>(*V);
    } else if (Arg == "--inline") {
      Options.Inline = true;
    } else if (Arg == "--tail-calls") {
      Options.TailCalls = true;
    } else if (Arg == "--no-opt") {
      Options.Optimize = false;
    } else if (Arg == "--no-validate") {
      Options.ValidateTranslation = false;
    } else if (Arg == "--batch") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --batch is missing its directory operand\n");
        return 2;
      }
      BatchArg = Argv[++I];
    } else if (Arg == "--connect") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --connect is missing its socket operand\n");
        return 2;
      }
      ConnectSocket = Argv[++I];
    } else if (Arg == "--jobs") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --jobs is missing its thread count\n");
        return 2;
      }
      auto V = parseCount("--jobs", Argv[++I], 4096);
      if (!V)
        return 2;
      Cli.Jobs = static_cast<unsigned>(*V);
    } else if (Arg == "--deadline-ms") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --deadline-ms is missing its operand\n");
        return 2;
      }
      auto V = parseCount("--deadline-ms", Argv[++I], 86'400'000);
      if (!V)
        return 2;
      Cli.DeadlineMs = *V;
    } else if (Arg == "--memory-budget-mb") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --memory-budget-mb is missing its operand\n");
        return 2;
      }
      auto V = parseCount("--memory-budget-mb", Argv[++I], 1 << 20);
      if (!V)
        return 2;
      Cli.MemoryBudgetMb = *V;
    } else if (Arg == "--retry") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --retry is missing its count\n");
        return 2;
      }
      auto V = parseCount("--retry", Argv[++I], 16);
      if (!V)
        return 2;
      Cli.Retry = static_cast<unsigned>(*V);
    } else if (Arg == "--journal") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --journal is missing its file operand\n");
        return 2;
      }
      Cli.JournalPath = Argv[++I];
    } else if (Arg == "--store") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --store is missing its directory operand\n");
        return 2;
      }
      Cli.StoreDir = Argv[++I];
    } else if (Arg == "--store-budget-mb") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --store-budget-mb is missing its operand\n");
        return 2;
      }
      auto V = parseCount("--store-budget-mb", Argv[++I], 1 << 20);
      if (!V)
        return 2;
      Cli.StoreBudgetMb = *V;
    } else if (Arg == "--store-verify") {
      Cli.StoreVerify = true;
    } else if (Arg == "--incremental") {
      Cli.Incremental = true;
    } else if (Arg == "--fuzz") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --fuzz is missing its program count\n");
        return 2;
      }
      auto V = parseCount("--fuzz", Argv[++I], 100'000'000);
      if (!V)
        return 2;
      FuzzCount = *V;
    } else if (Arg == "--seed") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --seed is missing its value\n");
        return 2;
      }
      auto V = parseCount("--seed", Argv[++I],
                          std::numeric_limits<uint64_t>::max());
      if (!V)
        return 2;
      FuzzSeed = *V;
    } else if (Arg == "--metrics-out") {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qcc: --metrics-out is missing its file operand\n");
        return 2;
      }
      Cli.MetricsOut = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "qcc: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      fprintf(stderr, "qcc: multiple input files\n");
      return 2;
    }
  }
  if (FuzzCount) {
    if (!Path.empty() || !BatchArg.empty()) {
      fprintf(stderr, "qcc: --fuzz generates its own inputs; drop the "
                      "file/--batch argument\n");
      return 2;
    }
    installInterruptHandler();
    fuzz::FuzzOptions FO;
    FO.Count = *FuzzCount;
    FO.Seed = FuzzSeed;
    FO.Jobs = Cli.Jobs;
    FO.Interrupt = &GInterrupt;
    // Campaign 4: seeded failpoint/crash-recovery chaos against the
    // persistent store (the acceptance floor of 200 scenarios).
    FO.FailPointRuns = 200;
    fuzz::FuzzReport Report = fuzz::runFuzz(FO);
    // On ^C this is the flushed partial campaign report.
    printf("%s", Report.str().c_str());
    if (!Report.ok())
      return 1;
    return Report.Interrupted ? 3 : 0;
  }
  if (!BatchArg.empty()) {
    if (!Path.empty()) {
      fprintf(stderr, "qcc: --batch takes a directory, not a file\n");
      return 2;
    }
    if (!ConnectSocket.empty())
      return runConnectMode(BatchArg, ConnectSocket, Cli, Options);
    return runBatchMode(BatchArg, Cli, Options);
  }
  if (!ConnectSocket.empty()) {
    fprintf(stderr, "qcc: --connect needs --batch (the job list to "
                    "submit)\n");
    return 2;
  }
  if (Path.empty()) {
    usage();
    return 2;
  }
  if (!EmitClight && !EmitCminor && !EmitRtl && !EmitMach && !EmitAsm &&
      !EmitProof && !Measure && !StackSize)
    Bounds = true;

  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "qcc: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  auto C = driver::compile(Buffer.str(), Diags, std::move(Options));
  // Warnings (e.g. skipped recursive functions) print either way.
  if (!Diags.diagnostics().empty())
    fprintf(stderr, "%s", Diags.str().c_str());
  if (!C)
    return 1;

  if (EmitClight)
    printf("%s", C->Clight.str().c_str());
  if (EmitCminor)
    printf("%s", C->Cminor.str().c_str());
  if (EmitRtl)
    printf("%s", C->Rtl.str().c_str());
  if (EmitMach)
    printf("%s", C->Mach.str().c_str());
  if (EmitAsm)
    printf("%s", C->Asm.str().c_str());

  if (Bounds) {
    printf("cost metric M(f) = SF(f) + 4: %s\n\n", C->Metric.str().c_str());
    printf("%-24s %-10s  %s\n", "function", "bytes", "symbolic bound");
    for (const auto &[F, Spec] : C->Bounds.Gamma) {
      logic::BoundExpr B = C->Bounds.callBound(F);
      auto Concrete = driver::concreteCallBound(*C, F);
      std::string Bytes =
          Concrete ? std::to_string(*Concrete) : "parametric";
      printf("%-24s %-10s  %s\n", F.c_str(), Bytes.c_str(),
             B->str().c_str());
    }
    for (const std::string &F : C->Bounds.SkippedRecursive)
      printf("%-24s %-10s  (recursive: needs an interactive spec)\n",
             F.c_str(), "-");
  }

  if (EmitProof) {
    for (const auto &[F, FB] : C->Bounds.Bounds) {
      printf("=== derivation for %s (%zu rule applications) ===\n",
             F.c_str(), FB.Body->size());
      printf("%s\n", FB.Body->str().c_str());
    }
  }

  if (Measure) {
    measure::Measurement M = driver::measureStack(*C);
    if (!M.Ok) {
      printf("run failed: %s\n", M.Error.c_str());
      return 1;
    }
    printf("exit code %d, measured stack %u bytes\n", M.ExitCode,
           M.StackBytes);
  }

  if (StackSize) {
    measure::Measurement M = driver::runWithStackSize(*C, *StackSize);
    if (M.Ok)
      printf("runs on a %u-byte stack (exit code %d)\n", *StackSize,
             M.ExitCode);
    else
      printf("fails on a %u-byte stack: %s\n", *StackSize,
             M.Error.c_str());
    return M.Ok ? 0 : 1;
  }
  return 0;
}
