//===- tools/qcc/Main.cpp - The qcc command-line driver -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of Quantitative CompCert: compile a C file,
/// print verified stack bounds, emit intermediate representations or
/// assembly, and run the result on a finite stack.
///
///   qcc prog.c                      # bounds for every function
///   qcc prog.c --emit-asm           # assembly listing
///   qcc prog.c --measure            # run + measured stack usage
///   qcc prog.c --stack-size 256     # run on a 256-byte stack (ASM_sz)
///   qcc prog.c -D ALEN=4096         # override a #define
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace qcc;

namespace {

void usage() {
  printf(
      "usage: qcc [options] <file.c>\n"
      "\n"
      "  -D NAME=VALUE    override an integer #define (repeatable)\n"
      "  --bounds         print verified per-function stack bounds "
      "(default)\n"
      "  --emit-clight    print the Clight core IR\n"
      "  --emit-cminor    print Cminor\n"
      "  --emit-rtl       print RTL (after optimization)\n"
      "  --emit-mach      print Mach with the frame layout\n"
      "  --emit-asm       print the x86 assembly listing\n"
      "  --emit-proof     print each automatic bound's derivation in the\n"
      "                   quantitative Hoare logic\n"
      "  --measure        run on a large stack and report consumption\n"
      "  --stack-size N   run on a finite stack of exactly N bytes\n"
      "  --inline         inline small non-recursive functions\n"
      "  --tail-calls     recognize tail calls (constant-stack loops)\n"
      "  --no-opt         disable the RTL optimizations\n"
      "  --no-validate    skip per-pass translation validation\n");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  driver::CompilerOptions Options;
  bool EmitClight = false, EmitCminor = false, EmitRtl = false,
       EmitMach = false, EmitAsm = false, EmitProof = false,
       Bounds = false, Measure = false;
  long StackSize = -1;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-D" && I + 1 < Argc) {
      std::string Def = Argv[++I];
      size_t Eq = Def.find('=');
      if (Eq == std::string::npos) {
        fprintf(stderr, "qcc: -D expects NAME=VALUE\n");
        return 2;
      }
      Options.Defines[Def.substr(0, Eq)] =
          static_cast<uint32_t>(strtoul(Def.c_str() + Eq + 1, nullptr, 0));
    } else if (Arg.rfind("-D", 0) == 0 && Arg.find('=') != std::string::npos) {
      size_t Eq = Arg.find('=');
      Options.Defines[Arg.substr(2, Eq - 2)] =
          static_cast<uint32_t>(strtoul(Arg.c_str() + Eq + 1, nullptr, 0));
    } else if (Arg == "--emit-clight") {
      EmitClight = true;
    } else if (Arg == "--emit-cminor") {
      EmitCminor = true;
    } else if (Arg == "--emit-rtl") {
      EmitRtl = true;
    } else if (Arg == "--emit-mach") {
      EmitMach = true;
    } else if (Arg == "--emit-asm") {
      EmitAsm = true;
    } else if (Arg == "--emit-proof") {
      EmitProof = true;
    } else if (Arg == "--bounds") {
      Bounds = true;
    } else if (Arg == "--measure") {
      Measure = true;
    } else if (Arg == "--stack-size" && I + 1 < Argc) {
      StackSize = strtol(Argv[++I], nullptr, 0);
    } else if (Arg == "--inline") {
      Options.Inline = true;
    } else if (Arg == "--tail-calls") {
      Options.TailCalls = true;
    } else if (Arg == "--no-opt") {
      Options.Optimize = false;
    } else if (Arg == "--no-validate") {
      Options.ValidateTranslation = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "qcc: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      fprintf(stderr, "qcc: multiple input files\n");
      return 2;
    }
  }
  if (Path.empty()) {
    usage();
    return 2;
  }
  if (!EmitClight && !EmitCminor && !EmitRtl && !EmitMach && !EmitAsm &&
      !EmitProof && !Measure && StackSize < 0)
    Bounds = true;

  std::ifstream In(Path);
  if (!In) {
    fprintf(stderr, "qcc: cannot open '%s'\n", Path.c_str());
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  auto C = driver::compile(Buffer.str(), Diags, std::move(Options));
  // Warnings (e.g. skipped recursive functions) print either way.
  if (!Diags.diagnostics().empty())
    fprintf(stderr, "%s", Diags.str().c_str());
  if (!C)
    return 1;

  if (EmitClight)
    printf("%s", C->Clight.str().c_str());
  if (EmitCminor)
    printf("%s", C->Cminor.str().c_str());
  if (EmitRtl)
    printf("%s", C->Rtl.str().c_str());
  if (EmitMach)
    printf("%s", C->Mach.str().c_str());
  if (EmitAsm)
    printf("%s", C->Asm.str().c_str());

  if (Bounds) {
    printf("cost metric M(f) = SF(f) + 4: %s\n\n", C->Metric.str().c_str());
    printf("%-24s %-10s  %s\n", "function", "bytes", "symbolic bound");
    for (const auto &[F, Spec] : C->Bounds.Gamma) {
      logic::BoundExpr B = C->Bounds.callBound(F);
      auto Concrete = driver::concreteCallBound(*C, F);
      std::string Bytes =
          Concrete ? std::to_string(*Concrete) : "parametric";
      printf("%-24s %-10s  %s\n", F.c_str(), Bytes.c_str(),
             B->str().c_str());
    }
    for (const std::string &F : C->Bounds.SkippedRecursive)
      printf("%-24s %-10s  (recursive: needs an interactive spec)\n",
             F.c_str(), "-");
  }

  if (EmitProof) {
    for (const auto &[F, FB] : C->Bounds.Bounds) {
      printf("=== derivation for %s (%zu rule applications) ===\n",
             F.c_str(), FB.Body->size());
      printf("%s\n", FB.Body->str().c_str());
    }
  }

  if (Measure) {
    measure::Measurement M = driver::measureStack(*C);
    if (!M.Ok) {
      printf("run failed: %s\n", M.Error.c_str());
      return 1;
    }
    printf("exit code %d, measured stack %u bytes\n", M.ExitCode,
           M.StackBytes);
  }

  if (StackSize >= 0) {
    measure::Measurement M =
        driver::runWithStackSize(*C, static_cast<uint32_t>(StackSize));
    if (M.Ok)
      printf("runs on a %ld-byte stack (exit code %d)\n", StackSize,
             M.ExitCode);
    else
      printf("fails on a %ld-byte stack: %s\n", StackSize,
             M.Error.c_str());
    return M.Ok ? 0 : 1;
  }
  return 0;
}
