//===- tools/qccd/Main.cpp - The qccd verification daemon -----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verification as a service: qccd listens on a Unix-domain socket,
/// verifies jobs submitted by `qcc --connect` clients on a shared
/// work-stealing pool, and keeps the result cache and the persistent
/// store warm across connections.
///
///   qccd --socket /tmp/qccd.sock --store ~/.qcc-store --jobs 8
///   qcc --batch corpus --connect /tmp/qccd.sock    # in another terminal
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "support/FailPoint.h"
#include "support/Numeric.h"

#include <csignal>
#include <cstdio>
#include <optional>
#include <string>

using namespace qcc;

namespace {

/// The running daemon, for the signal handlers. requestShutdown and
/// requestDrain are atomics plus one pipe write: async-signal-safe.
daemon::Daemon *GDaemon = nullptr;

/// SIGINT: hard shutdown — cancel in-flight jobs and drain fast.
extern "C" void onInterrupt(int) {
  if (GDaemon)
    GDaemon->requestShutdown();
}

/// SIGTERM: graceful drain — stop accepting, finish and journal every
/// in-flight job, close each client with a clean Bye frame.
extern "C" void onTerminate(int) {
  if (GDaemon)
    GDaemon->requestDrain();
}

void usage() {
  printf(
      "usage: qccd --socket <path> [options]\n"
      "\n"
      "  --socket <path>      Unix-domain socket to listen on (required)\n"
      "  --jobs N             verification worker threads (default: all\n"
      "                       hardware threads)\n"
      "  --store <dir>        persistent verification store shared with\n"
      "                       qcc --batch --store\n"
      "  --store-budget-mb N  LRU byte budget for the store\n"
      "  --store-verify       re-check proofs on every store load\n"
      "  --deadline-ms N      per-job wall-clock deadline cap\n"
      "  --memory-budget-mb N per-job soft memory budget cap\n"
      "  --client-budget-mb N per-connection fair-share byte budget: a\n"
      "                       client whose jobs charge more than this is\n"
      "                       cancelled; other connections are untouched\n"
      "  --retry N            budget-stop retries before quarantine\n"
      "                       (default 1)\n"
      "  --recv-timeout-ms N  per-frame receive timeout (default 0: none)\n"
      "  --idle-timeout-ms N  close connections idle between frames for\n"
      "                       N ms with a clean Bye frame (default 0:\n"
      "                       never)\n"
      "  --max-active-jobs N  bounded admission: shed submits over N\n"
      "                       in-flight jobs with a Busy reply (default\n"
      "                       256; 0 = unlimited)\n"
      "  --max-connections N  shed accepted connections over N with a\n"
      "                       Busy reply (default 0: unlimited)\n"
      "  --journal F          append every definitive verdict to F\n"
      "                       (batch-journal format); a graceful drain\n"
      "                       journals its in-flight jobs there\n"
      "  --max-frame-mb N     per-frame payload ceiling (default 64)\n"
      "  --no-incremental     disable the function-granular incremental\n"
      "                       engine (warm edits re-verify whole files)\n"
      "\n"
      "Client-requested budgets are clamped to the caps above. SIGINT (or\n"
      "a client Shutdown frame) cancels and drains in-flight jobs;\n"
      "SIGTERM drains gracefully: in-flight jobs finish, are journaled,\n"
      "and every client gets its verdict plus a clean Bye frame.\n"
      "QCC_FAILPOINTS (see README, \"Fault injection & resilience\")\n"
      "arms deterministic fault-injection sites for chaos testing.\n");
}

/// The same strict parser qcc uses (support/Numeric.h): no sign, no
/// whitespace, no trailing garbage, no overflow.
std::optional<uint64_t> parseCount(const char *Flag, const char *Val,
                                   uint64_t Max) {
  std::optional<uint64_t> V = parseUnsigned(Val, Max);
  if (!V)
    fprintf(stderr,
            "qccd: %s expects a non-negative number no larger than %llu, "
            "got '%s'\n",
            Flag, static_cast<unsigned long long>(Max), Val);
  return V;
}

} // namespace

int main(int Argc, char **Argv) {
  // Force the failpoint registry up front so a malformed QCC_FAILPOINTS
  // is a startup error (exit 2), not discovered at the first armed site.
  failpoint::Registry::instance();
  daemon::DaemonOptions Opts;
  // The service default is bounded admission (the library default stays
  // unlimited for embedders): a daemon fronting a fleet must shed load
  // explicitly, not queue blind.
  Opts.MaxActiveJobs = 256;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Operand = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        fprintf(stderr, "qccd: %s is missing its operand\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--socket") {
      const char *V = Operand("--socket");
      if (!V)
        return 2;
      Opts.SocketPath = V;
    } else if (Arg == "--jobs") {
      const char *V = Operand("--jobs");
      if (!V)
        return 2;
      auto N = parseCount("--jobs", V, 4096);
      if (!N)
        return 2;
      Opts.Jobs = static_cast<unsigned>(*N);
    } else if (Arg == "--store") {
      const char *V = Operand("--store");
      if (!V)
        return 2;
      Opts.StoreDir = V;
    } else if (Arg == "--store-budget-mb") {
      const char *V = Operand("--store-budget-mb");
      if (!V)
        return 2;
      auto N = parseCount("--store-budget-mb", V, 1 << 20);
      if (!N)
        return 2;
      Opts.StoreBudgetBytes = *N * (1ull << 20);
    } else if (Arg == "--store-verify") {
      Opts.StoreVerify = true;
    } else if (Arg == "--deadline-ms") {
      const char *V = Operand("--deadline-ms");
      if (!V)
        return 2;
      auto N = parseCount("--deadline-ms", V, 86'400'000);
      if (!N)
        return 2;
      Opts.DeadlineMillis = *N;
    } else if (Arg == "--memory-budget-mb") {
      const char *V = Operand("--memory-budget-mb");
      if (!V)
        return 2;
      auto N = parseCount("--memory-budget-mb", V, 1 << 20);
      if (!N)
        return 2;
      Opts.MemoryBudgetBytes = *N * (1ull << 20);
    } else if (Arg == "--client-budget-mb") {
      const char *V = Operand("--client-budget-mb");
      if (!V)
        return 2;
      auto N = parseCount("--client-budget-mb", V, 1 << 20);
      if (!N)
        return 2;
      Opts.ClientBudgetBytes = *N * (1ull << 20);
    } else if (Arg == "--retry") {
      const char *V = Operand("--retry");
      if (!V)
        return 2;
      auto N = parseCount("--retry", V, 16);
      if (!N)
        return 2;
      Opts.Retries = static_cast<unsigned>(*N);
    } else if (Arg == "--recv-timeout-ms") {
      const char *V = Operand("--recv-timeout-ms");
      if (!V)
        return 2;
      auto N = parseCount("--recv-timeout-ms", V, 86'400'000);
      if (!N)
        return 2;
      Opts.RecvTimeoutMillis = *N;
    } else if (Arg == "--idle-timeout-ms") {
      const char *V = Operand("--idle-timeout-ms");
      if (!V)
        return 2;
      auto N = parseCount("--idle-timeout-ms", V, 86'400'000);
      if (!N)
        return 2;
      Opts.IdleTimeoutMillis = *N;
    } else if (Arg == "--max-active-jobs") {
      const char *V = Operand("--max-active-jobs");
      if (!V)
        return 2;
      auto N = parseCount("--max-active-jobs", V, 1 << 20);
      if (!N)
        return 2;
      Opts.MaxActiveJobs = *N;
    } else if (Arg == "--max-connections") {
      const char *V = Operand("--max-connections");
      if (!V)
        return 2;
      auto N = parseCount("--max-connections", V, 1 << 20);
      if (!N)
        return 2;
      Opts.MaxConnections = *N;
    } else if (Arg == "--journal") {
      const char *V = Operand("--journal");
      if (!V)
        return 2;
      Opts.JournalPath = V;
    } else if (Arg == "--max-frame-mb") {
      const char *V = Operand("--max-frame-mb");
      if (!V)
        return 2;
      auto N = parseCount("--max-frame-mb", V, 4096);
      if (!N)
        return 2;
      Opts.MaxFrameBytes = *N * (1ull << 20);
    } else if (Arg == "--no-incremental") {
      Opts.Incremental = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      fprintf(stderr, "qccd: unknown option '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Opts.SocketPath.empty()) {
    fprintf(stderr, "qccd: --socket is required\n");
    usage();
    return 2;
  }

  daemon::Daemon D(Opts);
  if (!D.valid()) {
    fprintf(stderr, "qccd: %s\n", D.error().c_str());
    return 2;
  }
  GDaemon = &D;
  std::signal(SIGINT, onInterrupt);
  std::signal(SIGTERM, onTerminate);
  // Dead clients surface as send errors, not process death.
  std::signal(SIGPIPE, SIG_IGN);

  std::string Workers =
      Opts.Jobs ? std::to_string(Opts.Jobs) : std::string("auto");
  printf("qccd: listening on %s (%s workers%s%s)\n",
         Opts.SocketPath.c_str(), Workers.c_str(),
         Opts.StoreDir.empty() ? "" : ", store ",
         Opts.StoreDir.c_str());
  fflush(stdout);
  D.serve();

  daemon::DaemonStats S = D.stats();
  printf("qccd: drained: %llu connections, %llu jobs served, %llu "
         "protocol errors, %llu budget cancellations\n",
         static_cast<unsigned long long>(S.Connections),
         static_cast<unsigned long long>(S.JobsServed),
         static_cast<unsigned long long>(S.ProtocolErrors),
         static_cast<unsigned long long>(S.BudgetCancels));
  printf("qccd: incremental: %llu functions reused, %llu re-verified, "
         "%llu invalidated\n",
         static_cast<unsigned long long>(S.FuncsReused),
         static_cast<unsigned long long>(S.FuncsReVerified),
         static_cast<unsigned long long>(S.FuncsInvalidated));
  printf("qccd: proofs: %llu derivation nodes, %llu.%03llu ms checking\n",
         static_cast<unsigned long long>(S.ProofNodes),
         static_cast<unsigned long long>(S.ProofCheckMicros / 1000),
         static_cast<unsigned long long>(S.ProofCheckMicros % 1000));
  printf("qccd: resilience: %llu jobs shed, %llu connections shed, %llu "
         "accept retries, %llu idle disconnects, %llu verdicts journaled\n",
         static_cast<unsigned long long>(S.JobsShed),
         static_cast<unsigned long long>(S.ConnectionsShed),
         static_cast<unsigned long long>(S.AcceptRetries),
         static_cast<unsigned long long>(S.IdleDisconnects),
         static_cast<unsigned long long>(S.JobsJournaled));
  GDaemon = nullptr;
  return 0;
}
