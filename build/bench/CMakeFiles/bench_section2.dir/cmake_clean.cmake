file(REMOVE_RECURSE
  "CMakeFiles/bench_section2.dir/BenchSection2.cpp.o"
  "CMakeFiles/bench_section2.dir/BenchSection2.cpp.o.d"
  "bench_section2"
  "bench_section2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
