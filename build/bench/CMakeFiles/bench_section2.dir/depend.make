# Empty dependencies file for bench_section2.
# This may be replaced when dependencies are built.
