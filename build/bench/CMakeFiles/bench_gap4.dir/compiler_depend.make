# Empty compiler generated dependencies file for bench_gap4.
# This may be replaced when dependencies are built.
