file(REMOVE_RECURSE
  "CMakeFiles/bench_gap4.dir/BenchGap4.cpp.o"
  "CMakeFiles/bench_gap4.dir/BenchGap4.cpp.o.d"
  "bench_gap4"
  "bench_gap4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gap4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
