file(REMOVE_RECURSE
  "CMakeFiles/bench_inlining.dir/BenchInlining.cpp.o"
  "CMakeFiles/bench_inlining.dir/BenchInlining.cpp.o.d"
  "bench_inlining"
  "bench_inlining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
