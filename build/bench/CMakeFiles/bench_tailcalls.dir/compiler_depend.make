# Empty compiler generated dependencies file for bench_tailcalls.
# This may be replaced when dependencies are built.
