file(REMOVE_RECURSE
  "CMakeFiles/bench_tailcalls.dir/BenchTailcalls.cpp.o"
  "CMakeFiles/bench_tailcalls.dir/BenchTailcalls.cpp.o.d"
  "bench_tailcalls"
  "bench_tailcalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tailcalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
