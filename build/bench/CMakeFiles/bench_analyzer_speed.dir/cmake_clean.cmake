file(REMOVE_RECURSE
  "CMakeFiles/bench_analyzer_speed.dir/BenchAnalyzerSpeed.cpp.o"
  "CMakeFiles/bench_analyzer_speed.dir/BenchAnalyzerSpeed.cpp.o.d"
  "bench_analyzer_speed"
  "bench_analyzer_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analyzer_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
