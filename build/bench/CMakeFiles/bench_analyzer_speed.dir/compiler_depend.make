# Empty compiler generated dependencies file for bench_analyzer_speed.
# This may be replaced when dependencies are built.
