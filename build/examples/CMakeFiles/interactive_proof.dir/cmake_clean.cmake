file(REMOVE_RECURSE
  "CMakeFiles/interactive_proof.dir/interactive_proof.cpp.o"
  "CMakeFiles/interactive_proof.dir/interactive_proof.cpp.o.d"
  "interactive_proof"
  "interactive_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
