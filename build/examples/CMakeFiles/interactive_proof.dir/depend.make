# Empty dependencies file for interactive_proof.
# This may be replaced when dependencies are built.
