file(REMOVE_RECURSE
  "CMakeFiles/embedded_firmware.dir/embedded_firmware.cpp.o"
  "CMakeFiles/embedded_firmware.dir/embedded_firmware.cpp.o.d"
  "embedded_firmware"
  "embedded_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
