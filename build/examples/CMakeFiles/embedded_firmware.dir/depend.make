# Empty dependencies file for embedded_firmware.
# This may be replaced when dependencies are built.
