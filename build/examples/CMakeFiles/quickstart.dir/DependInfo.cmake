
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/qcc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/programs/CMakeFiles/qcc_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/qcc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/qcc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/qcc_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/qcc_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/qcc_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/qcc_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/qcc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/cminor/CMakeFiles/qcc_cminor.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/qcc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/clight/CMakeFiles/qcc_clight.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/qcc_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
