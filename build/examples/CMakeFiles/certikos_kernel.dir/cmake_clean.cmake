file(REMOVE_RECURSE
  "CMakeFiles/certikos_kernel.dir/certikos_kernel.cpp.o"
  "CMakeFiles/certikos_kernel.dir/certikos_kernel.cpp.o.d"
  "certikos_kernel"
  "certikos_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certikos_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
