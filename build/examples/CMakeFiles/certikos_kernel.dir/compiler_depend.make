# Empty compiler generated dependencies file for certikos_kernel.
# This may be replaced when dependencies are built.
