# Empty compiler generated dependencies file for qcc_tool.
# This may be replaced when dependencies are built.
