file(REMOVE_RECURSE
  "CMakeFiles/qcc_tool.dir/Main.cpp.o"
  "CMakeFiles/qcc_tool.dir/Main.cpp.o.d"
  "qcc"
  "qcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
