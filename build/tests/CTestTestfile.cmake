# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/x86_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/programs_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/mutation_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/inline_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/tailcall_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
