file(REMOVE_RECURSE
  "CMakeFiles/tailcall_test.dir/TailCallTest.cpp.o"
  "CMakeFiles/tailcall_test.dir/TailCallTest.cpp.o.d"
  "tailcall_test"
  "tailcall_test.pdb"
  "tailcall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tailcall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
