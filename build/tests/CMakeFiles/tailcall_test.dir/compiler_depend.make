# Empty compiler generated dependencies file for tailcall_test.
# This may be replaced when dependencies are built.
