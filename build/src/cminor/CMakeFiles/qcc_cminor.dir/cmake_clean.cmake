file(REMOVE_RECURSE
  "CMakeFiles/qcc_cminor.dir/Cminor.cpp.o"
  "CMakeFiles/qcc_cminor.dir/Cminor.cpp.o.d"
  "CMakeFiles/qcc_cminor.dir/CminorInterp.cpp.o"
  "CMakeFiles/qcc_cminor.dir/CminorInterp.cpp.o.d"
  "CMakeFiles/qcc_cminor.dir/Lower.cpp.o"
  "CMakeFiles/qcc_cminor.dir/Lower.cpp.o.d"
  "libqcc_cminor.a"
  "libqcc_cminor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_cminor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
