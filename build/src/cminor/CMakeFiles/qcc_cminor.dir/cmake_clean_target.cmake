file(REMOVE_RECURSE
  "libqcc_cminor.a"
)
