# Empty compiler generated dependencies file for qcc_cminor.
# This may be replaced when dependencies are built.
