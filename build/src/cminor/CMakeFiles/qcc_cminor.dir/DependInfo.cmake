
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cminor/Cminor.cpp" "src/cminor/CMakeFiles/qcc_cminor.dir/Cminor.cpp.o" "gcc" "src/cminor/CMakeFiles/qcc_cminor.dir/Cminor.cpp.o.d"
  "/root/repo/src/cminor/CminorInterp.cpp" "src/cminor/CMakeFiles/qcc_cminor.dir/CminorInterp.cpp.o" "gcc" "src/cminor/CMakeFiles/qcc_cminor.dir/CminorInterp.cpp.o.d"
  "/root/repo/src/cminor/Lower.cpp" "src/cminor/CMakeFiles/qcc_cminor.dir/Lower.cpp.o" "gcc" "src/cminor/CMakeFiles/qcc_cminor.dir/Lower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clight/CMakeFiles/qcc_clight.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/qcc_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
