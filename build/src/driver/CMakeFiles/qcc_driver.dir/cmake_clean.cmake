file(REMOVE_RECURSE
  "CMakeFiles/qcc_driver.dir/Compiler.cpp.o"
  "CMakeFiles/qcc_driver.dir/Compiler.cpp.o.d"
  "libqcc_driver.a"
  "libqcc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
