file(REMOVE_RECURSE
  "libqcc_driver.a"
)
