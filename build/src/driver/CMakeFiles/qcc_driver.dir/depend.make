# Empty dependencies file for qcc_driver.
# This may be replaced when dependencies are built.
