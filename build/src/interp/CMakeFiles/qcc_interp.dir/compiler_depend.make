# Empty compiler generated dependencies file for qcc_interp.
# This may be replaced when dependencies are built.
