file(REMOVE_RECURSE
  "libqcc_interp.a"
)
