file(REMOVE_RECURSE
  "CMakeFiles/qcc_interp.dir/Interp.cpp.o"
  "CMakeFiles/qcc_interp.dir/Interp.cpp.o.d"
  "libqcc_interp.a"
  "libqcc_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
