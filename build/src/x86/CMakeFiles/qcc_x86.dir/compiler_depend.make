# Empty compiler generated dependencies file for qcc_x86.
# This may be replaced when dependencies are built.
