file(REMOVE_RECURSE
  "CMakeFiles/qcc_x86.dir/Asm.cpp.o"
  "CMakeFiles/qcc_x86.dir/Asm.cpp.o.d"
  "CMakeFiles/qcc_x86.dir/Emit.cpp.o"
  "CMakeFiles/qcc_x86.dir/Emit.cpp.o.d"
  "CMakeFiles/qcc_x86.dir/Machine.cpp.o"
  "CMakeFiles/qcc_x86.dir/Machine.cpp.o.d"
  "libqcc_x86.a"
  "libqcc_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
