file(REMOVE_RECURSE
  "libqcc_x86.a"
)
