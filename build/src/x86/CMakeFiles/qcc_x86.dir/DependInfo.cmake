
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/Asm.cpp" "src/x86/CMakeFiles/qcc_x86.dir/Asm.cpp.o" "gcc" "src/x86/CMakeFiles/qcc_x86.dir/Asm.cpp.o.d"
  "/root/repo/src/x86/Emit.cpp" "src/x86/CMakeFiles/qcc_x86.dir/Emit.cpp.o" "gcc" "src/x86/CMakeFiles/qcc_x86.dir/Emit.cpp.o.d"
  "/root/repo/src/x86/Machine.cpp" "src/x86/CMakeFiles/qcc_x86.dir/Machine.cpp.o" "gcc" "src/x86/CMakeFiles/qcc_x86.dir/Machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mach/CMakeFiles/qcc_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/qcc_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/qcc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/cminor/CMakeFiles/qcc_cminor.dir/DependInfo.cmake"
  "/root/repo/build/src/clight/CMakeFiles/qcc_clight.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
