file(REMOVE_RECURSE
  "CMakeFiles/qcc_analysis.dir/Analyzer.cpp.o"
  "CMakeFiles/qcc_analysis.dir/Analyzer.cpp.o.d"
  "CMakeFiles/qcc_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/qcc_analysis.dir/CallGraph.cpp.o.d"
  "libqcc_analysis.a"
  "libqcc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
