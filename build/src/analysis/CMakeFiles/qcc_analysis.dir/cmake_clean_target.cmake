file(REMOVE_RECURSE
  "libqcc_analysis.a"
)
