# Empty dependencies file for qcc_analysis.
# This may be replaced when dependencies are built.
