file(REMOVE_RECURSE
  "CMakeFiles/qcc_clight.dir/Clight.cpp.o"
  "CMakeFiles/qcc_clight.dir/Clight.cpp.o.d"
  "CMakeFiles/qcc_clight.dir/Verify.cpp.o"
  "CMakeFiles/qcc_clight.dir/Verify.cpp.o.d"
  "libqcc_clight.a"
  "libqcc_clight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_clight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
