file(REMOVE_RECURSE
  "libqcc_clight.a"
)
