# Empty compiler generated dependencies file for qcc_clight.
# This may be replaced when dependencies are built.
