# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("events")
subdirs("frontend")
subdirs("clight")
subdirs("interp")
subdirs("logic")
subdirs("analysis")
subdirs("cminor")
subdirs("rtl")
subdirs("mach")
subdirs("x86")
subdirs("measure")
subdirs("driver")
subdirs("programs")
