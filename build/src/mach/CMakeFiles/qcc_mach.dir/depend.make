# Empty dependencies file for qcc_mach.
# This may be replaced when dependencies are built.
