
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mach/Lower.cpp" "src/mach/CMakeFiles/qcc_mach.dir/Lower.cpp.o" "gcc" "src/mach/CMakeFiles/qcc_mach.dir/Lower.cpp.o.d"
  "/root/repo/src/mach/Mach.cpp" "src/mach/CMakeFiles/qcc_mach.dir/Mach.cpp.o" "gcc" "src/mach/CMakeFiles/qcc_mach.dir/Mach.cpp.o.d"
  "/root/repo/src/mach/MachInterp.cpp" "src/mach/CMakeFiles/qcc_mach.dir/MachInterp.cpp.o" "gcc" "src/mach/CMakeFiles/qcc_mach.dir/MachInterp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/qcc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/qcc_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cminor/CMakeFiles/qcc_cminor.dir/DependInfo.cmake"
  "/root/repo/build/src/clight/CMakeFiles/qcc_clight.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
