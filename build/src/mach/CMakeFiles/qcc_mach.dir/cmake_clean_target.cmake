file(REMOVE_RECURSE
  "libqcc_mach.a"
)
