file(REMOVE_RECURSE
  "CMakeFiles/qcc_mach.dir/Lower.cpp.o"
  "CMakeFiles/qcc_mach.dir/Lower.cpp.o.d"
  "CMakeFiles/qcc_mach.dir/Mach.cpp.o"
  "CMakeFiles/qcc_mach.dir/Mach.cpp.o.d"
  "CMakeFiles/qcc_mach.dir/MachInterp.cpp.o"
  "CMakeFiles/qcc_mach.dir/MachInterp.cpp.o.d"
  "libqcc_mach.a"
  "libqcc_mach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_mach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
