file(REMOVE_RECURSE
  "CMakeFiles/qcc_events.dir/Events.cpp.o"
  "CMakeFiles/qcc_events.dir/Events.cpp.o.d"
  "libqcc_events.a"
  "libqcc_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
