# Empty compiler generated dependencies file for qcc_events.
# This may be replaced when dependencies are built.
