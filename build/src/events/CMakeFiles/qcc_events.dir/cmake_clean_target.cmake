file(REMOVE_RECURSE
  "libqcc_events.a"
)
