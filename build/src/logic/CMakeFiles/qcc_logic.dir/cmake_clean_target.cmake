file(REMOVE_RECURSE
  "libqcc_logic.a"
)
