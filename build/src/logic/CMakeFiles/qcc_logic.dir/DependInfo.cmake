
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/Bound.cpp" "src/logic/CMakeFiles/qcc_logic.dir/Bound.cpp.o" "gcc" "src/logic/CMakeFiles/qcc_logic.dir/Bound.cpp.o.d"
  "/root/repo/src/logic/Builder.cpp" "src/logic/CMakeFiles/qcc_logic.dir/Builder.cpp.o" "gcc" "src/logic/CMakeFiles/qcc_logic.dir/Builder.cpp.o.d"
  "/root/repo/src/logic/Checker.cpp" "src/logic/CMakeFiles/qcc_logic.dir/Checker.cpp.o" "gcc" "src/logic/CMakeFiles/qcc_logic.dir/Checker.cpp.o.d"
  "/root/repo/src/logic/Convert.cpp" "src/logic/CMakeFiles/qcc_logic.dir/Convert.cpp.o" "gcc" "src/logic/CMakeFiles/qcc_logic.dir/Convert.cpp.o.d"
  "/root/repo/src/logic/Entail.cpp" "src/logic/CMakeFiles/qcc_logic.dir/Entail.cpp.o" "gcc" "src/logic/CMakeFiles/qcc_logic.dir/Entail.cpp.o.d"
  "/root/repo/src/logic/Logic.cpp" "src/logic/CMakeFiles/qcc_logic.dir/Logic.cpp.o" "gcc" "src/logic/CMakeFiles/qcc_logic.dir/Logic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clight/CMakeFiles/qcc_clight.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/qcc_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
