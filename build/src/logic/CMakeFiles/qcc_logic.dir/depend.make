# Empty dependencies file for qcc_logic.
# This may be replaced when dependencies are built.
