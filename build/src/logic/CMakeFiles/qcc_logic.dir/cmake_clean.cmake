file(REMOVE_RECURSE
  "CMakeFiles/qcc_logic.dir/Bound.cpp.o"
  "CMakeFiles/qcc_logic.dir/Bound.cpp.o.d"
  "CMakeFiles/qcc_logic.dir/Builder.cpp.o"
  "CMakeFiles/qcc_logic.dir/Builder.cpp.o.d"
  "CMakeFiles/qcc_logic.dir/Checker.cpp.o"
  "CMakeFiles/qcc_logic.dir/Checker.cpp.o.d"
  "CMakeFiles/qcc_logic.dir/Convert.cpp.o"
  "CMakeFiles/qcc_logic.dir/Convert.cpp.o.d"
  "CMakeFiles/qcc_logic.dir/Entail.cpp.o"
  "CMakeFiles/qcc_logic.dir/Entail.cpp.o.d"
  "CMakeFiles/qcc_logic.dir/Logic.cpp.o"
  "CMakeFiles/qcc_logic.dir/Logic.cpp.o.d"
  "libqcc_logic.a"
  "libqcc_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
