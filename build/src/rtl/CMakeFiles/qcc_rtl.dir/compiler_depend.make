# Empty compiler generated dependencies file for qcc_rtl.
# This may be replaced when dependencies are built.
