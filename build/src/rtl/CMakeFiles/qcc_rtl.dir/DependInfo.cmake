
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/Inline.cpp" "src/rtl/CMakeFiles/qcc_rtl.dir/Inline.cpp.o" "gcc" "src/rtl/CMakeFiles/qcc_rtl.dir/Inline.cpp.o.d"
  "/root/repo/src/rtl/Liveness.cpp" "src/rtl/CMakeFiles/qcc_rtl.dir/Liveness.cpp.o" "gcc" "src/rtl/CMakeFiles/qcc_rtl.dir/Liveness.cpp.o.d"
  "/root/repo/src/rtl/Opt.cpp" "src/rtl/CMakeFiles/qcc_rtl.dir/Opt.cpp.o" "gcc" "src/rtl/CMakeFiles/qcc_rtl.dir/Opt.cpp.o.d"
  "/root/repo/src/rtl/Rtl.cpp" "src/rtl/CMakeFiles/qcc_rtl.dir/Rtl.cpp.o" "gcc" "src/rtl/CMakeFiles/qcc_rtl.dir/Rtl.cpp.o.d"
  "/root/repo/src/rtl/RtlInterp.cpp" "src/rtl/CMakeFiles/qcc_rtl.dir/RtlInterp.cpp.o" "gcc" "src/rtl/CMakeFiles/qcc_rtl.dir/RtlInterp.cpp.o.d"
  "/root/repo/src/rtl/RtlLower.cpp" "src/rtl/CMakeFiles/qcc_rtl.dir/RtlLower.cpp.o" "gcc" "src/rtl/CMakeFiles/qcc_rtl.dir/RtlLower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cminor/CMakeFiles/qcc_cminor.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/qcc_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/clight/CMakeFiles/qcc_clight.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
