file(REMOVE_RECURSE
  "libqcc_rtl.a"
)
