file(REMOVE_RECURSE
  "CMakeFiles/qcc_rtl.dir/Inline.cpp.o"
  "CMakeFiles/qcc_rtl.dir/Inline.cpp.o.d"
  "CMakeFiles/qcc_rtl.dir/Liveness.cpp.o"
  "CMakeFiles/qcc_rtl.dir/Liveness.cpp.o.d"
  "CMakeFiles/qcc_rtl.dir/Opt.cpp.o"
  "CMakeFiles/qcc_rtl.dir/Opt.cpp.o.d"
  "CMakeFiles/qcc_rtl.dir/Rtl.cpp.o"
  "CMakeFiles/qcc_rtl.dir/Rtl.cpp.o.d"
  "CMakeFiles/qcc_rtl.dir/RtlInterp.cpp.o"
  "CMakeFiles/qcc_rtl.dir/RtlInterp.cpp.o.d"
  "CMakeFiles/qcc_rtl.dir/RtlLower.cpp.o"
  "CMakeFiles/qcc_rtl.dir/RtlLower.cpp.o.d"
  "libqcc_rtl.a"
  "libqcc_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
