file(REMOVE_RECURSE
  "CMakeFiles/qcc_frontend.dir/Ast.cpp.o"
  "CMakeFiles/qcc_frontend.dir/Ast.cpp.o.d"
  "CMakeFiles/qcc_frontend.dir/Elaborator.cpp.o"
  "CMakeFiles/qcc_frontend.dir/Elaborator.cpp.o.d"
  "CMakeFiles/qcc_frontend.dir/Frontend.cpp.o"
  "CMakeFiles/qcc_frontend.dir/Frontend.cpp.o.d"
  "CMakeFiles/qcc_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/qcc_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/qcc_frontend.dir/Parser.cpp.o"
  "CMakeFiles/qcc_frontend.dir/Parser.cpp.o.d"
  "libqcc_frontend.a"
  "libqcc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
