# Empty compiler generated dependencies file for qcc_frontend.
# This may be replaced when dependencies are built.
