file(REMOVE_RECURSE
  "libqcc_frontend.a"
)
