file(REMOVE_RECURSE
  "libqcc_measure.a"
)
