file(REMOVE_RECURSE
  "CMakeFiles/qcc_measure.dir/StackMeter.cpp.o"
  "CMakeFiles/qcc_measure.dir/StackMeter.cpp.o.d"
  "libqcc_measure.a"
  "libqcc_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
