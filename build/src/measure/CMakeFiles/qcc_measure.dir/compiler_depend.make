# Empty compiler generated dependencies file for qcc_measure.
# This may be replaced when dependencies are built.
