
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/programs/Certikos.cpp" "src/programs/CMakeFiles/qcc_programs.dir/Certikos.cpp.o" "gcc" "src/programs/CMakeFiles/qcc_programs.dir/Certikos.cpp.o.d"
  "/root/repo/src/programs/Compcert.cpp" "src/programs/CMakeFiles/qcc_programs.dir/Compcert.cpp.o" "gcc" "src/programs/CMakeFiles/qcc_programs.dir/Compcert.cpp.o.d"
  "/root/repo/src/programs/Corpus.cpp" "src/programs/CMakeFiles/qcc_programs.dir/Corpus.cpp.o" "gcc" "src/programs/CMakeFiles/qcc_programs.dir/Corpus.cpp.o.d"
  "/root/repo/src/programs/Mibench.cpp" "src/programs/CMakeFiles/qcc_programs.dir/Mibench.cpp.o" "gcc" "src/programs/CMakeFiles/qcc_programs.dir/Mibench.cpp.o.d"
  "/root/repo/src/programs/Table2.cpp" "src/programs/CMakeFiles/qcc_programs.dir/Table2.cpp.o" "gcc" "src/programs/CMakeFiles/qcc_programs.dir/Table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/qcc_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/clight/CMakeFiles/qcc_clight.dir/DependInfo.cmake"
  "/root/repo/build/src/events/CMakeFiles/qcc_events.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
