file(REMOVE_RECURSE
  "libqcc_programs.a"
)
