file(REMOVE_RECURSE
  "CMakeFiles/qcc_programs.dir/Certikos.cpp.o"
  "CMakeFiles/qcc_programs.dir/Certikos.cpp.o.d"
  "CMakeFiles/qcc_programs.dir/Compcert.cpp.o"
  "CMakeFiles/qcc_programs.dir/Compcert.cpp.o.d"
  "CMakeFiles/qcc_programs.dir/Corpus.cpp.o"
  "CMakeFiles/qcc_programs.dir/Corpus.cpp.o.d"
  "CMakeFiles/qcc_programs.dir/Mibench.cpp.o"
  "CMakeFiles/qcc_programs.dir/Mibench.cpp.o.d"
  "CMakeFiles/qcc_programs.dir/Table2.cpp.o"
  "CMakeFiles/qcc_programs.dir/Table2.cpp.o.d"
  "libqcc_programs.a"
  "libqcc_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
