# Empty compiler generated dependencies file for qcc_programs.
# This may be replaced when dependencies are built.
