file(REMOVE_RECURSE
  "CMakeFiles/qcc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/qcc_support.dir/Diagnostics.cpp.o.d"
  "libqcc_support.a"
  "libqcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
