file(REMOVE_RECURSE
  "libqcc_support.a"
)
