# Empty compiler generated dependencies file for qcc_support.
# This may be replaced when dependencies are built.
