//===- tests/TailCallTest.cpp - Tail-call recognition tests ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "events/Refinement.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::driver;

namespace {

const char *TailRecursiveSum =
    "u32 sum_acc(u32 n, u32 acc) {\n"
    "  if (n == 0) return acc;\n"
    "  return sum_acc(n - 1, acc + n);\n"
    "}\n"
    "int main() { return (int)sum_acc(200, 0); }\n";

Compilation compileWith(const std::string &Src, bool TailCalls) {
  DiagnosticEngine D;
  CompilerOptions Opt;
  Opt.TailCalls = TailCalls;
  Opt.ValidateTranslation = true;
  Opt.AnalyzeBounds = false;
  auto C = compile(Src, D, std::move(Opt));
  EXPECT_TRUE(C) << D.str();
  return C ? std::move(*C) : Compilation{};
}

TEST(TailCall, ResultsAgreeWithTheConventionalPipeline) {
  Compilation Plain = compileWith(TailRecursiveSum, false);
  Compilation Tail = compileWith(TailRecursiveSum, true);
  measure::Measurement RPlain = measureStack(Plain);
  measure::Measurement RTail = measureStack(Tail);
  ASSERT_TRUE(RPlain.Ok);
  ASSERT_TRUE(RTail.Ok) << RTail.Error;
  EXPECT_EQ(RPlain.ExitCode, RTail.ExitCode);
  EXPECT_EQ(RPlain.ExitCode, 200 * 201 / 2);
}

TEST(TailCall, TailRecursionRunsInConstantStack) {
  Compilation Tail = compileWith(TailRecursiveSum, true);
  measure::Measurement R200 = measureStack(Tail);
  ASSERT_TRUE(R200.Ok);

  // Conventional compilation needs ~200 frames; tail calls a constant.
  Compilation Plain = compileWith(TailRecursiveSum, false);
  measure::Measurement P200 = measureStack(Plain);
  ASSERT_TRUE(P200.Ok);
  EXPECT_LT(R200.StackBytes, P200.StackBytes / 10);

  // And the depth no longer scales with the input.
  DiagnosticEngine D;
  CompilerOptions Opt;
  Opt.TailCalls = true;
  Opt.AnalyzeBounds = false;
  auto Deep = compile("u32 sum_acc(u32 n, u32 acc) {\n"
                      "  if (n == 0) return acc;\n"
                      "  return sum_acc(n - 1, acc + n);\n"
                      "}\n"
                      "int main() { return (int)sum_acc(20000, 0); }\n",
                      D, std::move(Opt));
  ASSERT_TRUE(Deep);
  measure::Measurement R20000 = measureStack(*Deep);
  ASSERT_TRUE(R20000.Ok) << R20000.Error;
  EXPECT_EQ(R20000.StackBytes, R200.StackBytes);
}

TEST(TailCall, MachTraceStillQuantitativelyRefinesRtl) {
  // The reordered ret/call events shrink the open-call profile; the
  // domination certificate must accept, the falsifier must not object.
  Compilation Tail = compileWith(TailRecursiveSum, true);
  Behavior BMach = mach::runProgram(Tail.Mach);
  Behavior BRtl = rtl::runProgram(Tail.Rtl);
  RefinementResult R = checkQuantitativeRefinement(BMach, BRtl);
  EXPECT_TRUE(R.Ok) << R.Reason;
  EXPECT_TRUE(falsifyWeightDominance(BMach, BRtl).Ok);
}

TEST(TailCall, MutualTailRecursionWorks) {
  const char *Src =
      "u32 odd(u32 n);\n"
      "u32 even(u32 n) { if (n == 0) return 1; return odd(n - 1); }\n"
      "u32 odd(u32 n) { if (n == 0) return 0; return even(n - 1); }\n"
      "int main() { return (int)even(5001); }\n";
  Compilation Tail = compileWith(Src, true);
  measure::Measurement R = measureStack(Tail);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ExitCode, 0); // 5001 is odd.
  EXPECT_LT(R.StackBytes, 64u);
}

TEST(TailCall, NonTailCallsAreLeftAlone) {
  // fib's first recursive call is not in tail position; only chains that
  // really end in `return f(...)` may be rewritten.
  const char *Src =
      "u32 fib(u32 n) { if (n < 2) return n;\n"
      "  return fib(n - 1) + fib(n - 2); }\n"
      "int main() { return (int)fib(14); }\n";
  Compilation Tail = compileWith(Src, true);
  measure::Measurement R = measureStack(Tail);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ExitCode, 377);
  // Depth still linear in n: strictly more than a few frames.
  EXPECT_GT(R.StackBytes, 100u);
}

TEST(TailCall, ArgumentAreaConstraintIsRespected) {
  // The callee takes more arguments than the caller has parameters: no
  // room above the return address, so the call stays conventional (and
  // the program still works).
  const char *Src =
      "u32 wide(u32 a, u32 b, u32 c) { return a + b + c; }\n"
      "u32 narrow(u32 x) { return wide(x, x + 1, x + 2); }\n"
      "int main() { return (int)narrow(10); }\n";
  Compilation Tail = compileWith(Src, true);
  measure::Measurement R = measureStack(Tail);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.ExitCode, 33);
  // narrow's frame must still exist under wide's (conventional call).
  const x86::AsmFunction *Narrow = Tail.Asm.findFunction("narrow");
  ASSERT_TRUE(Narrow);
  bool SawTailJmp = false;
  for (const x86::Instr &I : Narrow->Code)
    SawTailJmp |= I.K == x86::InstrKind::TailJmp;
  EXPECT_FALSE(SawTailJmp);
}

TEST(TailCall, BoundsRemainSoundButLoseTightness) {
  DiagnosticEngine D;
  CompilerOptions Opt;
  Opt.TailCalls = true;
  auto C = compile(TailRecursiveSum, D, std::move(Opt));
  ASSERT_TRUE(C) << D.str();
  // sum_acc is recursive: the analyzer skips it; main therefore has no
  // automatic bound. Verify instead on a non-recursive tail-call chain.
  const char *Chain =
      "u32 leaf(u32 x) { return x * 2; }\n"
      "u32 mid(u32 x) { return leaf(x + 1); }\n"
      "int main() { return (int)mid(4); }\n";
  DiagnosticEngine D2;
  CompilerOptions Opt2;
  Opt2.TailCalls = true;
  auto C2 = compile(Chain, D2, std::move(Opt2));
  ASSERT_TRUE(C2) << D2.str();
  auto Bound = concreteCallBound(*C2, "main");
  ASSERT_TRUE(Bound);
  measure::Measurement M = measureStack(*C2);
  ASSERT_TRUE(M.Ok);
  EXPECT_GE(*Bound, M.StackBytes); // Sound.
  EXPECT_GT(*Bound - M.StackBytes, 4u); // But no longer 4-tight.
}

} // namespace
