//===- tests/AnalysisTest.cpp - Unit tests for qcc_analysis ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/CallGraph.h"
#include "events/Weight.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::logic;

namespace {

clight::Program mustParse(const std::string &Src) {
  DiagnosticEngine D;
  auto P = frontend::parseProgram(Src, D);
  EXPECT_TRUE(P) << D.str();
  return P ? std::move(*P) : clight::Program{};
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST(CallGraph, EdgesAndTopoOrder) {
  clight::Program P = mustParse(R"(
void h() { }
void g() { h(); }
void f() { g(); h(); }
int main() { f(); return 0; }
)");
  analysis::CallGraph CG(P);
  EXPECT_EQ(CG.callees("f"), (std::set<std::string>{"g", "h"}));
  EXPECT_EQ(CG.callees("main"), (std::set<std::string>{"f"}));
  EXPECT_TRUE(CG.callees("h").empty());
  EXPECT_TRUE(CG.recursiveFunctions().empty());

  // Callee-first: h before g before f before main.
  const auto &Topo = CG.topologicalOrder();
  auto Pos = [&Topo](const std::string &N) {
    return std::find(Topo.begin(), Topo.end(), N) - Topo.begin();
  };
  EXPECT_LT(Pos("h"), Pos("g"));
  EXPECT_LT(Pos("g"), Pos("f"));
  EXPECT_LT(Pos("f"), Pos("main"));
}

TEST(CallGraph, DirectRecursionDetected) {
  clight::Program P = mustParse(R"(
u32 f(u32 n) { if (n == 0) return 0; return f(n - 1); }
int main() { return f(3); }
)");
  analysis::CallGraph CG(P);
  EXPECT_TRUE(CG.isRecursive("f"));
  EXPECT_FALSE(CG.isRecursive("main"));
}

TEST(CallGraph, MutualRecursionDetected) {
  clight::Program P = mustParse(R"(
u32 odd(u32 n);
u32 even(u32 n) { if (n == 0) return 1; return odd(n - 1); }
u32 odd(u32 n) { if (n == 0) return 0; return even(n - 1); }
int main() { return even(4); }
)");
  analysis::CallGraph CG(P);
  EXPECT_TRUE(CG.isRecursive("even"));
  EXPECT_TRUE(CG.isRecursive("odd"));
  EXPECT_FALSE(CG.isRecursive("main"));
}

//===----------------------------------------------------------------------===//
// Automatic analyzer
//===----------------------------------------------------------------------===//

TEST(Analyzer, LeafFunctionBoundIsZero) {
  clight::Program P = mustParse("void f() { }\nint main() { f(); return 0; }");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  ASSERT_TRUE(R.Gamma.count("f"));
  StackMetric M;
  M.setCost("f", 40);
  EXPECT_EQ(evalBound(R.Gamma.at("f").Pre, M, {}), ExtNat(0));
  // The call bound M(f) + 0 is what Table 1 reports.
  EXPECT_EQ(evalBound(R.callBound("f"), M, {}), ExtNat(40));
}

TEST(Analyzer, SequentialCallsTakeMax) {
  clight::Program P = mustParse(R"(
void f() { }
void g() { }
int main() { f(); g(); return 0; }
)");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  ASSERT_TRUE(R.Gamma.count("main"));
  StackMetric M;
  M.setCost("main", 8);
  M.setCost("f", 100);
  M.setCost("g", 40);
  // B_main = max(M(f), M(g)); call bound adds M(main).
  EXPECT_EQ(evalBound(R.callBound("main"), M, {}), ExtNat(108));
}

TEST(Analyzer, NestedCallsSum) {
  clight::Program P = mustParse(R"(
void h() { }
void g() { h(); }
int main() { g(); return 0; }
)");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  StackMetric M;
  M.setCost("main", 8);
  M.setCost("g", 16);
  M.setCost("h", 32);
  EXPECT_EQ(evalBound(R.callBound("main"), M, {}), ExtNat(56));
}

TEST(Analyzer, BranchesTakeMax) {
  clight::Program P = mustParse(R"(
void cheap() { }
void deep2() { }
void deep1() { deep2(); }
u32 flag;
int main() { if (flag) deep1(); else cheap(); return 0; }
)");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  StackMetric M;
  M.setCost("main", 4);
  M.setCost("cheap", 100);
  M.setCost("deep1", 30);
  M.setCost("deep2", 50);
  // max(M(cheap), M(deep1)+M(deep2)) = max(100, 80) = 100.
  EXPECT_EQ(evalBound(R.callBound("main"), M, {}), ExtNat(104));
  M.setCost("cheap", 10);
  EXPECT_EQ(evalBound(R.callBound("main"), M, {}), ExtNat(84));
}

TEST(Analyzer, LoopBodyBoundIsLoopBound) {
  clight::Program P = mustParse(R"(
void work() { }
int main() { u32 i; for (i = 0; i < 100; i++) work(); return 0; }
)");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  StackMetric M;
  M.setCost("main", 8);
  M.setCost("work", 24);
  // The loop does not accumulate stack: bound is one activation of work.
  EXPECT_EQ(evalBound(R.callBound("main"), M, {}), ExtNat(32));
}

TEST(Analyzer, Section2InitBoundShape) {
  clight::Program P = mustParse(R"(
#define ALEN 64
u32 a[ALEN];
u32 seed = 1;
u32 random() { seed = (seed * 1664525) + 1013904223; return seed; }
void init() {
  u32 i, rnd, prev = 0;
  for (i = 0; i < ALEN; i++) {
    rnd = random();
    a[i] = prev + rnd % 17;
    prev = a[i];
  }
}
int main() { init(); return 0; }
)");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  ASSERT_TRUE(R.Gamma.count("init"));
  // Paper section 2: {M(init) + M(random)} init() {M(init) + M(random)}.
  StackMetric M;
  M.setCost("init", 24);
  M.setCost("random", 8);
  EXPECT_EQ(evalBound(R.callBound("init"), M, {}), ExtNat(32));
}

TEST(Analyzer, RecursiveFunctionsSkippedWithWarning) {
  clight::Program P = mustParse(R"(
u32 f(u32 n) { if (n == 0) return 0; return f(n - 1); }
int main() { return f(3); }
)");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  EXPECT_FALSE(R.Gamma.count("f"));
  // main calls the unanalyzed f, so it is skipped too.
  EXPECT_FALSE(R.Gamma.count("main"));
  EXPECT_EQ(R.SkippedRecursive.size(), 2u);
  EXPECT_FALSE(D.hasErrors()); // Warnings, not errors.
}

TEST(Analyzer, SeededRecursiveSpecComposesIntoCallers) {
  // Interoperability (Paper section 5): seed an interactively derived
  // bound for recursive f; the analyzer then bounds its caller.
  clight::Program P = mustParse(R"(
u32 f(u32 n) { if (n == 0) return 0; return f(n - 1); }
int main() { return f(3); }
)");
  FunctionContext Seed;
  Seed["f"] = FunctionSpec::balanced(
      bMul(bMetric("f"), bNatTerm(IntTermNode::var("n"))));
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D, Seed);
  ASSERT_TRUE(R.Gamma.count("main")) << D.str();
  StackMetric M;
  M.setCost("main", 8);
  M.setCost("f", 24);
  // B_main = M(f) + M(f)*3 (argument n = 3): 24 + 72 = 96; +M(main).
  EXPECT_EQ(evalBound(R.callBound("main"), M, {}), ExtNat(104));
}

TEST(Analyzer, ExternalCallsCostNothing) {
  clight::Program P = mustParse(R"(
extern void print(int);
int main() { print(1); print(2); return 0; }
)");
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D);
  StackMetric M;
  M.setCost("main", 8);
  EXPECT_EQ(evalBound(R.callBound("main"), M, {}), ExtNat(8));
}

TEST(Analyzer, WholeCorpusShapedProgramSoundAgainstInterpreter) {
  // The full section 2 program with search seeded; checks W_M(trace) <=
  // bound under several metrics.
  const char *Src = R"(
#define ALEN 64
u32 a[ALEN];
u32 seed = 9;
u32 search(u32 elem, u32 beg, u32 end) {
  u32 mid = beg + (end - beg) / 2;
  if (end - beg <= 1) return beg;
  if (a[mid] > elem) end = mid; else beg = mid;
  return search(elem, beg, end);
}
u32 random() { seed = (seed * 1664525) + 1013904223; return seed; }
void init() {
  u32 i, rnd, prev = 0;
  for (i = 0; i < ALEN; i++) {
    rnd = random();
    a[i] = prev + rnd % 17;
    prev = a[i];
  }
}
int main() {
  u32 idx, elem;
  init();
  elem = random() % (17 * ALEN);
  idx = search(elem, 0, ALEN);
  return a[idx] == elem;
}
)";
  clight::Program P = mustParse(Src);
  FunctionContext Seed;
  Seed["search"] = FunctionSpec::balanced(
      bMul(bMetric("search"),
           bAdd(bConst(1), bLog2C(IntTermNode::sub(
                               IntTermNode::var("end"),
                               IntTermNode::var("beg"))))));
  DiagnosticEngine D;
  auto R = analysis::analyzeProgram(P, D, Seed);
  ASSERT_TRUE(R.Gamma.count("main")) << D.str();

  Behavior B = interp::runProgram(P);
  ASSERT_TRUE(B.converged());
  for (uint32_t Scale : {1u, 7u, 40u}) {
    StackMetric M;
    M.setCost("main", 4 * Scale);
    M.setCost("init", 6 * Scale);
    M.setCost("random", 2 * Scale);
    M.setCost("search", 10 * Scale);
    ExtNat Bound = evalBound(R.callBound("main"), M, {});
    ASSERT_TRUE(Bound.isFinite());
    EXPECT_GE(Bound.finiteValue(), weight(M, B.Events));
  }
}

} // namespace
