//===- tests/ProgramsTest.cpp - Corpus end-to-end tests -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every corpus file compiles through the validated pipeline; every
/// Table 1 function gets an automatic, checker-validated bound; every
/// Table 2 specification's derivation builds and checks; and bounds are
/// sound against machine measurements.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Frontend.h"
#include "logic/Builder.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::driver;
using namespace qcc::logic;

namespace {

class Table1Corpus : public testing::TestWithParam<programs::CorpusProgram> {
};

TEST_P(Table1Corpus, CompilesWithFullValidation) {
  const programs::CorpusProgram &P = GetParam();
  DiagnosticEngine D;
  auto C = compile(P.Source, D);
  ASSERT_TRUE(C) << P.Id << ": " << D.str();
}

TEST_P(Table1Corpus, EveryListedFunctionGetsAnAutomaticBound) {
  const programs::CorpusProgram &P = GetParam();
  DiagnosticEngine D;
  CompilerOptions Opt;
  Opt.ValidateTranslation = false; // Covered by the test above.
  auto C = compile(P.Source, D, std::move(Opt));
  ASSERT_TRUE(C) << P.Id << ": " << D.str();
  EXPECT_TRUE(C->Bounds.SkippedRecursive.empty())
      << P.Id << " has unexpected recursion";
  for (const std::string &F : P.Table1Functions) {
    auto B = concreteCallBound(*C, F);
    ASSERT_TRUE(B) << P.Id << "::" << F;
    EXPECT_GE(*B, 4u) << P.Id << "::" << F;
    EXPECT_EQ(*B % 4, 0u) << P.Id << "::" << F;
  }
}

TEST_P(Table1Corpus, MainBoundIsSoundAndTheorem1Holds) {
  const programs::CorpusProgram &P = GetParam();
  DiagnosticEngine D;
  CompilerOptions Opt;
  Opt.ValidateTranslation = false;
  auto C = compile(P.Source, D, std::move(Opt));
  ASSERT_TRUE(C) << P.Id << ": " << D.str();
  auto Bound = concreteCallBound(*C, "main");
  ASSERT_TRUE(Bound) << P.Id;

  measure::Measurement M = measureStack(*C);
  ASSERT_TRUE(M.Ok) << P.Id << ": " << M.Error;
  EXPECT_GE(*Bound, M.StackBytes) << P.Id;

  // Theorem 1: run at sz = bound - 4 (the block is sz + 4 = bound bytes).
  measure::Measurement AtBound =
      runWithStackSize(*C, static_cast<uint32_t>(*Bound) - 4);
  EXPECT_TRUE(AtBound.Ok) << P.Id << ": " << AtBound.Error;
  // Below the measured consumption the program must trap.
  if (M.StackBytes >= 8) {
    measure::Measurement Below =
        runWithStackSize(*C, M.StackBytes - 8);
    EXPECT_FALSE(Below.Ok) << P.Id;
    EXPECT_TRUE(Below.StackOverflow) << P.Id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Table1Corpus, testing::ValuesIn(programs::table1Corpus()),
    [](const testing::TestParamInfo<programs::CorpusProgram> &Info) {
      std::string Name = Info.param.Id;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Table 2: interactive derivations
//===----------------------------------------------------------------------===//

const clight::Program &table2Program() {
  static clight::Program P = [] {
    DiagnosticEngine D;
    auto Parsed = frontend::parseProgram(programs::table2Source(), D);
    EXPECT_TRUE(Parsed) << D.str();
    return Parsed ? std::move(*Parsed) : clight::Program{};
  }();
  return P;
}

class Table2Function : public testing::TestWithParam<std::string> {};

TEST_P(Table2Function, DerivationBuildsAndChecks) {
  const std::string F = GetParam();
  const clight::Program &CL = table2Program();
  FunctionContext Specs = programs::table2Specs();
  ASSERT_TRUE(Specs.count(F)) << F;
  DerivationBuilder Builder(CL, Specs, {});
  for (const auto &[Callee, Hint] : programs::table2CallHints())
    Builder.setCallResultHint(Callee, Hint);
  DiagnosticEngine D;
  auto FB = Builder.buildFunctionBound(F, Specs.at(F), D);
  ASSERT_TRUE(FB) << F << ": " << D.str();
  ProofChecker Checker(CL, Builder.context(), {});
  DiagnosticEngine CD;
  EXPECT_TRUE(Checker.checkFunctionBound(*FB, CD))
      << F << ": " << CD.str() << "\n"
      << FB->Body->str();
}

INSTANTIATE_TEST_SUITE_P(Corpus, Table2Function,
                         testing::Values("recid", "bsearch", "fib",
                                         "partition", "qsort", "filter_pos",
                                         "sum", "fact", "fact_sq",
                                         "filter_find"));

TEST(Table2, WholeFileCompilesWithSeededSpecs) {
  CompilerOptions Opt;
  Opt.SeededSpecs = programs::table2Specs();
  DiagnosticEngine D;
  auto C = compile(programs::table2Source(), D, std::move(Opt));
  ASSERT_TRUE(C) << D.str();
  EXPECT_TRUE(C->Bounds.SkippedRecursive.empty()) << D.str();
  auto Bound = concreteCallBound(*C, "main");
  ASSERT_TRUE(Bound);
  measure::Measurement M = measureStack(*C);
  ASSERT_TRUE(M.Ok) << M.Error;
  EXPECT_GE(*Bound, M.StackBytes);
}

TEST(Table2, GapIsExactlyFourBytesOnWorstCaseDrivers) {
  // Per-function drivers with zero-initialized globals realize each
  // bound's worst case; the measured consumption is then bound - 4
  // (Paper section 6).
  struct Case {
    const char *Function;
    const char *MainBody;
    logic::VarEnv Args;
  };
  const Case Cases[] = {
      {"recid", "return (int)recid(24);", {{"n", 24}}},
      {"bsearch", "return (int)bsearch(0, 0, 256);",
       {{"x", 0}, {"lo", 0}, {"hi", 256}}},
      {"fib", "return (int)fib(12);", {{"n", 12}}},
      {"qsort", "qsort(0, 48); return 0;", {{"lo", 0}, {"hi", 48}}},
      {"filter_pos", "return (int)filter_pos(512, 0, 40);",
       {{"sz", 512}, {"lo", 0}, {"hi", 40}}},
      {"sum", "return (int)sum(0, 48);", {{"lo", 0}, {"hi", 48}}},
      {"fact_sq", "return (int)fact_sq(5);", {{"n", 5}}},
      {"filter_find", "return (int)filter_find(0, 12);",
       {{"lo", 0}, {"hi", 12}}},
  };
  FunctionContext Specs = programs::table2Specs();
  for (const Case &TC : Cases) {
    CompilerOptions Opt;
    Opt.SeededSpecs = Specs;
    Opt.ValidateTranslation = false;
    DiagnosticEngine D;
    auto C = compile(programs::table2DriverSource(TC.MainBody), D,
                     std::move(Opt));
    ASSERT_TRUE(C) << TC.Function << ": " << D.str();
    // Bound for the driver main = M(main) + cost of the one call inside.
    auto Bound = concreteCallBound(*C, "main", TC.Args);
    ASSERT_TRUE(Bound) << TC.Function;
    measure::Measurement M = measureStack(*C);
    ASSERT_TRUE(M.Ok) << TC.Function << ": " << M.Error;
    EXPECT_GE(*Bound, M.StackBytes) << TC.Function;
    EXPECT_EQ(*Bound - M.StackBytes, 4u) << TC.Function;
  }
}

} // namespace
