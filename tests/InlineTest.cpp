//===- tests/InlineTest.cpp - Function-inlining tests ---------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "cminor/Lower.h"
#include "driver/Compiler.h"
#include "events/Refinement.h"
#include "frontend/Frontend.h"
#include "programs/Corpus.h"
#include "rtl/Inline.h"
#include "rtl/Opt.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

rtl::Program toRtl(const std::string &Src) {
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(Src, D);
  EXPECT_TRUE(CL) << D.str();
  return rtl::lowerFromCminor(cminor::lowerFromClight(*CL));
}

TEST(Inline, LeafCallDisappears) {
  rtl::Program P = toRtl("u32 sq(u32 x) { return x * x; }\n"
                         "int main() { return (int)sq(7); }");
  unsigned N = rtl::inlineFunctions(P);
  EXPECT_EQ(N, 1u);
  rtl::optimizeProgram(P);
  Behavior B = rtl::runProgram(P);
  ASSERT_TRUE(B.converged());
  EXPECT_EQ(B.ReturnCode, 49);
  // No memory events for sq remain.
  for (const Event &E : B.Events)
    EXPECT_NE(E.function(), "sq");
}

TEST(Inline, RecursiveFunctionsAreNotInlined) {
  rtl::Program P = toRtl(
      "u32 fib(u32 n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
      "int main() { return (int)fib(10); }");
  EXPECT_EQ(rtl::inlineFunctions(P), 0u);
  Behavior B = rtl::runProgram(P);
  ASSERT_TRUE(B.converged());
  EXPECT_EQ(B.ReturnCode, 55);
}

TEST(Inline, VoidCalleesAndGlobalEffects) {
  rtl::Program P = toRtl("u32 g;\n"
                         "void bump(u32 v) { g += v; }\n"
                         "int main() { bump(3); bump(4); return (int)g; }");
  EXPECT_EQ(rtl::inlineFunctions(P), 2u);
  rtl::optimizeProgram(P);
  Behavior B = rtl::runProgram(P);
  ASSERT_TRUE(B.converged());
  EXPECT_EQ(B.ReturnCode, 7);
}

TEST(Inline, FaultsArePreserved) {
  rtl::Program P = toRtl("u32 half(u32 x, u32 y) { return x / y; }\n"
                         "int main() { return (int)half(6, 0); }");
  rtl::inlineFunctions(P);
  rtl::optimizeProgram(P);
  EXPECT_TRUE(rtl::runProgram(P).failed());
}

TEST(Inline, QuantitativeRefinementHoldsOnCorpus) {
  // Inlining deletes memory events; the profile-domination certificate
  // must still certify every corpus program against the plain RTL.
  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    DiagnosticEngine D;
    auto CL = frontend::parseProgram(P.Source, D);
    ASSERT_TRUE(CL) << P.Id;
    cminor::Program CM = cminor::lowerFromClight(*CL);
    rtl::Program Plain = rtl::lowerFromCminor(CM);
    rtl::Program Inlined = rtl::lowerFromCminor(CM);
    rtl::inlineFunctions(Inlined);
    rtl::optimizeProgram(Inlined);

    Behavior BPlain = rtl::runProgram(Plain);
    Behavior BInlined = rtl::runProgram(Inlined);
    RefinementResult R = checkQuantitativeRefinement(BInlined, BPlain);
    EXPECT_TRUE(R.Ok) << P.Id << ": " << R.Reason;
    EXPECT_TRUE(falsifyWeightDominance(BInlined, BPlain).Ok) << P.Id;
    // Weight under any metric must not increase; spot check uniform.
    StackMetric Uniform;
    for (const clight::Function &F : CL->Functions)
      Uniform.setCost(F.Name, 8);
    EXPECT_LE(weight(Uniform, BInlined.Events),
              weight(Uniform, BPlain.Events))
        << P.Id;
  }
}

TEST(Inline, EndToEndBoundsStaySound) {
  // With inlining on, source-level bounds still cover the (now smaller)
  // measured consumption; the gap may exceed 4 — that is the documented
  // tightness loss of section 3.3's deferred optimization.
  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    DiagnosticEngine D;
    driver::CompilerOptions Opt;
    Opt.Inline = true;
    Opt.ValidateTranslation = true; // Exercise validation with inlining.
    auto C = driver::compile(P.Source, D, std::move(Opt));
    ASSERT_TRUE(C) << P.Id << ": " << D.str();
    auto Bound = driver::concreteCallBound(*C, "main");
    ASSERT_TRUE(Bound) << P.Id;
    measure::Measurement M = driver::measureStack(*C);
    ASSERT_TRUE(M.Ok) << P.Id << ": " << M.Error;
    EXPECT_GE(*Bound, M.StackBytes) << P.Id;
  }
}

} // namespace
