//===- tests/SupervisionTest.cpp - Deadlines, cancel, quarantine, resume --===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The robustness layer over the supervision subsystem (ctest -L robust):
///
///   * fuel exhaustion is a distinct StopCause at every one of the five
///     interpreter levels — never conflated with divergence-as-failure,
///   * deadlines (watchdog-enforced) and explicit cancellation stop runs
///     mid-flight, and a stopped job withholds its verdict: it is
///     quarantined/cancelled, never "failed",
///   * the batch engine retries budget-stopped jobs once at reduced fuel
///     and quarantines repeat offenders with exit code 3, while every
///     other job's result stays bit-identical to an unsupervised run,
///   * the resume journal skips finished work on rerun and never records
///     budget-stopped jobs,
///   * soft memory budgets charged by the streaming sinks stop a
///     compilation with a "memory-budget" diagnostic.
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "batch/Watchdog.h"
#include "cminor/CminorInterp.h"
#include "driver/Compiler.h"
#include "events/TraceSink.h"
#include "interp/Interp.h"
#include "mach/Mach.h"
#include "measure/StackMeter.h"
#include "rtl/Rtl.h"
#include "x86/Machine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>

using namespace qcc;
using namespace qcc::batch;

namespace {

/// Diverges at every level: no events after the initial call, so both
/// sides of every validated pass exhaust their fuel with identical
/// traces and validation still succeeds (div == div).
const char *NonTerminating = R"(
typedef unsigned int u32;
int main() {
  u32 x;
  x = 0;
  while (1) { x = x + 1; }
  return 0;
}
)";

/// Diverges while emitting call events (exercises metered sinks).
const char *NonTerminatingCalls = R"(
typedef unsigned int u32;
u32 leaf(u32 x) { return x + 1; }
int main() {
  u32 x;
  x = 0;
  while (1) { x = leaf(x); }
  return 0;
}
)";

/// A quick terminating program (for journal tests).
const char *Terminating = R"(
typedef unsigned int u32;
u32 leaf(u32 x) { return x * 3 + 1; }
int main() { return (int)(leaf(5u) & 0xff); }
)";

driver::Compilation compileNonTerminating() {
  DiagnosticEngine Diags;
  driver::CompilerOptions Opts;
  Opts.ValidateTranslation = false; // We run the levels ourselves.
  Opts.AnalyzeBounds = false;
  auto C = driver::compile(NonTerminating, Diags, Opts);
  EXPECT_TRUE(C) << Diags.str();
  return std::move(*C);
}

BatchJob nonTerminatingJob(const std::string &Id, uint64_t Fuel) {
  BatchJob J;
  J.Id = Id;
  J.Source = NonTerminating;
  J.Options.ValidateTranslation = false;
  J.Options.ValidationFuel = Fuel; // Theorem 1 runs at 10x this.
  return J;
}

/// A scratch file path that is removed when the fixture dies.
class ScratchFile {
public:
  explicit ScratchFile(const char *Tag) {
    Path = (std::filesystem::temp_directory_path() /
            ("qcc-supervision-" + std::string(Tag) + "-" +
             std::to_string(::getpid()) + ".journal"))
               .string();
    std::filesystem::remove(Path);
  }
  ~ScratchFile() { std::filesystem::remove(Path); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

//===----------------------------------------------------------------------===//
// Supervisor token semantics
//===----------------------------------------------------------------------===//

TEST(Supervisor, FirstCauseWins) {
  Supervisor S;
  EXPECT_FALSE(S.stopRequested());
  EXPECT_EQ(S.cause(), StopCause::None);
  S.cancel(StopCause::DeadlineExpired);
  S.cancel(StopCause::Cancelled); // Ignored: the job stopped for the
                                  // first reason.
  EXPECT_TRUE(S.stopRequested());
  EXPECT_EQ(S.cause(), StopCause::DeadlineExpired);
  S.reset();
  EXPECT_FALSE(S.stopRequested());
  EXPECT_EQ(S.cause(), StopCause::None);
}

TEST(Supervisor, ParentStopIsVisibleThroughChild) {
  Supervisor Parent;
  Supervisor Child(&Parent);
  EXPECT_FALSE(Child.stopRequested());
  Parent.cancel();
  EXPECT_TRUE(Child.stopRequested());
  EXPECT_EQ(Child.cause(), StopCause::Cancelled);
  // reset() rearms the child only: an interrupted batch stays
  // interrupted.
  Child.reset();
  EXPECT_TRUE(Child.stopRequested());
}

TEST(Supervisor, MemoryBudgetTripsOnCharge) {
  Supervisor S;
  S.setMemoryBudget(1000);
  S.charge(600);
  EXPECT_FALSE(S.stopRequested());
  S.charge(600);
  EXPECT_TRUE(S.stopRequested());
  EXPECT_EQ(S.cause(), StopCause::MemoryBudget);
  EXPECT_EQ(S.chargedBytes(), 1200u);
}

TEST(Supervisor, ShouldPollHonorsGranularity) {
  Supervisor S;
  S.cancel();
  EXPECT_TRUE(Supervisor::shouldPoll(1024, &S));
  EXPECT_FALSE(Supervisor::shouldPoll(1025, &S)); // Off the poll stride.
  EXPECT_FALSE(Supervisor::shouldPoll(1024, nullptr));
}

//===----------------------------------------------------------------------===//
// Satellite 1: fuel exhaustion is a distinct status at all five levels
//===----------------------------------------------------------------------===//

TEST(FuelExhaustion, DistinctStopCauseAtEveryLevel) {
  driver::Compilation C = compileNonTerminating();
  constexpr uint64_t Fuel = 50'000;

  Behavior BClight = interp::runProgram(C.Clight, Fuel);
  EXPECT_EQ(BClight.Kind, BehaviorKind::Diverges);
  EXPECT_EQ(BClight.Stop, StopCause::FuelExhausted);

  Behavior BCminor = cminor::runProgram(C.Cminor, Fuel);
  EXPECT_EQ(BCminor.Kind, BehaviorKind::Diverges);
  EXPECT_EQ(BCminor.Stop, StopCause::FuelExhausted);

  Behavior BRtl = rtl::runProgram(C.Rtl, Fuel);
  EXPECT_EQ(BRtl.Kind, BehaviorKind::Diverges);
  EXPECT_EQ(BRtl.Stop, StopCause::FuelExhausted);

  Behavior BMach = mach::runProgram(C.Mach, Fuel);
  EXPECT_EQ(BMach.Kind, BehaviorKind::Diverges);
  EXPECT_EQ(BMach.Stop, StopCause::FuelExhausted);

  x86::Machine M(C.Asm, /*StackSize=*/1 << 20);
  Behavior BAsm = M.run(Fuel);
  EXPECT_EQ(BAsm.Kind, BehaviorKind::Diverges);
  EXPECT_EQ(BAsm.Stop, StopCause::FuelExhausted);
}

TEST(FuelExhaustion, MeasurementReportsStopNotViolation) {
  driver::Compilation C = compileNonTerminating();
  measure::Measurement M = driver::measureStack(C, /*Fuel=*/50'000);
  EXPECT_FALSE(M.Ok);
  EXPECT_EQ(M.Stop, StopCause::FuelExhausted);
  EXPECT_EQ(M.Error, "fuel exhausted");
  EXPECT_FALSE(M.StackOverflow);
}

TEST(FuelExhaustion, VerifyOneQuarantinesInsteadOfFailing) {
  ProgramResult R = verifyOne(nonTerminatingJob("nonterm", 20'000));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Status, JobStatus::Quarantined);
  EXPECT_EQ(R.Stop, StopCause::FuelExhausted);
  EXPECT_NE(R.Diagnostics.find("Theorem 1 check stopped"),
            std::string::npos)
      << R.Diagnostics;
  EXPECT_EQ(R.Diagnostics.find("Theorem 1 violated"), std::string::npos)
      << "a budget stop must never read as a refutation: "
      << R.Diagnostics;
}

//===----------------------------------------------------------------------===//
// Deadlines and cancellation
//===----------------------------------------------------------------------===//

TEST(Deadline, WatchdogStopsDivergentRun) {
  driver::Compilation C = compileNonTerminating();
  Supervisor S;
  Watchdog Dog;
  S.armDeadline(20);
  Dog.watch(&S);
  // Effectively unbounded fuel: only the deadline can stop this.
  Behavior B = interp::runProgram(C.Clight, 1'000'000'000'000ull, &S);
  Dog.unwatch(&S);
  EXPECT_EQ(B.Kind, BehaviorKind::Diverges);
  EXPECT_EQ(B.Stop, StopCause::DeadlineExpired);
  EXPECT_EQ(Dog.watchedCount(), 0u);
}

TEST(Deadline, EnforceDeadlineFiresOnlyAfterExpiry) {
  Supervisor S;
  S.armDeadline(10'000); // Far future.
  EXPECT_FALSE(S.enforceDeadline());
  EXPECT_FALSE(S.stopRequested());
  S.armDeadline(0); // Disarm.
  EXPECT_FALSE(S.hasDeadline());
}

TEST(Cancellation, StopsInterpreterMidRun) {
  driver::Compilation C = compileNonTerminating();
  Supervisor S;
  std::thread Canceller([&S] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    S.cancel();
  });
  Behavior B = interp::runProgram(C.Clight, 1'000'000'000'000ull, &S);
  Canceller.join();
  EXPECT_EQ(B.Kind, BehaviorKind::Diverges);
  EXPECT_EQ(B.Stop, StopCause::Cancelled);
}

TEST(Cancellation, MidValidationWithholdsVerdict) {
  Supervisor S;
  DiagnosticEngine Diags;
  driver::CompilerOptions Opts;
  Opts.Supervision = &S;
  Opts.ValidationFuel = 1'000'000'000'000ull; // Only the cancel stops it.
  std::thread Canceller([&S] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    S.cancel();
  });
  auto C = driver::compile(NonTerminating, Diags, Opts);
  Canceller.join();
  EXPECT_FALSE(C);
  EXPECT_NE(Diags.str().find("stopped"), std::string::npos) << Diags.str();
  EXPECT_EQ(Diags.str().find("translation validation failed"),
            std::string::npos)
      << "cancellation must not be misreported as a validation failure: "
      << Diags.str();
}

TEST(Cancellation, PreCancelledVerifyOneReportsCancelled) {
  Supervisor S;
  S.cancel();
  ProgramResult R = verifyOne(nonTerminatingJob("precancelled", 20'000),
                              /*CheckTheorem1=*/true, &S);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Status, JobStatus::Cancelled);
  EXPECT_EQ(R.Stop, StopCause::Cancelled);
  EXPECT_NE(R.Diagnostics.find("compilation stopped: cancelled"),
            std::string::npos)
      << R.Diagnostics;
}

TEST(Cancellation, InterruptDrainsWholeBatch) {
  // Enough fuel that nothing finishes on its own within the test, plus
  // an interrupt that arrives while jobs are in flight: every slot must
  // come back Cancelled (in-flight jobs drained at the next poll,
  // pending jobs never started) and the exit code must say "no verdict".
  std::vector<BatchJob> Jobs;
  for (int I = 0; I != 4; ++I)
    Jobs.push_back(
        nonTerminatingJob("drain-" + std::to_string(I), 100'000'000));
  Supervisor Interrupt;
  BatchOptions Opts;
  Opts.Interrupt = &Interrupt;
  std::thread Sigint([&Interrupt] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Interrupt.cancel();
  });
  BatchResult R = runBatch(Jobs, Opts);
  Sigint.join();
  ASSERT_EQ(R.Programs.size(), Jobs.size());
  for (const ProgramResult &P : R.Programs) {
    EXPECT_EQ(P.Status, JobStatus::Cancelled) << P.Id;
    EXPECT_FALSE(P.Ok);
  }
  EXPECT_EQ(R.exitCode(), 3);
  EXPECT_EQ(R.countStatus(JobStatus::Cancelled), 4u);
}

//===----------------------------------------------------------------------===//
// Batch deadlines, retry, quarantine (exit-code taxonomy)
//===----------------------------------------------------------------------===//

TEST(Quarantine, DeadlineExpiryRetriesThenQuarantines) {
  std::vector<BatchJob> Jobs{nonTerminatingJob("deadline", 100'000'000)};
  BatchOptions Opts;
  Opts.DeadlineMillis = 30;
  Opts.Retries = 1;
  BatchResult R = runBatch(Jobs, Opts);
  ASSERT_EQ(R.Programs.size(), 1u);
  const ProgramResult &P = R.Programs[0];
  EXPECT_EQ(P.Status, JobStatus::Quarantined);
  EXPECT_EQ(P.Stop, StopCause::DeadlineExpired);
  EXPECT_EQ(P.Retries, 1u);
  EXPECT_EQ(R.exitCode(), 3);
}

TEST(Quarantine, OversubscribedPoolQuarantinesExactlyTheDivergent) {
  // The acceptance scenario: the full corpus plus three seeded
  // non-terminating jobs on low fuel. Exactly those three must be
  // quarantined (after one retry each), the batch must exit 3, and every
  // corpus job's result must be bit-identical to an unsupervised run.
  std::vector<BatchJob> Corpus = corpusJobs(/*ValidateTranslation=*/false);
  const size_t NumCorpus = Corpus.size();
  std::vector<BatchJob> Jobs = Corpus;
  for (int I = 0; I != 3; ++I)
    Jobs.push_back(
        nonTerminatingJob("nonterm-" + std::to_string(I), 20'000 + I));

  BatchOptions Opts;
  Opts.Jobs = 2 * std::max(1u, std::thread::hardware_concurrency());
  BatchResult Supervised = runBatch(Jobs, Opts);

  ASSERT_EQ(Supervised.Programs.size(), NumCorpus + 3);
  EXPECT_EQ(Supervised.countStatus(JobStatus::Quarantined), 3u);
  EXPECT_EQ(Supervised.exitCode(), 3);
  for (size_t I = NumCorpus; I != Supervised.Programs.size(); ++I) {
    const ProgramResult &P = Supervised.Programs[I];
    EXPECT_EQ(P.Status, JobStatus::Quarantined) << P.Id;
    EXPECT_EQ(P.Stop, StopCause::FuelExhausted) << P.Id;
    EXPECT_EQ(P.Retries, 1u) << P.Id;
  }

  // Corpus slice vs. the unsupervised reference, byte for byte.
  BatchResult Reference = runBatch(Corpus, BatchOptions{});
  BatchResult SupervisedCorpusOnly = Supervised;
  SupervisedCorpusOnly.Programs.resize(NumCorpus);
  EXPECT_EQ(metricsJson(SupervisedCorpusOnly, JsonDetail::Deterministic),
            metricsJson(Reference, JsonDetail::Deterministic));
}

//===----------------------------------------------------------------------===//
// Resume journal
//===----------------------------------------------------------------------===//

TEST(Journal, RerunSkipsFinishedJobs) {
  ScratchFile Journal("rerun");
  std::vector<BatchJob> Jobs;
  for (int I = 0; I != 3; ++I) {
    BatchJob J;
    J.Id = "t" + std::to_string(I);
    J.Source = Terminating;
    J.Options.ValidateTranslation = false;
    J.Options.Defines["SALT"] = static_cast<uint32_t>(I); // Distinct keys.
    Jobs.push_back(std::move(J));
  }
  BatchOptions Opts;
  Opts.JournalPath = Journal.path();

  BatchResult First = runBatch(Jobs, Opts);
  EXPECT_TRUE(First.allOk());
  EXPECT_EQ(First.countStatus(JobStatus::SkippedFromJournal), 0u);

  BatchResult Second = runBatch(Jobs, Opts);
  EXPECT_EQ(Second.countStatus(JobStatus::SkippedFromJournal), 3u);
  EXPECT_TRUE(Second.allOk()); // Recorded verdicts replay as ok.
  EXPECT_EQ(Second.exitCode(), 0);
}

TEST(Journal, KilledAfterNResumesTheRest) {
  // Simulate a run killed after one job: journal the first job alone,
  // then rerun the full set with the same journal.
  ScratchFile Journal("kill");
  std::vector<BatchJob> Jobs;
  for (int I = 0; I != 3; ++I) {
    BatchJob J;
    J.Id = "t" + std::to_string(I);
    J.Source = Terminating;
    J.Options.ValidateTranslation = false;
    J.Options.Defines["SALT"] = static_cast<uint32_t>(I);
    Jobs.push_back(std::move(J));
  }
  BatchOptions Opts;
  Opts.JournalPath = Journal.path();

  BatchResult Partial = runBatch({Jobs[0]}, Opts);
  EXPECT_TRUE(Partial.allOk());

  BatchResult Resumed = runBatch(Jobs, Opts);
  ASSERT_EQ(Resumed.Programs.size(), 3u);
  EXPECT_EQ(Resumed.Programs[0].Status, JobStatus::SkippedFromJournal);
  EXPECT_EQ(Resumed.Programs[1].Status, JobStatus::Ok);
  EXPECT_EQ(Resumed.Programs[2].Status, JobStatus::Ok);
  EXPECT_EQ(Resumed.exitCode(), 0);
}

/// A deterministic in-memory ResultStore: the drain-race tests need a
/// store hit without on-disk machinery (SupervisionTest does not link
/// the store library; the interface lives in batch/Batch.h).
class MemoryStore : public ResultStore {
public:
  std::shared_ptr<const ProgramResult> fetch(const JobKey &Key,
                                             const BatchJob &,
                                             Supervisor *) override {
    std::lock_guard<std::mutex> G(M);
    auto It = Map.find(Key.Primary);
    if (It == Map.end())
      return nullptr;
    return std::make_shared<ProgramResult>(It->second);
  }
  void put(const JobKey &Key, const ProgramResult &R, Supervisor *) override {
    std::lock_guard<std::mutex> G(M);
    Map[Key.Primary] = R;
  }
  size_t size() const {
    std::lock_guard<std::mutex> G(M);
    return Map.size();
  }

private:
  mutable std::mutex M;
  std::unordered_map<uint64_t, ProgramResult> Map;
};

/// The SIGINT completion-vs-flush race (the drain contract): a verdict
/// that exists the moment the interrupt fires must reach the journal
/// before runBatch returns. CompletionBarrier fires between "result
/// known" and "journal flushed" — cancelling there pins the widest
/// possible window. Serial (Jobs=1) so exactly job 0 completes.
TEST(Journal, InterruptAtCompletionBarrierStillJournalsTheVerdict) {
  ScratchFile Journal("barrier");
  std::vector<BatchJob> Jobs;
  for (int I = 0; I != 3; ++I) {
    BatchJob J;
    J.Id = "t" + std::to_string(I);
    J.Source = Terminating;
    J.Options.ValidateTranslation = false;
    J.Options.Defines["SALT"] = static_cast<uint32_t>(I);
    Jobs.push_back(std::move(J));
  }

  Supervisor Interrupt;
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.JournalPath = Journal.path();
  Opts.Interrupt = &Interrupt;
  Opts.CompletionBarrier = [&](const ProgramResult &) {
    Interrupt.cancel(StopCause::Cancelled);
  };
  BatchResult First = runBatch(Jobs, Opts);
  ASSERT_EQ(First.Programs[0].Status, JobStatus::Ok);
  EXPECT_EQ(First.countStatus(JobStatus::Cancelled), 2u);
  EXPECT_EQ(First.exitCode(), 3);

  // The rerun resumes: the completed verdict replays from the journal,
  // the cancelled jobs are attempted (and verified) now.
  BatchOptions Resume;
  Resume.JournalPath = Journal.path();
  BatchResult Second = runBatch(Jobs, Resume);
  EXPECT_EQ(Second.Programs[0].Status, JobStatus::SkippedFromJournal);
  EXPECT_EQ(Second.Programs[1].Status, JobStatus::Ok);
  EXPECT_EQ(Second.Programs[2].Status, JobStatus::Ok);
  EXPECT_EQ(Second.exitCode(), 0);
}

/// The regression the post-quiesce re-scan closes: results served warm
/// (store/cache hits) are definitive verdicts, but the inline journal
/// write used to be skipped on the early-return hit paths. An interrupted
/// warm run then lost them from the journal and re-fetched — or, after
/// store eviction, re-verified — finished work on resume.
TEST(Journal, WarmStoreHitsReachTheJournalDespiteInterrupt) {
  ScratchFile Journal("warmhits");
  MemoryStore Store;
  std::vector<BatchJob> Jobs;
  for (int I = 0; I != 3; ++I) {
    BatchJob J;
    J.Id = "t" + std::to_string(I);
    J.Source = Terminating;
    J.Options.ValidateTranslation = false;
    J.Options.Defines["SALT"] = static_cast<uint32_t>(I);
    Jobs.push_back(std::move(J));
  }

  // Warm the store (no journal yet).
  BatchOptions Warm;
  Warm.Store = &Store;
  ASSERT_TRUE(runBatch(Jobs, Warm).allOk());
  ASSERT_EQ(Store.size(), 3u);

  // Warm run under a journal; the interrupt fires at the first
  // completion barrier. Job 0 was served from the store — a definitive
  // verdict that must be journaled even though no fresh verification
  // ran and the hit path returned before the inline record.
  Supervisor Interrupt;
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Store = &Store;
  Opts.JournalPath = Journal.path();
  Opts.Interrupt = &Interrupt;
  Opts.CompletionBarrier = [&](const ProgramResult &) {
    Interrupt.cancel(StopCause::Cancelled);
  };
  BatchResult First = runBatch(Jobs, Opts);
  ASSERT_TRUE(First.Programs[0].StoreHit);
  ASSERT_EQ(First.Programs[0].Status, JobStatus::Ok);
  EXPECT_EQ(First.countStatus(JobStatus::Cancelled), 2u);

  // Resume with the journal but WITHOUT the store (the eviction case:
  // warm entries are not guaranteed to still be there). The journaled
  // hit must replay as skipped, not re-verify.
  BatchOptions Resume;
  Resume.JournalPath = Journal.path();
  BatchResult Second = runBatch(Jobs, Resume);
  EXPECT_EQ(Second.Programs[0].Status, JobStatus::SkippedFromJournal);
  EXPECT_EQ(Second.Programs[1].Status, JobStatus::Ok);
  EXPECT_EQ(Second.Programs[2].Status, JobStatus::Ok);
}

TEST(Journal, BudgetStoppedJobsAreNeverRecorded) {
  ScratchFile Journal("quarantine");
  std::vector<BatchJob> Jobs{nonTerminatingJob("nonterm", 20'000)};
  BatchOptions Opts;
  Opts.JournalPath = Journal.path();

  BatchResult First = runBatch(Jobs, Opts);
  EXPECT_EQ(First.Programs[0].Status, JobStatus::Quarantined);

  // The rerun must attempt the job again, not replay a non-verdict.
  BatchResult Second = runBatch(Jobs, Opts);
  EXPECT_EQ(Second.Programs[0].Status, JobStatus::Quarantined);
  EXPECT_EQ(Second.countStatus(JobStatus::SkippedFromJournal), 0u);
}

//===----------------------------------------------------------------------===//
// Memory budgets through the metered sinks
//===----------------------------------------------------------------------===//

TEST(MemoryBudget, StopsValidationThroughMeteredAccumulators) {
  Supervisor S;
  S.setMemoryBudget(2048); // A few dozen captured profiles.
  DiagnosticEngine Diags;
  driver::CompilerOptions Opts;
  Opts.Supervision = &S;
  Opts.ValidationFuel = 2'000'000; // Keep the div==div replays quick.
  auto C = driver::compile(NonTerminatingCalls, Diags, Opts);
  EXPECT_FALSE(C);
  EXPECT_EQ(S.cause(), StopCause::MemoryBudget);
  EXPECT_NE(Diags.str().find("memory-budget"), std::string::npos)
      << Diags.str();
}

TEST(MemoryBudget, MeteredRecordingSinkCharges) {
  DiagnosticEngine Diags;
  driver::CompilerOptions Opts;
  Opts.ValidateTranslation = false;
  Opts.AnalyzeBounds = false;
  auto C = driver::compile(NonTerminatingCalls, Diags, Opts);
  ASSERT_TRUE(C) << Diags.str();
  Supervisor S;
  RecordingSink Sink(&S);
  (void)interp::runProgram(C->Clight, Sink, 100'000, &S);
  EXPECT_GT(S.chargedBytes(), 0u);
}

} // namespace
