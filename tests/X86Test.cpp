//===- tests/X86Test.cpp - Unit tests for qcc_x86 and qcc_measure ---------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "cminor/Lower.h"
#include "events/Refinement.h"
#include "frontend/Frontend.h"
#include "mach/Mach.h"
#include "measure/StackMeter.h"
#include "rtl/Opt.h"
#include "x86/Machine.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

x86::Program compileToAsm(const std::string &Src,
                          std::map<std::string, uint32_t> Defines = {},
                          bool Optimize = true) {
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(Src, D, std::move(Defines));
  EXPECT_TRUE(CL) << D.str();
  rtl::Program R = rtl::lowerFromCminor(cminor::lowerFromClight(*CL));
  if (Optimize)
    rtl::optimizeProgram(R);
  return x86::emitFromMach(mach::lowerFromRtl(R));
}

int32_t runAsm(const std::string &Src,
               std::map<std::string, uint32_t> Defines = {}) {
  x86::Program P = compileToAsm(Src, std::move(Defines));
  x86::Machine M(P, measure::MeasureStackSize);
  Behavior B = M.run();
  EXPECT_TRUE(B.converged()) << B.str();
  return B.ReturnCode;
}

//===----------------------------------------------------------------------===//
// Execution correctness on the metal
//===----------------------------------------------------------------------===//

TEST(X86, Constants) {
  EXPECT_EQ(runAsm("int main() { return 41; }"), 41);
}

TEST(X86, Arithmetic) {
  EXPECT_EQ(runAsm("int main() { int a = -7; u32 b = 3;\n"
                   "  return a / 2 + (int)(b * 5) - (a % 3) + (1 << 4); }"),
            -3 + 15 + 1 + 16);
}

TEST(X86, GlobalsAndArrays) {
  EXPECT_EQ(runAsm("u32 acc = 5;\nu32 a[4] = {1, 2, 3, 4};\n"
                   "int main() { acc += a[2]; a[3] = acc;\n"
                   "  return a[3] + a[0]; }"),
            9);
}

TEST(X86, CallsWithManyArguments) {
  EXPECT_EQ(runAsm("u32 f(u32 a, u32 b, u32 c, u32 d, u32 e, u32 g) {\n"
                   "  return a + 2*b + 3*c + 4*d + 5*e + 6*g; }\n"
                   "int main() { return f(1, 2, 3, 4, 5, 6); }"),
            91);
}

TEST(X86, RecursionFibonacci) {
  EXPECT_EQ(runAsm("u32 fib(u32 n) { if (n < 2) return n;\n"
                   "  return fib(n - 1) + fib(n - 2); }\n"
                   "int main() { return fib(12); }"),
            144);
}

TEST(X86, DivisionTrap) {
  x86::Program P = compileToAsm(
      "int main() { int a = 1; int b = 0; return a / b; }");
  x86::Machine M(P, measure::MeasureStackSize);
  Behavior B = M.run();
  EXPECT_TRUE(B.failed());
  EXPECT_NE(B.FailureReason.find("division trap"), std::string::npos)
      << B.FailureReason;
  EXPECT_FALSE(M.stackOverflowed());
}

TEST(X86, ClassicRefinementAgainstMach) {
  const char *Src = "extern void print(int);\n"
                    "u32 f(u32 n) { print(n); return n * 2; }\n"
                    "int main() { return f(21); }";
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(Src, D);
  ASSERT_TRUE(CL);
  rtl::Program R = rtl::lowerFromCminor(cminor::lowerFromClight(*CL));
  rtl::optimizeProgram(R);
  mach::Program MP = mach::lowerFromRtl(R);
  Behavior BMach = mach::runProgram(MP);

  x86::Program AP = x86::emitFromMach(MP);
  x86::Machine M(AP, measure::MeasureStackSize);
  Behavior BAsm = M.run();

  // The target refines the source in the sense of CompCert (Theorem 1):
  // pruned traces and exit codes agree; memory events are gone.
  RefinementResult QR = checkQuantitativeRefinement(BAsm, BMach);
  EXPECT_TRUE(QR.Ok) << QR.Reason;
  EXPECT_TRUE(pruneMemoryEvents(BAsm.Events) ==
              pruneMemoryEvents(BMach.Events));
  EXPECT_EQ(BAsm.ReturnCode, 42);
}

TEST(X86, AsmListingIsPrintable) {
  x86::Program P = compileToAsm("u32 g;\nu32 sq(u32 x) { return x * x; }\n"
                                "int main() { g = sq(6); return g; }");
  std::string Listing = P.str();
  EXPECT_NE(Listing.find("main:"), std::string::npos);
  EXPECT_NE(Listing.find("sq:"), std::string::npos);
  EXPECT_NE(Listing.find("call sq"), std::string::npos);
  EXPECT_NE(Listing.find("ret"), std::string::npos);
  EXPECT_NE(Listing.find("section .data"), std::string::npos);
}

TEST(X86, NoFramePseudoInstructions) {
  // Frames are pure ESP arithmetic (paper section 3.2): the listing must
  // use sub/add esp, never an allocation pseudo-op.
  x86::Program P = compileToAsm("u32 fib(u32 n) { if (n < 2) return n;\n"
                                "  return fib(n - 1) + fib(n - 2); }\n"
                                "int main() { return fib(5); }");
  const x86::AsmFunction *Fib = P.findFunction("fib");
  ASSERT_TRUE(Fib);
  EXPECT_GT(Fib->FrameSize, 0u);
  bool SawSub = false, SawAdd = false;
  for (const x86::Instr &I : Fib->Code) {
    SawSub |= I.K == x86::InstrKind::SubEsp;
    SawAdd |= I.K == x86::InstrKind::AddEsp;
  }
  EXPECT_TRUE(SawSub);
  EXPECT_TRUE(SawAdd);
}

//===----------------------------------------------------------------------===//
// Finite stack: overflow trapping and measurement
//===----------------------------------------------------------------------===//

const char *DeepRecursion = "u32 f(u32 n) { if (n == 0) return 0;\n"
                            "  return f(n - 1) + 1; }\n"
                            "int main() { return f(64); }";

TEST(X86, InfiniteRecursionOverflowsInsteadOfDiverging) {
  x86::Program P = compileToAsm("void f() { f(); }\n"
                                "int main() { f(); return 0; }");
  x86::Machine M(P, 4096);
  Behavior B = M.run();
  EXPECT_TRUE(B.failed());
  EXPECT_NE(B.FailureReason.find("stack overflow"), std::string::npos)
      << B.FailureReason;
  EXPECT_TRUE(M.stackOverflowed());
}

TEST(X86, MeasuredUsageScalesWithRecursionDepth) {
  x86::Program P = compileToAsm(DeepRecursion);
  measure::Measurement M64 = measure::measureProgram(P);
  ASSERT_TRUE(M64.Ok) << M64.Error;
  EXPECT_EQ(M64.ExitCode, 64);

  x86::Program P8 = compileToAsm(
      "u32 f(u32 n) { if (n == 0) return 0; return f(n - 1) + 1; }\n"
      "int main() { return f(8); }");
  measure::Measurement M8 = measure::measureProgram(P8);
  ASSERT_TRUE(M8.Ok);
  // 56 more frames of identical size.
  uint32_t PerFrame = (M64.StackBytes - M8.StackBytes) / 56;
  EXPECT_GT(PerFrame, 0u);
  EXPECT_EQ((M64.StackBytes - M8.StackBytes) % 56, 0u);
  // Per-frame cost is the metric: SF(f) + 4.
  const x86::AsmFunction *F = P.findFunction("f");
  ASSERT_TRUE(F);
  EXPECT_EQ(PerFrame, F->FrameSize + 4);
}

TEST(X86, ExactStackSizeSucceedsOneWordLessOverflows) {
  x86::Program P = compileToAsm(DeepRecursion);
  measure::Measurement M = measure::measureProgram(P);
  ASSERT_TRUE(M.Ok);

  // Exactly the measured bytes (+4 block slack for main's return address
  // is part of the machine's sz + 4 block) must succeed...
  measure::Measurement AtExact = measure::measureProgram(P, M.StackBytes);
  EXPECT_TRUE(AtExact.Ok) << AtExact.Error;
  // ...and any smaller stack must trap with a stack overflow.
  measure::Measurement Below = measure::measureProgram(P, M.StackBytes - 4);
  EXPECT_FALSE(Below.Ok);
  EXPECT_TRUE(Below.StackOverflow);
}

TEST(X86, MeasurementBaselineExcludesMainReturnAddress) {
  // A main that calls nothing and spills nothing consumes 0 bytes beyond
  // its own frame; with an empty frame the measurement is exactly 0.
  x86::Program P = compileToAsm("int main() { return 3; }");
  const x86::AsmFunction *Main = P.findFunction("main");
  ASSERT_TRUE(Main);
  measure::Measurement M = measure::measureProgram(P);
  ASSERT_TRUE(M.Ok);
  EXPECT_EQ(M.StackBytes, Main->FrameSize);
}

TEST(X86, IOEventsSurviveToTheMetal) {
  x86::Program P = compileToAsm("extern void print(int);\n"
                                "int main() { u32 i;\n"
                                "  for (i = 0; i < 3; i++) print(i);\n"
                                "  return 0; }");
  measure::Measurement M = measure::measureProgram(P);
  ASSERT_TRUE(M.Ok);
  ASSERT_EQ(M.IOEvents.size(), 3u);
  EXPECT_EQ(M.IOEvents[2].args()[0], 2);
}

} // namespace
