//===- tests/InterpTest.cpp - Unit tests for qcc_interp -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "events/Metric.h"
#include "events/Weight.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

clight::Program mustParse(const std::string &Src,
                          std::map<std::string, uint32_t> Defines = {}) {
  DiagnosticEngine D;
  auto P = frontend::parseProgram(Src, D, std::move(Defines));
  EXPECT_TRUE(P) << D.str();
  return P ? std::move(*P) : clight::Program{};
}

Behavior runSrc(const std::string &Src,
                std::map<std::string, uint32_t> Defines = {},
                uint64_t Fuel = interp::DefaultFuel) {
  clight::Program P = mustParse(Src, std::move(Defines));
  return interp::runProgram(P, Fuel);
}

int32_t mustConverge(const std::string &Src,
                     std::map<std::string, uint32_t> Defines = {}) {
  Behavior B = runSrc(Src, std::move(Defines));
  EXPECT_TRUE(B.converged()) << B.str();
  return B.ReturnCode;
}

//===----------------------------------------------------------------------===//
// Arithmetic and control flow
//===----------------------------------------------------------------------===//

TEST(Interp, ReturnsConstant) {
  EXPECT_EQ(mustConverge("int main() { return 41; }"), 41);
}

TEST(Interp, ArithmeticMix) {
  EXPECT_EQ(mustConverge("int main() { return (2 + 3) * 4 - 6 / 2; }"), 17);
}

TEST(Interp, SignedVsUnsignedDivision) {
  // -7 / 2 == -3 signed; huge / 2 unsigned.
  EXPECT_EQ(mustConverge("int main() { int a = -7; return a / 2; }"), -3);
  EXPECT_EQ(mustConverge(
                "int main() { u32 a = 0x80000000u; return (int)(a / 2) == "
                "0x40000000 ? 1 : 0; }"),
            1);
}

TEST(Interp, SignedVsUnsignedComparison) {
  EXPECT_EQ(mustConverge("int main() { int a = -1; return a < 0; }"), 1);
  EXPECT_EQ(mustConverge(
                "int main() { u32 a = 0xffffffffu; return a < 1u; }"),
            0);
}

TEST(Interp, ShiftSemantics) {
  EXPECT_EQ(mustConverge("int main() { int a = -8; return a >> 1; }"), -4);
  EXPECT_EQ(mustConverge("int main() { u32 a = 0x80000000u; "
                         "return (a >> 31) == 1u; }"),
            1);
  // Shift counts are masked to 5 bits at every level.
  EXPECT_EQ(mustConverge("int main() { u32 a = 1; u32 s = 33; "
                         "return (a << s) == 2u; }"),
            1);
}

TEST(Interp, WhileLoopSum) {
  EXPECT_EQ(mustConverge("int main() { u32 i = 0; u32 s = 0;\n"
                         "  while (i < 10) { s += i; i++; } return s; }"),
            45);
}

TEST(Interp, ForLoop) {
  EXPECT_EQ(mustConverge("int main() { u32 s = 0; u32 i;\n"
                         "  for (i = 1; i <= 4; i++) s = s * 10 + i;\n"
                         "  return s; }"),
            1234);
}

TEST(Interp, DoWhile) {
  EXPECT_EQ(mustConverge("int main() { u32 i = 0; do { i++; } while (i < 5); "
                         "return i; }"),
            5);
}

TEST(Interp, BreakLeavesInnermostLoop) {
  EXPECT_EQ(mustConverge(
                "int main() { u32 n = 0; u32 i; u32 j;\n"
                "  for (i = 0; i < 3; i++) {\n"
                "    for (j = 0; j < 10; j++) { if (j == 2) break; n++; }\n"
                "  }\n"
                "  return n; }"),
            6);
}

TEST(Interp, TernaryAndShortCircuit) {
  EXPECT_EQ(mustConverge("int main() { int a = 5; "
                         "return a > 3 ? 10 : 20; }"),
            10);
  // Short-circuit must not evaluate the out-of-bounds read.
  EXPECT_EQ(mustConverge("u32 a[4];\n"
                         "int main() { u32 i = 9; "
                         "return (i < 4 && a[i] > 0) ? 1 : 0; }"),
            0);
}

TEST(Interp, GlobalsAndArrays) {
  EXPECT_EQ(mustConverge("u32 acc = 5;\n"
                         "u32 a[3] = {10, 20, 30};\n"
                         "int main() { acc += a[1]; a[2] = acc; "
                         "return a[2]; }"),
            25);
}

TEST(Interp, LocalsStartAtZero) {
  EXPECT_EQ(mustConverge("int main() { u32 x; return x; }"), 0);
}

//===----------------------------------------------------------------------===//
// Calls, recursion, events
//===----------------------------------------------------------------------===//

TEST(Interp, CallAndReturnValue) {
  EXPECT_EQ(mustConverge("u32 sq(u32 x) { return x * x; }\n"
                         "int main() { return sq(7); }"),
            49);
}

TEST(Interp, RecursionFibonacci) {
  EXPECT_EQ(mustConverge(
                "u32 fib(u32 n) { if (n < 2) return n; "
                "return fib(n - 1) + fib(n - 2); }\n"
                "int main() { return fib(10); }"),
            55);
}

TEST(Interp, VoidCallFallThrough) {
  EXPECT_EQ(mustConverge("u32 g;\n"
                         "void set(u32 v) { g = v; }\n"
                         "int main() { set(9); return g; }"),
            9);
}

TEST(Interp, TraceIsWellBracketed) {
  Behavior B = runSrc("u32 f(u32 n) { if (n == 0) return 0; "
                      "return f(n - 1); }\n"
                      "int main() { return f(3); }");
  ASSERT_TRUE(B.converged());
  EXPECT_TRUE(isWellBracketed(B.Events));
  // call(main) call(f) x4 ... ret x4 ret(main) = 10 memory events.
  EXPECT_EQ(B.Events.size(), 10u);
}

TEST(Interp, TraceWeightMatchesRecursionDepth) {
  Behavior B = runSrc("u32 f(u32 n) { if (n == 0) return 0; "
                      "return f(n - 1); }\n"
                      "int main() { return f(4); }");
  ASSERT_TRUE(B.converged());
  StackMetric M;
  M.setCost("main", 16);
  M.setCost("f", 24);
  // main + 5 nested activations of f (n = 4..0).
  EXPECT_EQ(weight(M, B.Events), 16u + 5 * 24u);
}

TEST(Interp, SequentialCallsDoNotStack) {
  Behavior B = runSrc("void f() { } void g() { }\n"
                      "int main() { f(); g(); return 0; }");
  ASSERT_TRUE(B.converged());
  StackMetric M;
  M.setCost("main", 10);
  M.setCost("f", 100);
  M.setCost("g", 40);
  EXPECT_EQ(weight(M, B.Events), 110u);
}

TEST(Interp, ExternalCallEmitsIOEvent) {
  Behavior B = runSrc("extern void print(int);\n"
                      "int main() { print(42); return 0; }");
  ASSERT_TRUE(B.converged());
  Trace IO = pruneMemoryEvents(B.Events);
  ASSERT_EQ(IO.size(), 1u);
  EXPECT_EQ(IO[0].function(), "print");
  ASSERT_EQ(IO[0].args().size(), 1u);
  EXPECT_EQ(IO[0].args()[0], 42);
}

TEST(Interp, RunFunctionCallDirectly) {
  clight::Program P = mustParse("u32 sq(u32 x) { return x * x; }\n"
                                "int main() { return 0; }");
  interp::Interpreter I(P);
  Behavior B = I.runFunctionCall("sq", {9});
  ASSERT_TRUE(B.converged()) << B.str();
  EXPECT_EQ(B.ReturnCode, 81);
  ASSERT_GE(B.Events.size(), 2u);
  EXPECT_EQ(B.Events.front(), Event::call("sq"));
  EXPECT_EQ(B.Events.back(), Event::ret("sq"));
}

//===----------------------------------------------------------------------===//
// Faults and divergence
//===----------------------------------------------------------------------===//

TEST(Interp, DivisionByZeroFails) {
  Behavior B = runSrc("int main() { int a = 1; int b = 0; return a / b; }");
  EXPECT_TRUE(B.failed());
  EXPECT_NE(B.FailureReason.find("division by zero"), std::string::npos);
}

TEST(Interp, SignedDivisionOverflowFails) {
  Behavior B = runSrc("int main() { int a = 1; a = a << 31; int b = -1; "
                      "return a / b; }");
  EXPECT_TRUE(B.failed());
  EXPECT_NE(B.FailureReason.find("overflow"), std::string::npos);
}

TEST(Interp, ArrayOutOfBoundsFails) {
  Behavior B = runSrc("u32 a[4];\nint main() { u32 i = 4; return a[i]; }");
  EXPECT_TRUE(B.failed());
  EXPECT_NE(B.FailureReason.find("out of bounds"), std::string::npos);
}

TEST(Interp, ArrayStoreOutOfBoundsFails) {
  Behavior B = runSrc("u32 a[4];\nint main() { a[7] = 1; return 0; }");
  EXPECT_TRUE(B.failed());
}

TEST(Interp, FailureKeepsTracePrefix) {
  Behavior B = runSrc("u32 f() { return 1; }\n"
                      "int main() { u32 x = f(); int z = 0; return x / z; }");
  ASSERT_TRUE(B.failed());
  // call(main).call(f).ret(f) happened before the fault.
  ASSERT_GE(B.Events.size(), 3u);
  EXPECT_EQ(B.Events[0], Event::call("main"));
  EXPECT_EQ(B.Events[1], Event::call("f"));
  EXPECT_EQ(B.Events[2], Event::ret("f"));
}

TEST(Interp, InfiniteLoopDivergesOnFuel) {
  Behavior B = runSrc("int main() { while (1) { } return 0; }", {},
                      /*Fuel=*/10'000);
  EXPECT_EQ(B.Kind, BehaviorKind::Diverges);
}

TEST(Interp, InfiniteRecursionDivergesWithGrowingWeight) {
  Behavior B = runSrc("void f() { f(); }\nint main() { f(); return 0; }", {},
                      /*Fuel=*/10'000);
  EXPECT_EQ(B.Kind, BehaviorKind::Diverges);
  StackMetric M;
  M.setCost("f", 8);
  // The diverging prefix keeps stacking f frames: weight grows with fuel.
  EXPECT_GT(weight(M, B.Events), 8u * 100);
}

//===----------------------------------------------------------------------===//
// The Paper section 2 program, end to end at the Clight level
//===----------------------------------------------------------------------===//

const char *Section2Source = R"(
#define ALEN 64
#define SEED 1
typedef unsigned int u32;
u32 a[ALEN];
u32 seed = SEED;

u32 search(u32 elem, u32 beg, u32 end) {
  u32 mid = beg + (end - beg) / 2;
  if (end - beg <= 1) return beg;
  if (a[mid] > elem) end = mid; else beg = mid;
  return search(elem, beg, end);
}

u32 random() {
  seed = (seed * 1664525) + 1013904223;
  return seed;
}

void init() {
  u32 i, rnd, prev = 0;
  for (i = 0; i < ALEN; i++) {
    rnd = random();
    a[i] = prev + rnd % 17;
    prev = a[i];
  }
}

int main() {
  u32 idx, elem;
  init();
  elem = random() % (17 * ALEN);
  idx = search(elem, 0, ALEN);
  return a[idx] == elem;
}
)";

TEST(Interp, Section2ProgramRuns) {
  Behavior B = runSrc(Section2Source);
  ASSERT_TRUE(B.converged()) << B.str();
  EXPECT_TRUE(isWellBracketed(B.Events));
}

TEST(Interp, Section2WeightShape) {
  // W = M(main) + max(M(init) + M(random), depth(search) * M(search)),
  // where depth(search) <= 1 + ceil(log2(ALEN)).
  Behavior B = runSrc(Section2Source, {{"ALEN", 64}});
  ASSERT_TRUE(B.converged());
  StackMetric M;
  M.setCost("main", 1);  // Make search depth directly readable.
  M.setCost("search", 1);
  uint64_t W = weight(M, B.Events);
  // main contributes 1; search chain contributes at most 1 + log2(64) = 7.
  EXPECT_GE(W, 2u);
  EXPECT_LE(W, 1u + 1u + ceilLog2(64));
}

TEST(Interp, Section2SweepStaysWithinLogBound) {
  for (uint32_t Alen : {2u, 8u, 33u, 128u, 1000u}) {
    Behavior B = runSrc(Section2Source, {{"ALEN", Alen}});
    ASSERT_TRUE(B.converged()) << "ALEN=" << Alen;
    StackMetric M;
    M.setCost("search", 1);
    EXPECT_LE(weight(M, B.Events), 1u + ceilLog2(Alen))
        << "ALEN=" << Alen;
  }
}

} // namespace
