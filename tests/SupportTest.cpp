//===- tests/SupportTest.cpp - Unit tests for qcc_support -----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/ExtNat.h"
#include "support/FailPoint.h"
#include "support/Io.h"
#include "support/Numeric.h"
#include "support/SourceLoc.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <thread>
#include <unistd.h>

using namespace qcc;

namespace {

TEST(ExtNat, DefaultIsZero) {
  ExtNat N;
  EXPECT_TRUE(N.isFinite());
  EXPECT_EQ(N.finiteValue(), 0u);
}

TEST(ExtNat, FiniteArithmetic) {
  ExtNat A(40), B(24);
  EXPECT_EQ((A + B).finiteValue(), 64u);
  EXPECT_EQ((A * B).finiteValue(), 960u);
  EXPECT_EQ(A.monus(B).finiteValue(), 16u);
  EXPECT_EQ(B.monus(A).finiteValue(), 0u);
}

TEST(ExtNat, InfinityAbsorbsAddition) {
  ExtNat Inf = ExtNat::infinity();
  EXPECT_TRUE((Inf + ExtNat(5)).isInfinite());
  EXPECT_TRUE((ExtNat(5) + Inf).isInfinite());
}

TEST(ExtNat, InfinityTimesZeroIsZero) {
  // Scaling a zero bound by the infinite assertion stays zero; this keeps
  // 0 * bot well-behaved in derived bound expressions.
  ExtNat Inf = ExtNat::infinity();
  EXPECT_EQ((Inf * ExtNat(0)).finiteValue(), 0u);
  EXPECT_EQ((ExtNat(0) * Inf).finiteValue(), 0u);
  EXPECT_TRUE((Inf * ExtNat(3)).isInfinite());
}

TEST(ExtNat, MonusWithInfinity) {
  ExtNat Inf = ExtNat::infinity();
  EXPECT_TRUE(Inf.monus(ExtNat(100)).isInfinite());
  EXPECT_EQ(ExtNat(100).monus(Inf).finiteValue(), 0u);
}

TEST(ExtNat, OrderingTreatsInfinityAsTop) {
  ExtNat Inf = ExtNat::infinity();
  EXPECT_LT(ExtNat(1000000), Inf);
  EXPECT_LE(Inf, Inf);
  EXPECT_FALSE(Inf < Inf);
  EXPECT_GT(Inf, ExtNat(0));
}

TEST(ExtNat, MaxMin) {
  ExtNat Inf = ExtNat::infinity();
  EXPECT_EQ(max(ExtNat(3), ExtNat(9)).finiteValue(), 9u);
  EXPECT_TRUE(max(ExtNat(3), Inf).isInfinite());
  EXPECT_EQ(min(ExtNat(3), Inf).finiteValue(), 3u);
}

TEST(ExtNat, Printing) {
  EXPECT_EQ(ExtNat(42).str(), "42");
  EXPECT_EQ(ExtNat::infinity().str(), "oo");
}

// The soundness-critical saturation contract: arithmetic that would
// exceed uint64_t rounds UP to infinity, in every build mode. Before the
// checked implementation these wrapped under NDEBUG — a wrapped sum is a
// silently too-small stack bound, the one failure a certifier must
// exclude. These tests fail on the unchecked code in Release builds.
TEST(ExtNat, AdditionSaturatesAtUint64Boundary) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE((ExtNat(Max) + ExtNat(1)).isInfinite());
  EXPECT_TRUE((ExtNat(1) + ExtNat(Max)).isInfinite());
  EXPECT_TRUE((ExtNat(Max) + ExtNat(Max)).isInfinite());
  EXPECT_TRUE((ExtNat(Max / 2 + 1) + ExtNat(Max / 2 + 1)).isInfinite());
  // The exact boundary still fits.
  EXPECT_EQ((ExtNat(Max - 1) + ExtNat(1)).finiteValue(), Max);
  EXPECT_EQ((ExtNat(Max) + ExtNat(0)).finiteValue(), Max);
  EXPECT_EQ((ExtNat(Max / 2) + ExtNat(Max / 2 + 1)).finiteValue(), Max);
}

TEST(ExtNat, MultiplicationSaturatesAtUint64Boundary) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE((ExtNat(Max) * ExtNat(2)).isInfinite());
  EXPECT_TRUE((ExtNat(2) * ExtNat(Max)).isInfinite());
  EXPECT_TRUE((ExtNat(1ull << 32) * ExtNat(1ull << 32)).isInfinite());
  EXPECT_TRUE((ExtNat(Max) * ExtNat(Max)).isInfinite());
  // The exact boundary still fits: (2^32-1)(2^32+1) = 2^64 - 1.
  EXPECT_EQ((ExtNat((1ull << 32) - 1) * ExtNat((1ull << 32) + 1))
                .finiteValue(),
            Max);
  EXPECT_EQ((ExtNat(Max) * ExtNat(1)).finiteValue(), Max);
  EXPECT_EQ((ExtNat(Max) * ExtNat(0)).finiteValue(), 0u);
}

TEST(ExtNat, SaturationComposesWithOrder) {
  // Saturated results stay absorbing and ordered as infinity.
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  ExtNat Saturated = ExtNat(Max) + ExtNat(Max);
  EXPECT_TRUE((Saturated + ExtNat(1)).isInfinite());
  EXPECT_TRUE((Saturated * ExtNat(2)).isInfinite());
  EXPECT_GT(Saturated, ExtNat(Max));
  EXPECT_EQ(Saturated.monus(ExtNat(Max)).str(), "oo");
}

TEST(ExtNat, FloorLog2) {
  EXPECT_EQ(floorLog2(0), 0u);
  EXPECT_EQ(floorLog2(1), 0u);
  EXPECT_EQ(floorLog2(2), 1u);
  EXPECT_EQ(floorLog2(3), 1u);
  EXPECT_EQ(floorLog2(4), 2u);
  EXPECT_EQ(floorLog2(4096), 12u);
  EXPECT_EQ(floorLog2(4097), 12u);
}

TEST(ExtNat, CeilLog2) {
  EXPECT_EQ(ceilLog2(0), 0u);
  EXPECT_EQ(ceilLog2(1), 0u);
  EXPECT_EQ(ceilLog2(2), 1u);
  EXPECT_EQ(ceilLog2(3), 2u);
  EXPECT_EQ(ceilLog2(4), 2u);
  EXPECT_EQ(ceilLog2(5), 3u);
  EXPECT_EQ(ceilLog2(4096), 12u);
}

TEST(SourceLoc, InvalidByDefault) {
  SourceLoc L;
  EXPECT_FALSE(L.isValid());
  EXPECT_EQ(L.str(), "<unknown>");
}

TEST(SourceLoc, Printing) {
  SourceLoc L(3, 14);
  EXPECT_TRUE(L.isValid());
  EXPECT_EQ(L.str(), "3:14");
}

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine DE;
  DE.warning(SourceLoc(1, 1), "unused variable");
  EXPECT_FALSE(DE.hasErrors());
  DE.error(SourceLoc(2, 5), "unknown identifier 'foo'");
  DE.note(SourceLoc(1, 1), "declared here");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u);
  EXPECT_EQ(DE.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticEngine DE;
  DE.error(SourceLoc(2, 5), "unknown identifier 'foo'");
  EXPECT_EQ(DE.diagnostics()[0].str(), "error: 2:5: unknown identifier 'foo'");
  DE.clear();
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_TRUE(DE.diagnostics().empty());
}

//===----------------------------------------------------------------------===//
// Strict numeric-operand parsing (shared by the qcc and qccd CLIs)
//===----------------------------------------------------------------------===//

TEST(ParseUnsigned, AcceptsCleanIntegers) {
  EXPECT_EQ(parseUnsigned("0"), 0u);
  EXPECT_EQ(parseUnsigned("42"), 42u);
  EXPECT_EQ(parseUnsigned("0x10"), 16u); // Base-0: hex and octal prefixes.
  EXPECT_EQ(parseUnsigned("010"), 8u);
  EXPECT_EQ(parseUnsigned("18446744073709551615"), UINT64_MAX);
}

TEST(ParseUnsigned, RejectsSignsWhereStrtoullWouldWrap) {
  // Bare strtoull("-1") "succeeds" with 2^64-1 — the --jobs -1 trap.
  EXPECT_FALSE(parseUnsigned("-1"));
  EXPECT_FALSE(parseUnsigned("+1")); // Sign noise, even without wrap.
  EXPECT_FALSE(parseUnsigned("-0"));
}

TEST(ParseUnsigned, RejectsWhitespaceAndTrailingGarbage) {
  // strtoull skips leading whitespace (re-admitting a sign behind it)
  // and reports trailing junk only through the end pointer.
  EXPECT_FALSE(parseUnsigned(" 1"));
  EXPECT_FALSE(parseUnsigned("\t1"));
  EXPECT_FALSE(parseUnsigned(" -1"));
  EXPECT_FALSE(parseUnsigned("1 "));
  EXPECT_FALSE(parseUnsigned("12abc"));
  EXPECT_FALSE(parseUnsigned("1.5"));
  EXPECT_FALSE(parseUnsigned("0x"));
}

TEST(ParseUnsigned, RejectsEmptyAndNonNumeric) {
  EXPECT_FALSE(parseUnsigned(""));
  EXPECT_FALSE(parseUnsigned("abc"));
  EXPECT_FALSE(parseUnsigned(nullptr));
}

TEST(ParseUnsigned, RejectsOverflow) {
  EXPECT_FALSE(parseUnsigned("18446744073709551616")); // 2^64: ERANGE.
  EXPECT_FALSE(parseUnsigned("99999999999999999999999999"));
  EXPECT_FALSE(parseUnsigned("101", 100)); // The caller's ceiling.
  EXPECT_EQ(parseUnsigned("100", 100), 100u);
}

//===----------------------------------------------------------------------===//
// Full-transfer I/O helpers (EINTR / short-write discipline)
//===----------------------------------------------------------------------===//

TEST(Io, WriteFullAndReadFullRoundTripAPipe) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  const std::string Payload(1 << 16, 'q'); // Larger than the pipe buffer.
  std::thread Writer([&] {
    EXPECT_TRUE(io::writeFull(Fds[1], Payload.data(), Payload.size()));
    close(Fds[1]);
  });
  std::string Got(Payload.size(), '\0');
  // A pipe delivers this in many short reads; readFull must loop.
  EXPECT_EQ(io::readFull(Fds[0], Got.data(), Got.size()),
            static_cast<long>(Payload.size()));
  EXPECT_EQ(Got, Payload);
  Writer.join();
  close(Fds[0]);
}

TEST(Io, ReadFullReportsEofShort) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  ASSERT_TRUE(io::writeFull(Fds[1], "abc", 3));
  close(Fds[1]);
  char Buf[8];
  EXPECT_EQ(io::readFull(Fds[0], Buf, sizeof(Buf)), 3); // EOF mid-request.
  EXPECT_EQ(io::readFull(Fds[0], Buf, sizeof(Buf)), 0); // EOF at boundary.
  close(Fds[0]);
}

TEST(Io, ReadFullReportsErrors) {
  char Buf[4];
  EXPECT_EQ(io::readFull(-1, Buf, sizeof(Buf)), -1);
  EXPECT_FALSE(io::writeFull(-1, Buf, sizeof(Buf)));
}

TEST(Io, ReadFileSlurpsBinaryContent) {
  std::string Path = "/tmp/qcc-io-test-" + std::to_string(getpid());
  std::string Payload("binary\0payload\nwith newlines\n", 29);
  Payload.push_back('\0');
  {
    int Fd = open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(Fd, 0);
    ASSERT_TRUE(io::writeFull(Fd, Payload.data(), Payload.size()));
    close(Fd);
  }
  std::string Got;
  EXPECT_TRUE(io::readFile(Path, Got));
  EXPECT_EQ(Got, Payload);
  unlink(Path.c_str());
  EXPECT_FALSE(io::readFile(Path, Got)); // Gone now.
}

//===----------------------------------------------------------------------===//
// Failpoints: spec grammar, triggers, actions, and the Io integration
//===----------------------------------------------------------------------===//

TEST(FailPoint, GrammarRejectsMalformedSpecsWithoutArmingAnything) {
  failpoint::Registry &R = failpoint::Registry::instance();
  const char *Bad[] = {
      "no-equals",             // missing '='
      "=err",                  // empty site name
      "site=bogus",            // unknown action
      "site=err:ebadname",     // errno outside the allowlist
      "site=short:5",          // short takes no operand
      "site=crash:now",        // crash takes no operand
      "site=delay:soon",       // non-numeric millis
      "site=err@",             // empty trigger
      "site=err@0",            // hit numbers are 1-based
      "site=err@5..3",         // reversed range
      "site=err@3..x",         // garbage range end
      "site=err@threeish",     // garbage trigger
      "site=err@p1.5",         // probability above 1
      "site=err@p0.5x",        // trailing garbage after the float
      "good=err;site=@broken", // one bad entry poisons the whole spec
  };
  for (const char *Spec : Bad) {
    std::string Error;
    EXPECT_FALSE(R.configure(Spec, 0, &Error)) << Spec;
    EXPECT_FALSE(Error.empty()) << Spec;
    EXPECT_FALSE(R.armed()) << Spec << ": a rejected spec must arm nothing";
  }
  R.clear();
}

TEST(FailPoint, GrammarAcceptsTheDocumentedForms) {
  failpoint::Registry &R = failpoint::Registry::instance();
  const char *Good[] = {
      "",
      "s=err",
      "s=err:enospc",
      "s=short@3",
      "s=delay",
      "s=delay:250@2..8",
      "s=crash@p0.25",
      "a=err@1;b=short@2..2;c=delay:1@p1.0",
      "s=err;;t=short", // empty entries are skipped, not errors
      "s=off",          // off parses and arms nothing
  };
  for (const char *Spec : Good) {
    std::string Error;
    EXPECT_TRUE(R.configure(Spec, 0, &Error)) << Spec << ": " << Error;
  }
  // "off" alone leaves the fast path disarmed.
  ASSERT_TRUE(R.configure("s=off", 0, nullptr));
  EXPECT_FALSE(R.armed());
  R.clear();
}

TEST(FailPoint, NthHitAndRangeTriggersFireExactlyWhereSpecified) {
  {
    failpoint::ScopedSpec FP("t.site=err@3");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    EXPECT_FALSE(failpoint::fire("t.site")); // hit 1
    EXPECT_FALSE(failpoint::fire("t.site")); // hit 2
    EXPECT_EQ(failpoint::fire("t.site").K, failpoint::Kind::Err); // hit 3
    EXPECT_FALSE(failpoint::fire("t.site")); // hit 4: one-shot
  }
  {
    failpoint::ScopedSpec FP("t.site=short@2..4");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    EXPECT_FALSE(failpoint::fire("t.site"));
    for (int Hit = 2; Hit <= 4; ++Hit)
      EXPECT_EQ(failpoint::fire("t.site").K, failpoint::Kind::Short) << Hit;
    EXPECT_FALSE(failpoint::fire("t.site"));
  }
  // configure() resets per-site hit counts: the same one-shot spec fires
  // on its third hit again, not never.
  {
    failpoint::ScopedSpec FP("t.site=err@3");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    EXPECT_FALSE(failpoint::fire("t.site"));
    EXPECT_FALSE(failpoint::fire("t.site"));
    EXPECT_EQ(failpoint::fire("t.site").K, failpoint::Kind::Err);
  }
}

TEST(FailPoint, ProbabilisticTriggerIsSeededAndDeterministic) {
  failpoint::Registry &R = failpoint::Registry::instance();
  auto Pattern = [&R](uint64_t Seed) {
    EXPECT_TRUE(R.configure("t.prob=err@p0.5", Seed, nullptr));
    std::string Bits;
    for (int Hit = 0; Hit != 64; ++Hit)
      Bits.push_back(failpoint::fire("t.prob") ? '1' : '0');
    return Bits;
  };
  std::string A = Pattern(42);
  EXPECT_EQ(A, Pattern(42)) << "same (spec, seed) must replay identically";
  // The stream really draws: neither all-fire nor never-fire at p=0.5.
  EXPECT_NE(A.find('1'), std::string::npos);
  EXPECT_NE(A.find('0'), std::string::npos);
  // The degenerate probabilities are exact, not approximate.
  ASSERT_TRUE(R.configure("t.prob=err@p0.0", 42, nullptr));
  for (int Hit = 0; Hit != 32; ++Hit)
    EXPECT_FALSE(failpoint::fire("t.prob"));
  ASSERT_TRUE(R.configure("t.prob=err@p1.0", 42, nullptr));
  for (int Hit = 0; Hit != 32; ++Hit)
    EXPECT_TRUE(failpoint::fire("t.prob"));
  R.clear();
}

TEST(FailPoint, ErrActionSetsTheInjectedErrno) {
  failpoint::ScopedSpec FP("t.err=err:enospc");
  ASSERT_TRUE(FP.Ok) << FP.Error;
  errno = 0;
  failpoint::Action A = failpoint::fire("t.err");
  EXPECT_EQ(A.K, failpoint::Kind::Err);
  EXPECT_EQ(A.Errno, ENOSPC);
  EXPECT_EQ(errno, ENOSPC);
}

TEST(FailPoint, DelayActionSleepsThenProceeds) {
  failpoint::ScopedSpec FP("t.delay=delay:50@1");
  ASSERT_TRUE(FP.Ok) << FP.Error;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(failpoint::fire("t.delay")); // sleeps, then proceeds
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - Start);
  EXPECT_GE(Elapsed.count(), 45);
  EXPECT_FALSE(failpoint::fire("t.delay")); // one-shot: no second sleep
}

TEST(FailPoint, HitCountsAreObservableEvenForUnmatchedSites) {
  failpoint::ScopedSpec FP("t.never=err@1000");
  ASSERT_TRUE(FP.Ok) << FP.Error;
  failpoint::Registry &R = failpoint::Registry::instance();
  for (int Hit = 0; Hit != 3; ++Hit)
    EXPECT_FALSE(failpoint::fire("t.never"));
  EXPECT_FALSE(failpoint::fire("t.other")); // armed registry, other site
  EXPECT_EQ(R.hits("t.never"), 3u);
  EXPECT_EQ(R.hits("t.other"), 1u);
  EXPECT_EQ(R.hits("t.untouched"), 0u);
  R.clear();
  EXPECT_EQ(R.hits("t.never"), 0u) << "clear() resets hit counts";
}

TEST(FailPoint, IoWriteErrFailsTheTransferAndRecoversWhenDisarmed) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  {
    failpoint::ScopedSpec FP("io.write=err:eio@1");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    errno = 0;
    EXPECT_FALSE(io::writeFull(Fds[1], "payload", 7));
    EXPECT_EQ(errno, EIO);
  }
  // Disarmed: the same fd carries the same bytes.
  ASSERT_TRUE(io::writeFull(Fds[1], "payload", 7));
  close(Fds[1]);
  char Buf[8];
  EXPECT_EQ(io::readFull(Fds[0], Buf, sizeof(Buf)), 7);
  EXPECT_EQ(std::string(Buf, 7), "payload");
  close(Fds[0]);
}

TEST(FailPoint, IoWriteShortLandsExactlyHalfThenFails) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  {
    failpoint::ScopedSpec FP("io.write=short@1");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    EXPECT_FALSE(io::writeFull(Fds[1], "12345678", 8));
  }
  close(Fds[1]);
  // The torn write is honest: exactly half really reached the pipe.
  char Buf[8];
  EXPECT_EQ(io::readFull(Fds[0], Buf, sizeof(Buf)), 4);
  EXPECT_EQ(std::string(Buf, 4), "1234");
  close(Fds[0]);
}

TEST(FailPoint, IoReadFaultsTruncateOrFailTheRead) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  ASSERT_TRUE(io::writeFull(Fds[1], "12345678", 8));
  close(Fds[1]);
  char Buf[8];
  {
    failpoint::ScopedSpec FP("io.read=short@1");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    EXPECT_EQ(io::readFull(Fds[0], Buf, sizeof(Buf)), 4); // stream "ends"
  }
  {
    failpoint::ScopedSpec FP("io.read=err@1");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    EXPECT_EQ(io::readFull(Fds[0], Buf, sizeof(Buf)), -1);
  }
  EXPECT_EQ(io::readFull(Fds[0], Buf, sizeof(Buf)), 4); // the rest survives
  close(Fds[0]);
}

TEST(FailPoint, IoFsyncFaultFailsTheBarrier) {
  std::string Path = "/tmp/qcc-failpoint-fsync-" + std::to_string(getpid());
  int Fd = open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(Fd, 0);
  {
    failpoint::ScopedSpec FP("io.fsync=err@1");
    ASSERT_TRUE(FP.Ok) << FP.Error;
    EXPECT_FALSE(io::fsyncFull(Fd));
  }
  EXPECT_TRUE(io::fsyncFull(Fd));
  close(Fd);
  unlink(Path.c_str());
}

} // namespace
