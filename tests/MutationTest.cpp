//===- tests/MutationTest.cpp - Adversarial proof-checker testing ---------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proof checker is this reproduction's trusted core (it stands in
/// for the paper's Coq soundness proof), so it gets adversarial
/// treatment: take valid derivations and mutate them — shrink a
/// precondition, inflate a postcondition, swap rules, drop children,
/// corrupt the spec — and require the checker to reject every
/// soundness-relevant corruption.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "logic/Builder.h"
#include "logic/Checker.h"
#include "programs/Corpus.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::logic;

namespace {

struct Built {
  clight::Program Program;
  FunctionBound FB;
  FunctionContext Gamma;
};

/// Builds a checked bound for \p Function of the Table 2 corpus.
Built buildFor(const std::string &Function) {
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(programs::table2Source(), D);
  EXPECT_TRUE(CL) << D.str();
  FunctionContext Specs = programs::table2Specs();
  DerivationBuilder Builder(*CL, Specs, {});
  for (const auto &[Callee, Hint] : programs::table2CallHints())
    Builder.setCallResultHint(Callee, Hint);
  auto FB = Builder.buildFunctionBound(Function, Specs.at(Function), D);
  EXPECT_TRUE(FB) << D.str();
  Built B{std::move(*CL), std::move(*FB), Builder.context()};
  // Sanity: the unmutated derivation checks.
  ProofChecker Checker(B.Program, B.Gamma, {});
  DiagnosticEngine CD;
  EXPECT_TRUE(Checker.checkFunctionBound(B.FB, CD)) << CD.str();
  return B;
}

bool checks(const Built &B, const FunctionBound &FB) {
  ProofChecker Checker(B.Program, B.Gamma, {});
  DiagnosticEngine CD;
  return Checker.checkFunctionBound(FB, CD);
}

FunctionBound cloneBound(const FunctionBound &FB) {
  return FunctionBound{FB.Function, FB.Spec, FB.Body->clone()};
}

//===----------------------------------------------------------------------===//
// Node-level mutations
//===----------------------------------------------------------------------===//

class MutatePre : public testing::TestWithParam<std::string> {};

TEST_P(MutatePre, ShrinkingAnyNonZeroPreconditionIsRejected) {
  Built B = buildFor(GetParam());
  size_t N = B.FB.Body->size();
  unsigned MutantsRejected = 0, MutantsTried = 0;
  for (size_t I = 0; I != N; ++I) {
    FunctionBound Mutant = cloneBound(B.FB);
    Derivation *Node = Mutant.Body->nodeAt(I);
    ASSERT_TRUE(Node);
    // Claim zero potential where the proof needed some. Nodes that
    // already require nothing stay untouched.
    if (Node->Pre->K == BoundExprNode::Kind::Const &&
        Node->Pre->Value == ExtNat(0))
      continue;
    Node->Pre = bZero();
    ++MutantsTried;
    MutantsRejected += !checks(B, Mutant);
  }
  // Every single shrink must be caught.
  EXPECT_EQ(MutantsRejected, MutantsTried) << "for " << GetParam();
  EXPECT_GT(MutantsTried, 0u);
}

INSTANTIATE_TEST_SUITE_P(Corpus, MutatePre,
                         testing::Values("bsearch", "fib", "qsort", "sum",
                                         "filter_find"));

TEST(Mutation, InflatingClaimedPostconditionIsRejected) {
  Built B = buildFor("sum");
  // Claim the body leaves more potential than it does: the root's return
  // part becomes spec + extra.
  FunctionBound Mutant = cloneBound(B.FB);
  Mutant.Spec.Post = bAdd(Mutant.Spec.Post, bMetric("sum"));
  // (The body derivation still proves the original; the function-level
  // check must notice the stronger claim is not established.)
  EXPECT_FALSE(checks(B, Mutant));
}

TEST(Mutation, SwappingRuleTagsIsRejected) {
  Built B = buildFor("fib");
  size_t N = B.FB.Body->size();
  unsigned Rejected = 0, Tried = 0;
  for (size_t I = 0; I != N; ++I) {
    FunctionBound Mutant = cloneBound(B.FB);
    Derivation *Node = Mutant.Body->nodeAt(I);
    // Retag call rules as skips (a classic forged-proof move).
    if (Node->R != Rule::CallBalanced && Node->R != Rule::Call)
      continue;
    Node->R = Rule::Skip;
    ++Tried;
    Rejected += !checks(B, Mutant);
  }
  EXPECT_EQ(Rejected, Tried);
  EXPECT_GT(Tried, 0u);
}

TEST(Mutation, DroppingChildrenIsRejected) {
  Built B = buildFor("bsearch");
  size_t N = B.FB.Body->size();
  unsigned Rejected = 0, Tried = 0;
  for (size_t I = 0; I != N; ++I) {
    FunctionBound Mutant = cloneBound(B.FB);
    Derivation *Node = Mutant.Body->nodeAt(I);
    if (Node->Children.empty())
      continue;
    Node->Children.clear();
    ++Tried;
    Rejected += !checks(B, Mutant);
  }
  EXPECT_EQ(Rejected, Tried);
  EXPECT_GT(Tried, 0u);
}

TEST(Mutation, RedirectingAStatementIsRejected) {
  // A derivation for one statement must not certify a different one.
  Built B = buildFor("sum");
  FunctionBound Mutant = cloneBound(B.FB);
  // Point the root at a sub-statement.
  const clight::Function *F = B.Program.findFunction("sum");
  ASSERT_TRUE(F);
  Mutant.Body->S = F->Body->First.get();
  EXPECT_FALSE(checks(B, Mutant));
}

//===----------------------------------------------------------------------===//
// Context- and spec-level corruptions
//===----------------------------------------------------------------------===//

TEST(Mutation, WeakerCalleeSpecInContextIsRejected) {
  // The caller's derivation leaned on bsearch's log spec; replacing the
  // context entry with a cheaper claim must invalidate the caller.
  Built B = buildFor("filter_find");
  FunctionContext Weaker = B.Gamma;
  Weaker["bsearch"] = FunctionSpec::balanced(bZero());
  ProofChecker Checker(B.Program, Weaker, {});
  DiagnosticEngine CD;
  // filter_find's derivation references bsearch's *old* instantiated
  // requirement in its preconditions; with the new context the Q:CALL*
  // nodes themselves still check (weaker callee means weaker
  // requirement)... but then the claimed spec must fail elsewhere, or
  // the whole bound legitimately checks against the weaker context —
  // which would be fine if the weaker context were *sound*. The point of
  // this test: checking is always relative to Gamma, so verify the
  // coupled property instead: the forged context itself cannot be
  // established for bsearch.
  DerivationBuilder Builder(B.Program, Weaker, {});
  DiagnosticEngine BD;
  auto Forged = Builder.buildFunctionBound(
      "bsearch", FunctionSpec::balanced(bZero()), BD);
  ASSERT_TRUE(Forged);
  DiagnosticEngine FD;
  EXPECT_FALSE(Checker.checkFunctionBound(*Forged, FD));
}

TEST(Mutation, HavocWithoutFactsIsRejected) {
  Built B = buildFor("qsort");
  // Strip partition's ResultFacts from the context: the Q:CALL-HAVOC
  // node's fact-dependent entailment must now fail (p unconstrained).
  FunctionContext NoFacts = B.Gamma;
  NoFacts["partition"].ResultFacts.clear();
  ProofChecker Checker(B.Program, NoFacts, {});
  DiagnosticEngine CD;
  EXPECT_FALSE(Checker.checkFunctionBound(B.FB, CD));
}

TEST(Mutation, HavocMajorantObservingResultIsRejected) {
  Built B = buildFor("qsort");
  FunctionBound Mutant = cloneBound(B.FB);
  // Find the CallHavoc node and make its majorant mention the dest.
  for (size_t I = 0; I != Mutant.Body->size(); ++I) {
    Derivation *Node = Mutant.Body->nodeAt(I);
    if (Node->R != Rule::CallHavoc)
      continue;
    Node->SupHint = bNatTerm(IntTermNode::var(Node->S->Dest.Name));
    EXPECT_FALSE(checks(B, Mutant));
    return;
  }
  FAIL() << "no CallHavoc node in the qsort derivation";
}

TEST(Mutation, FrameWithStateDependentAmountIsRejected) {
  // Build a tiny Frame node by hand: framing with a program-variable
  // amount is unsound (the statement may change the variable) and the
  // checker must refuse it syntactically.
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(
      "u32 f(u32 x) { x = 0; return x; }\nint main() { return (int)f(1); }",
      D);
  ASSERT_TRUE(CL);
  const clight::Function *F = CL->findFunction("f");
  // The assignment x = 0 inside f's body.
  const clight::Stmt *Assign = F->Body->First.get();
  while (Assign->Kind == clight::StmtKind::Seq)
    Assign = Assign->First.get();
  ASSERT_EQ(Assign->Kind, clight::StmtKind::Assign);

  auto Inner = std::make_unique<Derivation>();
  Inner->R = Rule::Assign;
  Inner->S = Assign;
  Inner->Pre = bZero();
  Inner->Post = PostCondition::all(bZero());

  auto Frame = std::make_unique<Derivation>();
  Frame->R = Rule::Frame;
  Frame->S = Assign;
  Frame->FrameAmount = bNatTerm(IntTermNode::var("x")); // State-dependent!
  Frame->Pre = bNatTerm(IntTermNode::var("x"));
  Frame->Post = PostCondition::all(bNatTerm(IntTermNode::var("x")));
  Frame->Children.push_back(std::move(Inner));

  ProofChecker Checker(*CL, {}, {});
  DiagnosticEngine CD;
  EXPECT_FALSE(Checker.check(*Frame, *F, CD));
  EXPECT_NE(CD.str().find("program variables"), std::string::npos);
}

TEST(Mutation, ValidFrameAndConseqNodesAreAccepted) {
  // The primitive rules the builder does not emit still check: wrap a
  // skip in Frame(+M(f)) and a Conseq that weakens.
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(
      "void f() { }\nint main() { f(); return 0; }", D);
  ASSERT_TRUE(CL);
  const clight::Function *F = CL->findFunction("f");
  const clight::Stmt *Body = F->Body.get(); // seq(skip, return)
  const clight::Stmt *Skip = Body->First.get();
  ASSERT_EQ(Skip->Kind, clight::StmtKind::Skip);

  auto Inner = std::make_unique<Derivation>();
  Inner->R = Rule::Skip;
  Inner->S = Skip;
  Inner->Pre = bZero();
  Inner->Post = PostCondition::all(bZero());

  auto Frame = std::make_unique<Derivation>();
  Frame->R = Rule::Frame;
  Frame->S = Skip;
  Frame->FrameAmount = bMetric("f");
  Frame->Pre = bMetric("f");
  Frame->Post = PostCondition::all(bMetric("f"));
  Frame->Children.push_back(std::move(Inner));

  auto Conseq = std::make_unique<Derivation>();
  Conseq->R = Rule::Conseq;
  Conseq->S = Skip;
  Conseq->Pre = bAdd(bMetric("f"), bConst(8)); // Stronger pre.
  Conseq->Post = PostCondition::all(bZero());  // Weaker post.
  Conseq->Children.push_back(std::move(Frame));

  ProofChecker Checker(*CL, {}, {});
  DiagnosticEngine CD;
  EXPECT_TRUE(Checker.check(*Conseq, *F, CD)) << CD.str();

  // And the unsound direction fails: claiming a *larger* post.
  Conseq->Post = PostCondition::all(bAdd(bMetric("f"), bConst(1)));
  DiagnosticEngine CD2;
  EXPECT_FALSE(Checker.check(*Conseq, *F, CD2));
}

} // namespace
