//===- tests/IncrementalTest.cpp - Function-granular verification ---------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental engine's regression suite: call-graph key stability
/// (topological order, recursive-SCC grouping), the exact re-verification
/// set under single-function mutations, bit-identity of warm results with
/// the whole-file path, the persistent function store's round trips and
/// corruption handling, and an oversubscribed shared-engine stress that
/// races the interned Bound table and the arenas for the TSan slice.
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "batch/Batch.h"
#include "frontend/Frontend.h"
#include "incremental/Incremental.h"
#include "logic/Bound.h"
#include "store/FuncStore.h"
#include "support/Arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

using namespace qcc;

namespace {

namespace fs = std::filesystem;

clight::Program mustParse(const std::string &Src) {
  DiagnosticEngine D;
  auto P = frontend::parseProgram(Src, D);
  EXPECT_TRUE(P) << D.str();
  return P ? std::move(*P) : clight::Program{};
}

/// A fresh directory under the system temp root, removed on destruction.
struct TempDir {
  fs::path Path;
  TempDir() {
    static std::atomic<unsigned> Seq{0};
    Path = fs::temp_directory_path() /
           ("qcc-inc-test-" + std::to_string(getpid()) + "-" +
            std::to_string(Seq.fetch_add(1)));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

batch::BatchJob job(const std::string &Id, const std::string &Source) {
  batch::BatchJob J;
  J.Id = Id;
  J.Source = Source;
  return J;
}

/// The bit-identity contract (batch::IncrementalEngine): everything but
/// timings and the incremental counters must match the whole-file path.
void expectSameVerdict(const batch::ProgramResult &A,
                       const batch::ProgramResult &B) {
  EXPECT_EQ(A.Id, B.Id);
  EXPECT_EQ(A.Ok, B.Ok);
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.Stop, B.Stop);
  EXPECT_EQ(A.Diagnostics, B.Diagnostics);
  EXPECT_EQ(A.SkippedRecursive, B.SkippedRecursive);
  EXPECT_EQ(A.Theorem1Checked, B.Theorem1Checked);
  EXPECT_EQ(A.Theorem1Ok, B.Theorem1Ok);
  EXPECT_EQ(A.Theorem1StackBytes, B.Theorem1StackBytes);
  EXPECT_EQ(A.ProofBlob, B.ProofBlob);
  EXPECT_EQ(A.Metrics.ProofNodes, B.Metrics.ProofNodes);
  EXPECT_EQ(A.Metrics.ReplayedEvents, B.Metrics.ReplayedEvents);
  ASSERT_EQ(A.Bounds.size(), B.Bounds.size());
  for (size_t I = 0; I != A.Bounds.size(); ++I) {
    EXPECT_EQ(A.Bounds[I].Function, B.Bounds[I].Function);
    EXPECT_EQ(A.Bounds[I].SymbolicBound, B.Bounds[I].SymbolicBound);
    EXPECT_EQ(A.Bounds[I].ConcreteBytes, B.Bounds[I].ConcreteBytes);
  }
}

//===----------------------------------------------------------------------===//
// Call-graph keys: topological-order stability, recursive-SCC grouping
//===----------------------------------------------------------------------===//

const char *DiamondSrc = R"(
u32 h(u32 n) { return n + 1u; }
u32 g(u32 n) { return h(n); }
u32 f(u32 n) { return g(n) + h(n); }
int main() { return (int)(f(3u) & 0xffu); }
)";

TEST(CallGraphIncremental, TopoOrderStableAcrossRebuilds) {
  clight::Program P1 = mustParse(DiamondSrc);
  clight::Program P2 = mustParse(DiamondSrc);
  analysis::CallGraph A(P1), B(P2);
  // The order the incremental keys are computed in must not wobble
  // between parses of the same program, or keys would be rebuilt against
  // different evolving contexts from run to run.
  EXPECT_EQ(A.topologicalOrder(), B.topologicalOrder());

  // And it is callee-first: every callee precedes its caller, so when a
  // function's key is computed, every callee's spec is already in Gamma.
  const auto &Topo = A.topologicalOrder();
  auto Pos = [&Topo](const std::string &N) {
    return std::find(Topo.begin(), Topo.end(), N) - Topo.begin();
  };
  for (const std::string &F : Topo)
    for (const std::string &C : A.callees(F))
      EXPECT_LT(Pos(C), Pos(F)) << C << " must precede " << F;
}

TEST(CallGraphIncremental, TopoOrderIgnoresDefinitionOrder) {
  // The same call graph spelled with definitions permuted: key
  // computation order depends on the graph, not the source layout.
  clight::Program P1 = mustParse(DiamondSrc);
  clight::Program P2 = mustParse(R"(
int main() { return (int)(f(3u) & 0xffu); }
u32 f(u32 n) { return g(n) + h(n); }
u32 g(u32 n) { return h(n); }
u32 h(u32 n) { return n + 1u; }
)");
  analysis::CallGraph A(P1), B(P2);
  EXPECT_EQ(A.topologicalOrder(), B.topologicalOrder());
}

TEST(CallGraphIncremental, RecursiveComponentsGroupCycleFamilies) {
  clight::Program P = mustParse(R"(
u32 self(u32 n) { if (n == 0u) return 0u; return self(n - 1u); }
u32 ping(u32 n) { if (n == 0u) return 0u; return pong(n - 1u); }
u32 pong(u32 n) { return ping(n); }
u32 plain(u32 n) { return n + 1u; }
int main() { return (int)((self(2u) + ping(2u) + plain(2u)) & 0xffu); }
)");
  analysis::CallGraph CG(P);
  // {ping, pong} is one cycle family, {self} another; plain and main are
  // not recursive. Components are disjoint, cover recursiveFunctions()
  // exactly, and are ordered by smallest member — the unit the engine
  // invalidates together, since any member's bound can depend on every
  // other member's body.
  const auto &Comps = CG.recursiveComponents();
  ASSERT_EQ(Comps.size(), 2u);
  EXPECT_EQ(Comps[0], (std::set<std::string>{"ping", "pong"}));
  EXPECT_EQ(Comps[1], (std::set<std::string>{"self"}));
  std::set<std::string> Union;
  for (const auto &C : Comps)
    Union.insert(C.begin(), C.end());
  EXPECT_EQ(Union, CG.recursiveFunctions());
}

//===----------------------------------------------------------------------===//
// The persistent function store
//===----------------------------------------------------------------------===//

TEST(FuncStore, RoundTripAndMiss) {
  TempDir Dir;
  store::FuncStore FS(Dir.str());
  ASSERT_TRUE(FS.valid()) << FS.error();

  store::FuncKey K{0x1122334455667788ull, 0x99aabbccddeeff00ull};
  EXPECT_FALSE(FS.fetchFunc(K));
  FS.putFunc(K, "record-bytes");
  auto Got = FS.fetchFunc(K);
  ASSERT_TRUE(Got);
  EXPECT_EQ(*Got, "record-bytes");
  EXPECT_FALSE(FS.fetchFunc({K.Primary, K.Verify + 1}));

  store::TuManifest Mani;
  Mani["alpha"] = {1, 2};
  Mani["beta"] = {3, 4};
  EXPECT_FALSE(FS.fetchManifest(42));
  FS.putManifest(42, Mani);
  auto M = FS.fetchManifest(42);
  ASSERT_TRUE(M);
  EXPECT_EQ(*M, Mani);

  store::FuncStoreStats S = FS.stats();
  EXPECT_EQ(S.Puts, 1u); // Function records only; manifests are untracked.
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Corrupt, 0u);
}

TEST(FuncStore, CorruptionQuarantinesTheRecord) {
  TempDir Dir;
  store::FuncStore FS(Dir.str());
  ASSERT_TRUE(FS.valid()) << FS.error();
  store::FuncKey K{7, 9};
  FS.putFunc(K, "precious");

  // Flip one payload byte in the single record file on disk.
  fs::path File;
  for (const auto &E : fs::recursive_directory_iterator(Dir.Path))
    if (E.is_regular_file())
      File = E.path();
  ASSERT_FALSE(File.empty());
  {
    std::fstream F(File, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(-1, std::ios::end);
    F.put('X');
  }

  EXPECT_FALSE(FS.fetchFunc(K)); // Checksum mismatch: a miss, not garbage.
  EXPECT_EQ(FS.stats().Corrupt, 1u);
  EXPECT_FALSE(fs::exists(File)); // Quarantined: removed, won't re-trip.
}

TEST(FuncStore, RenamedRecordRejectedByEmbeddedKey) {
  TempDir Dir;
  store::FuncStore FS(Dir.str());
  ASSERT_TRUE(FS.valid()) << FS.error();
  FS.putFunc({1, 2}, "for-key-1-2");

  // Move the record where key {3,4} would live: the checksum still
  // passes, but the embedded key does not match the request.
  fs::path File;
  for (const auto &E : fs::recursive_directory_iterator(Dir.Path))
    if (E.is_regular_file())
      File = E.path();
  ASSERT_FALSE(File.empty());
  char Name[64];
  snprintf(Name, sizeof Name, "%016llx-%016llx.qfn", 3ull, 4ull);
  fs::rename(File, File.parent_path() / Name);

  EXPECT_FALSE(FS.fetchFunc({3, 4}));
  EXPECT_EQ(FS.stats().Corrupt, 1u);
}

//===----------------------------------------------------------------------===//
// The engine: bit-identity with the whole-file path
//===----------------------------------------------------------------------===//

const char *ChainSrc = R"(
u32 leaf(u32 n) { return n + 1u; }
u32 mid(u32 n) { return leaf(n) + 2u; }
int main() { return (int)(mid(5u) & 0xffu); }
)";

const char *RecursiveSrc = R"(
u32 down(u32 n) { if (n == 0u) return 0u; return down(n - 1u) + 1u; }
u32 plain(u32 n) { return n + 3u; }
int main() { return (int)(plain(4u) & 0xffu); }
)";

TEST(IncrementalEngine, ColdRunMatchesVerifyOne) {
  for (const char *Src : {ChainSrc, RecursiveSrc, DiamondSrc}) {
    incremental::Engine Eng;
    batch::BatchJob J = job("prog.c", Src);
    batch::ProgramResult A = Eng.verify(J, true, nullptr, true);
    batch::ProgramResult B = batch::verifyOne(J, true, nullptr, true);
    expectSameVerdict(A, B);
    EXPECT_TRUE(A.Ok);
  }
}

TEST(IncrementalEngine, WarmRunBitIdenticalAndFullyReused) {
  incremental::Engine Eng;
  batch::BatchJob J = job("prog.c", ChainSrc);
  batch::ProgramResult Cold = Eng.verify(J, true, nullptr, true);
  batch::ProgramResult Warm = Eng.verify(J, true, nullptr, true);
  expectSameVerdict(Cold, Warm);

  EXPECT_EQ(Cold.Metrics.FuncsReVerified, 3u);
  EXPECT_EQ(Cold.Metrics.FuncsReused, 0u);
  EXPECT_EQ(Warm.Metrics.FuncsReused, 3u);
  EXPECT_EQ(Warm.Metrics.FuncsReVerified, 0u);
  EXPECT_TRUE(Warm.Metrics.ReVerifiedFunctions.empty());
  EXPECT_EQ(Eng.stats().ReplayHits, 1u); // Validation + Theorem 1 served.
}

TEST(IncrementalEngine, FailedTheorem1StillBitIdenticalWhenWarm) {
  // A diagnostics-bearing program (the skipped-recursive warning): the
  // warm run must reproduce the rendered diagnostics byte for byte.
  incremental::Engine Eng;
  batch::BatchJob J = job("rec.c", R"(
u32 down(u32 n) { if (n == 0u) return 0u; return down(n - 1u) + 1u; }
int main() { return (int)(down(3u) & 0xffu); }
)");
  batch::ProgramResult Cold = Eng.verify(J, true, nullptr, true);
  batch::ProgramResult Ref = batch::verifyOne(J, true, nullptr, true);
  batch::ProgramResult Warm = Eng.verify(J, true, nullptr, true);
  expectSameVerdict(Cold, Ref);
  expectSameVerdict(Warm, Ref);
  EXPECT_FALSE(Ref.Diagnostics.empty());
}

TEST(IncrementalEngine, InlineJobsFallBackWholesale) {
  // RTL inlining splices callee bodies across function boundaries, so
  // per-function keys are unsound there: the engine must dispatch to
  // verifyOne, not key anything.
  incremental::Engine Eng;
  batch::BatchJob J = job("prog.c", ChainSrc);
  J.Options.Inline = true;
  batch::ProgramResult A = Eng.verify(J, true, nullptr, true);
  batch::ProgramResult B = batch::verifyOne(J, true, nullptr, true);
  expectSameVerdict(A, B);
  EXPECT_EQ(Eng.stats().FallbackJobs, 1u);
  EXPECT_EQ(Eng.stats().Jobs, 0u);
}

//===----------------------------------------------------------------------===//
// Mutation tests: the exact re-verified set
//===----------------------------------------------------------------------===//

TEST(IncrementalEngine, SpecPreservingEditReverifiesOnlyTheEditedFunction) {
  incremental::Engine Eng;
  batch::ProgramResult Base = Eng.verify(job("prog.c", R"(
u32 leaf(u32 n) { return n + 1u; }
u32 mid(u32 n) { return leaf(n) + 2u; }
int main() { return (int)(mid(5u) & 0xffu); }
)"),
                                         true, nullptr, true);
  ASSERT_TRUE(Base.Ok);

  // Edit leaf's arithmetic. Its body hash changes, but its derived spec
  // (which counts callee frames only) does not — so mid's and main's keys
  // recompute identically and the invalidation stops at leaf.
  batch::ProgramResult Edited = Eng.verify(job("prog.c", R"(
u32 leaf(u32 n) { return n + 7u; }
u32 mid(u32 n) { return leaf(n) + 2u; }
int main() { return (int)(mid(5u) & 0xffu); }
)"),
                                           true, nullptr, true);
  ASSERT_TRUE(Edited.Ok);
  EXPECT_EQ(Edited.Metrics.ReVerifiedFunctions,
            (std::vector<std::string>{"leaf"}));
  EXPECT_EQ(Edited.Metrics.FuncsReused, 2u);
  EXPECT_EQ(Edited.Metrics.FuncsInvalidated, 1u);

  // The edited program's verdict still matches its own whole-file run.
  expectSameVerdict(Edited, batch::verifyOne(job("prog.c", R"(
u32 leaf(u32 n) { return n + 7u; }
u32 mid(u32 n) { return leaf(n) + 2u; }
int main() { return (int)(mid(5u) & 0xffu); }
)"),
                                             true, nullptr, true));
}

TEST(IncrementalEngine, SpecChangingEditReverifiesTransitiveCallers) {
  incremental::Engine Eng;
  batch::ProgramResult Base = Eng.verify(job("prog.c", R"(
u32 leaf_a(u32 n) { return n + 1u; }
u32 leaf_b(u32 n) { return n + 2u; }
u32 mid(u32 n) { return leaf_a(n); }
int main() { return (int)(mid(5u) & 0xffu); }
)"),
                                         true, nullptr, true);
  ASSERT_TRUE(Base.Ok);

  // mid now also calls leaf_b: mid's spec changes, so main's key changes
  // too — the edited function and its transitive callers, nothing else.
  batch::ProgramResult Edited = Eng.verify(job("prog.c", R"(
u32 leaf_a(u32 n) { return n + 1u; }
u32 leaf_b(u32 n) { return n + 2u; }
u32 mid(u32 n) { return leaf_a(n) + leaf_b(n); }
int main() { return (int)(mid(5u) & 0xffu); }
)"),
                                           true, nullptr, true);
  ASSERT_TRUE(Edited.Ok);
  EXPECT_EQ(Edited.Metrics.ReVerifiedFunctions,
            (std::vector<std::string>{"main", "mid"}));
  EXPECT_EQ(Edited.Metrics.FuncsReused, 2u); // Both leaves.
  EXPECT_EQ(Edited.Metrics.FuncsInvalidated, 2u);
}

TEST(IncrementalEngine, UnreachableHelperEditKeepsTheReplayResult) {
  // Traces at all five levels depend only on code reachable from the
  // entry point, so the replay/Theorem-1 cache survives an edit to a
  // helper main never calls — only the helper itself re-verifies.
  incremental::Engine Eng;
  batch::ProgramResult Base = Eng.verify(job("prog.c", R"(
u32 helper(u32 n) { return n + 1u; }
u32 used(u32 n) { return n + 2u; }
int main() { return (int)(used(5u) & 0xffu); }
)"),
                                         true, nullptr, true);
  ASSERT_TRUE(Base.Ok);
  EXPECT_EQ(Eng.stats().ReplayHits, 0u);

  batch::ProgramResult Edited = Eng.verify(job("prog.c", R"(
u32 helper(u32 n) { return n + 9u; }
u32 used(u32 n) { return n + 2u; }
int main() { return (int)(used(5u) & 0xffu); }
)"),
                                           true, nullptr, true);
  ASSERT_TRUE(Edited.Ok);
  EXPECT_EQ(Eng.stats().ReplayHits, 1u);
  EXPECT_EQ(Edited.Metrics.ReVerifiedFunctions,
            (std::vector<std::string>{"helper"}));
}

//===----------------------------------------------------------------------===//
// Cross-process reuse through the function store
//===----------------------------------------------------------------------===//

TEST(IncrementalEngine, FunctionRecordsPersistAcrossEngines) {
  TempDir Dir;
  incremental::EngineOptions EO;
  EO.FuncStoreDir = Dir.str();

  batch::BatchJob J = job("prog.c", ChainSrc);
  batch::ProgramResult Cold;
  {
    incremental::Engine First(EO);
    Cold = First.verify(J, true, nullptr, true);
    ASSERT_TRUE(Cold.Ok);
    EXPECT_EQ(Cold.Metrics.FuncsReVerified, 3u);
  }

  // A fresh engine on the same directory models a new process: every
  // function record and the TU manifest come back from disk.
  incremental::Engine Second(EO);
  batch::ProgramResult Warm = Second.verify(J, true, nullptr, true);
  expectSameVerdict(Cold, Warm);
  EXPECT_EQ(Warm.Metrics.FuncsReused, 3u);
  EXPECT_EQ(Warm.Metrics.FuncsReVerified, 0u);
  EXPECT_EQ(Warm.Metrics.FuncsInvalidated, 0u); // Manifest seeded from disk.
  EXPECT_GE(Second.storeStats().Hits, 3u);
}

TEST(IncrementalEngine, ClearMemoryRefillsFromDisk) {
  TempDir Dir;
  incremental::EngineOptions EO;
  EO.FuncStoreDir = Dir.str();
  incremental::Engine Eng(EO);

  batch::BatchJob J = job("prog.c", ChainSrc);
  batch::ProgramResult Cold = Eng.verify(J, true, nullptr, true);
  Eng.clearMemory();
  batch::ProgramResult Warm = Eng.verify(J, true, nullptr, true);
  expectSameVerdict(Cold, Warm);
  EXPECT_EQ(Warm.Metrics.FuncsReused, 3u);
}

//===----------------------------------------------------------------------===//
// Metrics surfacing
//===----------------------------------------------------------------------===//

TEST(IncrementalEngine, MetricsJsonDeterministicDetailUnchanged) {
  std::vector<batch::BatchJob> Jobs = {job("a.c", ChainSrc),
                                       job("b.c", DiamondSrc)};
  batch::BatchOptions Plain;
  Plain.Jobs = 1;
  batch::BatchResult Ref = batch::runBatch(Jobs, Plain);

  incremental::Engine Eng;
  batch::BatchOptions Inc;
  Inc.Jobs = 1;
  Inc.Incremental = &Eng;
  batch::BatchResult Got = batch::runBatch(Jobs, Inc);

  // Deterministic detail ignores how the verdict was produced: the two
  // reports are byte-identical. Full detail additionally carries the
  // incremental counters.
  EXPECT_EQ(batch::metricsJson(Ref, batch::JsonDetail::Deterministic),
            batch::metricsJson(Got, batch::JsonDetail::Deterministic));
  std::string Full = batch::metricsJson(Got, batch::JsonDetail::Full);
  EXPECT_NE(Full.find("\"incremental\""), std::string::npos);
  EXPECT_NE(Full.find("\"funcs_reused\""), std::string::npos);
  EXPECT_NE(Full.find("\"interned_bounds\""), std::string::npos);
  EXPECT_NE(Full.find("\"arena_high_water\""), std::string::npos);
  EXPECT_EQ(batch::metricsJson(Ref, batch::JsonDetail::Deterministic)
                .find("\"incremental\""),
            std::string::npos);

  // The counters the JSON carries are live: warm runs reuse, and the
  // interning/arena gauges are non-zero once any bound was built.
  EXPECT_GT(Got.Programs[0].Metrics.InternedBounds, 0u);
  EXPECT_GT(Got.Programs[0].Metrics.ArenaHighWater, 0u);
}

//===----------------------------------------------------------------------===//
// Oversubscribed shared-engine stress (the TSan slice's target)
//===----------------------------------------------------------------------===//

TEST(IncrementalStress, SharedEngineOversubscribed) {
  // Many more threads than cores hammer one engine with a mix of warm
  // hits, cold misses, and concurrent Bound interning + arena traffic.
  // Correctness here is bit-identity per source; the TSan configuration
  // additionally proves the interned table and arenas race-free:
  //   cmake -B build-tsan -S . -DQCC_SANITIZE=thread
  //   ctest --test-dir build-tsan -L incremental
  incremental::Engine Eng;
  const std::vector<const char *> Sources = {ChainSrc, DiamondSrc,
                                             RecursiveSrc};
  std::vector<batch::ProgramResult> Reference;
  for (const char *Src : Sources)
    Reference.push_back(batch::verifyOne(job("p.c", Src), true, nullptr,
                                         true));

  unsigned Hw = std::thread::hardware_concurrency();
  unsigned Threads = std::max(8u, 2 * (Hw ? Hw : 4));
  std::atomic<unsigned> Mismatches{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned I = 0; I != 3; ++I) {
        size_t Pick = (T + I) % Sources.size();
        batch::ProgramResult R =
            Eng.verify(job("p.c", Sources[Pick]), true, nullptr, true);
        const batch::ProgramResult &Ref = Reference[Pick];
        if (R.Ok != Ref.Ok || R.ProofBlob != Ref.ProofBlob ||
            R.Diagnostics != Ref.Diagnostics ||
            R.Theorem1StackBytes != Ref.Theorem1StackBytes)
          Mismatches.fetch_add(1);
        // Extra interner traffic racing the verifies.
        logic::BoundExpr B =
            logic::bAdd(logic::bConst(T + I), logic::bMetric("m"));
        if (!B)
          Mismatches.fetch_add(1);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_GT(logic::internStats().BoundNodes, 0u);
  EXPECT_GT(arenaHighWater(), 0u);
}

} // namespace
