//===- tests/LogicTest.cpp - Unit tests for qcc_logic ---------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "events/Weight.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "logic/Builder.h"
#include "logic/Checker.h"
#include "logic/Entail.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::logic;

namespace {

IntTerm v(const std::string &Name, VarSign S = VarSign::Unsigned) {
  return IntTermNode::var(Name, S);
}
IntTerm c(int64_t V) { return IntTermNode::constant(V); }

clight::Program mustParse(const std::string &Src) {
  DiagnosticEngine D;
  auto P = frontend::parseProgram(Src, D);
  EXPECT_TRUE(P) << D.str();
  return P ? std::move(*P) : clight::Program{};
}

//===----------------------------------------------------------------------===//
// Bound expressions
//===----------------------------------------------------------------------===//

TEST(Bound, ConstantFolding) {
  EXPECT_EQ(bAdd(bConst(3), bConst(4))->Value, ExtNat(7));
  EXPECT_EQ(bMax(bConst(3), bConst(9))->Value, ExtNat(9));
  EXPECT_EQ(bScale(5, bConst(8))->Value, ExtNat(40));
  EXPECT_TRUE(bAdd(bBottom(), bConst(1))->Value.isInfinite());
  EXPECT_EQ(bMul(bBottom(), bZero())->Value, ExtNat(0));
}

TEST(Bound, EvalMetricVars) {
  StackMetric M;
  M.setCost("f", 40);
  M.setCost("g", 24);
  BoundExpr E = bAdd(bMetric("f"), bMax(bMetric("g"), bConst(100)));
  EXPECT_EQ(evalBound(E, M, {}), ExtNat(140));
}

TEST(Bound, EvalLog2Conventions) {
  StackMetric M;
  VarEnv Env{{"w", 0}};
  EXPECT_EQ(evalBound(bLog2W(v("w")), M, Env), ExtNat(0)); // log2(0) = 0.
  Env["w"] = 1;
  EXPECT_EQ(evalBound(bLog2W(v("w")), M, Env), ExtNat(0));
  Env["w"] = 4096;
  EXPECT_EQ(evalBound(bLog2W(v("w")), M, Env), ExtNat(12));
  Env["w"] = 4097;
  EXPECT_EQ(evalBound(bLog2W(v("w")), M, Env), ExtNat(12));
  EXPECT_EQ(evalBound(bLog2C(v("w")), M, Env), ExtNat(13));
  // Negative width (signed reading) is +oo, the paper's convention.
  VarEnv Neg{{"d", static_cast<uint32_t>(-5)}};
  EXPECT_TRUE(
      evalBound(bLog2W(v("d", VarSign::Signed)), M, Neg).isInfinite());
}

TEST(Bound, EvalNatTermAndGuard) {
  StackMetric M;
  VarEnv Env{{"n", 7}};
  EXPECT_EQ(evalBound(bNatTerm(v("n")), M, Env), ExtNat(7));
  EXPECT_TRUE(evalBound(bNatTerm(IntTermNode::sub(c(3), v("n"))), M, Env)
                  .isInfinite());
  Cmp C{v("n"), CmpRel::Ge, c(5)};
  EXPECT_EQ(evalBound(bGuard(C, bConst(9)), M, Env), ExtNat(9));
  Cmp C2{v("n"), CmpRel::Lt, c(5)};
  EXPECT_TRUE(evalBound(bGuard(C2, bConst(9)), M, Env).isInfinite());
}

TEST(Bound, UnboundVariableIsBottom) {
  StackMetric M;
  EXPECT_TRUE(evalBound(bNatTerm(v("missing")), M, {}).isInfinite());
}

TEST(Bound, SubstitutionComposes) {
  // (hi - lo) with hi := mid, mid := lo + (hi-lo)/2.
  BoundExpr E = bLog2C(IntTermNode::sub(v("hi"), v("lo")));
  BoundExpr E1 = substBound(E, "hi", v("mid"));
  BoundExpr E2 = substBound(
      E1, "mid", IntTermNode::add(v("lo"), IntTermNode::divC(
                                               IntTermNode::sub(v("hi"),
                                                                v("lo")),
                                               2)));
  StackMetric M;
  VarEnv Env{{"hi", 100}, {"lo", 20}};
  // ((lo + (hi-lo)/2) - lo) = 40; clog2(40) = 6.
  EXPECT_EQ(evalBound(E2, M, Env), ExtNat(6));
}

TEST(Bound, Printing) {
  BoundExpr E = bAdd(bMetric("init"), bMetric("random"));
  EXPECT_EQ(E->str(), "M(init) + M(random)");
  BoundExpr L = bMul(bMetric("bsearch"),
                     bAdd(bConst(1), bLog2C(IntTermNode::sub(v("hi"),
                                                             v("lo")))));
  EXPECT_EQ(L->str(), "M(bsearch) * (1 + clog2((hi - lo)))");
}

//===----------------------------------------------------------------------===//
// Entailment
//===----------------------------------------------------------------------===//

TEST(Entail, Syntactic) {
  BoundExpr E = bAdd(bMetric("f"), bConst(4));
  EntailResult R = entails(E, E);
  EXPECT_TRUE(R.Holds);
  EXPECT_EQ(R.Method, EntailMethod::Syntactic);
}

TEST(Entail, SymbolicMaxDomination) {
  // max(M(f), M(g)) >= M(g), established without sampling.
  EntailOptions Opt;
  Opt.SymbolicOnly = true;
  BoundExpr P = bMax(bMetric("f"), bMetric("g"));
  EntailResult R = entails(P, bMetric("g"), {}, Opt);
  EXPECT_TRUE(R.Holds);
  EXPECT_EQ(R.Method, EntailMethod::Symbolic);
}

TEST(Entail, SymbolicSumsAndConstants) {
  EntailOptions Opt;
  Opt.SymbolicOnly = true;
  // M(f) + M(g) + 8 >= M(g) + 8.
  EXPECT_TRUE(entails(bAdd(bAdd(bMetric("f"), bMetric("g")), bConst(8)),
                      bAdd(bMetric("g"), bConst(8)), {}, Opt));
  // Figure 5 composite: max(M(f)+B, R) >= R and >= M(f)+B.
  BoundExpr R0 = bMax(bAdd(bMetric("f"), bConst(16)), bMetric("g"));
  EXPECT_TRUE(entails(R0, bMetric("g"), {}, Opt));
  EXPECT_TRUE(entails(R0, bAdd(bMetric("f"), bConst(16)), {}, Opt));
}

TEST(Entail, SymbolicRejectsWrongDirection) {
  EntailOptions Opt;
  Opt.SymbolicOnly = true;
  EXPECT_FALSE(entails(bMetric("g"), bMax(bMetric("f"), bMetric("g")), {},
                       Opt));
}

TEST(Entail, SampledRefutesWithCounterexample) {
  // [n] >= [n] + 1 is false everywhere.
  BoundExpr P = bNatTerm(v("n"));
  BoundExpr Q = bAdd(bNatTerm(v("n")), bConst(1));
  EntailResult R = entails(P, Q);
  EXPECT_FALSE(R.Holds);
  EXPECT_EQ(R.Method, EntailMethod::Refuted);
  EXPECT_FALSE(R.Counterexample.empty());
}

TEST(Entail, SampledAcceptsLogStep) {
  // The binary-search induction step: for w >= 2,
  //   M * (1 + clog2(w)) >= M + M * (1 + clog2(w / 2)).
  BoundExpr M = bMetric("b");
  IntTerm W = v("w");
  BoundExpr P = bMul(M, bAdd(bConst(1), bLog2C(W)));
  BoundExpr Q =
      bAdd(M, bMul(M, bAdd(bConst(1), bLog2C(IntTermNode::divC(W, 2)))));
  std::vector<Cmp> Assume{{W, CmpRel::Ge, c(2)}};
  EXPECT_TRUE(entails(P, Q, Assume));
  // Without the assumption it is refuted (w = 1 needs M extra).
  EXPECT_FALSE(entails(P, Q));
}

TEST(Entail, UpperHalfStepNeedsCeil) {
  // With the *floor* log, the upper-half step w -> w - w/2 is refutable
  // (w = 3), which is exactly why the spec uses the ceiling variant.
  BoundExpr M = bMetric("b");
  IntTerm W = v("w");
  IntTerm Upper = IntTermNode::sub(W, IntTermNode::divC(W, 2));
  std::vector<Cmp> Assume{{W, CmpRel::Ge, c(2)}};
  BoundExpr PFloor = bMul(M, bAdd(bConst(2), bLog2W(W)));
  BoundExpr QFloor =
      bAdd(M, bMul(M, bAdd(bConst(2), bLog2W(Upper))));
  EXPECT_FALSE(entails(PFloor, QFloor, Assume));

  BoundExpr PCeil = bMul(M, bAdd(bConst(1), bLog2C(W)));
  BoundExpr QCeil = bAdd(M, bMul(M, bAdd(bConst(1), bLog2C(Upper))));
  EXPECT_TRUE(entails(PCeil, QCeil, Assume));
}

TEST(Entail, EqualityAssumptionsSolvedConstructively) {
  // Under n == m, [n] >= [m].
  std::vector<Cmp> Assume{{v("n"), CmpRel::Eq, v("m")}};
  EXPECT_TRUE(entails(bNatTerm(v("n")), bNatTerm(v("m")), Assume));
  EXPECT_FALSE(entails(bNatTerm(v("n")), bNatTerm(v("m"))));
}

//===----------------------------------------------------------------------===//
// Builder + checker on straight-line programs (Figure 5 shape)
//===----------------------------------------------------------------------===//

/// Builds and checks {B} F {B} for a balanced spec, returning the bound.
std::optional<FunctionBound> buildChecked(const clight::Program &P,
                                          const std::string &F,
                                          FunctionSpec Spec,
                                          FunctionContext Gamma = {},
                                          bool SymbolicOnly = false) {
  EntailOptions Opt;
  Opt.SymbolicOnly = SymbolicOnly;
  DerivationBuilder B(P, Gamma, Opt);
  DiagnosticEngine D;
  auto FB = B.buildFunctionBound(F, std::move(Spec), D);
  if (!FB) {
    ADD_FAILURE() << "builder failed: " << D.str();
    return std::nullopt;
  }
  ProofChecker Checker(P, B.context(), Opt);
  DiagnosticEngine CD;
  if (!Checker.checkFunctionBound(*FB, CD)) {
    ADD_FAILURE() << "checker rejected: " << CD.str() << "\nderivation:\n"
                  << FB->Body->str();
    return std::nullopt;
  }
  return FB;
}

const char *Figure5Source = R"(
void f() { }
void g() { }
int main() { f(); g(); return 0; }
)";

TEST(Builder, Figure5SequentialCalls) {
  clight::Program P = mustParse(Figure5Source);
  FunctionContext Gamma;
  Gamma["f"] = FunctionSpec::balanced(bZero());
  Gamma["g"] = FunctionSpec::balanced(bZero());
  auto FB = buildChecked(P, "main",
                         FunctionSpec::balanced(
                             bMax(bMetric("f"), bMetric("g"))),
                         Gamma, /*SymbolicOnly=*/true);
  ASSERT_TRUE(FB);
  // The derived precondition is exactly max(M(f), M(g)) (Figure 5).
  StackMetric M1;
  M1.setCost("f", 100);
  M1.setCost("g", 40);
  EXPECT_EQ(evalBound(FB->Spec.Pre, M1, {}), ExtNat(100));
}

TEST(Builder, NestedCallsSum) {
  clight::Program P = mustParse(R"(
void h() { }
void g() { h(); }
int main() { g(); return 0; }
)");
  FunctionContext Gamma;
  Gamma["h"] = FunctionSpec::balanced(bZero());
  Gamma["g"] = FunctionSpec::balanced(bMetric("h"));
  auto FB = buildChecked(P, "main",
                         FunctionSpec::balanced(
                             bAdd(bMetric("g"), bMetric("h"))),
                         Gamma, /*SymbolicOnly=*/true);
  ASSERT_TRUE(FB);
}

TEST(Builder, LoopInvariantStabilizes) {
  clight::Program P = mustParse(R"(
void f() { }
int main() { u32 i; for (i = 0; i < 10; i++) { f(); } return 0; }
)");
  FunctionContext Gamma;
  Gamma["f"] = FunctionSpec::balanced(bZero());
  auto FB = buildChecked(P, "main", FunctionSpec::balanced(bMetric("f")),
                         Gamma, /*SymbolicOnly=*/true);
  ASSERT_TRUE(FB);
}

TEST(Checker, RejectsUnderClaimedBound) {
  clight::Program P = mustParse(Figure5Source);
  FunctionContext Gamma;
  Gamma["f"] = FunctionSpec::balanced(bZero());
  Gamma["g"] = FunctionSpec::balanced(bZero());
  EntailOptions Opt;
  DerivationBuilder B(P, Gamma, Opt);
  DiagnosticEngine D;
  // Claim only M(f), forgetting that g also runs.
  auto FB = B.buildFunctionBound("main",
                                 FunctionSpec::balanced(bMetric("f")), D);
  ASSERT_TRUE(FB);
  ProofChecker Checker(P, B.context(), Opt);
  DiagnosticEngine CD;
  EXPECT_FALSE(Checker.checkFunctionBound(*FB, CD));
}

TEST(Checker, RejectsCorruptedDerivation) {
  clight::Program P = mustParse(Figure5Source);
  FunctionContext Gamma;
  Gamma["f"] = FunctionSpec::balanced(bZero());
  Gamma["g"] = FunctionSpec::balanced(bZero());
  DerivationBuilder B(P, Gamma, {});
  DiagnosticEngine D;
  auto FB = B.buildFunctionBound(
      "main", FunctionSpec::balanced(bMax(bMetric("f"), bMetric("g"))), D);
  ASSERT_TRUE(FB);
  // Tamper: shrink the root precondition to zero.
  FB->Body->Pre = bZero();
  ProofChecker Checker(P, B.context(), {});
  DiagnosticEngine CD;
  EXPECT_FALSE(Checker.checkFunctionBound(*FB, CD));
}

//===----------------------------------------------------------------------===//
// Recursive derivations (the paper's interactive proofs)
//===----------------------------------------------------------------------===//

const char *BsearchSource = R"(
#define ALEN 4096
u32 a[ALEN];
u32 bsearch(u32 x, u32 lo, u32 hi) {
  u32 mid = lo + (hi - lo) / 2;
  if (hi - lo <= 1) return lo;
  if (a[mid] > x) hi = mid; else lo = mid;
  return bsearch(x, lo, hi);
}
int main() { return bsearch(3, 0, ALEN); }
)";

/// The paper's L(Delta): the bsearch spec M(bsearch) * (1 + clog2(hi-lo)).
FunctionSpec bsearchSpec() {
  return FunctionSpec::balanced(
      bMul(bMetric("bsearch"),
           bAdd(bConst(1), bLog2C(IntTermNode::sub(v("hi"), v("lo"))))));
}

TEST(Recursive, BsearchDerivationChecks) {
  clight::Program P = mustParse(BsearchSource);
  auto FB = buildChecked(P, "bsearch", bsearchSpec());
  ASSERT_TRUE(FB);
}

TEST(Recursive, BsearchBoundSoundAgainstInterpreter) {
  clight::Program P = mustParse(BsearchSource);
  auto FB = buildChecked(P, "bsearch", bsearchSpec());
  ASSERT_TRUE(FB);

  StackMetric M;
  M.setCost("bsearch", 40);
  interp::Interpreter I(P);
  for (uint32_t Hi : {2u, 3u, 5u, 16u, 17u, 100u, 1024u, 4096u}) {
    Behavior B = I.runFunctionCall("bsearch", {7, 0, Hi});
    ASSERT_TRUE(B.converged()) << B.str();
    VarEnv Env{{"x", 7}, {"lo", 0}, {"hi", Hi}};
    ExtNat Bound = evalBound(FB->Spec.Pre, M, Env);
    uint64_t Measured = weight(M, B.Events);
    ASSERT_TRUE(Bound.isFinite());
    EXPECT_GE(Bound.finiteValue(), Measured) << "hi=" << Hi;
    // The bound is tight: within one frame of the measurement.
    EXPECT_LE(Bound.finiteValue(), Measured + 40) << "hi=" << Hi;
  }
}

const char *FibSource = R"(
u32 fib(u32 n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }
)";

/// fib descends n-1 levels: M(fib) * max(1, n).
FunctionSpec fibSpec() {
  return FunctionSpec::balanced(
      bMul(bMetric("fib"), bMax(bConst(1), bNatTerm(v("n")))));
}

TEST(Recursive, FibDerivationChecks) {
  clight::Program P = mustParse(FibSource);
  auto FB = buildChecked(P, "fib", fibSpec());
  ASSERT_TRUE(FB);
}

TEST(Recursive, FibBoundSoundAndLinear) {
  clight::Program P = mustParse(FibSource);
  auto FB = buildChecked(P, "fib", fibSpec());
  ASSERT_TRUE(FB);
  StackMetric M;
  M.setCost("fib", 24);
  interp::Interpreter I(P);
  for (uint32_t N : {0u, 1u, 2u, 5u, 10u, 15u}) {
    Behavior B = I.runFunctionCall("fib", {N});
    ASSERT_TRUE(B.converged());
    VarEnv Env{{"n", N}};
    ExtNat Bound = evalBound(FB->Spec.Pre, M, Env);
    ASSERT_TRUE(Bound.isFinite());
    EXPECT_GE(Bound.finiteValue(), weight(M, B.Events)) << "n=" << N;
    EXPECT_EQ(Bound.finiteValue(), 24u * std::max(1u, N));
  }
}

TEST(Recursive, WrongFibSpecRejected) {
  // Claiming logarithmic depth for fib must fail.
  clight::Program P = mustParse(FibSource);
  DerivationBuilder B(P, {}, {});
  DiagnosticEngine D;
  auto FB = B.buildFunctionBound(
      "fib",
      FunctionSpec::balanced(
          bMul(bMetric("fib"), bAdd(bConst(1), bLog2C(v("n"))))),
      D);
  ASSERT_TRUE(FB); // Building succeeds; checking must not.
  ProofChecker Checker(P, B.context(), {});
  DiagnosticEngine CD;
  EXPECT_FALSE(Checker.checkFunctionBound(*FB, CD));
}

} // namespace

//===----------------------------------------------------------------------===//
// Mutual recursion through the derivation context
//===----------------------------------------------------------------------===//

namespace {

const char *EvenOddSource = R"(
u32 odd(u32 n);
u32 even(u32 n) { if (n == 0) return 1; return odd(n - 1); }
u32 odd(u32 n) { if (n == 0) return 0; return even(n - 1); }
int main() { return (int)even(10); }
)";

/// Each of the n frames below even/odd(n) is one of the two functions:
/// max(M(even), M(odd)) * n bounds the alternating chain.
FunctionSpec alternatingSpec(const char *Self) {
  (void)Self;
  return FunctionSpec::balanced(
      bMul(bMax(bMetric("even"), bMetric("odd")), bNatTerm(v("n"))));
}

TEST(Recursive, MutualRecursionDerivationsCheck) {
  clight::Program P = mustParse(EvenOddSource);
  // Both specs live in the context before either body is derived — the
  // paper's derivation-context treatment, extended to a mutual cycle.
  FunctionContext Gamma;
  Gamma["even"] = alternatingSpec("even");
  Gamma["odd"] = alternatingSpec("odd");
  for (const char *F : {"even", "odd"}) {
    DerivationBuilder B(P, Gamma, {});
    DiagnosticEngine D;
    auto FB = B.buildFunctionBound(F, Gamma.at(F), D);
    ASSERT_TRUE(FB) << F << ": " << D.str();
    ProofChecker Checker(P, Gamma, {});
    DiagnosticEngine CD;
    EXPECT_TRUE(Checker.checkFunctionBound(*FB, CD)) << F << ": "
                                                     << CD.str();
  }
}

TEST(Recursive, MutualRecursionBoundSoundOnMachine) {
  clight::Program P = mustParse(EvenOddSource);
  FunctionContext Gamma;
  Gamma["even"] = alternatingSpec("even");
  Gamma["odd"] = alternatingSpec("odd");
  StackMetric M;
  M.setCost("even", 16);
  M.setCost("odd", 24);
  interp::Interpreter I(P);
  for (uint32_t N : {0u, 1u, 5u, 10u, 31u}) {
    Behavior B = I.runFunctionCall("even", {N});
    ASSERT_TRUE(B.converged());
    EXPECT_EQ(B.ReturnCode, static_cast<int32_t>(1 - N % 2));
    VarEnv Env{{"n", N}};
    // The call bound M(even) + B covers the trace, which includes even's
    // own frame.
    ExtNat Bound =
        evalBound(bAdd(bMetric("even"), Gamma.at("even").Pre), M, Env);
    ASSERT_TRUE(Bound.isFinite());
    EXPECT_GE(Bound.finiteValue(), weight(M, B.Events)) << "n=" << N;
  }
}

} // namespace
