//===- tests/DaemonTest.cpp - qccd: protocol, concurrency, budgets --------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification daemon's contract (ctest -L daemon; rides in the
/// TSan slice via the batch label):
///
///   * wire codec round trips and totality on hostile payloads,
///   * malformed-frame fuzzing against a live server — bad magic,
///     version skew, oversize declarations, truncated payloads, checksum
///     mismatches, type confusion, random garbage — every case draws an
///     Error reply or a clean disconnect, and the server keeps serving,
///   * the acceptance criterion: N concurrent clients verifying the warm
///     corpus get verdicts and per-pass metrics bit-identical to a local
///     `--batch` run of the same jobs,
///   * fair-share budgets: one deliberately over-budget client is
///     cancelled without affecting any other connection,
///   * the shared pool's submit() path (FIFO tasks interleaved with
///     parallelFor batches, shutdown draining).
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/Daemon.h"
#include "daemon/Protocol.h"

#include "batch/ThreadPool.h"
#include "store/Store.h"
#include "support/FailPoint.h"
#include "support/Io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace qcc;
using namespace qcc::batch;
using namespace qcc::daemon;

namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

/// Scoped scratch directory (socket + store live here).
struct TempDir {
  std::string Path;
  TempDir() {
    std::string Template =
        (fs::temp_directory_path() / "qcc-daemon-XXXXXX").string();
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    Path = mkdtemp(Buf.data());
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string sub(const std::string &Name) const {
    return (fs::path(Path) / Name).string();
  }
};

/// A daemon running on its own serve() thread, torn down in order.
struct LiveDaemon {
  explicit LiveDaemon(const DaemonOptions &Opts) : D(Opts) {
    EXPECT_TRUE(D.valid()) << D.error();
    Server = std::thread([this] { D.serve(); });
  }
  ~LiveDaemon() {
    D.requestShutdown();
    Server.join();
  }
  Daemon D;
  std::thread Server;
};

const char *SmallA = R"(
typedef unsigned int u32;
u32 leaf(u32 x) { return x * 3 + 1; }
int main() { return (int)(leaf(5u) & 0xff); }
)";

const char *SmallB = R"(
typedef unsigned int u32;
u32 g[4];
u32 mid(u32 x) { return x + g[x & 3]; }
int main() {
  u32 i;
  for (i = 0; i < 4; i++) g[i] = mid(i);
  return (int)(g[2] & 0xff);
}
)";

std::vector<BatchJob> smallJobs() {
  std::vector<BatchJob> Jobs;
  BatchJob A{"a.c", SmallA, {}};
  A.Options.ValidateTranslation = false;
  BatchJob B{"b.c", SmallB, {}};
  B.Options.ValidateTranslation = false;
  Jobs.push_back(std::move(A));
  Jobs.push_back(std::move(B));
  return Jobs;
}

JobRequest requestFor(const BatchJob &J) {
  JobRequest Req;
  Req.Job = J;
  Req.CheckTheorem1 = true;
  return Req;
}

/// A raw client socket for hostile-bytes tests (DaemonClient would
/// refuse to send what these tests must send).
int rawConnect(const std::string &SocketPath) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0)
      << SocketPath;
  return Fd;
}

/// True when the daemon answers a fresh Ping — the "server survived"
/// probe after every hostile exchange.
bool serverAlive(const std::string &SocketPath) {
  DaemonClient C;
  return C.connect(SocketPath) && C.ping();
}

//===----------------------------------------------------------------------===//
// Wire codec round trips and totality
//===----------------------------------------------------------------------===//

TEST(Protocol, FrameRoundTripsThroughAPipe) {
  int Fds[2];
  ASSERT_EQ(pipe(Fds), 0);
  const std::string Payload = "quantitative";
  ASSERT_TRUE(io::writeFull(Fds[1],
                            encodeFrame(MsgType::Status, Payload).data(),
                            FrameHeaderSize + Payload.size()));
  Frame F;
  EXPECT_EQ(readFrame(Fds[0], F), FrameStatus::Ok);
  EXPECT_EQ(F.Type, MsgType::Status);
  EXPECT_EQ(F.Payload, Payload);
  close(Fds[0]);
  close(Fds[1]);
}

TEST(Protocol, JobRequestRoundTrips) {
  JobRequest Req;
  Req.Job.Id = "prog.c";
  Req.Job.Source = SmallA;
  Req.Job.Options.Defines["ALEN"] = 4096;
  Req.Job.Options.Optimize = false;
  Req.Job.Options.Inline = true;
  Req.Job.Options.TailCalls = true;
  Req.Job.Options.ValidateTranslation = false;
  Req.Job.Options.ValidationFuel = 12345;
  Req.Job.Options.AnalyzeBounds = false;
  Req.CheckTheorem1 = false;
  Req.DeadlineMillis = 777;
  Req.MemoryBudgetBytes = 1 << 20;

  JobRequest Out;
  ASSERT_TRUE(decodeJobRequest(encodeJobRequest(Req), Out));
  EXPECT_EQ(Out.Job.Id, Req.Job.Id);
  EXPECT_EQ(Out.Job.Source, Req.Job.Source);
  EXPECT_EQ(Out.Job.Options.Defines, Req.Job.Options.Defines);
  EXPECT_EQ(Out.Job.Options.Optimize, false);
  EXPECT_EQ(Out.Job.Options.Inline, true);
  EXPECT_EQ(Out.Job.Options.TailCalls, true);
  EXPECT_EQ(Out.Job.Options.ValidateTranslation, false);
  EXPECT_EQ(Out.Job.Options.ValidationFuel, 12345u);
  EXPECT_EQ(Out.Job.Options.AnalyzeBounds, false);
  EXPECT_EQ(Out.CheckTheorem1, false);
  EXPECT_EQ(Out.DeadlineMillis, 777u);
  EXPECT_EQ(Out.MemoryBudgetBytes, 1u << 20);
}

TEST(Protocol, DecodersAreTotalOnTruncationAndGarbage) {
  JobRequest Req;
  Req.Job.Id = "prog.c";
  Req.Job.Source = SmallA;
  Req.Job.Options.Defines["N"] = 7;
  const std::string Good = encodeJobRequest(Req);

  // Every prefix must decode to false, never crash or over-read.
  JobRequest Out;
  for (size_t Len = 0; Len != Good.size(); ++Len)
    EXPECT_FALSE(decodeJobRequest(Good.substr(0, Len), Out)) << Len;
  // Trailing junk is rejected too (R.done() discipline).
  EXPECT_FALSE(decodeJobRequest(Good + "x", Out));

  PassStatus PS;
  EXPECT_FALSE(decodePassStatus("", PS));
  EXPECT_FALSE(decodePassStatus("\xff\xff\xff", PS));
  ProgramResult PR;
  EXPECT_FALSE(decodeVerdict("not a verdict", PR));
}

TEST(Protocol, HostileDefineCountIsRejectedBeforeAllocation) {
  // A forged payload declaring 2^61 defines in a 50-byte buffer must be
  // rejected by the count sanity check, not attempted.
  store::ByteWriter W;
  W.str("id");
  W.str("src");
  W.u64(1ull << 61);
  JobRequest Out;
  EXPECT_FALSE(decodeJobRequest(W.take(), Out));
}

//===----------------------------------------------------------------------===//
// Malformed frames against a live server
//===----------------------------------------------------------------------===//

class DaemonFrameFuzz : public ::testing::Test {
protected:
  void SetUp() override {
    DaemonOptions Opts;
    Opts.SocketPath = Dir.sub("qccd.sock");
    Opts.Jobs = 2;
    Opts.MaxFrameBytes = 1 << 20;
    // A wedged hostile client may never send its declared payload; the
    // receive timeout unblocks the connection thread.
    Opts.RecvTimeoutMillis = 2000;
    Live = std::make_unique<LiveDaemon>(Opts);
    Socket = Opts.SocketPath;
  }

  /// Sends \p Bytes raw, expects an Error frame (or clean disconnect)
  /// and a still-serving daemon.
  void expectRejected(const std::string &Bytes, const char *Case) {
    int Fd = rawConnect(Socket);
    ASSERT_TRUE(io::writeFull(Fd, Bytes.data(), Bytes.size())) << Case;
    Frame F;
    FrameStatus S = readFrame(Fd, F);
    // Either a framed Error reply or EOF (the server hung up already);
    // anything else means the server misparsed hostile bytes as data.
    if (S == FrameStatus::Ok)
      EXPECT_EQ(F.Type, MsgType::Error) << Case;
    else
      EXPECT_EQ(S, FrameStatus::Eof) << Case;
    close(Fd);
    EXPECT_TRUE(serverAlive(Socket)) << Case;
  }

  TempDir Dir;
  std::string Socket;
  std::unique_ptr<LiveDaemon> Live;
};

TEST_F(DaemonFrameFuzz, BadMagic) {
  std::string Wire = encodeFrame(MsgType::Ping, "");
  Wire[0] = 'X';
  expectRejected(Wire, "bad-magic");
}

TEST_F(DaemonFrameFuzz, VersionSkew) {
  std::string Wire = encodeFrame(MsgType::Ping, "");
  Wire[8] = 2; // Version field: u32 LE at offset 8.
  expectRejected(Wire, "version-skew");
}

TEST_F(DaemonFrameFuzz, OversizeDeclaredLength) {
  // Header declaring a 1 GiB payload (far past MaxFrameBytes); the
  // server must reject on the declared size without allocating it.
  std::string Wire = encodeFrame(MsgType::Submit, "");
  uint64_t Huge = 1ull << 30;
  std::memcpy(&Wire[24], &Huge, sizeof(Huge)); // Size field at offset 24.
  expectRejected(Wire, "oversize");
}

TEST_F(DaemonFrameFuzz, ChecksumMismatch) {
  std::string Wire = encodeFrame(MsgType::Ping, "payload");
  Wire[16] ^= 0x5a; // Checksum field at offset 16.
  expectRejected(Wire, "bad-checksum");
}

TEST_F(DaemonFrameFuzz, TruncatedPayloadThenDisconnect) {
  // Declare 64 bytes, deliver 8, vanish. The server's read loop must
  // not wedge a worker: the disconnect (or receive timeout) unblocks
  // it, and the daemon keeps serving.
  std::string Wire = encodeFrame(MsgType::Submit, std::string(64, 'p'));
  Wire.resize(FrameHeaderSize + 8);
  int Fd = rawConnect(Socket);
  ASSERT_TRUE(io::writeFull(Fd, Wire.data(), Wire.size()));
  close(Fd);
  EXPECT_TRUE(serverAlive(Socket));
}

TEST_F(DaemonFrameFuzz, TruncatedHeaderThenDisconnect) {
  int Fd = rawConnect(Socket);
  ASSERT_TRUE(io::writeFull(Fd, "QCCDWI", 6)); // 6 of 32 header bytes.
  close(Fd);
  EXPECT_TRUE(serverAlive(Socket));
}

TEST_F(DaemonFrameFuzz, TypeConfusionIsAProtocolError) {
  // Well-formed frames of types only the server sends.
  expectRejected(encodeFrame(MsgType::Verdict, "x"), "verdict-to-server");
  expectRejected(encodeFrame(MsgType::Pong, ""), "pong-to-server");
  expectRejected(encodeFrame(static_cast<MsgType>(999), ""), "unknown-type");
}

TEST_F(DaemonFrameFuzz, MalformedSubmitPayload) {
  // A perfectly framed Submit whose payload is not a JobRequest.
  expectRejected(encodeFrame(MsgType::Submit, "garbage job"), "bad-submit");
}

TEST_F(DaemonFrameFuzz, RandomGarbageNeverKillsTheServer) {
  uint64_t State = 0x9e3779b97f4a7c15ull;
  auto Next = [&State] {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  };
  for (int Round = 0; Round != 16; ++Round) {
    std::string Junk(1 + (Next() % 200), '\0');
    for (char &C : Junk)
      C = static_cast<char>(Next());
    int Fd = rawConnect(Socket);
    ASSERT_TRUE(io::writeFull(Fd, Junk.data(), Junk.size()));
    close(Fd);
  }
  EXPECT_TRUE(serverAlive(Socket));
  // Connection threads process the junk asynchronously; give the
  // counters a bounded moment to land.
  for (int Spin = 0; Spin != 200 && Live->D.stats().ProtocolErrors == 0;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GT(Live->D.stats().ProtocolErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Serving verdicts
//===----------------------------------------------------------------------===//

TEST(Daemon, PingPongAndShutdownFrame) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  LiveDaemon Live(Opts);

  DaemonClient C;
  ASSERT_TRUE(C.connect(Opts.SocketPath)) << C.error();
  EXPECT_TRUE(C.ping());
  EXPECT_TRUE(C.ping()); // The connection stays up across frames.
  EXPECT_TRUE(C.shutdownServer());
  Live.Server.join();
  Live.Server = std::thread([] {}); // Destructor joins something valid.
}

TEST(Daemon, ServesVerdictsMatchingLocalRuns) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 2;
  LiveDaemon Live(Opts);

  std::vector<BatchJob> Jobs = smallJobs();
  BatchResult Local = runBatch(Jobs, BatchOptions{});
  ASSERT_TRUE(Local.allOk());

  DaemonClient C;
  ASSERT_TRUE(C.connect(Opts.SocketPath)) << C.error();
  BatchResult Remote;
  Remote.Jobs = Local.Jobs;
  for (const BatchJob &J : Jobs) {
    ClientOutcome Out = C.verify(requestFor(J));
    ASSERT_TRUE(Out.HaveVerdict) << Out.Error;
    EXPECT_FALSE(Out.Passes.empty()); // Per-pass status frames arrived.
    EXPECT_TRUE(Out.Result.ProofBlob.empty()); // Stripped on the wire.
    Remote.Programs.push_back(std::move(Out.Result));
  }
  EXPECT_EQ(metricsJson(Remote, JsonDetail::Deterministic),
            metricsJson(Local, JsonDetail::Deterministic));
  EXPECT_EQ(Live.D.stats().JobsServed, Jobs.size());
}

TEST(Daemon, AcceptanceWarmStoreFourConcurrentClientsBitIdentical) {
  TempDir Dir;

  // Local reference run, warming the on-disk store the daemon will use.
  std::vector<BatchJob> Jobs = smallJobs();
  BatchResult Local;
  {
    // Scoped: the store handle (and its flock) must be released before
    // the daemon opens the same directory.
    batch::ResultCache Cache;
    store::StoreOptions SO;
    SO.Dir = Dir.sub("store");
    auto Store = store::VerificationStore::open(SO);
    ASSERT_TRUE(Store);
    BatchOptions BO;
    BO.Cache = &Cache;
    BO.Store = Store.get();
    Local = runBatch(Jobs, BO);
    ASSERT_TRUE(Local.allOk());
  }

  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 2;
  Opts.StoreDir = Dir.sub("store");
  LiveDaemon Live(Opts);

  // Four clients, each verifying the whole job list concurrently.
  constexpr int NumClients = 4;
  std::vector<BatchResult> Remote(NumClients);
  std::vector<std::string> Failures(NumClients);
  std::vector<std::thread> Clients;
  for (int I = 0; I != NumClients; ++I)
    Clients.emplace_back([&, I] {
      DaemonClient C;
      if (!C.connect(Opts.SocketPath)) {
        Failures[I] = C.error();
        return;
      }
      Remote[I].Jobs = Local.Jobs;
      for (const BatchJob &J : smallJobs()) {
        ClientOutcome Out = C.verify(requestFor(J));
        if (!Out.HaveVerdict) {
          Failures[I] = Out.Error;
          return;
        }
        Remote[I].Programs.push_back(std::move(Out.Result));
      }
    });
  for (std::thread &T : Clients)
    T.join();

  const std::string Want = metricsJson(Local, JsonDetail::Deterministic);
  for (int I = 0; I != NumClients; ++I) {
    ASSERT_TRUE(Failures[I].empty()) << "client " << I << ": "
                                     << Failures[I];
    // The acceptance criterion: verdicts and per-pass metrics from the
    // daemon are bit-identical to the local batch run.
    EXPECT_EQ(metricsJson(Remote[I], JsonDetail::Deterministic), Want)
        << "client " << I;
    // Served warm: the first wave hits the store, later waves the
    // daemon's in-memory cache; nothing re-verifies.
    for (const ProgramResult &P : Remote[I].Programs)
      EXPECT_TRUE(P.StoreHit || P.CacheHit) << P.Id;
  }
  EXPECT_EQ(Live.D.stats().JobsServed,
            static_cast<uint64_t>(NumClients) * Jobs.size());
  EXPECT_EQ(Live.D.stats().ProtocolErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Fair-share budgets and cancellation isolation
//===----------------------------------------------------------------------===//

TEST(Daemon, OverBudgetClientIsCancelledWithoutAffectingOthers) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 2;
  // Any verification charges tracked bytes (metered sinks, proof
  // checker); one byte of fair share means the first fresh job crosses
  // the budget.
  Opts.ClientBudgetBytes = 1;
  LiveDaemon Live(Opts);

  std::vector<BatchJob> Jobs = smallJobs();

  // The greedy client: first job verifies (the budget is checked after
  // the verdict — cancellation is verdict-withholding, never
  // retroactive), then the connection is cancelled.
  DaemonClient Greedy;
  ASSERT_TRUE(Greedy.connect(Opts.SocketPath)) << Greedy.error();
  ClientOutcome First = Greedy.verify(requestFor(Jobs[0]));
  ASSERT_TRUE(First.HaveVerdict) << First.Error;
  EXPECT_TRUE(First.Result.Ok);

  ClientOutcome Second = Greedy.verify(requestFor(Jobs[1]));
  EXPECT_FALSE(Second.HaveVerdict);
  EXPECT_NE(Second.Error.find("cancelled"), std::string::npos)
      << Second.Error;
  EXPECT_EQ(Live.D.stats().BudgetCancels, 1u);

  // A well-behaved client on the same daemon is untouched: the cancel
  // hit the greedy connection's supervisor, not the root.
  DaemonClient Polite;
  ASSERT_TRUE(Polite.connect(Opts.SocketPath)) << Polite.error();
  ClientOutcome Ok = Polite.verify(requestFor(Jobs[1]));
  ASSERT_TRUE(Ok.HaveVerdict) << Ok.Error;
  EXPECT_TRUE(Ok.Result.Ok);
  EXPECT_FALSE(Live.D.rootSupervisor().stopRequested());
}

TEST(Daemon, ShutdownDrainsConnectedClients) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 2;
  LiveDaemon Live(Opts);

  DaemonClient C;
  ASSERT_TRUE(C.connect(Opts.SocketPath)) << C.error();
  ASSERT_TRUE(C.ping());
  Live.D.requestShutdown();
  Live.Server.join();
  Live.Server = std::thread([] {});
  // The connection was shut down server-side; the next exchange fails
  // cleanly instead of hanging.
  EXPECT_FALSE(C.ping());
}

//===----------------------------------------------------------------------===//
// Overload resilience: accept backoff, admission shedding, idle
// timeouts, graceful drain, client retry
//===----------------------------------------------------------------------===//

TEST(Resilience, AcceptLoopSurvivesEmfileWithBackoff) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  // The first five accept() calls fail with EMFILE (fd exhaustion); the
  // loop must back off and keep serving, not exit or spin.
  failpoint::ScopedSpec Spec("daemon.accept=err:emfile@1..5");
  ASSERT_TRUE(Spec.Ok) << Spec.Error;
  LiveDaemon Live(Opts);

  DaemonClient C;
  ASSERT_TRUE(C.connectWithRetry(Opts.SocketPath, RetryPolicy{}))
      << C.error();
  EXPECT_TRUE(C.ping());
  EXPECT_GE(Live.D.stats().AcceptRetries, 5u);
}

TEST(Resilience, AdmissionBoundShedsWithBusyAndRetrySucceeds) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  Opts.MaxActiveJobs = 1;
  LiveDaemon Live(Opts);

  std::vector<BatchJob> Jobs = smallJobs();
  // Park the first submit inside its admission slot: the delay fires
  // after the job reserved ActiveJobs but before it reaches the pool,
  // holding the daemon at capacity for a deterministic window.
  failpoint::ScopedSpec Spec("pool.submit=delay:1500@1");
  ASSERT_TRUE(Spec.Ok) << Spec.Error;

  ClientOutcome SlowOut;
  std::thread Slow([&] {
    DaemonClient A;
    if (A.connect(Opts.SocketPath))
      SlowOut = A.verify(requestFor(Jobs[0]));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  DaemonClient B;
  ASSERT_TRUE(B.connect(Opts.SocketPath)) << B.error();
  ClientOutcome Shed = B.verify(requestFor(Jobs[1]));
  EXPECT_FALSE(Shed.HaveVerdict);
  EXPECT_TRUE(Shed.Busy) << Shed.Error;
  EXPECT_NE(Shed.Error.find("capacity"), std::string::npos) << Shed.Error;
  // The Busy shed left the connection intact: the same client retries
  // with backoff and lands a verdict once the slot frees up.
  ClientOutcome Retried =
      B.verifyWithRetry(requestFor(Jobs[1]), Opts.SocketPath, RetryPolicy{});
  EXPECT_TRUE(Retried.HaveVerdict) << Retried.Error;

  Slow.join();
  EXPECT_TRUE(SlowOut.HaveVerdict) << SlowOut.Error;
  EXPECT_GE(Live.D.stats().JobsShed, 1u);
}

TEST(Resilience, ConnectionCapShedsWithBusy) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  Opts.MaxConnections = 1;
  LiveDaemon Live(Opts);

  DaemonClient First;
  ASSERT_TRUE(First.connect(Opts.SocketPath)) << First.error();
  ASSERT_TRUE(First.ping()); // Fully admitted before the probe below.

  int Fd = rawConnect(Opts.SocketPath);
  Frame F;
  ASSERT_EQ(readFrame(Fd, F), FrameStatus::Ok);
  EXPECT_EQ(F.Type, MsgType::Busy);
  EXPECT_NE(F.Payload.find("connection limit"), std::string::npos);
  close(Fd);
  EXPECT_GE(Live.D.stats().ConnectionsShed, 1u);
  EXPECT_TRUE(First.ping()); // The admitted connection is untouched.
}

TEST(Resilience, IdleConnectionDrawsCleanByeFrame) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  Opts.IdleTimeoutMillis = 100;
  LiveDaemon Live(Opts);

  int Fd = rawConnect(Opts.SocketPath);
  // Send nothing. The server must close with a Bye frame, not an Error
  // and not a silent drop.
  Frame F;
  EXPECT_EQ(readFrame(Fd, F), FrameStatus::Ok);
  EXPECT_EQ(F.Type, MsgType::Bye);
  EXPECT_NE(F.Payload.find("idle"), std::string::npos);
  EXPECT_EQ(readFrame(Fd, F), FrameStatus::Eof);
  close(Fd);

  for (int Spin = 0; Spin != 200 && Live.D.stats().IdleDisconnects == 0;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(Live.D.stats().IdleDisconnects, 1u);
  EXPECT_EQ(Live.D.stats().ProtocolErrors, 0u);
  EXPECT_TRUE(serverAlive(Opts.SocketPath));
}

TEST(Resilience, DrainFinishesInFlightJobAndJournalsIt) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  Opts.JournalPath = Dir.sub("journal");
  LiveDaemon Live(Opts);

  std::vector<BatchJob> Jobs = smallJobs();
  // Park the job pre-pool so the drain request demonstrably lands while
  // it is in flight.
  failpoint::ScopedSpec Spec("pool.submit=delay:500@1");
  ASSERT_TRUE(Spec.Ok) << Spec.Error;

  ClientOutcome Out;
  DaemonClient C;
  ASSERT_TRUE(C.connect(Opts.SocketPath)) << C.error();
  std::thread Submitter([&] { Out = C.verify(requestFor(Jobs[0])); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Live.D.requestDrain();

  // The graceful half of the contract: the in-flight job still gets its
  // verdict — drain never cancels work already admitted.
  Submitter.join();
  EXPECT_TRUE(Out.HaveVerdict) << Out.Error;
  EXPECT_TRUE(Out.Result.Ok);
  Live.Server.join();
  Live.Server = std::thread([] {});

  // Its definitive verdict is journaled (batch-journal line format).
  std::ifstream In(Opts.JournalPath);
  ASSERT_TRUE(In.good());
  std::string Line;
  ASSERT_TRUE(static_cast<bool>(std::getline(In, Line)));
  EXPECT_EQ(Line.rfind("ok ", 0), 0u) << Line;
  EXPECT_EQ(Line.size(), 3u + 32u) << Line; // "ok " + two 16-hex keys.
  EXPECT_EQ(Live.D.stats().JobsJournaled, 1u);

  // A post-drain exchange fails cleanly (Bye or a dropped connection),
  // never hangs.
  ClientOutcome After = C.verify(requestFor(Jobs[1]));
  EXPECT_FALSE(After.HaveVerdict);
  EXPECT_TRUE(After.ServerClosing || After.Transport) << After.Error;
}

TEST(Resilience, BackoffScheduleIsDeterministicAndBounded) {
  RetryPolicy P;
  P.BaseDelayMillis = 25;
  P.MaxDelayMillis = 1000;
  uint64_t RngA = 7, RngB = 7;
  for (unsigned A = 0; A != 12; ++A) {
    uint64_t D = backoffMillis(P, A, RngA);
    uint64_t Cap = std::min<uint64_t>(P.MaxDelayMillis, 25ull << A);
    EXPECT_LE(D, Cap) << A;
    EXPECT_GE(D, Cap / 2) << A; // Jitter spans only the top half.
    EXPECT_EQ(D, backoffMillis(P, A, RngB)) << A; // Same seed, same walk.
  }
  uint64_t RngC = 8; // A different seed decorrelates the schedule.
  bool AnyDiffer = false;
  uint64_t RngA2 = 7;
  for (unsigned A = 2; A != 8; ++A)
    AnyDiffer |= backoffMillis(P, A, RngA2) != backoffMillis(P, A, RngC);
  EXPECT_TRUE(AnyDiffer);
}

TEST(Resilience, UnreachableDaemonFailsFastWithTransportOutcome) {
  TempDir Dir;
  RetryPolicy P;
  P.ConnectAttempts = 2;
  P.BaseDelayMillis = 1;
  P.MaxDelayMillis = 2;
  DaemonClient C;
  ClientOutcome Out = C.verifyWithRetry(requestFor(smallJobs()[0]),
                                        Dir.sub("no-such.sock"), P);
  EXPECT_FALSE(Out.HaveVerdict);
  EXPECT_TRUE(Out.Transport);
  EXPECT_FALSE(Out.Error.empty());
}

TEST(Resilience, ClientReconnectsAcrossDaemonRestart) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  std::vector<BatchJob> Jobs = smallJobs();

  DaemonClient C;
  {
    LiveDaemon First(Opts);
    ClientOutcome Out =
        C.verifyWithRetry(requestFor(Jobs[0]), Opts.SocketPath, RetryPolicy{});
    ASSERT_TRUE(Out.HaveVerdict) << Out.Error;
  } // Shutdown: the client's connection dies with the daemon.

  LiveDaemon Second(Opts);
  // The stale connection surfaces as a transport error; verifyWithRetry
  // reconnects to the restarted daemon and resubmits idempotently.
  ClientOutcome Out =
      C.verifyWithRetry(requestFor(Jobs[1]), Opts.SocketPath, RetryPolicy{});
  EXPECT_TRUE(Out.HaveVerdict) << Out.Error;
  EXPECT_TRUE(Out.Result.Ok);
}

TEST(Resilience, TornServerFrameIsRetriedToAVerdict) {
  TempDir Dir;
  DaemonOptions Opts;
  Opts.SocketPath = Dir.sub("qccd.sock");
  Opts.Jobs = 1;
  LiveDaemon Live(Opts);

  // The server's first reply frame is torn mid-wire (a real half-frame,
  // then EPIPE semantics). The client must classify it as transport,
  // reconnect, and land the verdict on the retry. Hit 2, not 1: client
  // and server share this process's registry, and hit 1 is the client's
  // own Submit send.
  failpoint::ScopedSpec Spec("daemon.write=short@2");
  ASSERT_TRUE(Spec.Ok) << Spec.Error;
  DaemonClient C;
  ClientOutcome Out = C.verifyWithRetry(requestFor(smallJobs()[0]),
                                        Opts.SocketPath, RetryPolicy{});
  EXPECT_TRUE(Out.HaveVerdict) << Out.Error;
  EXPECT_TRUE(Out.Result.Ok);
}

//===----------------------------------------------------------------------===//
// The shared pool's submitted-task path
//===----------------------------------------------------------------------===//

TEST(PoolSubmit, RunsTasksInFifoOrderAcrossWorkers) {
  WorkStealingPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.waitTasksIdle();
  EXPECT_EQ(Count.load(), 100);
  EXPECT_EQ(Pool.taskCount(), 0u);
}

TEST(PoolSubmit, InterleavesWithParallelForBatches) {
  WorkStealingPool Pool(4);
  std::atomic<int> TaskRuns{0}, BatchRuns{0};
  // Tasks trickle in from a side thread while parallelFor batches run:
  // the daemon-serving-while-batching scenario.
  std::thread Feeder([&] {
    for (int I = 0; I != 50; ++I)
      Pool.submit(
          [&TaskRuns] { TaskRuns.fetch_add(1, std::memory_order_relaxed); });
  });
  for (int Round = 0; Round != 10; ++Round)
    Pool.parallelFor(32, [&BatchRuns](size_t) {
      BatchRuns.fetch_add(1, std::memory_order_relaxed);
    });
  Feeder.join();
  Pool.waitTasksIdle();
  EXPECT_EQ(TaskRuns.load(), 50);
  EXPECT_EQ(BatchRuns.load(), 320);
}

TEST(PoolSubmit, DestructorFinishesQueuedTasks) {
  std::atomic<int> Count{0};
  {
    WorkStealingPool Pool(2);
    for (int I = 0; I != 64; ++I)
      Pool.submit([&Count] {
        Count.fetch_add(1, std::memory_order_relaxed);
      });
    // No waitTasksIdle: the destructor must finish the queue, so a
    // waiter blocked on any submitted task can never be stranded.
  }
  EXPECT_EQ(Count.load(), 64);
}

} // namespace
