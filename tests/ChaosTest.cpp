//===- tests/ChaosTest.cpp - Crash-recovery chaos, end to end -------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-only contract, exercised against real processes:
///
///   * the store chaos harness (fuzz/Chaos.h): 200 seeded scenarios of
///     writers felled by failpoint crashes and timed SIGKILLs, every
///     recovery quarantine-or-serve with bit-identical images;
///   * a real qccd killed mid-service (a crash failpoint in its frame
///     writer) and restarted on the same socket and store: the client
///     rides through with the same verdict, served warm from the store
///     the dying daemon committed;
///   * SIGTERM graceful drain: the in-flight job finishes, its verdict
///     is journaled, the daemon exits 0, and a warm restart serves the
///     same job from the store without re-verifying anything;
///   * `qcc --connect` against a daemon that is not there: bounded
///     retries, then local verification with exit code 0.
///
/// The daemon scenarios fork+exec the real qccd/qcc binaries (paths
/// injected by CMake), so the failpoint registry, signal handlers, and
/// socket lifecycle are the shipped ones — and so the forked children
/// are exec'd, which keeps the suite sound under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "daemon/Client.h"
#include "daemon/Protocol.h"
#include "fuzz/Chaos.h"
#include "store/Store.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace qcc;
using namespace qcc::batch;
using namespace qcc::daemon;

namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures and helpers
//===----------------------------------------------------------------------===//

/// Scoped scratch directory; removed with everything in it on exit.
struct TempDir {
  std::string Path;
  TempDir() {
    std::string Template =
        (fs::temp_directory_path() / "qcc-chaos-XXXXXX").string();
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    Path = mkdtemp(Buf.data());
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string sub(const std::string &Name) const {
    return (fs::path(Path) / Name).string();
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void spill(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

const char *ChaosProgram = R"(
typedef unsigned int u32;
u32 g[8];
u32 leaf(u32 x) { return x * 5 + 2; }
u32 mid(u32 x) {
  u32 i, acc;
  acc = 0;
  for (i = 0; i < 4; i++) acc = acc + leaf(x + i);
  return acc;
}
int main() {
  u32 i;
  for (i = 0; i < 8; i++) g[i & 7] = mid(i);
  return (int)(g[5] & 0xff);
}
)";

JobRequest chaosRequest() {
  JobRequest Req;
  Req.Job = BatchJob{"chaos.c", ChaosProgram, {}};
  Req.CheckTheorem1 = true;
  return Req;
}

/// The verdict, stripped of how it was produced: serving flags, proof
/// freight (wire verdicts never carry it), and wall-clock metrics. Two
/// runs of the same job must agree on this image bit for bit.
std::string coreVerdictImage(const JobKey &Key, ProgramResult R) {
  R.CacheHit = false;
  R.StoreHit = false;
  R.ProofBlob.clear();
  R.Metrics = ProgramMetrics{};
  R.Retries = 0;
  return store::VerificationStore::encodeEntry(Key, R);
}

/// The verdict with everything the wire carries, serving flags aside:
/// a store-served verdict must reproduce the original run's metrics
/// byte for byte (they were persisted with the entry).
std::string wireVerdictImage(const JobKey &Key, ProgramResult R) {
  R.CacheHit = false;
  R.StoreHit = false;
  R.ProofBlob.clear();
  return store::VerificationStore::encodeEntry(Key, R);
}

/// Fork+exec a tool with optional QCC_FAILPOINTS and captured streams.
/// The child execs immediately, so this is safe under TSan and leaves
/// no registry state in the test process.
pid_t spawnTool(const char *Binary, const std::vector<std::string> &Args,
                const std::string &FailPoints, const std::string &StdoutPath,
                const std::string &StderrPath = std::string()) {
  pid_t P = ::fork();
  if (P != 0)
    return P;
  auto Redirect = [](const std::string &Path, int To) {
    if (Path.empty())
      return;
    int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      ::dup2(Fd, To);
      ::close(Fd);
    }
  };
  Redirect(StdoutPath, STDOUT_FILENO);
  Redirect(StderrPath, STDERR_FILENO);
  if (FailPoints.empty())
    ::unsetenv("QCC_FAILPOINTS");
  else
    ::setenv("QCC_FAILPOINTS", FailPoints.c_str(), 1);
  std::vector<char *> Argv;
  Argv.push_back(const_cast<char *>(Binary));
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  ::execv(Binary, Argv.data());
  ::_exit(127);
}

/// waitpid, decoded: exit status, or 1000+signal for a signalled death.
int awaitExit(pid_t P) {
  int Status = 0;
  if (::waitpid(P, &Status, 0) != P)
    return -1;
  if (WIFEXITED(Status))
    return WEXITSTATUS(Status);
  if (WIFSIGNALED(Status))
    return 1000 + WTERMSIG(Status);
  return -1;
}

RetryPolicy testPolicy() {
  RetryPolicy P;
  P.ConnectAttempts = 10; // generous: covers daemon startup
  P.BaseDelayMillis = 25;
  P.MaxDelayMillis = 500;
  return P;
}

//===----------------------------------------------------------------------===//
// The store chaos harness: 200 seeded crash/kill scenarios
//===----------------------------------------------------------------------===//

TEST(StoreChaos, TwoHundredSeededScenariosRecoverCleanly) {
  TempDir Tmp;
  fuzz::ChaosOptions CO;
  CO.Seed = 7;
  CO.Scenarios = 200;
  CO.ScratchDir = Tmp.sub("scenarios");
  fuzz::ChaosReport CR = fuzz::runStoreChaos(CO);
  EXPECT_TRUE(CR.ok()) << CR.str();
  EXPECT_EQ(CR.Ran, 200u);
  EXPECT_EQ(CR.CrashedChildren + CR.KilledChildren + CR.SurvivedChildren,
            CR.Ran);
  // The campaign must actually fell writers — a chaos run where nothing
  // dies is a vacuous pass.
  EXPECT_GT(CR.CrashedChildren, 0u);
  EXPECT_GT(CR.KilledChildren, 0u);
  // Clean scenarios clean up after themselves.
  EXPECT_FALSE(fs::exists(CO.ScratchDir) &&
               !fs::is_empty(CO.ScratchDir));
}

TEST(StoreChaos, ReplaysAreDeterministicPerSeed) {
  // Failpoint-crash scenarios are pure functions of (seed, index); two
  // runs of the same seed must fell the same writers the same way. (The
  // SIGKILL shapes race by design, so compare the crash counter only.)
  TempDir Tmp;
  fuzz::ChaosOptions CO;
  CO.Seed = 11;
  CO.Scenarios = 40;
  CO.ScratchDir = Tmp.sub("a");
  fuzz::ChaosReport A = fuzz::runStoreChaos(CO);
  CO.ScratchDir = Tmp.sub("b");
  fuzz::ChaosReport B = fuzz::runStoreChaos(CO);
  EXPECT_TRUE(A.ok()) << A.str();
  EXPECT_TRUE(B.ok()) << B.str();
  EXPECT_EQ(A.Ran, B.Ran);
  EXPECT_EQ(A.CrashedChildren, B.CrashedChildren);
}

//===----------------------------------------------------------------------===//
// qccd felled mid-service and restarted on the same socket + store
//===----------------------------------------------------------------------===//

TEST(DaemonChaos, CrashMidFrameThenWarmRestartServesTheSameVerdict) {
  TempDir Tmp;
  std::string Socket = Tmp.sub("d.sock");
  std::string StoreDir = Tmp.sub("store");
  JobRequest Req = chaosRequest();
  JobKey Key = jobKey(Req.Job, Req.CheckTheorem1);

  // Daemon 1 crashes (failpoint `crash`: _exit(137), no flushes) while
  // writing its second frame — after the verdict was computed and
  // committed to the store, mid-way through telling the client.
  std::string D1Out = Tmp.sub("d1.out");
  pid_t D1 = spawnTool(QCC_QCCD_PATH,
                       {"--socket", Socket, "--store", StoreDir, "--jobs",
                        "1"},
                       "daemon.write=crash@2", D1Out);
  ASSERT_GT(D1, 0);
  DaemonClient C1;
  ASSERT_TRUE(C1.connectWithRetry(Socket, testPolicy())) << C1.error();
  ClientOutcome O1 = C1.verify(Req);
  EXPECT_FALSE(O1.HaveVerdict);
  EXPECT_TRUE(O1.Transport) << O1.Error;
  C1.disconnect();
  EXPECT_EQ(awaitExit(D1), 137) << "daemon 1 should die by crash failpoint";

  // Daemon 2, same socket, same store, no faults: the crashed daemon's
  // committed entry survives and the client's retry loop rides through
  // to a warm, bit-identical verdict.
  std::string D2Out = Tmp.sub("d2.out");
  pid_t D2 = spawnTool(QCC_QCCD_PATH,
                       {"--socket", Socket, "--store", StoreDir, "--jobs",
                        "1"},
                       "", D2Out);
  ASSERT_GT(D2, 0);
  DaemonClient C2;
  ClientOutcome O2 = C2.verifyWithRetry(Req, Socket, testPolicy());
  ASSERT_TRUE(O2.HaveVerdict) << O2.Error;
  EXPECT_TRUE(O2.Result.Ok) << O2.Result.Diagnostics;
  EXPECT_TRUE(O2.Result.StoreHit)
      << "the crashed daemon's store commit did not survive";
  C2.disconnect();

  // The warm verdict agrees bit for bit with a local reference run on
  // everything a verdict means (the wire image differs only in its
  // wall-clock pass timings, which coreVerdictImage strips).
  ProgramResult Ref =
      verifyOne(Req.Job, Req.CheckTheorem1, nullptr,
                /*KeepProofArtifacts=*/false);
  ASSERT_TRUE(Ref.Ok) << Ref.Diagnostics;
  EXPECT_EQ(coreVerdictImage(Key, O2.Result), coreVerdictImage(Key, Ref));

  ASSERT_EQ(::kill(D2, SIGTERM), 0);
  EXPECT_EQ(awaitExit(D2), 0);
}

TEST(DaemonChaos, SigtermDrainJournalsTheVerdictAndWarmRestartReverifiesNothing) {
  TempDir Tmp;
  std::string Socket = Tmp.sub("d.sock");
  std::string StoreDir = Tmp.sub("store");
  std::string Journal = Tmp.sub("journal");
  JobRequest Req = chaosRequest();
  JobKey Key = jobKey(Req.Job, Req.CheckTheorem1);

  // Daemon 1 holds the job at the pool boundary for 400ms, so SIGTERM
  // provably lands while the job is in flight.
  std::string D1Out = Tmp.sub("d1.out");
  pid_t D1 = spawnTool(QCC_QCCD_PATH,
                       {"--socket", Socket, "--store", StoreDir, "--jobs",
                        "1", "--journal", Journal},
                       "pool.submit=delay:400@1", D1Out);
  ASSERT_GT(D1, 0);
  DaemonClient C1;
  ASSERT_TRUE(C1.connectWithRetry(Socket, testPolicy())) << C1.error();

  ClientOutcome O1;
  std::thread Submitter([&] { O1 = C1.verify(Req); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(::kill(D1, SIGTERM), 0);

  // Graceful drain: the in-flight job finishes and its verdict is
  // delivered through the half-closed connection before the daemon
  // exits 0.
  Submitter.join();
  ASSERT_TRUE(O1.HaveVerdict) << O1.Error;
  EXPECT_TRUE(O1.Result.Ok) << O1.Result.Diagnostics;
  EXPECT_FALSE(O1.Result.StoreHit);
  C1.disconnect();
  EXPECT_EQ(awaitExit(D1), 0);

  // The drain journaled exactly the in-flight verdict: "ok " plus the
  // two 16-hex-digit key halves, one flushed line.
  std::string JournalBytes = slurp(Journal);
  ASSERT_EQ(JournalBytes.size(), 36u) << "'" << JournalBytes << "'";
  EXPECT_EQ(JournalBytes.substr(0, 3), "ok ");
  EXPECT_EQ(JournalBytes.back(), '\n');
  EXPECT_EQ(JournalBytes.find_first_not_of("0123456789abcdef", 3), 35u);

  // Warm restart on the drained store: the same job is served from the
  // store — no re-verification — and the verdict (metrics included,
  // they were persisted with the entry) is bit-identical.
  std::string D2Out = Tmp.sub("d2.out");
  pid_t D2 = spawnTool(QCC_QCCD_PATH,
                       {"--socket", Socket, "--store", StoreDir, "--jobs",
                        "1"},
                       "", D2Out);
  ASSERT_GT(D2, 0);
  DaemonClient C2;
  ClientOutcome O2 = C2.verifyWithRetry(Req, Socket, testPolicy());
  ASSERT_TRUE(O2.HaveVerdict) << O2.Error;
  EXPECT_TRUE(O2.Result.StoreHit) << "warm restart re-verified the job";
  EXPECT_EQ(wireVerdictImage(Key, O2.Result),
            wireVerdictImage(Key, O1.Result));
  C2.disconnect();
  ASSERT_EQ(::kill(D2, SIGTERM), 0);
  EXPECT_EQ(awaitExit(D2), 0);

  // The restarted daemon's own accounting agrees: one job served, and
  // not one derivation node checked fresh.
  std::string D2Log = slurp(D2Out);
  EXPECT_NE(D2Log.find("1 jobs served"), std::string::npos) << D2Log;
}

//===----------------------------------------------------------------------===//
// qcc --connect against a daemon that is not there: local fallback
//===----------------------------------------------------------------------===//

TEST(ClientChaos, QccFallsBackToLocalVerificationWhenTheDaemonIsDown) {
  TempDir Tmp;
  std::string BatchDir = Tmp.sub("batch");
  fs::create_directories(BatchDir);
  spill((fs::path(BatchDir) / "a.c").string(),
        "typedef unsigned int u32;\n"
        "u32 f(u32 x) { return x + 1; }\n"
        "int main() { return (int)(f(41u) & 0xffu); }\n");
  spill((fs::path(BatchDir) / "b.c").string(), ChaosProgram);

  std::string Out = Tmp.sub("qcc.out");
  std::string Err = Tmp.sub("qcc.err");
  pid_t P = spawnTool(QCC_QCC_PATH,
                      {"--batch", BatchDir, "--connect",
                       Tmp.sub("no-such-daemon.sock"), "--jobs", "2"},
                      "", Out, Err);
  ASSERT_GT(P, 0);
  // Exit 0: every job verified — locally, with the daemon unreachable.
  EXPECT_EQ(awaitExit(P), 0) << slurp(Err);
  std::string Stderr = slurp(Err);
  EXPECT_NE(Stderr.find("daemon unreachable"), std::string::npos) << Stderr;
  EXPECT_NE(Stderr.find("verifying locally"), std::string::npos) << Stderr;
  EXPECT_FALSE(slurp(Out).empty());
}

} // namespace
