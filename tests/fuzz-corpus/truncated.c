typedef unsigned int u32;
u32 g0[8];
u32 f0(u32 p0) {
  u32 v0;
  v0 = g0[(p0) % 8];
  return (v0 +
