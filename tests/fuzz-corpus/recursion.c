typedef unsigned int u32;
u32 even(u32 n);
u32 odd(u32 n) { if (n == 0u) { return 0u; } return even(n - 1u); }
u32 even(u32 n) { if (n == 0u) { return 1u; } return odd(n - 1u); }
int main() { return (int)(even(6u) & 0xffu); }
