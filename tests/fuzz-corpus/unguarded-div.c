typedef unsigned int u32;
u32 zero = 0;
int main() {
  u32 x;
  x = 7u / zero;
  return (int)x;
}
