typedef unsigned int u32;
u32 huge[1000000000];
int main() { return (int)huge[0]; }
