typedef unsigned int u32;
u32 g[4];
int main() {
  u32 x, y;
  x = 4294967295u;
  y = 2147483648u;
  g[(x * y) % 4] = x + y;
  x = x * x;
  y = (x - 1u) / (y | 1u);
  if (x < y) { x = y; }
  return (int)((x + y) & 0xffu);
}
