//===- tests/DriverTest.cpp - End-to-end driver tests ---------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's headline claims, end to end: verified bounds hold on the
/// machine (Theorem 1), and both manually and automatically derived
/// bounds over-approximate measured consumption by exactly 4 bytes on
/// worst-case-realizing runs (section 6).
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::driver;
using namespace qcc::logic;

namespace {

Compilation mustCompile(const std::string &Src, CompilerOptions Opt = {}) {
  DiagnosticEngine D;
  auto C = compile(Src, D, std::move(Opt));
  EXPECT_TRUE(C) << D.str();
  return C ? std::move(*C) : Compilation{};
}

const char *Section2Source = R"(
#define ALEN 64
#define SEED 1
typedef unsigned int u32;
u32 a[ALEN];
u32 seed = SEED;
u32 search(u32 elem, u32 beg, u32 end) {
  u32 mid = beg + (end - beg) / 2;
  if (end - beg <= 1) return beg;
  if (a[mid] > elem) end = mid; else beg = mid;
  return search(elem, beg, end);
}
u32 random() { seed = (seed * 1664525) + 1013904223; return seed; }
void init() {
  u32 i, rnd, prev = 0;
  for (i = 0; i < ALEN; i++) {
    rnd = random();
    a[i] = prev + rnd % 17;
    prev = a[i];
  }
}
int main() {
  u32 idx, elem;
  init();
  elem = random() % (17 * ALEN);
  idx = search(elem, 0, ALEN);
  return a[idx] == elem;
}
)";

FunctionContext section2Seed() {
  FunctionContext Seed;
  Seed["search"] = FunctionSpec::balanced(
      bMul(bMetric("search"),
           bAdd(bConst(1), bLog2C(IntTermNode::sub(
                               IntTermNode::var("end"),
                               IntTermNode::var("beg"))))));
  return Seed;
}

TEST(Driver, CompilesWithValidation) {
  Compilation C = mustCompile("int main() { return 7; }");
  EXPECT_TRUE(C.Metric.hasCost("main"));
  measure::Measurement M = measureStack(C);
  ASSERT_TRUE(M.Ok);
  EXPECT_EQ(M.ExitCode, 7);
}

TEST(Driver, FrontendErrorsPropagate) {
  DiagnosticEngine D;
  EXPECT_FALSE(compile("int main() { return foo(); }", D));
  EXPECT_TRUE(D.hasErrors());
}

TEST(Driver, AutoBoundsCoverNonRecursiveFunctions) {
  Compilation C = mustCompile(R"(
u32 h() { return 1; }
u32 g() { return h() + 1; }
int main() { return g(); }
)");
  for (const char *F : {"h", "g", "main"}) {
    auto B = concreteCallBound(C, F);
    ASSERT_TRUE(B) << F;
    EXPECT_GE(*B, 4u);
  }
  // Nesting: bound(main) >= bound(g) >= bound(h).
  EXPECT_GE(*concreteCallBound(C, "main"), *concreteCallBound(C, "g"));
  EXPECT_GE(*concreteCallBound(C, "g"), *concreteCallBound(C, "h"));
}

TEST(Driver, BoundIsSoundOnTheMachine) {
  Compilation C = mustCompile(R"(
u32 h() { return 1; }
u32 g() { return h() + 1; }
int main() { u32 i; u32 s = 0; for (i = 0; i < 5; i++) s += g(); return s; }
)");
  auto Bound = concreteCallBound(C, "main");
  ASSERT_TRUE(Bound);
  measure::Measurement M = measureStack(C);
  ASSERT_TRUE(M.Ok);
  EXPECT_GE(*Bound, M.StackBytes);
}

TEST(Driver, ExactlyFourByteGapStraightLine) {
  // Worst case always realized: a linear call chain.
  Compilation C = mustCompile(R"(
u32 h(u32 x) { return x + 1; }
u32 g(u32 x) { return h(x) + 1; }
u32 f(u32 x) { return g(x) + 1; }
int main() { return f(0); }
)");
  auto Bound = concreteCallBound(C, "main");
  ASSERT_TRUE(Bound);
  measure::Measurement M = measureStack(C);
  ASSERT_TRUE(M.Ok);
  EXPECT_EQ(M.ExitCode, 3);
  // The paper's section 6 observation, reproduced exactly.
  EXPECT_EQ(*Bound - M.StackBytes, 4u);
}

TEST(Driver, Theorem1RunsAtBoundMinusFour) {
  Compilation C = mustCompile(R"(
u32 h(u32 x) { return x * 2; }
u32 g(u32 x) { return h(x) + h(x + 1); }
int main() { return g(4); }
)");
  auto Bound = concreteCallBound(C, "main");
  ASSERT_TRUE(Bound);
  // Theorem 1: sz >= W_M implies no overflow; our bound counts main's
  // return address which the machine's +4 slack provides, so sz =
  // bound - 4 must run.
  measure::Measurement AtBound =
      runWithStackSize(C, static_cast<uint32_t>(*Bound) - 4);
  EXPECT_TRUE(AtBound.Ok) << AtBound.Error;
  // And the bound is tight here: 8 bytes less must overflow.
  measure::Measurement Below =
      runWithStackSize(C, static_cast<uint32_t>(*Bound) - 12);
  EXPECT_FALSE(Below.Ok);
  EXPECT_TRUE(Below.StackOverflow);
}

TEST(Driver, ZeroStackSizeIsAValidTheorem1Instance) {
  // sz = 0 is a legitimate (degenerate) Theorem 1 stack: a call-free main
  // needs no stack beyond the machine's +4 slack for its return address.
  Compilation CallFree = mustCompile("int main() { return 5; }");
  auto Bound = concreteCallBound(CallFree, "main");
  ASSERT_TRUE(Bound);
  EXPECT_EQ(*Bound, 4u);
  measure::Measurement M = runWithStackSize(CallFree, 0);
  EXPECT_TRUE(M.Ok) << M.Error;
  EXPECT_EQ(M.ExitCode, 5);

  // While any program that calls must overflow a 0-byte stack — and
  // report it as a stack overflow, not crash or misreport.
  Compilation Calling = mustCompile(R"(
u32 f(u32 x) { return x + 1; }
int main() { return f(1); }
)");
  measure::Measurement Z = runWithStackSize(Calling, 0);
  EXPECT_FALSE(Z.Ok);
  EXPECT_TRUE(Z.StackOverflow);
}

TEST(Driver, StackSizeAtMachineMaximumIsRejectedGracefully) {
  // measure::MaxStackSize is the largest hostable sz; one past it must
  // be a clean error from the meter, never address wraparound.
  Compilation C = mustCompile("int main() { return 0; }");
  measure::Measurement M = runWithStackSize(C, measure::MaxStackSize + 1);
  EXPECT_FALSE(M.Ok);
  EXPECT_FALSE(M.StackOverflow);
  EXPECT_FALSE(M.Error.empty());
}

TEST(Driver, Section2EndToEnd) {
  CompilerOptions Opt;
  Opt.SeededSpecs = section2Seed();
  Compilation C = mustCompile(Section2Source, std::move(Opt));

  // Auto bounds for the non-recursive functions (Paper section 2:
  // {M(init)+M(random)} init {M(init)+M(random)}).
  ASSERT_TRUE(C.Bounds.Gamma.count("init"));
  BoundExpr InitBound = C.Bounds.Gamma.at("init").Pre;
  StackMetric Symbolic;
  Symbolic.setCost("init", 100);
  Symbolic.setCost("random", 10);
  EXPECT_EQ(evalBound(InitBound, Symbolic, {}), ExtNat(10));

  // The composed main bound instantiated with the compiler metric is a
  // concrete number of bytes covering the measured run.
  auto MainBound = concreteCallBound(C, "main");
  ASSERT_TRUE(MainBound);
  measure::Measurement M = measureStack(C);
  ASSERT_TRUE(M.Ok) << M.Error;
  EXPECT_GE(*MainBound, M.StackBytes);

  // Theorem 1 at the bound.
  measure::Measurement AtBound =
      runWithStackSize(C, static_cast<uint32_t>(*MainBound) - 4);
  EXPECT_TRUE(AtBound.Ok) << AtBound.Error;
}

TEST(Driver, Section2BoundShapeIsLogarithmic) {
  // Bound(ALEN) - Bound(2*ALEN) differs by exactly one search frame.
  CompilerOptions Opt1;
  Opt1.SeededSpecs = section2Seed();
  Opt1.Defines = {{"ALEN", 512}};
  Compilation C1 = mustCompile(Section2Source, std::move(Opt1));
  CompilerOptions Opt2;
  Opt2.SeededSpecs = section2Seed();
  Opt2.Defines = {{"ALEN", 1024}};
  Compilation C2 = mustCompile(Section2Source, std::move(Opt2));

  auto B1 = concreteCallBound(C1, "main");
  auto B2 = concreteCallBound(C2, "main");
  ASSERT_TRUE(B1 && B2);
  EXPECT_EQ(*B2 - *B1, C2.Metric.cost("search"));
}

TEST(Driver, UnoptimizedPipelineAlsoValidates) {
  CompilerOptions Opt;
  Opt.Optimize = false;
  Compilation C = mustCompile(Section2Source, std::move(Opt));
  measure::Measurement M = measureStack(C);
  EXPECT_TRUE(M.Ok) << M.Error;
}

TEST(Driver, MetricMatchesAsmFrames) {
  Compilation C = mustCompile(Section2Source);
  StackMetric AsmMetric = C.Asm.costMetric();
  for (const auto &[F, Cost] : C.Metric.costs())
    EXPECT_EQ(AsmMetric.cost(F), Cost) << F;
}

} // namespace
