//===- tests/ProofForestTest.cpp - Flat proof objects ---------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
//
// The flat-derivation invariants the store and checker lean on:
//
//   * tree -> forest -> tree is the identity (node for node, printed
//     form and size included), and flat indices equal preorder indices;
//   * forest -> store bytes -> forest is the identity, and the forest
//     encoder emits byte-for-byte what the tree encoder emits;
//   * the forest checker accepts exactly what the tree checker accepts
//     and rejects hand-built unsound mutants in both forms;
//   * concurrent forest checking with a shared entailment memo is safe
//     (the TSan slice runs this under -DQCC_SANITIZE=thread);
//   * Derivation::size()/str() are iterative — derivations far deeper
//     than any C function body cannot blow the host stack.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "batch/ThreadPool.h"
#include "frontend/Frontend.h"
#include "logic/Forest.h"
#include "store/Serialize.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace qcc;
using namespace qcc::logic;

namespace {

clight::Program mustParse(const std::string &Src) {
  DiagnosticEngine D;
  auto P = frontend::parseProgram(Src, D);
  EXPECT_TRUE(P) << D.str();
  return P ? std::move(*P) : clight::Program{};
}

/// A program exercising every derivation rule the analyzer emits: calls
/// (balanced), sequences, branches (both max and ite joins), loops,
/// assignment substitution, returns, and an external call.
const char *RichSource = R"(
extern void print(int);
u32 seed = 1;
u32 random() { seed = (seed * 1664525) + 1013904223; return seed; }
void leaf() { }
void mid() { leaf(); }
u32 work(u32 n) {
  u32 i, acc = 0;
  for (i = 0; i < n; i++) {
    if (i % 2 == 0) { mid(); } else { leaf(); }
    acc = acc + i;
  }
  return acc;
}
int main() {
  u32 r;
  print(1);
  r = work(17);
  if (r > 100) { mid(); } else { leaf(); }
  return 0;
}
)";

struct Analyzed {
  clight::Program P;
  analysis::AnalysisResult R;
};

Analyzed analyzeRich() {
  Analyzed A;
  A.P = mustParse(RichSource);
  DiagnosticEngine D;
  A.R = analysis::analyzeProgram(A.P, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  EXPECT_FALSE(A.R.Bounds.empty());
  return A;
}

//===----------------------------------------------------------------------===//
// Tree <-> forest round trips
//===----------------------------------------------------------------------===//

TEST(ProofForest, TreeForestTreeIsIdentity) {
  Analyzed A = analyzeRich();
  for (const auto &[Name, FB] : A.R.Bounds) {
    DerivationForest Fo;
    uint32_t RootIdx = Fo.addRoot(Name, FB.Spec, *FB.Body);
    const DerivationForest::Root &Root = Fo.roots()[RootIdx];
    EXPECT_EQ(Root.End - Root.Node, FB.Body->size());
    FunctionBound Back = Fo.toFunctionBound(RootIdx);
    ASSERT_TRUE(Back.Body);
    EXPECT_EQ(Back.Function, Name);
    EXPECT_EQ(Back.Body->size(), FB.Body->size());
    EXPECT_EQ(Back.Body->str(), FB.Body->str());
    EXPECT_EQ(Back.Spec.Pre->str(), FB.Spec.Pre->str());
    EXPECT_EQ(Back.Spec.Post->str(), FB.Spec.Post->str());
  }
}

TEST(ProofForest, AnalyzerForestMatchesTreeBounds) {
  // The analyzer's own forest (what it checked and what the store
  // serializes) holds exactly the fresh bounds, root for root.
  Analyzed A = analyzeRich();
  ASSERT_EQ(A.R.Forest.roots().size(), A.R.Bounds.size());
  for (uint32_t RI = 0; RI != A.R.Forest.roots().size(); ++RI) {
    const DerivationForest::Root &Root = A.R.Forest.roots()[RI];
    auto It = A.R.Bounds.find(Root.Function);
    ASSERT_NE(It, A.R.Bounds.end());
    EXPECT_EQ(A.R.Forest.toFunctionBound(RI).Body->str(),
              It->second.Body->str());
  }
  EXPECT_EQ(A.R.proofNodeCount(), [&] {
    uint64_t N = 0;
    for (const auto &[Name, FB] : A.R.Bounds)
      N += FB.Body->size();
    return N;
  }());
}

TEST(ProofForest, FlatIndexMatchesPreorderNodeAt) {
  Analyzed A = analyzeRich();
  const FunctionBound &FB = A.R.Bounds.begin()->second;
  DerivationForest Fo;
  uint32_t RootIdx = Fo.addRoot(FB.Function, FB.Spec, *FB.Body);
  const DerivationForest::Root &Root = Fo.roots()[RootIdx];
  for (uint32_t Off = 0; Off != Root.End - Root.Node; ++Off) {
    Derivation *N = FB.Body->nodeAt(Off);
    ASSERT_NE(N, nullptr);
    EXPECT_EQ(Fo.rule(Root.Node + Off), N->R);
    EXPECT_EQ(Fo.stmt(Root.Node + Off), N->S);
    EXPECT_EQ(Fo.childCount(Root.Node + Off), N->Children.size());
  }
}

//===----------------------------------------------------------------------===//
// Store bytes
//===----------------------------------------------------------------------===//

TEST(ProofForest, EncodersAgreeByteForByte) {
  Analyzed A = analyzeRich();
  std::string Tree = store::encodeProofs(A.R.Gamma, A.R.Bounds, A.P);
  std::string Flat = store::encodeProofsForest(A.R.Gamma, A.R.Forest, A.P);
  ASSERT_FALSE(Tree.empty());
  EXPECT_EQ(Tree, Flat);
}

TEST(ProofForest, ForestStoreBytesForestIsIdentity) {
  Analyzed A = analyzeRich();
  std::string Blob = store::encodeProofsForest(A.R.Gamma, A.R.Forest, A.P);
  ASSERT_FALSE(Blob.empty());
  store::ProofForest PF;
  ASSERT_TRUE(store::decodeProofsForest(Blob, &A.P, PF));
  ASSERT_EQ(PF.Forest.roots().size(), A.R.Forest.roots().size());
  // Decoded derivations match the originals node for node...
  for (uint32_t RI = 0; RI != PF.Forest.roots().size(); ++RI) {
    const DerivationForest::Root &Root = PF.Forest.roots()[RI];
    auto It = A.R.Bounds.find(Root.Function);
    ASSERT_NE(It, A.R.Bounds.end());
    EXPECT_EQ(PF.Forest.toFunctionBound(RI).Body->str(),
              It->second.Body->str());
  }
  // ...and re-encoding reproduces the exact bytes.
  EXPECT_EQ(store::encodeProofsForest(PF.Gamma, PF.Forest, A.P), Blob);
}

TEST(ProofForest, ReusedRecordSplicesByteIdentically) {
  // Encoding with one function served as a raw spliced record must equal
  // encoding everything fresh: the zero-copy warm path is invisible in
  // the bytes.
  Analyzed A = analyzeRich();
  std::string AllFresh = store::encodeProofs(A.R.Gamma, A.R.Bounds, A.P);

  const std::string Victim = A.R.Bounds.begin()->first;
  const FunctionBound &FB = A.R.Bounds.at(Victim);
  const clight::Function *F = A.P.findFunction(Victim);
  ASSERT_NE(F, nullptr);
  std::vector<const clight::Stmt *> Stmts =
      store::preorderStatements(F->Body.get());
  std::map<const clight::Stmt *, uint32_t> Index;
  for (uint32_t I = 0; I != Stmts.size(); ++I)
    Index[Stmts[I]] = I;
  store::ByteWriter W;
  store::writeSpec(W, FB.Spec);
  ASSERT_TRUE(store::writeDerivation(W, *FB.Body, Index));
  std::string Record = W.take();

  DerivationForest Rest;
  for (const auto &[Name, B] : A.R.Bounds)
    if (Name != Victim)
      Rest.addRoot(Name, B.Spec, *B.Body);
  std::map<std::string, const std::string *> Reused{{Victim, &Record}};
  EXPECT_EQ(store::encodeProofsForest(A.R.Gamma, Rest, A.P, &Reused),
            AllFresh);
}

//===----------------------------------------------------------------------===//
// Checker agreement
//===----------------------------------------------------------------------===//

TEST(ProofForest, ForestCheckerAgreesWithTreeChecker) {
  Analyzed A = analyzeRich();
  EntailOptions Opt;
  Opt.SymbolicOnly = true;
  for (const auto &[Name, FB] : A.R.Bounds) {
    ProofChecker TreeChecker(A.P, &A.R.Gamma, Opt);
    DiagnosticEngine TD;
    EXPECT_TRUE(TreeChecker.checkFunctionBound(FB, TD)) << TD.str();

    DerivationForest Fo;
    uint32_t RootIdx = Fo.addRoot(Name, FB.Spec, *FB.Body);
    ProofChecker ForestChecker(A.P, &A.R.Gamma, Opt);
    DiagnosticEngine FD;
    EXPECT_TRUE(ForestChecker.checkFunctionBound(Fo, RootIdx, FD))
        << FD.str();
  }
}

TEST(ProofForest, BothCheckersRejectHandMutants) {
  Analyzed A = analyzeRich();
  EntailOptions Opt;
  Opt.SymbolicOnly = true;
  auto BothReject = [&](const FunctionBound &Mutant) {
    ProofChecker TreeChecker(A.P, &A.R.Gamma, Opt);
    DiagnosticEngine TD;
    bool TreeAccepts = TreeChecker.checkFunctionBound(Mutant, TD);
    DerivationForest Fo;
    uint32_t RootIdx = Fo.addRoot(Mutant.Function, Mutant.Spec, *Mutant.Body);
    ProofChecker ForestChecker(A.P, &A.R.Gamma, Opt);
    DiagnosticEngine FD;
    bool ForestAccepts = ForestChecker.checkFunctionBound(Fo, RootIdx, FD);
    EXPECT_FALSE(TreeAccepts);
    EXPECT_FALSE(ForestAccepts);
    // And they agree with each other, accepted or not.
    EXPECT_EQ(TreeAccepts, ForestAccepts);
  };

  // 'main' calls functions, so it has nonzero potential to corrupt.
  const FunctionBound &Original = A.R.Bounds.at("main");

  // Mutant 1: claim the cheapest possible spec.
  FunctionBound SpecShrunk{Original.Function, FunctionSpec::balanced(bZero()),
                           Original.Body->clone()};
  BothReject(SpecShrunk);

  // Mutant 2: zero the root precondition.
  FunctionBound PreZeroed{Original.Function, Original.Spec,
                          Original.Body->clone()};
  PreZeroed.Body->Pre = bZero();
  BothReject(PreZeroed);

  // Mutant 3: drop the root's children (a composite rule with no
  // premises proves nothing).
  FunctionBound Childless{Original.Function, Original.Spec,
                          Original.Body->clone()};
  ASSERT_FALSE(Childless.Body->Children.empty());
  Childless.Body->Children.clear();
  BothReject(Childless);
}

//===----------------------------------------------------------------------===//
// Concurrency (the TSan target)
//===----------------------------------------------------------------------===//

TEST(ProofForest, ParallelForestCheckingWithSharedMemoIsRaceFree) {
  Analyzed A = analyzeRich();
  EntailOptions Opt;
  Opt.SymbolicOnly = true;
  EntailMemo Memo;
  // One checker, one memo, every root checked concurrently and
  // repeatedly from pool workers: distinct roots touch disjoint node
  // spans, the bound table is read-only after building, and the memo
  // takes its own locks.
  ProofChecker Checker(A.P, &A.R.Gamma, Opt);
  Checker.setMemo(&Memo);
  batch::WorkStealingPool Pool(4);
  constexpr unsigned Repeats = 8;
  size_t NumRoots = A.R.Forest.roots().size();
  std::atomic<unsigned> Accepted{0};
  Pool.parallelFor(NumRoots * Repeats, [&](size_t I) {
    DiagnosticEngine D;
    if (Checker.checkFunctionBound(A.R.Forest,
                                   static_cast<uint32_t>(I % NumRoots), D))
      Accepted.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Accepted.load(), NumRoots * Repeats);
  // The shared memo actually served queries (misses on first touch, hits
  // on the repeats) — the speedup mechanism is live, not vestigial.
  EXPECT_GT(Memo.hits(), 0u);
  EXPECT_GT(Memo.misses(), 0u);
}

//===----------------------------------------------------------------------===//
// Deep derivations (the iterative size()/str() fix)
//===----------------------------------------------------------------------===//

DerivationPtr deepChain(size_t Depth) {
  auto Leaf = std::make_unique<Derivation>();
  Leaf->R = Rule::Skip;
  Leaf->Pre = bZero();
  Leaf->Post = PostCondition{bZero(), bZero(), bZero()};
  DerivationPtr Chain = std::move(Leaf);
  for (size_t I = 1; I != Depth; ++I) {
    auto N = std::make_unique<Derivation>();
    N->R = Rule::Conseq;
    N->Pre = bZero();
    N->Post = PostCondition{bZero(), bZero(), bZero()};
    N->Children.push_back(std::move(Chain));
    Chain = std::move(N);
  }
  return Chain;
}

/// Iterative teardown: ~Derivation recurses the chain, so pop children
/// onto a worklist instead of letting the destructor walk it.
void drainChain(DerivationPtr Chain) {
  std::vector<DerivationPtr> Teardown;
  Teardown.push_back(std::move(Chain));
  while (!Teardown.empty()) {
    DerivationPtr D = std::move(Teardown.back());
    Teardown.pop_back();
    for (DerivationPtr &C : D->Children)
      Teardown.push_back(std::move(C));
  }
}

TEST(ProofForest, DeepDerivationSizeIsIterative) {
  // Deep enough that the old recursive size() would exhaust a default
  // 8 MiB stack.
  constexpr size_t Depth = 300000;
  DerivationPtr Chain = deepChain(Depth);
  EXPECT_EQ(Chain->size(), Depth);
  drainChain(std::move(Chain));
}

TEST(ProofForest, DeepDerivationStrIsIterative) {
  // str() output grows quadratically with depth (indentation), so this
  // chain is shallower — still far past where the old recursion's fat
  // printing frames died.
  constexpr size_t Depth = 20000;
  DerivationPtr Chain = deepChain(Depth);
  std::string S = Chain->str();
  EXPECT_FALSE(S.empty());
  drainChain(std::move(Chain));
}

} // namespace
