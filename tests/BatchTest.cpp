//===- tests/BatchTest.cpp - Batch engine: races, determinism, cache ------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism/thread-safety layer over the batch-verification
/// engine:
///
///   * work-stealing pool sanity (every index runs exactly once, from
///     many concurrent workers),
///   * a 2x-oversubscribed stress batch — two driver::Compiler pipelines
///     per hardware thread — that must be race-free (run it under
///     -DQCC_SANITIZE=thread to let TSan prove it),
///   * byte-identical results between --jobs 1 and --jobs N and across
///     repeated runs (bounds, diagnostics, metrics JSON modulo timing
///     fields),
///   * result-cache behavior: hit on identical reruns; miss on a source
///     edit, a -D change, or an option change (--inline, --no-opt) — the
///     key covers options, so cache poisoning is impossible.
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "batch/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace qcc;
using namespace qcc::batch;

namespace {

unsigned hardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// A small program exercising calls, loops, and the analyzer.
const char *SmallProgram = R"(
typedef unsigned int u32;
u32 g[8];
u32 leaf(u32 x) { return x * 3 + 1; }
u32 mid(u32 x) {
  u32 i, acc;
  acc = 0;
  for (i = 0; i < 4; i++) acc = acc + leaf(x + i);
  return acc;
}
int main() {
  u32 i;
  for (i = 0; i < 8; i++) g[i & 7] = mid(i);
  return (int)(g[3] & 0xff);
}
)";

/// A variant with one constant edited (a "source edit" for cache tests).
const char *SmallProgramEdited = R"(
typedef unsigned int u32;
u32 g[8];
u32 leaf(u32 x) { return x * 3 + 2; }
u32 mid(u32 x) {
  u32 i, acc;
  acc = 0;
  for (i = 0; i < 4; i++) acc = acc + leaf(x + i);
  return acc;
}
int main() {
  u32 i;
  for (i = 0; i < 8; i++) g[i & 7] = mid(i);
  return (int)(g[3] & 0xff);
}
)";

/// A program whose behavior depends on a #define (for -D cache tests).
const char *DefineProgram = R"(
typedef unsigned int u32;
#define N 4
u32 f(u32 x) { return x + N; }
int main() { return (int)(f(10) & 0xff); }
)";

//===----------------------------------------------------------------------===//
// Work-stealing pool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  WorkStealingPool Pool(4);
  constexpr size_t N = 10'000;
  std::vector<std::atomic<unsigned>> Ran(N);
  Pool.parallelFor(N, [&Ran](size_t I) { Ran[I].fetch_add(1); });
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(Ran[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, ReusableAcrossBatches) {
  WorkStealingPool Pool(3);
  for (unsigned Round = 0; Round != 5; ++Round) {
    std::atomic<size_t> Sum{0};
    Pool.parallelFor(100, [&Sum](size_t I) { Sum.fetch_add(I + 1); });
    EXPECT_EQ(Sum.load(), 5050u) << "round " << Round;
  }
}

TEST(ThreadPool, UnevenItemsLoadBalance) {
  // One heavy item first; stealing must let other workers drain the rest
  // while it runs. Correctness (not timing) is what is asserted.
  WorkStealingPool Pool(4);
  std::atomic<size_t> Done{0};
  Pool.parallelFor(64, [&Done](size_t I) {
    volatile uint64_t Spin = I == 0 ? 2'000'000 : 1'000;
    while (Spin)
      Spin = Spin - 1;
    Done.fetch_add(1);
  });
  EXPECT_EQ(Done.load(), 64u);
}

//===----------------------------------------------------------------------===//
// Oversubscribed stress (race detection; TSan-clean under QCC_SANITIZE)
//===----------------------------------------------------------------------===//

TEST(BatchStress, OversubscribedBatchIsRaceFree) {
  // 2x oversubscription: twice as many workers as hardware threads, each
  // running full compile+validate+analyze pipelines concurrently. Any
  // hidden global mutable state in Diagnostics, interning, or the
  // pipeline itself surfaces here (and under TSan, deterministically).
  unsigned Workers = 2 * hardwareThreads();
  std::vector<BatchJob> Jobs;
  for (unsigned I = 0; I != 4 * Workers; ++I) {
    BatchJob J;
    J.Id = "stress" + std::to_string(I);
    // Alternate sources so neighbouring workers run distinct programs.
    J.Source = I % 2 ? SmallProgramEdited : SmallProgram;
    Jobs.push_back(std::move(J));
  }
  BatchOptions Opts;
  Opts.Jobs = Workers;
  BatchResult R = runBatch(Jobs, Opts);
  ASSERT_EQ(R.Programs.size(), Jobs.size());
  for (const ProgramResult &P : R.Programs) {
    EXPECT_TRUE(P.Ok) << P.Id << ": " << P.Diagnostics;
    EXPECT_TRUE(P.Theorem1Checked) << P.Id;
    EXPECT_TRUE(P.Theorem1Ok) << P.Id;
  }
}

TEST(BatchStress, ConcurrentCompilersShareNoDiagnosticState) {
  // Two raw driver::Compiler pipelines on two threads, no engine in
  // between: the Diagnostics thread-safety contract directly.
  auto Run = [](std::string *DiagsOut) {
    for (unsigned I = 0; I != 8; ++I) {
      DiagnosticEngine D;
      auto C = driver::compile(SmallProgram, D);
      if (!C)
        *DiagsOut += "compile failed: " + D.str();
      *DiagsOut += D.str(); // Expected empty: no warnings here.
    }
  };
  std::string DiagsA, DiagsB;
  std::thread TA(Run, &DiagsA);
  std::thread TB(Run, &DiagsB);
  TA.join();
  TB.join();
  EXPECT_EQ(DiagsA, "");
  EXPECT_EQ(DiagsB, "");
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(BatchDeterminism, SerialAndParallelRunsAreByteIdentical) {
  std::vector<BatchJob> Jobs = corpusJobs();
  BatchOptions Serial;
  Serial.Jobs = 1;
  BatchOptions Parallel;
  Parallel.Jobs = 2 * hardwareThreads();
  BatchResult RSerial = runBatch(Jobs, Serial);
  BatchResult RParallel = runBatch(Jobs, Parallel);

  ASSERT_EQ(RSerial.Programs.size(), RParallel.Programs.size());
  for (size_t I = 0; I != RSerial.Programs.size(); ++I) {
    const ProgramResult &A = RSerial.Programs[I];
    const ProgramResult &B = RParallel.Programs[I];
    EXPECT_EQ(A.Id, B.Id);
    EXPECT_EQ(A.Ok, B.Ok) << A.Id;
    EXPECT_EQ(A.Diagnostics, B.Diagnostics) << A.Id;
    ASSERT_EQ(A.Bounds.size(), B.Bounds.size()) << A.Id;
    for (size_t F = 0; F != A.Bounds.size(); ++F) {
      EXPECT_EQ(A.Bounds[F].Function, B.Bounds[F].Function) << A.Id;
      EXPECT_EQ(A.Bounds[F].SymbolicBound, B.Bounds[F].SymbolicBound)
          << A.Id;
      EXPECT_EQ(A.Bounds[F].ConcreteBytes, B.Bounds[F].ConcreteBytes)
          << A.Id;
    }
  }
  EXPECT_EQ(metricsJson(RSerial, JsonDetail::Deterministic),
            metricsJson(RParallel, JsonDetail::Deterministic));
}

TEST(BatchDeterminism, RepeatedRunsAreByteIdentical) {
  std::vector<BatchJob> Jobs = corpusJobs(/*ValidateTranslation=*/false);
  BatchOptions Opts;
  Opts.Jobs = hardwareThreads();
  std::string First = metricsJson(runBatch(Jobs, Opts),
                                  JsonDetail::Deterministic);
  std::string Second = metricsJson(runBatch(Jobs, Opts),
                                   JsonDetail::Deterministic);
  EXPECT_EQ(First, Second);
}

TEST(BatchDeterminism, DeterministicJsonOmitsTimingFields) {
  std::vector<BatchJob> Jobs{{"one.c", SmallProgram, {}}};
  BatchResult R = runBatch(Jobs, {});
  std::string Full = metricsJson(R, JsonDetail::Full);
  std::string Det = metricsJson(R, JsonDetail::Deterministic);
  EXPECT_NE(Full.find("wall_us"), std::string::npos);
  EXPECT_NE(Full.find("total_us"), std::string::npos);
  EXPECT_NE(Full.find("\"cache\""), std::string::npos);
  EXPECT_EQ(Det.find("wall_us"), std::string::npos);
  EXPECT_EQ(Det.find("total_us"), std::string::npos);
  EXPECT_EQ(Det.find("\"us\""), std::string::npos);
  EXPECT_EQ(Det.find("\"cache\""), std::string::npos);
  // Non-timing metrics stay.
  EXPECT_NE(Det.find("refinement_events"), std::string::npos);
  EXPECT_NE(Det.find("proof_nodes"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Result cache
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, IdenticalRerunHits) {
  ResultCache Cache;
  std::vector<BatchJob> Jobs{{"p.c", SmallProgram, {}}};
  BatchOptions Opts;
  Opts.Jobs = 1;
  Opts.Cache = &Cache;
  BatchResult First = runBatch(Jobs, Opts);
  EXPECT_EQ(First.Cache.Hits, 0u);
  EXPECT_EQ(First.Cache.Misses, 1u);
  EXPECT_FALSE(First.Programs[0].CacheHit);

  BatchResult Second = runBatch(Jobs, Opts);
  EXPECT_EQ(Second.Cache.Hits, 1u);
  EXPECT_EQ(Second.Cache.Misses, 0u);
  EXPECT_TRUE(Second.Programs[0].CacheHit);
  // The cached result is the same verification outcome.
  EXPECT_EQ(Second.Programs[0].Ok, First.Programs[0].Ok);
  ASSERT_EQ(Second.Programs[0].Bounds.size(),
            First.Programs[0].Bounds.size());
}

TEST(ResultCacheTest, SourceEditMisses) {
  ResultCache Cache;
  BatchOptions Opts;
  Opts.Cache = &Cache;
  Opts.Jobs = 1;
  runBatch({{"p.c", SmallProgram, {}}}, Opts);
  BatchResult Edited = runBatch({{"p.c", SmallProgramEdited, {}}}, Opts);
  EXPECT_EQ(Edited.Cache.Hits, 0u);
  EXPECT_EQ(Edited.Cache.Misses, 1u);
}

TEST(ResultCacheTest, DefineChangeMisses) {
  ResultCache Cache;
  BatchOptions Opts;
  Opts.Cache = &Cache;
  Opts.Jobs = 1;

  BatchJob Base{"d.c", DefineProgram, {}};
  runBatch({Base}, Opts);

  BatchJob Redefined = Base;
  Redefined.Options.Defines["N"] = 9; // qcc -D N=9
  BatchResult R = runBatch({Redefined}, Opts);
  EXPECT_EQ(R.Cache.Hits, 0u);
  EXPECT_EQ(R.Cache.Misses, 1u);

  // And the redefined program really is a different verification: its
  // main returns a different exit path but stays verifiable.
  EXPECT_TRUE(R.Programs[0].Ok) << R.Programs[0].Diagnostics;

  // Rerunning either keyed variant hits its own entry — no poisoning.
  EXPECT_EQ(runBatch({Base}, Opts).Cache.Hits, 1u);
  EXPECT_EQ(runBatch({Redefined}, Opts).Cache.Hits, 1u);
}

TEST(ResultCacheTest, OptionChangeMisses) {
  ResultCache Cache;
  BatchOptions Opts;
  Opts.Cache = &Cache;
  Opts.Jobs = 1;

  BatchJob Base{"p.c", SmallProgram, {}};
  runBatch({Base}, Opts);

  BatchJob Inlined = Base;
  Inlined.Options.Inline = true; // qcc --inline
  EXPECT_EQ(runBatch({Inlined}, Opts).Cache.Hits, 0u);

  BatchJob Unoptimized = Base;
  Unoptimized.Options.Optimize = false; // qcc --no-opt
  EXPECT_EQ(runBatch({Unoptimized}, Opts).Cache.Hits, 0u);

  BatchJob TailCalls = Base;
  TailCalls.Options.TailCalls = true; // qcc --tail-calls
  EXPECT_EQ(runBatch({TailCalls}, Opts).Cache.Hits, 0u);

  // All four variants coexist; each rerun hits only its own entry.
  EXPECT_EQ(Cache.size(), 4u);
  EXPECT_EQ(runBatch({Base}, Opts).Cache.Hits, 1u);
  EXPECT_EQ(runBatch({Inlined}, Opts).Cache.Hits, 1u);
}

TEST(ResultCacheTest, KeySeparatesEveryOption) {
  BatchJob J{"k.c", SmallProgram, {}};
  JobKey Base = jobKey(J, true);

  BatchJob Edit = J;
  Edit.Source = SmallProgramEdited;
  EXPECT_NE(jobKey(Edit, true), Base);

  BatchJob Def = J;
  Def.Options.Defines["X"] = 1;
  EXPECT_NE(jobKey(Def, true), Base);

  BatchJob DefValue = Def;
  DefValue.Options.Defines["X"] = 2;
  EXPECT_NE(jobKey(DefValue, true), jobKey(Def, true));

  BatchJob Inl = J;
  Inl.Options.Inline = true;
  EXPECT_NE(jobKey(Inl, true), Base);

  BatchJob NoOpt = J;
  NoOpt.Options.Optimize = false;
  EXPECT_NE(jobKey(NoOpt, true), Base);

  BatchJob NoValidate = J;
  NoValidate.Options.ValidateTranslation = false;
  EXPECT_NE(jobKey(NoValidate, true), Base);

  BatchJob Seeded = J;
  Seeded.Options.SeededSpecs["f"] =
      logic::FunctionSpec::balanced(logic::bConst(ExtNat(8)));
  EXPECT_NE(jobKey(Seeded, true), Base);

  // Theorem-1 mode is part of the key too.
  EXPECT_NE(jobKey(J, false), Base);
}

TEST(ResultCacheTest, PrimaryHashCollisionIsAMissNotAWrongVerdict) {
  // The cache buckets on a single 64-bit FNV-1a hash; two sources that
  // collide in it used to be indistinguishable, so the second would be
  // served the first one's verdict. The key now carries an independent
  // second hash, verified on every hit: force two keys into the same
  // bucket and the lookup must miss (and count the collision), never
  // return the resident entry.
  ResultCache Cache;
  JobKey Resident{42, 1001};
  JobKey Colliding{42, 2002}; // same bucket, different content
  auto Result = std::make_shared<ProgramResult>();
  Result->Id = "resident.c";
  Result->Ok = true;
  Cache.insert(Resident, Result);

  EXPECT_EQ(Cache.lookup(Colliding), nullptr);
  EXPECT_EQ(Cache.stats().Collisions, 1u);
  EXPECT_EQ(Cache.stats().Hits, 0u);

  // The resident entry itself still hits.
  auto Hit = Cache.lookup(Resident);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Id, "resident.c");
  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Cache.stats().Collisions, 1u);
}

TEST(ResultCacheTest, SharedCacheIsThreadSafeUnderDuplicates) {
  // Many duplicate jobs racing on one cache: every result must still be
  // correct; hit/miss counts depend on the schedule, but hits + misses
  // equals the job count and at least one job computes.
  ResultCache Cache;
  std::vector<BatchJob> Jobs;
  for (unsigned I = 0; I != 32; ++I)
    Jobs.push_back({"dup" + std::to_string(I), SmallProgram, {}});
  BatchOptions Opts;
  Opts.Jobs = 2 * hardwareThreads();
  Opts.Cache = &Cache;
  BatchResult R = runBatch(Jobs, Opts);
  EXPECT_EQ(R.Cache.Hits + R.Cache.Misses, Jobs.size());
  EXPECT_GE(R.Cache.Misses, 1u);
  for (const ProgramResult &P : R.Programs) {
    EXPECT_TRUE(P.Ok) << P.Id << ": " << P.Diagnostics;
    EXPECT_EQ(P.Id.rfind("dup", 0), 0u); // Ids survive cache hits.
  }
}

//===----------------------------------------------------------------------===//
// Single-job reporting
//===----------------------------------------------------------------------===//

TEST(VerifyOne, ReportsPassMetricsAndTheorem1) {
  ProgramResult R = verifyOne({"one.c", SmallProgram, {}});
  EXPECT_TRUE(R.Ok) << R.Diagnostics;
  EXPECT_TRUE(R.Theorem1Checked);
  EXPECT_TRUE(R.Theorem1Ok);
  EXPECT_FALSE(R.Bounds.empty());
  EXPECT_GT(R.Metrics.ProofNodes, 0u);
  // Validation on: all four pass pairs replayed, with events counted.
  ASSERT_EQ(R.Metrics.ReplayedEvents.size(), 4u);
  for (const auto &[Pass, Events] : R.Metrics.ReplayedEvents)
    EXPECT_GT(Events, 0u) << Pass;
  // Stage timings cover the pipeline in order.
  ASSERT_GE(R.Metrics.PassMicros.size(), 6u);
  EXPECT_EQ(R.Metrics.PassMicros.front().first, "parse");
  EXPECT_EQ(R.Metrics.PassMicros.back().first, "analyze");
}

TEST(VerifyOne, FrontendErrorIsReportedNotFatal) {
  ProgramResult R = verifyOne({"bad.c", "int main( { return 0; }", {}});
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Diagnostics.empty());
  EXPECT_FALSE(R.Theorem1Checked);
}

} // namespace
