//===- tests/EventsTest.cpp - Unit tests for qcc_events -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "events/Event.h"
#include "events/Metric.h"
#include "events/Refinement.h"
#include "events/Trace.h"
#include "events/Weight.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

/// The Paper section 2 example trace:
/// call(main).call(init).call(random).ret(random).ret(init).
/// call(search).call(search).ret(search).ret(search).ret(main)
Trace section2Trace() {
  return {Event::call("main"),   Event::call("init"),
          Event::call("random"), Event::ret("random"),
          Event::ret("init"),    Event::call("search"),
          Event::call("search"), Event::ret("search"),
          Event::ret("search"),  Event::ret("main")};
}

StackMetric section2Metric() {
  StackMetric M;
  M.setCost("main", 16);
  M.setCost("init", 24);
  M.setCost("random", 8);
  M.setCost("search", 40);
  return M;
}

TEST(Event, Printing) {
  EXPECT_EQ(Event::call("f").str(), "call(f)");
  EXPECT_EQ(Event::ret("f").str(), "ret(f)");
  EXPECT_EQ(Event::external("print", {1, 2}, 3).str(), "print(1,2 -> 3)");
}

TEST(Event, Equality) {
  EXPECT_EQ(Event::call("f"), Event::call("f"));
  EXPECT_NE(Event::call("f"), Event::ret("f"));
  EXPECT_NE(Event::call("f"), Event::call("g"));
  EXPECT_NE(Event::external("p", {1}, 0), Event::external("p", {1}, 1));
  EXPECT_NE(Event::external("p", {1}, 0), Event::external("p", {2}, 0));
}

TEST(Event, EqualityIsKindDependent) {
  // Args/Result only participate for external events: call and ret carry
  // no payload, so stray values in those fields must not affect ==.
  Event A = Event::call("f");
  Event B = Event::call("f");
  B.Args = Event::external("io", {1, 2}, 0).Args;
  B.Result = 7;
  EXPECT_EQ(A, B);

  Event RA = Event::ret("f");
  Event RB = Event::ret("f");
  RB.Result = -1;
  EXPECT_EQ(RA, RB);

  // For externals every field participates.
  Event EA = Event::external("io", {1, 2}, 0);
  Event EB = EA;
  EXPECT_EQ(EA, EB);
  EB.Result = 1;
  EXPECT_NE(EA, EB);
}

TEST(Trace, PruningRemovesMemoryEvents) {
  Trace T = {Event::call("f"), Event::external("print", {7}, 0),
             Event::ret("f")};
  Trace P = pruneMemoryEvents(T);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0].Kind, EventKind::External);
}

TEST(Trace, WellBracketing) {
  EXPECT_TRUE(isWellBracketed(section2Trace()));
  EXPECT_TRUE(isWellBracketed({Event::call("f")})); // Open call is fine.
  EXPECT_FALSE(isWellBracketed({Event::ret("f")}));
  EXPECT_FALSE(isWellBracketed(
      {Event::call("f"), Event::call("g"), Event::ret("f")}));
}

TEST(Trace, BehaviorPrinting) {
  Behavior B = Behavior::converges({Event::call("main"), Event::ret("main")},
                                   0);
  EXPECT_EQ(B.str(), "conv(call(main).ret(main), 0)");
  EXPECT_EQ(Behavior::diverges({}).str(), "div(eps...)");
}

TEST(Metric, EventValues) {
  StackMetric M = section2Metric();
  EXPECT_EQ(M.value(Event::call("search")), 40);
  EXPECT_EQ(M.value(Event::ret("search")), -40);
  EXPECT_EQ(M.value(Event::external("print", {}, 0)), 0);
  EXPECT_EQ(M.cost("unknown"), 0u);
}

TEST(Weight, CompleteExecutionValuatesToZero) {
  EXPECT_EQ(valuation(section2Metric(), section2Trace()), 0);
}

TEST(Weight, Section2WeightIsMaxOfBranches) {
  // W = M(main) + max(M(init) + M(random), 2 * M(search))
  //   = 16 + max(24 + 8, 2 * 40) = 96.
  EXPECT_EQ(weight(section2Metric(), section2Trace()), 96u);
}

TEST(Weight, EmptyTraceWeighsZero) {
  EXPECT_EQ(weight(section2Metric(), Trace{}), 0u);
}

TEST(Weight, PrefixWeightNeverNegative) {
  // A lone ret would drive the valuation negative; the weight uses the
  // empty prefix as the floor.
  StackMetric M;
  M.setCost("f", 8);
  EXPECT_EQ(weight(M, {Event::ret("f")}), 0u);
}

TEST(Weight, ProfileDomination) {
  Trace Deep = {Event::call("f"), Event::call("f"), Event::ret("f"),
                Event::ret("f")};
  Trace Shallow = {Event::call("f"), Event::ret("f")};
  EXPECT_TRUE(pointwiseDominated(callDepthProfile(Shallow),
                                 callDepthProfile(Deep)));
  EXPECT_FALSE(pointwiseDominated(callDepthProfile(Deep),
                                  callDepthProfile(Shallow)));
}

TEST(Refinement, IdenticalTracesRefine) {
  Behavior B = Behavior::converges(section2Trace(), 0);
  EXPECT_TRUE(checkClassicRefinement(B, B).Ok);
  EXPECT_TRUE(checkQuantitativeRefinement(B, B).Ok);
}

TEST(Refinement, ReturnCodeMismatchRejected) {
  Behavior A = Behavior::converges(section2Trace(), 0);
  Behavior B = Behavior::converges(section2Trace(), 1);
  EXPECT_FALSE(checkClassicRefinement(A, B).Ok);
}

TEST(Refinement, IOEventMismatchRejected) {
  Behavior A = Behavior::converges({Event::external("print", {1}, 0)}, 0);
  Behavior B = Behavior::converges({Event::external("print", {2}, 0)}, 0);
  EXPECT_FALSE(checkClassicRefinement(A, B).Ok);
}

TEST(Refinement, DroppingMemoryEventsIsAllowedDownward) {
  // The target (assembly) lost all memory events; its profile (all zeros)
  // is dominated, so quantitative refinement holds.
  Behavior Source = Behavior::converges(section2Trace(), 0);
  Behavior Target = Behavior::converges(pruneMemoryEvents(section2Trace()), 0);
  EXPECT_TRUE(checkQuantitativeRefinement(Target, Source).Ok);
  // The converse direction must fail: the "target" now calls more.
  EXPECT_FALSE(checkQuantitativeRefinement(Source, Target).Ok);
}

TEST(Refinement, DeeperRecursionRejected) {
  Behavior Source = Behavior::converges(
      {Event::call("f"), Event::ret("f")}, 0);
  Behavior Target = Behavior::converges(
      {Event::call("f"), Event::call("f"), Event::ret("f"), Event::ret("f")},
      0);
  EXPECT_FALSE(checkQuantitativeRefinement(Target, Source).Ok);
  EXPECT_FALSE(falsifyWeightDominance(Target, Source).Ok);
}

TEST(Refinement, FalsifierAcceptsTrueDominance) {
  Behavior Source = Behavior::converges(section2Trace(), 0);
  Behavior Target = Behavior::converges(
      {Event::call("main"), Event::call("search"), Event::ret("search"),
       Event::ret("main")},
      0);
  EXPECT_TRUE(falsifyWeightDominance(Target, Source).Ok);
}

TEST(Refinement, FalsifierFindsOneHotCounterexample) {
  // Target swaps a cheap callee for an expensive one; the one-hot metric
  // on "g" exposes it even though the uniform metric does not.
  Behavior Source = Behavior::converges(
      {Event::call("f"), Event::ret("f")}, 0);
  Behavior Target = Behavior::converges(
      {Event::call("g"), Event::ret("g")}, 0);
  EXPECT_FALSE(falsifyWeightDominance(Target, Source).Ok);
}

} // namespace
