//===- tests/PropertyTest.cpp - Property tests on core invariants ---------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized property tests of the lemmas the Coq development proves
/// once and for all:
///
///   * the substitution lemma behind Q:ASSIGN:
///       eval(subst(E, x, t), env) = eval(E, env[x := eval(t, env)]),
///   * monotonicity of assertions in the metric (what makes
///     metric-parametric bounds meaningful),
///   * the entailment relation's laws (reflexivity, weakening,
///     max-domination, transitivity on samples),
///   * trace algebra: weights, pruning, and profile domination.
///
//===----------------------------------------------------------------------===//

#include "events/Refinement.h"
#include "events/Weight.h"
#include "logic/Entail.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::logic;

namespace {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }

private:
  uint64_t State;
};

const char *Vars[] = {"x", "y", "z"};
const char *Funcs[] = {"f", "g"};

/// Each variable has one fixed signedness, as in real programs (the
/// elaborator records it once per declaration).
VarSign signOf(unsigned VarIdx) {
  return VarIdx == 1 ? VarSign::Signed : VarSign::Unsigned;
}

IntTerm randomTerm(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.below(100) < 40) {
    if (R.below(2))
      return IntTermNode::constant(static_cast<int64_t>(R.below(64)) - 8);
    unsigned V = R.below(3);
    return IntTermNode::var(Vars[V], signOf(V));
  }
  switch (R.below(4)) {
  case 0:
    return IntTermNode::add(randomTerm(R, Depth - 1),
                            randomTerm(R, Depth - 1));
  case 1:
    return IntTermNode::sub(randomTerm(R, Depth - 1),
                            randomTerm(R, Depth - 1));
  case 2:
    return IntTermNode::mul(randomTerm(R, Depth - 1),
                            randomTerm(R, Depth - 1));
  default:
    return IntTermNode::divC(randomTerm(R, Depth - 1), 1 + R.below(7));
  }
}

Cmp randomCmp(Rng &R, unsigned Depth) {
  CmpRel Rel = static_cast<CmpRel>(R.below(6));
  return Cmp{randomTerm(R, Depth), Rel, randomTerm(R, Depth)};
}

BoundExpr randomBound(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.below(100) < 30) {
    switch (R.below(3)) {
    case 0:
      return bConst(ExtNat(R.below(128)));
    case 1:
      return bMetric(Funcs[R.below(2)]);
    default:
      return bNatTerm(randomTerm(R, 1));
    }
  }
  switch (R.below(8)) {
  case 0:
    return bAdd(randomBound(R, Depth - 1), randomBound(R, Depth - 1));
  case 1:
    return bMax(randomBound(R, Depth - 1), randomBound(R, Depth - 1));
  case 2:
    return bMul(randomBound(R, Depth - 1), randomBound(R, Depth - 1));
  case 3:
    return bScale(1 + R.below(5), randomBound(R, Depth - 1));
  case 4:
    return bLog2C(randomTerm(R, Depth - 1));
  case 5:
    return bLog2W(randomTerm(R, Depth - 1));
  case 6:
    return bGuard(randomCmp(R, 1), randomBound(R, Depth - 1));
  default:
    return bIte(randomCmp(R, 1), randomBound(R, Depth - 1),
                randomBound(R, Depth - 1));
  }
}

VarEnv randomEnv(Rng &R) {
  VarEnv Env;
  for (const char *V : Vars)
    Env[V] = R.below(2) ? R.below(100)
                        : static_cast<uint32_t>(R.next());
  return Env;
}

StackMetric randomMetric(Rng &R) {
  StackMetric M;
  for (const char *F : Funcs)
    M.setCost(F, R.below(256));
  return M;
}

//===----------------------------------------------------------------------===//
// The substitution lemma (the Q:ASSIGN soundness core)
//===----------------------------------------------------------------------===//

class BoundProperties : public testing::TestWithParam<uint64_t> {};

TEST_P(BoundProperties, SubstitutionLemma) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 200; ++Round) {
    BoundExpr E = randomBound(R, 3);
    IntTerm T = randomTerm(R, 2);
    const char *X = Vars[R.below(3)];
    VarEnv Env = randomEnv(R);
    StackMetric M = randomMetric(R);

    // Checked evaluation declines values outside int64; such a value
    // cannot fit the 32-bit cell either, so the sample carries no
    // information about runtime assignment — skip it like the wrapping
    // cases below.
    auto TVal = evalIntTerm(T, Env);
    if (!TVal)
      continue;
    VarEnv Updated = Env;
    Updated[X] = static_cast<uint32_t>(*TVal);

    // Substitution only matches runtime assignment when the term's value
    // survives the round trip through the 32-bit cell under the
    // variable's signedness; the checker's expression converter rejects
    // the wrapping cases for real programs — filter samples identically.
    unsigned XIdx = X == Vars[0] ? 0u : X == Vars[1] ? 1u : 2u;
    if (signOf(XIdx) == VarSign::Unsigned) {
      if (*TVal < 0 || *TVal > 0xffffffffll)
        continue;
    } else {
      if (*TVal < -0x80000000ll || *TVal > 0x7fffffffll)
        continue;
    }

    ExtNat Lhs = evalBound(substBound(E, X, T), M, Env);
    ExtNat Rhs = evalBound(E, M, Updated);
    EXPECT_EQ(Lhs, Rhs) << "E = " << E->str() << ", " << X << " := "
                        << T->str();
  }
}

TEST_P(BoundProperties, MetricMonotonicity) {
  // Pointwise-larger metrics never shrink a bound: the property that
  // makes "instantiate the symbolic bound with the compiler's metric"
  // meaningful.
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 200; ++Round) {
    BoundExpr E = randomBound(R, 3);
    VarEnv Env = randomEnv(R);
    StackMetric Small = randomMetric(R);
    StackMetric Large;
    for (const auto &[F, C] : Small.costs())
      Large.setCost(F, C + R.below(64));
    EXPECT_LE(evalBound(E, Small, Env), evalBound(E, Large, Env))
        << E->str();
  }
}

TEST_P(BoundProperties, EntailmentReflexiveAndWeakening) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 30; ++Round) {
    BoundExpr E = randomBound(R, 2);
    BoundExpr X = randomBound(R, 2);
    EXPECT_TRUE(entails(E, E)) << E->str();
    EXPECT_TRUE(entails(bAdd(E, X), E)) << E->str();
    EXPECT_TRUE(entails(bMax(E, X), E)) << E->str();
    EXPECT_TRUE(entails(E, bZero()));
  }
}

TEST_P(BoundProperties, SymbolicEntailmentsHoldOnFreshSamples) {
  // The *symbolic* method is sound outright (the sampled method is the
  // documented unverified-analyzer substitution and may over-accept on
  // exotic random expressions): anything it accepts must hold on samples
  // it never drew.
  Rng R(GetParam() * 7919);
  unsigned Accepted = 0;
  for (unsigned Round = 0; Round != 200; ++Round) {
    BoundExpr A = randomBound(R, 2);
    BoundExpr B = randomBound(R, 2);
    EntailOptions Opt;
    Opt.SymbolicOnly = true;
    EntailResult Res = entails(A, B, {}, Opt);
    if (!Res.Holds)
      continue;
    ++Accepted;
    Rng Fresh(GetParam() * 31337 + Round);
    for (unsigned S = 0; S != 50; ++S) {
      VarEnv Env = randomEnv(Fresh);
      StackMetric M = randomMetric(Fresh);
      EXPECT_GE(evalBound(A, M, Env), evalBound(B, M, Env))
          << A->str() << "  >=  " << B->str();
    }
  }
  EXPECT_GT(Accepted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundProperties,
                         testing::Range<uint64_t>(1, 7));

//===----------------------------------------------------------------------===//
// Trace algebra
//===----------------------------------------------------------------------===//

/// A random properly bracketed trace with IO events sprinkled in.
Trace randomBracketedTrace(Rng &R, unsigned MaxEvents) {
  Trace T;
  std::vector<std::string> Open;
  for (unsigned I = 0; I != MaxEvents; ++I) {
    switch (R.below(4)) {
    case 0:
      T.push_back(Event::call(Funcs[R.below(2)]));
      Open.push_back(T.back().function());
      break;
    case 1:
      if (!Open.empty()) {
        T.push_back(Event::ret(Open.back()));
        Open.pop_back();
      }
      break;
    default:
      T.push_back(Event::external("io", {static_cast<int32_t>(R.below(9))},
                                  0));
      break;
    }
  }
  while (!Open.empty()) {
    T.push_back(Event::ret(Open.back()));
    Open.pop_back();
  }
  return T;
}

class TraceProperties : public testing::TestWithParam<uint64_t> {};

TEST_P(TraceProperties, CompleteTracesValuateToZero) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 100; ++Round) {
    Trace T = randomBracketedTrace(R, 24);
    ASSERT_TRUE(isWellBracketed(T));
    StackMetric M = randomMetric(R);
    EXPECT_EQ(valuation(M, T), 0);
    EXPECT_GE(weight(M, T), 0u);
  }
}

TEST_P(TraceProperties, WeightScalesLinearlyWithTheMetric) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 100; ++Round) {
    Trace T = randomBracketedTrace(R, 24);
    StackMetric M = randomMetric(R);
    StackMetric M2;
    for (const auto &[F, C] : M.costs())
      M2.setCost(F, 3 * C);
    EXPECT_EQ(weight(M2, T), 3 * weight(M, T));
  }
}

TEST_P(TraceProperties, SelfRefinementAndPrunedRefinement) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 100; ++Round) {
    Trace T = randomBracketedTrace(R, 24);
    Behavior B = Behavior::converges(T, 0);
    EXPECT_TRUE(checkQuantitativeRefinement(B, B).Ok);
    Behavior Pruned = Behavior::converges(pruneMemoryEvents(T), 0);
    EXPECT_TRUE(checkQuantitativeRefinement(Pruned, B).Ok);
    EXPECT_TRUE(falsifyWeightDominance(Pruned, B, 8).Ok);
  }
}

TEST_P(TraceProperties, DominationIsConsistentWithSampledWeights) {
  // When the pointwise certificate holds, no sampled metric may
  // contradict it.
  Rng R(GetParam() * 104729);
  for (unsigned Round = 0; Round != 60; ++Round) {
    Trace A = randomBracketedTrace(R, 16);
    Trace B = randomBracketedTrace(R, 16);
    if (!pointwiseDominated(callDepthProfile(A), callDepthProfile(B)))
      continue;
    for (unsigned S = 0; S != 20; ++S) {
      StackMetric M = randomMetric(R);
      EXPECT_LE(weight(M, A), weight(M, B));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceProperties,
                         testing::Range<uint64_t>(1, 7));

//===----------------------------------------------------------------------===//
// Saturation algebra
//===----------------------------------------------------------------------===//

class SaturationProperties : public testing::TestWithParam<uint64_t> {};

/// Draws an ExtNat biased toward the dangerous region: the uint64
/// boundary, where checked saturation decides soundness.
ExtNat randomExtNat(Rng &R) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  switch (R.below(5)) {
  case 0:
    return ExtNat::infinity();
  case 1:
    return ExtNat(R.below(100));
  case 2:
    return ExtNat(Max - R.below(100)); // Near the boundary.
  case 3:
    return ExtNat(uint64_t(1) << R.below(64));
  default:
    return ExtNat(R.next());
  }
}

// The semiring-ish laws bounds rely on, now over SATURATING arithmetic:
// they must survive results rounding up to infinity at the boundary.
TEST_P(SaturationProperties, AdditionLaws) {
  Rng R(GetParam() * 0x9e3779b9ull);
  for (unsigned I = 0; I != 400; ++I) {
    ExtNat A = randomExtNat(R), B = randomExtNat(R), C = randomExtNat(R);
    // Commutativity and associativity (saturation keeps both: rounding
    // to the absorbing top element commutes with itself).
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    // a + b >= a: adding potential never loses any (the inequality every
    // Q:CONSEQ application leans on).
    EXPECT_GE(A + B, A);
    EXPECT_GE(A + B, B);
    // Monotonicity in each argument.
    if (B <= C) {
      EXPECT_LE(A + B, A + C);
      EXPECT_LE(A * B, A * C);
      EXPECT_LE(max(A, B), max(A, C));
    }
  }
}

TEST_P(SaturationProperties, MonusAdjunction) {
  Rng R(GetParam() * 0xbf58476d1ce4e5b9ull);
  for (unsigned I = 0; I != 400; ++I) {
    ExtNat A = randomExtNat(R), B = randomExtNat(R), C = randomExtNat(R);
    // Truncated subtraction undoes addition up to truncation, for finite
    // b: (a + b) - b >= a, with equality whenever a + b stays finite.
    // (b = oo collapses both sides: (a + oo) - oo = 0.)
    if (B.isFinite()) {
      EXPECT_GE((A + B).monus(B), A);
      if ((A + B).isFinite())
        EXPECT_EQ((A + B).monus(B), A);
    }
    // The Galois connection used when paying for a frame: a - b <= c iff
    // a <= c + b. Needs a and b finite under saturation — a = oo breaks
    // the backward direction exactly when c + b rounds up to oo (the
    // right side becomes true while oo - b = oo stays above any finite
    // c). That loss is the sound direction: bounds only ever round UP.
    if (A.isFinite() && B.isFinite())
      EXPECT_EQ(A.monus(B) <= C, A <= C + B);
    // The infinite cases pin the absorbing behavior directly.
    if (B.isFinite())
      EXPECT_TRUE(ExtNat::infinity().monus(B).isInfinite());
    EXPECT_EQ(A.monus(ExtNat::infinity()), ExtNat(0));
  }
}

TEST_P(SaturationProperties, FloorAndCeilLog2AgreeOnPowersOfTwo) {
  // Log2W and Log2C bounds coincide exactly when the width is a power of
  // two (binary search over 2^k elements needs exactly k splits).
  for (unsigned K = 0; K != 64; ++K) {
    uint64_t P = uint64_t(1) << K;
    EXPECT_EQ(floorLog2(P), K);
    EXPECT_EQ(ceilLog2(P), K);
  }
  // Off powers of two they differ by exactly one.
  Rng R(GetParam());
  for (unsigned I = 0; I != 200; ++I) {
    uint64_t V = R.next();
    if (V < 2 || (V & (V - 1)) == 0)
      continue;
    EXPECT_EQ(ceilLog2(V), floorLog2(V) + 1) << V;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaturationProperties,
                         testing::Range<uint64_t>(1, 7));

} // namespace
