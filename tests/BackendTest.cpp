//===- tests/BackendTest.cpp - RTL optimization and machine unit tests ----===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "cminor/Lower.h"
#include "frontend/Frontend.h"
#include "measure/StackMeter.h"
#include "rtl/Liveness.h"
#include "rtl/Opt.h"
#include "x86/Machine.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

rtl::Program toRtl(const std::string &Src) {
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(Src, D);
  EXPECT_TRUE(CL) << D.str();
  return rtl::lowerFromCminor(cminor::lowerFromClight(*CL));
}

unsigned countKind(const rtl::Function &F, rtl::InstrKind K) {
  unsigned N = 0;
  for (const rtl::Instr &I : F.Nodes)
    N += I.K == K;
  return N;
}

//===----------------------------------------------------------------------===//
// Constant propagation
//===----------------------------------------------------------------------===//

TEST(RtlOpt, ConstantConditionFoldsTheBranch) {
  rtl::Program P = toRtl(
      "int main() { u32 x = 3; if (x < 10) return 1; return 2; }");
  rtl::Function &Main = P.Functions[0];
  ASSERT_GE(countKind(Main, rtl::InstrKind::Cond), 1u);
  rtl::constantPropagation(Main);
  rtl::deadCodeElimination(Main);
  rtl::cleanupControlFlow(Main);
  EXPECT_EQ(countKind(Main, rtl::InstrKind::Cond), 0u);
  Behavior B = rtl::runProgram(P);
  ASSERT_TRUE(B.converged());
  EXPECT_EQ(B.ReturnCode, 1);
}

TEST(RtlOpt, ArithmeticChainsFoldToOneConstant) {
  rtl::Program P = toRtl("int main() { return (2 + 3) * 4 - 6 / 2; }");
  rtl::optimizeProgram(P);
  rtl::Function &Main = P.Functions[0];
  // Everything folds: one Const feeding the Return.
  EXPECT_EQ(countKind(Main, rtl::InstrKind::Binary), 0u);
  Behavior B = rtl::runProgram(P);
  EXPECT_EQ(B.ReturnCode, 17);
}

TEST(RtlOpt, FaultingDivisionIsNeverFoldedAway) {
  rtl::Program P = toRtl("int main() { int a = 5; int b = 0; "
                         "int unused = a / b; return 1; }");
  rtl::optimizeProgram(P);
  // The division faults; folding it or deleting it as dead would change
  // the program's behavior from fail to conv.
  Behavior B = rtl::runProgram(P);
  EXPECT_TRUE(B.failed());
}

TEST(RtlOpt, DeadPureCodeIsRemoved) {
  rtl::Program P = toRtl("u32 g;\n"
                         "int main() { u32 dead = 1 + 2 + 3; g = 7; "
                         "return (int)g; }");
  rtl::Function &Main = P.Functions[0];
  unsigned Before = static_cast<unsigned>(Main.Nodes.size());
  rtl::optimizeProgram(P);
  EXPECT_LT(P.Functions[0].Nodes.size(), Before);
  Behavior B = rtl::runProgram(P);
  EXPECT_EQ(B.ReturnCode, 7);
}

TEST(RtlOpt, EmptyInfiniteLoopSurvivesCleanup) {
  // A Nop cycle must stay a cycle: optimizing away divergence would be
  // unsound.
  rtl::Program P = toRtl("int main() { while (1) { } return 0; }");
  rtl::optimizeProgram(P);
  Behavior B = rtl::runProgram(P, /*Fuel=*/20'000);
  EXPECT_EQ(B.Kind, BehaviorKind::Diverges);
}

TEST(RtlOpt, LivenessMarksCallArgumentsLive) {
  rtl::Program P = toRtl("u32 f(u32 a, u32 b) { return a + b; }\n"
                         "int main() { return (int)f(1, 2); }");
  const rtl::Function *Main = P.findFunction("main");
  ASSERT_TRUE(Main);
  rtl::LivenessInfo L = rtl::computeLiveness(*Main);
  for (rtl::Node N = 0; N != Main->Nodes.size(); ++N) {
    const rtl::Instr &I = Main->Nodes[N];
    if (I.K != rtl::InstrKind::Call)
      continue;
    for (rtl::Reg A : I.Args)
      EXPECT_TRUE(L.LiveIn[N].count(A));
  }
}

//===----------------------------------------------------------------------===//
// The finite-stack machine's memory discipline
//===----------------------------------------------------------------------===//

x86::Program toAsm(const std::string &Src) {
  rtl::Program R = toRtl(Src);
  rtl::optimizeProgram(R);
  return x86::emitFromMach(mach::lowerFromRtl(R));
}

TEST(Machine, GlobalSegmentBoundsAreExact) {
  // One 4-element array: element 3 works, element 4 is one past the
  // segment and must be a segfault (not silent wraparound).
  x86::Program P = toAsm("u32 a[4];\n"
                         "int main() { u32 i = 3; a[i] = 9; "
                         "return (int)a[3]; }");
  x86::Machine M(P, 4096);
  Behavior B = M.run();
  ASSERT_TRUE(B.converged());
  EXPECT_EQ(B.ReturnCode, 9);

  // The array is the *only* global, so its end is the segment's end and
  // index 4 has nowhere to land.
  x86::Program Bad = toAsm("u32 a[4] = {4, 0, 0, 0};\n"
                           "int main() { return (int)a[a[0]]; }");
  x86::Machine MB(Bad, 4096);
  Behavior BB = MB.run();
  ASSERT_TRUE(BB.failed());
  EXPECT_NE(BB.FailureReason.find("segmentation fault"), std::string::npos);
}

TEST(Machine, MinEspNeverRecordsAboveBaseline) {
  x86::Program P = toAsm("int main() { return 5; }");
  x86::Machine M(P, 4096);
  Behavior B = M.run();
  ASSERT_TRUE(B.converged());
  EXPECT_LE(M.minEsp(), M.baselineEsp());
  EXPECT_EQ(M.measuredStackBytes(),
            P.findFunction("main")->FrameSize);
}

TEST(Machine, ZeroStackSizeStillRunsALeafMainWithEmptyFrame) {
  // sz = 0 means the block is exactly 4 bytes: room for main's return
  // address and nothing else.
  x86::Program P = toAsm("int main() { return 1; }");
  if (P.findFunction("main")->FrameSize == 0) {
    x86::Machine M(P, 0);
    Behavior B = M.run();
    EXPECT_TRUE(B.converged()) << B.str();
  }
}

TEST(Machine, RerunningIsDeterministic) {
  x86::Program P = toAsm("u32 s;\n"
                         "u32 f(u32 n) { s = s * 3 + n; return s; }\n"
                         "int main() { u32 i; for (i = 0; i < 9; i++) "
                         "f(i); return (int)(s & 0xff); }");
  x86::Machine M(P, 1 << 16);
  Behavior B1 = M.run();
  Behavior B2 = M.run(); // run() must reset all machine state.
  ASSERT_TRUE(B1.converged());
  ASSERT_TRUE(B2.converged());
  EXPECT_EQ(B1.ReturnCode, B2.ReturnCode);
  EXPECT_EQ(M.measuredStackBytes(), M.measuredStackBytes());
}

TEST(Machine, FuelExhaustionReportsDivergence) {
  x86::Program P = toAsm("int main() { while (1) { } return 0; }");
  x86::Machine M(P, 4096);
  Behavior B = M.run(/*Fuel=*/5'000);
  EXPECT_EQ(B.Kind, BehaviorKind::Diverges);
  EXPECT_FALSE(M.stackOverflowed());
}

} // namespace
