//===- tests/FrontendTest.cpp - Unit tests for qcc_frontend ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "interp/Interp.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::frontend;

namespace {

std::vector<Token> lex(const std::string &Src, DiagnosticEngine &Diags,
                       std::map<std::string, uint32_t> Defines = {}) {
  Lexer L(Src, Diags, std::move(Defines));
  return L.lexAll();
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, BasicTokens) {
  DiagnosticEngine D;
  auto T = lex("int main() { return 42; }", D);
  ASSERT_FALSE(D.hasErrors());
  ASSERT_EQ(T.size(), 10u); // incl. EndOfFile
  EXPECT_EQ(T[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(T[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[1].Text, "main");
  EXPECT_EQ(T[6].Kind, TokenKind::Number);
  EXPECT_EQ(T[6].Value, 42u);
  EXPECT_EQ(T.back().Kind, TokenKind::EndOfFile);
}

TEST(Lexer, Comments) {
  DiagnosticEngine D;
  auto T = lex("// line\nx /* block\n over lines */ y", D);
  ASSERT_FALSE(D.hasErrors());
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "x");
  EXPECT_EQ(T[1].Text, "y");
}

TEST(Lexer, HexAndSuffixes) {
  DiagnosticEngine D;
  auto T = lex("0xff 17u 1013904223 4294967295u", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(T[0].Value, 255u);
  EXPECT_TRUE(T[0].ForcedUnsigned); // Hex literals read as unsigned.
  EXPECT_EQ(T[1].Value, 17u);
  EXPECT_TRUE(T[1].ForcedUnsigned);
  EXPECT_EQ(T[2].Value, 1013904223u);
  EXPECT_FALSE(T[2].ForcedUnsigned);
  EXPECT_EQ(T[3].Value, 4294967295u);
  EXPECT_TRUE(T[3].ForcedUnsigned);
}

TEST(Lexer, CharLiteral) {
  DiagnosticEngine D;
  auto T = lex("'a' '\\n'", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(T[0].Value, 97u);
  EXPECT_EQ(T[1].Value, 10u);
}

TEST(Lexer, DefineSubstitution) {
  DiagnosticEngine D;
  auto T = lex("#define ALEN 4096\nALEN", D);
  ASSERT_FALSE(D.hasErrors());
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0].Kind, TokenKind::Number);
  EXPECT_EQ(T[0].Value, 4096u);
}

TEST(Lexer, DefineOverride) {
  // The driver's -D equivalent takes precedence over the source #define.
  DiagnosticEngine D;
  auto T = lex("#define ALEN 4096\nALEN", D, {{"ALEN", 64}});
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(T[0].Value, 64u);
}

TEST(Lexer, ParenthesizedDefineBody) {
  DiagnosticEngine D;
  auto T = lex("#define N (17)\nN", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(T[0].Value, 17u);
}

TEST(Lexer, IncludeIsIgnoredSilently) {
  DiagnosticEngine D;
  auto T = lex("#include <stdio.h>\nx", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(T[0].Text, "x");
}

TEST(Lexer, MultiCharOperators) {
  DiagnosticEngine D;
  auto T = lex("<<= >>= << >> <= >= == != && || ++ -- += -=", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(T[0].Kind, TokenKind::ShlAssign);
  EXPECT_EQ(T[1].Kind, TokenKind::ShrAssign);
  EXPECT_EQ(T[2].Kind, TokenKind::Shl);
  EXPECT_EQ(T[3].Kind, TokenKind::Shr);
  EXPECT_EQ(T[4].Kind, TokenKind::Le);
  EXPECT_EQ(T[5].Kind, TokenKind::Ge);
  EXPECT_EQ(T[6].Kind, TokenKind::EqEq);
  EXPECT_EQ(T[7].Kind, TokenKind::NotEq);
  EXPECT_EQ(T[8].Kind, TokenKind::AmpAmp);
  EXPECT_EQ(T[9].Kind, TokenKind::PipePipe);
  EXPECT_EQ(T[10].Kind, TokenKind::PlusPlus);
  EXPECT_EQ(T[11].Kind, TokenKind::MinusMinus);
  EXPECT_EQ(T[12].Kind, TokenKind::PlusAssign);
  EXPECT_EQ(T[13].Kind, TokenKind::MinusAssign);
}

TEST(Lexer, BadCharacterRecovers) {
  DiagnosticEngine D;
  auto T = lex("x @ y", D);
  EXPECT_TRUE(D.hasErrors());
  ASSERT_EQ(T.size(), 3u); // x, y, eof — '@' skipped.
}

//===----------------------------------------------------------------------===//
// Parser + elaborator (via parseProgram)
//===----------------------------------------------------------------------===//

std::optional<clight::Program>
parse(const std::string &Src, std::map<std::string, uint32_t> Defines = {}) {
  DiagnosticEngine D;
  auto P = parseProgram(Src, D, std::move(Defines));
  if (!P)
    ADD_FAILURE() << D.str();
  return P;
}

bool parseFails(const std::string &Src, std::string *FirstError = nullptr) {
  DiagnosticEngine D;
  auto P = parseProgram(Src, D);
  if (P)
    return false;
  if (FirstError && !D.diagnostics().empty())
    *FirstError = D.diagnostics()[0].str();
  return true;
}

TEST(Parser, MinimalMain) {
  auto P = parse("int main() { return 0; }");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_EQ(P->Functions[0].Name, "main");
  EXPECT_TRUE(P->Functions[0].ReturnsValue);
}

TEST(Parser, TypedefU32) {
  auto P = parse("typedef unsigned int myword;\n"
                 "myword g;\n"
                 "int main() { g = 3; return 0; }");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Globals.size(), 1u);
  EXPECT_EQ(P->Globals[0].Sign, clight::Signedness::Unsigned);
}

TEST(Parser, GlobalsAndArrays) {
  auto P = parse("#define ALEN 16\n"
                 "u32 a[ALEN];\n"
                 "int table[] = {1, 2, 3};\n"
                 "u32 seed = 42;\n"
                 "int main() { return 0; }");
  ASSERT_TRUE(P);
  const clight::GlobalVar *A = P->findGlobal("a");
  ASSERT_TRUE(A);
  EXPECT_TRUE(A->IsArray);
  EXPECT_EQ(A->Size, 16u);
  const clight::GlobalVar *Table = P->findGlobal("table");
  ASSERT_TRUE(Table);
  EXPECT_EQ(Table->Size, 3u);
  EXPECT_EQ(Table->Init[2], 3u);
  const clight::GlobalVar *Seed = P->findGlobal("seed");
  ASSERT_TRUE(Seed);
  EXPECT_FALSE(Seed->IsArray);
  EXPECT_EQ(Seed->Init[0], 42u);
}

TEST(Parser, MultipleDeclarators) {
  auto P = parse("int main() { u32 i, rnd, prev = 7; return prev; }");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Functions[0].Locals.size(), 3u);
}

TEST(Parser, ContinueRejected) {
  std::string Err;
  ASSERT_TRUE(parseFails(
      "int main() { while (1) { continue; } return 0; }", &Err));
  EXPECT_NE(Err.find("outside the verified subset"), std::string::npos);
}

TEST(Parser, SwitchRejected) {
  EXPECT_TRUE(parseFails("int main() { switch (1) {} return 0; }"));
}

TEST(Parser, GotoRejected) {
  EXPECT_TRUE(parseFails("int main() { goto l; l: return 0; }"));
}

TEST(Parser, PointersRejected) {
  EXPECT_TRUE(parseFails("int main() { int x; x = *0; return 0; }"));
}

TEST(Parser, LocalArraysRejected) {
  std::string Err;
  ASSERT_TRUE(parseFails("int main() { u32 buf[4]; return 0; }", &Err));
  EXPECT_NE(Err.find("global array"), std::string::npos);
}

TEST(Parser, UndefinedCallRejected) {
  EXPECT_TRUE(parseFails("int main() { return nothere(); }"));
}

TEST(Parser, ArityMismatchRejected) {
  EXPECT_TRUE(parseFails(
      "u32 f(u32 x) { return x; } int main() { return f(1, 2); }"));
}

TEST(Parser, VoidValueUseRejected) {
  EXPECT_TRUE(parseFails(
      "void f() { } int main() { return f(); }"));
}

TEST(Parser, DuplicateLocalRejected) {
  EXPECT_TRUE(parseFails("int main() { u32 x; u32 x; return 0; }"));
}

TEST(Parser, MissingMainRejected) {
  EXPECT_TRUE(parseFails("u32 f() { return 1; }"));
}

TEST(Parser, ExternDeclaration) {
  auto P = parse("extern void print(int);\n"
                 "int main() { print(3); return 0; }");
  ASSERT_TRUE(P);
  ASSERT_EQ(P->Externals.size(), 1u);
  EXPECT_EQ(P->Externals[0].Name, "print");
  EXPECT_EQ(P->Externals[0].Arity, 1u);
  EXPECT_FALSE(P->Externals[0].HasResult);
}

TEST(Parser, CastsAreIgnored) {
  auto P = parse("int main() { u32 x = (u32) 5; return (int) x; }");
  ASSERT_TRUE(P);
}

TEST(Elaborator, WhileBecomesLoop) {
  auto P = parse("int main() { u32 i = 0; while (i < 3) { i = i + 1; } "
                 "return i; }");
  ASSERT_TRUE(P);
  std::string Text = P->Functions[0].Body->str();
  EXPECT_NE(Text.find("loop {"), std::string::npos);
  EXPECT_NE(Text.find("break;"), std::string::npos);
}

TEST(Elaborator, SignednessSelection) {
  auto P = parse("int main() { int a = -6; u32 b = 2; int c = 4;\n"
                 "  u32 q = b / 2; int r = a / c; return q + r; }");
  ASSERT_TRUE(P);
  std::string Text = P->Functions[0].Body->str();
  EXPECT_NE(Text.find("/u"), std::string::npos);
  EXPECT_NE(Text.find("/s"), std::string::npos);
}

TEST(Elaborator, CallHoistingFromExpression) {
  auto P = parse("u32 g() { return 7; }\n"
                 "int main() { u32 x = g() + 1; return x; }");
  ASSERT_TRUE(P);
  std::string Text = P->Functions.back().Body->str();
  // The call lands in a temporary before the addition.
  EXPECT_NE(Text.find("$t0 = g()"), std::string::npos);
}

TEST(Elaborator, ShortCircuitPureStaysExpression) {
  auto P = parse("int main() { int a = 1; int b = 0; "
                 "int c = a && b; return c; }");
  ASSERT_TRUE(P);
  std::string Text = P->Functions[0].Body->str();
  EXPECT_NE(Text.find("?"), std::string::npos); // Cond expression form.
}

TEST(Elaborator, ShortCircuitWithCallMaterializesIf) {
  auto P = parse("u32 g() { return 1; }\n"
                 "int main() { int a = 0; int c = a && g(); return c; }");
  ASSERT_TRUE(P);
  std::string Text = P->Functions.back().Body->str();
  EXPECT_NE(Text.find("if ("), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Additional lexer/parser edges
//===----------------------------------------------------------------------===//

namespace {

TEST(Lexer, DirectiveCommentsAreStripped) {
  DiagnosticEngine D;
  auto T = lex("#define ONE 4096 /* 20.12 fixed point */\n"
               "#define TWO 7 // inline comment\nONE TWO", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Value, 4096u);
  EXPECT_EQ(T[1].Value, 7u);
}

TEST(Lexer, BadDefineBodyIsAnError) {
  DiagnosticEngine D;
  lex("#define N foo\nN", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Parser, DoWhileRequiresTrailingSemicolon) {
  EXPECT_TRUE(parseFails(
      "int main() { u32 i = 0; do { i++; } while (i < 3) return 0; }"));
}

TEST(Parser, ExternVoidParameterList) {
  auto P = parse("extern u32 now(void);\n"
                 "int main() { u32 t = now(); return (int)t; }");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Externals[0].Arity, 0u);
  EXPECT_TRUE(P->Externals[0].HasResult);
}

TEST(Parser, TooManyArrayInitializersRejected) {
  EXPECT_TRUE(parseFails("u32 a[2] = {1, 2, 3};\nint main() { return 0; }"));
}

TEST(Parser, ForwardDeclarationThenDefinition) {
  auto P = parse("u32 f(u32 x);\n"
                 "int main() { return (int)f(3); }\n"
                 "u32 f(u32 x) { return x + 1; }");
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->findFunction("f"));
}

TEST(Parser, NestedTernaryAndPrecedence) {
  auto P = parse("int main() { int a = 2;\n"
                 "  return a == 1 ? 10 : a == 2 ? 20 : 30; }");
  ASSERT_TRUE(P);
  Behavior B = qcc::interp::runProgram(*P);
  EXPECT_EQ(B.ReturnCode, 20);
}

TEST(Parser, ShiftPrecedenceBelowAdditive) {
  auto P = parse("int main() { return 1 << 2 + 1; }"); // 1 << 3 == 8.
  ASSERT_TRUE(P);
  EXPECT_EQ(qcc::interp::runProgram(*P).ReturnCode, 8);
}

} // namespace
