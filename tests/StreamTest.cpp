//===- tests/StreamTest.cpp - Streaming-vs-recording differentials --------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming trace pipeline must be *observationally identical* to
/// the materialized one: same weights under every metric, same summaries,
/// and bit-identical refinement / falsification verdicts. These tests
/// check that on random synthetic traces (bracketed and ill-bracketed),
/// on every corpus program at every pipeline level, and on the fuzz
/// regression seeds. A final test hammers the shared SymbolTable and the
/// sinks from many threads (the batch engine compiles concurrently, so
/// this file rides in the TSan `batch` slice).
///
//===----------------------------------------------------------------------===//

#include "cminor/CminorInterp.h"
#include "driver/Compiler.h"
#include "events/Refinement.h"
#include "events/SymbolTable.h"
#include "events/TraceSink.h"
#include "events/Weight.h"
#include "interp/Interp.h"
#include "mach/Mach.h"
#include "programs/Corpus.h"
#include "rtl/Rtl.h"
#include "x86/Machine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace qcc;

namespace {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }

private:
  uint64_t State;
};

const char *Funcs[] = {"f", "g", "h"};

Trace randomBracketedTrace(Rng &R, unsigned MaxEvents) {
  Trace T;
  std::vector<std::string> Open;
  for (unsigned I = 0; I != MaxEvents; ++I) {
    switch (R.below(4)) {
    case 0:
      T.push_back(Event::call(Funcs[R.below(3)]));
      Open.push_back(T.back().function());
      break;
    case 1:
      if (!Open.empty()) {
        T.push_back(Event::ret(Open.back()));
        Open.pop_back();
      }
      break;
    default:
      T.push_back(
          Event::external("io", {static_cast<int32_t>(R.below(9))}, 0));
      break;
    }
  }
  if (R.below(2)) // Half the time leave the calls open.
    while (!Open.empty()) {
      T.push_back(Event::ret(Open.back()));
      Open.pop_back();
    }
  return T;
}

/// Arbitrary event soup: returns without matching calls, interleaved
/// closings — everything the accumulators claim to handle.
Trace randomIllBracketedTrace(Rng &R, unsigned MaxEvents) {
  Trace T;
  for (unsigned I = 0; I != MaxEvents; ++I) {
    switch (R.below(3)) {
    case 0:
      T.push_back(Event::call(Funcs[R.below(3)]));
      break;
    case 1:
      T.push_back(Event::ret(Funcs[R.below(3)]));
      break;
    default:
      T.push_back(
          Event::external("io", {static_cast<int32_t>(R.below(9))}, 0));
      break;
    }
  }
  return T;
}

StackMetric randomMetric(Rng &R) {
  StackMetric M;
  for (const char *F : Funcs)
    M.setCost(F, R.below(256));
  M.setCost("io", R.below(256));
  return M;
}

void expectSummaryEq(const RefinementSummary &A, const RefinementSummary &B,
                     const std::string &What) {
  EXPECT_EQ(A.Kind, B.Kind) << What;
  EXPECT_EQ(A.ReturnCode, B.ReturnCode) << What;
  EXPECT_EQ(A.FailureReason, B.FailureReason) << What;
  EXPECT_EQ(A.EventCount, B.EventCount) << What;
  EXPECT_EQ(A.IOHashA, B.IOHashA) << What;
  EXPECT_EQ(A.IOHashB, B.IOHashB) << What;
  EXPECT_EQ(A.IOCount, B.IOCount) << What;
  EXPECT_EQ(A.MemHashA, B.MemHashA) << What;
  EXPECT_EQ(A.MemHashB, B.MemHashB) << What;
  EXPECT_EQ(A.MemCount, B.MemCount) << What;
  EXPECT_EQ(A.Alphabet, B.Alphabet) << What;
  EXPECT_EQ(A.Peaks, B.Peaks) << What;
}

//===----------------------------------------------------------------------===//
// Synthetic traces
//===----------------------------------------------------------------------===//

class StreamDifferential : public testing::TestWithParam<uint64_t> {};

TEST_P(StreamDifferential, OnlineWeightMatchesMaterialized) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 200; ++Round) {
    Trace T = Round % 2 ? randomBracketedTrace(R, 32)
                        : randomIllBracketedTrace(R, 32);
    StackMetric M = randomMetric(R);
    WeightAccumulator W(M);
    for (const Event &E : T)
      W.onEvent(E);
    EXPECT_EQ(W.weight(), weight(M, T));
    EXPECT_EQ(W.valuation(), valuation(M, T));
  }
}

TEST_P(StreamDifferential, PeakWeightMatchesMaterializedUnderAnyMetric) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 200; ++Round) {
    Trace T = Round % 2 ? randomBracketedTrace(R, 32)
                        : randomIllBracketedTrace(R, 32);
    RefinementSummary S = summarize(Behavior::converges(T, 0));
    for (unsigned K = 0; K != 8; ++K) {
      StackMetric M = randomMetric(R);
      EXPECT_EQ(weight(M, S), weight(M, T)) << "round " << Round;
    }
  }
}

TEST_P(StreamDifferential, StreamedSummaryEqualsReplayedSummary) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 100; ++Round) {
    Trace T = Round % 2 ? randomBracketedTrace(R, 32)
                        : randomIllBracketedTrace(R, 32);
    Behavior B = Behavior::converges(T, static_cast<int32_t>(R.below(5)));
    // Stream the events directly...
    RefinementAccumulator A;
    for (const Event &E : T)
      A.onEvent(E);
    Outcome O = Outcome::converges(B.ReturnCode);
    // ...and compare against the replay bridge.
    expectSummaryEq(A.finish(O), summarize(B), "round " +
                                                   std::to_string(Round));
  }
}

TEST_P(StreamDifferential, RefinementVerdictsMatchOnRandomPairs) {
  Rng R(GetParam());
  for (unsigned Round = 0; Round != 150; ++Round) {
    Trace TT = Round % 2 ? randomBracketedTrace(R, 24)
                         : randomIllBracketedTrace(R, 24);
    Trace TS = Round % 3 ? randomBracketedTrace(R, 24)
                         : randomIllBracketedTrace(R, 24);
    // A third of the rounds compare a trace against itself or its pruned
    // form so the OK paths (certificates 1 and 2) are exercised too.
    if (Round % 3 == 0)
      TS = TT;
    if (Round % 7 == 0)
      TT = pruneMemoryEvents(TS);
    Behavior BT = Behavior::converges(TT, 0);
    Behavior BS = Behavior::converges(TS, 0);
    RefinementSummary ST = summarize(BT);
    RefinementSummary SS = summarize(BS);

    EXPECT_EQ(checkClassicRefinement(BT, BS).Ok,
              checkClassicRefinement(ST, SS).Ok)
        << "round " << Round;
    EXPECT_EQ(checkQuantitativeRefinement(BT, BS).Ok,
              checkQuantitativeRefinement(ST, SS).Ok)
        << "round " << Round;

    RefinementResult FT = falsifyWeightDominance(BT, BS);
    RefinementResult FS = falsifyWeightDominance(ST, SS);
    EXPECT_EQ(FT.Ok, FS.Ok) << "round " << Round;
    // Same deterministic metric stream: the *first* falsifying metric —
    // and hence the whole message — must agree, not just the verdict.
    EXPECT_EQ(FT.Reason, FS.Reason) << "round " << Round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamDifferential,
                         testing::Range<uint64_t>(1, 6));

TEST(StreamDifferential, FalsifierFindsTheSameCounterexample) {
  // Target strictly deeper than source: domination fails and both
  // falsifiers must report the identical first falsifying metric.
  Trace Deep = {Event::call("f"), Event::call("f"), Event::ret("f"),
                Event::ret("f")};
  Trace Shallow = {Event::call("f"), Event::ret("f")};
  Behavior BT = Behavior::converges(Deep, 0);
  Behavior BS = Behavior::converges(Shallow, 0);
  RefinementResult FT = falsifyWeightDominance(BT, BS);
  RefinementResult FS = falsifyWeightDominance(summarize(BT), summarize(BS));
  EXPECT_FALSE(FT.Ok);
  EXPECT_FALSE(FS.Ok);
  EXPECT_EQ(FT.Reason, FS.Reason);
}

//===----------------------------------------------------------------------===//
// The pipeline levels on the evaluation corpus
//===----------------------------------------------------------------------===//

/// Runs one compiled program's five levels twice — once recording, once
/// streaming — and checks that summaries and per-pass verdicts agree.
void checkCompilationDifferential(const driver::Compilation &C,
                                  const std::string &Id) {
  constexpr uint64_t Fuel = 50'000'000;

  struct Level {
    const char *Name;
    Behavior Recorded;
    RefinementSummary Streamed;
  };
  std::vector<Level> Levels;

  {
    RefinementAccumulator A;
    Outcome O = interp::runProgram(C.Clight, A, Fuel);
    Levels.push_back({"clight", interp::runProgram(C.Clight, Fuel),
                      A.finish(O)});
  }
  {
    RefinementAccumulator A;
    Outcome O = cminor::runProgram(C.Cminor, A, Fuel);
    Levels.push_back({"cminor", cminor::runProgram(C.Cminor, Fuel),
                      A.finish(O)});
  }
  {
    RefinementAccumulator A;
    Outcome O = rtl::runProgram(C.Rtl, A, Fuel);
    Levels.push_back({"rtl", rtl::runProgram(C.Rtl, Fuel), A.finish(O)});
  }
  {
    RefinementAccumulator A;
    Outcome O = mach::runProgram(C.Mach, A, Fuel * 4);
    Levels.push_back({"mach", mach::runProgram(C.Mach, Fuel * 4),
                      A.finish(O)});
  }
  {
    x86::Machine M(C.Asm, measure::MeasureStackSize);
    RefinementAccumulator A;
    Outcome O = M.run(A, Fuel * 4);
    Levels.push_back({"asm", M.run(Fuel * 4), A.finish(O)});
  }

  for (const Level &L : Levels)
    expectSummaryEq(L.Streamed, summarize(L.Recorded),
                    Id + " @ " + L.Name);

  for (size_t I = 1; I != Levels.size(); ++I) {
    const Level &Target = Levels[I];
    const Level &Source = Levels[I - 1];
    RefinementResult RecV =
        checkQuantitativeRefinement(Target.Recorded, Source.Recorded);
    RefinementResult StrV =
        checkQuantitativeRefinement(Target.Streamed, Source.Streamed);
    EXPECT_EQ(RecV.Ok, StrV.Ok)
        << Id << ": " << Source.Name << " -> " << Target.Name << "\n"
        << "recorded: " << RecV.Reason << "\nstreamed: " << StrV.Reason;
    EXPECT_TRUE(StrV.Ok) << Id << ": " << Source.Name << " -> "
                         << Target.Name << ": " << StrV.Reason;

    RefinementResult RecF =
        falsifyWeightDominance(Target.Recorded, Source.Recorded);
    RefinementResult StrF =
        falsifyWeightDominance(Target.Streamed, Source.Streamed);
    EXPECT_EQ(RecF.Ok, StrF.Ok)
        << Id << ": " << Source.Name << " -> " << Target.Name;
    EXPECT_EQ(RecF.Reason, StrF.Reason)
        << Id << ": " << Source.Name << " -> " << Target.Name;
  }
}

TEST(StreamCorpus, EveryLevelOfEveryProgramMatches) {
  for (const programs::VerificationUnit &U : programs::verificationCorpus()) {
    DiagnosticEngine Diags;
    driver::CompilerOptions Options;
    Options.AnalyzeBounds = false;       // Focus on the event pipeline.
    Options.ValidateTranslation = false; // We replay the levels ourselves.
    auto C = driver::compile(U.Source, Diags, Options);
    ASSERT_TRUE(C) << U.Id << ": " << Diags.str();
    checkCompilationDifferential(*C, U.Id);
  }
}

TEST(StreamCorpus, FuzzSeedsMatch) {
  namespace fs = std::filesystem;
  const char *Dir = QCC_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;
  unsigned Compiled = 0;
  for (const auto &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".c")
      continue;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In.good()) << Entry.path();
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    DiagnosticEngine Diags;
    driver::CompilerOptions Options;
    Options.AnalyzeBounds = false;
    Options.ValidateTranslation = false;
    auto C = driver::compile(Buffer.str(), Diags, Options);
    if (!C)
      continue; // Diagnosed seeds have no behaviors to compare.
    ++Compiled;
    checkCompilationDifferential(*C, Entry.path().filename().string());
  }
  EXPECT_GE(Compiled, 3u) << "fuzz corpus lost its compilable seeds";
}

//===----------------------------------------------------------------------===//
// Thread-safety of the shared symbol table and the sinks
//===----------------------------------------------------------------------===//

// The batch engine compiles on a work-stealing pool, so every sink and
// the global SymbolTable run under concurrency. This test recreates that
// contention pattern directly; it is labeled `batch` so the TSan
// configuration (cmake -DQCC_SANITIZE=thread; ctest -L batch) covers it.
TEST(StreamConcurrency, SymbolTableAndSinksAreRaceFree) {
  const std::string Source = "u32 dup(u32 n) {\n"
                             "  if (n == 0) { return 0; }\n"
                             "  return dup(n - 1) + 1;\n"
                             "}\n"
                             "int main() { return (int)dup(24); }\n";
  DiagnosticEngine Diags;
  driver::CompilerOptions Options;
  Options.AnalyzeBounds = false;
  Options.ValidateTranslation = false;
  auto C = driver::compile(Source, Diags, Options);
  ASSERT_TRUE(C) << Diags.str();

  RefinementSummary Reference = summarize(interp::runProgram(C->Clight));

  constexpr unsigned Threads = 8;
  constexpr unsigned Rounds = 16;
  std::vector<std::thread> Pool;
  std::vector<unsigned> Failures(Threads, 0);
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned I = 0; I != Rounds; ++I) {
        // Contend on interning: fresh names plus everybody's shared ones.
        SymbolTable::global().intern("shared_" + std::to_string(I));
        SymbolTable::global().intern("t" + std::to_string(T) + "_" +
                                     std::to_string(I));
        RefinementAccumulator A;
        Outcome O = interp::runProgram(C->Clight, A);
        RefinementSummary S = A.finish(O);
        if (S.MemHashA != Reference.MemHashA ||
            S.MemCount != Reference.MemCount ||
            S.Peaks != Reference.Peaks)
          ++Failures[T];
      }
    });
  for (std::thread &Th : Pool)
    Th.join();
  for (unsigned T = 0; T != Threads; ++T)
    EXPECT_EQ(Failures[T], 0u) << "thread " << T;
}

} // namespace
