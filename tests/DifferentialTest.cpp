//===- tests/DifferentialTest.cpp - Randomized differential testing -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Csmith-style differential testing (cf. the paper's reference to Yang
/// et al., PLDI 2011): a deterministic generator produces random programs
/// in the verified subset; each is executed at every pipeline level and
/// on the finite-stack machine. Checked per program:
///
///   * exit codes agree across all six semantics (or all levels fail),
///   * quantitative refinement holds between adjacent levels, backed by
///     the randomized-metric falsifier,
///   * the automatic analyzer bounds every function, and the instantiated
///     main bound covers both the Mach trace weight and the machine's
///     measured consumption,
///   * Theorem 1: the program runs at stack size bound - 4.
///
/// Programs are built to terminate (loops are bounded by construction)
/// and mostly to avoid traps (indices are masked; divisors get `| 1`),
/// with a controlled fraction of potentially trapping divisions to
/// exercise the fail-fail agreement path.
///
//===----------------------------------------------------------------------===//

#include "batch/ThreadPool.h"
#include "cminor/CminorInterp.h"
#include "rtl/Inline.h"
#include "cminor/Lower.h"
#include "driver/Compiler.h"
#include "events/Refinement.h"
#include "frontend/Frontend.h"
#include "fuzz/Generator.h"
#include "interp/Interp.h"
#include "rtl/Opt.h"
#include "x86/Machine.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

// The generator lives in src/fuzz (shared with the --fuzz harness);
// same splitmix64 draws, so historical seeds reproduce identically.
using fuzz::ProgramGenerator;

/// Runs one generated program through every level; returns a failure
/// explanation or the empty string.
std::string checkOneProgram(uint64_t Seed) {
  std::string Source = ProgramGenerator(Seed).generate();
  auto Explain = [&Source](const std::string &What) {
    return What + "\n--- program ---\n" + Source;
  };

  DiagnosticEngine D;
  auto CL = frontend::parseProgram(Source, D);
  if (!CL)
    return Explain("generated program does not parse: " + D.str());

  constexpr uint64_t Fuel = 3'000'000;
  Behavior BClight = interp::runProgram(*CL, Fuel);
  if (BClight.Kind == BehaviorKind::Diverges)
    return Explain("generated program exhausted fuel (generator bug)");

  cminor::Program CM = cminor::lowerFromClight(*CL);
  Behavior BCminor = cminor::runProgram(CM, Fuel);
  rtl::Program RT = rtl::lowerFromCminor(CM);
  Behavior BRtl = rtl::runProgram(RT, Fuel);
  rtl::Program RTO = rtl::lowerFromCminor(CM);
  rtl::optimizeProgram(RTO);
  Behavior BRtlOpt = rtl::runProgram(RTO, Fuel);
  mach::Program MP = mach::lowerFromRtl(RTO);
  Behavior BMach = mach::runProgram(MP, Fuel * 8);

  struct Level {
    const char *Name;
    const Behavior *B;
  };
  const Level Levels[] = {{"clight", &BClight},
                          {"cminor", &BCminor},
                          {"rtl", &BRtl},
                          {"rtl-opt", &BRtlOpt},
                          {"mach", &BMach}};
  for (size_t I = 1; I != 5; ++I) {
    RefinementResult QR =
        checkQuantitativeRefinement(*Levels[I].B, *Levels[I - 1].B);
    if (!QR.Ok)
      return Explain(std::string("refinement ") + Levels[I - 1].Name +
                     " -> " + Levels[I].Name + ": " + QR.Reason);
    RefinementResult FW =
        falsifyWeightDominance(*Levels[I].B, *Levels[I - 1].B, 16);
    if (!FW.Ok)
      return Explain(std::string("metric falsifier ") + Levels[I].Name +
                     ": " + FW.Reason);
  }

  x86::Program AP = x86::emitFromMach(MP);
  x86::Machine M(AP, measure::MeasureStackSize);
  Behavior BAsm = M.run(Fuel * 8);
  if (BClight.converged()) {
    if (!BAsm.converged())
      return Explain("clight converged but asm " + BAsm.str());
    if (BAsm.ReturnCode != BClight.ReturnCode)
      return Explain("exit codes differ: clight " +
                     std::to_string(BClight.ReturnCode) + " vs asm " +
                     std::to_string(BAsm.ReturnCode));
    if (pruneMemoryEvents(BAsm.Events) !=
        pruneMemoryEvents(BClight.Events))
      return Explain("I/O traces differ between clight and asm");
  } else if (BAsm.converged()) {
    // A failing source discharges Theorem 1 entirely: the machine has no
    // bounds checks, so an out-of-bounds source program may silently read
    // or write some other global and run on. Division traps, however,
    // exist at every level and must be preserved.
    if (BClight.FailureReason.find("out of bounds") == std::string::npos)
      return Explain("clight failed (" + BClight.FailureReason +
                     ") but asm converged");
  }

  // The optimizing pipelines (inlining; tail calls are no-ops here but
  // exercise the recognizer) must agree on converging runs.
  if (BClight.converged()) {
    rtl::Program RInl = rtl::lowerFromCminor(CM);
    rtl::inlineFunctions(RInl);
    rtl::optimizeProgram(RInl);
    mach::LowerOptions TailOpts;
    TailOpts.TailCalls = true;
    mach::Program MInl = mach::lowerFromRtl(RInl, TailOpts);
    x86::Program AInl = x86::emitFromMach(MInl);
    x86::Machine MachineInl(AInl, measure::MeasureStackSize);
    Behavior BInl = MachineInl.run(Fuel * 8);
    if (!BInl.converged())
      return Explain("inlined+tailcall pipeline failed: " + BInl.str());
    if (BInl.ReturnCode != BClight.ReturnCode)
      return Explain("inlined+tailcall exit code " +
                     std::to_string(BInl.ReturnCode) + " vs clight " +
                     std::to_string(BClight.ReturnCode));
    if (pruneMemoryEvents(BInl.Events) != pruneMemoryEvents(BClight.Events))
      return Explain("inlined+tailcall I/O trace differs");
  }

  // Generated programs have no recursion: the analyzer must bound
  // everything, and the bound must cover both the Mach weight and the
  // machine measurement.
  DiagnosticEngine AD;
  auto Bounds = analysis::analyzeProgram(*CL, AD);
  if (!Bounds.SkippedRecursive.empty())
    return Explain("analyzer skipped functions in a recursion-free "
                   "program");
  logic::BoundExpr MainBound = Bounds.callBound("main");
  if (!MainBound)
    return Explain("no main bound: " + AD.str());
  StackMetric Metric = MP.costMetric();
  ExtNat BoundVal = logic::evalBound(MainBound, Metric, {});
  if (BoundVal.isInfinite())
    return Explain("main bound is infinite");
  if (BClight.converged()) {
    uint64_t MachWeight = weight(Metric, BMach.Events);
    if (BoundVal.finiteValue() < MachWeight)
      return Explain("bound " + BoundVal.str() + " < mach weight " +
                     std::to_string(MachWeight));
    uint32_t Measured = M.measuredStackBytes();
    if (BoundVal.finiteValue() < Measured)
      return Explain("bound " + BoundVal.str() + " < measured " +
                     std::to_string(Measured));
    // Theorem 1 at the bound.
    x86::Machine Clamped(
        AP, static_cast<uint32_t>(BoundVal.finiteValue()) - 4);
    Behavior BClamped = Clamped.run(Fuel * 8);
    if (!BClamped.converged())
      return Explain("program failed at its verified stack bound: " +
                     BClamped.str());
  }
  return "";
}

class Differential : public testing::TestWithParam<uint64_t> {};

TEST_P(Differential, AllLevelsAgree) {
  // 16 seeds per gtest case, 12 cases = 192 random programs, fanned out
  // across cores on the batch engine's work-stealing pool (each seed is
  // an independent pipeline; see support/Diagnostics.h for the contract).
  constexpr uint64_t Seeds = 16;
  std::vector<std::string> Failures(Seeds);
  batch::WorkStealingPool Pool(
      std::max(1u, std::thread::hardware_concurrency()));
  const uint64_t Base = GetParam() * 1000;
  Pool.parallelFor(Seeds, [&Failures, Base](size_t Sub) {
    Failures[Sub] = checkOneProgram(Base + Sub);
  });
  for (uint64_t Sub = 0; Sub != Seeds; ++Sub)
    ASSERT_TRUE(Failures[Sub].empty())
        << "seed " << Base + Sub << ": " << Failures[Sub];
}

INSTANTIATE_TEST_SUITE_P(Fuzz, Differential,
                         testing::Range<uint64_t>(1, 13));

} // namespace
