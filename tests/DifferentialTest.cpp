//===- tests/DifferentialTest.cpp - Randomized differential testing -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Csmith-style differential testing (cf. the paper's reference to Yang
/// et al., PLDI 2011): a deterministic generator produces random programs
/// in the verified subset; each is executed at every pipeline level and
/// on the finite-stack machine. Checked per program:
///
///   * exit codes agree across all six semantics (or all levels fail),
///   * quantitative refinement holds between adjacent levels, backed by
///     the randomized-metric falsifier,
///   * the automatic analyzer bounds every function, and the instantiated
///     main bound covers both the Mach trace weight and the machine's
///     measured consumption,
///   * Theorem 1: the program runs at stack size bound - 4.
///
/// Programs are built to terminate (loops are bounded by construction)
/// and mostly to avoid traps (indices are masked; divisors get `| 1`),
/// with a controlled fraction of potentially trapping divisions to
/// exercise the fail-fail agreement path.
///
//===----------------------------------------------------------------------===//

#include "batch/ThreadPool.h"
#include "cminor/CminorInterp.h"
#include "rtl/Inline.h"
#include "cminor/Lower.h"
#include "driver/Compiler.h"
#include "events/Refinement.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "rtl/Opt.h"
#include "x86/Machine.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

/// Deterministic splitmix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
  bool chance(uint32_t Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// Generates one random program in the subset.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Out = "typedef unsigned int u32;\n";
    NumGlobals = 1 + R.below(3);
    for (unsigned G = 0; G != NumGlobals; ++G) {
      ArraySizes.push_back(4 + R.below(13));
      Out += "u32 g" + std::to_string(G) + "[" +
             std::to_string(ArraySizes[G]) + "];\n";
    }
    Out += "u32 s0 = " + std::to_string(R.below(1000)) + ";\n";
    Out += "int s1;\n";

    unsigned NumFunctions = 1 + R.below(4);
    for (unsigned F = 0; F != NumFunctions; ++F)
      emitFunction(F);
    emitMain();
    return Out;
  }

private:
  // Expression generation over the current scope. Depth-limited.
  std::string expr(unsigned Depth) {
    if (Depth == 0 || R.chance(35)) {
      switch (R.below(4)) {
      case 0:
        return std::to_string(R.below(64));
      case 1:
        if (!Scope.empty())
          return Scope[R.below(Scope.size())];
        return std::to_string(R.below(64));
      case 2:
        return R.chance(50) ? "s0" : "s1";
      default: {
        unsigned G = R.below(NumGlobals);
        return "g" + std::to_string(G) + "[(" + expr(0) + ") % " +
               std::to_string(ArraySizes[G]) + "]";
      }
      }
    }
    static const char *SafeOps[] = {"+", "-", "*", "&", "|", "^",
                                    "<<", ">>", "<", "<=", "==", "!="};
    switch (R.below(10)) {
    case 0: {
      // Division: usually guarded, sometimes allowed to trap.
      const char *Guard = R.chance(85) ? " | 1)" : ")";
      return "((" + expr(Depth - 1) + ") " + (R.chance(50) ? "/" : "%") +
             " ((" + expr(Depth - 1) + ")" + Guard + ")";
    }
    case 1:
      return "(" + expr(Depth - 1) + " ? " + expr(Depth - 1) + " : " +
             expr(Depth - 1) + ")";
    case 2:
      return "(" + std::string(R.chance(50) ? "~" : "!") + "(" +
             expr(Depth - 1) + "))";
    case 3:
      return "((" + expr(Depth - 1) + ") " +
             (R.chance(50) ? "&&" : "||") + " (" + expr(Depth - 1) + "))";
    default:
      return "((" + expr(Depth - 1) + ") " + SafeOps[R.below(12)] + " (" +
             expr(Depth - 1) + "))";
    }
  }

  std::string callExpr(unsigned UpTo) {
    unsigned F = R.below(UpTo);
    std::string Call = "f" + std::to_string(F) + "(";
    for (unsigned A = 0; A != Arity[F]; ++A) {
      if (A)
        Call += ", ";
      Call += expr(1);
    }
    return Call + ")";
  }

  /// A writable local that is not a protected loop counter.
  std::string writableLocal() {
    std::vector<std::string> Options;
    for (const std::string &V : Scope)
      if (!Protected.count(V))
        Options.push_back(V);
    if (Options.empty())
      return R.chance(50) ? "s0" : "s1";
    return Options[R.below(Options.size())];
  }

  void statement(unsigned Depth, unsigned FnIndex, std::string Indent) {
    switch (R.below(Depth > 0 ? 7 : 4)) {
    case 0: { // Assignment.
      Out += Indent + writableLocal() + " = " + expr(2) + ";\n";
      return;
    }
    case 1: { // Array store.
      unsigned G = R.below(NumGlobals);
      Out += Indent + "g" + std::to_string(G) + "[(" + expr(1) + ") % " +
             std::to_string(ArraySizes[G]) + "] = " + expr(2) + ";\n";
      return;
    }
    case 2: { // Call (possibly into a local).
      if (FnIndex == 0) {
        Out += Indent + writableLocal() + " = " + expr(2) + ";\n";
        return;
      }
      Out += Indent + writableLocal() + " = " + callExpr(FnIndex) + ";\n";
      return;
    }
    case 3: { // Global update.
      Out += Indent + (R.chance(50) ? "s0" : "s1") + " = " + expr(2) +
             ";\n";
      return;
    }
    case 4: { // If.
      Out += Indent + "if (" + expr(2) + ") {\n";
      statement(Depth - 1, FnIndex, Indent + "  ");
      if (R.chance(60)) {
        Out += Indent + "} else {\n";
        statement(Depth - 1, FnIndex, Indent + "  ");
      }
      Out += Indent + "}\n";
      return;
    }
    case 5: { // Bounded for-loop with a protected fresh counter.
      std::string I = "i" + std::to_string(LoopCounter++);
      Locals.push_back(I);
      Scope.push_back(I);
      Protected.insert(I);
      Out += Indent + "for (" + I + " = 0; " + I + " < " +
             std::to_string(1 + R.below(6)) + "; " + I + "++) {\n";
      statement(Depth - 1, FnIndex, Indent + "  ");
      if (R.chance(30))
        Out += Indent + "  if (" + expr(1) + ") break;\n";
      Out += Indent + "}\n";
      Protected.erase(I);
      return;
    }
    default: { // Block of two.
      statement(Depth - 1, FnIndex, Indent);
      statement(Depth - 1, FnIndex, Indent);
      return;
    }
    }
  }

  void beginFunction(unsigned NParams) {
    Scope.clear();
    Locals.clear();
    Protected.clear();
    LoopCounter = 0;
    for (unsigned P = 0; P != NParams; ++P)
      Scope.push_back("p" + std::to_string(P));
    unsigned NLocals = 1 + R.below(3);
    for (unsigned L = 0; L != NLocals; ++L) {
      Locals.push_back("v" + std::to_string(L));
      Scope.push_back("v" + std::to_string(L));
    }
  }

  void emitBody(unsigned FnIndex) {
    // Pre-declare the loop counters this body will use: generate into a
    // scratch buffer first, then splice declarations.
    std::string Saved = std::move(Out);
    Out.clear();
    unsigned NStatements = 2 + R.below(4);
    for (unsigned S = 0; S != NStatements; ++S)
      statement(2, FnIndex, "  ");
    std::string Body = std::move(Out);
    Out = std::move(Saved);
    if (!Locals.empty()) {
      Out += "  u32 ";
      for (size_t L = 0; L != Locals.size(); ++L) {
        if (L)
          Out += ", ";
        Out += Locals[L];
      }
      Out += ";\n";
    }
    Out += Body;
  }

  void emitFunction(unsigned F) {
    Arity.push_back(R.below(4));
    beginFunction(Arity[F]);
    Out += "u32 f" + std::to_string(F) + "(";
    for (unsigned P = 0; P != Arity[F]; ++P) {
      if (P)
        Out += ", ";
      Out += "u32 p" + std::to_string(P);
    }
    Out += ") {\n";
    emitBody(F);
    Out += "  return " + expr(2) + ";\n}\n";
  }

  void emitMain() {
    beginFunction(0);
    Out += "int main() {\n";
    emitBody(static_cast<unsigned>(Arity.size()));
    Out += "  return (int)((" + expr(2) + ") & 0xff);\n}\n";
  }

  Rng R;
  std::string Out;
  unsigned NumGlobals = 0;
  std::vector<uint32_t> ArraySizes;
  std::vector<unsigned> Arity;
  std::vector<std::string> Scope;   ///< Readable names.
  std::vector<std::string> Locals;  ///< Declared in this function.
  std::set<std::string> Protected;  ///< Live loop counters.
  unsigned LoopCounter = 0;
};

/// Runs one generated program through every level; returns a failure
/// explanation or the empty string.
std::string checkOneProgram(uint64_t Seed) {
  std::string Source = ProgramGenerator(Seed).generate();
  auto Explain = [&Source](const std::string &What) {
    return What + "\n--- program ---\n" + Source;
  };

  DiagnosticEngine D;
  auto CL = frontend::parseProgram(Source, D);
  if (!CL)
    return Explain("generated program does not parse: " + D.str());

  constexpr uint64_t Fuel = 3'000'000;
  Behavior BClight = interp::runProgram(*CL, Fuel);
  if (BClight.Kind == BehaviorKind::Diverges)
    return Explain("generated program exhausted fuel (generator bug)");

  cminor::Program CM = cminor::lowerFromClight(*CL);
  Behavior BCminor = cminor::runProgram(CM, Fuel);
  rtl::Program RT = rtl::lowerFromCminor(CM);
  Behavior BRtl = rtl::runProgram(RT, Fuel);
  rtl::Program RTO = rtl::lowerFromCminor(CM);
  rtl::optimizeProgram(RTO);
  Behavior BRtlOpt = rtl::runProgram(RTO, Fuel);
  mach::Program MP = mach::lowerFromRtl(RTO);
  Behavior BMach = mach::runProgram(MP, Fuel * 8);

  struct Level {
    const char *Name;
    const Behavior *B;
  };
  const Level Levels[] = {{"clight", &BClight},
                          {"cminor", &BCminor},
                          {"rtl", &BRtl},
                          {"rtl-opt", &BRtlOpt},
                          {"mach", &BMach}};
  for (size_t I = 1; I != 5; ++I) {
    RefinementResult QR =
        checkQuantitativeRefinement(*Levels[I].B, *Levels[I - 1].B);
    if (!QR.Ok)
      return Explain(std::string("refinement ") + Levels[I - 1].Name +
                     " -> " + Levels[I].Name + ": " + QR.Reason);
    RefinementResult FW =
        falsifyWeightDominance(*Levels[I].B, *Levels[I - 1].B, 16);
    if (!FW.Ok)
      return Explain(std::string("metric falsifier ") + Levels[I].Name +
                     ": " + FW.Reason);
  }

  x86::Program AP = x86::emitFromMach(MP);
  x86::Machine M(AP, measure::MeasureStackSize);
  Behavior BAsm = M.run(Fuel * 8);
  if (BClight.converged()) {
    if (!BAsm.converged())
      return Explain("clight converged but asm " + BAsm.str());
    if (BAsm.ReturnCode != BClight.ReturnCode)
      return Explain("exit codes differ: clight " +
                     std::to_string(BClight.ReturnCode) + " vs asm " +
                     std::to_string(BAsm.ReturnCode));
    if (pruneMemoryEvents(BAsm.Events) !=
        pruneMemoryEvents(BClight.Events))
      return Explain("I/O traces differ between clight and asm");
  } else if (BAsm.converged()) {
    // A failing source discharges Theorem 1 entirely: the machine has no
    // bounds checks, so an out-of-bounds source program may silently read
    // or write some other global and run on. Division traps, however,
    // exist at every level and must be preserved.
    if (BClight.FailureReason.find("out of bounds") == std::string::npos)
      return Explain("clight failed (" + BClight.FailureReason +
                     ") but asm converged");
  }

  // The optimizing pipelines (inlining; tail calls are no-ops here but
  // exercise the recognizer) must agree on converging runs.
  if (BClight.converged()) {
    rtl::Program RInl = rtl::lowerFromCminor(CM);
    rtl::inlineFunctions(RInl);
    rtl::optimizeProgram(RInl);
    mach::LowerOptions TailOpts;
    TailOpts.TailCalls = true;
    mach::Program MInl = mach::lowerFromRtl(RInl, TailOpts);
    x86::Program AInl = x86::emitFromMach(MInl);
    x86::Machine MachineInl(AInl, measure::MeasureStackSize);
    Behavior BInl = MachineInl.run(Fuel * 8);
    if (!BInl.converged())
      return Explain("inlined+tailcall pipeline failed: " + BInl.str());
    if (BInl.ReturnCode != BClight.ReturnCode)
      return Explain("inlined+tailcall exit code " +
                     std::to_string(BInl.ReturnCode) + " vs clight " +
                     std::to_string(BClight.ReturnCode));
    if (pruneMemoryEvents(BInl.Events) != pruneMemoryEvents(BClight.Events))
      return Explain("inlined+tailcall I/O trace differs");
  }

  // Generated programs have no recursion: the analyzer must bound
  // everything, and the bound must cover both the Mach weight and the
  // machine measurement.
  DiagnosticEngine AD;
  auto Bounds = analysis::analyzeProgram(*CL, AD);
  if (!Bounds.SkippedRecursive.empty())
    return Explain("analyzer skipped functions in a recursion-free "
                   "program");
  logic::BoundExpr MainBound = Bounds.callBound("main");
  if (!MainBound)
    return Explain("no main bound: " + AD.str());
  StackMetric Metric = MP.costMetric();
  ExtNat BoundVal = logic::evalBound(MainBound, Metric, {});
  if (BoundVal.isInfinite())
    return Explain("main bound is infinite");
  if (BClight.converged()) {
    uint64_t MachWeight = weight(Metric, BMach.Events);
    if (BoundVal.finiteValue() < MachWeight)
      return Explain("bound " + BoundVal.str() + " < mach weight " +
                     std::to_string(MachWeight));
    uint32_t Measured = M.measuredStackBytes();
    if (BoundVal.finiteValue() < Measured)
      return Explain("bound " + BoundVal.str() + " < measured " +
                     std::to_string(Measured));
    // Theorem 1 at the bound.
    x86::Machine Clamped(
        AP, static_cast<uint32_t>(BoundVal.finiteValue()) - 4);
    Behavior BClamped = Clamped.run(Fuel * 8);
    if (!BClamped.converged())
      return Explain("program failed at its verified stack bound: " +
                     BClamped.str());
  }
  return "";
}

class Differential : public testing::TestWithParam<uint64_t> {};

TEST_P(Differential, AllLevelsAgree) {
  // 16 seeds per gtest case, 12 cases = 192 random programs, fanned out
  // across cores on the batch engine's work-stealing pool (each seed is
  // an independent pipeline; see support/Diagnostics.h for the contract).
  constexpr uint64_t Seeds = 16;
  std::vector<std::string> Failures(Seeds);
  batch::WorkStealingPool Pool(
      std::max(1u, std::thread::hardware_concurrency()));
  const uint64_t Base = GetParam() * 1000;
  Pool.parallelFor(Seeds, [&Failures, Base](size_t Sub) {
    Failures[Sub] = checkOneProgram(Base + Sub);
  });
  for (uint64_t Sub = 0; Sub != Seeds; ++Sub)
    ASSERT_TRUE(Failures[Sub].empty())
        << "seed " << Base + Sub << ": " << Failures[Sub];
}

INSTANTIATE_TEST_SUITE_P(Fuzz, Differential,
                         testing::Range<uint64_t>(1, 13));

} // namespace
