//===- tests/StoreTest.cpp - Persistent store: format, corruption, LRU ----===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent verification store's contract, end to end:
///
///   * round-trip identity for every persisted record type (integer
///     terms, comparisons, bound expressions, specs, contexts, full
///     derivations, the ProgramResult record, and the entry image),
///   * corruption injection — truncation at every layer, a bit-flip
///     sweep over a real entry, zero-length and wrong-version files —
///     must always quarantine: never a crash, never a wrong verdict,
///   * golden fixtures under tests/store-corpus/ pin the byte format
///     (a change is a deliberate version bump, never an accident),
///   * LRU eviction order under a byte budget, with hits refreshing,
///   * the flock protocol under concurrent multi-process access,
///   * `--store-verify` proof re-checking, including tampered entries
///     whose *format* is valid but whose proofs do not cover the claims,
///   * the warm/cold acceptance criterion in separate processes: a warm
///     rerun serves every job from the store with byte-identical
///     deterministic metrics and zero fresh proof-checker nodes.
///
//===----------------------------------------------------------------------===//

#include "store/Store.h"

#include "batch/Batch.h"
#include "frontend/Frontend.h"
#include "logic/Checker.h"
#include "support/FailPoint.h"
#include "support/Supervision.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

using namespace qcc;
using namespace qcc::batch;
using namespace qcc::store;

namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures and helpers
//===----------------------------------------------------------------------===//

const char *SmallProgram = R"(
typedef unsigned int u32;
u32 g[8];
u32 leaf(u32 x) { return x * 3 + 1; }
u32 mid(u32 x) {
  u32 i, acc;
  acc = 0;
  for (i = 0; i < 4; i++) acc = acc + leaf(x + i);
  return acc;
}
int main() {
  u32 i;
  for (i = 0; i < 8; i++) g[i & 7] = mid(i);
  return (int)(g[3] & 0xff);
}
)";

/// Scoped scratch directory; removed with everything in it on exit.
struct TempDir {
  std::string Path;
  TempDir() {
    std::string Template =
        (fs::temp_directory_path() / "qcc-store-XXXXXX").string();
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    Path = mkdtemp(Buf.data());
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string sub(const std::string &Name) const {
    return (fs::path(Path) / Name).string();
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

void spill(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

BatchJob smallJob() { return {"small.c", SmallProgram, {}}; }

/// One real verified result, proof artifacts kept. Verified once and
/// reused: verification is the expensive part of these tests.
const ProgramResult &verifiedSmall() {
  static ProgramResult R =
      verifyOne(smallJob(), /*CheckTheorem1=*/false, nullptr,
                /*KeepProofArtifacts=*/true);
  EXPECT_TRUE(R.Ok) << R.Diagnostics;
  EXPECT_FALSE(R.ProofBlob.empty());
  return R;
}

JobKey smallKey() { return jobKey(smallJob(), /*CheckTheorem1=*/false); }

/// A handcrafted record with every field away from its default, so a
/// skipped field in the serializer cannot hide.
ProgramResult fullResult() {
  ProgramResult R;
  R.Id = "full/everything.c";
  R.Ok = true;
  R.Diagnostics = "warning: something quantitative\n";
  R.Bounds.push_back({"main", "M(main) + 24", 88});
  R.Bounds.push_back({"parametric", "M(parametric) + n * 4", std::nullopt});
  R.SkippedRecursive = {"rec1", "rec2"};
  R.Theorem1Checked = true;
  R.Theorem1Ok = true;
  R.Theorem1StackBytes = 84;
  R.Status = JobStatus::Ok;
  R.Stop = StopCause::None;
  R.Retries = 2;
  R.Metrics.PassMicros = {{"parse", 120}, {"lower-cminor", 9}};
  R.Metrics.ReplayedEvents = {{"clight-cminor", 4242}};
  R.Metrics.ProofNodes = 137;
  R.Metrics.TotalMicros = 4567;
  R.ProofBlob = "opaque-proof-bytes";
  return R;
}

/// Round-trip through an encode function and require re-encoded bytes to
/// be identical — the strongest identity check that needs no per-type
/// equality operator.
template <typename T, typename WriteFn, typename ReadFn>
void expectByteStableRoundTrip(const T &Value, WriteFn Write, ReadFn Read) {
  ByteWriter W;
  Write(W, Value);
  std::string Bytes = W.take();
  ByteReader R(Bytes);
  T Decoded{};
  ASSERT_TRUE(Read(R, Decoded));
  ASSERT_TRUE(R.done()) << "trailing bytes";
  ByteWriter W2;
  Write(W2, Decoded);
  EXPECT_EQ(Bytes, W2.bytes());
}

//===----------------------------------------------------------------------===//
// Serializer round trips — every persisted record type
//===----------------------------------------------------------------------===//

logic::IntTerm nestedTerm() {
  using logic::IntTermNode;
  return IntTermNode::divC(
      IntTermNode::add(
          IntTermNode::mul(IntTermNode::var("n", logic::VarSign::Signed),
                           IntTermNode::constant(3)),
          IntTermNode::sub(IntTermNode::var("hi"),
                           IntTermNode::var("lo'"))),
      2);
}

TEST(StoreSerialize, IntTermRoundTripIsByteStable) {
  logic::IntTerm T = nestedTerm();
  ByteWriter W;
  writeIntTerm(W, T);
  std::string Bytes = W.take();
  ByteReader R(Bytes);
  logic::IntTerm Decoded;
  ASSERT_TRUE(readIntTerm(R, Decoded));
  ASSERT_TRUE(R.done());
  EXPECT_EQ(T->str(), Decoded->str());
  ByteWriter W2;
  writeIntTerm(W2, Decoded);
  EXPECT_EQ(Bytes, W2.bytes());
}

TEST(StoreSerialize, CmpRoundTrip) {
  logic::Cmp C{nestedTerm(), logic::CmpRel::Le,
               logic::IntTermNode::constant(41)};
  expectByteStableRoundTrip(
      C, [](ByteWriter &W, const logic::Cmp &V) { writeCmp(W, V); },
      [](ByteReader &R, logic::Cmp &V) { return readCmp(R, V); });
}

/// A bound exercising every BoundExprNode kind at once.
logic::BoundExpr kitchenSinkBound() {
  using namespace logic;
  Cmp Guard{IntTermNode::var("beg"), CmpRel::Le, IntTermNode::var("end")};
  BoundExpr Log = bAdd(bLog2W(nestedTerm()),
                       bLog2C(IntTermNode::var("w")));
  BoundExpr Metric = bMul(bMetric("qsort"),
                          bAdd(bConst(ExtNat(1)), Log));
  BoundExpr Guarded = bGuard(Guard, bNatTerm(nestedTerm()));
  BoundExpr Branch = bIte(Guard, bScale(3, bMetric("f")), bBottom());
  return bMax(bAdd(Metric, Guarded), Branch);
}

TEST(StoreSerialize, BoundExprRoundTripCoversEveryKind) {
  logic::BoundExpr B = kitchenSinkBound();
  ByteWriter W;
  writeBound(W, B);
  std::string Bytes = W.take();
  ByteReader R(Bytes);
  logic::BoundExpr Decoded;
  ASSERT_TRUE(readBound(R, Decoded));
  ASSERT_TRUE(R.done());
  EXPECT_TRUE(logic::structurallyEqual(B, Decoded))
      << B->str() << " vs " << Decoded->str();
  ByteWriter W2;
  writeBound(W2, Decoded);
  EXPECT_EQ(Bytes, W2.bytes());
}

TEST(StoreSerialize, SpecAndContextRoundTrip) {
  using namespace logic;
  FunctionSpec S;
  S.Pre = kitchenSinkBound();
  S.Post = bConst(ExtNat(16));
  S.ResultFacts.push_back({IntTermNode::var("lo"), CmpRel::Le,
                           IntTermNode::var("$result")});
  expectByteStableRoundTrip(
      S, [](ByteWriter &W, const FunctionSpec &V) { writeSpec(W, V); },
      [](ByteReader &R, FunctionSpec &V) { return readSpec(R, V); });

  FunctionContext Gamma;
  Gamma["partition"] = S;
  Gamma["leaf"] = FunctionSpec::balanced(bConst(ExtNat(8)));
  expectByteStableRoundTrip(
      Gamma,
      [](ByteWriter &W, const FunctionContext &V) { writeContext(W, V); },
      [](ByteReader &R, FunctionContext &V) { return readContext(R, V); });
}

TEST(StoreSerialize, TruncationAtEveryPrefixIsRejectedNotCrashing) {
  ByteWriter W;
  writeBound(W, kitchenSinkBound());
  std::string Bytes = W.take();
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    ByteReader R(Bytes.data(), Len);
    logic::BoundExpr B;
    // Any strict prefix must fail: the format has no self-delimiting
    // shorter value sharing a prefix with a longer one.
    EXPECT_FALSE(readBound(R, B) && R.done()) << "prefix " << Len;
  }
}

TEST(StoreSerialize, DecodeDepthLimitStopsHostileNesting) {
  // A hostile writer can nest arbitrarily deep; the reader must bound
  // its recursion. 2 * MaxDecodeDepth nesting must decode false, not
  // overflow the stack. The bytes are built iteratively (an in-memory
  // tower that deep would already recurse in its own destructor).
  using logic::IntTermNode;
  std::string Bytes;
  {
    // An Add node on the wire is: kind, value, name, sign, [1, lhs],
    // [1, rhs] — nesting on Rhs makes each level a flat append.
    ByteWriter W;
    auto WriteConstHeader = [&W]() {
      W.u8(static_cast<uint8_t>(IntTermNode::Kind::Const));
      W.i64(1);
      W.str("");
      W.u8(0);
      W.boolean(false);
      W.boolean(false);
    };
    auto WriteAddOpen = [&W, &WriteConstHeader]() {
      W.u8(static_cast<uint8_t>(IntTermNode::Kind::Add));
      W.i64(0);
      W.str("");
      W.u8(0);
      W.boolean(true); // lhs present: the constant
      WriteConstHeader();
      W.boolean(true); // rhs present: the next level
    };
    for (unsigned I = 0; I != 2 * MaxDecodeDepth; ++I)
      WriteAddOpen();
    WriteConstHeader();
    Bytes = W.take();
  }
  ByteReader R(Bytes);
  logic::IntTerm Decoded;
  EXPECT_FALSE(readIntTerm(R, Decoded));
}

//===----------------------------------------------------------------------===//
// Proof blobs from real verification
//===----------------------------------------------------------------------===//

TEST(StoreProofs, BlobFromRealVerificationReattachesAndRechecks) {
  const ProgramResult &R = verifiedSmall();
  DiagnosticEngine Diags;
  auto P = frontend::parseProgram(SmallProgram, Diags);
  ASSERT_TRUE(P.has_value());
  ProofArtifacts PA;
  ASSERT_TRUE(decodeProofs(R.ProofBlob, &*P, PA));
  EXPECT_FALSE(PA.Gamma.empty());
  ASSERT_FALSE(PA.Bounds.empty());
  logic::EntailOptions EO;
  EO.SymbolicOnly = true;
  logic::ProofChecker Checker(*P, PA.Gamma, EO);
  for (const logic::FunctionBound &FB : PA.Bounds) {
    ASSERT_NE(FB.Body, nullptr);
    EXPECT_NE(FB.Body->S, nullptr) << FB.Function << ": not re-attached";
    DiagnosticEngine CheckDiags;
    EXPECT_TRUE(Checker.checkFunctionBound(FB, CheckDiags))
        << FB.Function << " no longer checks after a store round trip";
  }
}

TEST(StoreProofs, BlobReencodesBitIdentically) {
  const ProgramResult &R = verifiedSmall();
  DiagnosticEngine Diags;
  auto P = frontend::parseProgram(SmallProgram, Diags);
  ASSERT_TRUE(P.has_value());
  ProofArtifacts PA;
  ASSERT_TRUE(decodeProofs(R.ProofBlob, &*P, PA));
  std::map<std::string, logic::FunctionBound> Bounds;
  for (logic::FunctionBound &FB : PA.Bounds) {
    std::string Name = FB.Function;
    Bounds.emplace(std::move(Name), std::move(FB));
  }
  EXPECT_EQ(encodeProofs(PA.Gamma, Bounds, *P), R.ProofBlob);
}

TEST(StoreProofs, DecodeWithoutProgramKeepsStatementsNull) {
  const ProgramResult &R = verifiedSmall();
  ProofArtifacts PA;
  ASSERT_TRUE(decodeProofs(R.ProofBlob, nullptr, PA));
  for (const logic::FunctionBound &FB : PA.Bounds)
    EXPECT_EQ(FB.Body->S, nullptr);
}

TEST(StoreProofs, CorruptedBlobNeverCrashes) {
  const ProgramResult &Base = verifiedSmall();
  DiagnosticEngine Diags;
  auto P = frontend::parseProgram(SmallProgram, Diags);
  ASSERT_TRUE(P.has_value());
  for (size_t Pos = 0; Pos < Base.ProofBlob.size(); Pos += 13) {
    std::string Blob = Base.ProofBlob;
    Blob[Pos] = static_cast<char>(Blob[Pos] ^ (1 << (Pos % 8)));
    ProofArtifacts PA;
    // No checksum at this layer (the store entry carries it), so a flip
    // may still decode; it must never crash, and whatever decodes must
    // be safely checkable.
    if (decodeProofs(Blob, &*P, PA)) {
      logic::EntailOptions EO;
      EO.SymbolicOnly = true;
      logic::ProofChecker Checker(*P, PA.Gamma, EO);
      for (const logic::FunctionBound &FB : PA.Bounds) {
        DiagnosticEngine D2;
        Checker.checkFunctionBound(FB, D2); // either verdict; no crash
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// The ProgramResult record and the entry image
//===----------------------------------------------------------------------===//

TEST(StoreEntry, ResultRecordRoundTripsEveryField) {
  ProgramResult R = fullResult();
  ByteWriter W;
  writeResult(W, R);
  std::string Bytes = W.take();
  ByteReader Reader(Bytes);
  ProgramResult D;
  ASSERT_TRUE(readResult(Reader, D));
  ASSERT_TRUE(Reader.done());
  EXPECT_EQ(D.Id, R.Id);
  EXPECT_EQ(D.Ok, R.Ok);
  EXPECT_EQ(D.Diagnostics, R.Diagnostics);
  ASSERT_EQ(D.Bounds.size(), 2u);
  EXPECT_EQ(D.Bounds[0].Function, "main");
  EXPECT_EQ(D.Bounds[0].SymbolicBound, "M(main) + 24");
  EXPECT_EQ(D.Bounds[0].ConcreteBytes, std::optional<uint64_t>(88));
  EXPECT_EQ(D.Bounds[1].ConcreteBytes, std::nullopt);
  EXPECT_EQ(D.SkippedRecursive, R.SkippedRecursive);
  EXPECT_EQ(D.Theorem1Checked, R.Theorem1Checked);
  EXPECT_EQ(D.Theorem1Ok, R.Theorem1Ok);
  EXPECT_EQ(D.Theorem1StackBytes, R.Theorem1StackBytes);
  EXPECT_EQ(D.Status, R.Status);
  EXPECT_EQ(D.Stop, R.Stop);
  EXPECT_EQ(D.Retries, R.Retries);
  EXPECT_EQ(D.Metrics.PassMicros, R.Metrics.PassMicros);
  EXPECT_EQ(D.Metrics.ReplayedEvents, R.Metrics.ReplayedEvents);
  EXPECT_EQ(D.Metrics.ProofNodes, R.Metrics.ProofNodes);
  EXPECT_EQ(D.Metrics.TotalMicros, R.Metrics.TotalMicros);
  EXPECT_EQ(D.ProofBlob, R.ProofBlob);
}

TEST(StoreEntry, EntryImageRoundTripsAndHeaderIsAsDocumented) {
  JobKey Key{0x1122334455667788ull, 0x99aabbccddeeff00ull};
  std::string Bytes = VerificationStore::encodeEntry(Key, fullResult());
  ASSERT_GE(Bytes.size(), VerificationStore::HeaderSize);
  EXPECT_EQ(Bytes.compare(0, 8, "QCCSTORE"), 0);
  // Version little-endian at offset 8.
  EXPECT_EQ(static_cast<uint8_t>(Bytes[8]), VerificationStore::FormatVersion);
  JobKey Decoded;
  ProgramResult R;
  ASSERT_TRUE(VerificationStore::decodeEntry(Bytes, Decoded, R));
  EXPECT_EQ(Decoded, Key);
  EXPECT_EQ(R.Id, "full/everything.c");
  EXPECT_EQ(VerificationStore::encodeEntry(Decoded, R), Bytes);
}

TEST(StoreEntry, DecodeRejectsTamperedImages) {
  JobKey Key{1, 2};
  std::string Bytes = VerificationStore::encodeEntry(Key, fullResult());
  JobKey K;
  ProgramResult R;
  EXPECT_FALSE(VerificationStore::decodeEntry("", K, R));
  for (size_t Len : {size_t(1), size_t(8), size_t(31), size_t(32),
                     Bytes.size() / 2, Bytes.size() - 1})
    EXPECT_FALSE(
        VerificationStore::decodeEntry(Bytes.substr(0, Len), K, R))
        << "truncated to " << Len;
  {
    std::string V = Bytes;
    V[8] = 2; // future format version
    EXPECT_FALSE(VerificationStore::decodeEntry(V, K, R));
  }
  {
    std::string C = Bytes;
    C[16] = static_cast<char>(C[16] ^ 0x01); // checksum
    EXPECT_FALSE(VerificationStore::decodeEntry(C, K, R));
  }
  {
    std::string P = Bytes;
    P.back() = static_cast<char>(P.back() ^ 0x80); // payload
    EXPECT_FALSE(VerificationStore::decodeEntry(P, K, R));
  }
}

//===----------------------------------------------------------------------===//
// Golden fixtures: the byte format is pinned
//===----------------------------------------------------------------------===//

#ifndef QCC_STORE_CORPUS_DIR
#define QCC_STORE_CORPUS_DIR "tests/store-corpus"
#endif

/// The golden fixtures are built from fully handcrafted values (no
/// analyzer or timing input), so their bytes are a pure function of the
/// serializer. Regenerate deliberately with
///   QCC_REGEN_STORE_CORPUS=1 ./store_test --gtest_filter='StoreGolden.*'
/// and review the diff — a changed fixture IS a format change.
JobKey goldenFailedKey() { return {0x1111222233334444ull, 0x5555666677778888ull}; }

ProgramResult goldenFailedResult() {
  ProgramResult R;
  R.Id = "golden/failed.c";
  R.Ok = false;
  R.Diagnostics = "error: expected ';' before '}'\n";
  R.Status = JobStatus::Failed;
  R.Stop = StopCause::None;
  R.Retries = 0;
  R.Metrics.PassMicros = {{"parse", 100}};
  R.Metrics.TotalMicros = 100;
  return R;
}

JobKey goldenOkKey() { return {0xdeadbeefcafef00dull, 0x0123456789abcdefull}; }

ProgramResult goldenOkResult() {
  ProgramResult R = fullResult();
  R.Id = "golden/ok.c";
  // A handcrafted proof section: context plus an empty bound map (the
  // derivation wire format is pinned separately by the round-trip tests
  // against real analyzer output).
  logic::FunctionContext Gamma;
  Gamma["leaf"] = logic::FunctionSpec::balanced(logic::bConst(ExtNat(8)));
  logic::FunctionSpec Main;
  Main.Pre = kitchenSinkBound();
  Main.Post = logic::bConst(ExtNat(0));
  Gamma["main"] = Main;
  ByteWriter W;
  writeContext(W, Gamma);
  W.u64(0); // no derived bounds
  R.ProofBlob = W.take();
  return R;
}

TEST(StoreGolden, FixturesAreBitExact) {
  const std::string Dir = QCC_STORE_CORPUS_DIR;
  struct Fixture {
    const char *Name;
    JobKey Key;
    ProgramResult Result;
  };
  const Fixture Fixtures[] = {
      {"failed-entry.qcs", goldenFailedKey(), goldenFailedResult()},
      {"ok-entry.qcs", goldenOkKey(), goldenOkResult()},
  };
  const bool Regen = std::getenv("QCC_REGEN_STORE_CORPUS") != nullptr;
  for (const Fixture &F : Fixtures) {
    std::string Path = (fs::path(Dir) / F.Name).string();
    std::string Expected = VerificationStore::encodeEntry(F.Key, F.Result);
    if (Regen) {
      spill(Path, Expected);
      continue;
    }
    std::string OnDisk = slurp(Path);
    ASSERT_FALSE(OnDisk.empty()) << Path << " missing — regenerate with "
                                 << "QCC_REGEN_STORE_CORPUS=1";
    EXPECT_EQ(OnDisk, Expected)
        << F.Name << ": the on-disk format changed. If intentional, bump "
        << "VerificationStore::FormatVersion and regenerate the corpus.";
    JobKey Key;
    ProgramResult R;
    ASSERT_TRUE(VerificationStore::decodeEntry(OnDisk, Key, R)) << F.Name;
    EXPECT_EQ(Key, F.Key);
    EXPECT_EQ(R.Id, F.Result.Id);
    EXPECT_EQ(R.Ok, F.Result.Ok);
    EXPECT_EQ(R.ProofBlob, F.Result.ProofBlob);
  }
}

TEST(StoreGolden, FixtureStoreLoadsAndServes) {
  // A store directory assembled from the committed fixtures must load
  // with nothing quarantined and serve both entries.
  const std::string Dir = QCC_STORE_CORPUS_DIR;
  if (std::getenv("QCC_REGEN_STORE_CORPUS"))
    GTEST_SKIP() << "regenerating";
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("fixture-store");
  fs::create_directories(SO.Dir);
  // Entries live under their content-addressed names (the open scan
  // quarantines a mismatched name as damage, by design).
  const std::pair<const char *, JobKey> Entries[] = {
      {"failed-entry.qcs", goldenFailedKey()},
      {"ok-entry.qcs", goldenOkKey()},
  };
  for (const auto &[Name, Key] : Entries) {
    std::string Bytes = slurp((fs::path(Dir) / Name).string());
    ASSERT_FALSE(Bytes.empty());
    spill((fs::path(SO.Dir) / VerificationStore::entryName(Key)).string(),
          Bytes);
  }
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->stats().Quarantined, 0u);
  EXPECT_EQ(Store->entryCount(), 2u);
  auto Hit = Store->fetch(goldenOkKey(), smallJob(), nullptr);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Id, "golden/ok.c");
  auto Failed = Store->fetch(goldenFailedKey(), smallJob(), nullptr);
  ASSERT_NE(Failed, nullptr);
  EXPECT_FALSE(Failed->Ok);
}

//===----------------------------------------------------------------------===//
// The on-disk store: basic service
//===----------------------------------------------------------------------===//

TEST(StoreDisk, PutThenFetchAcrossFreshHandles) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  JobKey Key = smallKey();
  {
    auto Store = VerificationStore::open(SO);
    ASSERT_NE(Store, nullptr);
    EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr); // cold
    Store->put(Key, verifiedSmall(), nullptr);
    EXPECT_EQ(Store->entryCount(), 1u);
  }
  // A fresh handle (a fresh process, as far as the format is concerned)
  // must serve the same verdict bit-identically.
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  auto Hit = Store->fetch(Key, smallJob(), nullptr);
  ASSERT_NE(Hit, nullptr);
  const ProgramResult &R = verifiedSmall();
  EXPECT_EQ(Hit->Id, R.Id);
  EXPECT_EQ(Hit->Ok, R.Ok);
  EXPECT_EQ(Hit->ProofBlob, R.ProofBlob);
  EXPECT_EQ(Hit->Metrics.ProofNodes, R.Metrics.ProofNodes);
  EXPECT_EQ(Store->stats().Hits, 1u);
}

TEST(StoreDisk, PrimaryHashCollisionIsAPlainMiss) {
  // Two keys sharing the primary hash name different files (both digests
  // are in the name), so a single-hash collision cannot serve the wrong
  // verdict — it is not even a decode question.
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  JobKey A{42, 1001}, B{42, 2002};
  Store->put(A, verifiedSmall(), nullptr);
  EXPECT_EQ(Store->fetch(B, smallJob(), nullptr), nullptr);
  EXPECT_NE(Store->fetch(A, smallJob(), nullptr), nullptr);
  EXPECT_EQ(Store->stats().Quarantined, 0u);
}

TEST(StoreDisk, BudgetStoppedFetchDegradesToMissWithoutQuarantine) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  JobKey Key = smallKey();
  Store->put(Key, verifiedSmall(), nullptr);
  Supervisor Sup;
  Sup.setMemoryBudget(8); // the entry read alone trips it
  EXPECT_EQ(Store->fetch(Key, smallJob(), &Sup), nullptr);
  EXPECT_EQ(Sup.cause(), StopCause::MemoryBudget);
  EXPECT_EQ(Store->entryCount(), 1u); // not quarantined, not evicted
  EXPECT_NE(Store->fetch(Key, smallJob(), nullptr), nullptr);
}

TEST(StoreDisk, PutFlushesEvenAfterInterruptFired) {
  // The SIGINT drain contract: a put racing a ^C still lands — the batch
  // engine relies on it to not lose completed verdicts on interrupt.
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  Supervisor Interrupt;
  Interrupt.cancel(StopCause::Cancelled);
  ASSERT_TRUE(Interrupt.stopRequested());
  Store->put(smallKey(), verifiedSmall(), &Interrupt);
  EXPECT_EQ(Store->stats().Writes, 1u);
  EXPECT_NE(Store->fetch(smallKey(), smallJob(), nullptr), nullptr);
}

TEST(StoreDisk, NonDefinitiveResultsAreNeverPersisted) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  ProgramResult R = fullResult();
  R.Status = JobStatus::Quarantined;
  R.Stop = StopCause::FuelExhausted;
  Store->put(smallKey(), R, nullptr);
  EXPECT_EQ(Store->entryCount(), 0u);
  EXPECT_EQ(Store->stats().Writes, 0u);
}

//===----------------------------------------------------------------------===//
// Corruption injection: quarantine, never crash, never mis-verify
//===----------------------------------------------------------------------===//

struct CorruptionCase {
  const char *Name;
  std::string (*Mutate)(const std::string &);
};

std::string entryOnDisk(const std::string &StoreDir, const JobKey &Key) {
  return (fs::path(StoreDir) / VerificationStore::entryName(Key)).string();
}

TEST(StoreCorruption, EveryInjectedFaultQuarantinesInsteadOfServing) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  JobKey Key = smallKey();
  Store->put(Key, verifiedSmall(), nullptr);
  std::string Path = entryOnDisk(SO.Dir, Key);
  std::string Pristine = slurp(Path);
  ASSERT_FALSE(Pristine.empty());

  const CorruptionCase Cases[] = {
      {"zero-length", [](const std::string &) { return std::string(); }},
      {"truncated-header",
       [](const std::string &B) { return B.substr(0, 20); }},
      {"truncated-payload",
       [](const std::string &B) { return B.substr(0, B.size() / 2); }},
      {"one-byte-short",
       [](const std::string &B) { return B.substr(0, B.size() - 1); }},
      {"wrong-version",
       [](const std::string &B) {
         std::string V = B;
         V[8] = 9;
         return V;
       }},
      {"bad-magic",
       [](const std::string &B) {
         std::string V = B;
         V[0] = 'X';
         return V;
       }},
      {"checksum-flip",
       [](const std::string &B) {
         std::string V = B;
         V[17] = static_cast<char>(V[17] ^ 0xff);
         return V;
       }},
      {"garbage",
       [](const std::string &B) {
         return std::string(B.size(), '\x5a');
       }},
      {"appended-trailer",
       [](const std::string &B) { return B + "extra"; }},
  };
  uint64_t Quarantined = 0;
  for (const CorruptionCase &C : Cases) {
    spill(Path, C.Mutate(Pristine));
    EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr) << C.Name;
    EXPECT_FALSE(fs::exists(Path)) << C.Name << ": not quarantined";
    ++Quarantined;
    EXPECT_EQ(Store->stats().Quarantined, Quarantined) << C.Name;
    // The store stays serviceable: re-put and hit again.
    Store->put(Key, verifiedSmall(), nullptr);
    ASSERT_NE(Store->fetch(Key, smallJob(), nullptr), nullptr) << C.Name;
  }
}

TEST(StoreCorruption, BitFlipSweepNeverServesACorruptEntry) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  JobKey Key = smallKey();
  Store->put(Key, verifiedSmall(), nullptr);
  std::string Path = entryOnDisk(SO.Dir, Key);
  std::string Pristine = slurp(Path);
  ASSERT_GE(Pristine.size(), VerificationStore::HeaderSize);
  // Every header byte plus a stride over the payload: each flip must be
  // a quarantining miss — the checksum (or a header check) catches it.
  std::vector<size_t> Positions;
  for (size_t I = 0; I != VerificationStore::HeaderSize; ++I)
    Positions.push_back(I);
  for (size_t I = VerificationStore::HeaderSize; I < Pristine.size();
       I += 17)
    Positions.push_back(I);
  for (size_t Pos : Positions) {
    std::string Flipped = Pristine;
    Flipped[Pos] = static_cast<char>(Flipped[Pos] ^ (1u << (Pos % 8)));
    spill(Path, Flipped);
    EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr)
        << "flip at byte " << Pos << " was served";
    EXPECT_FALSE(fs::exists(Path)) << "flip at byte " << Pos;
  }
  spill(Path, Pristine); // restore: the pristine entry still serves
  EXPECT_NE(Store->fetch(Key, smallJob(), nullptr), nullptr);
}

TEST(StoreCorruption, OpenScanQuarantinesResidentDamage) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  JobKey Key = smallKey();
  {
    auto Store = VerificationStore::open(SO);
    ASSERT_NE(Store, nullptr);
    Store->put(Key, verifiedSmall(), nullptr);
  }
  // Damage the entry, drop a stray temp file, add a garbage entry and an
  // intact entry under the wrong name; then reopen as a fresh process.
  std::string Path = entryOnDisk(SO.Dir, Key);
  std::string Pristine = slurp(Path);
  spill(Path, Pristine.substr(0, Pristine.size() / 3));
  spill((fs::path(SO.Dir) / ".tmp-999-0").string(), "half-written");
  spill((fs::path(SO.Dir) / "0000000000000000-0000000000000000.qcs").string(),
        "not an entry at all");
  spill(entryOnDisk(SO.Dir, JobKey{7, 7}), Pristine); // wrong name
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->stats().Quarantined, 3u);
  EXPECT_EQ(Store->entryCount(), 0u);
  EXPECT_FALSE(fs::exists((fs::path(SO.Dir) / ".tmp-999-0").string()));
  EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr);
  EXPECT_EQ(Store->fetch(JobKey{7, 7}, smallJob(), nullptr), nullptr);
  // Recovery: the store keeps working after the purge.
  Store->put(Key, verifiedSmall(), nullptr);
  EXPECT_NE(Store->fetch(Key, smallJob(), nullptr), nullptr);
}

TEST(StoreCorruption, IsTruncatedEntryClassifiesDamageShapes) {
  const std::string Full =
      VerificationStore::encodeEntry(smallKey(), verifiedSmall());
  const size_t H = VerificationStore::HeaderSize;
  ASSERT_GT(Full.size(), H);
  // Truncation shapes: what a crash between open and write, or a torn
  // copy, leaves behind.
  EXPECT_TRUE(VerificationStore::isTruncatedEntry(std::string()));
  EXPECT_TRUE(VerificationStore::isTruncatedEntry(Full.substr(0, 7)));
  EXPECT_TRUE(VerificationStore::isTruncatedEntry(Full.substr(0, H - 1)));
  EXPECT_TRUE(VerificationStore::isTruncatedEntry(Full.substr(0, H)));
  EXPECT_TRUE(VerificationStore::isTruncatedEntry(
      Full.substr(0, H + (Full.size() - H) / 2)));
  EXPECT_TRUE(
      VerificationStore::isTruncatedEntry(Full.substr(0, Full.size() - 1)));
  // Full-length or over-length images are not truncation.
  EXPECT_FALSE(VerificationStore::isTruncatedEntry(Full));
  EXPECT_FALSE(VerificationStore::isTruncatedEntry(Full + "extra"));
  // Bad magic or wrong version is corruption even when the file is also
  // short: the header can't be trusted to declare a payload size.
  std::string BadMagic = Full;
  BadMagic[0] = 'X';
  EXPECT_FALSE(VerificationStore::isTruncatedEntry(BadMagic));
  EXPECT_FALSE(VerificationStore::isTruncatedEntry(BadMagic.substr(0, H)));
  std::string WrongVersion = Full;
  WrongVersion[8] = 9;
  EXPECT_FALSE(VerificationStore::isTruncatedEntry(WrongVersion.substr(0, H)));
}

TEST(StoreCorruption, TruncationShapesBumpTheTruncatedCounter) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  JobKey Key = smallKey();
  Store->put(Key, verifiedSmall(), nullptr);
  std::string Path = entryOnDisk(SO.Dir, Key);
  std::string Pristine = slurp(Path);
  ASSERT_GT(Pristine.size(), VerificationStore::HeaderSize);

  const CorruptionCase TruncationShapes[] = {
      {"zero-length", [](const std::string &) { return std::string(); }},
      {"sub-header", [](const std::string &B) { return B.substr(0, 7); }},
      {"header-minus-one",
       [](const std::string &B) {
         return B.substr(0, VerificationStore::HeaderSize - 1);
       }},
      {"header-only",
       [](const std::string &B) {
         return B.substr(0, VerificationStore::HeaderSize);
       }},
      {"half-payload",
       [](const std::string &B) {
         size_t H = VerificationStore::HeaderSize;
         return B.substr(0, H + (B.size() - H) / 2);
       }},
  };
  uint64_t Seen = 0;
  for (const CorruptionCase &C : TruncationShapes) {
    spill(Path, C.Mutate(Pristine));
    EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr) << C.Name;
    EXPECT_FALSE(fs::exists(Path)) << C.Name << ": not quarantined";
    ++Seen;
    EXPECT_EQ(Store->stats().Quarantined, Seen) << C.Name;
    EXPECT_EQ(Store->stats().Truncated, Seen) << C.Name;
    Store->put(Key, verifiedSmall(), nullptr);
    ASSERT_NE(Store->fetch(Key, smallJob(), nullptr), nullptr) << C.Name;
  }
  // Non-truncation corruption quarantines without touching the
  // truncation counter: the two failure shapes stay distinguishable.
  const CorruptionCase OtherShapes[] = {
      {"bad-magic",
       [](const std::string &B) {
         std::string V = B;
         V[0] = 'X';
         return V;
       }},
      {"checksum-flip",
       [](const std::string &B) {
         std::string V = B;
         V[17] = static_cast<char>(V[17] ^ 0xff);
         return V;
       }},
  };
  uint64_t Truncated = Store->stats().Truncated;
  for (const CorruptionCase &C : OtherShapes) {
    spill(Path, C.Mutate(Pristine));
    EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr) << C.Name;
    ++Seen;
    EXPECT_EQ(Store->stats().Quarantined, Seen) << C.Name;
    EXPECT_EQ(Store->stats().Truncated, Truncated) << C.Name;
    Store->put(Key, verifiedSmall(), nullptr);
  }
}

TEST(StoreCorruption, TruncationSweepQuarantinesEveryPrefix) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  JobKey Key = smallKey();
  Store->put(Key, verifiedSmall(), nullptr);
  std::string Path = entryOnDisk(SO.Dir, Key);
  std::string Pristine = slurp(Path);
  ASSERT_GT(Pristine.size(), VerificationStore::HeaderSize);
  // The bit-flip sweep's companion: every prefix length across the
  // header plus a stride over the payload must be a quarantining miss,
  // never a crash or a served entry.
  std::vector<size_t> Lengths;
  for (size_t L = 0; L <= VerificationStore::HeaderSize; ++L)
    Lengths.push_back(L);
  for (size_t L = VerificationStore::HeaderSize + 17; L < Pristine.size();
       L += 17)
    Lengths.push_back(L);
  uint64_t Seen = 0;
  for (size_t L : Lengths) {
    spill(Path, Pristine.substr(0, L));
    EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr)
        << "prefix of " << L << " bytes was served";
    EXPECT_FALSE(fs::exists(Path)) << "prefix of " << L << " bytes";
    ++Seen;
    EXPECT_EQ(Store->stats().Truncated, Seen)
        << "prefix of " << L << " bytes not counted as truncation";
    Store->put(Key, verifiedSmall(), nullptr);
  }
  ASSERT_NE(Store->fetch(Key, smallJob(), nullptr), nullptr);
}

TEST(StoreCorruption, OpenScanCountsTruncationShapesSeparately) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  ProgramResult R = fullResult();
  JobKey K1{1, 10}, K2{2, 20}, K3{3, 30};
  {
    auto Store = VerificationStore::open(SO);
    ASSERT_NE(Store, nullptr);
    Store->put(K1, R, nullptr);
    Store->put(K2, R, nullptr);
    Store->put(K3, R, nullptr);
  }
  // Two truncation shapes and one non-truncation corruption, then
  // reopen as a fresh process: the scan quarantines all three but
  // attributes only the truncations to the truncation counter.
  std::string P1 = entryOnDisk(SO.Dir, K1);
  std::string P2 = entryOnDisk(SO.Dir, K2);
  std::string P3 = entryOnDisk(SO.Dir, K3);
  std::string Bytes = slurp(P1);
  spill(P1, std::string());                                   // zero-length
  spill(P2, slurp(P2).substr(0, Bytes.size() / 2));           // torn payload
  std::string BadMagic = slurp(P3);
  BadMagic[0] = 'X';
  spill(P3, BadMagic);
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->stats().Quarantined, 3u);
  EXPECT_EQ(Store->stats().Truncated, 2u);
  EXPECT_EQ(Store->entryCount(), 0u);
  // The store keeps working after the purge.
  Store->put(K1, R, nullptr);
  EXPECT_NE(Store->fetch(K1, smallJob(), nullptr), nullptr);
}

//===----------------------------------------------------------------------===//
// Failpoints on the commit path: failures counted, store never dirtied
//===----------------------------------------------------------------------===//

TEST(StoreFailpoints, CommitBoundaryFaultsCountWriteFailures) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  JobKey Key = smallKey();
  // One fault per commit boundary: the put must fail closed — counted,
  // no committed entry, no temp-file litter — and the store must serve
  // again the moment the fault clears.
  const char *Specs[] = {
      "store.write=err:enospc@1",
      "store.write=short@1",
      "store.fsync=err@1",
      "store.rename=err@1",
  };
  uint64_t Failures = 0;
  for (const char *Spec : Specs) {
    failpoint::ScopedSpec FP(Spec);
    ASSERT_TRUE(FP.Ok) << Spec << ": " << FP.Error;
    Store->put(Key, verifiedSmall(), nullptr);
    EXPECT_EQ(Store->stats().WriteFailures, ++Failures) << Spec;
    EXPECT_EQ(Store->fetch(Key, smallJob(), nullptr), nullptr) << Spec;
    for (const auto &E : fs::directory_iterator(SO.Dir))
      EXPECT_NE(E.path().filename().string().substr(0, 5), ".tmp-")
          << Spec << " left " << E.path();
  }
  EXPECT_EQ(Store->stats().Writes, 0u);
  Store->put(Key, verifiedSmall(), nullptr);
  EXPECT_EQ(Store->stats().Writes, 1u);
  EXPECT_NE(Store->fetch(Key, smallJob(), nullptr), nullptr);
}

//===----------------------------------------------------------------------===//
// LRU eviction under a byte budget
//===----------------------------------------------------------------------===//

TEST(StoreEviction, OldestEntriesGoFirstAndAHitRefreshes) {
  TempDir Tmp;
  ProgramResult R = fullResult(); // constant size for every key
  JobKey K1{1, 10}, K2{2, 20}, K3{3, 30}, K4{4, 40};
  uint64_t EntrySize = VerificationStore::encodeEntry(K1, R).size();
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  SO.BudgetBytes = 3 * EntrySize;
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  Store->put(K1, R, nullptr);
  Store->put(K2, R, nullptr);
  Store->put(K3, R, nullptr);
  // Make the relative ages unambiguous regardless of mtime granularity.
  auto Now = fs::file_time_type::clock::now();
  fs::last_write_time(entryOnDisk(SO.Dir, K1), Now - std::chrono::hours(3));
  fs::last_write_time(entryOnDisk(SO.Dir, K2), Now - std::chrono::hours(2));
  fs::last_write_time(entryOnDisk(SO.Dir, K3), Now - std::chrono::hours(1));
  // A hit on the oldest entry refreshes it...
  ASSERT_NE(Store->fetch(K1, smallJob(), nullptr), nullptr);
  // ...so the fourth put evicts K2, now the least recently used.
  Store->put(K4, R, nullptr);
  EXPECT_TRUE(fs::exists(entryOnDisk(SO.Dir, K1)));
  EXPECT_FALSE(fs::exists(entryOnDisk(SO.Dir, K2)));
  EXPECT_TRUE(fs::exists(entryOnDisk(SO.Dir, K3)));
  EXPECT_TRUE(fs::exists(entryOnDisk(SO.Dir, K4)));
  EXPECT_EQ(Store->stats().EvictedEntries, 1u);
  EXPECT_EQ(Store->stats().EvictedBytes, EntrySize);
  EXPECT_LE(Store->residentBytes(), SO.BudgetBytes);
}

TEST(StoreEviction, UnboundedStoreNeverEvicts) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  ProgramResult R = fullResult();
  for (uint64_t I = 1; I <= 8; ++I)
    Store->put(JobKey{I, I * 100}, R, nullptr);
  EXPECT_EQ(Store->entryCount(), 8u);
  EXPECT_EQ(Store->stats().EvictedEntries, 0u);
}

//===----------------------------------------------------------------------===//
// --store-verify: proofs re-checked before an entry is trusted
//===----------------------------------------------------------------------===//

TEST(StoreVerify, GenuineEntryPassesRecheck) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  {
    auto Store = VerificationStore::open(SO);
    ASSERT_NE(Store, nullptr);
    Store->put(smallKey(), verifiedSmall(), nullptr);
  }
  StoreOptions Verify = SO;
  Verify.VerifyProofsOnLoad = true;
  auto Store = VerificationStore::open(Verify);
  ASSERT_NE(Store, nullptr);
  auto Hit = Store->fetch(smallKey(), smallJob(), nullptr);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Store->stats().VerifiedProofs, 1u);
  EXPECT_EQ(Store->stats().VerifyFailures, 0u);
}

TEST(StoreVerify, ValidFormatButUncoveredClaimsAreRejected) {
  // The dangerous tamper is not random damage (the checksum catches
  // that) but a well-formed entry whose proof section no longer covers
  // its claims. Strip the proofs to an empty-but-valid section: the
  // verdict still says Ok with bounds, so --store-verify must reject.
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  SO.VerifyProofsOnLoad = true;
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  ProgramResult Tampered = verifiedSmall();
  ByteWriter W;
  writeContext(W, logic::FunctionContext{}); // empty Gamma
  W.u64(0);                                  // no bounds
  Tampered.ProofBlob = W.take();
  // Forge the entry directly (an honest put would store honest bytes,
  // but the attacker writes the file; the checksum is over the forged
  // payload, so only the proof re-check can catch it).
  spill(entryOnDisk(SO.Dir, smallKey()),
        VerificationStore::encodeEntry(smallKey(), Tampered));
  EXPECT_EQ(Store->fetch(smallKey(), smallJob(), nullptr), nullptr);
  EXPECT_EQ(Store->stats().VerifyFailures, 1u);
  EXPECT_FALSE(fs::exists(entryOnDisk(SO.Dir, smallKey())));
}

TEST(StoreVerify, OkVerdictWithoutProofsIsRejected) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  SO.VerifyProofsOnLoad = true;
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  ProgramResult Stripped = verifiedSmall();
  Stripped.ProofBlob.clear();
  spill(entryOnDisk(SO.Dir, smallKey()),
        VerificationStore::encodeEntry(smallKey(), Stripped));
  EXPECT_EQ(Store->fetch(smallKey(), smallJob(), nullptr), nullptr);
  EXPECT_EQ(Store->stats().VerifyFailures, 1u);
}

TEST(StoreVerify, FailedVerdictNeedsNoProofs) {
  TempDir Tmp;
  StoreOptions SO;
  SO.Dir = Tmp.sub("store");
  SO.VerifyProofsOnLoad = true;
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  ProgramResult Failed;
  Failed.Id = "bad.c";
  Failed.Ok = false;
  Failed.Status = JobStatus::Failed;
  Failed.Diagnostics = "error: nope\n";
  Store->put(smallKey(), Failed, nullptr);
  auto Hit = Store->fetch(smallKey(), smallJob(), nullptr);
  ASSERT_NE(Hit, nullptr);
  EXPECT_FALSE(Hit->Ok);
}

//===----------------------------------------------------------------------===//
// Concurrency: many processes, one store
//===----------------------------------------------------------------------===//

TEST(StoreConcurrency, ManyProcessesShareOneStoreSafely) {
  TempDir Tmp;
  std::string Dir = Tmp.sub("store");
  const ProgramResult &R = verifiedSmall(); // verify once, before forking
  constexpr int Kids = 4, Rounds = 24;
  std::vector<pid_t> Pids;
  for (int Kid = 0; Kid != Kids; ++Kid) {
    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: its own handle, its own flock holder. gtest macros are
      // unusable here; communicate through the exit code.
      StoreOptions SO;
      SO.Dir = Dir;
      auto Store = VerificationStore::open(SO);
      if (!Store)
        _exit(10);
      for (int Round = 0; Round != Rounds; ++Round) {
        JobKey Key{static_cast<uint64_t>(Round % 6 + 1),
                   static_cast<uint64_t>(1000 + Round % 6)};
        Store->put(Key, R, nullptr);
        auto Hit = Store->fetch(Key, smallJob(), nullptr);
        if (!Hit)
          _exit(11); // nothing evicts; a miss means a torn read
        if (Hit->Id != R.Id || Hit->ProofBlob != R.ProofBlob)
          _exit(12); // served bytes from a different (torn) entry
        if (Store->fetch(JobKey{999, 999}, smallJob(), nullptr))
          _exit(13);
      }
      _exit(0);
    }
    Pids.push_back(Pid);
  }
  for (pid_t Pid : Pids) {
    int WStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    ASSERT_TRUE(WIFEXITED(WStatus));
    EXPECT_EQ(WEXITSTATUS(WStatus), 0);
  }
  // Afterwards every resident entry must validate: a fresh open scan
  // quarantines nothing.
  StoreOptions SO;
  SO.Dir = Dir;
  auto Store = VerificationStore::open(SO);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->stats().Quarantined, 0u);
  EXPECT_EQ(Store->entryCount(), 6u);
}

//===----------------------------------------------------------------------===//
// Acceptance: warm rerun in a separate process
//===----------------------------------------------------------------------===//

TEST(StoreAcceptance, WarmCorpusRerunInAFreshProcessServesEverything) {
  TempDir Tmp;
  std::string StoreDir = Tmp.sub("store");
  auto RunOnce = [&](const std::string &JsonPath,
                     const std::string &MetaPath) {
    pid_t Pid = fork();
    if (Pid == 0) {
      StoreOptions SO;
      SO.Dir = StoreDir;
      auto Store = VerificationStore::open(SO);
      if (!Store)
        _exit(10);
      std::vector<BatchJob> Jobs = corpusJobs(/*ValidateTranslation=*/true);
      BatchOptions BO;
      BO.Jobs = 4;
      BO.Store = Store.get();
      BatchResult R = runBatch(Jobs, BO);
      {
        std::ofstream Out(JsonPath, std::ios::binary);
        Out << metricsJson(R, JsonDetail::Deterministic);
      }
      {
        std::ofstream Out(MetaPath);
        Out << R.FreshProofNodes << ' ' << R.storeHits() << ' '
            << R.Programs.size() << ' ' << (R.allOk() ? 1 : 0);
      }
      _exit(0);
    }
    int WStatus = 0;
    EXPECT_EQ(waitpid(Pid, &WStatus, 0), Pid);
    return WIFEXITED(WStatus) ? WEXITSTATUS(WStatus) : -1;
  };

  std::string ColdJson = Tmp.sub("cold.json"), ColdMeta = Tmp.sub("cold.meta");
  std::string WarmJson = Tmp.sub("warm.json"), WarmMeta = Tmp.sub("warm.meta");
  ASSERT_EQ(RunOnce(ColdJson, ColdMeta), 0);
  ASSERT_EQ(RunOnce(WarmJson, WarmMeta), 0);

  uint64_t ColdFresh = 0, WarmFresh = 0;
  unsigned ColdHits = 0, WarmHits = 0, ColdJobs = 0, WarmJobs = 0;
  int ColdOk = 0, WarmOk = 0;
  {
    std::istringstream In(slurp(ColdMeta));
    In >> ColdFresh >> ColdHits >> ColdJobs >> ColdOk;
  }
  {
    std::istringstream In(slurp(WarmMeta));
    In >> WarmFresh >> WarmHits >> WarmJobs >> WarmOk;
  }
  ASSERT_GT(ColdJobs, 0u);
  EXPECT_EQ(ColdOk, 1);
  EXPECT_EQ(ColdHits, 0u);
  EXPECT_GT(ColdFresh, 0u) << "cold run did fresh proof checking";
  // The acceptance criterion: 100% store hits, verdicts and metrics
  // byte-identical modulo timings, and measurably less proof-checker
  // work — here, none at all.
  EXPECT_EQ(WarmOk, 1);
  EXPECT_EQ(WarmJobs, ColdJobs);
  EXPECT_EQ(WarmHits, WarmJobs) << "a warm job missed the store";
  EXPECT_EQ(WarmFresh, 0u) << "warm run re-checked proofs it should not";
  EXPECT_LT(WarmFresh, ColdFresh);
  std::string Cold = slurp(ColdJson), Warm = slurp(WarmJson);
  ASSERT_FALSE(Cold.empty());
  EXPECT_EQ(Cold, Warm) << "deterministic metrics drifted across the store";
}

} // namespace
