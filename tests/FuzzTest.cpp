//===- tests/FuzzTest.cpp - The hardening harness, as a ctest target ------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-injection / no-crash harness (src/fuzz) as a test suite,
/// labeled `fuzz` so it can run as its own ctest slice:
///
///   ctest -L fuzz
///
/// The invariant under test, everywhere: no input crashes qcc or
/// extracts an unsound bound — every input either verifies or produces
/// diagnostics. Includes a seeded smoke campaign (256 programs, 64
/// derivation mutants, every pass-boundary fault) and a regression
/// corpus of previously interesting inputs under tests/fuzz-corpus/.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "fuzz/FaultInject.h"
#include "fuzz/Fuzz.h"
#include "fuzz/Generator.h"
#include "fuzz/Mutator.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace qcc;
using namespace qcc::fuzz;

namespace {

/// Compiles \p Source with default options and checks the no-crash
/// contract: success, or failure with at least one diagnostic.
testing::AssertionResult compilesOrDiagnoses(const std::string &Source) {
  DiagnosticEngine Diags;
  auto C = driver::compile(Source, Diags);
  if (!C && !Diags.hasErrors())
    return testing::AssertionFailure()
           << "rejected without any diagnostic:\n"
           << Source.substr(0, 400);
  return testing::AssertionSuccess();
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(Generator, Deterministic) {
  EXPECT_EQ(ProgramGenerator(42).generate(), ProgramGenerator(42).generate());
  EXPECT_NE(ProgramGenerator(42).generate(), ProgramGenerator(43).generate());
}

TEST(Generator, AdversarialDeterministic) {
  for (unsigned K = 0; K != NumAdversarialKinds; ++K) {
    auto Kind = static_cast<AdversarialKind>(K);
    EXPECT_EQ(generateAdversarial(Kind, 7), generateAdversarial(Kind, 7))
        << adversarialKindName(Kind);
  }
}

// Every adversarial family, several seeds each: compile or diagnose,
// never crash. This is the test that would stack-overflow without the
// parser's nesting limit.
TEST(Generator, AdversarialNoCrash) {
  for (unsigned K = 0; K != NumAdversarialKinds; ++K) {
    auto Kind = static_cast<AdversarialKind>(K);
    for (uint64_t Seed = 1; Seed <= 3; ++Seed)
      EXPECT_TRUE(compilesOrDiagnoses(generateAdversarial(Kind, Seed)))
          << adversarialKindName(Kind) << " seed " << Seed;
  }
}

// The near-limit family must still parse: the nesting limit may not eat
// into legitimately deep expressions.
TEST(Generator, DeepExpressionStillCompiles) {
  DiagnosticEngine Diags;
  auto C = driver::compile(
      generateAdversarial(AdversarialKind::DeepExpression, 1), Diags);
  EXPECT_TRUE(C.has_value()) << Diags.str();
}

TEST(Generator, DeeperThanParserIsDiagnosed) {
  DiagnosticEngine Diags;
  auto C = driver::compile(
      generateAdversarial(AdversarialKind::DeeperThanParser, 1), Diags);
  EXPECT_FALSE(C.has_value());
  EXPECT_NE(Diags.str().find("nesting exceeds the parser limit"),
            std::string::npos)
      << Diags.str();
}

//===----------------------------------------------------------------------===//
// Derivation mutation
//===----------------------------------------------------------------------===//

TEST(Mutator, RejectsEveryMutant) {
  MutationReport R = mutateDerivations(/*Seed=*/1, /*Count=*/64);
  EXPECT_EQ(R.Tried, 64u);
  EXPECT_EQ(R.Rejected, 64u);
  for (const std::string &S : R.Survivors)
    ADD_FAILURE() << S;
}

TEST(Mutator, DifferentSeedsStillAllRejected) {
  MutationReport R = mutateDerivations(/*Seed=*/999, /*Count=*/32);
  EXPECT_EQ(R.Tried, 32u);
  EXPECT_TRUE(R.ok()) << R.Survivors.front();
}

//===----------------------------------------------------------------------===//
// Pass-boundary fault injection
//===----------------------------------------------------------------------===//

TEST(FaultInjection, EveryFaultIsRejectedWithDiagnostics) {
  const char *Source = "typedef unsigned int u32;\n"
                       "u32 g0[8];\n"
                       "u32 total = 0;\n"
                       "u32 helper(u32 n, u32 step) {\n"
                       "  u32 acc, i0;\n"
                       "  acc = n;\n"
                       "  for (i0 = 0; i0 < 4; i0++) {\n"
                       "    g0[(acc + i0) % 8] = acc;\n"
                       "    acc = acc + step;\n"
                       "    if (100u < acc) break;\n"
                       "  }\n"
                       "  total = total + acc;\n"
                       "  return acc;\n"
                       "}\n"
                       "int main() {\n"
                       "  u32 x;\n"
                       "  x = helper(3u, 2u);\n"
                       "  x = x + helper(x, 1u);\n"
                       "  return (int)(x & 0xff);\n"
                       "}\n";
  for (size_t I = 0; I != allFaults().size(); ++I) {
    std::string Violation = injectAndCheck(I, Source, /*Seed=*/I + 1);
    EXPECT_TRUE(Violation.empty()) << Violation;
  }
}

//===----------------------------------------------------------------------===//
// The full harness (what `qcc --fuzz` runs)
//===----------------------------------------------------------------------===//

TEST(Harness, SmokeCampaign) {
  FuzzOptions Options;
  Options.Count = 256;
  Options.Seed = 1;
  Options.Mutants = 64;
  FuzzReport R = runFuzz(Options);
  EXPECT_EQ(R.Generated, 256u);
  EXPECT_EQ(R.Verified + R.Diagnosed, 256u) << R.str();
  EXPECT_GT(R.Verified, 0u);  // Most grammar-random programs verify.
  EXPECT_GT(R.Diagnosed, 0u); // Garbage/truncated inputs are diagnosed.
  EXPECT_EQ(R.MutantsTried, 64u);
  EXPECT_EQ(R.MutantsRejected, 64u);
  EXPECT_EQ(R.FaultsTried, allFaults().size());
  EXPECT_EQ(R.FaultsRejected, allFaults().size());
  EXPECT_TRUE(R.ok()) << R.str();
}

// Campaign 4 (crash-recovery chaos) rides in the harness when
// FailPointRuns > 0 — the CLI runs 200; a short run keeps the ctest
// slice quick while still forking real failpoint-crashed writers. The
// other campaigns are skipped so no worker threads are live at fork
// time.
TEST(Harness, FailPointCampaignRunsAndRecovers) {
  FuzzOptions Options;
  Options.Count = 0;
  Options.Mutants = 0;
  Options.Faults = false;
  Options.FailPointRuns = 16;
  Options.Seed = 3;
  FuzzReport R = runFuzz(Options);
  EXPECT_EQ(R.ChaosRan, 16u) << R.str();
  EXPECT_GT(R.ChaosCrashes, 0u) << R.str();
  EXPECT_TRUE(R.ok()) << R.str();
}

//===----------------------------------------------------------------------===//
// Regression corpus
//===----------------------------------------------------------------------===//

// Inputs that were interesting once stay interesting: every file under
// tests/fuzz-corpus/ must compile or diagnose, forever.
TEST(Corpus, EveryFileCompilesOrDiagnoses) {
  namespace fs = std::filesystem;
  const char *Dir = QCC_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(fs::is_directory(Dir)) << Dir;
  unsigned Seen = 0;
  for (const auto &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".c")
      continue;
    ++Seen;
    std::ifstream In(Entry.path());
    ASSERT_TRUE(In.good()) << Entry.path();
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    EXPECT_TRUE(compilesOrDiagnoses(Buffer.str()))
        << "corpus file " << Entry.path();
  }
  EXPECT_GE(Seen, 5u) << "fuzz corpus went missing";
}

} // namespace
