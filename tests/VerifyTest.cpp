//===- tests/VerifyTest.cpp - Clight well-formedness verifier tests -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier guards every Clight consumer (interpreter, logic,
/// analyzer, lowering) against malformed core programs. The frontend can
/// never produce most of these shapes, so they are built by hand.
///
//===----------------------------------------------------------------------===//

#include "clight/Verify.h"

#include <gtest/gtest.h>

using namespace qcc;
using namespace qcc::clight;

namespace {

/// A minimal well-formed program: int main() { return 0; }.
Program makeBaseline() {
  Program P;
  Function Main;
  Main.Name = "main";
  Main.ReturnsValue = true;
  Main.Body = Stmt::ret(Expr::intConst(0));
  P.Functions.push_back(std::move(Main));
  return P;
}

bool verifies(const Program &P) {
  DiagnosticEngine D;
  return verify(P, D);
}

TEST(Verify, BaselineIsWellFormed) {
  EXPECT_TRUE(verifies(makeBaseline()));
}

TEST(Verify, MissingEntryPointRejected) {
  Program P = makeBaseline();
  P.EntryPoint = "start";
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, EntryPointWithParametersRejected) {
  Program P = makeBaseline();
  P.Functions[0].Params.push_back("argc");
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, BreakOutsideLoopRejected) {
  Program P = makeBaseline();
  P.Functions[0].Body =
      Stmt::seq(Stmt::brk(), Stmt::ret(Expr::intConst(0)));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, BreakInsideLoopAccepted) {
  Program P = makeBaseline();
  P.Functions[0].Body = Stmt::seq(Stmt::loop(Stmt::brk()),
                                  Stmt::ret(Expr::intConst(0)));
  EXPECT_TRUE(verifies(P));
}

TEST(Verify, UnboundLocalReadRejected) {
  Program P = makeBaseline();
  P.Functions[0].Body = Stmt::ret(Expr::localRead("ghost"));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, UnknownCalleeRejected) {
  Program P = makeBaseline();
  P.Functions[0].Body = Stmt::seq(Stmt::call("nowhere", {}),
                                  Stmt::ret(Expr::intConst(0)));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, CallArityMismatchRejected) {
  Program P = makeBaseline();
  Function F;
  F.Name = "f";
  F.Params = {"x"};
  F.VarSigns["x"] = Signedness::Unsigned;
  F.ReturnsValue = true;
  F.Body = Stmt::ret(Expr::localRead("x"));
  P.Functions.push_back(std::move(F));
  P.Functions[0].Body =
      Stmt::seq(Stmt::call("f", {}), Stmt::ret(Expr::intConst(0)));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, VoidResultAssignmentRejected) {
  Program P = makeBaseline();
  Function F;
  F.Name = "f";
  F.ReturnsValue = false;
  F.Body = Stmt::retVoid();
  P.Functions.push_back(std::move(F));
  P.Functions[0].Locals = {"x"};
  P.Functions[0].Body = Stmt::seq(
      Stmt::callAssign(LValue::local("x"), "f", {}),
      Stmt::ret(Expr::intConst(0)));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, ReturnValueFromVoidFunctionRejected) {
  Program P = makeBaseline();
  Function F;
  F.Name = "f";
  F.ReturnsValue = false;
  F.Body = Stmt::ret(Expr::intConst(1)); // Value from a void function.
  P.Functions.push_back(std::move(F));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, MissingReturnValueRejected) {
  Program P = makeBaseline();
  P.Functions[0].Body = Stmt::retVoid(); // main returns a value.
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, ScalarSubscriptRejected) {
  Program P = makeBaseline();
  GlobalVar G;
  G.Name = "g";
  G.IsArray = false;
  G.Size = 1;
  P.Globals.push_back(G);
  P.Functions[0].Body =
      Stmt::ret(Expr::arrayRead("g", Expr::intConst(0)));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, ArrayReadWithoutSubscriptRejected) {
  Program P = makeBaseline();
  GlobalVar G;
  G.Name = "a";
  G.IsArray = true;
  G.Size = 4;
  P.Globals.push_back(G);
  P.Functions[0].Body = Stmt::ret(Expr::globalRead("a"));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, DuplicateFunctionRejected) {
  Program P = makeBaseline();
  P.Functions.push_back(P.Functions[0].clone());
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, DuplicateGlobalAndFunctionNameRejected) {
  Program P = makeBaseline();
  GlobalVar G;
  G.Name = "main";
  P.Globals.push_back(G);
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, DuplicateLocalRejected) {
  Program P = makeBaseline();
  P.Functions[0].Locals = {"x", "x"};
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, FunctionWithoutBodyRejected) {
  Program P = makeBaseline();
  Function F;
  F.Name = "f";
  P.Functions.push_back(std::move(F));
  EXPECT_FALSE(verifies(P));
}

TEST(Verify, CloneVerifiesLikeTheOriginal) {
  Program P = makeBaseline();
  GlobalVar G;
  G.Name = "a";
  G.IsArray = true;
  G.Size = 8;
  P.Globals.push_back(G);
  P.Functions[0].Locals = {"i"};
  P.Functions[0].VarSigns["i"] = Signedness::Unsigned;
  P.Functions[0].Body = Stmt::seq(
      Stmt::assign(LValue::arrayElem("a", Expr::localRead("i")),
                   Expr::intConst(5)),
      Stmt::ret(Expr::arrayRead("a", Expr::intConst(0))));
  ASSERT_TRUE(verifies(P));
  Program Q = P.clone();
  EXPECT_TRUE(verifies(Q));
  EXPECT_EQ(P.str(), Q.str());
}

} // namespace
