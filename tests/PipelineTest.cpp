//===- tests/PipelineTest.cpp - Cross-level translation validation --------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays every pipeline level on the same programs and checks
/// quantitative refinement between adjacent levels — the executable
/// counterpart of the paper's per-pass Coq proofs (Paper section 3).
///
//===----------------------------------------------------------------------===//

#include "cminor/CminorInterp.h"
#include "cminor/Lower.h"
#include "events/Refinement.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "mach/Mach.h"
#include "rtl/Opt.h"
#include "rtl/Rtl.h"

#include <gtest/gtest.h>

using namespace qcc;

namespace {

clight::Program mustParse(const std::string &Src,
                          std::map<std::string, uint32_t> Defines = {}) {
  DiagnosticEngine D;
  auto P = frontend::parseProgram(Src, D, std::move(Defines));
  EXPECT_TRUE(P) << D.str();
  return P ? std::move(*P) : clight::Program{};
}

/// Runs all levels and checks the refinement chain; returns the Clight
/// behavior for further assertions.
Behavior validatePipeline(const std::string &Src,
                          std::map<std::string, uint32_t> Defines = {}) {
  clight::Program CL = mustParse(Src, std::move(Defines));
  Behavior BClight = interp::runProgram(CL);

  cminor::Program CM = cminor::lowerFromClight(CL);
  Behavior BCminor = cminor::runProgram(CM);

  rtl::Program R = rtl::lowerFromCminor(CM);
  Behavior BRtl = rtl::runProgram(R);

  rtl::Program ROpt = rtl::lowerFromCminor(CM);
  rtl::optimizeProgram(ROpt);
  Behavior BRtlOpt = rtl::runProgram(ROpt);

  mach::Program M = mach::lowerFromRtl(ROpt);
  Behavior BMach = mach::runProgram(M);

  auto Check = [](const Behavior &Target, const Behavior &Source,
                  const char *Pass) {
    RefinementResult QR = checkQuantitativeRefinement(Target, Source);
    EXPECT_TRUE(QR.Ok) << Pass << ": " << QR.Reason << "\n  target "
                       << Target.str() << "\n  source " << Source.str();
    RefinementResult FW = falsifyWeightDominance(Target, Source);
    EXPECT_TRUE(FW.Ok) << Pass << " (metric falsifier): " << FW.Reason;
  };
  Check(BCminor, BClight, "Clight->Cminor");
  Check(BRtl, BCminor, "Cminor->RTL");
  Check(BRtlOpt, BRtl, "RTL optimizations");
  Check(BMach, BRtlOpt, "RTL->Mach");
  return BClight;
}

int32_t pipelineResult(const std::string &Src,
                       std::map<std::string, uint32_t> Defines = {}) {
  Behavior B = validatePipeline(Src, std::move(Defines));
  EXPECT_TRUE(B.converged()) << B.str();
  return B.ReturnCode;
}

//===----------------------------------------------------------------------===//
// Straight-line and arithmetic programs
//===----------------------------------------------------------------------===//

TEST(Pipeline, Constants) {
  EXPECT_EQ(pipelineResult("int main() { return 41; }"), 41);
}

TEST(Pipeline, ArithmeticMix) {
  EXPECT_EQ(pipelineResult(
                "int main() { int a = -7; u32 b = 3;\n"
                "  return a / 2 + (int)(b * 5) - (a % 3) + (1 << 4); }"),
            -3 + 15 + 1 + 16);
}

TEST(Pipeline, SignedUnsignedOps) {
  EXPECT_EQ(pipelineResult("int main() { int a = -8; u32 b = 0x80000000u;\n"
                           "  int x = a >> 2; u32 y = b >> 30;\n"
                           "  return x + (int)y; }"),
            -2 + 2);
}

TEST(Pipeline, GlobalsAndArrays) {
  EXPECT_EQ(pipelineResult("u32 acc = 5;\nu32 a[4] = {1, 2, 3, 4};\n"
                           "int main() { acc += a[2]; a[3] = acc;\n"
                           "  return a[3] + a[0]; }"),
            9);
}

TEST(Pipeline, TernaryAndShortCircuit) {
  EXPECT_EQ(pipelineResult(
                "u32 a[4];\n"
                "int main() { u32 i = 9;\n"
                "  int ok = (i < 4 && a[i] > 0) ? 1 : 0;\n"
                "  int other = (i > 4 || a[0] > 0) ? 7 : 2;\n"
                "  return ok * 10 + other; }"),
            7);
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

TEST(Pipeline, Loops) {
  EXPECT_EQ(pipelineResult("int main() { u32 s = 0; u32 i;\n"
                           "  for (i = 0; i < 10; i++) { if (i == 7) break;"
                           " s += i; }\n"
                           "  do { s += 100; } while (s < 200);\n"
                           "  return s; }"),
            221);
}

TEST(Pipeline, NestedLoopsWithBreak) {
  EXPECT_EQ(pipelineResult(
                "int main() { u32 n = 0; u32 i; u32 j;\n"
                "  for (i = 0; i < 3; i++)\n"
                "    for (j = 0; j < 10; j++) { if (j == 2) break; n++; }\n"
                "  return n; }"),
            6);
}

//===----------------------------------------------------------------------===//
// Calls and recursion
//===----------------------------------------------------------------------===//

TEST(Pipeline, CallsWithManyArguments) {
  EXPECT_EQ(pipelineResult(
                "u32 f(u32 a, u32 b, u32 c, u32 d, u32 e, u32 g) {\n"
                "  return a + 2*b + 3*c + 4*d + 5*e + 6*g; }\n"
                "int main() { return f(1, 2, 3, 4, 5, 6); }"),
            1 + 4 + 9 + 16 + 25 + 36);
}

TEST(Pipeline, RecursionFibonacci) {
  EXPECT_EQ(pipelineResult("u32 fib(u32 n) { if (n < 2) return n;\n"
                           "  return fib(n - 1) + fib(n - 2); }\n"
                           "int main() { return fib(12); }"),
            144);
}

TEST(Pipeline, VoidFunctionsAndGlobalEffects) {
  EXPECT_EQ(pipelineResult("u32 g;\n"
                           "void bump(u32 v) { g += v; }\n"
                           "int main() { bump(3); bump(4); return g; }"),
            7);
}

TEST(Pipeline, ExternalCallsKeepIOEvents) {
  Behavior B = validatePipeline("extern void print(int);\n"
                                "int main() { print(42); print(43); "
                                "return 0; }");
  Trace IO = pruneMemoryEvents(B.Events);
  ASSERT_EQ(IO.size(), 2u);
  EXPECT_EQ(IO[0].args()[0], 42);
  EXPECT_EQ(IO[1].args()[0], 43);
}

//===----------------------------------------------------------------------===//
// Faults propagate as failures at every level
//===----------------------------------------------------------------------===//

TEST(Pipeline, DivisionByZeroFailsEverywhere) {
  clight::Program CL = mustParse(
      "int main() { int a = 1; int b = 0; return a / b; }");
  EXPECT_TRUE(interp::runProgram(CL).failed());
  cminor::Program CM = cminor::lowerFromClight(CL);
  EXPECT_TRUE(cminor::runProgram(CM).failed());
  rtl::Program R = rtl::lowerFromCminor(CM);
  EXPECT_TRUE(rtl::runProgram(R).failed());
  rtl::optimizeProgram(R);
  EXPECT_TRUE(rtl::runProgram(R).failed());
  mach::Program M = mach::lowerFromRtl(R);
  EXPECT_TRUE(mach::runProgram(M).failed());
}

//===----------------------------------------------------------------------===//
// The section 2 program, whole pipeline
//===----------------------------------------------------------------------===//

const char *Section2Source = R"(
#define ALEN 64
#define SEED 1
typedef unsigned int u32;
u32 a[ALEN];
u32 seed = SEED;
u32 search(u32 elem, u32 beg, u32 end) {
  u32 mid = beg + (end - beg) / 2;
  if (end - beg <= 1) return beg;
  if (a[mid] > elem) end = mid; else beg = mid;
  return search(elem, beg, end);
}
u32 random() { seed = (seed * 1664525) + 1013904223; return seed; }
void init() {
  u32 i, rnd, prev = 0;
  for (i = 0; i < ALEN; i++) {
    rnd = random();
    a[i] = prev + rnd % 17;
    prev = a[i];
  }
}
int main() {
  u32 idx, elem;
  init();
  elem = random() % (17 * ALEN);
  idx = search(elem, 0, ALEN);
  return a[idx] == elem;
}
)";

TEST(Pipeline, Section2WholeProgram) {
  Behavior B = validatePipeline(Section2Source);
  EXPECT_TRUE(B.converged());
}

TEST(Pipeline, Section2SweepOverAlen) {
  for (uint32_t Alen : {2u, 17u, 128u}) {
    Behavior B = validatePipeline(Section2Source, {{"ALEN", Alen}});
    EXPECT_TRUE(B.converged()) << "ALEN=" << Alen;
  }
}

//===----------------------------------------------------------------------===//
// Mach level: frame sizes and the cost metric
//===----------------------------------------------------------------------===//

TEST(Pipeline, CostMetricCoversEveryFunction) {
  clight::Program CL = mustParse(Section2Source);
  rtl::Program R = rtl::lowerFromCminor(cminor::lowerFromClight(CL));
  rtl::optimizeProgram(R);
  mach::Program M = mach::lowerFromRtl(R);
  StackMetric Metric = M.costMetric();
  for (const char *F : {"main", "init", "random", "search"}) {
    ASSERT_TRUE(Metric.hasCost(F)) << F;
    // M(f) = SF(f) + 4 >= 4 always.
    EXPECT_GE(Metric.cost(F), 4u) << F;
    EXPECT_EQ(Metric.cost(F) % 4, 0u) << F;
  }
}

TEST(Pipeline, MachWeightUnderCompilerMetricIsBounded) {
  // The Mach trace weight under the compiler's own metric is the number
  // of bytes the assembly will need; sanity-check it is positive and
  // consistent across runs.
  clight::Program CL = mustParse(Section2Source);
  rtl::Program R = rtl::lowerFromCminor(cminor::lowerFromClight(CL));
  rtl::optimizeProgram(R);
  mach::Program M = mach::lowerFromRtl(R);
  Behavior B = mach::runProgram(M);
  ASSERT_TRUE(B.converged()) << B.str();
  uint64_t W = weight(M.costMetric(), B.Events);
  EXPECT_GT(W, 0u);
  EXPECT_LT(W, 4096u); // 64-element search: far below a page.
}

TEST(Pipeline, OptimizationsShrinkOrKeepFrames) {
  // The RTL optimizations may only reduce register pressure: frame sizes
  // after optimization must not exceed the unoptimized ones.
  clight::Program CL = mustParse(Section2Source);
  rtl::Program RPlain = rtl::lowerFromCminor(cminor::lowerFromClight(CL));
  rtl::Program ROpt = rtl::lowerFromCminor(cminor::lowerFromClight(CL));
  rtl::optimizeProgram(ROpt);
  mach::Program MPlain = mach::lowerFromRtl(RPlain);
  mach::Program MOpt = mach::lowerFromRtl(ROpt);
  for (const mach::Function &F : MOpt.Functions) {
    const mach::Function *Plain = MPlain.findFunction(F.Name);
    ASSERT_TRUE(Plain);
    EXPECT_LE(F.frameSize(), Plain->frameSize()) << F.Name;
  }
}

} // namespace
