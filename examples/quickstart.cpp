//===- examples/quickstart.cpp - First steps with qcc ---------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ninety-second tour: compile a small C program with the
/// quantitative compiler, look at the produced assembly and cost metric,
/// read off the automatically verified stack bound, and confirm it
/// against the finite-stack machine.
///
/// Build and run:
///   cmake --build build --target quickstart && ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace qcc;

int main() {
  // A program in the verified C subset. `#define` parameters, u32/int,
  // globals, arrays, loops and calls are all supported; recursion is too
  // (it then needs an interactively supplied bound — see the
  // interactive_proof example).
  const char *Source = R"(
#define ROUNDS 10

typedef unsigned int u32;

u32 counter;

u32 square(u32 x) {
  return x * x;
}

u32 step(u32 x) {
  counter = counter + 1;
  return square(x) % 1000;
}

int main() {
  u32 i, acc;
  acc = 7;
  for (i = 0; i < ROUNDS; i++) {
    acc = step(acc) + 1;
  }
  return (int)acc;
}
)";

  // 1. Compile. Translation validation replays every pipeline level
  //    (Clight -> Cminor -> RTL -> Mach -> ASM_sz) and certifies
  //    quantitative refinement per pass; the automatic stack analyzer
  //    derives a bound for every function and validates each derivation
  //    with the proof checker.
  DiagnosticEngine Diags;
  auto C = driver::compile(Source, Diags);
  if (!C) {
    printf("compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // 2. The produced artifacts: assembly and the cost metric
  //    M(f) = SF(f) + 4 derived from the Mach frame layout.
  printf("=== assembly ===\n%s\n", C->Asm.str().c_str());
  printf("=== cost metric ===\n%s\n\n", C->Metric.str().c_str());

  // 3. The verified bounds — symbolic (metric-parametric) and concrete.
  printf("=== verified stack bounds ===\n");
  for (const char *F : {"square", "step", "main"}) {
    logic::BoundExpr Symbolic = C->Bounds.callBound(F);
    auto Concrete = driver::concreteCallBound(*C, F);
    printf("  %-8s %-40s = %llu bytes\n", F, Symbolic->str().c_str(),
           static_cast<unsigned long long>(Concrete.value_or(0)));
  }

  // 4. Check the bound against reality: measure a run, then run again
  //    with the stack clamped to exactly the bound (Theorem 1).
  auto Bound = driver::concreteCallBound(*C, "main");
  measure::Measurement M = driver::measureStack(*C);
  printf("\nmeasured consumption: %u bytes (exit code %d)\n", M.StackBytes,
         M.ExitCode);
  printf("bound - measured    : %lld bytes\n",
         static_cast<long long>(*Bound) -
             static_cast<long long>(M.StackBytes));

  measure::Measurement Clamped =
      driver::runWithStackSize(*C, static_cast<uint32_t>(*Bound) - 4);
  printf("run at sz = bound-4 : %s\n",
         Clamped.Ok ? "completes without overflow" : Clamped.Error.c_str());
  measure::Measurement TooSmall =
      driver::runWithStackSize(*C, static_cast<uint32_t>(*Bound) - 12);
  printf("run 8 bytes smaller : %s\n",
         TooSmall.StackOverflow ? "stack overflow (as it must)"
                                : "unexpectedly survived");
  return 0;
}
