//===- examples/embedded_firmware.cpp - DO-178C-style stack budgeting -----===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating scenario (section 1): avionics-grade standards
/// such as DO-178C "require verification activities to show that a
/// program in executable form complies with its requirements on stack
/// usage". This example plays the certification engineer: a firmware
/// image with a sensor-filter pipeline gets a stack *budget*, the
/// verified bound is checked against it at "certification time", and the
/// budget's tightness is demonstrated on the machine — including what
/// happens when a maintenance patch blows the budget.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>
#include <string>

using namespace qcc;

namespace {

/// The firmware: a sampling loop over a filter cascade. The PATCHED
/// version (see below) adds a deeper diagnostics path.
const char *FirmwareTemplate = R"(
#define NSAMPLES 64
#define TAPS 8

typedef unsigned int u32;

u32 raw[NSAMPLES];
u32 filtered[NSAMPLES];
u32 coeffs[TAPS] = {3, 5, 7, 9, 9, 7, 5, 3};
u32 fault_count;
u32 gen_state = 0xace1u;

u32 sample_adc() {
  gen_state = gen_state * 75 + 74;
  return gen_state % 4096;
}

u32 fir_tap(u32 idx, u32 tap) {
  if (idx < tap) return 0;
  return raw[idx - tap] * coeffs[tap];
}

u32 fir(u32 idx) {
  u32 t, acc;
  acc = 0;
  for (t = 0; t < TAPS; t++) {
    acc = acc + fir_tap(idx, t);
  }
  return acc / 48;
}

u32 range_check(u32 v) {
  if (v > 4000) {
    fault_count = fault_count + 1;
    return 4000;
  }
  return v;
}

%DIAGNOSTICS%

int main() {
  u32 i;
  for (i = 0; i < NSAMPLES; i++) {
    raw[i] = sample_adc();
  }
  for (i = 0; i < NSAMPLES; i++) {
    filtered[i] = range_check(fir(i));
  }
  %DIAG_CALL%
  return (int)(filtered[NSAMPLES - 1] + fault_count);
}
)";

std::string instantiate(const std::string &Diagnostics,
                        const std::string &DiagCall) {
  std::string S = FirmwareTemplate;
  S.replace(S.find("%DIAGNOSTICS%"), 13, Diagnostics);
  S.replace(S.find("%DIAG_CALL%"), 11, DiagCall);
  return S;
}

} // namespace

int main() {
  // The system requirement: the RTOS gives this task 96 bytes of stack.
  const uint32_t StackBudget = 96;
  printf("=== Certifying firmware against a %u-byte stack budget ===\n\n",
         StackBudget);

  // Release 1: the plain filter pipeline.
  std::string Release1 = instantiate("", ";");
  DiagnosticEngine D1;
  auto C1 = driver::compile(Release1, D1);
  if (!C1) {
    printf("%s", D1.str().c_str());
    return 1;
  }
  auto B1 = driver::concreteCallBound(*C1, "main");
  printf("release 1 verified bound: %llu bytes — %s\n",
         static_cast<unsigned long long>(*B1),
         *B1 <= StackBudget ? "within budget, certifiable"
                            : "OVER BUDGET");
  measure::Measurement R1 =
      driver::runWithStackSize(*C1, StackBudget);
  printf("release 1 on the budgeted stack: %s\n\n",
         R1.Ok ? "runs" : R1.Error.c_str());

  // Release 2: a maintenance patch adds a self-test path with a deeper
  // call chain. The verified bound catches the regression *before* the
  // firmware ships; testing alone might miss the rarely-taken path.
  std::string Release2 = instantiate(R"(
u32 selftest_stage3(u32 v) {
  u32 a, b, c;
  a = fir(v % NSAMPLES);
  b = fir((v + 7) % NSAMPLES);
  c = range_check(a + b);
  return a ^ b ^ c;
}

u32 selftest_stage2(u32 v) {
  u32 x, y;
  x = selftest_stage3(v);
  y = selftest_stage3(v + 1);
  return x ^ y ^ range_check(v);
}

u32 selftest(u32 seed) {
  u32 s1, s2, s3, s4;
  s1 = fir(seed % NSAMPLES);
  s2 = selftest_stage2(s1);
  s3 = range_check(s1 + s2);
  s4 = s1 ^ s2 ^ s3;
  return s4;
}
)",
                                     "fault_count += selftest(3) & 1;");

  DiagnosticEngine D2;
  auto C2 = driver::compile(Release2, D2);
  if (!C2) {
    printf("release 2 failed to compile:\n%s", D2.str().c_str());
    return 1;
  }
  auto B2 = driver::concreteCallBound(*C2, "main");
  printf("release 2 verified bound: %llu bytes — %s\n",
         static_cast<unsigned long long>(*B2),
         *B2 <= StackBudget
             ? "still within budget"
             : "OVER BUDGET: certification gate rejects the patch");
  measure::Measurement R2 = driver::runWithStackSize(*C2, StackBudget);
  printf("release 2 on the budgeted stack: %s\n",
         R2.Ok ? "happens to run (this time)"
               : (R2.StackOverflow ? "stack overflow — exactly the crash "
                                     "the bound predicted"
                                   : R2.Error.c_str()));

  // The verified fix: size the budget from the new bound.
  if (B2) {
    measure::Measurement R3 = driver::runWithStackSize(
        *C2, static_cast<uint32_t>(*B2) - 4);
    printf("release 2 at its verified bound (%llu bytes): %s\n",
           static_cast<unsigned long long>(*B2),
           R3.Ok ? "runs without overflow" : R3.Error.c_str());
  }
  return 0;
}
