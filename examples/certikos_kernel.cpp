//===- examples/certikos_kernel.cpp - Bounding an OS kernel ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's main application: "the stack in CertiKOS is preallocated
/// and proving the absence of stack-overflow is essential in the
/// verification of the reliability of the system" (section 6). This
/// example compiles the CertiKOS-style vmm.c and proc.c modules, derives
/// a checked bound for every kernel entry point, sizes the preallocated
/// kernel stack from the worst bound, and demonstrates that the kernel
/// runs inside it.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "programs/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace qcc;

int main() {
  printf("=== Sizing a preallocated kernel stack with verified bounds ===\n");

  uint64_t KernelStack = 0;
  std::vector<driver::Compilation> Modules;

  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    if (P.Id != "certikos/vmm.c" && P.Id != "certikos/proc.c")
      continue;

    DiagnosticEngine Diags;
    auto C = driver::compile(P.Source, Diags);
    if (!C) {
      printf("%s failed:\n%s", P.Id.c_str(), Diags.str().c_str());
      return 1;
    }
    // Since CertiKOS does not use recursion, the automatic analyzer
    // bounds every function (the paper's section 5 guarantee).
    if (!C->Bounds.SkippedRecursive.empty()) {
      printf("unexpected recursion in %s\n", P.Id.c_str());
      return 1;
    }

    printf("\n%s — verified bounds for every kernel function:\n",
           P.Id.c_str());
    uint64_t ModuleWorst = 0;
    for (const auto &[F, Spec] : C->Bounds.Gamma) {
      auto Bound = driver::concreteCallBound(*C, F);
      if (!Bound)
        continue;
      printf("  %-16s %4llu bytes   (%s)\n", F.c_str(),
             static_cast<unsigned long long>(*Bound),
             C->Bounds.callBound(F)->str().c_str());
      ModuleWorst = std::max(ModuleWorst, *Bound);
    }
    printf("  worst entry point: %llu bytes\n",
           static_cast<unsigned long long>(ModuleWorst));
    KernelStack = std::max(KernelStack, ModuleWorst);
    Modules.push_back(std::move(*C));
  }

  // Size the kernel stack from the verified worst case and prove it
  // suffices by running each module's exerciser inside it.
  printf("\npreallocated kernel stack: %llu bytes (the verified worst "
         "case)\n",
         static_cast<unsigned long long>(KernelStack));
  for (driver::Compilation &C : Modules) {
    measure::Measurement R = driver::runWithStackSize(
        C, static_cast<uint32_t>(KernelStack) - 4);
    printf("  module runs in the kernel stack: %s (exit %d)\n",
           R.Ok ? "yes" : R.Error.c_str(), R.ExitCode);
  }

  // And show the protection is real: a quarter of the stack overflows.
  for (driver::Compilation &C : Modules) {
    measure::Measurement R = driver::runWithStackSize(
        C, static_cast<uint32_t>(KernelStack / 4) & ~3u);
    printf("  quarter-sized stack: %s\n",
           R.StackOverflow ? "trapped by the overflow check"
                           : "no trap (workload fits)");
  }
  return 0;
}
