//===- examples/interactive_proof.cpp - Bounding a recursive function -----===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interactive workflow for recursive functions (the paper does this
/// in Coq; sections 2 and 6, Figure 6). The automatic analyzer refuses
/// recursion, so the user supplies the *specification* — the creative
/// step — and the machinery does the rest:
///
///   1. write the spec  {M * clog2(hi - lo)} bsearch {M * clog2(hi - lo)},
///   2. the backward builder mechanizes the rule applications,
///   3. the proof checker validates every node of the derivation,
///   4. the spec seeds the automatic analyzer, which bounds the callers,
///   5. the compiler metric turns the symbolic bound into bytes.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Frontend.h"
#include "logic/Builder.h"

#include <cstdio>

using namespace qcc;
using namespace qcc::logic;

int main() {
  const char *Source = R"(
#define ALEN 1024

typedef unsigned int u32;

u32 a[ALEN];

u32 bsearch(u32 x, u32 lo, u32 hi) {
  u32 mid = lo + (hi - lo) / 2;
  if (hi - lo <= 1) return lo;
  if (a[mid] > x) hi = mid; else lo = mid;
  return bsearch(x, lo, hi);
}

int main() {
  u32 i;
  for (i = 0; i < ALEN; i++) a[i] = i * 2;
  return (int)bsearch(700, 0, ALEN);
}
)";

  // Step 0: the automatic analyzer alone refuses the recursion.
  DiagnosticEngine PD;
  auto CL = frontend::parseProgram(Source, PD);
  if (!CL) {
    printf("%s", PD.str().c_str());
    return 1;
  }
  {
    DiagnosticEngine AD;
    auto Auto = analysis::analyzeProgram(*CL, AD);
    printf("automatic analyzer alone: %zu function(s) skipped "
           "(recursive)\n\n",
           Auto.SkippedRecursive.size());
  }

  // Step 1: the interactive step — the specification. The halving chain
  // below bsearch(lo, hi) holds exactly clog2(hi - lo) frames.
  FunctionSpec Spec = FunctionSpec::balanced(
      bMul(bMetric("bsearch"),
           bLog2C(IntTermNode::sub(IntTermNode::var("hi"),
                                   IntTermNode::var("lo")))));
  printf("specification: {%s} bsearch(x, lo, hi) {%s}\n\n",
         Spec.Pre->str().c_str(), Spec.Post->str().c_str());

  // Step 2: the builder mechanizes the derivation (substitution through
  // the assignments, path-sensitive join at the conditionals, the
  // balanced-call composition at the recursive site).
  DerivationBuilder Builder(*CL, {}, {});
  DiagnosticEngine BD;
  auto FB = Builder.buildFunctionBound("bsearch", Spec, BD);
  if (!FB) {
    printf("builder failed:\n%s", BD.str().c_str());
    return 1;
  }
  printf("derivation (%zu rule applications):\n%s\n", FB->Body->size(),
         FB->Body->str().c_str());

  // Step 3: the proof checker validates every node. A wrong spec — say,
  // claiming constant depth — is rejected here, not silently accepted.
  ProofChecker Checker(*CL, Builder.context(), {});
  DiagnosticEngine CD;
  bool Ok = Checker.checkFunctionBound(*FB, CD);
  printf("proof checker: %s\n\n", Ok ? "derivation accepted" : CD.str().c_str());

  {
    DerivationBuilder Wrong(*CL, {}, {});
    DiagnosticEngine WD;
    auto Bad = Wrong.buildFunctionBound(
        "bsearch",
        FunctionSpec::balanced(bScale(2, bMetric("bsearch"))), WD);
    DiagnosticEngine WCD;
    bool Rejected =
        !Bad || !ProofChecker(*CL, Wrong.context(), {})
                     .checkFunctionBound(*Bad, WCD);
    printf("wrong spec {2 * M(bsearch)}: %s\n\n",
           Rejected ? "rejected by the checker (as it must be)"
                    : "ACCEPTED — bug!");
  }

  // Steps 4-5: seed the compiler; the analyzer bounds main through the
  // seeded spec, and the produced metric yields bytes.
  driver::CompilerOptions Opt;
  Opt.SeededSpecs = {{"bsearch", Spec}};
  DiagnosticEngine Diags;
  auto C = driver::compile(Source, Diags, std::move(Opt));
  if (!C) {
    printf("%s", Diags.str().c_str());
    return 1;
  }
  auto MainBound = driver::concreteCallBound(*C, "main");
  measure::Measurement M = driver::measureStack(*C);
  printf("metric: %s\n", C->Metric.str().c_str());
  printf("main bound: %s = %llu bytes; measured %u bytes (exit %d)\n",
         C->Bounds.callBound("main")->str().c_str(),
         static_cast<unsigned long long>(MainBound.value_or(0)),
         M.StackBytes, M.ExitCode);
  return 0;
}
