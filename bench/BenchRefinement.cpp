//===- bench/BenchRefinement.cpp - Quantitative-refinement sweep ----------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E9 (DESIGN.md): the translation-validation ablation. For
/// every corpus program, replay all five semantic levels and certify
/// quantitative refinement per pass, then try to falsify weight dominance
/// with randomized metrics. Also quantifies the effect of the RTL
/// optimizations on frame sizes — the knob the cost metric feels.
///
//===----------------------------------------------------------------------===//

#include "cminor/CminorInterp.h"
#include "cminor/Lower.h"
#include "driver/Compiler.h"
#include "events/Refinement.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "programs/Corpus.h"
#include "rtl/Opt.h"
#include "x86/Machine.h"

#include <cstdio>

using namespace qcc;

int main() {
  printf("==== Quantitative refinement across the pipeline ====\n\n");
  printf("%-28s %-8s %-8s %-8s %-8s %-10s\n", "Program", "cl>cm", "cm>rtl",
         "rtl>opt", "opt>mach", "mach>asm");

  bool AllOk = true;
  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    DiagnosticEngine D;
    auto CL = frontend::parseProgram(P.Source, D);
    if (!CL) {
      printf("%-28s parse error\n", P.Id.c_str());
      continue;
    }
    Behavior BClight = interp::runProgram(*CL);
    cminor::Program CM = cminor::lowerFromClight(*CL);
    Behavior BCminor = cminor::runProgram(CM);
    rtl::Program R = rtl::lowerFromCminor(CM);
    Behavior BRtl = rtl::runProgram(R);
    rtl::Program ROpt = rtl::lowerFromCminor(CM);
    rtl::optimizeProgram(ROpt);
    Behavior BRtlOpt = rtl::runProgram(ROpt);
    mach::Program MP = mach::lowerFromRtl(ROpt);
    Behavior BMach = mach::runProgram(MP);
    x86::Program AP = x86::emitFromMach(MP);
    x86::Machine Machine(AP, measure::MeasureStackSize);
    Behavior BAsm = Machine.run();

    auto Cert = [&AllOk](const Behavior &T, const Behavior &S) {
      bool Ok = checkQuantitativeRefinement(T, S).Ok &&
                falsifyWeightDominance(T, S).Ok;
      AllOk &= Ok;
      return Ok ? "ok" : "FAIL";
    };
    printf("%-28s %-8s %-8s %-8s %-8s %-10s\n", P.Id.c_str(),
           Cert(BCminor, BClight), Cert(BRtl, BCminor),
           Cert(BRtlOpt, BRtl), Cert(BMach, BRtlOpt), Cert(BAsm, BMach));
  }

  printf("\n==== Ablation: RTL optimizations vs frame sizes ====\n\n");
  printf("%-28s %14s %14s %14s\n", "Program", "frames plain",
         "frames opt", "bound delta");
  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    DiagnosticEngine D;
    auto CL = frontend::parseProgram(P.Source, D);
    if (!CL)
      continue;
    cminor::Program CM = cminor::lowerFromClight(*CL);
    rtl::Program RPlain = rtl::lowerFromCminor(CM);
    rtl::Program ROpt = rtl::lowerFromCminor(CM);
    rtl::optimizeProgram(ROpt);
    mach::Program MPlain = mach::lowerFromRtl(RPlain);
    mach::Program MOpt = mach::lowerFromRtl(ROpt);
    uint64_t SumPlain = 0, SumOpt = 0;
    for (const mach::Function &F : MPlain.Functions)
      SumPlain += F.frameSize();
    for (const mach::Function &F : MOpt.Functions)
      SumOpt += F.frameSize();

    // Whole-program bound under each metric.
    DiagnosticEngine AD;
    auto Bounds = analysis::analyzeProgram(*CL, AD);
    long long Delta = 0;
    if (logic::BoundExpr B = Bounds.callBound("main")) {
      ExtNat Plain = logic::evalBound(B, MPlain.costMetric(), {});
      ExtNat Opt = logic::evalBound(B, MOpt.costMetric(), {});
      if (Plain.isFinite() && Opt.isFinite())
        Delta = static_cast<long long>(Plain.finiteValue()) -
                static_cast<long long>(Opt.finiteValue());
    }
    printf("%-28s %12llu b %12llu b %12lld b\n", P.Id.c_str(),
           static_cast<unsigned long long>(SumPlain),
           static_cast<unsigned long long>(SumOpt), Delta);
  }
  printf("\nverdict: %s\n",
         AllOk ? "every pass certified on every program"
               : "REFINEMENT VIOLATIONS FOUND");
  return AllOk ? 0 : 1;
}
