//===- bench/BenchTable1.cpp - Regenerate Paper Table 1 -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E1 (DESIGN.md): automatically verified stack bounds for the
/// Table 1 corpus. For every file: compile with Quantitative CompCert,
/// run the automatic stack analyzer, validate every derivation with the
/// proof checker, and print the per-function bound under the compiler's
/// cost metric — the same rows Table 1 reports. Absolute byte values
/// differ from the paper's (different frame layout); shapes and the
/// soundness relation to measurements are the reproduced claims.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace qcc;

int main() {
  printf("==== Table 1: automatically verified stack bounds ====\n");
  printf("%-28s %-20s %12s\n", "File", "Function", "Bound");
  printf("%.72s\n",
         "------------------------------------------------------------"
         "------------");

  bool AllSound = true;
  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    DiagnosticEngine D;
    driver::CompilerOptions Opt;
    Opt.ValidateTranslation = false; // ctest covers validation; keep fast.
    auto C = driver::compile(P.Source, D, std::move(Opt));
    if (!C) {
      printf("%-28s  COMPILE ERROR\n%s\n", P.Id.c_str(), D.str().c_str());
      AllSound = false;
      continue;
    }
    for (const std::string &F : P.Table1Functions) {
      auto Bound = driver::concreteCallBound(*C, F);
      if (!Bound) {
        printf("%-28s %-20s %12s\n", P.Id.c_str(), F.c_str(), "<none>");
        AllSound = false;
        continue;
      }
      printf("%-28s %-20s %9llu bytes\n", P.Id.c_str(), F.c_str(),
             static_cast<unsigned long long>(*Bound));
    }

    // Soundness of the whole-program bound against the machine.
    auto MainBound = driver::concreteCallBound(*C, "main");
    measure::Measurement M = driver::measureStack(*C);
    if (!MainBound || !M.Ok || *MainBound < M.StackBytes) {
      printf("%-28s  UNSOUND main bound!\n", P.Id.c_str());
      AllSound = false;
    } else {
      printf("%-28s %-20s %9llu bytes (measured %u, slack %llu)\n",
             P.Id.c_str(), "main [measured]",
             static_cast<unsigned long long>(*MainBound), M.StackBytes,
             static_cast<unsigned long long>(*MainBound - M.StackBytes));
    }
    printf("\n");
  }
  printf("soundness: %s\n", AllSound ? "every bound covers its measured run"
                                     : "VIOLATIONS FOUND");
  return AllSound ? 0 : 1;
}
