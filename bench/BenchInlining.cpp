//===- bench/BenchInlining.cpp - The section 3.3 inlining ablation --------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper disables function inlining because naive source-level bounds
/// lose tightness under it (section 3.3, deferred to the TR). This
/// ablation quantifies the trade on the corpus: with inlining the
/// *measured* consumption drops (fewer frames) while the *bound* still
/// budgets the inlined callees, so the bound-measured gap opens beyond
/// the plain pipeline's uniform 4 bytes — yet soundness never breaks.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace qcc;

int main() {
  printf("==== Ablation: function inlining vs bound tightness ====\n\n");
  printf("%-28s | %9s %9s %5s | %9s %9s %5s\n", "", "plain", "", "",
         "inlined", "", "");
  printf("%-28s | %9s %9s %5s | %9s %9s %5s\n", "Program", "bound",
         "measured", "gap", "bound", "measured", "gap");

  bool AllSound = true;
  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    struct Result {
      uint64_t Bound = 0;
      uint32_t Measured = 0;
      bool Ok = false;
    };
    Result R[2];
    for (int WithInline = 0; WithInline != 2; ++WithInline) {
      DiagnosticEngine D;
      driver::CompilerOptions Opt;
      Opt.Inline = WithInline != 0;
      Opt.ValidateTranslation = false;
      auto C = driver::compile(P.Source, D, std::move(Opt));
      if (!C)
        continue;
      auto Bound = driver::concreteCallBound(*C, "main");
      measure::Measurement M = driver::measureStack(*C);
      if (!Bound || !M.Ok)
        continue;
      R[WithInline] = {*Bound, M.StackBytes, true};
      AllSound &= *Bound >= M.StackBytes;
    }
    if (!R[0].Ok || !R[1].Ok) {
      printf("%-28s | failed\n", P.Id.c_str());
      continue;
    }
    printf("%-28s | %7llu b %7u b %5lld | %7llu b %7u b %5lld\n",
           P.Id.c_str(), static_cast<unsigned long long>(R[0].Bound),
           R[0].Measured,
           static_cast<long long>(R[0].Bound) - R[0].Measured,
           static_cast<unsigned long long>(R[1].Bound), R[1].Measured,
           static_cast<long long>(R[1].Bound) - R[1].Measured);
  }

  printf("\nInlining removes frames at run time (measured drops) while the\n"
         "source-level bound still budgets the inlined callees: sound, but\n"
         "no longer 4-byte tight — the paper's reason for deferring it.\n");
  printf("soundness: %s\n", AllSound ? "preserved everywhere"
                                     : "VIOLATED");
  return AllSound ? 0 : 1;
}
