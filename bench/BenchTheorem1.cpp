//===- bench/BenchTheorem1.cpp - Theorem 1 stack-size sweep ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E8 (DESIGN.md): Theorem 1 exercised as a parameter sweep.
/// For each corpus program, run the compiled code in ASM_sz for sz around
/// the verified bound: every sz >= bound - 4 must run to completion, and
/// (for these worst-case-realizing workloads) sizes below the measured
/// consumption must trap with the machine's stack-overflow fault.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace qcc;

int main() {
  printf("==== Theorem 1: execution under finite stacks ====\n\n");
  bool AllConsistent = true;

  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    DiagnosticEngine D;
    driver::CompilerOptions Opt;
    Opt.ValidateTranslation = false;
    auto C = driver::compile(P.Source, D, std::move(Opt));
    if (!C) {
      printf("%-28s compile error\n", P.Id.c_str());
      continue;
    }
    auto Bound = driver::concreteCallBound(*C, "main");
    measure::Measurement M = driver::measureStack(*C);
    if (!Bound || !M.Ok) {
      printf("%-28s measurement failed\n", P.Id.c_str());
      continue;
    }
    uint32_t B = static_cast<uint32_t>(*Bound);

    printf("%-28s bound %u b, measured %u b\n", P.Id.c_str(), B,
           M.StackBytes);
    struct Point {
      const char *Label;
      int64_t Sz;
      bool MustRun;
    };
    const Point Sweep[] = {
        {"  sz = bound + 64", B + 60, true},
        {"  sz = bound - 4 (theorem)", B - 4, true},
        {"  sz = measured", M.StackBytes, true},
        {"  sz = measured - 4", static_cast<int64_t>(M.StackBytes) - 4,
         false},
        {"  sz = measured / 2",
         static_cast<int64_t>(M.StackBytes) / 2 & ~3, false},
    };
    for (const Point &Pt : Sweep) {
      if (Pt.Sz < 0)
        continue;
      measure::Measurement R =
          driver::runWithStackSize(*C, static_cast<uint32_t>(Pt.Sz));
      const char *Outcome = R.Ok               ? "runs"
                            : R.StackOverflow  ? "stack overflow"
                                               : R.Error.c_str();
      bool Consistent = R.Ok == Pt.MustRun;
      if (!Consistent)
        AllConsistent = false;
      printf("%-30s (%6lld b): %-16s %s\n", Pt.Label,
             static_cast<long long>(Pt.Sz), Outcome,
             Consistent ? "" : "<-- INCONSISTENT");
    }
    printf("\n");
  }

  printf("verdict: %s\n",
         AllConsistent
             ? "every program runs at its verified bound and traps below "
               "its measured consumption"
             : "INCONSISTENCIES FOUND");
  return AllConsistent ? 0 : 1;
}
