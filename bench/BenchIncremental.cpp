//===- bench/BenchIncremental.cpp - Warm-edit vs whole-file verification --===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the function-granular incremental engine (DESIGN.md section
/// 5g) against the whole-file path on the edit-compile-verify loop it is
/// built for: a library translation unit whose driver `main` is expensive
/// to validate (a long five-level refinement replay plus the Theorem-1
/// run), carrying a few dozen utility routines outside the driver's
/// reachable path.
///
/// The cold protocol re-verifies the whole file after each edit — parse,
/// lowering, the full refinement replay, the Theorem-1 execution, and
/// bound derivations for every function. The warm protocol hands the same
/// edited sources to a warm incremental::Engine: the edit's body hash
/// misses, its function re-verifies, every other function's checked bound
/// is served by key, and the replay/Theorem-1 outcome is reused because
/// the reachable-from-entry set is untouched. Each warm rep uses a fresh
/// edit (a new constant in the same routine), so every measurement pays
/// the true marginal cost of one changed function, not a fully-cached
/// no-op.
///
/// The verdicts of both paths are compared field by field (bounds,
/// certificates, diagnostics, Theorem 1, status): any divergence fails
/// the bench — speed without bit-identity is worthless here.
///
/// Writes BENCH_incremental.json (path overridable as argv[1]).
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "incremental/Incremental.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

using namespace qcc;

namespace {

constexpr int Helpers = 48;
constexpr int Reps = 3;
constexpr double TargetSpeedup = 20.0;

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// The library TU: a driver chain main -> tick -> step -> base looping
/// ITERS times (the replay-expensive, Theorem-1-checked part), plus
/// Helpers utility routines h0..hN chained by calls, none reachable from
/// main. \p Tweak is the constant inside h0 — the "edit".
std::string makeSource(unsigned Tweak) {
  std::string S = R"(
#define ITERS 120000
u32 base(u32 n) { return n + 1u; }
u32 step(u32 n) { return base(n) + 2u; }
u32 tick(u32 n) { return step(n) + 3u; }
int main() {
  u32 acc = 0u;
  u32 i;
  for (i = 0u; i < ITERS; i++) { acc = acc + tick(i); }
  return (int)(acc & 0xffu);
}
)";
  S += "u32 h0(u32 n) { return n * " + std::to_string(Tweak) + "u + " +
       std::to_string(Tweak + 1) + "u; }\n";
  for (int I = 1; I != Helpers; ++I)
    S += "u32 h" + std::to_string(I) + "(u32 n) { return h" +
         std::to_string(I - 1) + "(n) + " + std::to_string(I) + "u; }\n";
  return S;
}

batch::BatchJob editedJob(unsigned Tweak) {
  batch::BatchJob J;
  J.Id = "lib.c";
  J.Source = makeSource(Tweak);
  return J;
}

/// Field-by-field verdict comparison (the batch::IncrementalEngine
/// bit-identity contract, minus timings and incremental counters).
bool sameVerdict(const batch::ProgramResult &A,
                 const batch::ProgramResult &B) {
  bool Ok = A.Ok == B.Ok && A.Status == B.Status && A.Stop == B.Stop &&
            A.Diagnostics == B.Diagnostics &&
            A.SkippedRecursive == B.SkippedRecursive &&
            A.Theorem1Checked == B.Theorem1Checked &&
            A.Theorem1Ok == B.Theorem1Ok &&
            A.Theorem1StackBytes == B.Theorem1StackBytes &&
            A.ProofBlob == B.ProofBlob &&
            A.Metrics.ProofNodes == B.Metrics.ProofNodes &&
            A.Metrics.ReplayedEvents == B.Metrics.ReplayedEvents &&
            A.Bounds.size() == B.Bounds.size();
  if (!Ok)
    return false;
  for (size_t I = 0; I != A.Bounds.size(); ++I)
    if (A.Bounds[I].Function != B.Bounds[I].Function ||
        A.Bounds[I].SymbolicBound != B.Bounds[I].SymbolicBound ||
        A.Bounds[I].ConcreteBytes != B.Bounds[I].ConcreteBytes)
      return false;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_incremental.json";

  printf("==== Incremental (function-granular) vs whole-file "
         "verification ====\n\n");
  printf("workload: %d-function library TU, 120k-iteration driver chain, "
         "one-function edits\n\n",
         Helpers + 4);

  // Cold path: the whole file re-verifies after each edit. Fresh tweak
  // per rep, same as the warm protocol, so both see identical workloads.
  double ColdMs = 1e300;
  batch::ProgramResult ColdLast;
  for (int R = 0; R != Reps; ++R) {
    auto T0 = Clock::now();
    ColdLast = batch::verifyOne(editedJob(100 + R), true, nullptr, true);
    ColdMs = std::min(ColdMs, millisSince(T0));
    if (!ColdLast.Ok) {
      fprintf(stderr, "bench_incremental: cold verification failed:\n%s",
              ColdLast.Diagnostics.c_str());
      return 1;
    }
  }

  // Warm path: populate the engine once, then pay only each edit's
  // marginal cost. Every rep edits h0 to a constant the engine has never
  // seen, so nothing about the edited function itself is cached.
  incremental::Engine Eng;
  batch::ProgramResult Seed = Eng.verify(editedJob(1), true, nullptr, true);
  if (!Seed.Ok) {
    fprintf(stderr, "bench_incremental: seeding run failed\n");
    return 1;
  }
  double WarmMs = 1e300;
  batch::ProgramResult WarmLast;
  bool Identical = true;
  uint64_t Reused = 0, ReVerified = 0;
  for (int R = 0; R != Reps; ++R) {
    auto T0 = Clock::now();
    WarmLast = Eng.verify(editedJob(100 + R), true, nullptr, true);
    WarmMs = std::min(WarmMs, millisSince(T0));
    Reused = WarmLast.Metrics.FuncsReused;
    ReVerified = WarmLast.Metrics.FuncsReVerified;
  }
  // The last warm rep and the last cold rep verified the same source:
  // their verdicts, bounds, and certificates must be bit-identical.
  Identical = sameVerdict(WarmLast, ColdLast);

  double Speedup = ColdMs / std::max(WarmMs, 1e-6);
  bool Meets = Speedup >= TargetSpeedup;

  printf("%-44s %10.2fms\n", "cold: whole-file re-verification (min)",
         ColdMs);
  printf("%-44s %10.2fms\n", "warm: one-function edit, shared engine (min)",
         WarmMs);
  printf("%-44s %9.1fx  (target %.0fx)\n", "speedup", Speedup,
         TargetSpeedup);
  printf("per warm edit: %llu functions reused, %llu re-verified\n",
         static_cast<unsigned long long>(Reused),
         static_cast<unsigned long long>(ReVerified));
  printf("verdicts: %s\n\n",
         Identical ? "bit-identical (bounds, certificates, Theorem 1)"
                   : "DIVERGED");

  if (FILE *J = fopen(JsonPath, "w")) {
    fprintf(J,
            "{\n"
            "  \"bench\": \"incremental\",\n"
            "  \"functions\": %d,\n"
            "  \"reps\": %d,\n"
            "  \"cold_whole_file_ms\": %.3f,\n"
            "  \"warm_one_edit_ms\": %.3f,\n"
            "  \"speedup\": %.2f,\n"
            "  \"target_speedup\": %.1f,\n"
            "  \"meets_target\": %s,\n"
            "  \"funcs_reused_per_edit\": %llu,\n"
            "  \"funcs_reverified_per_edit\": %llu,\n"
            "  \"verdicts_bit_identical\": %s\n"
            "}\n",
            Helpers + 4, Reps, ColdMs, WarmMs, Speedup, TargetSpeedup,
            Meets ? "true" : "false",
            static_cast<unsigned long long>(Reused),
            static_cast<unsigned long long>(ReVerified),
            Identical ? "true" : "false");
    fclose(J);
    printf("wrote %s\n", JsonPath);
  } else {
    fprintf(stderr, "bench_incremental: cannot write %s\n", JsonPath);
    return 1;
  }

  return (Identical && Meets) ? 0 : 1;
}
