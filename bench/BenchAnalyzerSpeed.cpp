//===- bench/BenchAnalyzerSpeed.cpp - Analyzer performance ----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E7 (DESIGN.md): the paper reports that "the automatic
/// stack-bound analysis runs very efficiently and needs less than a
/// second for every example file". This google-benchmark harness times
/// the analyzer (call-graph construction, backward derivation building,
/// proof checking) per corpus file, plus the full compilation pipeline
/// for scale.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "driver/Compiler.h"
#include "frontend/Frontend.h"
#include "programs/Corpus.h"

#include <benchmark/benchmark.h>

using namespace qcc;

namespace {

const programs::CorpusProgram &corpusAt(size_t I) {
  return programs::table1Corpus()[I];
}

void BM_AutomaticAnalyzer(benchmark::State &State) {
  const programs::CorpusProgram &P = corpusAt(State.range(0));
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(P.Source, D);
  if (!CL) {
    State.SkipWithError("parse failed");
    return;
  }
  for (auto _ : State) {
    DiagnosticEngine AD;
    auto R = analysis::analyzeProgram(*CL, AD);
    benchmark::DoNotOptimize(R.Bounds.size());
  }
  State.SetLabel(P.Id);
}

void BM_FullCompilation(benchmark::State &State) {
  const programs::CorpusProgram &P = corpusAt(State.range(0));
  for (auto _ : State) {
    DiagnosticEngine D;
    driver::CompilerOptions Opt;
    Opt.ValidateTranslation = false;
    auto C = driver::compile(P.Source, D, std::move(Opt));
    benchmark::DoNotOptimize(C.has_value());
  }
  State.SetLabel(P.Id);
}

void BM_TranslationValidation(benchmark::State &State) {
  const programs::CorpusProgram &P = corpusAt(State.range(0));
  for (auto _ : State) {
    DiagnosticEngine D;
    driver::CompilerOptions Opt;
    Opt.ValidateTranslation = true; // The paper's "proof" replayed per run.
    Opt.AnalyzeBounds = false;
    auto C = driver::compile(P.Source, D, std::move(Opt));
    benchmark::DoNotOptimize(C.has_value());
  }
  State.SetLabel(P.Id);
}

} // namespace

BENCHMARK(BM_AutomaticAnalyzer)->DenseRange(0, 8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullCompilation)->DenseRange(0, 8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TranslationValidation)
    ->DenseRange(0, 8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
