//===- bench/BenchGap4.cpp - The exactly-4-bytes experiment ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E5 (DESIGN.md): the paper's section 6 claim that "all
/// manually and automatically derived bounds over-approximate the actual
/// stack-space consumption by exactly 4 bytes". The 4 bytes are the
/// return-address slot the bound reserves for the entry function while
/// the measurement baseline starts after it was pushed.
///
/// A gap above 4 means the run did not realize its worst case (a heavier
/// branch never executed under this metric) — possible for whole-program
/// mains with data-dependent branching; the per-function worst-case
/// drivers must all sit at exactly 4.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace qcc;

int main() {
  printf("==== Gap experiment: verified bound vs measured usage ====\n\n");
  printf("%-34s %10s %10s %6s\n", "Program", "bound", "measured", "gap");

  unsigned Exact = 0, Total = 0;
  auto Report = [&](const std::string &Name, const driver::Compilation &C,
                    const logic::VarEnv &Args) {
    auto Bound = driver::concreteCallBound(C, "main", Args);
    measure::Measurement M = driver::measureStack(C);
    if (!Bound || !M.Ok) {
      printf("%-34s  failed (%s)\n", Name.c_str(), M.Error.c_str());
      return;
    }
    long long Gap = static_cast<long long>(*Bound) -
                    static_cast<long long>(M.StackBytes);
    printf("%-34s %8llu b %8u b %6lld%s\n", Name.c_str(),
           static_cast<unsigned long long>(*Bound), M.StackBytes, Gap,
           Gap == 4 ? "" : "   (worst case not realized)");
    ++Total;
    Exact += Gap == 4;
  };

  // Whole-program mains of the Table 1 corpus.
  for (const programs::CorpusProgram &P : programs::table1Corpus()) {
    DiagnosticEngine D;
    driver::CompilerOptions Opt;
    Opt.ValidateTranslation = false;
    auto C = driver::compile(P.Source, D, std::move(Opt));
    if (!C) {
      printf("%-34s  compile error\n", P.Id.c_str());
      continue;
    }
    Report(P.Id, *C, {});
  }

  // Worst-case drivers of the Table 2 functions.
  struct Driver {
    const char *Name;
    const char *Call;
  };
  const Driver Drivers[] = {
      {"table2: recid(24)", "return (int)recid(24);"},
      {"table2: bsearch(0,0,256)", "return (int)bsearch(0, 0, 256);"},
      {"table2: fib(12)", "return (int)fib(12);"},
      {"table2: qsort(0,48)", "qsort(0, 48); return 0;"},
      {"table2: filter_pos(512,0,40)",
       "return (int)filter_pos(512, 0, 40);"},
      {"table2: sum(0,48)", "return (int)sum(0, 48);"},
      {"table2: fact_sq(5)", "return (int)fact_sq(5);"},
      {"table2: filter_find(0,12)", "return (int)filter_find(0, 12);"},
  };
  for (const Driver &Dr : Drivers) {
    DiagnosticEngine D;
    driver::CompilerOptions Opt;
    Opt.SeededSpecs = programs::table2Specs();
    Opt.ValidateTranslation = false;
    auto C = driver::compile(programs::table2DriverSource(Dr.Call), D,
                             std::move(Opt));
    if (!C) {
      printf("%-34s  compile error: %s\n", Dr.Name, D.str().c_str());
      continue;
    }
    Report(Dr.Name, *C, {});
  }

  printf("\n%u of %u runs sit at exactly 4 bytes.\n", Exact, Total);
  return 0;
}
