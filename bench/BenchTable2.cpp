//===- bench/BenchTable2.cpp - Regenerate Paper Table 2 -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E2 (DESIGN.md): manually verified symbolic stack bounds for
/// the eight recursive Table 2 functions. Each specification (the
/// interactive step) is mechanized into a full derivation by the backward
/// builder and validated by the proof checker; the bound is then printed
/// symbolically and instantiated with the compiler's metric on a sample
/// argument, next to the machine-measured consumption of that run.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "frontend/Frontend.h"
#include "logic/Builder.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace qcc;
using namespace qcc::logic;

namespace {

struct Row {
  const char *Function;
  const char *Call;      ///< Driver main body.
  logic::VarEnv Args;    ///< Values for the symbolic bound.
  const char *PaperForm; ///< The paper's reported shape, for reference.
};

} // namespace

int main() {
  const Row Rows[] = {
      {"recid", "return (int)recid(24);", {{"n", 24}}, "8a"},
      {"bsearch", "return (int)bsearch(0, 0, 256);",
       {{"x", 0}, {"lo", 0}, {"hi", 256}}, "40(1+log2(hi-lo))"},
      {"fib", "return (int)fib(12);", {{"n", 12}}, "24n"},
      {"qsort", "qsort(0, 48); return 0;", {{"lo", 0}, {"hi", 48}},
       "48(hi-lo)"},
      {"filter_pos", "return (int)filter_pos(512, 0, 40);",
       {{"sz", 512}, {"lo", 0}, {"hi", 40}}, "48(hi-lo)"},
      {"sum", "return (int)sum(0, 48);", {{"lo", 0}, {"hi", 48}},
       "32(hi-lo)"},
      {"fact_sq", "return (int)fact_sq(5);", {{"n", 5}}, "40+24n^2"},
      {"filter_find", "return (int)filter_find(0, 12);",
       {{"lo", 0}, {"hi", 12}}, "128+48(hi-lo)+40log2(BL)"},
  };

  printf("==== Table 2: interactively verified stack bounds ====\n\n");

  // Step 1: build + check every derivation once, on the shared corpus.
  DiagnosticEngine PD;
  auto CL = frontend::parseProgram(programs::table2Source(), PD);
  if (!CL) {
    printf("parse error:\n%s\n", PD.str().c_str());
    return 1;
  }
  FunctionContext Specs = programs::table2Specs();
  DerivationBuilder Builder(*CL, Specs, {});
  for (const auto &[Callee, Hint] : programs::table2CallHints())
    Builder.setCallResultHint(Callee, Hint);
  ProofChecker Checker(*CL, Specs, {});
  printf("%-12s %-10s %s\n", "Function", "Checked", "Verified bound (call:"
                                                    " M(f) + spec)");
  for (const auto &[F, Spec] : Specs) {
    DiagnosticEngine D;
    auto FB = Builder.buildFunctionBound(F, Spec, D);
    bool Ok = FB && Checker.checkFunctionBound(*FB, D);
    BoundExpr CallBound = bAdd(bMetric(F), Spec.Pre);
    printf("%-12s %-10s %s\n", F.c_str(), Ok ? "yes" : "NO",
           CallBound->str().c_str());
  }

  // Step 2: instantiate with the compiler metric on sample arguments and
  // compare with machine measurements of worst-case drivers.
  printf("\n%-12s %-26s %10s %10s %6s\n", "Function", "Sample args",
         "Bound", "Measured", "Gap");
  bool AllGap4 = true;
  for (const Row &R : Rows) {
    driver::CompilerOptions Opt;
    Opt.SeededSpecs = Specs;
    Opt.ValidateTranslation = false;
    DiagnosticEngine D;
    auto C = driver::compile(programs::table2DriverSource(R.Call), D,
                             std::move(Opt));
    if (!C) {
      printf("%-12s COMPILE ERROR\n", R.Function);
      AllGap4 = false;
      continue;
    }
    auto Bound = driver::concreteCallBound(*C, "main", R.Args);
    measure::Measurement M = driver::measureStack(*C);
    if (!Bound || !M.Ok) {
      printf("%-12s  measurement failed\n", R.Function);
      AllGap4 = false;
      continue;
    }
    std::string ArgText;
    for (const auto &[K, V] : R.Args)
      ArgText += K + "=" + std::to_string(V) + " ";
    unsigned long long Gap = *Bound - M.StackBytes;
    printf("%-12s %-26s %6llu b %8u b %6llu\n", R.Function, ArgText.c_str(),
           static_cast<unsigned long long>(*Bound), M.StackBytes, Gap);
    AllGap4 &= Gap == 4;
  }
  printf("\nover-approximation: %s\n",
         AllGap4 ? "exactly 4 bytes on every worst-case run (paper's "
                   "section 6 observation)"
                 : "NOT uniformly 4 bytes");
  return 0;
}
