//===- bench/BenchTailcalls.cpp - The section 3.3 tail-call ablation ------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second optimization the paper's section 3.3 defers: tail-call
/// recognition. With it on, a tail-recursive loop runs in *constant*
/// stack while the quantitative logic's bound — derived against the
/// conventional frame-per-call model — stays linear: sound, spectacularly
/// untight. The sweep prints measured usage under both pipelines against
/// the interactively derived bound, the crossover the paper's metric
/// design would have to address to support the optimization (their TR's
/// subject).
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>
#include <string>

using namespace qcc;
using namespace qcc::logic;

int main() {
  printf("==== Ablation: tail-call recognition vs bound tightness ====\n\n");

  // sum_acc(n): tail recursion of depth n, plus the spec M * n derived
  // interactively (recursion: the analyzer alone refuses it).
  const char *Template = "u32 sum_acc(u32 n, u32 acc) {\n"
                         "  if (n == 0) return acc;\n"
                         "  return sum_acc(n - 1, acc + n);\n"
                         "}\n"
                         "int main() { return (int)sum_acc(%u, 0); }\n";
  FunctionSpec Spec = FunctionSpec::balanced(
      bMul(bMetric("sum_acc"), bNatTerm(IntTermNode::var("n"))));

  printf("%8s %16s %16s %16s\n", "n", "bound", "plain measured",
         "tail-call measured");
  for (uint32_t N : {8u, 32u, 128u, 512u, 2048u, 8192u}) {
    char Src[512];
    snprintf(Src, sizeof(Src), Template, N);

    uint64_t Bound = 0;
    uint32_t Measured[2] = {0, 0};
    for (int Tail = 0; Tail != 2; ++Tail) {
      DiagnosticEngine D;
      driver::CompilerOptions Opt;
      Opt.TailCalls = Tail != 0;
      Opt.ValidateTranslation = false;
      Opt.SeededSpecs = {{"sum_acc", Spec}};
      auto C = driver::compile(Src, D, std::move(Opt));
      if (!C) {
        printf("compile error: %s\n", D.str().c_str());
        return 1;
      }
      if (!Tail) {
        auto B = driver::concreteCallBound(*C, "main", {{"n", N}});
        Bound = B.value_or(0);
      }
      measure::Measurement M = driver::measureStack(*C);
      if (!M.Ok) {
        printf("n=%u: %s\n", N, M.Error.c_str());
        return 1;
      }
      Measured[Tail] = M.StackBytes;
    }
    printf("%8u %14llu b %14u b %14u b\n", N,
           static_cast<unsigned long long>(Bound), Measured[0],
           Measured[1]);
  }

  printf("\nWith tail calls the measured column is flat; the verified "
         "bound\n(and the plain pipeline) stay linear in n. Both "
         "directions of\nTheorem 1 still hold — the bound is an "
         "over-approximation — but\nthe 4-byte tightness of the "
         "conventional pipeline is gone, which\nis why the paper ships "
         "with the optimization disabled.\n");
  return 0;
}
