//===- bench/BenchFigure7.cpp - Regenerate Paper Figure 7 -----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiments E3/E4 (DESIGN.md): the accuracy plots of Figure 7. The
/// paper plots, for different inputs,
///
///   top:    bsearch  — measured stack vs the bound 40(1 + log2(x)),
///   bottom: fact_sq  — measured stack vs the bound 40 + 24 x^2.
///
/// This harness prints the same two series with this compiler's metric
/// substituted for CompCert's constants: (x, measured bytes, verified
/// bound bytes) — the bound line must lie on or above every cross, and on
/// worst-case-realizing inputs exactly 4 bytes above.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "programs/Corpus.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace qcc;

namespace {

void runSeries(const char *Title, const char *CallPattern,
               const std::vector<uint32_t> &Xs, const char *ArgName,
               std::function<logic::VarEnv(uint32_t)> MakeArgs,
               std::function<std::map<std::string, uint32_t>(uint32_t)>
                   MakeDefines = nullptr) {
  printf("---- %s ----\n", Title);
  printf("%10s %14s %14s %6s\n", ArgName, "measured", "bound", "gap");
  for (uint32_t X : Xs) {
    char Call[128];
    snprintf(Call, sizeof(Call), CallPattern,
             static_cast<unsigned long>(X));
    driver::CompilerOptions Opt;
    Opt.SeededSpecs = programs::table2Specs();
    Opt.ValidateTranslation = false;
    if (MakeDefines)
      Opt.Defines = MakeDefines(X);
    DiagnosticEngine D;
    auto C = driver::compile(programs::table2DriverSource(Call), D,
                             std::move(Opt));
    if (!C) {
      printf("%10u  compile error: %s\n", X, D.str().c_str());
      continue;
    }
    auto Bound = driver::concreteCallBound(*C, "main", MakeArgs(X));
    measure::Measurement M = driver::measureStack(*C);
    if (!Bound || !M.Ok) {
      printf("%10u  run failed (%s)\n", X, M.Error.c_str());
      continue;
    }
    printf("%10u %12u b %12llu b %6lld\n", X, M.StackBytes,
           static_cast<unsigned long long>(*Bound),
           static_cast<long long>(*Bound) -
               static_cast<long long>(M.StackBytes));
  }
  printf("\n");
}

} // namespace

int main() {
  printf("==== Figure 7: accuracy of hand-derived stack bounds ====\n\n");

  // Top plot: bsearch over array lengths up to 4096 (paper's x-range);
  // the corpus array has 512 entries, but the driver searches a
  // zero-filled prefix view [0, x) so any x <= ALEN works; extend ALEN
  // by overriding the define for the large points.
  std::vector<uint32_t> BsearchXs = {2,  4,   8,   16,  32,   64,  128,
                                     256, 512, 1024, 2048, 4096};
  runSeries("bsearch: bound M(bsearch) * (1 + clog2(x))",
            "return (int)bsearch(0, 0, %luu);", BsearchXs, "x",
            [](uint32_t X) {
              return logic::VarEnv{{"x", 0}, {"lo", 0}, {"hi", X}};
            },
            [](uint32_t X) {
              // Grow the array for the larger points of the sweep.
              return std::map<std::string, uint32_t>{
                  {"ALEN", std::max(X, 512u)}};
            });

  // Bottom plot: fact_sq over x up to 100 (paper's x-range). fact
  // recurses x^2 deep: 100^2 frames.
  std::vector<uint32_t> FactXs = {1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80,
                                  90, 100};
  runSeries("fact_sq: bound M(fact_sq) + M(fact) * max(1, x^2)",
            "return (int)fact_sq(%luu);", FactXs, "x",
            [](uint32_t X) { return logic::VarEnv{{"n", X}}; });

  return 0;
}
