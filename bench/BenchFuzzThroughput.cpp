//===- bench/BenchFuzzThroughput.cpp - Hardening-harness throughput -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the fault-injection / no-crash harness (src/fuzz):
/// programs fuzzed per second through the full pipeline (generate,
/// compile, per-pass validation, automatic bounds, Theorem 1 at
/// bound - 4), plus the fixed-cost mutation and fault-injection
/// campaigns. The harness only earns its keep if a meaningful campaign
/// (thousands of programs) fits in interactive time, so this records
/// the serial and parallel rates and reproduces the determinism
/// guarantee: same seed, same report.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace qcc;

namespace {

/// Wall-clock for one campaign, in microseconds.
uint64_t timedCampaign(const fuzz::FuzzOptions &Options,
                       fuzz::FuzzReport &Out) {
  auto Begin = std::chrono::steady_clock::now();
  Out = fuzz::runFuzz(Options);
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(End - Begin)
      .count();
}

} // namespace

int main() {
  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  printf("==== Hardening-harness throughput (%u hardware threads) ====\n\n",
         Hw);

  fuzz::FuzzOptions Serial;
  Serial.Count = 512;
  Serial.Seed = 1;
  Serial.Jobs = 1;
  fuzz::FuzzReport RSerial;
  uint64_t SerialMicros = timedCampaign(Serial, RSerial);

  fuzz::FuzzOptions Parallel = Serial;
  Parallel.Jobs = Hw;
  fuzz::FuzzReport RParallel;
  uint64_t ParallelMicros = timedCampaign(Parallel, RParallel);

  auto Rate = [](uint64_t Count, uint64_t Micros) {
    return Micros ? 1e6 * static_cast<double>(Count) /
                        static_cast<double>(Micros)
                  : 0.0;
  };
  printf("%-24s %12s %14s\n", "configuration", "wall", "programs/s");
  printf("%-24s %9llu us %14.1f\n", "serial (--jobs 1)",
         static_cast<unsigned long long>(SerialMicros),
         Rate(RSerial.Generated, SerialMicros));
  printf("%-24s %9llu us %14.1f\n",
         ("parallel (--jobs " + std::to_string(Hw) + ")").c_str(),
         static_cast<unsigned long long>(ParallelMicros),
         Rate(RParallel.Generated, ParallelMicros));

  // Same seed, same verdicts — job count must not change the report.
  bool Deterministic = RSerial.Verified == RParallel.Verified &&
                       RSerial.Diagnosed == RParallel.Diagnosed &&
                       RSerial.Violations == RParallel.Violations;
  printf("\nreport identity (serial vs parallel): %s\n",
         Deterministic ? "identical" : "DIFFER");
  printf("serial report:\n%s\n", RSerial.str().c_str());

  bool Ok = RSerial.ok() && RParallel.ok() && Deterministic;
  printf("\nverdict: %s\n",
         Ok ? "no-crash contract held at speed" : "FAILED");
  return Ok ? 0 : 1;
}
