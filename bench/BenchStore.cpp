//===- bench/BenchStore.cpp - Persistent store hit/miss economics ---------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the persistent verification store buys and what it costs, over
/// the full evaluation corpus:
///
///   1. cold write   — first run against an empty store: full compile +
///      validate + analyze + Theorem 1, plus the entry writes,
///   2. warm (same process) — rerun through the same handle: every job
///      served from disk, zero fresh proof-checker nodes,
///   3. warm (cross process) — a *fresh* handle on the same directory
///      (what a new `qcc` invocation or a future `qccd` client sees:
///      open-scan, flock, read, decode),
///   4. corrupted reload — every resident entry bit-flipped, then a
///      rerun: the store must quarantine them all and re-verify from
///      scratch, i.e. recovery degrades to the cold path, not to a
///      crash or a wrong verdict.
///
/// Writes BENCH_store.json (path overridable as argv[1]).
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "store/Store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace qcc;
namespace fs = std::filesystem;

namespace {

constexpr unsigned Reps = 3;

struct Phase {
  std::string Name;
  uint64_t BestWallMicros = ~0ull;
  uint64_t StoreHits = 0;
  uint64_t FreshProofNodes = 0;
  uint64_t Quarantined = 0;
  bool AllOk = false;
};

uint64_t runPhase(const std::vector<batch::BatchJob> &Jobs,
                  store::VerificationStore &Store, Phase &Out) {
  batch::BatchOptions BO;
  BO.Jobs = 4;
  BO.Store = &Store;
  batch::BatchResult R = batch::runBatch(Jobs, BO);
  Out.BestWallMicros = std::min(Out.BestWallMicros, R.WallMicros);
  Out.StoreHits = R.storeHits();
  Out.FreshProofNodes = R.FreshProofNodes;
  Out.AllOk = R.allOk();
  return R.WallMicros;
}

void printPhase(const Phase &P, size_t Jobs) {
  printf("  %-22s %9.3f ms   %2llu/%zu store hits   %8llu fresh "
         "proof nodes%s\n",
         P.Name.c_str(), P.BestWallMicros / 1000.0,
         static_cast<unsigned long long>(P.StoreHits), Jobs,
         static_cast<unsigned long long>(P.FreshProofNodes),
         P.AllOk ? "" : "   [NOT OK]");
}

void emitPhaseJson(FILE *J, const Phase &P, bool Last) {
  fprintf(J,
          "    {\n"
          "      \"name\": \"%s\",\n"
          "      \"best_wall_ms\": %.3f,\n"
          "      \"store_hits\": %llu,\n"
          "      \"fresh_proof_nodes\": %llu,\n"
          "      \"quarantined\": %llu,\n"
          "      \"all_ok\": %s\n"
          "    }%s\n",
          P.Name.c_str(), P.BestWallMicros / 1000.0,
          static_cast<unsigned long long>(P.StoreHits),
          static_cast<unsigned long long>(P.FreshProofNodes),
          static_cast<unsigned long long>(P.Quarantined),
          P.AllOk ? "true" : "false", Last ? "" : ",");
}

/// Flips one bit in every committed entry of \p Dir.
size_t corruptEveryEntry(const std::string &Dir) {
  size_t Damaged = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file() ||
        E.path().extension() != store::VerificationStore::EntrySuffix)
      continue;
    std::string Bytes;
    {
      std::ifstream In(E.path(), std::ios::binary);
      Bytes.assign(std::istreambuf_iterator<char>(In),
                   std::istreambuf_iterator<char>());
    }
    if (Bytes.empty())
      continue;
    size_t Mid = Bytes.size() / 2;
    Bytes[Mid] = static_cast<char>(Bytes[Mid] ^ 0x40);
    std::ofstream Out(E.path(), std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    ++Damaged;
  }
  return Damaged;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_store.json";

  std::string Template =
      (fs::temp_directory_path() / "qcc-bench-store-XXXXXX").string();
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  if (!mkdtemp(Buf.data())) {
    fprintf(stderr, "bench_store: cannot create scratch directory\n");
    return 1;
  }
  std::string Root = Buf.data();
  std::string StoreDir = (fs::path(Root) / "store").string();

  printf("==== Persistent verification store (corpus of real jobs) "
         "====\n\n");
  std::vector<batch::BatchJob> Jobs = batch::corpusJobs();

  Phase Cold{"cold-write"}, WarmSame{"warm-same-process"},
      WarmCross{"warm-cross-process"}, Recovery{"corrupted-reload"};

  store::StoreOptions SO;
  SO.Dir = StoreDir;

  // 1. Cold: empty store, everything verified fresh and written. One
  // shot — a second cold rep would be warm.
  {
    auto Store = store::VerificationStore::open(SO);
    if (!Store)
      return 1;
    runPhase(Jobs, *Store, Cold);
    // 2. Warm through the same handle, best of Reps.
    for (unsigned I = 0; I != Reps; ++I)
      runPhase(Jobs, *Store, WarmSame);
  }

  // 3. Warm through a fresh handle per rep: the cross-process path
  // (open-scan of every resident entry, then per-job flock + read).
  for (unsigned I = 0; I != Reps; ++I) {
    auto Store = store::VerificationStore::open(SO);
    if (!Store)
      return 1;
    runPhase(Jobs, *Store, WarmCross);
  }

  // 4. Corrupt every entry; the next run must quarantine them all and
  // fall back to fresh verification.
  size_t Damaged = corruptEveryEntry(StoreDir);
  {
    auto Store = store::VerificationStore::open(SO);
    if (!Store)
      return 1;
    runPhase(Jobs, *Store, Recovery);
    Recovery.Quarantined = Store->stats().Quarantined;
  }

  printPhase(Cold, Jobs.size());
  printPhase(WarmSame, Jobs.size());
  printPhase(WarmCross, Jobs.size());
  printPhase(Recovery, Jobs.size());

  double Speedup = WarmCross.BestWallMicros
                       ? static_cast<double>(Cold.BestWallMicros) /
                             static_cast<double>(WarmCross.BestWallMicros)
                       : 0.0;
  printf("\nheadline: %.1fx cross-process warm speedup; %zu/%zu damaged "
         "entries quarantined on reload\n",
         Speedup, static_cast<size_t>(Recovery.Quarantined), Damaged);

  bool Ok = Cold.AllOk && WarmSame.AllOk && WarmCross.AllOk &&
            Recovery.AllOk && WarmSame.StoreHits == Jobs.size() &&
            WarmCross.StoreHits == Jobs.size() &&
            WarmSame.FreshProofNodes == 0 &&
            WarmCross.FreshProofNodes == 0 &&
            Recovery.Quarantined == Damaged;

  if (FILE *J = fopen(JsonPath, "w")) {
    fprintf(J,
            "{\n"
            "  \"bench\": \"store\",\n"
            "  \"jobs\": %zu,\n"
            "  \"reps\": %u,\n"
            "  \"warm_cross_process_speedup\": %.2f,\n"
            "  \"acceptance\": %s,\n"
            "  \"phases\": [\n",
            Jobs.size(), Reps, Speedup, Ok ? "true" : "false");
    emitPhaseJson(J, Cold, false);
    emitPhaseJson(J, WarmSame, false);
    emitPhaseJson(J, WarmCross, false);
    emitPhaseJson(J, Recovery, true);
    fprintf(J, "  ]\n}\n");
    fclose(J);
    printf("wrote %s\n", JsonPath);
  } else {
    fprintf(stderr, "bench_store: cannot write %s\n", JsonPath);
    return 1;
  }

  std::error_code EC;
  fs::remove_all(Root, EC);
  return Ok ? 0 : 1;
}
