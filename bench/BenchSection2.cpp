//===- bench/BenchSection2.cpp - The Section 2 walkthrough ----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E6 (DESIGN.md): the paper's illustrative example, end to
/// end. Reproduces, with this compiler's metric in place of CompCert's:
///
///   * the automatic triple {M(init)+M(random)} init() {M(init)+M(random)},
///   * the interactive logarithmic bound for search (the paper's L),
///   * the combined main bound M(main) + max(M(init)+M(random), L(ALEN)),
///   * the concrete byte bounds after metric instantiation (the paper got
///     32 bytes for init and 112 + 40 log2(ALEN) for main),
///   * the Theorem 1 run at the computed stack size.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "programs/Corpus.h"

#include <cstdio>

using namespace qcc;
using namespace qcc::logic;

int main() {
  printf("==== Section 2: an illustrative example ====\n\n");

  for (uint32_t Alen : {64u, 256u, 1024u, 4096u}) {
    driver::CompilerOptions Opt;
    Opt.SeededSpecs = programs::section2Specs();
    Opt.Defines = {{"ALEN", Alen}};
    Opt.ValidateTranslation = false;
    DiagnosticEngine D;
    auto C = driver::compile(programs::section2Source(), D, std::move(Opt));
    if (!C) {
      printf("compile error: %s\n", D.str().c_str());
      return 1;
    }

    if (Alen == 64) {
      printf("compiler metric M(f) = SF(f) + 4:\n  %s\n\n",
             C->Metric.str().c_str());
      printf("symbolic bounds (instantiate with any metric):\n");
      for (const char *F : {"random", "init", "search", "main"}) {
        if (!C->Bounds.Gamma.count(F))
          continue;
        BoundExpr CallBound = C->Bounds.callBound(F);
        printf("  %-8s %s\n", F, CallBound->str().c_str());
      }
      printf("\n");
    }

    auto InitBound = driver::concreteCallBound(*C, "init");
    auto SearchBound = driver::concreteCallBound(
        *C, "search", {{"elem", 0}, {"beg", 0}, {"end", Alen}});
    auto MainBound = driver::concreteCallBound(*C, "main");
    measure::Measurement M = driver::measureStack(*C);
    printf("ALEN = %-5u  init: %llu b   search(0,ALEN): %llu b   "
           "main: %llu b   measured: %u b\n",
           Alen,
           static_cast<unsigned long long>(InitBound.value_or(0)),
           static_cast<unsigned long long>(SearchBound.value_or(0)),
           static_cast<unsigned long long>(MainBound.value_or(0)),
           M.Ok ? M.StackBytes : 0);

    // Theorem 1 at the bound.
    if (MainBound) {
      measure::Measurement AtBound = driver::runWithStackSize(
          *C, static_cast<uint32_t>(*MainBound) - 4);
      printf("             theorem 1 at sz = bound-4: %s\n",
             AtBound.Ok ? "runs without overflow" : AtBound.Error.c_str());
    }
  }

  printf("\nThe main bound grows by one M(search) frame per doubling of "
         "ALEN —\nthe paper's 112 + 40 log2(ALEN) shape.\n");
  return 0;
}
