//===- bench/BenchProofCheck.cpp - Flat vs tree proof checking ------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the flat proof representation buys at the checker, over every
/// fresh bound of the full evaluation corpus:
///
///   1. tree-serial    — the pre-forest baseline: one checker per
///      function with its own copy of the context, recursive descent
///      over the pointer-chasing Derivation tree, no entailment memo,
///   2. forest-serial  — one borrowed-context checker per program
///      walking the contiguous DerivationForest spans, entailment
///      queries memoized on interned-bound-id pairs,
///   3. forest-pooled  — the same flat walk with independent function
///      roots fanned out across the work-stealing pool (the daemon's
///      serving configuration).
///
/// Every phase must accept every bound and visit the identical number of
/// derivation nodes — the verdict-parity invariant of DESIGN.md §5h —
/// and the acceptance bar is a >= 2x best-wall speedup of forest-pooled
/// over tree-serial on a cold corpus pass (the memo starts empty each
/// rep; only the pool threads persist, as they do in qccd).
///
/// Writes BENCH_proofcheck.json (path overridable as argv[1]).
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"
#include "batch/ThreadPool.h"
#include "driver/Compiler.h"
#include "logic/Checker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace qcc;

namespace {

constexpr unsigned Reps = 5;

/// One compiled corpus program with its fresh bounds in both forms.
struct Compiled {
  std::string Id;
  driver::Compilation C;
};

/// One checkable unit: a forest root (and, via the function name, the
/// equivalent tree bound) of one compiled program.
struct Item {
  uint32_t Prog;
  uint32_t Root;
};

struct Phase {
  std::string Name;
  uint64_t BestWallMicros = ~0ull;
  uint64_t Accepted = 0;
  uint64_t NodesVisited = 0;
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  bool AllOk = false;
};

uint64_t sumNodes(const logic::ProofChecker &Checker) {
  uint64_t Total = 0;
  for (uint64_t N : Checker.ruleNodeCounts())
    Total += N;
  return Total;
}

void record(Phase &Out, uint64_t Micros, uint64_t Accepted, size_t Items,
            uint64_t Nodes, const logic::EntailMemo *Memo) {
  Out.BestWallMicros = std::min(Out.BestWallMicros, Micros);
  Out.Accepted = Accepted;
  Out.NodesVisited = Nodes;
  Out.AllOk = Accepted == Items;
  if (Memo) {
    Out.MemoHits = Memo->hits();
    Out.MemoMisses = Memo->misses();
  }
}

/// Baseline: the shape of the analyzer before DESIGN.md §5h — a fresh
/// checker per function (copying Gamma each time), recursive tree walk,
/// every entailment decided from scratch.
void runTreeSerial(const std::vector<Compiled> &Corpus,
                   const std::vector<Item> &Items,
                   const logic::EntailOptions &EO, Phase &Out) {
  uint64_t Accepted = 0, Nodes = 0;
  auto Start = std::chrono::steady_clock::now();
  for (const Item &It : Items) {
    const driver::Compilation &C = Corpus[It.Prog].C;
    const logic::DerivationForest::Root &R = C.Bounds.Forest.roots()[It.Root];
    const logic::FunctionBound &FB = C.Bounds.Bounds.at(R.Function);
    logic::ProofChecker Checker(C.Clight, C.Bounds.Gamma, EO);
    DiagnosticEngine D;
    if (Checker.checkFunctionBound(FB, D))
      ++Accepted;
    Nodes += sumNodes(Checker);
  }
  auto Micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  record(Out, static_cast<uint64_t>(Micros), Accepted, Items.size(), Nodes,
         nullptr);
}

/// Flat form, single thread: borrowed-context checkers, contiguous span
/// walks, one shared entailment memo (cold at rep start).
void runForestSerial(const std::vector<Compiled> &Corpus,
                     const std::vector<Item> &Items,
                     const logic::EntailOptions &EO, Phase &Out) {
  logic::EntailMemo Memo;
  std::vector<std::unique_ptr<logic::ProofChecker>> Checkers;
  for (const Compiled &P : Corpus) {
    Checkers.push_back(std::make_unique<logic::ProofChecker>(
        P.C.Clight, &P.C.Bounds.Gamma, EO));
    Checkers.back()->setMemo(&Memo);
  }
  uint64_t Accepted = 0;
  auto Start = std::chrono::steady_clock::now();
  for (const Item &It : Items) {
    const driver::Compilation &C = Corpus[It.Prog].C;
    DiagnosticEngine D;
    if (Checkers[It.Prog]->checkFunctionBound(C.Bounds.Forest, It.Root, D))
      ++Accepted;
  }
  auto Micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  uint64_t Nodes = 0;
  for (const auto &Checker : Checkers)
    Nodes += sumNodes(*Checker);
  record(Out, static_cast<uint64_t>(Micros), Accepted, Items.size(), Nodes,
         &Memo);
}

/// Flat form on the pool: independent roots checked concurrently, one
/// checker per program shared across workers (its counters are atomic
/// and the memo locks internally), as qccd serves warm proofs.
void runForestPooled(const std::vector<Compiled> &Corpus,
                     const std::vector<Item> &Items,
                     const logic::EntailOptions &EO,
                     batch::WorkStealingPool &Pool, Phase &Out) {
  logic::EntailMemo Memo;
  std::vector<std::unique_ptr<logic::ProofChecker>> Checkers;
  for (const Compiled &P : Corpus) {
    Checkers.push_back(std::make_unique<logic::ProofChecker>(
        P.C.Clight, &P.C.Bounds.Gamma, EO));
    Checkers.back()->setMemo(&Memo);
  }
  std::vector<uint8_t> Verdicts(Items.size(), 0);
  auto Start = std::chrono::steady_clock::now();
  Pool.parallelFor(Items.size(), [&](size_t I) {
    const Item &It = Items[I];
    const driver::Compilation &C = Corpus[It.Prog].C;
    DiagnosticEngine D;
    Verdicts[I] =
        Checkers[It.Prog]->checkFunctionBound(C.Bounds.Forest, It.Root, D)
            ? 1
            : 0;
  });
  auto Micros = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  uint64_t Accepted = 0, Nodes = 0;
  for (uint8_t V : Verdicts)
    Accepted += V;
  for (const auto &Checker : Checkers)
    Nodes += sumNodes(*Checker);
  record(Out, static_cast<uint64_t>(Micros), Accepted, Items.size(), Nodes,
         &Memo);
}

void printPhase(const Phase &P, size_t Items) {
  printf("  %-16s %9.3f ms   %3llu/%zu accepted   %8llu nodes   "
         "%llu/%llu memo hits%s\n",
         P.Name.c_str(), P.BestWallMicros / 1000.0,
         static_cast<unsigned long long>(P.Accepted), Items,
         static_cast<unsigned long long>(P.NodesVisited),
         static_cast<unsigned long long>(P.MemoHits),
         static_cast<unsigned long long>(P.MemoHits + P.MemoMisses),
         P.AllOk ? "" : "   [NOT OK]");
}

void emitPhaseJson(FILE *J, const Phase &P, bool Last) {
  fprintf(J,
          "    {\n"
          "      \"name\": \"%s\",\n"
          "      \"best_wall_ms\": %.3f,\n"
          "      \"accepted\": %llu,\n"
          "      \"nodes_visited\": %llu,\n"
          "      \"entail_memo_hits\": %llu,\n"
          "      \"entail_memo_misses\": %llu,\n"
          "      \"all_ok\": %s\n"
          "    }%s\n",
          P.Name.c_str(), P.BestWallMicros / 1000.0,
          static_cast<unsigned long long>(P.Accepted),
          static_cast<unsigned long long>(P.NodesVisited),
          static_cast<unsigned long long>(P.MemoHits),
          static_cast<unsigned long long>(P.MemoMisses),
          P.AllOk ? "true" : "false", Last ? "" : ",");
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_proofcheck.json";

  // Compile the corpus once (no translation validation: this bench
  // isolates proof checking, not the pipeline). Every compilation keeps
  // both representations of its fresh bounds: the Derivation trees in
  // Bounds and the flat spans in Forest.
  std::vector<Compiled> Corpus;
  for (batch::BatchJob &Job : batch::corpusJobs(/*ValidateTranslation=*/false)) {
    DiagnosticEngine D;
    auto C = driver::compile(Job.Source, D, Job.Options);
    if (!C) {
      fprintf(stderr, "bench_proof_check: %s does not compile: %s\n",
              Job.Id.c_str(), D.str().c_str());
      return 1;
    }
    Corpus.push_back(Compiled{Job.Id, std::move(*C)});
  }

  std::vector<Item> Items;
  for (uint32_t P = 0; P != Corpus.size(); ++P)
    for (uint32_t R = 0;
         R != Corpus[P].C.Bounds.Forest.roots().size(); ++R)
      Items.push_back(Item{P, R});

  logic::EntailOptions EO;
  EO.SymbolicOnly = true; // What the analyzer checked these bounds under.

  unsigned Threads =
      std::clamp(std::thread::hardware_concurrency(), 2u, 8u);
  batch::WorkStealingPool Pool(Threads); // Long-lived, like qccd's.

  printf("==== Proof checking: flat forests vs derivation trees "
         "(%zu bounds, %zu programs) ====\n\n",
         Items.size(), Corpus.size());

  Phase Tree{"tree-serial"}, Serial{"forest-serial"}, Pooled{"forest-pooled"};
  for (unsigned I = 0; I != Reps; ++I) {
    runTreeSerial(Corpus, Items, EO, Tree);
    runForestSerial(Corpus, Items, EO, Serial);
    runForestPooled(Corpus, Items, EO, Pool, Pooled);
  }

  printPhase(Tree, Items.size());
  printPhase(Serial, Items.size());
  printPhase(Pooled, Items.size());

  auto SpeedupOver = [&](const Phase &P) {
    return P.BestWallMicros ? static_cast<double>(Tree.BestWallMicros) /
                                  static_cast<double>(P.BestWallMicros)
                            : 0.0;
  };
  double SerialSpeedup = SpeedupOver(Serial);
  double PooledSpeedup = SpeedupOver(Pooled);

  // Verdict parity: every phase accepts every bound and visits the same
  // derivation nodes — the flat walk is bit-identical, just faster.
  bool Parity = Tree.AllOk && Serial.AllOk && Pooled.AllOk &&
                Tree.NodesVisited == Serial.NodesVisited &&
                Tree.NodesVisited == Pooled.NodesVisited;
  bool Ok = Parity && PooledSpeedup >= 2.0;

  printf("\nheadline: %.1fx pooled (%u threads), %.1fx serial; verdicts "
         "%s across %llu derivation nodes\n",
         PooledSpeedup, Threads, SerialSpeedup,
         Parity ? "identical" : "DIVERGED",
         static_cast<unsigned long long>(Tree.NodesVisited));

  if (FILE *J = fopen(JsonPath, "w")) {
    fprintf(J,
            "{\n"
            "  \"bench\": \"proofcheck\",\n"
            "  \"programs\": %zu,\n"
            "  \"bounds\": %zu,\n"
            "  \"reps\": %u,\n"
            "  \"pool_threads\": %u,\n"
            "  \"forest_serial_speedup\": %.2f,\n"
            "  \"forest_pooled_speedup\": %.2f,\n"
            "  \"verdict_parity\": %s,\n"
            "  \"acceptance\": %s,\n"
            "  \"phases\": [\n",
            Corpus.size(), Items.size(), Reps, Threads, SerialSpeedup,
            PooledSpeedup, Parity ? "true" : "false", Ok ? "true" : "false");
    emitPhaseJson(J, Tree, false);
    emitPhaseJson(J, Serial, false);
    emitPhaseJson(J, Pooled, true);
    fprintf(J, "  ]\n}\n");
    fclose(J);
    printf("wrote %s\n", JsonPath);
  } else {
    fprintf(stderr, "bench_proof_check: cannot write %s\n", JsonPath);
    return 1;
  }

  return Ok ? 0 : 1;
}
