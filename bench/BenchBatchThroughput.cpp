//===- bench/BenchBatchThroughput.cpp - Batch engine throughput -----------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the parallel batch-verification engine over the full
/// evaluation corpus (compile + per-pass translation validation +
/// automatic bounds + Theorem 1 per program):
///
///   1. a serial reference run (--jobs 1),
///   2. a parallel run on every hardware thread,
///   3. result-identity check between the two (byte-identical
///      deterministic metrics JSON),
///   4. a fully cache-hit rerun, recording the hit-rate speedup.
///
/// On machines with >= 4 hardware threads the parallel run must achieve
/// >= 2x wall-clock speedup (the PR's acceptance bar); on smaller hosts
/// the speedup is recorded but not enforced.
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"

#include <cstdio>
#include <thread>

using namespace qcc;

namespace {

/// The corpus, replicated under distinct ids so one timed run is long
/// enough to measure (the corpus itself verifies in a few hundred ms).
std::vector<batch::BatchJob> replicatedCorpus(unsigned Rounds) {
  std::vector<batch::BatchJob> Jobs;
  for (unsigned R = 0; R != Rounds; ++R)
    for (batch::BatchJob &J : batch::corpusJobs()) {
      J.Id = "round" + std::to_string(R) + "/" + J.Id;
      Jobs.push_back(std::move(J));
    }
  return Jobs;
}

} // namespace

int main() {
  unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  printf("==== Batch-verification throughput (%u hardware threads) "
         "====\n\n",
         Hw);

  const unsigned Rounds = 4;
  std::vector<batch::BatchJob> Jobs = replicatedCorpus(Rounds);

  batch::BatchOptions Serial;
  Serial.Jobs = 1;
  batch::BatchResult RSerial = batch::runBatch(Jobs, Serial);

  batch::BatchOptions Parallel;
  Parallel.Jobs = Hw;
  batch::BatchResult RParallel = batch::runBatch(Jobs, Parallel);

  auto CountOk = [](const batch::BatchResult &R) {
    size_t N = 0;
    for (const batch::ProgramResult &P : R.Programs)
      N += P.Ok;
    return N;
  };
  printf("%-24s %12s %8s\n", "configuration", "wall", "ok");
  printf("%-24s %9llu us %5zu/%zu\n", "serial (--jobs 1)",
         static_cast<unsigned long long>(RSerial.WallMicros),
         CountOk(RSerial), RSerial.Programs.size());
  printf("%-24s %9llu us %5zu/%zu\n",
         ("parallel (--jobs " + std::to_string(Hw) + ")").c_str(),
         static_cast<unsigned long long>(RParallel.WallMicros),
         CountOk(RParallel), RParallel.Programs.size());

  bool Identical =
      batch::metricsJson(RSerial, batch::JsonDetail::Deterministic) ==
      batch::metricsJson(RParallel, batch::JsonDetail::Deterministic);
  printf("\nresult identity (serial vs parallel): %s\n",
         Identical ? "byte-identical" : "DIFFER");

  double Speedup = RParallel.WallMicros
                       ? static_cast<double>(RSerial.WallMicros) /
                             static_cast<double>(RParallel.WallMicros)
                       : 0.0;
  printf("speedup: %.2fx on %u threads%s\n", Speedup, Hw,
         Hw >= 4 ? " (>= 2x required)" : " (< 4 threads: recorded only)");

  // A warm-cache rerun: every job must hit.
  batch::ResultCache Cache;
  batch::BatchOptions Warm = Parallel;
  Warm.Cache = &Cache;
  batch::runBatch(Jobs, Warm);
  batch::BatchResult RWarm = batch::runBatch(Jobs, Warm);
  printf("warm-cache rerun: %llu/%zu hits, %llu us wall\n",
         static_cast<unsigned long long>(RWarm.Cache.Hits), Jobs.size(),
         static_cast<unsigned long long>(RWarm.WallMicros));

  bool Ok = RSerial.allOk() && RParallel.allOk() && Identical &&
            RWarm.Cache.Hits == Jobs.size();
  if (Hw >= 4)
    Ok &= Speedup >= 2.0;
  printf("\nverdict: %s\n", Ok ? "throughput bar met" : "FAILED");
  return Ok ? 0 : 1;
}
