//===- bench/BenchDaemonResilience.cpp - Overload + failpoint economics ---===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the crash-only serving layer costs when nothing is failing, and
/// what it buys when everything is:
///
///   1. failpoint fast path — the disarmed `failpoint::fire()` check
///      every I/O edge now carries, in ns/call, plus the armed-but-idle
///      slow path (registry armed at an unrelated site);
///   2. serving overhead — a warm daemon serving the same jobs with the
///      registry disarmed vs armed-but-idle; the acceptance bar is
///      under 2% overhead when QCC_FAILPOINTS is unset;
///   3. overload shed — 4x more concurrent clients than admission
///      slots: Busy replies must come back in milliseconds (fast-fail,
///      not blind queueing), and every client's bounded-backoff retry
///      loop must still land a verdict;
///   4. warm-restart recovery — a drained daemon restarted on the same
///      store: time from construction to the first warm verdict, with
///      every job served from the store.
///
/// Writes BENCH_daemon.json (path overridable as argv[1]).
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"
#include "daemon/Daemon.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace qcc;
using namespace qcc::daemon;
namespace fs = std::filesystem;

namespace {

constexpr unsigned Reps = 3;
constexpr size_t NumJobs = 6;
constexpr uint64_t AdmissionSlots = 2;
constexpr size_t OverloadClients = 8; // 4x the admission slots

using Clock = std::chrono::steady_clock;

uint64_t microsSince(Clock::time_point T0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            T0)
          .count());
}

/// NumJobs distinct small programs: distinct verdicts, no cache aliasing.
std::vector<batch::BatchJob> benchJobs() {
  std::vector<batch::BatchJob> Jobs;
  for (size_t I = 0; I != NumJobs; ++I) {
    std::string N = std::to_string(I + 2);
    batch::BatchJob J;
    J.Id = "bench-" + std::to_string(I) + ".c";
    J.Source = "typedef unsigned int u32;\n"
               "u32 g[8];\n"
               "u32 leaf(u32 x) { return x * " + N + "u + 1u; }\n"
               "u32 mid(u32 x) {\n"
               "  u32 i, acc;\n"
               "  acc = 0;\n"
               "  for (i = 0; i < " + N + "u; i++) acc = acc + leaf(x + i);\n"
               "  return acc;\n"
               "}\n"
               "int main() {\n"
               "  u32 i;\n"
               "  for (i = 0; i < 8u; i++) g[i & 7u] = mid(i);\n"
               "  return (int)(g[3] & 0xffu);\n"
               "}\n";
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}

/// An in-process daemon serving on its own thread until drained.
struct LiveDaemon {
  Daemon D;
  std::thread Server;
  explicit LiveDaemon(const DaemonOptions &O) : D(O) {
    if (D.valid())
      Server = std::thread([this] { D.serve(); });
  }
  ~LiveDaemon() {
    if (Server.joinable()) {
      D.requestDrain();
      Server.join();
    }
  }
};

JobRequest request(const batch::BatchJob &J) {
  JobRequest Req;
  Req.Job = J;
  Req.CheckTheorem1 = true;
  return Req;
}

/// One warm pass over every job through a fresh connection; returns wall
/// micros, or 0 on any failure.
uint64_t warmPass(const std::string &Socket,
                  const std::vector<batch::BatchJob> &Jobs) {
  DaemonClient C;
  if (!C.connect(Socket))
    return 0;
  Clock::time_point T0 = Clock::now();
  for (const batch::BatchJob &J : Jobs) {
    ClientOutcome O = C.verify(request(J));
    // Warm = served, not re-verified: the daemon's in-memory cache
    // answers repeats, the store answers fresh processes.
    if (!O.HaveVerdict || !O.Result.Ok ||
        !(O.Result.StoreHit || O.Result.CacheHit))
      return 0;
  }
  return microsSince(T0);
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_daemon.json";

  std::string Template =
      (fs::temp_directory_path() / "qcc-bench-daemon-XXXXXX").string();
  std::vector<char> Buf(Template.begin(), Template.end());
  Buf.push_back('\0');
  if (!mkdtemp(Buf.data())) {
    fprintf(stderr, "bench_daemon_resilience: no scratch directory\n");
    return 1;
  }
  std::string Root = Buf.data();
  std::string Socket = (fs::path(Root) / "d.sock").string();
  std::string StoreDir = (fs::path(Root) / "store").string();

  printf("==== Daemon resilience: failpoints, overload, recovery ====\n\n");
  std::vector<batch::BatchJob> Jobs = benchJobs();
  failpoint::Registry &FP = failpoint::Registry::instance();

  // 1. The failpoint fast path: what every I/O edge pays when nothing is
  // armed (one relaxed atomic load) and when the registry is armed at a
  // site the edge never matches (mutex + map miss).
  constexpr uint64_t FireIters = 4u << 20;
  FP.clear();
  Clock::time_point T0 = Clock::now();
  for (uint64_t I = 0; I != FireIters; ++I)
    if (failpoint::fire("bench.edge"))
      return 1; // disarmed: can never fire
  double DisarmedNs = microsSince(T0) * 1000.0 / FireIters;
  if (!FP.configure("bench.unrelated=err@p0.0", 1, nullptr))
    return 1;
  T0 = Clock::now();
  for (uint64_t I = 0; I != FireIters; ++I)
    if (failpoint::fire("bench.edge"))
      return 1; // armed elsewhere: still never fires
  double ArmedIdleNs = microsSince(T0) * 1000.0 / FireIters;
  FP.clear();
  printf("  fire() fast path        %8.2f ns disarmed, %8.2f ns armed-idle\n",
         DisarmedNs, ArmedIdleNs);

  // 2. Serving overhead: a warm daemon, same jobs, registry disarmed vs
  // armed-but-idle. Best-of-Reps wall time each; the acceptance bar is
  // <2% for the disarmed configuration (QCC_FAILPOINTS unset), measured
  // as the armed-idle overhead on top of it — the disarmed path itself
  // IS the baseline every other bench already times.
  uint64_t ColdMicros = 0, WarmBest = ~0ull, WarmArmedBest = ~0ull;
  uint64_t ShedCount = 0, ShedMeanMicros = 0, ShedMaxMicros = 0;
  bool OverloadOk = false;
  uint64_t RecoveryMicros = 0;
  bool RecoveryOk = false;
  {
    DaemonOptions DO;
    DO.SocketPath = Socket;
    DO.Jobs = 2;
    DO.StoreDir = StoreDir;
    LiveDaemon Live(DO);
    if (!Live.D.valid()) {
      fprintf(stderr, "bench_daemon_resilience: %s\n",
              Live.D.error().c_str());
      return 1;
    }
    // Cold pass populates the store.
    {
      DaemonClient C;
      if (!C.connect(Socket))
        return 1;
      T0 = Clock::now();
      for (const batch::BatchJob &J : Jobs) {
        ClientOutcome O = C.verify(request(J));
        if (!O.HaveVerdict || !O.Result.Ok)
          return 1;
      }
      ColdMicros = microsSince(T0);
    }
    for (unsigned I = 0; I != Reps; ++I)
      if (uint64_t W = warmPass(Socket, Jobs))
        WarmBest = std::min(WarmBest, W);
    if (!FP.configure("bench.unrelated=err@p0.0", 1, nullptr))
      return 1;
    for (unsigned I = 0; I != Reps; ++I)
      if (uint64_t W = warmPass(Socket, Jobs))
        WarmArmedBest = std::min(WarmArmedBest, W);
    FP.clear();
  }
  if (WarmBest == ~0ull || WarmArmedBest == ~0ull) {
    fprintf(stderr, "bench_daemon_resilience: warm pass failed\n");
    return 1;
  }
  double OverheadPercent =
      WarmArmedBest > WarmBest
          ? (WarmArmedBest - WarmBest) * 100.0 / WarmBest
          : 0.0;
  printf("  warm serving            %9.3f ms disarmed, %9.3f ms armed-idle "
         "(%.2f%% overhead)\n",
         WarmBest / 1000.0, WarmArmedBest / 1000.0, OverheadPercent);

  // 3. Overload shed: 4x more clients than admission slots, each job
  // pinned at the pool boundary long enough that the bound must bite.
  // Busy replies are timed (fast-fail is the contract), then every
  // client retries with the bounded-backoff loop to a verdict.
  {
    DaemonOptions DO;
    DO.SocketPath = Socket;
    DO.Jobs = 2;
    DO.StoreDir = StoreDir;
    DO.MaxActiveJobs = AdmissionSlots;
    LiveDaemon Live(DO);
    if (!Live.D.valid())
      return 1;
    if (!FP.configure("pool.submit=delay:120@1.." +
                          std::to_string(AdmissionSlots * 2),
                      1, nullptr))
      return 1;
    std::atomic<uint64_t> BusyMicrosSum{0}, BusyMicrosMax{0}, Busy{0},
        Verdicts{0};
    std::vector<std::thread> Clients;
    for (size_t I = 0; I != OverloadClients; ++I) {
      Clients.emplace_back([&, I] {
        JobRequest Req = request(benchJobs()[I % NumJobs]);
        DaemonClient C;
        if (!C.connect(Socket))
          return;
        // First shot, untimed retries afterwards: a Busy answer must
        // come back fast, whatever the pool is doing.
        Clock::time_point S0 = Clock::now();
        ClientOutcome O = C.verify(Req);
        uint64_t Micros = microsSince(S0);
        if (O.Busy) {
          Busy.fetch_add(1);
          BusyMicrosSum.fetch_add(Micros);
          uint64_t Prev = BusyMicrosMax.load();
          while (Micros > Prev &&
                 !BusyMicrosMax.compare_exchange_weak(Prev, Micros))
            ;
        }
        if (!O.HaveVerdict) {
          RetryPolicy P;
          P.JitterSeed = I + 1;
          O = C.verifyWithRetry(Req, Socket, P);
        }
        if (O.HaveVerdict && O.Result.Ok)
          Verdicts.fetch_add(1);
      });
    }
    for (std::thread &T : Clients)
      T.join();
    FP.clear();
    ShedCount = Live.D.stats().JobsShed;
    OverloadOk = Verdicts.load() == OverloadClients && ShedCount > 0;
    ShedMeanMicros = Busy.load() ? BusyMicrosSum.load() / Busy.load() : 0;
    ShedMaxMicros = BusyMicrosMax.load();
    printf("  overload (%zux)          %llu sheds, busy reply mean %.2f ms "
           "max %.2f ms, %llu/%zu verdicts%s\n",
           OverloadClients / AdmissionSlots,
           static_cast<unsigned long long>(ShedCount),
           ShedMeanMicros / 1000.0, ShedMaxMicros / 1000.0,
           static_cast<unsigned long long>(Verdicts.load()), OverloadClients,
           OverloadOk ? "" : "   [NOT OK]");
  }

  // 4. Warm-restart recovery: a fresh daemon on the drained store. The
  // clock runs from construction (open-scan included) to the last warm
  // verdict of a full pass.
  {
    T0 = Clock::now();
    DaemonOptions DO;
    DO.SocketPath = Socket;
    DO.Jobs = 2;
    DO.StoreDir = StoreDir;
    LiveDaemon Live(DO);
    if (!Live.D.valid())
      return 1;
    DaemonClient C;
    RetryPolicy P;
    if (!C.connectWithRetry(Socket, P))
      return 1;
    RecoveryOk = true;
    for (const batch::BatchJob &J : Jobs) {
      ClientOutcome O = C.verify(request(J));
      RecoveryOk = RecoveryOk && O.HaveVerdict && O.Result.Ok &&
                   O.Result.StoreHit;
    }
    RecoveryMicros = microsSince(T0);
    printf("  warm restart            %9.3f ms to re-serve %zu jobs from "
           "the store%s\n",
           RecoveryMicros / 1000.0, NumJobs, RecoveryOk ? "" : "   [NOT OK]");
  }

  double WarmSpeedup =
      WarmBest ? static_cast<double>(ColdMicros) / WarmBest : 0.0;
  bool Ok = OverheadPercent < 2.0 && OverloadOk && RecoveryOk;
  printf("\nheadline: %.2f%% armed-idle overhead (bar: <2%%); %llu sheds "
         "all recovered; %.1fx warm speedup\n",
         OverheadPercent, static_cast<unsigned long long>(ShedCount),
         WarmSpeedup);

  if (FILE *J = fopen(JsonPath, "w")) {
    fprintf(J,
            "{\n"
            "  \"bench\": \"daemon-resilience\",\n"
            "  \"jobs\": %zu,\n"
            "  \"reps\": %u,\n"
            "  \"fire_disarmed_ns\": %.2f,\n"
            "  \"fire_armed_idle_ns\": %.2f,\n"
            "  \"cold_wall_ms\": %.3f,\n"
            "  \"warm_wall_ms\": %.3f,\n"
            "  \"warm_armed_idle_wall_ms\": %.3f,\n"
            "  \"failpoint_overhead_percent\": %.2f,\n"
            "  \"overload_clients\": %zu,\n"
            "  \"admission_slots\": %llu,\n"
            "  \"jobs_shed\": %llu,\n"
            "  \"busy_reply_mean_ms\": %.3f,\n"
            "  \"busy_reply_max_ms\": %.3f,\n"
            "  \"warm_restart_ms\": %.3f,\n"
            "  \"acceptance\": %s\n"
            "}\n",
            NumJobs, Reps, DisarmedNs, ArmedIdleNs, ColdMicros / 1000.0,
            WarmBest / 1000.0, WarmArmedBest / 1000.0, OverheadPercent,
            OverloadClients,
            static_cast<unsigned long long>(AdmissionSlots),
            static_cast<unsigned long long>(ShedCount),
            ShedMeanMicros / 1000.0, ShedMaxMicros / 1000.0,
            RecoveryMicros / 1000.0, Ok ? "true" : "false");
    fclose(J);
    printf("wrote %s\n", JsonPath);
  } else {
    fprintf(stderr, "bench_daemon_resilience: cannot write %s\n", JsonPath);
    return 1;
  }

  std::error_code EC;
  fs::remove_all(Root, EC);
  return Ok ? 0 : 1;
}
