//===- bench/BenchTraceStream.cpp - Streaming vs materialized validation --===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the streaming trace pipeline (DESIGN.md "Streaming trace
/// refinement") against the classic materialized one. Both modes replay
/// all five semantic levels and validate the four adjacent pass pairs
/// (quantitative refinement plus the randomized weight-dominance
/// falsifier); the materialized mode records full traces and checks them
/// after the fact, the streaming mode folds events into
/// RefinementAccumulator summaries as they happen.
///
/// Two workloads separate the two claims:
///
///  * "wide"  — a flat loop making 250k calls. The trace is long but the
///    call depth is 2, so the interpreters themselves need almost no
///    memory and the recorded traces dominate the peak RSS. This is the
///    O(trace) vs O(depth) memory story.
///  * "deep"  — 40k-frame recursion. Both modes pay the interpreters'
///    O(depth) transients, but the materialized checker re-walks the
///    full traces per falsifier metric while the streaming checker works
///    on O(#peaks) summaries. This is the time story.
///
/// Peak-RSS attribution uses VmHWM phase deltas: a streaming warm-up is
/// repeated until the high-water mark stops moving (absorbing
/// interpreter-internal allocations, which both modes pay), then the
/// streaming phase and the materialized phase run in that order, so any
/// further growth belongs to the phase that caused it.
///
/// Writes the numbers to BENCH_refinement.json (path overridable as
/// argv[1]).
///
//===----------------------------------------------------------------------===//

#include "cminor/CminorInterp.h"
#include "driver/Compiler.h"
#include "events/Refinement.h"
#include "events/TraceSink.h"
#include "interp/Interp.h"
#include "mach/Mach.h"
#include "measure/StackMeter.h"
#include "rtl/Rtl.h"
#include "x86/Machine.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>

using namespace qcc;

namespace {

/// Straight-line recursion DEPTH frames deep. Not a tail call (the +1u
/// happens after the recursive call returns), so every level of the
/// pipeline really holds DEPTH frames and emits 2*DEPTH memory events.
const char *DeepSource = R"(
#define DEPTH 40000
typedef unsigned int u32;
u32 down(u32 n) {
  if (n == 0u) { return 0u; }
  return down(n - 1u) + 1u;
}
int main() { return (int)(down(DEPTH) & 0xffu); }
)";

/// A flat loop making ITERS calls: half a million memory events per level
/// at call depth 2. Records dominate memory; summaries stay O(1).
const char *WideSource = R"(
#define ITERS 250000
typedef unsigned int u32;
u32 acc = 0u;
u32 tick(u32 n) { acc = acc + n; return acc; }
int main() {
  u32 i;
  for (i = 0u; i < ITERS; i++) { tick(i); }
  return (int)(acc & 0xffu);
}
)";

constexpr uint64_t Fuel = 50'000'000;
constexpr int Reps = 3;

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Peak resident set size of this process in KiB, from /proc/self/status.
/// Monotonic, which is exactly what makes the phase-delta protocol sound.
/// Returns 0 when the file is unreadable (non-Linux).
long readVmHWMKb() {
  FILE *F = fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  long Kb = 0;
  while (fgets(Line, sizeof Line, F))
    if (sscanf(Line, "VmHWM: %ld kB", &Kb) == 1)
      break;
  fclose(F);
  return Kb;
}

std::array<Behavior, 5> runRecorded(const driver::Compilation &C,
                                    x86::Machine &M) {
  return {interp::runProgram(C.Clight, Fuel),
          cminor::runProgram(C.Cminor, Fuel),
          rtl::runProgram(C.Rtl, Fuel),
          mach::runProgram(C.Mach, Fuel * 4),
          M.run(Fuel * 4)};
}

std::array<RefinementSummary, 5> runStreamed(const driver::Compilation &C,
                                             x86::Machine &M) {
  std::array<RefinementSummary, 5> S;
  {
    RefinementAccumulator A;
    S[0] = A.finish(interp::runProgram(C.Clight, A, Fuel));
  }
  {
    RefinementAccumulator A;
    S[1] = A.finish(cminor::runProgram(C.Cminor, A, Fuel));
  }
  {
    RefinementAccumulator A;
    S[2] = A.finish(rtl::runProgram(C.Rtl, A, Fuel));
  }
  {
    RefinementAccumulator A;
    S[3] = A.finish(mach::runProgram(C.Mach, A, Fuel * 4));
  }
  {
    RefinementAccumulator A;
    S[4] = A.finish(M.run(A, Fuel * 4));
  }
  return S;
}

bool checkMaterialized(const std::array<Behavior, 5> &B) {
  bool Ok = true;
  for (int I = 1; I != 5; ++I) {
    Ok &= checkQuantitativeRefinement(B[I], B[I - 1]).Ok;
    Ok &= falsifyWeightDominance(B[I], B[I - 1]).Ok;
  }
  return Ok;
}

bool checkStreamed(const std::array<RefinementSummary, 5> &S) {
  bool Ok = true;
  for (int I = 1; I != 5; ++I) {
    Ok &= checkQuantitativeRefinement(S[I], S[I - 1]).Ok;
    Ok &= falsifyWeightDominance(S[I], S[I - 1]).Ok;
  }
  return Ok;
}

struct WorkloadResult {
  std::string Name;
  uint64_t EventsPerLevel = 0;
  double RunStreamMs = 0, CheckStreamMs = 0;
  double RunRecordMs = 0, CheckMatMs = 0;
  long StreamKb = 0, MatKb = 0;
  /// False when VmHWM could not be read (non-Linux): the phase deltas are
  /// meaningless zeros, and the memory numbers are reported as absent
  /// (JSON null) instead of a fabricated "0.00x ratio".
  bool RssSampled = false;
  bool Ok = false, Agree = false;

  double checkSpeedup() const { return CheckMatMs / std::max(CheckStreamMs, 1e-6); }
  double endToEndSpeedup() const {
    return (RunRecordMs + CheckMatMs) /
           std::max(RunStreamMs + CheckStreamMs, 1e-6);
  }
  double memoryRatio() const {
    // Floor the streaming delta at 64 kB so a fully-absorbed streaming
    // phase (delta 0) yields a defensible, finite ratio.
    return static_cast<double>(MatKb) / static_cast<double>(std::max(StreamKb, 64L));
  }
};

bool benchWorkload(const char *Name, const char *Source, WorkloadResult &Out) {
  Out.Name = Name;
  DiagnosticEngine Diags;
  driver::CompilerOptions Options;
  Options.ValidateTranslation = false; // We validate by hand, twice.
  Options.AnalyzeBounds = false;
  auto C = driver::compile(Source, Diags, Options);
  if (!C) {
    fprintf(stderr, "bench_trace_stream: %s failed to compile\n", Name);
    return false;
  }
  x86::Machine M(C->Asm, measure::MeasureStackSize);

  // Warm up until the high-water mark plateaus: interpreter-internal
  // allocations (continuation stacks, the x86 memory image, allocator
  // churn) are paid by both modes and must not be attributed to either.
  auto Reference = runStreamed(*C, M);
  Out.EventsPerLevel = Reference[0].EventCount;
  for (int I = 0; I != 8; ++I) {
    long Before = readVmHWMKb();
    runStreamed(*C, M);
    if (readVmHWMKb() - Before < 128)
      break;
  }
  long Hwm0 = readVmHWMKb();

  // Streaming phase: timed reps, then the phase's peak-RSS delta.
  double RunStream = 1e300, CheckStream = 1e300;
  bool StreamOk = true;
  for (int R = 0; R != Reps; ++R) {
    auto T0 = Clock::now();
    auto S = runStreamed(*C, M);
    double Run = millisSince(T0);
    auto T1 = Clock::now();
    StreamOk &= checkStreamed(S);
    double Check = millisSince(T1);
    RunStream = std::min(RunStream, Run);
    CheckStream = std::min(CheckStream, Check);
  }
  long Hwm1 = readVmHWMKb();

  // Materialized phase: identical protocol, traces recorded then checked.
  double RunRecord = 1e300, CheckMat = 1e300;
  bool MatOk = true;
  for (int R = 0; R != Reps; ++R) {
    auto T0 = Clock::now();
    auto B = runRecorded(*C, M);
    double Run = millisSince(T0);
    auto T1 = Clock::now();
    MatOk &= checkMaterialized(B);
    double Check = millisSince(T1);
    RunRecord = std::min(RunRecord, Run);
    CheckMat = std::min(CheckMat, Check);
  }
  long Hwm2 = readVmHWMKb();

  // Differential guard: the modes are checked bit-identical in
  // tests/StreamTest.cpp; here gate the verdicts and the replay volume.
  bool Agree = StreamOk == MatOk;
  {
    auto B = runRecorded(*C, M);
    for (int I = 0; I != 5; ++I)
      Agree &= summarize(B[I]).EventCount == Reference[I].EventCount;
  }

  Out.RunStreamMs = RunStream;
  Out.CheckStreamMs = CheckStream;
  Out.RunRecordMs = RunRecord;
  Out.CheckMatMs = CheckMat;
  Out.StreamKb = Hwm1 - Hwm0;
  Out.MatKb = Hwm2 - Hwm1;
  Out.RssSampled = Hwm0 > 0 && Hwm1 > 0 && Hwm2 > 0;
  Out.Ok = StreamOk && MatOk;
  Out.Agree = Agree;
  return true;
}

void printWorkload(const WorkloadResult &W) {
  printf("---- %s: %llu events per level, 5 levels, min of %d reps ----\n",
         W.Name.c_str(), static_cast<unsigned long long>(W.EventsPerLevel),
         Reps);
  printf("%-34s %10s %10s\n", "", "stream", "record");
  printf("%-34s %9.2fms %9.2fms\n", "replay all levels", W.RunStreamMs,
         W.RunRecordMs);
  printf("%-34s %9.2fms %9.2fms\n", "validate 4 pass pairs", W.CheckStreamMs,
         W.CheckMatMs);
  if (W.RssSampled)
    printf("%-34s %9ldkB %9ldkB\n", "peak-RSS growth (phase delta)",
           W.StreamKb, W.MatKb);
  else
    printf("%-34s %10s %10s\n", "peak-RSS growth (phase delta)", "n/a",
           "n/a");
  printf("check speedup %.1fx, end-to-end %.2fx", W.checkSpeedup(),
         W.endToEndSpeedup());
  if (W.RssSampled)
    printf(", peak-memory ratio %.1fx\n", W.memoryRatio());
  else
    printf(" (VmHWM unavailable: no memory ratio)\n");
  printf("verdicts: %s, modes %s\n\n", W.Ok ? "all passes certified" : "FAIL",
         W.Agree ? "agree" : "DISAGREE");
}

void emitWorkloadJson(FILE *J, const WorkloadResult &W, bool Last) {
  fprintf(J,
          "    {\n"
          "      \"name\": \"%s\",\n"
          "      \"events_per_level\": %llu,\n"
          "      \"run_stream_ms\": %.3f,\n"
          "      \"run_record_ms\": %.3f,\n"
          "      \"check_stream_ms\": %.3f,\n"
          "      \"check_materialized_ms\": %.3f,\n"
          "      \"check_speedup\": %.2f,\n"
          "      \"end_to_end_speedup\": %.3f,\n",
          W.Name.c_str(), static_cast<unsigned long long>(W.EventsPerLevel),
          W.RunStreamMs, W.RunRecordMs, W.CheckStreamMs, W.CheckMatMs,
          W.checkSpeedup(), W.endToEndSpeedup());
  // null, not 0: a reader averaging ratios across machines must be able
  // to tell "not measured" from "measured no reduction".
  if (W.RssSampled)
    fprintf(J,
            "      \"peak_rss_stream_kb\": %ld,\n"
            "      \"peak_rss_materialized_kb\": %ld,\n"
            "      \"peak_memory_ratio\": %.2f,\n",
            W.StreamKb, W.MatKb, W.memoryRatio());
  else
    fprintf(J, "      \"peak_rss_stream_kb\": null,\n"
               "      \"peak_rss_materialized_kb\": null,\n"
               "      \"peak_memory_ratio\": null,\n");
  fprintf(J,
          "      \"all_passes_certified\": %s,\n"
          "      \"verdicts_agree\": %s\n"
          "    }%s\n",
          W.Ok ? "true" : "false", W.Agree ? "true" : "false",
          Last ? "" : ",");
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = argc > 1 ? argv[1] : "BENCH_refinement.json";

  printf("==== Streaming vs materialized translation validation ====\n\n");

  // The wide workload runs first: VmHWM is monotonic process-wide, so the
  // workload whose memory story matters must set its phase deltas before
  // the deep workload inflates the baseline.
  WorkloadResult Wide, Deep;
  if (!benchWorkload("wide-loop-250k-calls", WideSource, Wide))
    return 1;
  printWorkload(Wide);
  if (!benchWorkload("deep-recursion-40k-frames", DeepSource, Deep))
    return 1;
  printWorkload(Deep);

  bool Ok = Wide.Ok && Wide.Agree && Deep.Ok && Deep.Agree;
  printf("headline: %.1fx check speedup / %.2fx end-to-end (deep)",
         Deep.checkSpeedup(), Deep.endToEndSpeedup());
  if (Wide.RssSampled)
    printf(", %.1fx peak-memory reduction (wide)\n", Wide.memoryRatio());
  else
    printf(" (VmHWM unavailable: no memory headline)\n");

  if (FILE *J = fopen(JsonPath, "w")) {
    fprintf(J,
            "{\n"
            "  \"bench\": \"trace-stream\",\n"
            "  \"levels\": 5,\n"
            "  \"reps\": %d,\n"
            "  \"falsifier_samples\": 64,\n"
            "  \"check_speedup\": %.2f,\n"
            "  \"end_to_end_speedup\": %.3f,\n",
            Reps, Deep.checkSpeedup(), Deep.endToEndSpeedup());
    if (Wide.RssSampled)
      fprintf(J, "  \"peak_memory_ratio\": %.2f,\n", Wide.memoryRatio());
    else
      fprintf(J, "  \"peak_memory_ratio\": null,\n");
    fprintf(J,
            "  \"all_passes_certified\": %s,\n"
            "  \"workloads\": [\n",
            Ok ? "true" : "false");
    emitWorkloadJson(J, Wide, false);
    emitWorkloadJson(J, Deep, true);
    fprintf(J, "  ]\n}\n");
    fclose(J);
    printf("wrote %s\n", JsonPath);
  } else {
    fprintf(stderr, "bench_trace_stream: cannot write %s\n", JsonPath);
    return 1;
  }

  return Ok ? 0 : 1;
}
