//===- bench/BenchSupervision.cpp - Watchdog / supervision overhead -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost of being supervisable. Supervision threads one relaxed atomic
/// load through every interpreter hot loop (amortized to one poll per
/// 1024 steps), arms a per-job deadline, and registers each job with the
/// watchdog thread. None of that may tax the happy path:
///
///   1. cold corpus runs, unsupervised vs. deadline-supervised
///      (a 60 s deadline nothing ever hits), best-of-N wall clock,
///   2. the same comparison on a fully warm result cache — the PR's
///      acceptance bar: watchdog overhead on a warm-cache rerun < 2%,
///   3. a result-identity check: supervision must not perturb a single
///      byte of the deterministic metrics.
///
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace qcc;

namespace {

std::vector<batch::BatchJob> replicatedCorpus(unsigned Rounds) {
  std::vector<batch::BatchJob> Jobs;
  for (unsigned R = 0; R != Rounds; ++R)
    for (batch::BatchJob &J : batch::corpusJobs()) {
      J.Id = "round" + std::to_string(R) + "/" + J.Id;
      Jobs.push_back(std::move(J));
    }
  return Jobs;
}

/// Interleaved best-of-N: alternate the two configurations rep by rep so
/// machine-wide drift (thermal, cgroup throttling) hits both equally,
/// and take each side's min to absorb scheduler noise.
void bestWallPair(const std::vector<batch::BatchJob> &Jobs,
                  const batch::BatchOptions &A,
                  const batch::BatchOptions &B, unsigned Reps,
                  uint64_t &BestA, uint64_t &BestB,
                  batch::BatchResult *LastA = nullptr,
                  batch::BatchResult *LastB = nullptr) {
  BestA = BestB = ~0ull;
  for (unsigned I = 0; I != Reps; ++I) {
    batch::BatchResult RA = batch::runBatch(Jobs, A);
    BestA = std::min(BestA, RA.WallMicros);
    if (LastA)
      *LastA = std::move(RA);
    batch::BatchResult RB = batch::runBatch(Jobs, B);
    BestB = std::min(BestB, RB.WallMicros);
    if (LastB)
      *LastB = std::move(RB);
  }
}

double overheadPct(uint64_t Plain, uint64_t Supervised) {
  if (!Plain)
    return 0.0;
  return 100.0 * (static_cast<double>(Supervised) -
                  static_cast<double>(Plain)) /
         static_cast<double>(Plain);
}

} // namespace

int main() {
  printf("==== Supervision overhead (watchdog + deadline polling) "
         "====\n\n");

  std::vector<batch::BatchJob> Jobs = replicatedCorpus(4);

  batch::BatchOptions Plain;
  batch::BatchOptions Supervised;
  Supervised.DeadlineMillis = 60'000; // Armed + watched, never fires.

  // 1. Cold runs (every job compiled, validated, bounded, executed).
  batch::BatchResult RPlain, RSup;
  uint64_t ColdPlain, ColdSup;
  bestWallPair(Jobs, Plain, Supervised, 3, ColdPlain, ColdSup, &RPlain,
               &RSup);
  printf("%-36s %9llu us\n", "cold, unsupervised",
         static_cast<unsigned long long>(ColdPlain));
  printf("%-36s %9llu us  (%+.2f%%)\n", "cold, 60s deadline + watchdog",
         static_cast<unsigned long long>(ColdSup),
         overheadPct(ColdPlain, ColdSup));

  bool Identical =
      batch::metricsJson(RPlain, batch::JsonDetail::Deterministic) ==
      batch::metricsJson(RSup, batch::JsonDetail::Deterministic);
  printf("%-36s %s\n", "result identity",
         Identical ? "byte-identical" : "DIFFER");

  // 2. Warm-cache reruns: the acceptance bar. Every job is a cache hit,
  // so what remains is pure engine overhead — exactly where a heavy
  // watchdog would show. A much larger replicated set keeps the 2% bar
  // above the timer noise floor (hits are cheap; only the fill pays).
  std::vector<batch::BatchJob> WarmJobs = replicatedCorpus(64);
  batch::ResultCache Cache; // Shared: the key ignores supervision.
  batch::BatchOptions WarmPlain = Plain;
  WarmPlain.Cache = &Cache;
  batch::BatchOptions WarmSup = Supervised;
  WarmSup.Cache = &Cache;
  batch::runBatch(WarmJobs, WarmPlain); // Fill.
  uint64_t WarmPlainUs, WarmSupUs;
  bestWallPair(WarmJobs, WarmPlain, WarmSup, 15, WarmPlainUs, WarmSupUs);
  double WarmOverhead = overheadPct(WarmPlainUs, WarmSupUs);
  printf("\n%-36s %9llu us\n", "warm cache, unsupervised",
         static_cast<unsigned long long>(WarmPlainUs));
  printf("%-36s %9llu us  (%+.2f%%, < 2%% required)\n",
         "warm cache, 60s deadline + watchdog",
         static_cast<unsigned long long>(WarmSupUs), WarmOverhead);

  bool Ok = RPlain.allOk() && RSup.allOk() && Identical &&
            WarmOverhead < 2.0;
  printf("\nverdict: %s\n",
         Ok ? "supervision overhead bar met" : "FAILED");
  return Ok ? 0 : 1;
}
