//===- logic/Forest.cpp - Flat preorder derivation storage ----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Forest.h"

using namespace qcc;
using namespace qcc::logic;

void DerivationForest::grow(uint32_t MinCap) {
  uint32_t NewCap = Cap ? Cap : 64;
  while (NewCap < MinCap)
    NewCap *= 2;
  // Bump-allocate fresh lanes and copy; the arena reclaims nothing until
  // the forest dies, so doubling keeps total waste under one extra copy.
  auto *NewRules = A->allocArray<uint8_t>(NewCap);
  auto *NewStmts = A->allocArray<const clight::Stmt *>(NewCap);
  auto *NewPre = A->allocArray<uint32_t>(NewCap);
  auto *NewSkip = A->allocArray<uint32_t>(NewCap);
  auto *NewBreak = A->allocArray<uint32_t>(NewCap);
  auto *NewReturn = A->allocArray<uint32_t>(NewCap);
  auto *NewFrame = A->allocArray<uint32_t>(NewCap);
  auto *NewSup = A->allocArray<uint32_t>(NewCap);
  auto *NewEnds = A->allocArray<uint32_t>(NewCap);
  if (N) {
    std::memcpy(NewRules, Rules, N * sizeof(uint8_t));
    std::memcpy(NewStmts, Stmts, N * sizeof(const clight::Stmt *));
    std::memcpy(NewPre, PreIds, N * sizeof(uint32_t));
    std::memcpy(NewSkip, SkipIds, N * sizeof(uint32_t));
    std::memcpy(NewBreak, BreakIds, N * sizeof(uint32_t));
    std::memcpy(NewReturn, ReturnIds, N * sizeof(uint32_t));
    std::memcpy(NewFrame, FrameIds, N * sizeof(uint32_t));
    std::memcpy(NewSup, SupIds, N * sizeof(uint32_t));
    std::memcpy(NewEnds, Ends, N * sizeof(uint32_t));
  }
  Rules = NewRules;
  Stmts = NewStmts;
  PreIds = NewPre;
  SkipIds = NewSkip;
  BreakIds = NewBreak;
  ReturnIds = NewReturn;
  FrameIds = NewFrame;
  SupIds = NewSup;
  Ends = NewEnds;
  Cap = NewCap;
}

void DerivationForest::reserve(uint32_t MinCap) {
  if (MinCap > Cap)
    grow(MinCap);
}

uint32_t DerivationForest::internBound(const BoundExpr &B) {
  if (!B)
    return NoBound;
  auto [It, Inserted] =
      TableIds.emplace(B.get(), static_cast<uint32_t>(Table.size()));
  if (Inserted)
    Table.push_back(B);
  return It->second;
}

uint32_t DerivationForest::pushNode(Rule R, const clight::Stmt *S,
                                    uint32_t Pre, uint32_t Skip,
                                    uint32_t Break, uint32_t Return,
                                    uint32_t Frame, uint32_t Sup) {
  if (N == Cap)
    grow(N + 1);
  uint32_t I = N++;
  Rules[I] = static_cast<uint8_t>(R);
  Stmts[I] = S;
  PreIds[I] = Pre;
  SkipIds[I] = Skip;
  BreakIds[I] = Break;
  ReturnIds[I] = Return;
  FrameIds[I] = Frame;
  SupIds[I] = Sup;
  Ends[I] = I + 1; // Leaf until sealed wider.
  return I;
}

uint32_t DerivationForest::addRoot(const std::string &Function,
                                   const FunctionSpec &Spec,
                                   const Derivation &Body) {
  reserve(N + static_cast<uint32_t>(Body.size()));
  uint32_t Start = N;
  // Explicit-stack preorder append; spans are sealed on the way out, so
  // depth costs stack frames nowhere.
  struct WorkItem {
    const Derivation *D;
    uint32_t Index;
    size_t NextChild;
  };
  std::vector<WorkItem> Stack;
  auto Append = [&](const Derivation &D) {
    return pushNode(D.R, D.S, internBound(D.Pre), internBound(D.Post.OnSkip),
                    internBound(D.Post.OnBreak),
                    internBound(D.Post.OnReturn), internBound(D.FrameAmount),
                    internBound(D.SupHint));
  };
  Stack.push_back({&Body, Append(Body), 0});
  while (!Stack.empty()) {
    WorkItem &Top = Stack.back();
    if (Top.NextChild < Top.D->Children.size()) {
      const Derivation *C = Top.D->Children[Top.NextChild++].get();
      Stack.push_back({C, Append(*C), 0});
    } else {
      sealNode(Top.Index);
      Stack.pop_back();
    }
  }
  return addRootRecord(Function, Spec, Start);
}

DerivationPtr DerivationForest::toTree(uint32_t I) const {
  uint32_t E = Ends[I];
  // Build bottom-up right-to-left: by the time a node is built, every
  // node in its span already is, so children move straight in.
  std::vector<DerivationPtr> Built(E - I);
  for (uint32_t J = E; J-- > I;) {
    auto D = std::make_unique<Derivation>();
    D->R = rule(J);
    D->S = Stmts[J];
    D->Pre = pre(J);
    D->Post = {skipPost(J), breakPost(J), returnPost(J)};
    D->FrameAmount = frame(J);
    D->SupHint = sup(J);
    for (uint32_t C = J + 1; C < Ends[J]; C = Ends[C])
      D->Children.push_back(std::move(Built[C - I]));
    Built[J - I] = std::move(D);
  }
  return std::move(Built[0]);
}

FunctionBound DerivationForest::toFunctionBound(uint32_t RootIdx) const {
  const Root &R = Roots[RootIdx];
  return FunctionBound{R.Function, R.Spec, toTree(R.Node)};
}
