//===- logic/Logic.cpp - Quantitative Hoare logic derivations -------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Logic.h"

using namespace qcc;
using namespace qcc::logic;

const char *qcc::logic::ruleName(Rule R) {
  switch (R) {
  case Rule::Skip: return "Q:SKIP";
  case Rule::Break: return "Q:BREAK";
  case Rule::Return: return "Q:RETURN";
  case Rule::Assign: return "Q:ASSIGN";
  case Rule::Call: return "Q:CALL";
  case Rule::CallBalanced: return "Q:CALL*";
  case Rule::CallHavoc: return "Q:CALL-HAVOC";
  case Rule::ExternalCall: return "Q:EXT";
  case Rule::Seq: return "Q:SEQ";
  case Rule::If: return "Q:IF";
  case Rule::Loop: return "Q:LOOP";
  case Rule::Frame: return "Q:FRAME";
  case Rule::Conseq: return "Q:CONSEQ";
  }
  return "<bad rule>";
}

AssignedLocals qcc::logic::assignedLocals(const clight::Stmt &S) {
  AssignedLocals Out;
  std::vector<const clight::Stmt *> Work{&S};
  while (!Work.empty()) {
    const clight::Stmt *Cur = Work.back();
    Work.pop_back();
    if (Cur->HasDest && Cur->Dest.K == clight::LValue::Kind::Local)
      Out.insert(Cur->Dest.Name);
    if (Cur->First)
      Work.push_back(Cur->First.get());
    if (Cur->Second)
      Work.push_back(Cur->Second.get());
  }
  return Out;
}

std::string PostCondition::str() const {
  return "(" + OnSkip->str() + ", " + OnBreak->str() + ", " +
         OnReturn->str() + ")";
}

// Explicit-stack preorder walk: fuzz-generated derivations nest as deep
// as the parser's statement limit permits, and a recursive renderer can
// exhaust the host stack long before the logic itself would object.
std::string Derivation::str(unsigned Indent) const {
  std::string Out;
  std::vector<std::pair<const Derivation *, unsigned>> Work{{this, Indent}};
  while (!Work.empty()) {
    auto [D, Depth] = Work.back();
    Work.pop_back();
    Out.append(Depth * 2, ' ');
    Out += ruleName(D->R);
    Out += ": {" + D->Pre->str() + "} ... {" + D->Post.str() + "}\n";
    for (size_t I = D->Children.size(); I > 0; --I)
      Work.push_back({D->Children[I - 1].get(), Depth + 1});
  }
  return Out;
}

size_t Derivation::size() const {
  size_t N = 0;
  std::vector<const Derivation *> Work{this};
  while (!Work.empty()) {
    const Derivation *D = Work.back();
    Work.pop_back();
    ++N;
    for (const DerivationPtr &C : D->Children)
      Work.push_back(C.get());
  }
  return N;
}

DerivationPtr Derivation::clone() const {
  auto D = std::make_unique<Derivation>();
  D->R = R;
  D->S = S;
  D->Pre = Pre;
  D->Post = Post;
  D->FrameAmount = FrameAmount;
  D->SupHint = SupHint;
  for (const DerivationPtr &C : Children)
    D->Children.push_back(C->clone());
  return D;
}

Derivation *Derivation::nodeAt(size_t Index) {
  if (Index == 0)
    return this;
  size_t Offset = 1;
  for (DerivationPtr &C : Children) {
    size_t Sub = C->size();
    if (Index < Offset + Sub)
      return C->nodeAt(Index - Offset);
    Offset += Sub;
  }
  return nullptr;
}
