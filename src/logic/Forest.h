//===- logic/Forest.h - Flat preorder derivation storage --------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `DerivationForest` stores whole derivations (one root per checked
/// function) as preorder-flattened struct-of-arrays nodes instead of the
/// pointer-chased `Derivation` tree: per node a rule tag, the proved
/// statement, interned ids into a per-forest bound table for
/// Pre/Post/Frame/SupHint, and the exclusive end of the node's subtree
/// span. All node lanes are bump-allocated from a `support/Arena`, so a
/// proof-checking walk touches a handful of contiguous arrays rather than
/// one heap node per rule application.
///
/// Invariants the rest of the system leans on:
///
///   * Node `I`'s children are exactly the chain `C = I+1; C = end(C)`
///     while `C < end(I)` — preorder spans nest, never interleave.
///   * A node's flat index minus its root's first index equals its
///     preorder index in the tree form, so `Derivation::nodeAt` positions
///     (mutation testing, error replay) carry over unchanged.
///   * Conversion to and from the tree form is lossless: bounds are
///     shared (they are immutable), statements are kept as pointers, and
///     `toTree(addRoot(D)) == D` node for node.
///
/// The bound table deduplicates by canonical pointer: bound expressions
/// are interned process-wide (logic/Bound.cpp), so structurally equal
/// bounds normally share one table slot, which is what makes the
/// checker's entailment memo (keyed on bound identity) effective across
/// functions and across store round trips.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_FOREST_H
#define QCC_LOGIC_FOREST_H

#include "logic/Logic.h"
#include "support/Arena.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace qcc {
namespace logic {

class DerivationForest {
public:
  /// Bound-table id of an absent bound (FrameAmount/SupHint are optional).
  static constexpr uint32_t NoBound = 0xffffffffu;

  /// One checked function: its name, spec, and body subtree.
  struct Root {
    std::string Function;
    FunctionSpec Spec;
    uint32_t Node; ///< First node of the body derivation.
    uint32_t End;  ///< Exclusive end of the body's span.
  };

  DerivationForest() : A(std::make_unique<Arena>()) {}
  DerivationForest(DerivationForest &&O) noexcept { *this = std::move(O); }
  DerivationForest &operator=(DerivationForest &&O) noexcept {
    if (this != &O) {
      A = std::move(O.A);
      Rules = O.Rules;
      Stmts = O.Stmts;
      PreIds = O.PreIds;
      SkipIds = O.SkipIds;
      BreakIds = O.BreakIds;
      ReturnIds = O.ReturnIds;
      FrameIds = O.FrameIds;
      SupIds = O.SupIds;
      Ends = O.Ends;
      N = O.N;
      Cap = O.Cap;
      Table = std::move(O.Table);
      TableIds = std::move(O.TableIds);
      Roots = std::move(O.Roots);
      // Leave the source empty (and arena-less: it grows a new one on
      // first use via the reserve path), not dangling.
      O.Rules = nullptr;
      O.Stmts = nullptr;
      O.PreIds = O.SkipIds = O.BreakIds = O.ReturnIds = nullptr;
      O.FrameIds = O.SupIds = O.Ends = nullptr;
      O.N = O.Cap = 0;
      O.A = std::make_unique<Arena>();
      O.Table.clear();
      O.TableIds.clear();
      O.Roots.clear();
    }
    return *this;
  }

  //===--------------------------------------------------------------------===//
  // Reading
  //===--------------------------------------------------------------------===//

  uint32_t numNodes() const { return N; }
  Rule rule(uint32_t I) const { return static_cast<Rule>(Rules[I]); }
  const clight::Stmt *stmt(uint32_t I) const { return Stmts[I]; }
  /// Exclusive end of node \p I's subtree span.
  uint32_t end(uint32_t I) const { return Ends[I]; }

  uint32_t preId(uint32_t I) const { return PreIds[I]; }
  uint32_t skipId(uint32_t I) const { return SkipIds[I]; }
  uint32_t breakId(uint32_t I) const { return BreakIds[I]; }
  uint32_t returnId(uint32_t I) const { return ReturnIds[I]; }
  uint32_t frameId(uint32_t I) const { return FrameIds[I]; }
  uint32_t supId(uint32_t I) const { return SupIds[I]; }

  /// The bound for table id \p Id; the shared null expression for NoBound.
  const BoundExpr &bound(uint32_t Id) const {
    return Id == NoBound ? Null : Table[Id];
  }
  const BoundExpr &pre(uint32_t I) const { return bound(PreIds[I]); }
  const BoundExpr &skipPost(uint32_t I) const { return bound(SkipIds[I]); }
  const BoundExpr &breakPost(uint32_t I) const { return bound(BreakIds[I]); }
  const BoundExpr &returnPost(uint32_t I) const { return bound(ReturnIds[I]); }
  const BoundExpr &frame(uint32_t I) const { return bound(FrameIds[I]); }
  const BoundExpr &sup(uint32_t I) const { return bound(SupIds[I]); }

  /// Number of direct children of node \p I (walks the child chain).
  uint32_t childCount(uint32_t I) const {
    uint32_t Count = 0;
    for (uint32_t C = I + 1; C < Ends[I]; C = Ends[C])
      ++Count;
    return Count;
  }

  const std::vector<Root> &roots() const { return Roots; }
  size_t boundTableSize() const { return Table.size(); }

  //===--------------------------------------------------------------------===//
  // Building
  //===--------------------------------------------------------------------===//

  /// Interns \p B into the bound table; NoBound for a null expression.
  uint32_t internBound(const BoundExpr &B);

  /// Appends a node with an unsealed span. Nodes must be appended in
  /// preorder; call sealNode once the node's whole subtree is in.
  uint32_t pushNode(Rule R, const clight::Stmt *S, uint32_t Pre,
                    uint32_t Skip, uint32_t Break, uint32_t Return,
                    uint32_t Frame, uint32_t Sup);

  /// Seals node \p I's span at the current node count.
  void sealNode(uint32_t I) { Ends[I] = N; }

  /// Records a root over an already-built (and sealed) span.
  uint32_t addRootRecord(std::string Function, FunctionSpec Spec,
                         uint32_t Node) {
    Roots.push_back({std::move(Function), std::move(Spec), Node, Ends[Node]});
    return static_cast<uint32_t>(Roots.size() - 1);
  }

  /// Flattens \p Body (iteratively) and records it as a root for
  /// \p Function. Returns the root's index into roots().
  uint32_t addRoot(const std::string &Function, const FunctionSpec &Spec,
                   const Derivation &Body);

  /// Drops the most recently added root (a bound the checker rejected or
  /// was stopped on). Its span stays allocated but unreferenced; no walk
  /// starts from a dead span.
  void popRoot() { Roots.pop_back(); }

  /// Grows the node lanes to hold at least \p Cap nodes.
  void reserve(uint32_t Cap);

  //===--------------------------------------------------------------------===//
  // Conversion back to trees
  //===--------------------------------------------------------------------===//

  /// Rebuilds the tree form of the subtree rooted at node \p I.
  DerivationPtr toTree(uint32_t I) const;

  /// Rebuilds the FunctionBound for roots()[RootIdx].
  FunctionBound toFunctionBound(uint32_t RootIdx) const;

private:
  void grow(uint32_t MinCap);

  std::unique_ptr<Arena> A;
  // Node lanes (struct-of-arrays), arena-backed, one capacity for all.
  uint8_t *Rules = nullptr;
  const clight::Stmt **Stmts = nullptr;
  uint32_t *PreIds = nullptr;
  uint32_t *SkipIds = nullptr;
  uint32_t *BreakIds = nullptr;
  uint32_t *ReturnIds = nullptr;
  uint32_t *FrameIds = nullptr;
  uint32_t *SupIds = nullptr;
  uint32_t *Ends = nullptr;
  uint32_t N = 0;
  uint32_t Cap = 0;

  std::vector<BoundExpr> Table;
  std::unordered_map<const BoundExprNode *, uint32_t> TableIds;
  BoundExpr Null; ///< Returned for NoBound ids.

  std::vector<Root> Roots;
};

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_FOREST_H
