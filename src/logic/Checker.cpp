//===- logic/Checker.cpp - Proof checker for the quantitative logic -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Checker.h"

#include "logic/Convert.h"

using namespace qcc;
using namespace qcc::logic;
namespace cl = qcc::clight;

bool ProofChecker::require(bool Cond, const NodeView &V, const char *Message,
                           DiagnosticEngine &Diags) {
  if (!Cond)
    Diags.error(V.S ? V.S->Loc : SourceLoc(),
                std::string(ruleName(V.R)) + ": " + Message);
  return Cond;
}

bool ProofChecker::requireEntails(const BoundExpr &Stronger,
                                  const BoundExpr &Weaker,
                                  const std::vector<Cmp> &Assumptions,
                                  const NodeView &V, const char *What,
                                  DiagnosticEngine &Diags) {
  EntailResult R = entails(Stronger, Weaker, Assumptions, Options, Memo);
  if (!R.Holds)
    Diags.error(V.S ? V.S->Loc : SourceLoc(),
                std::string(ruleName(V.R)) + ": " + What +
                    ": cannot establish " + Stronger->str() +
                    "  >=  " + Weaker->str() +
                    (R.Counterexample.empty() ? ""
                                              : " (" + R.Counterexample + ")"));
  return R.Holds;
}

bool ProofChecker::requireEntails(const BoundExpr &Stronger,
                                  const BoundExpr &Weaker, const NodeView &V,
                                  const char *What, DiagnosticEngine &Diags) {
  static const std::vector<Cmp> NoAssumptions;
  return requireEntails(Stronger, Weaker, NoAssumptions, V, What, Diags);
}

/// True if \p Name occurs free in \p T.
static bool termMentionsVar(const IntTerm &T, const std::string &Name) {
  if (!T)
    return false;
  if (T->K == IntTermNode::Kind::Var)
    return T->Name == Name;
  return termMentionsVar(T->Lhs, Name) || termMentionsVar(T->Rhs, Name);
}

/// True if \p Name occurs free in \p E. Direct recursion with early
/// exit — no variable-set materialization on this per-node path.
static bool mentionsVar(const BoundExpr &E, const std::string &Name) {
  if (!E)
    return false;
  if (E->Term && termMentionsVar(E->Term, Name))
    return true;
  if (E->Condition && (termMentionsVar(E->Condition->Lhs, Name) ||
                       termMentionsVar(E->Condition->Rhs, Name)))
    return true;
  return mentionsVar(E->Lhs, Name) || mentionsVar(E->Rhs, Name);
}

ProofChecker::NodeView ProofChecker::viewOf(const Derivation &D) {
  NodeView V;
  V.R = D.R;
  V.S = D.S;
  V.Pre = &D.Pre;
  V.QSkip = &D.Post.OnSkip;
  V.QBreak = &D.Post.OnBreak;
  V.QReturn = &D.Post.OnReturn;
  V.Frame = &D.FrameAmount;
  V.Sup = &D.SupHint;
  V.NumChildren = static_cast<uint32_t>(D.Children.size());
  for (uint32_t I = 0; I != V.NumChildren && I != 2; ++I) {
    const Derivation &C = *D.Children[I];
    V.Kids[I] = {C.S, &C.Pre, &C.Post.OnSkip, &C.Post.OnBreak,
                 &C.Post.OnReturn};
  }
  return V;
}

ProofChecker::NodeView ProofChecker::viewOf(const DerivationForest &Fo,
                                            uint32_t I) {
  NodeView V;
  V.R = Fo.rule(I);
  V.S = Fo.stmt(I);
  V.Pre = &Fo.pre(I);
  V.QSkip = &Fo.skipPost(I);
  V.QBreak = &Fo.breakPost(I);
  V.QReturn = &Fo.returnPost(I);
  V.Frame = &Fo.frame(I);
  V.Sup = &Fo.sup(I);
  V.NumChildren = 0;
  for (uint32_t C = I + 1; C < Fo.end(I); C = Fo.end(C)) {
    if (V.NumChildren < 2)
      V.Kids[V.NumChildren] = {Fo.stmt(C), &Fo.pre(C), &Fo.skipPost(C),
                               &Fo.breakPost(C), &Fo.returnPost(C)};
    ++V.NumChildren;
  }
  return V;
}

bool ProofChecker::pollSupervisor(const cl::Stmt *S,
                                  DiagnosticEngine &Diags) {
  if (!Sup)
    return true;
  Sup->charge(sizeof(Derivation));
  if (!Sup->stopRequested())
    return true;
  if (!StopReported.exchange(true))
    Diags.error(S ? S->Loc : SourceLoc(),
                std::string("proof checking stopped: ") +
                    stopCauseName(Sup->cause()));
  return false;
}

bool ProofChecker::check(const Derivation &D, const cl::Function &F,
                         DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  checkNode(D, F, Diags);
  return Diags.errorCount() == Before;
}

bool ProofChecker::check(const DerivationForest &Fo, uint32_t Node,
                         const cl::Function &F, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  walkSpan(Fo, Node, F, Diags);
  return Diags.errorCount() == Before;
}

bool ProofChecker::checkCall(const NodeView &V, const cl::Function &F,
                             DiagnosticEngine &Diags) {
  const cl::Stmt *S = V.S;
  if (!require(S->Kind == cl::StmtKind::Call, V, "statement is not a call",
               Diags))
    return false;

  // The call result clobbers its destination, so the claimed skip-part
  // must not observe it — except under Q:CALL-HAVOC, which handles the
  // observation through ResultFacts.
  if (V.R != Rule::CallHavoc && S->HasDest &&
      S->Dest.K == cl::LValue::Kind::Local &&
      mentionsVar(*V.QSkip, S->Dest.Name))
    return require(false, V,
                   "postcondition mentions the call destination '" +
                       S->Dest.Name + "'",
                   Diags);

  if (P.findExternal(S->Callee)) {
    require(V.R == Rule::ExternalCall, V,
            "external call must use Q:EXT", Diags);
    // Externals cost nothing under stack metrics: {P} ext() {P}.
    return requireEntails(*V.Pre, *V.QSkip, V, "external frame", Diags);
  }

  auto SpecIt = G->find(S->Callee);
  if (SpecIt == G->end())
    return require(false, V,
                   "no specification for callee '" + S->Callee +
                       "' in Gamma",
                   Diags);
  const FunctionSpec &Spec = SpecIt->second;
  const cl::Function *Callee = P.findFunction(S->Callee);
  if (!require(Callee != nullptr, V, "unknown callee", Diags))
    return false;

  // Instantiate the spec's parameters with the argument terms. The
  // spec's variable set is only needed on the no-term-form path, so it
  // is collected lazily.
  std::map<std::string, IntTerm> Sub;
  std::optional<std::set<std::string>> SpecVars;
  for (size_t I = 0; I != Callee->Params.size() && I != S->Args.size(); ++I) {
    const std::string &Param = Callee->Params[I];
    if (auto T = convertExprToTerm(*S->Args[I], F)) {
      Sub[Param] = *T;
      continue;
    }
    if (!SpecVars) {
      SpecVars.emplace();
      collectBoundVars(Spec.Pre, *SpecVars);
      collectBoundVars(Spec.Post, *SpecVars);
    }
    if (SpecVars->count(Param)) {
      require(false, V,
              "argument for parameter '" + Param +
                  "' has no term form but the spec depends on it",
              Diags);
      return false;
    }
  }
  BoundExpr CalleePre =
      bAdd(substBoundAll(Spec.Pre, Sub), bMetric(S->Callee));
  BoundExpr CalleePost =
      bAdd(substBoundAll(Spec.Post, Sub), bMetric(S->Callee));

  if (V.R == Rule::Call) {
    // Primitive Q:CALL: {spec.Pre o args + M(f)} call {spec.Post o args +
    // M(f), bot, bot}.
    return requireEntails(*V.Pre, CalleePre, V, "call precondition",
                          Diags) &
           requireEntails(CalleePost, *V.QSkip, V,
                          "call postcondition", Diags);
  }

  if (V.R == Rule::CallHavoc) {
    // Q:CALL-HAVOC: the continuation R observes the result r := dest.
    // Soundness: let H be the result-free majorant. Q:CALL + Q:FRAME with
    // c = max(0, H - CalleePost) (state-independent because H and the
    // balanced spec only read caller state the callee cannot write)
    // give {max(CalleePre, H)} call {max(CalleePost, H) >= H}. Since the
    // callee guarantees its ResultFacts about r, and H >= R under those
    // facts for *every* r (checked below by sampling r as a free
    // variable), Q:CONSEQ closes with post R.
    if (!require(Spec.isBalanced(), V,
                 "Q:CALL-HAVOC needs a balanced callee specification",
                 Diags) ||
        !require(!Spec.ResultFacts.empty(), V,
                 "Q:CALL-HAVOC needs ResultFacts on the callee", Diags) ||
        !require(*V.Sup != nullptr, V, "missing result-free majorant",
                 Diags) ||
        !require(S->HasDest && S->Dest.K == cl::LValue::Kind::Local, V,
                 "Q:CALL-HAVOC needs a local call destination", Diags))
      return false;
    if (!require(!mentionsVar(*V.Sup, S->Dest.Name), V,
                 "the majorant must not observe the call result", Diags))
      return false;
    // Instantiate the facts: parameters by argument terms, $result by the
    // destination variable.
    std::map<std::string, IntTerm> FactSub = Sub;
    VarSign DestSign =
        F.VarSigns.count(S->Dest.Name) &&
                F.VarSigns.at(S->Dest.Name) == cl::Signedness::Signed
            ? VarSign::Signed
            : VarSign::Unsigned;
    FactSub[resultVarName()] = IntTermNode::var(S->Dest.Name, DestSign);
    std::vector<Cmp> Facts;
    for (const Cmp &FactCmp : Spec.ResultFacts)
      Facts.push_back(Cmp{substIntTermAll(FactCmp.Lhs, FactSub),
                          FactCmp.Rel,
                          substIntTermAll(FactCmp.Rhs, FactSub)});
    bool Ok = requireEntails(*V.Sup, *V.QSkip, Facts, V,
                             "majorant vs continuation under ResultFacts",
                             Diags);
    Ok &= requireEntails(*V.Pre, bMax(CalleePre, *V.Sup), V,
                         "havoc-call precondition", Diags);
    return Ok;
  }

  // Q:CALL* (admissible; Figure 5 composition). Soundness: Q:CALL gives
  // {CalleePre} call {CalleePost}; Q:FRAME with the metric-dependent,
  // state-independent amount c = max(0, R - CalleePost) (legitimate since
  // the spec is balanced, so CalleePre + c = max(CalleePre, R) pointwise)
  // gives {max(CalleePre, R)} call {CalleePost + c >= R}; Q:CONSEQ closes.
  if (!require(Spec.isBalanced(), V,
               "Q:CALL* needs a balanced callee specification", Diags))
    return false;
  // The frame amount must not depend on state the call can change: the
  // skip-part may only mention caller variables, which the callee cannot
  // write (no address-taken locals in the subset), except the destination
  // (checked above).
  return requireEntails(*V.Pre, bMax(CalleePre, *V.QSkip), V,
                        "balanced-call precondition", Diags);
}

bool ProofChecker::checkNodeLocal(const NodeView &V, const cl::Function &F,
                                  DiagnosticEngine &Diags, bool &Descend) {
  Descend = false;
  if (!require(V.S != nullptr, V, "derivation proves no statement", Diags))
    return false;
  const cl::Stmt *S = V.S;

  switch (V.R) {
  case Rule::Skip:
    return require(S->Kind == cl::StmtKind::Skip, V, "not a skip", Diags) &&
           requireEntails(*V.Pre, *V.QSkip, V, "skip part", Diags);

  case Rule::Break:
    return require(S->Kind == cl::StmtKind::Break, V, "not a break", Diags) &&
           requireEntails(*V.Pre, *V.QBreak, V, "break part", Diags);

  case Rule::Return:
    return require(S->Kind == cl::StmtKind::Return, V, "not a return",
                   Diags) &&
           requireEntails(*V.Pre, *V.QReturn, V, "return part",
                          Diags);

  case Rule::Assign: {
    if (!require(S->Kind == cl::StmtKind::Assign, V, "not an assignment",
                 Diags))
      return false;
    if (S->Dest.K == cl::LValue::Kind::Local) {
      if (auto T = convertExprToTerm(*S->Value, F))
        return requireEntails(*V.Pre,
                              substBound(*V.QSkip, S->Dest.Name, *T), {},
                              V, "substituted skip part", Diags);
      // No faithful term for the right-hand side: sound only when the
      // postcondition does not observe the destination.
      return require(!mentionsVar(*V.QSkip, S->Dest.Name), V,
                     "assignment to '" + S->Dest.Name +
                         "' has no term form but the postcondition "
                         "depends on it",
                     Diags) &&
             requireEntails(*V.Pre, *V.QSkip, V, "skip part", Diags);
    }
    // Global or array store: assertions range over function-local
    // variables only, so the state the bound observes is unchanged.
    return requireEntails(*V.Pre, *V.QSkip, V, "skip part", Diags);
  }

  case Rule::Call:
  case Rule::CallBalanced:
  case Rule::CallHavoc:
  case Rule::ExternalCall:
    return checkCall(V, F, Diags);

  case Rule::Seq: {
    if (!require(S->Kind == cl::StmtKind::Seq, V, "not a sequence", Diags) ||
        !require(V.NumChildren == 2, V, "Q:SEQ needs two children",
                 Diags))
      return false;
    Descend = true;
    const NodeView::Child &D1 = V.Kids[0], &D2 = V.Kids[1];
    bool Ok = require(D1.S == S->First.get() && D2.S == S->Second.get(), V,
                      "children prove the wrong statements", Diags);
    Ok &= requireEntails(*V.Pre, *D1.Pre, V, "precondition", Diags);
    Ok &= requireEntails(*D1.QSkip, *D2.Pre, V,
                         "sequencing (S1 skip to S2 pre)", Diags);
    Ok &= requireEntails(*D2.QSkip, *V.QSkip, V, "skip part",
                         Diags);
    Ok &= requireEntails(*D1.QBreak, *V.QBreak, V,
                         "S1 break part", Diags);
    Ok &= requireEntails(*D2.QBreak, *V.QBreak, V,
                         "S2 break part", Diags);
    Ok &= requireEntails(*D1.QReturn, *V.QReturn, V,
                         "S1 return part", Diags);
    Ok &= requireEntails(*D2.QReturn, *V.QReturn, V,
                         "S2 return part", Diags);
    return Ok;
  }

  case Rule::If: {
    if (!require(S->Kind == cl::StmtKind::If, V, "not a conditional",
                 Diags) ||
        !require(V.NumChildren == 2, V, "Q:IF needs two children", Diags))
      return false;
    Descend = true;
    const NodeView::Child &DT = V.Kids[0], &DE = V.Kids[1];
    bool Ok = require(DT.S == S->First.get() && DE.S == S->Second.get(), V,
                      "children prove the wrong statements", Diags);
    // Path sensitivity: the guard (when it has a comparison form) may be
    // assumed on the respective side. Only the sampled method ever reads
    // assumptions, so symbolic-only checking skips converting the guard —
    // same verdict, no term construction per If visit.
    std::vector<Cmp> ThenAssume, ElseAssume;
    std::optional<Cmp> C;
    if (!Options.SymbolicOnly && (C = convertCondToCmp(*S->Value, F))) {
      ThenAssume.push_back(*C);
      ElseAssume.push_back(negateCmp(*C));
    }
    Ok &= requireEntails(*V.Pre, *DT.Pre, ThenAssume, V, "then precondition",
                         Diags);
    Ok &= requireEntails(*V.Pre, *DE.Pre, ElseAssume, V, "else precondition",
                         Diags);
    for (const NodeView::Child *Child : {&DT, &DE}) {
      Ok &= requireEntails(*Child->QSkip, *V.QSkip, V,
                           "skip part", Diags);
      Ok &= requireEntails(*Child->QBreak, *V.QBreak, V,
                           "break part", Diags);
      Ok &= requireEntails(*Child->QReturn, *V.QReturn, V,
                           "return part", Diags);
    }
    return Ok;
  }

  case Rule::Loop: {
    if (!require(S->Kind == cl::StmtKind::Loop, V, "not a loop", Diags) ||
        !require(V.NumChildren == 1, V, "Q:LOOP needs one child", Diags))
      return false;
    Descend = true;
    const NodeView::Child &DB = V.Kids[0];
    bool Ok = require(DB.S == S->First.get(), V,
                      "child proves the wrong statement", Diags);
    // The invariant: entering the body and falling through re-establishes
    // the body's precondition.
    Ok &= requireEntails(*V.Pre, *DB.Pre, V, "loop entry", Diags);
    Ok &= requireEntails(*DB.QSkip, *DB.Pre, V,
                         "invariant preservation", Diags);
    // Break exits the loop normally; return propagates. The loop node's
    // own break part is unreachable (a break inside belongs to this loop).
    Ok &= requireEntails(*DB.QBreak, *V.QSkip, V,
                         "break-to-skip", Diags);
    Ok &= requireEntails(*DB.QReturn, *V.QReturn, V,
                         "return part", Diags);
    return Ok;
  }

  case Rule::Frame: {
    if (!require(V.NumChildren == 1, V, "Q:FRAME needs one child",
                 Diags) ||
        !require(*V.Frame != nullptr, V, "missing frame amount", Diags))
      return false;
    Descend = true;
    const NodeView::Child &DC = V.Kids[0];
    bool Ok = require(DC.S == S, V, "child proves a different statement",
                      Diags);
    // The framed-in potential must be state-independent (metric variables
    // and constants only), matching the paper's constant c.
    std::set<std::string> FrameVars;
    collectBoundVars(*V.Frame, FrameVars);
    Ok &= require(FrameVars.empty(), V,
                  "frame amount depends on program variables", Diags);
    Ok &= requireEntails(*V.Pre, bAdd(*DC.Pre, *V.Frame), V,
                         "framed precondition", Diags);
    Ok &= requireEntails(bAdd(*DC.QSkip, *V.Frame), *V.QSkip,
                         V, "framed skip part", Diags);
    Ok &= requireEntails(bAdd(*DC.QBreak, *V.Frame),
                         *V.QBreak, V, "framed break part", Diags);
    Ok &= requireEntails(bAdd(*DC.QReturn, *V.Frame),
                         *V.QReturn, V, "framed return part", Diags);
    return Ok;
  }

  case Rule::Conseq: {
    if (!require(V.NumChildren == 1, V, "Q:CONSEQ needs one child",
                 Diags))
      return false;
    Descend = true;
    const NodeView::Child &DC = V.Kids[0];
    bool Ok = require(DC.S == S, V, "child proves a different statement",
                      Diags);
    Ok &= requireEntails(*V.Pre, *DC.Pre, V, "weakened precondition",
                         Diags);
    Ok &= requireEntails(*DC.QSkip, *V.QSkip, V, "skip part",
                         Diags);
    Ok &= requireEntails(*DC.QBreak, *V.QBreak, V,
                         "break part", Diags);
    Ok &= requireEntails(*DC.QReturn, *V.QReturn, V,
                         "return part", Diags);
    return Ok;
  }
  }
  return require(false, V, "unknown rule", Diags);
}

bool ProofChecker::checkNode(const Derivation &D, const cl::Function &F,
                             DiagnosticEngine &Diags) {
  if (!pollSupervisor(D.S, Diags))
    return false;
  RuleNodes[static_cast<unsigned>(D.R)].fetch_add(1,
                                                  std::memory_order_relaxed);
  bool Descend = false;
  bool Ok = checkNodeLocal(viewOf(D), F, Diags, Descend);
  if (Descend)
    for (const DerivationPtr &C : D.Children)
      Ok &= checkNode(*C, F, Diags);
  return Ok;
}

bool ProofChecker::walkSpan(const DerivationForest &Fo, uint32_t Node,
                            const cl::Function &F, DiagnosticEngine &Diags) {
  bool Ok = true;
  uint32_t E = Fo.end(Node);
  for (uint32_t I = Node; I < E;) {
    if (!pollSupervisor(Fo.stmt(I), Diags))
      return false;
    RuleNodes[static_cast<unsigned>(Fo.rule(I))].fetch_add(
        1, std::memory_order_relaxed);
    bool Descend = false;
    Ok &= checkNodeLocal(viewOf(Fo, I), F, Diags, Descend);
    // Verdict parity with the tree recursion: advance into the span only
    // where the tree checker would descend; a leaf rule or a structural
    // failure skips the whole subtree (its nodes are neither charged nor
    // diagnosed there either).
    I = Descend ? I + 1 : Fo.end(I);
  }
  return Ok;
}

void ProofChecker::checkSpecInterface(const cl::Function &F,
                                      const FunctionSpec &Spec,
                                      const BoundExpr &BodyPre,
                                      const BoundExpr &BodySkip,
                                      const BoundExpr &BodyReturn,
                                      DiagnosticEngine &Diags) {
  // At entry the ghosts equal the parameters; substituting ghost -> param
  // applies those equalities. Matching the builder, only parameters the
  // body can assign carry ghosts — a function without parameters (or
  // without assigned ones) has no ghosts, so the body scan and the two
  // substitutions below are skipped outright.
  std::map<std::string, IntTerm> GhostToParam, ParamToGhost;
  if (!F.Params.empty()) {
    AssignedLocals Assigned = assignedLocals(*F.Body);
    for (const std::string &Param : F.Params) {
      if (!Assigned.count(Param))
        continue;
      VarSign Sign = F.VarSigns.count(Param) &&
                             F.VarSigns.at(Param) == cl::Signedness::Signed
                         ? VarSign::Signed
                         : VarSign::Unsigned;
      GhostToParam[ghostName(Param)] = IntTermNode::var(Param, Sign);
      ParamToGhost[Param] = IntTermNode::var(ghostName(Param), Sign);
    }
  }

  BoundExpr BodyPreAtEntry =
      GhostToParam.empty() ? BodyPre : substBoundAll(BodyPre, GhostToParam);
  EntailResult PreOk =
      entails(Spec.Pre, BodyPreAtEntry, {}, Options, Memo);
  if (!PreOk.Holds)
    Diags.error(F.Loc, "spec precondition " + Spec.Pre->str() +
                           " does not cover the body's requirement " +
                           BodyPreAtEntry->str() +
                           (PreOk.Counterexample.empty()
                                ? ""
                                : " (" + PreOk.Counterexample + ")"));

  // The spec's postcondition speaks about entry values (ghosts).
  BoundExpr SpecPostGhost =
      ParamToGhost.empty() ? Spec.Post : substBoundAll(Spec.Post, ParamToGhost);
  EntailResult RetOk =
      entails(BodyReturn, SpecPostGhost, {}, Options, Memo);
  if (!RetOk.Holds)
    Diags.error(F.Loc, "body return part " + BodyReturn->str() +
                           " does not establish the spec postcondition " +
                           SpecPostGhost->str());
  EntailResult FallOk =
      entails(BodySkip, SpecPostGhost, {}, Options, Memo);
  if (!FallOk.Holds)
    Diags.error(F.Loc, "body fall-through part does not establish the "
                       "spec postcondition");
}

bool ProofChecker::checkFunctionBound(const FunctionBound &FB,
                                      DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  const cl::Function *F = P.findFunction(FB.Function);
  if (!F) {
    Diags.error(SourceLoc(), "no function '" + FB.Function + "'");
    return false;
  }
  if (!FB.Body) {
    Diags.error(F->Loc, "missing body derivation for '" + FB.Function + "'");
    return false;
  }
  if (FB.Body->S != F->Body.get()) {
    Diags.error(F->Loc, "body derivation proves the wrong statement");
    return false;
  }

  checkSpecInterface(*F, FB.Spec, FB.Body->Pre, FB.Body->Post.OnSkip,
                     FB.Body->Post.OnReturn, Diags);
  checkNode(*FB.Body, *F, Diags);
  return Diags.errorCount() == Before;
}

bool ProofChecker::checkFunctionBound(const DerivationForest &Fo,
                                      uint32_t RootIdx,
                                      DiagnosticEngine &Diags) {
  const DerivationForest::Root &R = Fo.roots()[RootIdx];
  unsigned Before = Diags.errorCount();
  const cl::Function *F = P.findFunction(R.Function);
  if (!F) {
    Diags.error(SourceLoc(), "no function '" + R.Function + "'");
    return false;
  }
  if (Fo.stmt(R.Node) != F->Body.get()) {
    Diags.error(F->Loc, "body derivation proves the wrong statement");
    return false;
  }

  checkSpecInterface(*F, R.Spec, Fo.pre(R.Node), Fo.skipPost(R.Node),
                     Fo.returnPost(R.Node), Diags);
  walkSpan(Fo, R.Node, *F, Diags);
  return Diags.errorCount() == Before;
}
