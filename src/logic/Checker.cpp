//===- logic/Checker.cpp - Proof checker for the quantitative logic -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Checker.h"

#include "logic/Convert.h"

using namespace qcc;
using namespace qcc::logic;
namespace cl = qcc::clight;

bool ProofChecker::require(bool Cond, const Derivation &D,
                           const std::string &Message,
                           DiagnosticEngine &Diags) {
  if (!Cond)
    Diags.error(D.S ? D.S->Loc : SourceLoc(),
                std::string(ruleName(D.R)) + ": " + Message);
  return Cond;
}

bool ProofChecker::requireEntails(const BoundExpr &Stronger,
                                  const BoundExpr &Weaker,
                                  const std::vector<Cmp> &Assumptions,
                                  const Derivation &D, const std::string &What,
                                  DiagnosticEngine &Diags) {
  EntailResult R = entails(Stronger, Weaker, Assumptions, Options);
  if (!R.Holds)
    Diags.error(D.S ? D.S->Loc : SourceLoc(),
                std::string(ruleName(D.R)) + ": " + What +
                    ": cannot establish " + Stronger->str() +
                    "  >=  " + Weaker->str() +
                    (R.Counterexample.empty() ? ""
                                              : " (" + R.Counterexample + ")"));
  return R.Holds;
}

/// True if \p Name occurs free in \p E.
static bool mentionsVar(const BoundExpr &E, const std::string &Name) {
  std::set<std::string> Vars;
  collectBoundVars(E, Vars);
  return Vars.count(Name) != 0;
}

bool ProofChecker::check(const Derivation &D, const cl::Function &F,
                         DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  checkNode(D, F, Diags);
  return Diags.errorCount() == Before;
}

bool ProofChecker::checkCall(const Derivation &D, const cl::Function &F,
                             DiagnosticEngine &Diags) {
  const cl::Stmt *S = D.S;
  if (!require(S->Kind == cl::StmtKind::Call, D, "statement is not a call",
               Diags))
    return false;

  // The call result clobbers its destination, so the claimed skip-part
  // must not observe it — except under Q:CALL-HAVOC, which handles the
  // observation through ResultFacts.
  if (D.R != Rule::CallHavoc && S->HasDest &&
      S->Dest.K == cl::LValue::Kind::Local &&
      !require(!mentionsVar(D.Post.OnSkip, S->Dest.Name), D,
               "postcondition mentions the call destination '" +
                   S->Dest.Name + "'",
               Diags))
    return false;

  if (P.findExternal(S->Callee)) {
    require(D.R == Rule::ExternalCall, D,
            "external call must use Q:EXT", Diags);
    // Externals cost nothing under stack metrics: {P} ext() {P}.
    return requireEntails(D.Pre, D.Post.OnSkip, {}, D, "external frame",
                          Diags);
  }

  auto SpecIt = Gamma.find(S->Callee);
  if (!require(SpecIt != Gamma.end(), D,
               "no specification for callee '" + S->Callee + "' in Gamma",
               Diags))
    return false;
  const FunctionSpec &Spec = SpecIt->second;
  const cl::Function *Callee = P.findFunction(S->Callee);
  if (!require(Callee != nullptr, D, "unknown callee", Diags))
    return false;

  // Instantiate the spec's parameters with the argument terms.
  std::map<std::string, IntTerm> Sub;
  std::set<std::string> SpecVars;
  collectBoundVars(Spec.Pre, SpecVars);
  collectBoundVars(Spec.Post, SpecVars);
  for (size_t I = 0; I != Callee->Params.size() && I != S->Args.size(); ++I) {
    const std::string &Param = Callee->Params[I];
    if (auto T = convertExprToTerm(*S->Args[I], F)) {
      Sub[Param] = *T;
    } else if (SpecVars.count(Param)) {
      require(false, D,
              "argument for parameter '" + Param +
                  "' has no term form but the spec depends on it",
              Diags);
      return false;
    }
  }
  BoundExpr CalleePre =
      bAdd(substBoundAll(Spec.Pre, Sub), bMetric(S->Callee));
  BoundExpr CalleePost =
      bAdd(substBoundAll(Spec.Post, Sub), bMetric(S->Callee));

  if (D.R == Rule::Call) {
    // Primitive Q:CALL: {spec.Pre o args + M(f)} call {spec.Post o args +
    // M(f), bot, bot}.
    return requireEntails(D.Pre, CalleePre, {}, D, "call precondition",
                          Diags) &
           requireEntails(CalleePost, D.Post.OnSkip, {}, D,
                          "call postcondition", Diags);
  }

  if (D.R == Rule::CallHavoc) {
    // Q:CALL-HAVOC: the continuation R observes the result r := dest.
    // Soundness: let H be the result-free majorant. Q:CALL + Q:FRAME with
    // c = max(0, H - CalleePost) (state-independent because H and the
    // balanced spec only read caller state the callee cannot write)
    // give {max(CalleePre, H)} call {max(CalleePost, H) >= H}. Since the
    // callee guarantees its ResultFacts about r, and H >= R under those
    // facts for *every* r (checked below by sampling r as a free
    // variable), Q:CONSEQ closes with post R.
    if (!require(Spec.isBalanced(), D,
                 "Q:CALL-HAVOC needs a balanced callee specification",
                 Diags) ||
        !require(!Spec.ResultFacts.empty(), D,
                 "Q:CALL-HAVOC needs ResultFacts on the callee", Diags) ||
        !require(D.SupHint != nullptr, D, "missing result-free majorant",
                 Diags) ||
        !require(S->HasDest && S->Dest.K == cl::LValue::Kind::Local, D,
                 "Q:CALL-HAVOC needs a local call destination", Diags))
      return false;
    if (!require(!mentionsVar(D.SupHint, S->Dest.Name), D,
                 "the majorant must not observe the call result", Diags))
      return false;
    // Instantiate the facts: parameters by argument terms, $result by the
    // destination variable.
    std::map<std::string, IntTerm> FactSub = Sub;
    VarSign DestSign =
        F.VarSigns.count(S->Dest.Name) &&
                F.VarSigns.at(S->Dest.Name) == cl::Signedness::Signed
            ? VarSign::Signed
            : VarSign::Unsigned;
    FactSub[resultVarName()] = IntTermNode::var(S->Dest.Name, DestSign);
    std::vector<Cmp> Facts;
    for (const Cmp &FactCmp : Spec.ResultFacts)
      Facts.push_back(Cmp{substIntTermAll(FactCmp.Lhs, FactSub),
                          FactCmp.Rel,
                          substIntTermAll(FactCmp.Rhs, FactSub)});
    bool Ok = requireEntails(D.SupHint, D.Post.OnSkip, Facts, D,
                             "majorant vs continuation under ResultFacts",
                             Diags);
    Ok &= requireEntails(D.Pre, bMax(CalleePre, D.SupHint), {}, D,
                         "havoc-call precondition", Diags);
    return Ok;
  }

  // Q:CALL* (admissible; Figure 5 composition). Soundness: Q:CALL gives
  // {CalleePre} call {CalleePost}; Q:FRAME with the metric-dependent,
  // state-independent amount c = max(0, R - CalleePost) (legitimate since
  // the spec is balanced, so CalleePre + c = max(CalleePre, R) pointwise)
  // gives {max(CalleePre, R)} call {CalleePost + c >= R}; Q:CONSEQ closes.
  if (!require(Spec.isBalanced(), D,
               "Q:CALL* needs a balanced callee specification", Diags))
    return false;
  // The frame amount must not depend on state the call can change: the
  // skip-part may only mention caller variables, which the callee cannot
  // write (no address-taken locals in the subset), except the destination
  // (checked above).
  return requireEntails(D.Pre, bMax(CalleePre, D.Post.OnSkip), {}, D,
                        "balanced-call precondition", Diags);
}

bool ProofChecker::checkNode(const Derivation &D, const cl::Function &F,
                             DiagnosticEngine &Diags) {
  if (Sup) {
    Sup->charge(sizeof(Derivation));
    if (Sup->stopRequested()) {
      if (!StopReported) {
        StopReported = true;
        Diags.error(D.S ? D.S->Loc : SourceLoc(),
                    std::string("proof checking stopped: ") +
                        stopCauseName(Sup->cause()));
      }
      return false;
    }
  }
  if (!require(D.S != nullptr, D, "derivation proves no statement", Diags))
    return false;
  const cl::Stmt *S = D.S;

  switch (D.R) {
  case Rule::Skip:
    return require(S->Kind == cl::StmtKind::Skip, D, "not a skip", Diags) &&
           requireEntails(D.Pre, D.Post.OnSkip, {}, D, "skip part", Diags);

  case Rule::Break:
    return require(S->Kind == cl::StmtKind::Break, D, "not a break", Diags) &&
           requireEntails(D.Pre, D.Post.OnBreak, {}, D, "break part", Diags);

  case Rule::Return:
    return require(S->Kind == cl::StmtKind::Return, D, "not a return",
                   Diags) &&
           requireEntails(D.Pre, D.Post.OnReturn, {}, D, "return part",
                          Diags);

  case Rule::Assign: {
    if (!require(S->Kind == cl::StmtKind::Assign, D, "not an assignment",
                 Diags))
      return false;
    if (S->Dest.K == cl::LValue::Kind::Local) {
      if (auto T = convertExprToTerm(*S->Value, F))
        return requireEntails(D.Pre,
                              substBound(D.Post.OnSkip, S->Dest.Name, *T), {},
                              D, "substituted skip part", Diags);
      // No faithful term for the right-hand side: sound only when the
      // postcondition does not observe the destination.
      return require(!mentionsVar(D.Post.OnSkip, S->Dest.Name), D,
                     "assignment to '" + S->Dest.Name +
                         "' has no term form but the postcondition "
                         "depends on it",
                     Diags) &&
             requireEntails(D.Pre, D.Post.OnSkip, {}, D, "skip part", Diags);
    }
    // Global or array store: assertions range over function-local
    // variables only, so the state the bound observes is unchanged.
    return requireEntails(D.Pre, D.Post.OnSkip, {}, D, "skip part", Diags);
  }

  case Rule::Call:
  case Rule::CallBalanced:
  case Rule::CallHavoc:
  case Rule::ExternalCall:
    return checkCall(D, F, Diags);

  case Rule::Seq: {
    if (!require(S->Kind == cl::StmtKind::Seq, D, "not a sequence", Diags) ||
        !require(D.Children.size() == 2, D, "Q:SEQ needs two children",
                 Diags))
      return false;
    const Derivation &D1 = *D.Children[0], &D2 = *D.Children[1];
    bool Ok = require(D1.S == S->First.get() && D2.S == S->Second.get(), D,
                      "children prove the wrong statements", Diags);
    Ok &= checkNode(D1, F, Diags);
    Ok &= checkNode(D2, F, Diags);
    Ok &= requireEntails(D.Pre, D1.Pre, {}, D, "precondition", Diags);
    Ok &= requireEntails(D1.Post.OnSkip, D2.Pre, {}, D,
                         "sequencing (S1 skip to S2 pre)", Diags);
    Ok &= requireEntails(D2.Post.OnSkip, D.Post.OnSkip, {}, D, "skip part",
                         Diags);
    Ok &= requireEntails(D1.Post.OnBreak, D.Post.OnBreak, {}, D,
                         "S1 break part", Diags);
    Ok &= requireEntails(D2.Post.OnBreak, D.Post.OnBreak, {}, D,
                         "S2 break part", Diags);
    Ok &= requireEntails(D1.Post.OnReturn, D.Post.OnReturn, {}, D,
                         "S1 return part", Diags);
    Ok &= requireEntails(D2.Post.OnReturn, D.Post.OnReturn, {}, D,
                         "S2 return part", Diags);
    return Ok;
  }

  case Rule::If: {
    if (!require(S->Kind == cl::StmtKind::If, D, "not a conditional",
                 Diags) ||
        !require(D.Children.size() == 2, D, "Q:IF needs two children", Diags))
      return false;
    const Derivation &DT = *D.Children[0], &DE = *D.Children[1];
    bool Ok = require(DT.S == S->First.get() && DE.S == S->Second.get(), D,
                      "children prove the wrong statements", Diags);
    Ok &= checkNode(DT, F, Diags);
    Ok &= checkNode(DE, F, Diags);
    // Path sensitivity: the guard (when it has a comparison form) may be
    // assumed on the respective side.
    std::vector<Cmp> ThenAssume, ElseAssume;
    if (auto C = convertCondToCmp(*S->Value, F)) {
      ThenAssume.push_back(*C);
      ElseAssume.push_back(negateCmp(*C));
    }
    Ok &= requireEntails(D.Pre, DT.Pre, ThenAssume, D, "then precondition",
                         Diags);
    Ok &= requireEntails(D.Pre, DE.Pre, ElseAssume, D, "else precondition",
                         Diags);
    for (const Derivation *Child : {&DT, &DE}) {
      Ok &= requireEntails(Child->Post.OnSkip, D.Post.OnSkip, {}, D,
                           "skip part", Diags);
      Ok &= requireEntails(Child->Post.OnBreak, D.Post.OnBreak, {}, D,
                           "break part", Diags);
      Ok &= requireEntails(Child->Post.OnReturn, D.Post.OnReturn, {}, D,
                           "return part", Diags);
    }
    return Ok;
  }

  case Rule::Loop: {
    if (!require(S->Kind == cl::StmtKind::Loop, D, "not a loop", Diags) ||
        !require(D.Children.size() == 1, D, "Q:LOOP needs one child", Diags))
      return false;
    const Derivation &DB = *D.Children[0];
    bool Ok = require(DB.S == S->First.get(), D,
                      "child proves the wrong statement", Diags);
    Ok &= checkNode(DB, F, Diags);
    // The invariant: entering the body and falling through re-establishes
    // the body's precondition.
    Ok &= requireEntails(D.Pre, DB.Pre, {}, D, "loop entry", Diags);
    Ok &= requireEntails(DB.Post.OnSkip, DB.Pre, {}, D,
                         "invariant preservation", Diags);
    // Break exits the loop normally; return propagates. The loop node's
    // own break part is unreachable (a break inside belongs to this loop).
    Ok &= requireEntails(DB.Post.OnBreak, D.Post.OnSkip, {}, D,
                         "break-to-skip", Diags);
    Ok &= requireEntails(DB.Post.OnReturn, D.Post.OnReturn, {}, D,
                         "return part", Diags);
    return Ok;
  }

  case Rule::Frame: {
    if (!require(D.Children.size() == 1, D, "Q:FRAME needs one child",
                 Diags) ||
        !require(D.FrameAmount != nullptr, D, "missing frame amount", Diags))
      return false;
    const Derivation &DC = *D.Children[0];
    bool Ok = require(DC.S == S, D, "child proves a different statement",
                      Diags);
    // The framed-in potential must be state-independent (metric variables
    // and constants only), matching the paper's constant c.
    std::set<std::string> FrameVars;
    collectBoundVars(D.FrameAmount, FrameVars);
    Ok &= require(FrameVars.empty(), D,
                  "frame amount depends on program variables", Diags);
    Ok &= checkNode(DC, F, Diags);
    Ok &= requireEntails(D.Pre, bAdd(DC.Pre, D.FrameAmount), {}, D,
                         "framed precondition", Diags);
    Ok &= requireEntails(bAdd(DC.Post.OnSkip, D.FrameAmount), D.Post.OnSkip,
                         {}, D, "framed skip part", Diags);
    Ok &= requireEntails(bAdd(DC.Post.OnBreak, D.FrameAmount),
                         D.Post.OnBreak, {}, D, "framed break part", Diags);
    Ok &= requireEntails(bAdd(DC.Post.OnReturn, D.FrameAmount),
                         D.Post.OnReturn, {}, D, "framed return part", Diags);
    return Ok;
  }

  case Rule::Conseq: {
    if (!require(D.Children.size() == 1, D, "Q:CONSEQ needs one child",
                 Diags))
      return false;
    const Derivation &DC = *D.Children[0];
    bool Ok = require(DC.S == S, D, "child proves a different statement",
                      Diags);
    Ok &= checkNode(DC, F, Diags);
    Ok &= requireEntails(D.Pre, DC.Pre, {}, D, "weakened precondition",
                         Diags);
    Ok &= requireEntails(DC.Post.OnSkip, D.Post.OnSkip, {}, D, "skip part",
                         Diags);
    Ok &= requireEntails(DC.Post.OnBreak, D.Post.OnBreak, {}, D,
                         "break part", Diags);
    Ok &= requireEntails(DC.Post.OnReturn, D.Post.OnReturn, {}, D,
                         "return part", Diags);
    return Ok;
  }
  }
  return require(false, D, "unknown rule", Diags);
}

bool ProofChecker::checkFunctionBound(const FunctionBound &FB,
                                      DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  const cl::Function *F = P.findFunction(FB.Function);
  if (!F) {
    Diags.error(SourceLoc(), "no function '" + FB.Function + "'");
    return false;
  }
  if (!FB.Body) {
    Diags.error(F->Loc, "missing body derivation for '" + FB.Function + "'");
    return false;
  }
  if (FB.Body->S != F->Body.get()) {
    Diags.error(F->Loc, "body derivation proves the wrong statement");
    return false;
  }

  // At entry the ghosts equal the parameters; substituting ghost -> param
  // applies those equalities. Matching the builder, only parameters the
  // body can assign carry ghosts.
  std::set<std::string> Assigned = assignedLocals(*F->Body);
  std::map<std::string, IntTerm> GhostToParam, ParamToGhost;
  for (const std::string &Param : F->Params) {
    if (!Assigned.count(Param))
      continue;
    VarSign Sign = F->VarSigns.count(Param) &&
                           F->VarSigns.at(Param) == cl::Signedness::Signed
                       ? VarSign::Signed
                       : VarSign::Unsigned;
    GhostToParam[ghostName(Param)] = IntTermNode::var(Param, Sign);
    ParamToGhost[Param] = IntTermNode::var(ghostName(Param), Sign);
  }

  BoundExpr BodyPreAtEntry = substBoundAll(FB.Body->Pre, GhostToParam);
  EntailResult PreOk =
      entails(FB.Spec.Pre, BodyPreAtEntry, {}, Options);
  if (!PreOk.Holds)
    Diags.error(F->Loc, "spec precondition " + FB.Spec.Pre->str() +
                            " does not cover the body's requirement " +
                            BodyPreAtEntry->str() +
                            (PreOk.Counterexample.empty()
                                 ? ""
                                 : " (" + PreOk.Counterexample + ")"));

  // The spec's postcondition speaks about entry values (ghosts).
  BoundExpr SpecPostGhost = substBoundAll(FB.Spec.Post, ParamToGhost);
  EntailResult RetOk =
      entails(FB.Body->Post.OnReturn, SpecPostGhost, {}, Options);
  if (!RetOk.Holds)
    Diags.error(F->Loc, "body return part " + FB.Body->Post.OnReturn->str() +
                            " does not establish the spec postcondition " +
                            SpecPostGhost->str());
  EntailResult FallOk =
      entails(FB.Body->Post.OnSkip, SpecPostGhost, {}, Options);
  if (!FallOk.Holds)
    Diags.error(F->Loc, "body fall-through part does not establish the "
                        "spec postcondition");

  checkNode(*FB.Body, *F, Diags);
  return Diags.errorCount() == Before;
}
