//===- logic/Checker.h - Proof checker for the quantitative logic *- C++-*===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates derivations of the quantitative Hoare logic rule by rule.
/// This is the trusted core that stands in for the paper's Coq soundness
/// proof (DESIGN.md section 1): a bound is only reported once its
/// derivation passes this checker. The automatic analyzer's derivations
/// check in symbolic-only entailment mode; interactively built derivations
/// for recursive functions may rely on the sampled mode.
///
/// Two representations, one verdict: derivations check either as trees
/// (`Derivation`) or flat (`DerivationForest`, DESIGN.md §5h). The
/// per-rule side conditions are shared — both paths assemble a `NodeView`
/// per node — so the forest walk is verdict-bit-identical to the tree
/// recursion by construction: it visits the same preorder sequence,
/// skipping a node's span exactly where the tree checker would not
/// descend (leaf rules, structural-arity failures).
///
/// Thread safety: one checker may validate distinct forest roots from
/// several threads concurrently as long as each call gets its own
/// DiagnosticEngine — the program, context and options are read-only, the
/// per-rule counters are relaxed atomics, and the entailment memo locks
/// internally.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_CHECKER_H
#define QCC_LOGIC_CHECKER_H

#include "logic/Entail.h"
#include "logic/Forest.h"
#include "logic/Logic.h"
#include "support/Diagnostics.h"
#include "support/Supervision.h"

#include <array>
#include <atomic>

namespace qcc {
namespace logic {

/// Checks derivations against a program and a function context.
class ProofChecker {
public:
  ProofChecker(const clight::Program &P, FunctionContext Gamma,
               EntailOptions Options = {})
      : P(P), GammaOwned(std::move(Gamma)), G(&GammaOwned),
        Options(Options) {}

  /// Non-owning context: \p Gamma must stay alive and unchanged for the
  /// checker's lifetime. The analyzer's cold path constructs one checker
  /// per function; borrowing the context instead of copying the whole
  /// map each time is what keeps that O(functions), not O(functions^2).
  ProofChecker(const clight::Program &P, const FunctionContext *Gamma,
               EntailOptions Options = {})
      : P(P), G(Gamma), Options(Options) {}

  /// Validates one derivation for a statement of function \p F. Reports
  /// each violated side condition to \p Diags; returns true when clean.
  bool check(const Derivation &D, const clight::Function &F,
             DiagnosticEngine &Diags);

  /// Forest-native check of the span rooted at node \p Node. Same
  /// verdict as check() on the tree form of that span.
  bool check(const DerivationForest &Fo, uint32_t Node,
             const clight::Function &F, DiagnosticEngine &Diags);

  /// Validates a complete function bound: the body derivation must prove
  /// the function's specification under Gamma (which must already contain
  /// the specification itself when \p FB is recursive — the paper's
  /// derivation-context treatment of recursion).
  bool checkFunctionBound(const FunctionBound &FB, DiagnosticEngine &Diags);

  /// Forest-native function-bound check for Fo.roots()[RootIdx]. Same
  /// verdict as checkFunctionBound on the tree form.
  bool checkFunctionBound(const DerivationForest &Fo, uint32_t RootIdx,
                          DiagnosticEngine &Diags);

  const FunctionContext &context() const { return *G; }

  /// Attaches a supervisor: checking polls it between rules and charges
  /// its memory budget per visited derivation node. When the supervisor
  /// stops the run, the checker reports a single "stopped" diagnostic and
  /// unwinds — it neither confirms nor refutes the derivation.
  void setSupervisor(Supervisor *S) { Sup = S; }

  /// True when an attached supervisor halted checking before completion.
  bool stopped() const { return Sup && Sup->stopRequested(); }

  /// Attaches an entailment memo. Must only ever be shared between
  /// checkers (and builders) running with the same EntailOptions.
  void setMemo(EntailMemo *M) { Memo = M; }

  /// Snapshot of the per-rule visited-node counters (both forms count).
  std::array<uint64_t, NumRules> ruleNodeCounts() const {
    std::array<uint64_t, NumRules> Out;
    for (unsigned I = 0; I != NumRules; ++I)
      Out[I] = RuleNodes[I].load(std::memory_order_relaxed);
    return Out;
  }

private:
  /// Everything the per-rule side conditions read from one node,
  /// assembled either from a tree node or from forest lanes. Rules have
  /// at most two children; views carry the true child count so arity
  /// violations still reject.
  struct NodeView {
    Rule R;
    const clight::Stmt *S;
    const BoundExpr *Pre, *QSkip, *QBreak, *QReturn;
    const BoundExpr *Frame, *Sup; ///< May point at a null expression.
    uint32_t NumChildren;
    struct Child {
      const clight::Stmt *S;
      const BoundExpr *Pre, *QSkip, *QBreak, *QReturn;
    };
    Child Kids[2];
  };

  static NodeView viewOf(const Derivation &D);
  static NodeView viewOf(const DerivationForest &Fo, uint32_t I);

  /// The hot-path message forms take C strings: checking a valid
  /// derivation must not pay for the diagnostics it never emits, so no
  /// std::string is materialized until a side condition actually fails.
  bool require(bool Cond, const NodeView &V, const char *Message,
               DiagnosticEngine &Diags);
  bool require(bool Cond, const NodeView &V, const std::string &Message,
               DiagnosticEngine &Diags) {
    return require(Cond, V, Message.c_str(), Diags);
  }
  bool requireEntails(const BoundExpr &Stronger, const BoundExpr &Weaker,
                      const std::vector<Cmp> &Assumptions, const NodeView &V,
                      const char *What, DiagnosticEngine &Diags);
  /// Assumption-free form: no per-call empty-vector temporary.
  bool requireEntails(const BoundExpr &Stronger, const BoundExpr &Weaker,
                      const NodeView &V, const char *What,
                      DiagnosticEngine &Diags);

  /// One node's local side conditions, no descent. Sets \p Descend when
  /// the node's children must be visited (composite rule whose
  /// structural requirements held).
  bool checkNodeLocal(const NodeView &V, const clight::Function &F,
                      DiagnosticEngine &Diags, bool &Descend);
  bool checkCall(const NodeView &V, const clight::Function &F,
                 DiagnosticEngine &Diags);
  bool checkNode(const Derivation &D, const clight::Function &F,
                 DiagnosticEngine &Diags);
  bool walkSpan(const DerivationForest &Fo, uint32_t Node,
                const clight::Function &F, DiagnosticEngine &Diags);
  /// The spec-vs-body interface checks shared by both
  /// checkFunctionBound forms (ghost substitution + three entailments).
  void checkSpecInterface(const clight::Function &F, const FunctionSpec &Spec,
                          const BoundExpr &BodyPre, const BoundExpr &BodySkip,
                          const BoundExpr &BodyReturn,
                          DiagnosticEngine &Diags);
  /// Charges the supervisor for one node; false once stopped (the first
  /// stop reports a single diagnostic).
  bool pollSupervisor(const clight::Stmt *S, DiagnosticEngine &Diags);

  const clight::Program &P;
  FunctionContext GammaOwned;
  const FunctionContext *G;
  EntailOptions Options;
  Supervisor *Sup = nullptr;
  std::atomic<bool> StopReported{false};
  EntailMemo *Memo = nullptr;
  std::atomic<uint64_t> RuleNodes[NumRules] = {};
};

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_CHECKER_H
