//===- logic/Checker.h - Proof checker for the quantitative logic *- C++-*===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates derivations of the quantitative Hoare logic rule by rule.
/// This is the trusted core that stands in for the paper's Coq soundness
/// proof (DESIGN.md section 1): a bound is only reported once its
/// derivation passes this checker. The automatic analyzer's derivations
/// check in symbolic-only entailment mode; interactively built derivations
/// for recursive functions may rely on the sampled mode.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_CHECKER_H
#define QCC_LOGIC_CHECKER_H

#include "logic/Entail.h"
#include "logic/Logic.h"
#include "support/Diagnostics.h"
#include "support/Supervision.h"

namespace qcc {
namespace logic {

/// Checks derivations against a program and a function context.
class ProofChecker {
public:
  ProofChecker(const clight::Program &P, FunctionContext Gamma,
               EntailOptions Options = {})
      : P(P), Gamma(std::move(Gamma)), Options(Options) {}

  /// Validates one derivation for a statement of function \p F. Reports
  /// each violated side condition to \p Diags; returns true when clean.
  bool check(const Derivation &D, const clight::Function &F,
             DiagnosticEngine &Diags);

  /// Validates a complete function bound: the body derivation must prove
  /// the function's specification under Gamma (which must already contain
  /// the specification itself when \p FB is recursive — the paper's
  /// derivation-context treatment of recursion).
  bool checkFunctionBound(const FunctionBound &FB, DiagnosticEngine &Diags);

  const FunctionContext &context() const { return Gamma; }

  /// Attaches a supervisor: checkNode polls it between rules and charges
  /// its memory budget per visited derivation node. When the supervisor
  /// stops the run, the checker reports a single "stopped" diagnostic and
  /// unwinds — it neither confirms nor refutes the derivation.
  void setSupervisor(Supervisor *S) { Sup = S; }

  /// True when an attached supervisor halted checking before completion.
  bool stopped() const { return Sup && Sup->stopRequested(); }

private:
  bool require(bool Cond, const Derivation &D, const std::string &Message,
               DiagnosticEngine &Diags);
  bool requireEntails(const BoundExpr &Stronger, const BoundExpr &Weaker,
                      const std::vector<Cmp> &Assumptions,
                      const Derivation &D, const std::string &What,
                      DiagnosticEngine &Diags);

  bool checkNode(const Derivation &D, const clight::Function &F,
                 DiagnosticEngine &Diags);
  bool checkCall(const Derivation &D, const clight::Function &F,
                 DiagnosticEngine &Diags);

  const clight::Program &P;
  FunctionContext Gamma;
  EntailOptions Options;
  Supervisor *Sup = nullptr;
  bool StopReported = false;
};

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_CHECKER_H
