//===- logic/Builder.h - Backward derivation builder ------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mechanically constructs derivations in the quantitative Hoare logic by
/// a backward (weakest-precondition style) pass over a function body:
///
///   * Q:ASSIGN is discharged by substitution,
///   * Q:CALL* joins the callee requirement with the continuation via max,
///   * Q:IF joins branches path-sensitively with an if-then-else assertion
///     when the guard has a comparison form,
///   * Q:LOOP invariants are found by ascending fixpoint iteration.
///
/// Given a *specification* for a (possibly recursive) function — the
/// creative step the paper performs interactively in Coq — the builder
/// produces the full derivation tree, which `ProofChecker` then validates.
/// The automatic stack analyzer (Paper section 5) is this same machinery
/// run with automatically computed constant specifications in call-graph
/// topological order (see analysis/Analyzer.h).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_BUILDER_H
#define QCC_LOGIC_BUILDER_H

#include "logic/Checker.h"
#include "logic/Logic.h"
#include "support/Diagnostics.h"

#include <optional>

namespace qcc {
namespace logic {

/// Builds derivations backward from postconditions.
class DerivationBuilder {
public:
  DerivationBuilder(const clight::Program &P, FunctionContext Gamma,
                    EntailOptions Options = {})
      : P(P), Gamma(std::move(Gamma)), Options(Options) {}

  /// Builds the body derivation proving \p Spec for function \p Name.
  /// For recursive functions, \p Spec itself is added to the context
  /// before descending into the body (the paper's derivation-context
  /// treatment). Returns nullopt and reports to \p Diags on failure.
  std::optional<FunctionBound> buildFunctionBound(const std::string &Name,
                                                  FunctionSpec Spec,
                                                  DiagnosticEngine &Diags);

  /// Builds a derivation for one statement given its postcondition.
  /// Exposed for tests and for the analyzer's peak computation.
  DerivationPtr buildStmt(const clight::Stmt *S, PostCondition Q,
                          const clight::Function &F,
                          DiagnosticEngine &Diags);

  /// Registers the result-free majorant for calls to \p Callee whose
  /// result the continuation's bound observes (the Q:CALL-HAVOC rule).
  /// \p Hint is an expression over the caller's variables; the checker
  /// verifies it dominates the continuation for every result value the
  /// callee's ResultFacts allow.
  void setCallResultHint(const std::string &Callee, BoundExpr Hint) {
    CallResultHints[Callee] = std::move(Hint);
  }

  const FunctionContext &context() const { return Gamma; }

  /// Attaches an entailment memo shared with checkers running under the
  /// same EntailOptions (the loop-invariant fixpoint re-asks the same
  /// assumption-free queries the checker asks again afterwards).
  void setMemo(EntailMemo *M) { Memo = M; }

private:
  DerivationPtr buildLoop(const clight::Stmt *S, PostCondition Q,
                          const clight::Function &F, DiagnosticEngine &Diags);
  DerivationPtr buildCall(const clight::Stmt *S, PostCondition Q,
                          const clight::Function &F, DiagnosticEngine &Diags);

  const clight::Program &P;
  FunctionContext Gamma;
  EntailOptions Options;
  EntailMemo *Memo = nullptr;
  std::map<std::string, BoundExpr> CallResultHints;
};

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_BUILDER_H
