//===- logic/Builder.cpp - Backward derivation builder --------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Builder.h"

#include "logic/Convert.h"

using namespace qcc;
using namespace qcc::logic;
namespace cl = qcc::clight;

namespace {

DerivationPtr makeLeaf(Rule R, const cl::Stmt *S, BoundExpr Pre,
                       PostCondition Q) {
  auto D = std::make_unique<Derivation>();
  D->R = R;
  D->S = S;
  D->Pre = std::move(Pre);
  D->Post = std::move(Q);
  return D;
}

bool mentionsVar(const BoundExpr &E, const std::string &Name) {
  std::set<std::string> Vars;
  collectBoundVars(E, Vars);
  return Vars.count(Name) != 0;
}

} // namespace

DerivationPtr DerivationBuilder::buildCall(const cl::Stmt *S, PostCondition Q,
                                           const cl::Function &F,
                                           DiagnosticEngine &Diags) {
  bool DestObserved = S->HasDest &&
                      S->Dest.K == cl::LValue::Kind::Local &&
                      mentionsVar(Q.OnSkip, S->Dest.Name);
  if (DestObserved && !CallResultHints.count(S->Callee)) {
    Diags.error(S->Loc, "required postcondition depends on call result '" +
                            S->Dest.Name +
                            "' and no Q:CALL-HAVOC majorant was supplied");
    return nullptr;
  }

  if (P.findExternal(S->Callee)) {
    if (DestObserved) {
      Diags.error(S->Loc, "postcondition depends on an external call's "
                          "result");
      return nullptr;
    }
    BoundExpr Pre = Q.OnSkip;
    return makeLeaf(Rule::ExternalCall, S, std::move(Pre), std::move(Q));
  }

  auto SpecIt = Gamma.find(S->Callee);
  if (SpecIt == Gamma.end()) {
    Diags.error(S->Loc, "no specification for '" + S->Callee +
                            "' in the context (recursion without a "
                            "declared spec?)");
    return nullptr;
  }
  const FunctionSpec &Spec = SpecIt->second;
  const cl::Function *Callee = P.findFunction(S->Callee);
  if (!Callee) {
    Diags.error(S->Loc, "call to undefined function '" + S->Callee + "'");
    return nullptr;
  }

  std::set<std::string> SpecVars;
  collectBoundVars(Spec.Pre, SpecVars);
  collectBoundVars(Spec.Post, SpecVars);
  std::map<std::string, IntTerm> Sub;
  for (size_t I = 0; I < Callee->Params.size() && I < S->Args.size(); ++I) {
    const std::string &Param = Callee->Params[I];
    if (auto T = convertExprToTerm(*S->Args[I], F)) {
      Sub[Param] = *T;
    } else if (SpecVars.count(Param)) {
      Diags.error(S->Loc, "argument for '" + Param +
                              "' of '" + S->Callee +
                              "' has no term form but the spec needs it");
      return nullptr;
    }
  }
  BoundExpr CalleePre = bAdd(substBoundAll(Spec.Pre, Sub), bMetric(S->Callee));

  if (DestObserved) {
    // Q:CALL-HAVOC: the continuation observes the result; join with the
    // caller-supplied result-free majorant instead of the continuation
    // itself. The checker verifies the majorant against ResultFacts.
    if (!Spec.isBalanced()) {
      Diags.error(S->Loc, "Q:CALL-HAVOC needs a balanced callee spec");
      return nullptr;
    }
    if (Spec.ResultFacts.empty()) {
      Diags.error(S->Loc, "Q:CALL-HAVOC needs ResultFacts on '" +
                              S->Callee + "'");
      return nullptr;
    }
    BoundExpr Hint = CallResultHints.at(S->Callee);
    BoundExpr Pre = bMax(CalleePre, Hint);
    DerivationPtr D =
        makeLeaf(Rule::CallHavoc, S, std::move(Pre), std::move(Q));
    D->SupHint = std::move(Hint);
    return D;
  }

  if (Spec.isBalanced()) {
    BoundExpr Pre = bMax(CalleePre, Q.OnSkip);
    return makeLeaf(Rule::CallBalanced, S, std::move(Pre), std::move(Q));
  }

  // Unbalanced specs use the primitive rule; the checker verifies that the
  // callee's post covers the continuation.
  return makeLeaf(Rule::Call, S, std::move(CalleePre), std::move(Q));
}

DerivationPtr DerivationBuilder::buildLoop(const cl::Stmt *S, PostCondition Q,
                                           const cl::Function &F,
                                           DiagnosticEngine &Diags) {
  // Ascending fixpoint iteration for the invariant: the body is rebuilt
  // with its own previous precondition as the fall-through target until
  // the precondition stabilizes.
  constexpr unsigned MaxIterations = 8;
  BoundExpr Invariant = bZero();
  DerivationPtr Body;
  for (unsigned Iter = 0; Iter != MaxIterations; ++Iter) {
    DiagnosticEngine Scratch; // Errors only surface on the final attempt.
    PostCondition BodyQ{Invariant, Q.OnSkip, Q.OnReturn};
    Body = buildStmt(S->First.get(), BodyQ, F, Scratch);
    if (!Body) {
      // Re-run against the real engine to surface the message.
      buildStmt(S->First.get(), BodyQ, F, Diags);
      return nullptr;
    }
    if (entails(Invariant, Body->Pre, {}, Options, Memo)) {
      auto D = std::make_unique<Derivation>();
      D->R = Rule::Loop;
      D->S = S;
      D->Pre = Invariant;
      D->Post = std::move(Q);
      D->Children.push_back(std::move(Body));
      return D;
    }
    Invariant = bMax(Invariant, Body->Pre);
  }
  Diags.error(S->Loc, "loop invariant did not stabilize after " +
                          std::to_string(MaxIterations) + " iterations");
  return nullptr;
}

DerivationPtr DerivationBuilder::buildStmt(const cl::Stmt *S, PostCondition Q,
                                           const cl::Function &F,
                                           DiagnosticEngine &Diags) {
  switch (S->Kind) {
  case cl::StmtKind::Skip: {
    BoundExpr Pre = Q.OnSkip;
    return makeLeaf(Rule::Skip, S, std::move(Pre), std::move(Q));
  }

  case cl::StmtKind::Break: {
    BoundExpr Pre = Q.OnBreak;
    return makeLeaf(Rule::Break, S, std::move(Pre), std::move(Q));
  }

  case cl::StmtKind::Return: {
    BoundExpr Pre = Q.OnReturn;
    return makeLeaf(Rule::Return, S, std::move(Pre), std::move(Q));
  }

  case cl::StmtKind::Assign: {
    if (S->Dest.K == cl::LValue::Kind::Local) {
      if (auto T = convertExprToTerm(*S->Value, F)) {
        BoundExpr Pre = substBound(Q.OnSkip, S->Dest.Name, *T);
        return makeLeaf(Rule::Assign, S, std::move(Pre), std::move(Q));
      }
      if (mentionsVar(Q.OnSkip, S->Dest.Name)) {
        Diags.error(S->Loc,
                    "assignment to '" + S->Dest.Name +
                        "' has no term form but the required "
                        "postcondition depends on it");
        return nullptr;
      }
    }
    BoundExpr Pre = Q.OnSkip;
    return makeLeaf(Rule::Assign, S, std::move(Pre), std::move(Q));
  }

  case cl::StmtKind::Call:
    return buildCall(S, std::move(Q), F, Diags);

  case cl::StmtKind::Seq: {
    DerivationPtr D2 = buildStmt(S->Second.get(), Q, F, Diags);
    if (!D2)
      return nullptr;
    PostCondition Q1{D2->Pre, Q.OnBreak, Q.OnReturn};
    DerivationPtr D1 = buildStmt(S->First.get(), std::move(Q1), F, Diags);
    if (!D1)
      return nullptr;
    auto D = std::make_unique<Derivation>();
    D->R = Rule::Seq;
    D->S = S;
    D->Pre = D1->Pre;
    D->Post = std::move(Q);
    D->Children.push_back(std::move(D1));
    D->Children.push_back(std::move(D2));
    return D;
  }

  case cl::StmtKind::If: {
    DerivationPtr DT = buildStmt(S->First.get(), Q, F, Diags);
    DerivationPtr DE = buildStmt(S->Second.get(), Q, F, Diags);
    if (!DT || !DE)
      return nullptr;
    // State-independent branch requirements join with max, which keeps
    // the derivation in the symbolically checkable fragment; parametric
    // requirements need the path-sensitive if-then-else join.
    std::set<std::string> BranchVars;
    collectBoundVars(DT->Pre, BranchVars);
    collectBoundVars(DE->Pre, BranchVars);
    BoundExpr Pre;
    std::optional<Cmp> C;
    if (!BranchVars.empty() && (C = convertCondToCmp(*S->Value, F)))
      Pre = bIte(*C, DT->Pre, DE->Pre);
    else
      Pre = bMax(DT->Pre, DE->Pre);
    auto D = std::make_unique<Derivation>();
    D->R = Rule::If;
    D->S = S;
    D->Pre = std::move(Pre);
    D->Post = std::move(Q);
    D->Children.push_back(std::move(DT));
    D->Children.push_back(std::move(DE));
    return D;
  }

  case cl::StmtKind::Loop:
    return buildLoop(S, std::move(Q), F, Diags);
  }
  Diags.error(S->Loc, "unknown statement kind in derivation builder");
  return nullptr;
}

std::optional<FunctionBound>
DerivationBuilder::buildFunctionBound(const std::string &Name,
                                      FunctionSpec Spec,
                                      DiagnosticEngine &Diags) {
  const cl::Function *F = P.findFunction(Name);
  if (!F) {
    Diags.error(SourceLoc(), "no function '" + Name + "'");
    return std::nullopt;
  }

  // The spec joins the context before we descend — recursive calls in the
  // body resolve against it, exactly as the paper handles recursion
  // through the derivation context.
  Gamma[Name] = Spec;

  // The spec's postcondition speaks about the frozen entry values. Only
  // parameters the body can assign need ghost names; the rest read their
  // entry values directly, keeping assertions connected to the current
  // state (which the path-sensitive rules can reason about).
  AssignedLocals Assigned = assignedLocals(*F->Body);
  std::map<std::string, IntTerm> ParamToGhost;
  for (const std::string &Param : F->Params) {
    if (!Assigned.count(Param))
      continue;
    VarSign Sign = F->VarSigns.count(Param) &&
                           F->VarSigns.at(Param) == cl::Signedness::Signed
                       ? VarSign::Signed
                       : VarSign::Unsigned;
    ParamToGhost[Param] = IntTermNode::var(ghostName(Param), Sign);
  }
  BoundExpr PostGhost = substBoundAll(Spec.Post, ParamToGhost);

  PostCondition Q{PostGhost, bBottom(), PostGhost};
  DerivationPtr Body = buildStmt(F->Body.get(), std::move(Q), *F, Diags);
  if (!Body)
    return std::nullopt;

  return FunctionBound{Name, std::move(Spec), std::move(Body)};
}
