//===- logic/Bound.h - Symbolic quantitative assertions ---------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assertion language of the quantitative Hoare logic (Paper section
/// 4.3). An assertion maps a program state to N U {oo}; the infinite
/// element refines the classical `false`. Assertions here are *symbolic*
/// expressions over
///
///   * metric variables M(f) — instantiated by the compiler-produced cost
///     metric (Paper section 3.1),
///   * program variables (function parameters / locals), read from the
///     state at evaluation time,
///
/// closed under +, max, scaling by a constant, the paper's log2 convention
/// (log2 of a negative width is +oo, log2 of 0 or 1 is 0), and guards
/// `cmp ? e : oo` which encode logical preconditions like `beg <= end`
/// quantitatively (Paper section 2's L(Delta) trick).
///
/// Keeping assertions symbolic is what makes derivations checkable data:
/// the proof checker compares expressions, and the compiler instantiates
/// the same expression with its concrete metric to obtain byte bounds.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_BOUND_H
#define QCC_LOGIC_BOUND_H

#include "events/Metric.h"
#include "support/ExtNat.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace qcc {
namespace logic {

//===----------------------------------------------------------------------===//
// Integer terms over program variables
//===----------------------------------------------------------------------===//

/// Signedness with which a 32-bit program value is read into a term.
enum class VarSign : uint8_t { Signed, Unsigned };

struct IntTermNode;
using IntTerm = std::shared_ptr<const IntTermNode>;

/// A small integer expression over program variables, evaluated to a
/// mathematical (64-bit) integer — wide enough that no corpus bound
/// overflows.
struct IntTermNode {
  enum class Kind : uint8_t { Const, Var, Add, Sub, Mul, DivC } K;
  int64_t Value = 0;          ///< Const; DivC divisor.
  std::string Name;           ///< Var.
  VarSign Sign = VarSign::Unsigned;
  IntTerm Lhs, Rhs;

  static IntTerm constant(int64_t V);
  static IntTerm var(std::string Name, VarSign Sign = VarSign::Unsigned);
  static IntTerm add(IntTerm L, IntTerm R);
  static IntTerm sub(IntTerm L, IntTerm R);
  static IntTerm mul(IntTerm L, IntTerm R);
  /// Truncated division by a positive constant (for (h+l)/2 style terms).
  static IntTerm divC(IntTerm L, int64_t Divisor);

  std::string str() const;
};

/// The variable environment an assertion is evaluated against: program
/// variables (parameters and locals) to 32-bit values.
using VarEnv = std::map<std::string, uint32_t>;

/// Evaluates \p T under \p Env, exactly (the internal arithmetic is wide
/// enough for any term over 32-bit values, never wrapping); std::nullopt
/// if a variable is unbound, a divisor is non-positive, or the exact
/// value does not fit int64.
std::optional<int64_t> evalIntTerm(const IntTerm &T, const VarEnv &Env);

/// Collects the free variables of \p T into \p Out.
void collectIntTermVars(const IntTerm &T, std::set<std::string> &Out);

/// Substitutes \p Replacement for variable \p Name in \p T.
IntTerm substIntTerm(const IntTerm &T, const std::string &Name,
                     const IntTerm &Replacement);

/// Substitutes several variables simultaneously in an integer term.
IntTerm substIntTermAll(const IntTerm &T,
                        const std::map<std::string, IntTerm> &Substitution);

/// Comparison relations for guards.
enum class CmpRel : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

/// A comparison of two integer terms.
struct Cmp {
  IntTerm Lhs;
  CmpRel Rel;
  IntTerm Rhs;

  std::string str() const;
};

/// Evaluates \p C under \p Env; std::nullopt if a variable is unbound.
std::optional<bool> evalCmp(const Cmp &C, const VarEnv &Env);

//===----------------------------------------------------------------------===//
// Bound expressions (assertions)
//===----------------------------------------------------------------------===//

struct BoundExprNode;
using BoundExpr = std::shared_ptr<const BoundExprNode>;

/// A symbolic assertion State -> N U {oo}, parametric in a stack metric.
struct BoundExprNode {
  enum class Kind : uint8_t {
    Const,     ///< A fixed extended natural (Const(oo) is bottom).
    MetricVar, ///< M(f) for a function name f.
    Add,       ///< e1 + e2.
    Max,       ///< max(e1, e2).
    Mul,       ///< e1 * e2 (both non-negative; 0 * oo = 0). Needed for
               ///< metric-times-depth bounds like M(f) * (1 + log2(w)).
    Scale,     ///< k * e for a finite constant k.
    Log2W,     ///< log2 of a term with the paper's conventions:
               ///< negative -> oo, 0 and 1 -> 0, else floor(log2).
    Log2C,     ///< Ceiling variant: negative -> oo, 0 and 1 -> 0, else
               ///< ceil(log2). The inductive invariant of binary search
               ///< (Paper Figure 6) needs the ceiling to be preserved by
               ///< the upper-half recursion.
    NatTerm,   ///< A term coerced to N: negative -> oo (implicit
               ///< precondition "term >= 0").
    Guard,     ///< cmp ? e : oo.
    Ite        ///< cmp ? e1 : e2 (path-sensitive join at conditionals).
  } K;

  ExtNat Value;       ///< Const.
  std::string Func;   ///< MetricVar.
  uint64_t Factor = 1;///< Scale.
  IntTerm Term;       ///< Log2W / NatTerm.
  std::optional<Cmp> Condition; ///< Guard.
  BoundExpr Lhs, Rhs;

  std::string str() const;
};

/// Factory functions; they perform light peephole normalization (adding
/// zero, scaling by one, folding constants) so printed bounds read well.
BoundExpr bConst(ExtNat V);
BoundExpr bZero();
BoundExpr bBottom(); ///< The quantitative `false` (oo).
BoundExpr bMetric(std::string Function);
BoundExpr bAdd(BoundExpr L, BoundExpr R);
BoundExpr bMax(BoundExpr L, BoundExpr R);
BoundExpr bMul(BoundExpr L, BoundExpr R);
BoundExpr bScale(uint64_t K, BoundExpr E);
BoundExpr bLog2W(IntTerm T);
BoundExpr bLog2C(IntTerm T);
BoundExpr bNatTerm(IntTerm T);
BoundExpr bGuard(Cmp C, BoundExpr E);
BoundExpr bIte(Cmp C, BoundExpr Then, BoundExpr Else);

/// Evaluates an assertion under a metric and a variable environment.
/// Unbound variables make the assertion oo (no guarantee can be given).
ExtNat evalBound(const BoundExpr &E, const StackMetric &M, const VarEnv &Env);

/// Collects the free program variables of \p E.
void collectBoundVars(const BoundExpr &E, std::set<std::string> &Out);

/// Collects the metric variables (function names) of \p E.
void collectBoundMetricVars(const BoundExpr &E, std::set<std::string> &Out);

/// Substitutes \p Replacement for program variable \p Name everywhere.
BoundExpr substBound(const BoundExpr &E, const std::string &Name,
                     const IntTerm &Replacement);

/// Substitutes several variables simultaneously (for instantiating a
/// function specification's parameters with call-site argument terms).
BoundExpr substBoundAll(const BoundExpr &E,
                        const std::map<std::string, IntTerm> &Substitution);

/// True if the two expressions are structurally identical.
bool structurallyEqual(const BoundExpr &A, const BoundExpr &B);

//===----------------------------------------------------------------------===//
// Interning
//===----------------------------------------------------------------------===//

/// Counters for the process-wide hash-consing tables behind the factory
/// functions (the events::SymbolTable idiom applied to bound terms).
/// Structurally identical trees built through the factories share one
/// node, so the pointer fast paths in structurallyEqual / termEqual hit
/// and evalBound's memo is identity-keyed by construction. Interning is
/// best-effort and never correctness-bearing: nodes built by other means
/// (e.g. the store's decoder) still compare structurally.
struct InternStats {
  uint64_t BoundNodes = 0; ///< Live interned bound-expression nodes.
  uint64_t TermNodes = 0;  ///< Live interned integer-term nodes.
  uint64_t BoundHits = 0;  ///< Factory calls served from the table.
  uint64_t TermHits = 0;
};

/// Snapshots the interning counters (thread-safe).
InternStats internStats();

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_BOUND_H
