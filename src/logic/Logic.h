//===- logic/Logic.h - Quantitative Hoare logic derivations -----*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derivations of the quantitative Hoare logic (Paper section 4.3, Figure
/// 4) as explicit, checkable trees. A triple
///
///   Gamma |- {P} S {Q}      with Q = (Q_skip, Q_break, Q_return)
///
/// is represented by a Derivation node recording the rule used, the
/// pre/postconditions, and sub-derivations. The paper proves the rules
/// sound in Coq; here `ProofChecker` (logic/Checker.h) re-validates every
/// node, which is what lets the automatic analyzer (Paper section 5)
/// "generate a derivation in the quantitative Hoare logic" whose
/// correctness does not rest on the analyzer's own code.
///
/// Two presentation conveniences relative to Figure 4, both documented in
/// DESIGN.md:
///
///   * The consequence rule is folded into every rule: each side
///     condition is an entailment rather than an equality. An explicit
///     Conseq node still exists.
///   * `CallBalanced` is the admissible rule obtained by composing
///     Q:CALL, Q:FRAME and Q:CONSEQ exactly as the paper's Figure 5
///     derivation does, for callees with balanced specifications
///     ({B} f {B}): from {B' + M(f)} x=f(E) {B' + M(f)} one derives
///     {max(B' + M(f), R)} x=f(E) {R} by framing with the pointwise
///     difference. It is what both the automatic analyzer and the
///     backward derivation builder emit.
///
/// Function specifications follow the paper's auxiliary-state treatment:
/// Pre and Post are expressions over the *entry* values of the parameters
/// (the frozen auxiliary state); inside a body derivation the frozen value
/// of parameter `p` is referred to as `p'` (ghost name), never assigned.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_LOGIC_H
#define QCC_LOGIC_LOGIC_H

#include "clight/Clight.h"
#include "events/SymbolTable.h"
#include "logic/Bound.h"
#include "support/SmallVector.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qcc {
namespace logic {

/// The three-part postcondition (Q_skip, Q_break, Q_return). The return
/// part abstracts over the returned value (stack bounds in the corpus
/// never depend on it).
struct PostCondition {
  BoundExpr OnSkip;
  BoundExpr OnBreak;
  BoundExpr OnReturn;

  static PostCondition all(BoundExpr Q) { return {Q, Q, Q}; }
  static PostCondition onSkip(BoundExpr Q) {
    return {std::move(Q), bBottom(), bBottom()};
  }
  static PostCondition onReturn(BoundExpr Q) {
    return {bBottom(), bBottom(), std::move(Q)};
  }

  std::string str() const;
};

/// A function specification: pre- and postcondition over the entry values
/// of the parameters. {Pre} f(args) {Post}.
///
/// ResultFacts are *assumed* functional facts about the return value
/// (variable "$result") in terms of the parameters — e.g. partition's
/// `lo <= $result` and `$result < hi`. The quantitative logic takes them
/// as given, exactly as the paper assumes memory safety is proved by a
/// separate (separation-logic) development; they feed the Q:CALL-HAVOC
/// rule when a continuation's bound depends on a call result.
struct FunctionSpec {
  BoundExpr Pre;
  BoundExpr Post;
  std::vector<Cmp> ResultFacts;

  /// A balanced specification {B} f {B}.
  static FunctionSpec balanced(BoundExpr B) { return {B, B, {}}; }

  bool isBalanced() const { return structurallyEqual(Pre, Post); }
};

/// The function context Gamma mapping function names to specifications.
using FunctionContext = std::map<std::string, FunctionSpec>;

/// The ghost (auxiliary-state) name for parameter \p Param: its frozen
/// entry value, never assigned inside the body.
inline std::string ghostName(const std::string &Param) { return Param + "'"; }

/// The variable naming the return value inside a spec's ResultFacts.
inline const char *resultVarName() { return "$result"; }

/// The set of local variables a statement may assign, kept as a sorted
/// small-vector of interned symbol ids. Function bodies assign a handful
/// of locals, so the ids normally live inline; membership is a binary
/// search with no string compares after the one intern per query.
class AssignedLocals {
public:
  /// Adds a name (deduplicated, kept sorted).
  void insert(const std::string &Name) {
    SymId Id = SymbolTable::global().intern(Name);
    auto It = std::lower_bound(Ids.begin(), Ids.end(), Id);
    if (It == Ids.end() || *It != Id) {
      // Keep sorted order with a shift; the vector is tiny.
      size_t Pos = static_cast<size_t>(It - Ids.begin());
      Ids.push_back(Id);
      for (size_t I = Ids.size() - 1; I > Pos; --I)
        Ids[I] = Ids[I - 1];
      Ids[Pos] = Id;
    }
  }

  /// Membership, std::set-style: 1 if present, 0 otherwise.
  size_t count(const std::string &Name) const {
    SymId Id = SymbolTable::global().intern(Name);
    return std::binary_search(Ids.begin(), Ids.end(), Id) ? 1 : 0;
  }

  size_t size() const { return Ids.size(); }
  bool empty() const { return Ids.empty(); }
  const SymId *begin() const { return Ids.begin(); }
  const SymId *end() const { return Ids.end(); }

private:
  support::SmallVector<SymId, 8> Ids;
};

/// The local variables (including parameters) that \p S may assign —
/// directly or as a call destination. Parameters *not* in this set keep
/// their entry values throughout the body, so their ghosts are
/// unnecessary (builder and checker both rely on this).
AssignedLocals assignedLocals(const clight::Stmt &S);

/// Rules of the logic (Figure 4 plus the admissible CallBalanced).
enum class Rule : uint8_t {
  Skip,
  Break,
  Return,
  Assign,
  Call,         ///< Primitive Q:CALL (pre/post are spec + M(f) exactly).
  CallBalanced, ///< Admissible Call+Frame+Conseq composition (Figure 5).
  CallHavoc,    ///< CallBalanced when the continuation observes the call
                ///< result: a caller-supplied result-independent majorant
                ///< dominates the continuation for every result value
                ///< permitted by the callee's ResultFacts.
  ExternalCall, ///< Externals cost nothing under stack metrics.
  Seq,
  If,
  Loop,
  Frame,
  Conseq
};

/// Number of rules (for per-rule counters indexed by the enum value).
inline constexpr unsigned NumRules = static_cast<unsigned>(Rule::Conseq) + 1;

const char *ruleName(Rule R);

struct Derivation;
using DerivationPtr = std::unique_ptr<Derivation>;

/// One derivation node proving Gamma |- {Pre} S {Post}.
struct Derivation {
  Rule R;
  const clight::Stmt *S = nullptr; ///< The statement this node proves.
  BoundExpr Pre;
  PostCondition Post;
  std::vector<DerivationPtr> Children;
  BoundExpr FrameAmount; ///< Frame only: the framed-in potential c >= 0.
  BoundExpr SupHint;     ///< CallHavoc only: the result-free majorant.

  /// Renders the derivation tree with rule names and triples.
  std::string str(unsigned Indent = 0) const;

  /// Number of nodes in this (sub)tree.
  size_t size() const;

  /// Deep copy (bound expressions are shared; they are immutable).
  DerivationPtr clone() const;

  /// The \p Index-th node of a preorder walk (for mutation testing).
  Derivation *nodeAt(size_t Index);
};

/// A checked bound for one function: its spec, the body derivation, and
/// the context it was derived under.
struct FunctionBound {
  std::string Function;
  FunctionSpec Spec;
  DerivationPtr Body;
};

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_LOGIC_H
