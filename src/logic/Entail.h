//===- logic/Entail.h - Entailment between assertions -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides the quantitative consequence relation P >= Q used by the
/// Q:CONSEQ rule and, folded in, by every other rule of the logic. The
/// relation means: for every stack metric M and every variable environment
/// Env, evalBound(P, M, Env) >= evalBound(Q, M, Env).
///
/// Three methods, tried in order:
///
///   1. Syntactic — structural equality.
///   2. Symbolic  — complete normalization to max-of-monomials for
///      expressions over constants and metric variables only (the whole
///      language the automatic analyzer emits), decided by monomial
///      domination. Sound; conservative on the general language.
///   3. Sampled   — deterministic exhaustive-grid plus pseudo-random
///      evaluation over program variables and metrics. This is the
///      unverified-analyzer substitution for Coq's proof checking
///      (DESIGN.md section 1); it never accepts an entailment the samples
///      refute and records a concrete counterexample when it finds one.
///
/// The per-derivation soundness harness (`logic/Soundness.h`) backs the
/// sampled method with end-to-end weight measurements.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_ENTAIL_H
#define QCC_LOGIC_ENTAIL_H

#include "logic/Bound.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace qcc {
namespace logic {

/// How an entailment was established (or why not).
enum class EntailMethod : uint8_t { Syntactic, Symbolic, Sampled, Refuted };

/// The result of an entailment query.
struct EntailResult {
  bool Holds;
  EntailMethod Method;
  std::string Counterexample; ///< When refuted: the offending env/metric.

  explicit operator bool() const { return Holds; }
};

/// Tuning knobs for the sampled method.
struct EntailOptions {
  unsigned RandomSamples = 400;
  unsigned MetricSamples = 12;
  uint64_t Seed = 0x2545f4914f6cdd1dull;
  /// Restrict to methods 1 and 2; queries needing sampling are rejected.
  /// The automatic stack analyzer runs with this set so that its
  /// derivations carry fully symbolic certificates.
  bool SymbolicOnly = false;
};

/// A thread-safe memo table for assumption-free entailment queries,
/// keyed on the identity of the two bound expressions. Bound nodes are
/// interned process-wide and immutable, so pointer equality implies
/// structural equality and a cached verdict stays valid forever; every
/// inserted key is pinned alive by the memo, so the table itself is
/// keyed on raw pointers and the hot lookup path touches no reference
/// counts — and, because entries are never erased or overwritten (first
/// writer wins; verdicts for one key agree), no locks either: lookups
/// walk append-only bucket chains published with release stores, only
/// writers serialize on a mutex. Entailment is a pure function of
/// (P, Q, Options), so one memo
/// must serve exactly one EntailOptions context (the checker and builder
/// each keep theirs per run). Assumption-carrying queries (path-sensitive
/// If sides) bypass the verdict table but still share the normal-form
/// cache: the symbolic method ignores assumptions, and normalization is
/// a pure function of the node. In symbolic-only mode no method reads
/// assumptions at all, so there the table serves every query.
class EntailMemo {
public:
  EntailMemo();
  ~EntailMemo();
  EntailMemo(const EntailMemo &) = delete;
  EntailMemo &operator=(const EntailMemo &) = delete;

  /// The cached verdict for (P, Q), or null. The pointer stays valid
  /// for the memo's lifetime (entries are never erased).
  const EntailResult *lookup(const BoundExpr &P, const BoundExpr &Q) const;

  /// Caches a verdict (first writer wins; verdicts for one key agree).
  void insert(const BoundExpr &P, const BoundExpr &Q, const EntailResult &R);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  size_t size() const;

  /// Cache of symbolic normal forms (max-of-monomials per bound node),
  /// shared by every query through this memo. Opaque outside Entail.cpp.
  struct NormCache;
  NormCache &norms() const { return *Norms; }

private:
  /// The append-only verdict table; opaque outside Entail.cpp. Each
  /// entry pins its two bounds alive, so raw-pointer keys stay valid
  /// even for bounds constructed outside the interner.
  struct VerdictTable;

  std::unique_ptr<VerdictTable> Verdicts;
  std::unique_ptr<NormCache> Norms;
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
};

/// Checks P >= Q pointwise over all metrics and environments.
/// \p Assumptions restrict the environments considered (used by the If
/// rule for path sensitivity); equality assumptions between two variables
/// or a variable and a term are solved constructively during sampling.
/// With \p Memo set, assumption-free queries are served from (and fill)
/// the memo table.
EntailResult entails(const BoundExpr &P, const BoundExpr &Q,
                     const std::vector<Cmp> &Assumptions = {},
                     const EntailOptions &Options = {},
                     EntailMemo *Memo = nullptr);

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_ENTAIL_H
