//===- logic/Entail.h - Entailment between assertions -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides the quantitative consequence relation P >= Q used by the
/// Q:CONSEQ rule and, folded in, by every other rule of the logic. The
/// relation means: for every stack metric M and every variable environment
/// Env, evalBound(P, M, Env) >= evalBound(Q, M, Env).
///
/// Three methods, tried in order:
///
///   1. Syntactic — structural equality.
///   2. Symbolic  — complete normalization to max-of-monomials for
///      expressions over constants and metric variables only (the whole
///      language the automatic analyzer emits), decided by monomial
///      domination. Sound; conservative on the general language.
///   3. Sampled   — deterministic exhaustive-grid plus pseudo-random
///      evaluation over program variables and metrics. This is the
///      unverified-analyzer substitution for Coq's proof checking
///      (DESIGN.md section 1); it never accepts an entailment the samples
///      refute and records a concrete counterexample when it finds one.
///
/// The per-derivation soundness harness (`logic/Soundness.h`) backs the
/// sampled method with end-to-end weight measurements.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_ENTAIL_H
#define QCC_LOGIC_ENTAIL_H

#include "logic/Bound.h"

#include <string>
#include <vector>

namespace qcc {
namespace logic {

/// How an entailment was established (or why not).
enum class EntailMethod : uint8_t { Syntactic, Symbolic, Sampled, Refuted };

/// The result of an entailment query.
struct EntailResult {
  bool Holds;
  EntailMethod Method;
  std::string Counterexample; ///< When refuted: the offending env/metric.

  explicit operator bool() const { return Holds; }
};

/// Tuning knobs for the sampled method.
struct EntailOptions {
  unsigned RandomSamples = 400;
  unsigned MetricSamples = 12;
  uint64_t Seed = 0x2545f4914f6cdd1dull;
  /// Restrict to methods 1 and 2; queries needing sampling are rejected.
  /// The automatic stack analyzer runs with this set so that its
  /// derivations carry fully symbolic certificates.
  bool SymbolicOnly = false;
};

/// Checks P >= Q pointwise over all metrics and environments.
/// \p Assumptions restrict the environments considered (used by the If
/// rule for path sensitivity); equality assumptions between two variables
/// or a variable and a term are solved constructively during sampling.
EntailResult entails(const BoundExpr &P, const BoundExpr &Q,
                     const std::vector<Cmp> &Assumptions = {},
                     const EntailOptions &Options = {});

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_ENTAIL_H
