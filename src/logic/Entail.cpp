//===- logic/Entail.cpp - Entailment between assertions -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Entail.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace qcc;
using namespace qcc::logic;

//===----------------------------------------------------------------------===//
// Symbolic method: max-of-monomials over metric variables
//===----------------------------------------------------------------------===//

namespace {

/// One monomial: a constant plus non-negative integer coefficients on
/// metric variables. The value under a metric M is
/// Constant + sum_f Coeffs[f] * M(f).
struct Monomial {
  uint64_t Constant = 0;
  std::map<std::string, uint64_t> Coeffs;

  Monomial scaled(uint64_t K) const {
    Monomial Out;
    Out.Constant = Constant * K;
    for (const auto &[F, C] : Coeffs)
      Out.Coeffs[F] = C * K;
    return Out;
  }

  Monomial plus(const Monomial &O) const {
    Monomial Out = *this;
    Out.Constant += O.Constant;
    for (const auto &[F, C] : O.Coeffs)
      Out.Coeffs[F] += C;
    return Out;
  }

  /// True if this monomial's value dominates \p O under every metric,
  /// i.e. coefficient-wise (including the constant).
  bool dominates(const Monomial &O) const {
    if (Constant < O.Constant)
      return false;
    for (const auto &[F, C] : O.Coeffs) {
      auto It = Coeffs.find(F);
      if ((It == Coeffs.end() ? 0 : It->second) < C)
        return false;
    }
    return true;
  }
};

/// A normalized tropical form: the pointwise maximum of monomials.
/// Nullopt signals "not normalizable" (program variables present).
using MaxOfMonomials = std::optional<std::vector<Monomial>>;

/// Keeps only monomials not dominated by another (small sets here).
void pruneDominated(std::vector<Monomial> &Ms) {
  std::vector<Monomial> Out;
  for (size_t I = 0; I != Ms.size(); ++I) {
    bool Dominated = false;
    for (size_t J = 0; J != Ms.size() && !Dominated; ++J)
      if (I != J && Ms[J].dominates(Ms[I]) &&
          !(Ms[I].dominates(Ms[J]) && I < J))
        Dominated = true;
    if (!Dominated)
      Out.push_back(Ms[I]);
  }
  Ms = std::move(Out);
}

MaxOfMonomials normalize(const BoundExpr &E) {
  switch (E->K) {
  case BoundExprNode::Kind::Const: {
    if (E->Value.isInfinite())
      return std::nullopt; // Infinity has no finite monomial form.
    Monomial M;
    M.Constant = E->Value.finiteValue();
    return std::vector<Monomial>{M};
  }
  case BoundExprNode::Kind::MetricVar: {
    Monomial M;
    M.Coeffs[E->Func] = 1;
    return std::vector<Monomial>{M};
  }
  case BoundExprNode::Kind::Add: {
    MaxOfMonomials L = normalize(E->Lhs), R = normalize(E->Rhs);
    if (!L || !R)
      return std::nullopt;
    std::vector<Monomial> Out;
    for (const Monomial &A : *L)
      for (const Monomial &B : *R)
        Out.push_back(A.plus(B));
    pruneDominated(Out);
    return Out;
  }
  case BoundExprNode::Kind::Max: {
    MaxOfMonomials L = normalize(E->Lhs), R = normalize(E->Rhs);
    if (!L || !R)
      return std::nullopt;
    std::vector<Monomial> Out = *L;
    Out.insert(Out.end(), R->begin(), R->end());
    pruneDominated(Out);
    return Out;
  }
  case BoundExprNode::Kind::Scale: {
    MaxOfMonomials L = normalize(E->Lhs);
    if (!L)
      return std::nullopt;
    std::vector<Monomial> Out;
    for (const Monomial &A : *L)
      Out.push_back(A.scaled(E->Factor));
    return Out;
  }
  default:
    return std::nullopt; // Program-variable-dependent forms.
  }
}

/// Sufficient symbolic check: every Q monomial is dominated by some P
/// monomial. (Complete for the single-monomial Q case; conservative in
/// general, which only ever rejects, never wrongly accepts.)
bool dominatesSymbolically(const std::vector<Monomial> &P,
                           const std::vector<Monomial> &Q) {
  for (const Monomial &MQ : Q) {
    bool Found = false;
    for (const Monomial &MP : P) {
      if (MP.dominates(MQ)) {
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Sampled method
//===----------------------------------------------------------------------===//

/// Deterministic splitmix64 stream.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// The grid of interesting 32-bit values: boundaries, small counts, and
/// mid-sized values that exercise log plateaus.
const uint32_t ValueGrid[] = {0,  1,   2,   3,    4,    5,     7,         8,
                              9,  15,  16,  17,   31,   33,    63,        64,
                              65, 100, 128, 1000, 4096, 65535, 0x7fffffff};

std::string envToString(const VarEnv &Env, const StackMetric &M) {
  std::string Out = "env {";
  bool First = true;
  for (const auto &[K, V] : Env) {
    if (!First)
      Out += ", ";
    First = false;
    Out += K + "=" + std::to_string(V);
  }
  Out += "} metric " + M.str();
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

EntailResult qcc::logic::entails(const BoundExpr &P, const BoundExpr &Q,
                                 const std::vector<Cmp> &Assumptions,
                                 const EntailOptions &Options) {
  // Method 1: syntactic.
  if (structurallyEqual(P, Q))
    return {true, EntailMethod::Syntactic, ""};

  // Method 2: symbolic tropical domination (assumption-free language).
  if (MaxOfMonomials NP = normalize(P)) {
    if (MaxOfMonomials NQ = normalize(Q)) {
      if (dominatesSymbolically(*NP, *NQ))
        return {true, EntailMethod::Symbolic, ""};
      // P and Q are both variable-free: symbolic rejection here is NOT
      // conclusive (domination is only sufficient), so fall through to
      // sampling unless symbolic-only mode is on.
    }
  }
  // Q = bottom is only entailed by P = bottom.
  if (Q->K == BoundExprNode::Kind::Const && Q->Value.isInfinite())
    return {P->K == BoundExprNode::Kind::Const && P->Value.isInfinite(),
            EntailMethod::Symbolic, "only bottom entails bottom"};

  if (Options.SymbolicOnly)
    return {false, EntailMethod::Refuted,
            "not established symbolically (symbolic-only mode)"};

  // Method 3: sampled refutation.
  std::set<std::string> VarSet;
  collectBoundVars(P, VarSet);
  collectBoundVars(Q, VarSet);
  for (const Cmp &A : Assumptions) {
    collectIntTermVars(A.Lhs, VarSet);
    collectIntTermVars(A.Rhs, VarSet);
  }
  std::vector<std::string> Vars(VarSet.begin(), VarSet.end());

  std::set<std::string> MetricSet;
  collectBoundMetricVars(P, MetricSet);
  collectBoundMetricVars(Q, MetricSet);
  std::vector<std::string> MetricVars(MetricSet.begin(), MetricSet.end());

  Rng R(Options.Seed);

  // Pre-build the metric family: zero, uniform, one-hots, randoms.
  std::vector<StackMetric> Metrics;
  Metrics.emplace_back();
  {
    StackMetric Uniform;
    for (const std::string &F : MetricVars)
      Uniform.setCost(F, 8);
    Metrics.push_back(std::move(Uniform));
    for (const std::string &F : MetricVars) {
      StackMetric OneHot;
      OneHot.setCost(F, 40);
      Metrics.push_back(std::move(OneHot));
    }
    for (unsigned I = 0; I < Options.MetricSamples; ++I) {
      StackMetric Rand;
      for (const std::string &F : MetricVars)
        Rand.setCost(F, static_cast<uint32_t>(R.next() % 256));
      Metrics.push_back(std::move(Rand));
    }
  }

  // Equality assumptions of the shape `var == term` (either side) are
  // solved constructively after the free draw so that they are actually
  // exercised rather than filtered to nothing.
  auto Solve = [&Assumptions](VarEnv &Env) -> bool {
    for (unsigned Round = 0; Round < 2; ++Round) {
      for (const Cmp &A : Assumptions) {
        if (A.Rel != CmpRel::Eq)
          continue;
        const IntTerm &L = A.Lhs, &Rt = A.Rhs;
        if (L->K == IntTermNode::Kind::Var) {
          if (auto V = evalIntTerm(Rt, Env))
            Env[L->Name] = static_cast<uint32_t>(*V);
        } else if (Rt->K == IntTermNode::Kind::Var) {
          if (auto V = evalIntTerm(L, Env))
            Env[Rt->Name] = static_cast<uint32_t>(*V);
        }
      }
    }
    // All assumptions (equalities included) must now hold.
    for (const Cmp &A : Assumptions) {
      auto H = evalCmp(A, Env);
      if (!H || !*H)
        return false;
    }
    return true;
  };

  auto CheckEnv = [&](const VarEnv &Env) -> EntailResult {
    for (const StackMetric &M : Metrics) {
      ExtNat VP = evalBound(P, M, Env);
      ExtNat VQ = evalBound(Q, M, Env);
      if (VP < VQ)
        return {false, EntailMethod::Refuted,
                "P=" + VP.str() + " < Q=" + VQ.str() + " at " +
                    envToString(Env, M)};
    }
    return {true, EntailMethod::Sampled, ""};
  };

  // Exhaustive small grids for up to 3 variables, then random tuples.
  size_t GridLimit = sizeof(ValueGrid) / sizeof(ValueGrid[0]);
  auto EnumerateGrid = [&](auto &&Self, size_t VarIdx,
                           VarEnv &Env) -> EntailResult {
    if (VarIdx == Vars.size() || VarIdx >= 3) {
      // Remaining variables (if any) get grid-free random values.
      VarEnv Full = Env;
      for (size_t I = VarIdx; I < Vars.size(); ++I)
        Full[Vars[I]] = static_cast<uint32_t>(R.next());
      if (!Solve(Full))
        return {true, EntailMethod::Sampled, ""}; // Vacuous under assumptions.
      return CheckEnv(Full);
    }
    for (size_t G = 0; G != GridLimit; ++G) {
      Env[Vars[VarIdx]] = ValueGrid[G];
      EntailResult Res = Self(Self, VarIdx + 1, Env);
      if (!Res.Holds)
        return Res;
    }
    return {true, EntailMethod::Sampled, ""};
  };

  VarEnv Scratch;
  if (EntailResult Res = EnumerateGrid(EnumerateGrid, 0, Scratch); !Res.Holds)
    return Res;

  // Random tuples (values drawn from the grid and the full range).
  for (unsigned S = 0; S != Options.RandomSamples; ++S) {
    VarEnv Env;
    for (const std::string &V : Vars) {
      uint64_t Draw = R.next();
      Env[V] = (Draw & 1) ? ValueGrid[Draw % GridLimit]
                          : static_cast<uint32_t>(Draw >> 16);
    }
    if (!Solve(Env))
      continue;
    if (EntailResult Res = CheckEnv(Env); !Res.Holds)
      return Res;
  }

  return {true, EntailMethod::Sampled, ""};
}
