//===- logic/Entail.cpp - Entailment between assertions -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Entail.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <memory>
#include <mutex>
#include <optional>

using namespace qcc;
using namespace qcc::logic;

//===----------------------------------------------------------------------===//
// Symbolic method: max-of-monomials over metric variables
//===----------------------------------------------------------------------===//

namespace {

/// One monomial: a constant plus non-negative integer coefficients on
/// metric variables. The value under a metric M is
/// Constant + sum_f Coeffs[f] * M(f).
struct Monomial {
  uint64_t Constant = 0;
  std::map<std::string, uint64_t> Coeffs;

  Monomial scaled(uint64_t K) const {
    Monomial Out;
    Out.Constant = Constant * K;
    for (const auto &[F, C] : Coeffs)
      Out.Coeffs[F] = C * K;
    return Out;
  }

  Monomial plus(const Monomial &O) const {
    Monomial Out = *this;
    Out.Constant += O.Constant;
    for (const auto &[F, C] : O.Coeffs)
      Out.Coeffs[F] += C;
    return Out;
  }

  /// True if this monomial's value dominates \p O under every metric,
  /// i.e. coefficient-wise (including the constant).
  bool dominates(const Monomial &O) const {
    if (Constant < O.Constant)
      return false;
    for (const auto &[F, C] : O.Coeffs) {
      auto It = Coeffs.find(F);
      if ((It == Coeffs.end() ? 0 : It->second) < C)
        return false;
    }
    return true;
  }
};

/// A normalized tropical form: the pointwise maximum of monomials.
/// Nullopt signals "not normalizable" (program variables present).
using MaxOfMonomials = std::optional<std::vector<Monomial>>;

/// Keeps only monomials not dominated by another (small sets here).
void pruneDominated(std::vector<Monomial> &Ms) {
  std::vector<Monomial> Out;
  for (size_t I = 0; I != Ms.size(); ++I) {
    bool Dominated = false;
    for (size_t J = 0; J != Ms.size() && !Dominated; ++J)
      if (I != J && Ms[J].dominates(Ms[I]) &&
          !(Ms[I].dominates(Ms[J]) && I < J))
        Dominated = true;
    if (!Dominated)
      Out.push_back(Ms[I]);
  }
  Ms = std::move(Out);
}

MaxOfMonomials normalize(const BoundExpr &E) {
  switch (E->K) {
  case BoundExprNode::Kind::Const: {
    if (E->Value.isInfinite())
      return std::nullopt; // Infinity has no finite monomial form.
    Monomial M;
    M.Constant = E->Value.finiteValue();
    return std::vector<Monomial>{M};
  }
  case BoundExprNode::Kind::MetricVar: {
    Monomial M;
    M.Coeffs[E->Func] = 1;
    return std::vector<Monomial>{M};
  }
  case BoundExprNode::Kind::Add: {
    MaxOfMonomials L = normalize(E->Lhs), R = normalize(E->Rhs);
    if (!L || !R)
      return std::nullopt;
    std::vector<Monomial> Out;
    for (const Monomial &A : *L)
      for (const Monomial &B : *R)
        Out.push_back(A.plus(B));
    pruneDominated(Out);
    return Out;
  }
  case BoundExprNode::Kind::Max: {
    MaxOfMonomials L = normalize(E->Lhs), R = normalize(E->Rhs);
    if (!L || !R)
      return std::nullopt;
    std::vector<Monomial> Out = *L;
    Out.insert(Out.end(), R->begin(), R->end());
    pruneDominated(Out);
    return Out;
  }
  case BoundExprNode::Kind::Scale: {
    MaxOfMonomials L = normalize(E->Lhs);
    if (!L)
      return std::nullopt;
    std::vector<Monomial> Out;
    for (const Monomial &A : *L)
      Out.push_back(A.scaled(E->Factor));
    return Out;
  }
  default:
    return std::nullopt; // Program-variable-dependent forms.
  }
}

/// Sufficient symbolic check: every Q monomial is dominated by some P
/// monomial. (Complete for the single-monomial Q case; conservative in
/// general, which only ever rejects, never wrongly accepts.)
bool dominatesSymbolically(const std::vector<Monomial> &P,
                           const std::vector<Monomial> &Q) {
  for (const Monomial &MQ : Q) {
    bool Found = false;
    for (const Monomial &MP : P) {
      if (MP.dominates(MQ)) {
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Sampled method
//===----------------------------------------------------------------------===//

/// Deterministic splitmix64 stream.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// The grid of interesting 32-bit values: boundaries, small counts, and
/// mid-sized values that exercise log plateaus.
const uint32_t ValueGrid[] = {0,  1,   2,   3,    4,    5,     7,         8,
                              9,  15,  16,  17,   31,   33,    63,        64,
                              65, 100, 128, 1000, 4096, 65535, 0x7fffffff};

std::string envToString(const VarEnv &Env, const StackMetric &M) {
  std::string Out = "env {";
  bool First = true;
  for (const auto &[K, V] : Env) {
    if (!First)
      Out += ", ";
    First = false;
    Out += K + "=" + std::to_string(V);
  }
  Out += "} metric " + M.str();
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

namespace {

/// Mixes two node addresses into a bucket index.
inline size_t bucketOf(const void *P, const void *Q, size_t Mask) {
  uintptr_t A = reinterpret_cast<uintptr_t>(P);
  uintptr_t B = reinterpret_cast<uintptr_t>(Q);
  return static_cast<size_t>((A >> 4) * 0x9e3779b97f4a7c15ull ^
                             (B >> 4) * 0xff51afd7ed558ccdull) &
         Mask;
}

/// An append-only hash table with lock-free reads: fixed bucket array of
/// atomic chain heads, entries pushed at the head under a writer mutex
/// and published with a release store. Entries are immutable once
/// published and never erased, so a reader needs only the acquire load
/// of the head — every node field it then reads was written before the
/// publishing store. This is what makes a shared memo's hit path cost a
/// hash and a pointer chase instead of a shared_mutex round trip.
template <typename NodeT, size_t NumBuckets> struct AppendOnlyTable {
  static_assert((NumBuckets & (NumBuckets - 1)) == 0,
                "bucket count must be a power of two");
  std::array<std::atomic<NodeT *>, NumBuckets> Heads{};
  std::mutex WriteMu;
  std::vector<std::unique_ptr<NodeT>> Owned; ///< Guarded by WriteMu.
  std::atomic<size_t> Count{0};

  template <typename MatchFn>
  const NodeT *find(size_t Bucket, MatchFn Match) const {
    for (const NodeT *N = Heads[Bucket].load(std::memory_order_acquire); N;
         N = N->Next)
      if (Match(*N))
        return N;
    return nullptr;
  }

  /// Publishes \p N into \p Bucket. Caller holds WriteMu and has already
  /// re-checked for a concurrent insert of the same key.
  NodeT *publish(size_t Bucket, std::unique_ptr<NodeT> N) {
    NodeT *Raw = N.get();
    Raw->Next = Heads[Bucket].load(std::memory_order_relaxed);
    Owned.push_back(std::move(N));
    Heads[Bucket].store(Raw, std::memory_order_release);
    Count.fetch_add(1, std::memory_order_relaxed);
    return Raw;
  }
};

} // namespace

/// Normal forms are pure functions of the (immutable, usually interned)
/// node, so one memo's queries share them: the repeated bounds of a
/// derivation normalize once instead of once per entailment.
struct EntailMemo::NormCache {
  struct Node {
    const BoundExprNode *Key;
    MaxOfMonomials V;
    BoundExpr Pin; ///< Keeps the keyed node alive.
    Node *Next;
  };
  AppendOnlyTable<Node, 1024> Table;

  /// The cached normal form of \p E, computing and caching on first use.
  /// The returned pointer stays valid for the cache's lifetime (entries
  /// are never erased).
  const MaxOfMonomials *normalOf(const BoundExpr &E) {
    size_t B = bucketOf(E.get(), nullptr, Table.Heads.size() - 1);
    auto Match = [&](const Node &N) { return N.Key == E.get(); };
    if (const Node *N = Table.find(B, Match))
      return &N->V;
    // Normalize outside the writer lock; on a race the first publisher
    // wins and the duplicate work is discarded.
    MaxOfMonomials V = normalize(E);
    std::lock_guard<std::mutex> Lock(Table.WriteMu);
    if (const Node *N = Table.find(B, Match))
      return &N->V;
    return &Table
                .publish(B, std::make_unique<Node>(
                                Node{E.get(), std::move(V), E, nullptr}))
                ->V;
  }
};

/// The verdict table proper: (P, Q) identity to EntailResult.
struct EntailMemo::VerdictTable {
  struct Node {
    const BoundExprNode *P;
    const BoundExprNode *Q;
    EntailResult R;
    BoundExpr PinP, PinQ; ///< Keep the keyed nodes alive.
    Node *Next;
  };
  AppendOnlyTable<Node, 4096> Table;
};

EntailMemo::EntailMemo()
    : Verdicts(std::make_unique<VerdictTable>()),
      Norms(std::make_unique<NormCache>()) {}
EntailMemo::~EntailMemo() = default;

const EntailResult *EntailMemo::lookup(const BoundExpr &P,
                                       const BoundExpr &Q) const {
  auto &T = Verdicts->Table;
  const VerdictTable::Node *N =
      T.find(bucketOf(P.get(), Q.get(), T.Heads.size() - 1),
             [&](const VerdictTable::Node &N) {
               return N.P == P.get() && N.Q == Q.get();
             });
  if (!N) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return &N->R;
}

void EntailMemo::insert(const BoundExpr &P, const BoundExpr &Q,
                        const EntailResult &R) {
  auto &T = Verdicts->Table;
  size_t B = bucketOf(P.get(), Q.get(), T.Heads.size() - 1);
  auto Match = [&](const VerdictTable::Node &N) {
    return N.P == P.get() && N.Q == Q.get();
  };
  std::lock_guard<std::mutex> Lock(T.WriteMu);
  if (T.find(B, Match))
    return; // First writer won; verdicts for one key agree.
  T.publish(B, std::make_unique<VerdictTable::Node>(VerdictTable::Node{
                   P.get(), Q.get(), R, P, Q, nullptr}));
}

size_t EntailMemo::size() const {
  return Verdicts->Table.Count.load(std::memory_order_relaxed);
}

static EntailResult entailsImpl(const BoundExpr &P, const BoundExpr &Q,
                                const std::vector<Cmp> &Assumptions,
                                const EntailOptions &Options,
                                EntailMemo::NormCache *Norms = nullptr) {
  // Method 1: syntactic.
  if (structurallyEqual(P, Q))
    return {true, EntailMethod::Syntactic, ""};

  // Method 2: symbolic tropical domination (assumption-free language).
  MaxOfMonomials LocalP;
  const MaxOfMonomials &NP =
      Norms ? *Norms->normalOf(P) : (LocalP = normalize(P));
  if (NP) {
    MaxOfMonomials LocalQ;
    const MaxOfMonomials &NQ =
        Norms ? *Norms->normalOf(Q) : (LocalQ = normalize(Q));
    if (NQ && dominatesSymbolically(*NP, *NQ))
      return {true, EntailMethod::Symbolic, ""};
    // P and Q are both variable-free: symbolic rejection here is NOT
    // conclusive (domination is only sufficient), so fall through to
    // sampling unless symbolic-only mode is on.
  }
  // Q = bottom is only entailed by P = bottom.
  if (Q->K == BoundExprNode::Kind::Const && Q->Value.isInfinite())
    return {P->K == BoundExprNode::Kind::Const && P->Value.isInfinite(),
            EntailMethod::Symbolic, "only bottom entails bottom"};

  if (Options.SymbolicOnly)
    return {false, EntailMethod::Refuted,
            "not established symbolically (symbolic-only mode)"};

  // Method 3: sampled refutation.
  std::set<std::string> VarSet;
  collectBoundVars(P, VarSet);
  collectBoundVars(Q, VarSet);
  for (const Cmp &A : Assumptions) {
    collectIntTermVars(A.Lhs, VarSet);
    collectIntTermVars(A.Rhs, VarSet);
  }
  std::vector<std::string> Vars(VarSet.begin(), VarSet.end());

  std::set<std::string> MetricSet;
  collectBoundMetricVars(P, MetricSet);
  collectBoundMetricVars(Q, MetricSet);
  std::vector<std::string> MetricVars(MetricSet.begin(), MetricSet.end());

  Rng R(Options.Seed);

  // Pre-build the metric family: zero, uniform, one-hots, randoms.
  std::vector<StackMetric> Metrics;
  Metrics.emplace_back();
  {
    StackMetric Uniform;
    for (const std::string &F : MetricVars)
      Uniform.setCost(F, 8);
    Metrics.push_back(std::move(Uniform));
    for (const std::string &F : MetricVars) {
      StackMetric OneHot;
      OneHot.setCost(F, 40);
      Metrics.push_back(std::move(OneHot));
    }
    for (unsigned I = 0; I < Options.MetricSamples; ++I) {
      StackMetric Rand;
      for (const std::string &F : MetricVars)
        Rand.setCost(F, static_cast<uint32_t>(R.next() % 256));
      Metrics.push_back(std::move(Rand));
    }
  }

  // Equality assumptions of the shape `var == term` (either side) are
  // solved constructively after the free draw so that they are actually
  // exercised rather than filtered to nothing.
  auto Solve = [&Assumptions](VarEnv &Env) -> bool {
    for (unsigned Round = 0; Round < 2; ++Round) {
      for (const Cmp &A : Assumptions) {
        if (A.Rel != CmpRel::Eq)
          continue;
        const IntTerm &L = A.Lhs, &Rt = A.Rhs;
        if (L->K == IntTermNode::Kind::Var) {
          if (auto V = evalIntTerm(Rt, Env))
            Env[L->Name] = static_cast<uint32_t>(*V);
        } else if (Rt->K == IntTermNode::Kind::Var) {
          if (auto V = evalIntTerm(L, Env))
            Env[Rt->Name] = static_cast<uint32_t>(*V);
        }
      }
    }
    // All assumptions (equalities included) must now hold.
    for (const Cmp &A : Assumptions) {
      auto H = evalCmp(A, Env);
      if (!H || !*H)
        return false;
    }
    return true;
  };

  auto CheckEnv = [&](const VarEnv &Env) -> EntailResult {
    for (const StackMetric &M : Metrics) {
      ExtNat VP = evalBound(P, M, Env);
      ExtNat VQ = evalBound(Q, M, Env);
      if (VP < VQ)
        return {false, EntailMethod::Refuted,
                "P=" + VP.str() + " < Q=" + VQ.str() + " at " +
                    envToString(Env, M)};
    }
    return {true, EntailMethod::Sampled, ""};
  };

  // Exhaustive small grids for up to 3 variables, then random tuples.
  size_t GridLimit = sizeof(ValueGrid) / sizeof(ValueGrid[0]);
  auto EnumerateGrid = [&](auto &&Self, size_t VarIdx,
                           VarEnv &Env) -> EntailResult {
    if (VarIdx == Vars.size() || VarIdx >= 3) {
      // Remaining variables (if any) get grid-free random values.
      VarEnv Full = Env;
      for (size_t I = VarIdx; I < Vars.size(); ++I)
        Full[Vars[I]] = static_cast<uint32_t>(R.next());
      if (!Solve(Full))
        return {true, EntailMethod::Sampled, ""}; // Vacuous under assumptions.
      return CheckEnv(Full);
    }
    for (size_t G = 0; G != GridLimit; ++G) {
      Env[Vars[VarIdx]] = ValueGrid[G];
      EntailResult Res = Self(Self, VarIdx + 1, Env);
      if (!Res.Holds)
        return Res;
    }
    return {true, EntailMethod::Sampled, ""};
  };

  VarEnv Scratch;
  if (EntailResult Res = EnumerateGrid(EnumerateGrid, 0, Scratch); !Res.Holds)
    return Res;

  // Random tuples (values drawn from the grid and the full range).
  for (unsigned S = 0; S != Options.RandomSamples; ++S) {
    VarEnv Env;
    for (const std::string &V : Vars) {
      uint64_t Draw = R.next();
      Env[V] = (Draw & 1) ? ValueGrid[Draw % GridLimit]
                          : static_cast<uint32_t>(Draw >> 16);
    }
    if (!Solve(Env))
      continue;
    if (EntailResult Res = CheckEnv(Env); !Res.Holds)
      return Res;
  }

  return {true, EntailMethod::Sampled, ""};
}

EntailResult qcc::logic::entails(const BoundExpr &P, const BoundExpr &Q,
                                 const std::vector<Cmp> &Assumptions,
                                 const EntailOptions &Options,
                                 EntailMemo *Memo) {
  if (!Memo)
    return entailsImpl(P, Q, Assumptions, Options);
  // Assumption-carrying queries depend on more than (P, Q); they bypass
  // the verdict table — but not the normal-form cache, since the
  // symbolic method never reads the assumptions. The exception is
  // symbolic-only mode, where no method reads them either: there the
  // verdict is a pure function of (P, Q) and the table serves every
  // query. Everything the analyzer's symbolic-only runs emit outside
  // the If rule's path-sensitive sides is assumption-free anyway.
  if (!Assumptions.empty() && !Options.SymbolicOnly)
    return entailsImpl(P, Q, Assumptions, Options, &Memo->norms());
  if (const EntailResult *Cached = Memo->lookup(P, Q))
    return *Cached;
  EntailResult R = entailsImpl(P, Q, Assumptions, Options, &Memo->norms());
  Memo->insert(P, Q, R);
  return R;
}
