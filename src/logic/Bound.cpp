//===- logic/Bound.cpp - Symbolic quantitative assertions -----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Bound.h"

#include <atomic>
#include <cassert>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

using namespace qcc;
using namespace qcc::logic;

//===----------------------------------------------------------------------===//
// Interning tables
//===----------------------------------------------------------------------===//
//
// Process-wide hash-consing for IntTermNode and BoundExprNode. Equality
// and hashing are *shallow*: kind plus scalar payload plus the pointer
// identity of children. Because the factories are the only construction
// path for analyzer-built terms, children are interned before parents,
// so shallow identity composes into full structural sharing bottom-up.
// Nodes from other construction paths (the store's decoder keeps its
// structural builders untouched — re-normalizing decoded trees through
// the folding factories would change stored golden fixtures) simply miss
// the table; every consumer already falls back to structural comparison.
//
// Read-mostly: lookups take a shared lock, insertion upgrades with a
// double-check. The table holds owning references, so interned nodes
// live for the process; a size cap bounds that footprint, after which
// construction degrades to plain allocation.

namespace {

constexpr size_t MaxInternedNodes = size_t(1) << 20;

uint64_t mixHash(uint64_t H, uint64_t V) {
  H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  return H;
}

uint64_t hashExtNat(const ExtNat &V) {
  return V.isInfinite() ? ~uint64_t(0) : V.finiteValue();
}

uint64_t shallowHash(const IntTermNode &N) {
  uint64_t H = static_cast<uint64_t>(N.K);
  H = mixHash(H, static_cast<uint64_t>(N.Value));
  H = mixHash(H, std::hash<std::string>{}(N.Name));
  H = mixHash(H, static_cast<uint64_t>(N.Sign));
  H = mixHash(H, reinterpret_cast<uintptr_t>(N.Lhs.get()));
  H = mixHash(H, reinterpret_cast<uintptr_t>(N.Rhs.get()));
  return H;
}

bool shallowEqual(const IntTermNode &A, const IntTermNode &B) {
  return A.K == B.K && A.Value == B.Value && A.Name == B.Name &&
         A.Sign == B.Sign && A.Lhs.get() == B.Lhs.get() &&
         A.Rhs.get() == B.Rhs.get();
}

uint64_t shallowHash(const BoundExprNode &N) {
  uint64_t H = static_cast<uint64_t>(N.K);
  H = mixHash(H, hashExtNat(N.Value));
  H = mixHash(H, std::hash<std::string>{}(N.Func));
  H = mixHash(H, N.Factor);
  H = mixHash(H, reinterpret_cast<uintptr_t>(N.Term.get()));
  if (N.Condition) {
    H = mixHash(H, static_cast<uint64_t>(N.Condition->Rel) + 1);
    H = mixHash(H, reinterpret_cast<uintptr_t>(N.Condition->Lhs.get()));
    H = mixHash(H, reinterpret_cast<uintptr_t>(N.Condition->Rhs.get()));
  }
  H = mixHash(H, reinterpret_cast<uintptr_t>(N.Lhs.get()));
  H = mixHash(H, reinterpret_cast<uintptr_t>(N.Rhs.get()));
  return H;
}

bool shallowEqual(const BoundExprNode &A, const BoundExprNode &B) {
  if (A.K != B.K || !(A.Value == B.Value) || A.Func != B.Func ||
      A.Factor != B.Factor || A.Term.get() != B.Term.get() ||
      A.Lhs.get() != B.Lhs.get() || A.Rhs.get() != B.Rhs.get())
    return false;
  if (A.Condition.has_value() != B.Condition.has_value())
    return false;
  if (A.Condition)
    return A.Condition->Rel == B.Condition->Rel &&
           A.Condition->Lhs.get() == B.Condition->Lhs.get() &&
           A.Condition->Rhs.get() == B.Condition->Rhs.get();
  return true;
}

template <typename NodeT> struct Interner {
  using Ptr = std::shared_ptr<const NodeT>;
  std::shared_mutex Mu;
  std::unordered_multimap<uint64_t, Ptr> Table;
  std::atomic<uint64_t> Hits{0};

  Ptr intern(NodeT N) {
    uint64_t H = shallowHash(N);
    {
      std::shared_lock<std::shared_mutex> Lock(Mu);
      auto Range = Table.equal_range(H);
      for (auto It = Range.first; It != Range.second; ++It)
        if (shallowEqual(*It->second, N)) {
          Hits.fetch_add(1, std::memory_order_relaxed);
          return It->second;
        }
    }
    std::unique_lock<std::shared_mutex> Lock(Mu);
    auto Range = Table.equal_range(H);
    for (auto It = Range.first; It != Range.second; ++It)
      if (shallowEqual(*It->second, N)) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        return It->second;
      }
    Ptr P = std::make_shared<const NodeT>(std::move(N));
    if (Table.size() < MaxInternedNodes)
      Table.emplace(H, P);
    return P;
  }

  uint64_t size() {
    std::shared_lock<std::shared_mutex> Lock(Mu);
    return Table.size();
  }
};

Interner<IntTermNode> &termInterner() {
  static Interner<IntTermNode> I;
  return I;
}

Interner<BoundExprNode> &boundInterner() {
  static Interner<BoundExprNode> I;
  return I;
}

IntTerm internTerm(IntTermNode N) { return termInterner().intern(std::move(N)); }

} // namespace

InternStats qcc::logic::internStats() {
  InternStats S;
  S.TermNodes = termInterner().size();
  S.BoundNodes = boundInterner().size();
  S.TermHits = termInterner().Hits.load(std::memory_order_relaxed);
  S.BoundHits = boundInterner().Hits.load(std::memory_order_relaxed);
  return S;
}

//===----------------------------------------------------------------------===//
// Integer terms
//===----------------------------------------------------------------------===//

namespace {

// Overflow-checked int64 arithmetic. Signed overflow is undefined
// behavior, and an evaluated term feeds directly into a certified bound,
// so a wrapped value could silently under-approximate. Out-of-range
// results are reported as "no value" instead; evalBound turns that into
// infinity, which only loses precision, never soundness.
bool checkedAdd(int64_t L, int64_t R, int64_t &Out) {
  return !__builtin_add_overflow(L, R, &Out);
}
bool checkedSub(int64_t L, int64_t R, int64_t &Out) {
  return !__builtin_sub_overflow(L, R, &Out);
}
bool checkedMul(int64_t L, int64_t R, int64_t &Out) {
  return !__builtin_mul_overflow(L, R, &Out);
}

// Terms denote mathematical integers, and the entailment sampler feeds
// them full-range 32-bit machine values, so int64 is not wide enough:
// n * n at n near 2^32 already exceeds it. Evaluation therefore runs in
// 128-bit arithmetic, which is exact for every term of multiplication
// depth the analyzer or sampler builds; the (astronomically rare) 128-bit
// overflow still reports "no value".
using Wide = __int128;

bool checkedAdd(Wide L, Wide R, Wide &Out) {
  return !__builtin_add_overflow(L, R, &Out);
}
bool checkedSub(Wide L, Wide R, Wide &Out) {
  return !__builtin_sub_overflow(L, R, &Out);
}
bool checkedMul(Wide L, Wide R, Wide &Out) {
  return !__builtin_mul_overflow(L, R, &Out);
}

std::optional<Wide> evalWide(const IntTerm &T, const VarEnv &Env) {
  switch (T->K) {
  case IntTermNode::Kind::Const:
    return static_cast<Wide>(T->Value);
  case IntTermNode::Kind::Var: {
    auto It = Env.find(T->Name);
    if (It == Env.end())
      return std::nullopt;
    uint32_t Raw = It->second;
    return T->Sign == VarSign::Signed
               ? static_cast<Wide>(static_cast<int32_t>(Raw))
               : static_cast<Wide>(Raw);
  }
  case IntTermNode::Kind::Add: {
    auto L = evalWide(T->Lhs, Env), R = evalWide(T->Rhs, Env);
    Wide V;
    if (!L || !R || !checkedAdd(*L, *R, V))
      return std::nullopt;
    return V;
  }
  case IntTermNode::Kind::Sub: {
    auto L = evalWide(T->Lhs, Env), R = evalWide(T->Rhs, Env);
    Wide V;
    if (!L || !R || !checkedSub(*L, *R, V))
      return std::nullopt;
    return V;
  }
  case IntTermNode::Kind::Mul: {
    auto L = evalWide(T->Lhs, Env), R = evalWide(T->Rhs, Env);
    Wide V;
    if (!L || !R || !checkedMul(*L, *R, V))
      return std::nullopt;
    return V;
  }
  case IntTermNode::Kind::DivC: {
    auto L = evalWide(T->Lhs, Env);
    // The divC factory asserts a positive divisor, but a term built by
    // hand (or corrupted by the fuzzer's mutator) may violate that;
    // refuse to evaluate rather than divide by zero.
    if (!L || T->Value <= 0)
      return std::nullopt;
    return *L / static_cast<Wide>(T->Value);
  }
  }
  return std::nullopt;
}

constexpr Wide Uint64Max =
    static_cast<Wide>(std::numeric_limits<uint64_t>::max());

// Exact base-2 logarithms of values the 64-bit helpers cannot reach.
uint32_t floorLog2Wide(Wide V) {
  if (V <= Uint64Max)
    return floorLog2(static_cast<uint64_t>(V));
  return 64 + floorLog2(static_cast<uint64_t>(V >> 64));
}
uint32_t ceilLog2Wide(Wide V) {
  uint32_t Floor = floorLog2Wide(V);
  return (V & (V - 1)) == 0 ? Floor : Floor + 1;
}

} // namespace

IntTerm IntTermNode::constant(int64_t V) {
  IntTermNode N;
  N.K = Kind::Const;
  N.Value = V;
  return internTerm(std::move(N));
}

IntTerm IntTermNode::var(std::string Name, VarSign Sign) {
  IntTermNode N;
  N.K = Kind::Var;
  N.Name = std::move(Name);
  N.Sign = Sign;
  return internTerm(std::move(N));
}

IntTerm IntTermNode::add(IntTerm L, IntTerm R) {
  // Fold constants only when the result fits; otherwise keep the
  // symbolic node and let evaluation report the overflow.
  if (int64_t V; L->K == Kind::Const && R->K == Kind::Const &&
                 checkedAdd(L->Value, R->Value, V))
    return constant(V);
  IntTermNode N;
  N.K = Kind::Add;
  N.Lhs = std::move(L);
  N.Rhs = std::move(R);
  return internTerm(std::move(N));
}

IntTerm IntTermNode::sub(IntTerm L, IntTerm R) {
  if (int64_t V; L->K == Kind::Const && R->K == Kind::Const &&
                 checkedSub(L->Value, R->Value, V))
    return constant(V);
  IntTermNode N;
  N.K = Kind::Sub;
  N.Lhs = std::move(L);
  N.Rhs = std::move(R);
  return internTerm(std::move(N));
}

IntTerm IntTermNode::mul(IntTerm L, IntTerm R) {
  if (int64_t V; L->K == Kind::Const && R->K == Kind::Const &&
                 checkedMul(L->Value, R->Value, V))
    return constant(V);
  IntTermNode N;
  N.K = Kind::Mul;
  N.Lhs = std::move(L);
  N.Rhs = std::move(R);
  return internTerm(std::move(N));
}

IntTerm IntTermNode::divC(IntTerm L, int64_t Divisor) {
  assert(Divisor > 0 && "divC needs a positive constant divisor");
  if (L->K == Kind::Const)
    return constant(L->Value / Divisor);
  IntTermNode N;
  N.K = Kind::DivC;
  N.Lhs = std::move(L);
  N.Value = Divisor;
  return internTerm(std::move(N));
}

std::string IntTermNode::str() const {
  switch (K) {
  case Kind::Const:
    return std::to_string(Value);
  case Kind::Var:
    return Name;
  case Kind::Add:
    return "(" + Lhs->str() + " + " + Rhs->str() + ")";
  case Kind::Sub:
    return "(" + Lhs->str() + " - " + Rhs->str() + ")";
  case Kind::Mul:
    return "(" + Lhs->str() + " * " + Rhs->str() + ")";
  case Kind::DivC:
    return "(" + Lhs->str() + " / " + std::to_string(Value) + ")";
  }
  return "<bad term>";
}

std::optional<int64_t> qcc::logic::evalIntTerm(const IntTerm &T,
                                               const VarEnv &Env) {
  auto V = evalWide(T, Env);
  if (!V || *V > static_cast<Wide>(std::numeric_limits<int64_t>::max()) ||
      *V < static_cast<Wide>(std::numeric_limits<int64_t>::min()))
    return std::nullopt;
  return static_cast<int64_t>(*V);
}

void qcc::logic::collectIntTermVars(const IntTerm &T,
                                    std::set<std::string> &Out) {
  if (!T)
    return;
  if (T->K == IntTermNode::Kind::Var)
    Out.insert(T->Name);
  collectIntTermVars(T->Lhs, Out);
  collectIntTermVars(T->Rhs, Out);
}

IntTerm qcc::logic::substIntTerm(const IntTerm &T, const std::string &Name,
                                 const IntTerm &Replacement) {
  switch (T->K) {
  case IntTermNode::Kind::Const:
    return T;
  case IntTermNode::Kind::Var:
    return T->Name == Name ? Replacement : T;
  case IntTermNode::Kind::Add:
    return IntTermNode::add(substIntTerm(T->Lhs, Name, Replacement),
                            substIntTerm(T->Rhs, Name, Replacement));
  case IntTermNode::Kind::Sub:
    return IntTermNode::sub(substIntTerm(T->Lhs, Name, Replacement),
                            substIntTerm(T->Rhs, Name, Replacement));
  case IntTermNode::Kind::Mul:
    return IntTermNode::mul(substIntTerm(T->Lhs, Name, Replacement),
                            substIntTerm(T->Rhs, Name, Replacement));
  case IntTermNode::Kind::DivC:
    return IntTermNode::divC(substIntTerm(T->Lhs, Name, Replacement),
                             T->Value);
  }
  return T;
}

std::string Cmp::str() const {
  const char *R = "";
  switch (Rel) {
  case CmpRel::Lt: R = "<"; break;
  case CmpRel::Le: R = "<="; break;
  case CmpRel::Gt: R = ">"; break;
  case CmpRel::Ge: R = ">="; break;
  case CmpRel::Eq: R = "=="; break;
  case CmpRel::Ne: R = "!="; break;
  }
  return Lhs->str() + " " + R + " " + Rhs->str();
}

std::optional<bool> qcc::logic::evalCmp(const Cmp &C, const VarEnv &Env) {
  // Compare at full width: a comparison whose sides are exact 128-bit
  // values never reports a wrapped verdict.
  auto L = evalWide(C.Lhs, Env), R = evalWide(C.Rhs, Env);
  if (!L || !R)
    return std::nullopt;
  switch (C.Rel) {
  case CmpRel::Lt: return *L < *R;
  case CmpRel::Le: return *L <= *R;
  case CmpRel::Gt: return *L > *R;
  case CmpRel::Ge: return *L >= *R;
  case CmpRel::Eq: return *L == *R;
  case CmpRel::Ne: return *L != *R;
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Bound expressions
//===----------------------------------------------------------------------===//

static BoundExpr makeNode(BoundExprNode N) {
  return boundInterner().intern(std::move(N));
}

BoundExpr qcc::logic::bConst(ExtNat V) {
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Const;
  N.Value = V;
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bZero() { return bConst(ExtNat(0)); }

BoundExpr qcc::logic::bBottom() { return bConst(ExtNat::infinity()); }

BoundExpr qcc::logic::bMetric(std::string Function) {
  BoundExprNode N;
  N.K = BoundExprNode::Kind::MetricVar;
  N.Func = std::move(Function);
  return makeNode(std::move(N));
}

static bool isConstZero(const BoundExpr &E) {
  return E->K == BoundExprNode::Kind::Const && E->Value == ExtNat(0);
}

static bool isConstInf(const BoundExpr &E) {
  return E->K == BoundExprNode::Kind::Const && E->Value.isInfinite();
}

BoundExpr qcc::logic::bAdd(BoundExpr L, BoundExpr R) {
  if (isConstZero(L))
    return R;
  if (isConstZero(R))
    return L;
  if (isConstInf(L) || isConstInf(R))
    return bBottom();
  if (L->K == BoundExprNode::Kind::Const &&
      R->K == BoundExprNode::Kind::Const)
    return bConst(L->Value + R->Value);
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Add;
  N.Lhs = std::move(L);
  N.Rhs = std::move(R);
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bMax(BoundExpr L, BoundExpr R) {
  if (isConstZero(L))
    return R;
  if (isConstZero(R))
    return L;
  if (isConstInf(L) || isConstInf(R))
    return bBottom();
  if (L->K == BoundExprNode::Kind::Const &&
      R->K == BoundExprNode::Kind::Const)
    return bConst(max(L->Value, R->Value));
  if (structurallyEqual(L, R))
    return L;
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Max;
  N.Lhs = std::move(L);
  N.Rhs = std::move(R);
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bMul(BoundExpr L, BoundExpr R) {
  if (isConstZero(L) || isConstZero(R))
    return bZero();
  if (L->K == BoundExprNode::Kind::Const && L->Value == ExtNat(1))
    return R;
  if (R->K == BoundExprNode::Kind::Const && R->Value == ExtNat(1))
    return L;
  if (L->K == BoundExprNode::Kind::Const &&
      R->K == BoundExprNode::Kind::Const)
    return bConst(L->Value * R->Value);
  // A finite constant factor becomes a Scale, keeping the expression in
  // the symbolically checkable fragment.
  if (L->K == BoundExprNode::Kind::Const && L->Value.isFinite())
    return bScale(L->Value.finiteValue(), std::move(R));
  if (R->K == BoundExprNode::Kind::Const && R->Value.isFinite())
    return bScale(R->Value.finiteValue(), std::move(L));
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Mul;
  N.Lhs = std::move(L);
  N.Rhs = std::move(R);
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bScale(uint64_t K, BoundExpr E) {
  if (K == 0)
    return bZero();
  if (K == 1)
    return E;
  if (E->K == BoundExprNode::Kind::Const)
    return bConst(ExtNat(K) * E->Value);
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Scale;
  N.Factor = K;
  N.Lhs = std::move(E);
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bLog2W(IntTerm T) {
  if (T->K == IntTermNode::Kind::Const) {
    if (T->Value < 0)
      return bBottom();
    if (T->Value <= 1)
      return bZero();
    return bConst(ExtNat(floorLog2(static_cast<uint64_t>(T->Value))));
  }
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Log2W;
  N.Term = std::move(T);
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bLog2C(IntTerm T) {
  if (T->K == IntTermNode::Kind::Const) {
    if (T->Value < 0)
      return bBottom();
    if (T->Value <= 1)
      return bZero();
    return bConst(ExtNat(ceilLog2(static_cast<uint64_t>(T->Value))));
  }
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Log2C;
  N.Term = std::move(T);
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bNatTerm(IntTerm T) {
  if (T->K == IntTermNode::Kind::Const)
    return T->Value < 0 ? bBottom()
                        : bConst(ExtNat(static_cast<uint64_t>(T->Value)));
  BoundExprNode N;
  N.K = BoundExprNode::Kind::NatTerm;
  N.Term = std::move(T);
  return makeNode(std::move(N));
}

/// Evaluates a comparison whose two sides are constants.
static std::optional<bool> constCmp(const Cmp &C) {
  if (C.Lhs->K != IntTermNode::Kind::Const ||
      C.Rhs->K != IntTermNode::Kind::Const)
    return std::nullopt;
  return evalCmp(C, {});
}

BoundExpr qcc::logic::bGuard(Cmp C, BoundExpr E) {
  if (auto B = constCmp(C))
    return *B ? E : bBottom();
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Guard;
  N.Condition = std::move(C);
  N.Lhs = std::move(E);
  return makeNode(std::move(N));
}

BoundExpr qcc::logic::bIte(Cmp C, BoundExpr Then, BoundExpr Else) {
  if (auto B = constCmp(C))
    return *B ? Then : Else;
  if (structurallyEqual(Then, Else))
    return Then;
  BoundExprNode N;
  N.K = BoundExprNode::Kind::Ite;
  N.Condition = std::move(C);
  N.Lhs = std::move(Then);
  N.Rhs = std::move(Else);
  return makeNode(std::move(N));
}

std::string BoundExprNode::str() const {
  switch (K) {
  case Kind::Const:
    return Value.str();
  case Kind::MetricVar:
    return "M(" + Func + ")";
  case Kind::Add:
    return Lhs->str() + " + " + Rhs->str();
  case Kind::Max:
    return "max(" + Lhs->str() + ", " + Rhs->str() + ")";
  case Kind::Mul: {
    auto Wrap = [](const BoundExpr &E) {
      bool NeedsParens = E->K == Kind::Add || E->K == Kind::Max;
      return NeedsParens ? "(" + E->str() + ")" : E->str();
    };
    return Wrap(Lhs) + " * " + Wrap(Rhs);
  }
  case Kind::Scale: {
    bool NeedsParens = Lhs->K == Kind::Add;
    return std::to_string(Factor) + " * " +
           (NeedsParens ? "(" + Lhs->str() + ")" : Lhs->str());
  }
  case Kind::Log2W:
    return "log2(" + Term->str() + ")";
  case Kind::Log2C:
    return "clog2(" + Term->str() + ")";
  case Kind::NatTerm:
    return "[" + Term->str() + "]";
  case Kind::Guard:
    return "(" + Condition->str() + " ? " + Lhs->str() + " : oo)";
  case Kind::Ite:
    return "(" + Condition->str() + " ? " + Lhs->str() + " : " +
           Rhs->str() + ")";
  }
  return "<bad bound>";
}

namespace {
/// Memo for shared bound nodes: substitution and the smart constructors
/// produce DAGs (the same subtree reachable through several parents), so
/// plain structural recursion re-evaluates shared nodes once per path.
/// Only nodes with more than one owner are worth caching.
using EvalMemo = std::unordered_map<const BoundExprNode *, ExtNat>;
} // namespace

static ExtNat evalBoundMemo(const BoundExpr &E, const StackMetric &M,
                            const VarEnv &Env, EvalMemo &Memo);

static ExtNat evalBoundNode(const BoundExpr &E, const StackMetric &M,
                            const VarEnv &Env, EvalMemo &Memo) {
  switch (E->K) {
  case BoundExprNode::Kind::Const:
    return E->Value;
  case BoundExprNode::Kind::MetricVar:
    return ExtNat(M.cost(E->Func));
  case BoundExprNode::Kind::Add:
    return evalBoundMemo(E->Lhs, M, Env, Memo) +
           evalBoundMemo(E->Rhs, M, Env, Memo);
  case BoundExprNode::Kind::Max:
    return max(evalBoundMemo(E->Lhs, M, Env, Memo),
               evalBoundMemo(E->Rhs, M, Env, Memo));
  case BoundExprNode::Kind::Mul:
    return evalBoundMemo(E->Lhs, M, Env, Memo) *
           evalBoundMemo(E->Rhs, M, Env, Memo);
  case BoundExprNode::Kind::Scale:
    return ExtNat(E->Factor) * evalBoundMemo(E->Lhs, M, Env, Memo);
  case BoundExprNode::Kind::Log2W: {
    auto V = evalWide(E->Term, Env);
    if (!V)
      return ExtNat::infinity(); // Unbound variable: no guarantee.
    if (*V < 0)
      return ExtNat::infinity(); // Paper convention: log2(<0) = +oo.
    if (*V <= 1)
      return ExtNat(0); // Paper convention: log2(0) = 0 (and log2(1) = 0).
    return ExtNat(floorLog2Wide(*V));
  }
  case BoundExprNode::Kind::Log2C: {
    auto V = evalWide(E->Term, Env);
    if (!V)
      return ExtNat::infinity();
    if (*V < 0)
      return ExtNat::infinity();
    if (*V <= 1)
      return ExtNat(0);
    return ExtNat(ceilLog2Wide(*V));
  }
  case BoundExprNode::Kind::NatTerm: {
    // Negative values clamp to zero's complement — infinity — and values
    // past uint64 saturate upward; both directions only ever enlarge the
    // bound, never shrink it.
    auto V = evalWide(E->Term, Env);
    if (!V || *V < 0)
      return ExtNat::infinity();
    if (*V > Uint64Max)
      return ExtNat::infinity();
    return ExtNat(static_cast<uint64_t>(*V));
  }
  case BoundExprNode::Kind::Guard: {
    auto C = evalCmp(*E->Condition, Env);
    if (!C || !*C)
      return ExtNat::infinity();
    return evalBoundMemo(E->Lhs, M, Env, Memo);
  }
  case BoundExprNode::Kind::Ite: {
    auto C = evalCmp(*E->Condition, Env);
    if (!C)
      return ExtNat::infinity();
    return *C ? evalBoundMemo(E->Lhs, M, Env, Memo)
              : evalBoundMemo(E->Rhs, M, Env, Memo);
  }
  }
  return ExtNat::infinity();
}

static ExtNat evalBoundMemo(const BoundExpr &E, const StackMetric &M,
                            const VarEnv &Env, EvalMemo &Memo) {
  if (E.use_count() <= 1)
    return evalBoundNode(E, M, Env, Memo);
  auto It = Memo.find(E.get());
  if (It != Memo.end())
    return It->second;
  ExtNat V = evalBoundNode(E, M, Env, Memo);
  Memo.emplace(E.get(), V);
  return V;
}

ExtNat qcc::logic::evalBound(const BoundExpr &E, const StackMetric &M,
                             const VarEnv &Env) {
  EvalMemo Memo;
  return evalBoundMemo(E, M, Env, Memo);
}

void qcc::logic::collectBoundVars(const BoundExpr &E,
                                  std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->Term)
    collectIntTermVars(E->Term, Out);
  if (E->Condition) {
    collectIntTermVars(E->Condition->Lhs, Out);
    collectIntTermVars(E->Condition->Rhs, Out);
  }
  collectBoundVars(E->Lhs, Out);
  collectBoundVars(E->Rhs, Out);
}

void qcc::logic::collectBoundMetricVars(const BoundExpr &E,
                                        std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->K == BoundExprNode::Kind::MetricVar)
    Out.insert(E->Func);
  collectBoundMetricVars(E->Lhs, Out);
  collectBoundMetricVars(E->Rhs, Out);
}

BoundExpr qcc::logic::substBound(const BoundExpr &E, const std::string &Name,
                                 const IntTerm &Replacement) {
  return substBoundAll(E, {{Name, Replacement}});
}

IntTerm qcc::logic::substIntTermAll(const IntTerm &T,
                                    const std::map<std::string, IntTerm> &Sub) {
  // Identity-preserving: a subtree none of whose variables are substituted
  // comes back as the *same* node (no rebuild), so unchanged regions stay
  // shared — which keeps structurallyEqual's pointer short-circuit and
  // evalBound's memo effective after substitution.
  switch (T->K) {
  case IntTermNode::Kind::Const:
    return T;
  case IntTermNode::Kind::Var: {
    auto It = Sub.find(T->Name);
    return It == Sub.end() ? T : It->second;
  }
  case IntTermNode::Kind::Add: {
    IntTerm L = substIntTermAll(T->Lhs, Sub);
    IntTerm R = substIntTermAll(T->Rhs, Sub);
    if (L == T->Lhs && R == T->Rhs)
      return T;
    return IntTermNode::add(std::move(L), std::move(R));
  }
  case IntTermNode::Kind::Sub: {
    IntTerm L = substIntTermAll(T->Lhs, Sub);
    IntTerm R = substIntTermAll(T->Rhs, Sub);
    if (L == T->Lhs && R == T->Rhs)
      return T;
    return IntTermNode::sub(std::move(L), std::move(R));
  }
  case IntTermNode::Kind::Mul: {
    IntTerm L = substIntTermAll(T->Lhs, Sub);
    IntTerm R = substIntTermAll(T->Rhs, Sub);
    if (L == T->Lhs && R == T->Rhs)
      return T;
    return IntTermNode::mul(std::move(L), std::move(R));
  }
  case IntTermNode::Kind::DivC: {
    IntTerm L = substIntTermAll(T->Lhs, Sub);
    if (L == T->Lhs)
      return T;
    return IntTermNode::divC(std::move(L), T->Value);
  }
  }
  return T;
}

BoundExpr
qcc::logic::substBoundAll(const BoundExpr &E,
                          const std::map<std::string, IntTerm> &Sub) {
  // Identity-preserving, like substIntTermAll: untouched subtrees are
  // returned as-is instead of being rebuilt through the smart
  // constructors.
  if (Sub.empty())
    return E;
  switch (E->K) {
  case BoundExprNode::Kind::Const:
  case BoundExprNode::Kind::MetricVar:
    return E;
  case BoundExprNode::Kind::Add: {
    BoundExpr L = substBoundAll(E->Lhs, Sub);
    BoundExpr R = substBoundAll(E->Rhs, Sub);
    if (L == E->Lhs && R == E->Rhs)
      return E;
    return bAdd(std::move(L), std::move(R));
  }
  case BoundExprNode::Kind::Max: {
    BoundExpr L = substBoundAll(E->Lhs, Sub);
    BoundExpr R = substBoundAll(E->Rhs, Sub);
    if (L == E->Lhs && R == E->Rhs)
      return E;
    return bMax(std::move(L), std::move(R));
  }
  case BoundExprNode::Kind::Mul: {
    BoundExpr L = substBoundAll(E->Lhs, Sub);
    BoundExpr R = substBoundAll(E->Rhs, Sub);
    if (L == E->Lhs && R == E->Rhs)
      return E;
    return bMul(std::move(L), std::move(R));
  }
  case BoundExprNode::Kind::Scale: {
    BoundExpr L = substBoundAll(E->Lhs, Sub);
    if (L == E->Lhs)
      return E;
    return bScale(E->Factor, std::move(L));
  }
  case BoundExprNode::Kind::Log2W: {
    IntTerm T = substIntTermAll(E->Term, Sub);
    if (T == E->Term)
      return E;
    return bLog2W(std::move(T));
  }
  case BoundExprNode::Kind::Log2C: {
    IntTerm T = substIntTermAll(E->Term, Sub);
    if (T == E->Term)
      return E;
    return bLog2C(std::move(T));
  }
  case BoundExprNode::Kind::NatTerm: {
    IntTerm T = substIntTermAll(E->Term, Sub);
    if (T == E->Term)
      return E;
    return bNatTerm(std::move(T));
  }
  case BoundExprNode::Kind::Guard: {
    IntTerm CL = substIntTermAll(E->Condition->Lhs, Sub);
    IntTerm CR = substIntTermAll(E->Condition->Rhs, Sub);
    BoundExpr L = substBoundAll(E->Lhs, Sub);
    if (CL == E->Condition->Lhs && CR == E->Condition->Rhs && L == E->Lhs)
      return E;
    Cmp C{std::move(CL), E->Condition->Rel, std::move(CR)};
    return bGuard(std::move(C), std::move(L));
  }
  case BoundExprNode::Kind::Ite: {
    IntTerm CL = substIntTermAll(E->Condition->Lhs, Sub);
    IntTerm CR = substIntTermAll(E->Condition->Rhs, Sub);
    BoundExpr L = substBoundAll(E->Lhs, Sub);
    BoundExpr R = substBoundAll(E->Rhs, Sub);
    if (CL == E->Condition->Lhs && CR == E->Condition->Rhs &&
        L == E->Lhs && R == E->Rhs)
      return E;
    Cmp C{std::move(CL), E->Condition->Rel, std::move(CR)};
    return bIte(std::move(C), std::move(L), std::move(R));
  }
  }
  return E;
}

static bool termEqual(const IntTerm &A, const IntTerm &B) {
  if (A == B)
    return true;
  if (!A || !B || A->K != B->K)
    return false;
  switch (A->K) {
  case IntTermNode::Kind::Const:
    return A->Value == B->Value;
  case IntTermNode::Kind::Var:
    return A->Name == B->Name && A->Sign == B->Sign;
  case IntTermNode::Kind::DivC:
    return A->Value == B->Value && termEqual(A->Lhs, B->Lhs);
  default:
    return termEqual(A->Lhs, B->Lhs) && termEqual(A->Rhs, B->Rhs);
  }
}

bool qcc::logic::structurallyEqual(const BoundExpr &A, const BoundExpr &B) {
  if (A == B)
    return true;
  if (!A || !B || A->K != B->K)
    return false;
  switch (A->K) {
  case BoundExprNode::Kind::Const:
    return A->Value == B->Value;
  case BoundExprNode::Kind::MetricVar:
    return A->Func == B->Func;
  case BoundExprNode::Kind::Add:
  case BoundExprNode::Kind::Max:
  case BoundExprNode::Kind::Mul:
    return structurallyEqual(A->Lhs, B->Lhs) &&
           structurallyEqual(A->Rhs, B->Rhs);
  case BoundExprNode::Kind::Scale:
    return A->Factor == B->Factor && structurallyEqual(A->Lhs, B->Lhs);
  case BoundExprNode::Kind::Log2W:
  case BoundExprNode::Kind::Log2C:
  case BoundExprNode::Kind::NatTerm:
    return termEqual(A->Term, B->Term);
  case BoundExprNode::Kind::Guard:
    return A->Condition->Rel == B->Condition->Rel &&
           termEqual(A->Condition->Lhs, B->Condition->Lhs) &&
           termEqual(A->Condition->Rhs, B->Condition->Rhs) &&
           structurallyEqual(A->Lhs, B->Lhs);
  case BoundExprNode::Kind::Ite:
    return A->Condition->Rel == B->Condition->Rel &&
           termEqual(A->Condition->Lhs, B->Condition->Lhs) &&
           termEqual(A->Condition->Rhs, B->Condition->Rhs) &&
           structurallyEqual(A->Lhs, B->Lhs) &&
           structurallyEqual(A->Rhs, B->Rhs);
  }
  return false;
}
