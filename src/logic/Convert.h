//===- logic/Convert.h - Clight expressions to logic terms ------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative conversion of (pure) Clight expressions into the logic's
/// integer-term and comparison languages, used by the Q:ASSIGN
/// substitution, by call-site argument instantiation, and by the Q:IF
/// rule's path assumptions. The conversion is *partial*: anything whose
/// mathematical reading could diverge from its 32-bit runtime value (large
/// constants, bitwise operators, wrapped arithmetic) is rejected, and the
/// caller falls back to a weaker but sound treatment.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_LOGIC_CONVERT_H
#define QCC_LOGIC_CONVERT_H

#include "clight/Clight.h"
#include "logic/Bound.h"

#include <optional>

namespace qcc {
namespace logic {

/// Converts \p E into an integer term over the enclosing function's
/// variables. \p F supplies per-variable signedness. Returns nullopt when
/// the expression has no faithful term reading.
std::optional<IntTerm> convertExprToTerm(const clight::Expr &E,
                                         const clight::Function &F);

/// Converts a boolean condition into a comparison, when it is one.
std::optional<Cmp> convertCondToCmp(const clight::Expr &E,
                                    const clight::Function &F);

/// The negation of a comparison (used for else-branch assumptions).
Cmp negateCmp(const Cmp &C);

} // namespace logic
} // namespace qcc

#endif // QCC_LOGIC_CONVERT_H
