//===- logic/Convert.cpp - Clight expressions to logic terms --------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "logic/Convert.h"

using namespace qcc;
using namespace qcc::logic;
namespace cl = qcc::clight;

std::optional<IntTerm>
qcc::logic::convertExprToTerm(const cl::Expr &E, const cl::Function &F) {
  switch (E.Kind) {
  case cl::ExprKind::IntConst:
    // Constants above INT32_MAX read differently as signed and unsigned;
    // reject them rather than guess.
    if (E.IntValue > 0x7fffffffu)
      return std::nullopt;
    return IntTermNode::constant(static_cast<int64_t>(E.IntValue));

  case cl::ExprKind::LocalRead: {
    auto It = F.VarSigns.find(E.Name);
    VarSign Sign = (It != F.VarSigns.end() &&
                    It->second == cl::Signedness::Signed)
                       ? VarSign::Signed
                       : VarSign::Unsigned;
    return IntTermNode::var(E.Name, Sign);
  }

  case cl::ExprKind::Unary: {
    if (E.UOp != cl::UnOp::Neg)
      return std::nullopt;
    auto T = convertExprToTerm(*E.Lhs, F);
    if (!T)
      return std::nullopt;
    return IntTermNode::sub(IntTermNode::constant(0), *T);
  }

  case cl::ExprKind::Binary: {
    auto L = convertExprToTerm(*E.Lhs, F);
    if (!L)
      return std::nullopt;
    auto R = convertExprToTerm(*E.Rhs, F);
    if (!R)
      return std::nullopt;
    switch (E.BOp) {
    case cl::BinOp::Add:
      return IntTermNode::add(*L, *R);
    case cl::BinOp::Sub:
      return IntTermNode::sub(*L, *R);
    case cl::BinOp::Mul:
      return IntTermNode::mul(*L, *R);
    case cl::BinOp::DivU:
    case cl::BinOp::DivS:
      // Division only by a positive constant (truncation toward zero
      // agrees between the term language and the machine for the
      // non-wrapping values the guards confine us to).
      if ((*R)->K == IntTermNode::Kind::Const && (*R)->Value > 0)
        return IntTermNode::divC(*L, (*R)->Value);
      return std::nullopt;
    case cl::BinOp::Shl:
      // A left shift by a small constant is a power-of-two scaling.
      if ((*R)->K == IntTermNode::Kind::Const && (*R)->Value >= 0 &&
          (*R)->Value < 31)
        return IntTermNode::mul(
            *L, IntTermNode::constant(int64_t(1) << (*R)->Value));
      return std::nullopt;
    case cl::BinOp::ShrU:
    case cl::BinOp::ShrS:
      if ((*R)->K == IntTermNode::Kind::Const && (*R)->Value >= 0 &&
          (*R)->Value < 31)
        return IntTermNode::divC(*L, int64_t(1) << (*R)->Value);
      return std::nullopt;
    default:
      return std::nullopt; // Bitwise and comparisons are not terms.
    }
  }

  default:
    return std::nullopt; // Globals, array reads, conditionals.
  }
}

std::optional<Cmp> qcc::logic::convertCondToCmp(const cl::Expr &E,
                                                const cl::Function &F) {
  if (E.Kind != cl::ExprKind::Binary)
    return std::nullopt;
  CmpRel Rel;
  switch (E.BOp) {
  case cl::BinOp::Eq: Rel = CmpRel::Eq; break;
  case cl::BinOp::Ne: Rel = CmpRel::Ne; break;
  case cl::BinOp::LtS: case cl::BinOp::LtU: Rel = CmpRel::Lt; break;
  case cl::BinOp::LeS: case cl::BinOp::LeU: Rel = CmpRel::Le; break;
  case cl::BinOp::GtS: case cl::BinOp::GtU: Rel = CmpRel::Gt; break;
  case cl::BinOp::GeS: case cl::BinOp::GeU: Rel = CmpRel::Ge; break;
  default:
    return std::nullopt;
  }
  auto L = convertExprToTerm(*E.Lhs, F);
  if (!L)
    return std::nullopt;
  auto R = convertExprToTerm(*E.Rhs, F);
  if (!R)
    return std::nullopt;
  return Cmp{*L, Rel, *R};
}

Cmp qcc::logic::negateCmp(const Cmp &C) {
  CmpRel Rel;
  switch (C.Rel) {
  case CmpRel::Lt: Rel = CmpRel::Ge; break;
  case CmpRel::Le: Rel = CmpRel::Gt; break;
  case CmpRel::Gt: Rel = CmpRel::Le; break;
  case CmpRel::Ge: Rel = CmpRel::Lt; break;
  case CmpRel::Eq: Rel = CmpRel::Ne; break;
  case CmpRel::Ne: Rel = CmpRel::Eq; break;
  default: Rel = C.Rel; break;
  }
  return Cmp{C.Lhs, Rel, C.Rhs};
}
