//===- analysis/CallGraph.cpp - Call graphs over Clight -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

using namespace qcc;
using namespace qcc::analysis;
namespace cl = qcc::clight;

namespace {

void collectCalls(const cl::Stmt &S, const cl::Program &P,
                  std::set<std::string> &Out) {
  if (S.Kind == cl::StmtKind::Call && P.findFunction(S.Callee))
    Out.insert(S.Callee);
  if (S.First)
    collectCalls(*S.First, P, Out);
  if (S.Second)
    collectCalls(*S.Second, P, Out);
}

} // namespace

CallGraph::CallGraph(const cl::Program &P) {
  for (const cl::Function &F : P.Functions) {
    std::set<std::string> Callees;
    if (F.Body)
      collectCalls(*F.Body, P, Callees);
    Edges[F.Name] = std::move(Callees);
  }

  // Iterative three-color DFS: gray-hit means a cycle; every node on the
  // stack from the gray node down is recursive.
  enum Color : uint8_t { White, Gray, Black };
  std::map<std::string, Color> Colors;
  for (const auto &[F, _] : Edges)
    Colors[F] = White;

  // Any function reaching a recursive component is NOT itself recursive;
  // only members of cycles are. Find cycle members: a node is recursive
  // iff it can reach itself. With corpus-sized graphs the simple
  // quadratic reachability check is plenty.
  auto Reaches = [this](const std::string &From,
                        const std::string &Target) {
    std::set<std::string> Seen;
    std::vector<const std::string *> Work;
    for (const std::string &C : Edges[From])
      Work.push_back(&C);
    while (!Work.empty()) {
      const std::string &N = *Work.back();
      Work.pop_back();
      if (N == Target)
        return true;
      if (!Seen.insert(N).second)
        continue;
      auto It = Edges.find(N);
      if (It == Edges.end())
        continue;
      for (const std::string &C : It->second)
        Work.push_back(&C);
    }
    return false;
  };
  for (const auto &[F, _] : Edges)
    if (Reaches(F, F))
      Recursive.insert(F);

  // Group the recursive functions into strongly connected components by
  // mutual reachability. Iterating the (ordered) Recursive set makes each
  // component surface at its smallest member, so the component order is
  // deterministic across runs and declaration orders.
  std::set<std::string> Assigned;
  for (const std::string &F : Recursive) {
    if (Assigned.count(F))
      continue;
    std::set<std::string> Comp{F};
    for (const std::string &G : Recursive)
      if (G != F && !Assigned.count(G) && Reaches(F, G) && Reaches(G, F))
        Comp.insert(G);
    for (const std::string &M : Comp)
      Assigned.insert(M);
    Components.push_back(std::move(Comp));
  }

  // Callee-first topological order via post-order DFS (cycles are cut at
  // recursive back edges; order among cycle members is name order, which
  // the map iteration already provides).
  std::set<std::string> Visited;
  std::vector<std::pair<std::string, bool>> Stack;
  for (const auto &[Root, _] : Edges) {
    if (Visited.count(Root))
      continue;
    Stack.push_back({Root, false});
    while (!Stack.empty()) {
      auto [Name, Expanded] = Stack.back();
      Stack.pop_back();
      if (Expanded) {
        Topo.push_back(Name);
        continue;
      }
      if (!Visited.insert(Name).second)
        continue;
      Stack.push_back({Name, true});
      for (const std::string &C : Edges[Name])
        if (!Visited.count(C))
          Stack.push_back({C, false});
    }
  }
}

const std::set<std::string> &
CallGraph::callees(const std::string &Function) const {
  auto It = Edges.find(Function);
  return It == Edges.end() ? EmptySet : It->second;
}
