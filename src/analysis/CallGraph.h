//===- analysis/CallGraph.h - Call graphs over Clight -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph of a Clight program, with recursion detection and a
/// callee-first topological order — the traversal skeleton of the
/// automatic stack analyzer (Paper section 5).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_ANALYSIS_CALLGRAPH_H
#define QCC_ANALYSIS_CALLGRAPH_H

#include "clight/Clight.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace qcc {
namespace analysis {

/// The static call graph: internal functions only (externals consume no
/// stack under stack metrics and are leaves by definition).
class CallGraph {
public:
  explicit CallGraph(const clight::Program &P);

  /// Direct internal callees of \p Function.
  const std::set<std::string> &callees(const std::string &Function) const;

  /// True if \p Function can reach itself (participates in recursion,
  /// directly or mutually).
  bool isRecursive(const std::string &Function) const {
    return Recursive.count(Function) != 0;
  }

  /// All functions on recursive cycles.
  const std::set<std::string> &recursiveFunctions() const {
    return Recursive;
  }

  /// Callee-first topological order of the non-recursive part; recursive
  /// functions appear after all their non-recursive (transitive) callees,
  /// in name order, so the analyzer can report them deterministically.
  const std::vector<std::string> &topologicalOrder() const { return Topo; }

  /// The recursive strongly connected components: each set groups the
  /// functions of one cycle family (mutually reachable recursive
  /// functions). Components are disjoint, cover recursiveFunctions()
  /// exactly, and are ordered by their (name-)smallest member — the
  /// incremental engine invalidates a whole component as a unit, since
  /// any member's bound can depend on every other member's body.
  const std::vector<std::set<std::string>> &recursiveComponents() const {
    return Components;
  }

private:
  std::map<std::string, std::set<std::string>> Edges;
  std::set<std::string> Recursive;
  std::vector<std::string> Topo;
  std::vector<std::set<std::string>> Components;
  std::set<std::string> EmptySet;
};

} // namespace analysis
} // namespace qcc

#endif // QCC_ANALYSIS_CALLGRAPH_H
