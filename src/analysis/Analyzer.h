//===- analysis/Analyzer.h - Automatic stack analyzer -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic stack analyzer (Paper section 5): walks the call graph in
/// callee-first topological order and, for every non-recursive function,
/// derives a balanced constant specification {B_f} f {B_f} where B_f is
/// the peak metric-parametric stack requirement of the body. Every bound
/// comes with a derivation in the quantitative Hoare logic, validated by
/// the proof checker in symbolic-only entailment mode — "not only does
/// this simplify the verification, but it also allows interoperability
/// with stack bounds that have been interactively developed" (Paper
/// section 5): pre-seeded specifications (e.g. an interactively proved
/// logarithmic bound for a recursive callee) compose transparently.
///
/// Guarantee mirrored from the paper: the analyzer succeeds on every
/// well-formed program without recursion (function pointers cannot occur
/// in the subset at all).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_ANALYSIS_ANALYZER_H
#define QCC_ANALYSIS_ANALYZER_H

#include "analysis/CallGraph.h"
#include "logic/Builder.h"
#include "logic/Checker.h"
#include "logic/Forest.h"
#include "support/Diagnostics.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcc {
namespace analysis {

/// A cache-served bound: the callee-visible specification, the
/// derivation's node count (accounting parity with a fresh run), and the
/// validated external-form record (writeSpec+writeDerivation bytes — the
/// FuncStore record layout) that proof-artifact emission splices verbatim
/// instead of re-encoding a rebuilt tree.
struct ReusedBound {
  logic::FunctionSpec Spec;
  uint64_t ProofNodes = 0;
  std::string Record;
};

/// Hook letting a caller serve a function's already-checked bound from a
/// cache instead of re-deriving and re-checking it. The incremental
/// engine implements this over its function-level keys: lookup must only
/// return a bound that was accepted by the proof checker for a function
/// whose body, callee specifications, and analysis options are unchanged
/// — the analyzer trusts the hit exactly as it trusts a seeded spec.
/// The analyzer's walk (topological order, recursion and blocked-callee
/// reporting) runs identically either way, so diagnostics and the set of
/// analyzed functions are bit-identical to an uncached run.
class SpecCache {
public:
  virtual ~SpecCache() = default;

  /// A checked bound for \p Function, whose current Clight definition is
  /// \p F, or nullopt to analyze it freshly. \p Gamma is the evolving
  /// context at this point of the callee-first walk — it already holds
  /// the specifications of every callee of \p Function, which is exactly
  /// what a content key must cover for reuse to be sound. The returned
  /// record's derivation must reference statements of \p F's (current)
  /// body only (the cache validates this by decoding against \p F).
  virtual std::optional<ReusedBound>
  lookup(const std::string &Function, const clight::Function &F,
         const logic::FunctionContext &Gamma) = 0;

  /// Called after the proof checker accepted a freshly derived bound, so
  /// the cache can record it for the next run.
  virtual void fresh(const std::string &Function,
                     const logic::FunctionBound &FB) = 0;
};

/// The outcome of one analyzer run.
struct AnalysisResult {
  /// Specifications for every analyzed function (seeded specs included).
  logic::FunctionContext Gamma;
  /// Checked derivations, one per *freshly* analyzed function (cache hits
  /// live in Reused instead). The tree form the builder produced; kept
  /// for interactive proof emission and the SpecCache admit hook.
  std::map<std::string, logic::FunctionBound> Bounds;
  /// The same fresh derivations in flat form — one root per entry of
  /// Bounds. This is what the proof checker walked and what the store
  /// serializes from; the trees above are never re-encoded.
  logic::DerivationForest Forest;
  /// Cache-served bounds by function name: spec, node count, and the raw
  /// external record for zero-copy re-serialization.
  std::map<std::string, ReusedBound> Reused;
  /// Functions skipped because they participate in recursion and had no
  /// seeded specification.
  std::vector<std::string> SkippedRecursive;
  /// Functions whose checked bound was served by the SpecCache hook, in
  /// walk order (same names as Reused's keys).
  std::vector<std::string> ReusedFunctions;
  /// Wall time spent inside the proof checker validating fresh bounds.
  uint64_t ProofCheckMicros = 0;
  /// Proof-checker node visits per rule (fresh bounds only), indexed by
  /// static_cast<unsigned>(logic::Rule).
  std::array<uint64_t, logic::NumRules> ProofRuleNodes{};

  /// The verified *call bound* of \p Function: M(f) + B_f, the stack
  /// needed to call it (what Table 1 reports). Null when unknown.
  logic::BoundExpr callBound(const std::string &Function) const;

  /// Total derivation nodes across fresh forest roots and reused records
  /// (equals the node count an uncached run would report).
  uint64_t proofNodeCount() const;

  /// Name-to-record-bytes view of Reused, shaped for
  /// store::encodeProofsForest's splice path. Pointers into this result;
  /// valid while it lives.
  std::map<std::string, const std::string *> reusedRecords() const;
};

/// Runs the automatic analyzer over \p P.
///
/// \p SeededSpecs are trusted-by-derivation specifications for functions
/// the analyzer should not process itself (typically recursive functions
/// whose bounds were derived interactively); their derivations must have
/// been checked by the caller.
///
/// \p Sup, when given, is polled between functions and inside the proof
/// checker; a stopped analysis reports a "stopped" diagnostic and returns
/// the bounds completed so far, claiming nothing about the rest.
///
/// \p Cache, when given, may serve checked bounds for unchanged functions
/// (see SpecCache); the walk itself always runs in full.
AnalysisResult analyzeProgram(const clight::Program &P,
                              DiagnosticEngine &Diags,
                              logic::FunctionContext SeededSpecs = {},
                              Supervisor *Sup = nullptr,
                              SpecCache *Cache = nullptr);

} // namespace analysis
} // namespace qcc

#endif // QCC_ANALYSIS_ANALYZER_H
