//===- analysis/Analyzer.h - Automatic stack analyzer -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic stack analyzer (Paper section 5): walks the call graph in
/// callee-first topological order and, for every non-recursive function,
/// derives a balanced constant specification {B_f} f {B_f} where B_f is
/// the peak metric-parametric stack requirement of the body. Every bound
/// comes with a derivation in the quantitative Hoare logic, validated by
/// the proof checker in symbolic-only entailment mode — "not only does
/// this simplify the verification, but it also allows interoperability
/// with stack bounds that have been interactively developed" (Paper
/// section 5): pre-seeded specifications (e.g. an interactively proved
/// logarithmic bound for a recursive callee) compose transparently.
///
/// Guarantee mirrored from the paper: the analyzer succeeds on every
/// well-formed program without recursion (function pointers cannot occur
/// in the subset at all).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_ANALYSIS_ANALYZER_H
#define QCC_ANALYSIS_ANALYZER_H

#include "analysis/CallGraph.h"
#include "logic/Builder.h"
#include "logic/Checker.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace qcc {
namespace analysis {

/// The outcome of one analyzer run.
struct AnalysisResult {
  /// Specifications for every analyzed function (seeded specs included).
  logic::FunctionContext Gamma;
  /// Checked derivations, one per automatically analyzed function.
  std::map<std::string, logic::FunctionBound> Bounds;
  /// Functions skipped because they participate in recursion and had no
  /// seeded specification.
  std::vector<std::string> SkippedRecursive;

  /// The verified *call bound* of \p Function: M(f) + B_f, the stack
  /// needed to call it (what Table 1 reports). Null when unknown.
  logic::BoundExpr callBound(const std::string &Function) const;
};

/// Runs the automatic analyzer over \p P.
///
/// \p SeededSpecs are trusted-by-derivation specifications for functions
/// the analyzer should not process itself (typically recursive functions
/// whose bounds were derived interactively); their derivations must have
/// been checked by the caller.
///
/// \p Sup, when given, is polled between functions and inside the proof
/// checker; a stopped analysis reports a "stopped" diagnostic and returns
/// the bounds completed so far, claiming nothing about the rest.
AnalysisResult analyzeProgram(const clight::Program &P,
                              DiagnosticEngine &Diags,
                              logic::FunctionContext SeededSpecs = {},
                              Supervisor *Sup = nullptr);

} // namespace analysis
} // namespace qcc

#endif // QCC_ANALYSIS_ANALYZER_H
