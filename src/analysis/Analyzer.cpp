//===- analysis/Analyzer.cpp - Automatic stack analyzer -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include <chrono>

using namespace qcc;
using namespace qcc::analysis;
using namespace qcc::logic;

BoundExpr AnalysisResult::callBound(const std::string &Function) const {
  auto It = Gamma.find(Function);
  if (It == Gamma.end())
    return nullptr;
  return bAdd(bMetric(Function), It->second.Pre);
}

uint64_t AnalysisResult::proofNodeCount() const {
  uint64_t N = 0;
  for (const DerivationForest::Root &R : Forest.roots())
    N += R.End - R.Node;
  for (const auto &[Name, RB] : Reused)
    N += RB.ProofNodes;
  return N;
}

std::map<std::string, const std::string *>
AnalysisResult::reusedRecords() const {
  std::map<std::string, const std::string *> Out;
  for (const auto &[Name, RB] : Reused)
    Out.emplace(Name, &RB.Record);
  return Out;
}

AnalysisResult qcc::analysis::analyzeProgram(const clight::Program &P,
                                             DiagnosticEngine &Diags,
                                             FunctionContext SeededSpecs,
                                             Supervisor *Sup,
                                             SpecCache *Cache) {
  AnalysisResult Result;
  Result.Gamma = std::move(SeededSpecs);

  CallGraph CG(P);
  EntailOptions Opt;
  Opt.SymbolicOnly = true; // Auto derivations carry symbolic certificates.

  // One entailment memo for the whole run: every query below runs under
  // the same EntailOptions and with no assumptions, and interned bounds
  // recur heavily across functions (callee pre/post expressions), so the
  // builder's fixpoint probes and the checker's re-asks share answers.
  EntailMemo Memo;

  for (const std::string &Name : CG.topologicalOrder()) {
    if (Sup && Sup->stopRequested())
      break;
    if (Result.Gamma.count(Name))
      continue; // Seeded (e.g. interactively derived) specification.
    if (CG.isRecursive(Name)) {
      Result.SkippedRecursive.push_back(Name);
      Diags.warning(SourceLoc(),
                    "function '" + Name +
                        "' is recursive; the automatic analyzer only "
                        "handles non-recursive functions (derive its "
                        "bound interactively and seed it)");
      continue;
    }
    const clight::Function *F = P.findFunction(Name);
    if (!F)
      continue;

    // A callee without a specification (skipped recursive function in the
    // call chain) blocks this function too.
    bool Blocked = false;
    for (const std::string &Callee : CG.callees(Name)) {
      if (!Result.Gamma.count(Callee)) {
        Diags.warning(F->Loc, "function '" + Name +
                                  "' calls unanalyzed '" + Callee +
                                  "'; skipping");
        Result.SkippedRecursive.push_back(Name);
        Blocked = true;
        break;
      }
    }
    if (Blocked)
      continue;

    // A cache hit stands in for derive-and-check wholesale: the hook
    // guarantees the bound was checker-accepted for this exact body under
    // these exact callee specifications, so accepting it is the same
    // trust step as accepting a seeded spec — except the derivation is
    // still carried along for proof-artifact emission.
    if (Cache) {
      if (std::optional<ReusedBound> RB =
              Cache->lookup(Name, *F, Result.Gamma)) {
        Result.Gamma[Name] = RB->Spec;
        Result.ReusedFunctions.push_back(Name);
        Result.Reused.emplace(Name, std::move(*RB));
        continue;
      }
    }

    DerivationBuilder Builder(P, Result.Gamma, Opt);
    Builder.setMemo(&Memo);

    // Pass 1: the peak requirement of the body (nothing demanded after).
    PostCondition Q0{bZero(), bBottom(), bZero()};
    DerivationPtr Probe = Builder.buildStmt(F->Body.get(), Q0, *F, Diags);
    if (!Probe) {
      Diags.error(F->Loc, "automatic analysis failed for '" + Name + "'");
      continue;
    }
    BoundExpr Peak = Probe->Pre;

    // Pass 2: rebuild against the balanced specification {Peak} f {Peak}.
    DiagnosticEngine BuildDiags;
    auto FB = Builder.buildFunctionBound(Name, FunctionSpec::balanced(Peak),
                                         BuildDiags);
    if (!FB) {
      Diags.error(F->Loc, "automatic analysis failed for '" + Name +
                              "': " + BuildDiags.str());
      continue;
    }

    // Every automatic bound is validated by the proof checker before it
    // is reported (the paper's derivation-generation guarantee). The
    // check runs on the flat form: the tree is flattened once here and
    // the forest root doubles as the serialization source later, so a
    // rejected bound must also retract its root.
    uint32_t RootIdx = Result.Forest.addRoot(Name, FB->Spec, *FB->Body);
    ProofChecker Checker(P, &Builder.context(), Opt);
    Checker.setSupervisor(Sup);
    Checker.setMemo(&Memo);
    DiagnosticEngine CheckDiags;
    auto CheckStart = std::chrono::steady_clock::now();
    bool Accepted =
        Checker.checkFunctionBound(Result.Forest, RootIdx, CheckDiags);
    Result.ProofCheckMicros +=
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - CheckStart)
            .count();
    std::array<uint64_t, NumRules> Visited = Checker.ruleNodeCounts();
    for (unsigned I = 0; I != NumRules; ++I)
      Result.ProofRuleNodes[I] += Visited[I];
    if (!Accepted) {
      Result.Forest.popRoot();
      if (Checker.stopped()) {
        // The checker was halted mid-derivation: neither accept nor
        // reject the bound; the stop is reported once, below.
        continue;
      }
      Diags.error(F->Loc, "proof checker rejected the automatic "
                          "derivation for '" +
                              Name + "': " + CheckDiags.str());
      continue;
    }

    if (Cache)
      Cache->fresh(Name, *FB);
    Result.Gamma[Name] = FB->Spec;
    Result.Bounds.emplace(Name, std::move(*FB));
  }

  // Reported after the loop (not in its header) so a budget that trips on
  // the very last function still surfaces its cause.
  if (Sup && Sup->stopRequested())
    Diags.error(SourceLoc(), std::string("analysis stopped: ") +
                                 stopCauseName(Sup->cause()));

  return Result;
}
