//===- store/Serialize.cpp - Stable external form for proofs --------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "store/Serialize.h"

using namespace qcc;
using namespace qcc::store;
using namespace qcc::logic;

//===----------------------------------------------------------------------===//
// Integer terms
//===----------------------------------------------------------------------===//

// Every tree node is written kind-first; absent subtrees are a 0 presence
// byte so the reader never guesses a field's meaning from context.
namespace {

void writeOptTerm(ByteWriter &W, const IntTerm &T) {
  W.boolean(T != nullptr);
  if (T)
    writeIntTerm(W, T);
}

bool readOptTerm(ByteReader &R, IntTerm &T, unsigned Depth) {
  bool Present;
  if (!R.boolean(Present))
    return false;
  if (!Present) {
    T = nullptr;
    return true;
  }
  return readIntTerm(R, T, Depth);
}

} // namespace

void qcc::store::writeIntTerm(ByteWriter &W, const IntTerm &T) {
  W.u8(static_cast<uint8_t>(T->K));
  W.i64(T->Value);
  W.str(T->Name);
  W.u8(static_cast<uint8_t>(T->Sign));
  writeOptTerm(W, T->Lhs);
  writeOptTerm(W, T->Rhs);
}

bool qcc::store::readIntTerm(ByteReader &R, IntTerm &T, unsigned Depth) {
  if (Depth > MaxDecodeDepth)
    return R.fail();
  uint8_t Kind, Sign;
  int64_t Value;
  std::string Name;
  if (!R.u8(Kind) || Kind > static_cast<uint8_t>(IntTermNode::Kind::DivC))
    return R.fail();
  if (!R.i64(Value) || !R.str(Name) || !R.u8(Sign) || Sign > 1)
    return R.fail();
  IntTerm Lhs, Rhs;
  if (!readOptTerm(R, Lhs, Depth + 1) || !readOptTerm(R, Rhs, Depth + 1))
    return false;
  auto N = std::make_shared<IntTermNode>();
  N->K = static_cast<IntTermNode::Kind>(Kind);
  N->Value = Value;
  N->Name = std::move(Name);
  N->Sign = static_cast<VarSign>(Sign);
  N->Lhs = std::move(Lhs);
  N->Rhs = std::move(Rhs);
  // Structural obligations per kind: a decoded term must be evaluable,
  // not merely parseable.
  switch (N->K) {
  case IntTermNode::Kind::Const:
  case IntTermNode::Kind::Var:
    if (N->Lhs || N->Rhs)
      return R.fail();
    break;
  case IntTermNode::Kind::Add:
  case IntTermNode::Kind::Sub:
  case IntTermNode::Kind::Mul:
    if (!N->Lhs || !N->Rhs)
      return R.fail();
    break;
  case IntTermNode::Kind::DivC:
    if (!N->Lhs || N->Rhs)
      return R.fail();
    break;
  }
  T = std::move(N);
  return true;
}

//===----------------------------------------------------------------------===//
// Comparisons
//===----------------------------------------------------------------------===//

void qcc::store::writeCmp(ByteWriter &W, const Cmp &C) {
  writeIntTerm(W, C.Lhs);
  W.u8(static_cast<uint8_t>(C.Rel));
  writeIntTerm(W, C.Rhs);
}

bool qcc::store::readCmp(ByteReader &R, Cmp &C) {
  uint8_t Rel;
  if (!readIntTerm(R, C.Lhs))
    return false;
  if (!R.u8(Rel) || Rel > static_cast<uint8_t>(CmpRel::Ne))
    return R.fail();
  C.Rel = static_cast<CmpRel>(Rel);
  return readIntTerm(R, C.Rhs);
}

//===----------------------------------------------------------------------===//
// Bound expressions
//===----------------------------------------------------------------------===//

namespace {

void writeOptBound(ByteWriter &W, const BoundExpr &B) {
  W.boolean(B != nullptr);
  if (B)
    writeBound(W, B);
}

bool readOptBound(ByteReader &R, BoundExpr &B, unsigned Depth) {
  bool Present;
  if (!R.boolean(Present))
    return false;
  if (!Present) {
    B = nullptr;
    return true;
  }
  return readBound(R, B, Depth);
}

} // namespace

void qcc::store::writeBound(ByteWriter &W, const BoundExpr &B) {
  W.u8(static_cast<uint8_t>(B->K));
  W.boolean(B->Value.isInfinite());
  W.u64(B->Value.isInfinite() ? 0 : B->Value.finiteValue());
  W.str(B->Func);
  W.u64(B->Factor);
  writeOptTerm(W, B->Term);
  W.boolean(B->Condition.has_value());
  if (B->Condition)
    writeCmp(W, *B->Condition);
  writeOptBound(W, B->Lhs);
  writeOptBound(W, B->Rhs);
}

bool qcc::store::readBound(ByteReader &R, BoundExpr &B, unsigned Depth) {
  if (Depth > MaxDecodeDepth)
    return R.fail();
  uint8_t Kind;
  if (!R.u8(Kind) || Kind > static_cast<uint8_t>(BoundExprNode::Kind::Ite))
    return R.fail();
  bool Inf;
  uint64_t Value, Factor;
  std::string Func;
  if (!R.boolean(Inf) || !R.u64(Value) || !R.str(Func) || !R.u64(Factor))
    return false;
  IntTerm Term;
  if (!readOptTerm(R, Term, Depth + 1))
    return false;
  bool HasCond;
  std::optional<Cmp> Condition;
  if (!R.boolean(HasCond))
    return false;
  if (HasCond) {
    Cmp C;
    if (!readCmp(R, C))
      return false;
    Condition = std::move(C);
  }
  BoundExpr Lhs, Rhs;
  if (!readOptBound(R, Lhs, Depth + 1) || !readOptBound(R, Rhs, Depth + 1))
    return false;

  auto N = std::make_shared<BoundExprNode>();
  N->K = static_cast<BoundExprNode::Kind>(Kind);
  N->Value = Inf ? ExtNat::infinity() : ExtNat(Value);
  N->Func = std::move(Func);
  N->Factor = Factor;
  N->Term = std::move(Term);
  N->Condition = std::move(Condition);
  N->Lhs = std::move(Lhs);
  N->Rhs = std::move(Rhs);

  // Field obligations per kind, mirroring what evalBound dereferences, so
  // a corrupt blob can never decode into an expression that crashes the
  // evaluator or the entailment engine.
  using K = BoundExprNode::Kind;
  auto Need = [&](bool Lhs_, bool Rhs_, bool Term_, bool Cond_) {
    return (N->Lhs != nullptr) == Lhs_ && (N->Rhs != nullptr) == Rhs_ &&
           (N->Term != nullptr) == Term_ && N->Condition.has_value() == Cond_;
  };
  bool Shape = false;
  switch (N->K) {
  case K::Const:
    Shape = Need(false, false, false, false);
    break;
  case K::MetricVar:
    Shape = Need(false, false, false, false) && !N->Func.empty();
    break;
  case K::Add:
  case K::Max:
  case K::Mul:
    Shape = Need(true, true, false, false);
    break;
  case K::Scale:
    Shape = Need(true, false, false, false);
    break;
  case K::Log2W:
  case K::Log2C:
  case K::NatTerm:
    Shape = Need(false, false, true, false);
    break;
  case K::Guard:
    Shape = Need(true, false, false, true);
    break;
  case K::Ite:
    Shape = Need(true, true, false, true);
    break;
  }
  if (!Shape)
    return R.fail();
  B = std::move(N);
  return true;
}

//===----------------------------------------------------------------------===//
// Specifications and contexts
//===----------------------------------------------------------------------===//

void qcc::store::writeSpec(ByteWriter &W, const FunctionSpec &S) {
  writeBound(W, S.Pre);
  writeBound(W, S.Post);
  W.u64(S.ResultFacts.size());
  for (const Cmp &C : S.ResultFacts)
    writeCmp(W, C);
}

bool qcc::store::readSpec(ByteReader &R, FunctionSpec &S) {
  if (!readBound(R, S.Pre) || !readBound(R, S.Post))
    return false;
  uint64_t Count;
  if (!R.u64(Count) || Count > R.remaining())
    return R.fail();
  S.ResultFacts.clear();
  S.ResultFacts.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I != Count; ++I) {
    Cmp C;
    if (!readCmp(R, C))
      return false;
    S.ResultFacts.push_back(std::move(C));
  }
  return true;
}

void qcc::store::writeContext(ByteWriter &W, const FunctionContext &Gamma) {
  W.u64(Gamma.size());
  for (const auto &[Name, Spec] : Gamma) { // std::map: sorted, stable.
    W.str(Name);
    writeSpec(W, Spec);
  }
}

bool qcc::store::readContext(ByteReader &R, FunctionContext &Gamma) {
  uint64_t Count;
  if (!R.u64(Count) || Count > R.remaining())
    return R.fail();
  Gamma.clear();
  for (uint64_t I = 0; I != Count; ++I) {
    std::string Name;
    FunctionSpec Spec;
    if (!R.str(Name) || !readSpec(R, Spec))
      return false;
    Gamma.emplace(std::move(Name), std::move(Spec));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Derivations
//===----------------------------------------------------------------------===//

std::vector<const clight::Stmt *>
qcc::store::preorderStatements(const clight::Stmt *Root) {
  std::vector<const clight::Stmt *> Out;
  std::vector<const clight::Stmt *> Stack;
  if (Root)
    Stack.push_back(Root);
  while (!Stack.empty()) {
    const clight::Stmt *S = Stack.back();
    Stack.pop_back();
    Out.push_back(S);
    // Push Second first so First is visited first (preorder).
    if (S->Second)
      Stack.push_back(S->Second.get());
    if (S->First)
      Stack.push_back(S->First.get());
  }
  return Out;
}

namespace {
/// Statement index of a node proving no statement (Conseq wrappers built
/// before attachment never occur in checked derivations, but the format
/// keeps the possibility representable).
constexpr uint32_t NoStmt = 0xffffffffu;
} // namespace

bool qcc::store::writeDerivation(
    ByteWriter &W, const Derivation &D,
    const std::map<const clight::Stmt *, uint32_t> &Index) {
  W.u8(static_cast<uint8_t>(D.R));
  uint32_t StmtIdx = NoStmt;
  if (D.S) {
    auto It = Index.find(D.S);
    if (It == Index.end())
      return false; // Proves a statement outside its function's body.
    StmtIdx = It->second;
  }
  W.u32(StmtIdx);
  writeBound(W, D.Pre);
  writeBound(W, D.Post.OnSkip);
  writeBound(W, D.Post.OnBreak);
  writeBound(W, D.Post.OnReturn);
  W.boolean(D.FrameAmount != nullptr);
  if (D.FrameAmount)
    writeBound(W, D.FrameAmount);
  W.boolean(D.SupHint != nullptr);
  if (D.SupHint)
    writeBound(W, D.SupHint);
  W.u64(D.Children.size());
  for (const DerivationPtr &C : D.Children) {
    if (!C || !writeDerivation(W, *C, Index))
      return false;
  }
  return true;
}

bool qcc::store::readDerivation(ByteReader &R, DerivationPtr &D,
                                const std::vector<const clight::Stmt *> *Stmts,
                                unsigned Depth) {
  if (Depth > MaxDecodeDepth)
    return R.fail();
  uint8_t Rule;
  uint32_t StmtIdx;
  if (!R.u8(Rule) || Rule > static_cast<uint8_t>(logic::Rule::Conseq))
    return R.fail();
  if (!R.u32(StmtIdx))
    return false;
  auto Node = std::make_unique<Derivation>();
  Node->R = static_cast<logic::Rule>(Rule);
  if (Stmts && StmtIdx != NoStmt) {
    if (StmtIdx >= Stmts->size())
      return R.fail();
    Node->S = (*Stmts)[StmtIdx];
  }
  if (!readBound(R, Node->Pre, Depth + 1) ||
      !readBound(R, Node->Post.OnSkip, Depth + 1) ||
      !readBound(R, Node->Post.OnBreak, Depth + 1) ||
      !readBound(R, Node->Post.OnReturn, Depth + 1))
    return false;
  bool Present;
  if (!R.boolean(Present))
    return false;
  if (Present && !readBound(R, Node->FrameAmount, Depth + 1))
    return false;
  if (!R.boolean(Present))
    return false;
  if (Present && !readBound(R, Node->SupHint, Depth + 1))
    return false;
  uint64_t Children;
  // Each serialized child occupies well over one byte; a count exceeding
  // the bytes left is corruption, rejected before any allocation.
  if (!R.u64(Children) || Children > R.remaining())
    return R.fail();
  Node->Children.reserve(static_cast<size_t>(Children));
  for (uint64_t I = 0; I != Children; ++I) {
    DerivationPtr C;
    if (!readDerivation(R, C, Stmts, Depth + 1))
      return false;
    Node->Children.push_back(std::move(C));
  }
  D = std::move(Node);
  return true;
}

bool qcc::store::writeDerivationForest(
    ByteWriter &W, const logic::DerivationForest &Fo, uint32_t Node,
    const std::map<const clight::Stmt *, uint32_t> &Index) {
  // Preorder spans serialize as a linear scan: the tree writer visits
  // nodes in exactly this order, so emitting each node's header followed
  // by its direct-child count reproduces the recursive encoding byte for
  // byte without touching any pointers.
  for (uint32_t I = Node, E = Fo.end(Node); I != E; ++I) {
    W.u8(static_cast<uint8_t>(Fo.rule(I)));
    uint32_t StmtIdx = NoStmt;
    if (const clight::Stmt *S = Fo.stmt(I)) {
      auto It = Index.find(S);
      if (It == Index.end())
        return false; // Proves a statement outside its function's body.
      StmtIdx = It->second;
    }
    W.u32(StmtIdx);
    writeBound(W, Fo.pre(I));
    writeBound(W, Fo.skipPost(I));
    writeBound(W, Fo.breakPost(I));
    writeBound(W, Fo.returnPost(I));
    bool HasFrame = Fo.frameId(I) != logic::DerivationForest::NoBound;
    W.boolean(HasFrame);
    if (HasFrame)
      writeBound(W, Fo.frame(I));
    bool HasSup = Fo.supId(I) != logic::DerivationForest::NoBound;
    W.boolean(HasSup);
    if (HasSup)
      writeBound(W, Fo.sup(I));
    W.u64(Fo.childCount(I));
  }
  return true;
}

bool qcc::store::readDerivationForest(
    ByteReader &R, logic::DerivationForest &Fo, uint32_t &RootOut,
    const std::vector<const clight::Stmt *> *Stmts) {
  // One open ancestor per stack slot; a node is sealed when its last
  // child's subtree completes. The stack depth mirrors the recursion
  // depth of readDerivation, so the same MaxDecodeDepth cap applies.
  struct Open {
    uint32_t Index;
    uint64_t Remaining;
  };
  std::vector<Open> Stack;
  RootOut = Fo.numNodes();
  for (;;) {
    if (Stack.size() > MaxDecodeDepth)
      return R.fail();
    uint8_t Rule;
    uint32_t StmtIdx;
    if (!R.u8(Rule) || Rule > static_cast<uint8_t>(logic::Rule::Conseq))
      return R.fail();
    if (!R.u32(StmtIdx))
      return false;
    const clight::Stmt *S = nullptr;
    if (Stmts && StmtIdx != NoStmt) {
      if (StmtIdx >= Stmts->size())
        return R.fail();
      S = (*Stmts)[StmtIdx];
    }
    unsigned Depth = static_cast<unsigned>(Stack.size()) + 1;
    logic::BoundExpr Pre, Skip, Break, Return, Frame, Sup;
    if (!readBound(R, Pre, Depth) || !readBound(R, Skip, Depth) ||
        !readBound(R, Break, Depth) || !readBound(R, Return, Depth))
      return false;
    bool Present;
    if (!R.boolean(Present))
      return false;
    if (Present && !readBound(R, Frame, Depth))
      return false;
    if (!R.boolean(Present))
      return false;
    if (Present && !readBound(R, Sup, Depth))
      return false;
    uint64_t Children;
    // Each serialized child occupies well over one byte; a count exceeding
    // the bytes left is corruption, rejected before any allocation.
    if (!R.u64(Children) || Children > R.remaining())
      return R.fail();
    uint32_t I = Fo.pushNode(static_cast<logic::Rule>(Rule), S,
                             Fo.internBound(Pre), Fo.internBound(Skip),
                             Fo.internBound(Break), Fo.internBound(Return),
                             Fo.internBound(Frame), Fo.internBound(Sup));
    if (Children != 0) {
      Stack.push_back({I, Children});
      continue;
    }
    // Leaf complete: unwind every ancestor this finishes.
    while (!Stack.empty()) {
      Open &Top = Stack.back();
      if (--Top.Remaining != 0)
        break;
      Fo.sealNode(Top.Index);
      Stack.pop_back();
    }
    if (Stack.empty())
      return true;
  }
}

//===----------------------------------------------------------------------===//
// Proof artifacts
//===----------------------------------------------------------------------===//

std::string qcc::store::encodeProofs(
    const FunctionContext &Gamma,
    const std::map<std::string, FunctionBound> &Bounds,
    const clight::Program &P) {
  ByteWriter W;
  writeContext(W, Gamma);
  W.u64(Bounds.size());
  for (const auto &[Name, FB] : Bounds) {
    W.str(Name);
    writeSpec(W, FB.Spec);
    const clight::Function *F = P.findFunction(FB.Function);
    std::map<const clight::Stmt *, uint32_t> Index;
    if (F) {
      std::vector<const clight::Stmt *> Stmts =
          preorderStatements(F->Body.get());
      for (size_t I = 0; I != Stmts.size(); ++I)
        Index.emplace(Stmts[I], static_cast<uint32_t>(I));
    }
    if (!FB.Body || !writeDerivation(W, *FB.Body, Index))
      return {}; // Unindexable proof: persist nothing, not half a proof.
  }
  return W.take();
}

std::string qcc::store::encodeProofsForest(
    const FunctionContext &Gamma, const logic::DerivationForest &Fo,
    const clight::Program &P,
    const std::map<std::string, const std::string *> *Reused) {
  ByteWriter W;
  writeContext(W, Gamma);
  // Fresh roots and reused raw records merge in name order so the blob is
  // byte-identical to encodeProofs over the union (whose map sorts keys).
  std::map<std::string, uint32_t> Fresh;
  for (uint32_t RI = 0; RI != Fo.roots().size(); ++RI)
    Fresh.emplace(Fo.roots()[RI].Function, RI);
  static const std::map<std::string, const std::string *> NoReuse;
  const std::map<std::string, const std::string *> &Re =
      Reused ? *Reused : NoReuse;
  W.u64(Fresh.size() + Re.size());
  auto FI = Fresh.begin();
  auto RJ = Re.begin();
  while (FI != Fresh.end() || RJ != Re.end()) {
    bool TakeFresh =
        RJ == Re.end() || (FI != Fresh.end() && FI->first < RJ->first);
    if (TakeFresh) {
      const logic::DerivationForest::Root &Root = Fo.roots()[FI->second];
      W.str(Root.Function);
      writeSpec(W, Root.Spec);
      const clight::Function *F = P.findFunction(Root.Function);
      std::map<const clight::Stmt *, uint32_t> Index;
      if (F) {
        std::vector<const clight::Stmt *> Stmts =
            preorderStatements(F->Body.get());
        for (size_t I = 0; I != Stmts.size(); ++I)
          Index.emplace(Stmts[I], static_cast<uint32_t>(I));
      }
      if (!writeDerivationForest(W, Fo, Root.Node, Index))
        return {}; // Unindexable proof: persist nothing, not half a proof.
      ++FI;
    } else {
      // A FuncStore record is writeSpec+writeDerivation back to back —
      // exactly what follows the name here, so it splices verbatim.
      W.str(RJ->first);
      W.raw(*RJ->second);
      ++RJ;
    }
  }
  return W.take();
}

bool qcc::store::decodeProofsForest(const std::string &Blob,
                                    const clight::Program *P,
                                    ProofForest &Out) {
  ByteReader R(Blob);
  if (!readContext(R, Out.Gamma))
    return false;
  uint64_t Count;
  if (!R.u64(Count) || Count > R.remaining())
    return false;
  for (uint64_t I = 0; I != Count; ++I) {
    std::string Name;
    logic::FunctionSpec Spec;
    if (!R.str(Name) || !readSpec(R, Spec))
      return false;
    std::vector<const clight::Stmt *> Stmts;
    const clight::Function *F = P ? P->findFunction(Name) : nullptr;
    if (P && !F)
      return false; // Blob names a function the program does not have.
    if (F)
      Stmts = preorderStatements(F->Body.get());
    uint32_t Root;
    if (!readDerivationForest(R, Out.Forest, Root, F ? &Stmts : nullptr))
      return false;
    Out.Forest.addRootRecord(std::move(Name), std::move(Spec), Root);
  }
  return R.done(); // Trailing bytes are corruption, not padding.
}

bool qcc::store::decodeProofs(const std::string &Blob,
                              const clight::Program *P, ProofArtifacts &Out) {
  ByteReader R(Blob);
  if (!readContext(R, Out.Gamma))
    return false;
  uint64_t Count;
  if (!R.u64(Count) || Count > R.remaining())
    return false;
  Out.Bounds.clear();
  for (uint64_t I = 0; I != Count; ++I) {
    FunctionBound FB;
    if (!R.str(FB.Function) || !readSpec(R, FB.Spec))
      return false;
    std::vector<const clight::Stmt *> Stmts;
    const clight::Function *F = P ? P->findFunction(FB.Function) : nullptr;
    if (P && !F)
      return false; // Blob names a function the program does not have.
    if (F)
      Stmts = preorderStatements(F->Body.get());
    if (!readDerivation(R, FB.Body, F ? &Stmts : nullptr))
      return false;
    Out.Bounds.push_back(std::move(FB));
  }
  return R.done(); // Trailing bytes are corruption, not padding.
}
