//===- store/FuncStore.h - Function-granular persistent records -*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The function-granular extension of the persistent verification store:
/// content-addressed records holding one function's checked specification
/// and derivation, plus a per-translation-unit manifest mapping function
/// names to the keys the last completed run verified them under.
///
/// The incremental engine (src/incremental) is the only writer. Records
/// are keyed by the engine's FuncKey — a dual 64-bit content hash over
/// the function's normalized body, its callees' specification facts, and
/// the TU environment — so a warm process can reuse a checked bound a
/// previous process derived, and a manifest diff tells the engine exactly
/// which functions a cross-process edit invalidated.
///
/// Discipline inherited from store/Store.cpp: magic + version + embedded
/// key + FNV-1a checksum per file, atomic tmp+rename writes, and total
/// decoding — a truncated, bit-flipped, or foreign file degrades to a
/// miss, never a crash and never a wrong record (the embedded key is
/// re-verified against the requested key on every fetch).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_STORE_FUNCSTORE_H
#define QCC_STORE_FUNCSTORE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace qcc {
namespace store {

/// The content key of one function-level record (same dual-digest
/// discipline as batch::JobKey: Primary buckets, Verify guards).
struct FuncKey {
  uint64_t Primary = 0;
  uint64_t Verify = 0;

  bool operator==(const FuncKey &O) const {
    return Primary == O.Primary && Verify == O.Verify;
  }
  bool operator!=(const FuncKey &O) const { return !(*this == O); }
  bool operator<(const FuncKey &O) const {
    return Primary != O.Primary ? Primary < O.Primary : Verify < O.Verify;
  }
};

/// Counters, readable concurrently.
struct FuncStoreStats {
  uint64_t Fetches = 0;
  uint64_t Hits = 0;
  uint64_t Corrupt = 0; ///< Files quarantined as misses.
  uint64_t Puts = 0;
};

/// A per-TU manifest: function name -> the key it was last verified under.
using TuManifest = std::map<std::string, FuncKey>;

/// The on-disk function store. Thread-safe; concurrent processes are
/// safe through atomic renames (last writer wins — records are
/// content-addressed, so both writers carry identical payloads).
class FuncStore {
public:
  /// Opens (creating if needed) \p Dir with `funcs/` and `tus/` below it.
  explicit FuncStore(std::string Dir);

  /// False when the directories could not be created.
  bool valid() const { return Valid; }
  const std::string &error() const { return Error; }

  /// The serialized record stored under \p Key, or nullopt on miss or
  /// corruption (checksum, magic, version, or embedded-key mismatch).
  std::optional<std::string> fetchFunc(const FuncKey &Key);

  /// Persists \p Record under \p Key. Failures are counted, not fatal.
  void putFunc(const FuncKey &Key, const std::string &Record);

  /// The manifest last written for translation unit \p TuHash.
  std::optional<TuManifest> fetchManifest(uint64_t TuHash);

  /// Atomically replaces the manifest for \p TuHash.
  void putManifest(uint64_t TuHash, const TuManifest &M);

  FuncStoreStats stats() const;

private:
  std::string funcPath(const FuncKey &Key) const;
  std::string tuPath(uint64_t TuHash) const;
  std::optional<std::string> readChecked(const std::string &Path,
                                         const char *Magic);
  bool writeAtomic(const std::string &Path, const std::string &Bytes);

  std::string Dir;
  bool Valid = false;
  std::string Error;
  mutable std::mutex M;
  FuncStoreStats Counters;
};

} // namespace store
} // namespace qcc

#endif // QCC_STORE_FUNCSTORE_H
