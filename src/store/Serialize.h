//===- store/Serialize.h - Stable external form for proofs ------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary external form of the verification artifacts the persistent
/// store holds: integer terms, bound expressions, function specifications,
/// and full quantitative-Hoare derivations. This is the format layer the
/// `qccd` daemon will ship proof objects over; it has three obligations:
///
///   * **Stability.** Encoding is a pure, deterministic function of the
///     value (std::map iteration orders keys; no pointers, no timestamps),
///     so the golden fixtures under tests/store-corpus/ pin every byte and
///     a format change is a deliberate version bump, never an accident.
///   * **Totality on hostile input.** ByteReader never reads past its
///     buffer, recursive decoders carry an explicit depth limit, and
///     element counts are sanity-checked against the bytes remaining, so
///     a truncated or bit-flipped entry decodes to `false` — not a crash,
///     not an over-read, and never a plausible-but-wrong value undetected
///     (the store's checksum catches those first).
///   * **Re-checkability.** Derivation nodes reference their statements by
///     preorder index into the owning function's body, so a loaded
///     derivation can be re-attached to a freshly parsed Clight program
///     and re-validated by the ProofChecker (`--store-verify`): the store
///     is trusted for speed, re-verifiable for certainty.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_STORE_SERIALIZE_H
#define QCC_STORE_SERIALIZE_H

#include "clight/Clight.h"
#include "logic/Forest.h"
#include "logic/Logic.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcc {
namespace store {

//===----------------------------------------------------------------------===//
// Byte-level primitives
//===----------------------------------------------------------------------===//

/// Append-only little-endian byte sink. All multi-byte values are
/// fixed-width so the format is architecture-independent.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void boolean(bool B) { u8(B ? 1 : 0); }
  /// Length-prefixed raw bytes.
  void str(const std::string &S) {
    u64(S.size());
    Buf.append(S);
  }
  /// Un-prefixed raw bytes: splices a pre-encoded record verbatim. The
  /// caller owns the invariant that \p S is well-formed external form.
  void raw(const std::string &S) { Buf.append(S); }

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader over one immutable buffer. Every accessor
/// returns false (and poisons the reader) instead of reading past the
/// end; decoding code can therefore chain reads and test once.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Size)
      : P(static_cast<const unsigned char *>(Data)), N(Size) {}
  explicit ByteReader(const std::string &S) : ByteReader(S.data(), S.size()) {}

  bool u8(uint8_t &V) {
    if (Bad || Pos + 1 > N)
      return fail();
    V = P[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (Bad || Pos + 4 > N)
      return fail();
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(P[Pos++]) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (Bad || Pos + 8 > N)
      return fail();
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(P[Pos++]) << (8 * I);
    return true;
  }
  bool i64(int64_t &V) {
    uint64_t U;
    if (!u64(U))
      return false;
    V = static_cast<int64_t>(U);
    return true;
  }
  bool boolean(bool &B) {
    uint8_t V;
    if (!u8(V) || V > 1)
      return fail();
    B = V == 1;
    return true;
  }
  bool str(std::string &S) {
    uint64_t Len;
    if (!u64(Len) || Len > remaining())
      return fail();
    S.assign(reinterpret_cast<const char *>(P + Pos),
             static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    return true;
  }

  size_t remaining() const { return Bad ? 0 : N - Pos; }
  bool done() const { return !Bad && Pos == N; }
  bool ok() const { return !Bad; }
  bool fail() {
    Bad = true;
    return false;
  }

private:
  const unsigned char *P;
  size_t N;
  size_t Pos = 0;
  bool Bad = false;
};

/// Decoder recursion ceiling: no well-formed corpus artifact comes close,
/// and a corrupt count cannot drive the reader into unbounded recursion.
constexpr unsigned MaxDecodeDepth = 4096;

//===----------------------------------------------------------------------===//
// Logic records (terms, bounds, specs, contexts)
//===----------------------------------------------------------------------===//

void writeIntTerm(ByteWriter &W, const logic::IntTerm &T);
bool readIntTerm(ByteReader &R, logic::IntTerm &T, unsigned Depth = 0);

void writeCmp(ByteWriter &W, const logic::Cmp &C);
bool readCmp(ByteReader &R, logic::Cmp &C);

void writeBound(ByteWriter &W, const logic::BoundExpr &B);
bool readBound(ByteReader &R, logic::BoundExpr &B, unsigned Depth = 0);

void writeSpec(ByteWriter &W, const logic::FunctionSpec &S);
bool readSpec(ByteReader &R, logic::FunctionSpec &S);

void writeContext(ByteWriter &W, const logic::FunctionContext &Gamma);
bool readContext(ByteReader &R, logic::FunctionContext &Gamma);

//===----------------------------------------------------------------------===//
// Derivations
//===----------------------------------------------------------------------===//

/// The preorder statement walk (node, First, Second) that defines the
/// statement indices derivations are serialized with. Deterministic and
/// reproducible from the parsed source alone.
std::vector<const clight::Stmt *> preorderStatements(const clight::Stmt *Root);

/// Serializes \p D; statements become preorder indices via \p Index (a
/// node proving a statement outside the map is rejected — derivations
/// only ever prove statements of their function's body).
bool writeDerivation(ByteWriter &W, const logic::Derivation &D,
                     const std::map<const clight::Stmt *, uint32_t> &Index);

/// Decodes a derivation. When \p Stmts is non-null, statement indices are
/// re-attached against it (out-of-range indices reject); when null, the
/// nodes keep null statements — loadable for transport, not checkable.
bool readDerivation(ByteReader &R, logic::DerivationPtr &D,
                    const std::vector<const clight::Stmt *> *Stmts,
                    unsigned Depth = 0);

/// Serializes the subtree rooted at forest node \p Node. Emits exactly the
/// bytes writeDerivation emits for the equivalent tree — the external
/// format has one derivation encoding, whichever in-memory form feeds it.
bool writeDerivationForest(
    ByteWriter &W, const logic::DerivationForest &Fo, uint32_t Node,
    const std::map<const clight::Stmt *, uint32_t> &Index);

/// Decodes one serialized derivation directly into \p Fo (no intermediate
/// tree), appending its nodes in preorder; \p RootOut receives the first
/// node's index. Statement indices re-attach against \p Stmts as in
/// readDerivation. On failure the forest may hold a partial span — callers
/// discard the whole forest when any record fails to decode.
bool readDerivationForest(ByteReader &R, logic::DerivationForest &Fo,
                          uint32_t &RootOut,
                          const std::vector<const clight::Stmt *> *Stmts);

//===----------------------------------------------------------------------===//
// Proof artifacts: everything the analyzer proved for one program
//===----------------------------------------------------------------------===//

/// The deserialized form of a program's proof section: the function
/// context (seeded specs included) and each automatically derived,
/// checker-validated bound.
struct ProofArtifacts {
  logic::FunctionContext Gamma;
  std::vector<logic::FunctionBound> Bounds; ///< Sorted by function name.
};

/// Encodes \p Gamma and \p Bounds in external form. \p P provides the
/// statement indexing; a derivation node whose statement is not part of
/// its function's body makes the whole blob empty (nothing is persisted
/// rather than something unverifiable).
std::string encodeProofs(const logic::FunctionContext &Gamma,
                         const std::map<std::string, logic::FunctionBound> &Bounds,
                         const clight::Program &P);

/// Decodes a proof blob. With a program, derivation statements are
/// re-attached (ready for ProofChecker); without, they stay null.
bool decodeProofs(const std::string &Blob, const clight::Program *P,
                  ProofArtifacts &Out);

/// The flat-form twin of ProofArtifacts: the context plus one forest with
/// one root per proved bound (roots in blob order, i.e. sorted by name).
struct ProofForest {
  logic::FunctionContext Gamma;
  logic::DerivationForest Forest;
};

/// Encodes a proof blob byte-identical to encodeProofs, straight from the
/// flat form. \p Reused optionally maps function names to pre-validated
/// raw records (writeSpec+writeDerivation bytes, the FuncStore record
/// layout) spliced verbatim — the warm path's zero-copy re-serve. Fresh
/// roots and reused records are merged in name order.
std::string encodeProofsForest(
    const logic::FunctionContext &Gamma, const logic::DerivationForest &Forest,
    const clight::Program &P,
    const std::map<std::string, const std::string *> *Reused = nullptr);

/// Decodes a proof blob directly into flat form — the `--store-verify`
/// and warm-daemon path, which never needs the pointer tree.
bool decodeProofsForest(const std::string &Blob, const clight::Program *P,
                        ProofForest &Out);

} // namespace store
} // namespace qcc

#endif // QCC_STORE_SERIALIZE_H
