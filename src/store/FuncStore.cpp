//===- store/FuncStore.cpp - Function-granular persistent records ---------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "store/FuncStore.h"

#include "store/Serialize.h"
#include "support/FailPoint.h"
#include "support/Hash.h"
#include "support/Io.h"

#include <atomic>
#include <cstdio>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

namespace fs = std::filesystem;

using namespace qcc;
using namespace qcc::store;

namespace {

constexpr char FuncMagic[] = "QCCFSTOR";
constexpr char ManiMagic[] = "QCCFMANI";
constexpr uint32_t FormatVersion = 1;
// 8 magic bytes + version + reserved + checksum + payload size.
constexpr size_t HeaderSize = 8 + 4 + 4 + 8 + 8;

std::atomic<uint64_t> TmpSeq{0};

/// Header + checksummed payload, same envelope as the TU-level store.
std::string encodeFile(const char *Magic, const std::string &Payload) {
  ByteWriter H;
  for (size_t I = 0; I != 8; ++I)
    H.u8(static_cast<uint8_t>(Magic[I]));
  H.u32(FormatVersion);
  H.u32(0); // reserved
  H.u64(Fnv1a64().bytes(Payload.data(), Payload.size()).digest());
  H.u64(Payload.size());
  std::string Out = H.take();
  Out += Payload;
  return Out;
}

/// The payload of \p Bytes, or nullopt on any structural damage.
std::optional<std::string> decodeFile(const char *Magic,
                                      const std::string &Bytes) {
  if (Bytes.size() < HeaderSize)
    return std::nullopt;
  ByteReader H(Bytes.data(), HeaderSize);
  for (size_t I = 0; I != 8; ++I) {
    uint8_t B;
    if (!H.u8(B) || B != static_cast<uint8_t>(Magic[I]))
      return std::nullopt;
  }
  uint32_t Version, Reserved;
  uint64_t Checksum, Size;
  if (!H.u32(Version) || Version != FormatVersion || !H.u32(Reserved) ||
      Reserved != 0 || !H.u64(Checksum) || !H.u64(Size))
    return std::nullopt;
  if (Size != Bytes.size() - HeaderSize)
    return std::nullopt;
  const char *Payload = Bytes.data() + HeaderSize;
  if (Fnv1a64().bytes(Payload, static_cast<size_t>(Size)).digest() != Checksum)
    return std::nullopt;
  return std::string(Payload, static_cast<size_t>(Size));
}

} // namespace

FuncStore::FuncStore(std::string D) : Dir(std::move(D)) {
  std::error_code EC;
  fs::create_directories(fs::path(Dir) / "funcs", EC);
  if (!EC)
    fs::create_directories(fs::path(Dir) / "tus", EC);
  if (EC) {
    Error = "cannot create function store '" + Dir + "': " + EC.message();
    return;
  }
  Valid = true;
}

std::string FuncStore::funcPath(const FuncKey &Key) const {
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "%016llx-%016llx.qfn",
                static_cast<unsigned long long>(Key.Primary),
                static_cast<unsigned long long>(Key.Verify));
  return (fs::path(Dir) / "funcs" / Buf).string();
}

std::string FuncStore::tuPath(uint64_t TuHash) const {
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "%016llx.qtu",
                static_cast<unsigned long long>(TuHash));
  return (fs::path(Dir) / "tus" / Buf).string();
}

std::optional<std::string> FuncStore::readChecked(const std::string &Path,
                                                  const char *Magic) {
  std::string Bytes;
  // "funcstore.read": any injected fault degrades to a plain miss.
  if (failpoint::fire("funcstore.read") || !io::readFile(Path, Bytes))
    return std::nullopt; // plain miss, not corruption
  std::optional<std::string> Payload = decodeFile(Magic, Bytes);
  if (!Payload) {
    // A damaged file must not stay servable; removal degrades to a miss.
    std::error_code EC;
    fs::remove(Path, EC);
    std::lock_guard<std::mutex> G(M);
    ++Counters.Corrupt;
  }
  return Payload;
}

bool FuncStore::writeAtomic(const std::string &Path, const std::string &Bytes) {
  std::string Tmp =
      (fs::path(Dir) / (".tmp-" + std::to_string(::getpid()) + "-" +
                        std::to_string(TmpSeq.fetch_add(1))))
          .string();
  bool Written = false;
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd >= 0) {
    // "funcstore.write": same boundary semantics as the TU store's
    // "store.write" — crash leaves an empty tmp, Short a torn one, Err
    // a failed (and cleaned-up) put.
    auto FA = failpoint::fire("funcstore.write");
    size_t WriteLen =
        FA.K == failpoint::Kind::Short ? Bytes.size() / 2 : Bytes.size();
    Written = FA.K != failpoint::Kind::Err &&
              io::writeFull(Fd, Bytes.data(), WriteLen) &&
              WriteLen == Bytes.size() && io::fsyncFull(Fd);
    ::close(Fd);
  }
  std::error_code EC;
  if (Written) {
    fs::rename(Tmp, Path, EC);
    Written = !EC;
  }
  if (!Written)
    fs::remove(Tmp, EC);
  return Written;
}

std::optional<std::string> FuncStore::fetchFunc(const FuncKey &Key) {
  if (!Valid)
    return std::nullopt;
  {
    std::lock_guard<std::mutex> G(M);
    ++Counters.Fetches;
  }
  std::optional<std::string> Payload = readChecked(funcPath(Key), FuncMagic);
  if (!Payload)
    return std::nullopt;
  // The embedded key guards against an intact record under the wrong name.
  ByteReader R(Payload->data(), Payload->size());
  FuncKey Stored;
  std::string Record;
  if (!R.u64(Stored.Primary) || !R.u64(Stored.Verify) || !(Stored == Key) ||
      !R.str(Record) || !R.done()) {
    std::error_code EC;
    fs::remove(funcPath(Key), EC);
    std::lock_guard<std::mutex> G(M);
    ++Counters.Corrupt;
    return std::nullopt;
  }
  std::lock_guard<std::mutex> G(M);
  ++Counters.Hits;
  return Record;
}

void FuncStore::putFunc(const FuncKey &Key, const std::string &Record) {
  if (!Valid)
    return;
  ByteWriter P;
  P.u64(Key.Primary);
  P.u64(Key.Verify);
  P.str(Record);
  if (writeAtomic(funcPath(Key), encodeFile(FuncMagic, P.take()))) {
    std::lock_guard<std::mutex> G(M);
    ++Counters.Puts;
  }
}

std::optional<TuManifest> FuncStore::fetchManifest(uint64_t TuHash) {
  if (!Valid)
    return std::nullopt;
  std::optional<std::string> Payload = readChecked(tuPath(TuHash), ManiMagic);
  if (!Payload)
    return std::nullopt;
  ByteReader R(Payload->data(), Payload->size());
  uint64_t Stored, N;
  if (!R.u64(Stored) || Stored != TuHash || !R.u64(N) || N > R.remaining())
    return std::nullopt;
  TuManifest Out;
  for (uint64_t I = 0; I != N; ++I) {
    std::string Name;
    FuncKey K;
    if (!R.str(Name) || !R.u64(K.Primary) || !R.u64(K.Verify))
      return std::nullopt;
    Out.emplace(std::move(Name), K);
  }
  if (!R.done())
    return std::nullopt;
  return Out;
}

void FuncStore::putManifest(uint64_t TuHash, const TuManifest &Manifest) {
  if (!Valid)
    return;
  ByteWriter P;
  P.u64(TuHash);
  P.u64(Manifest.size());
  for (const auto &[Name, Key] : Manifest) {
    P.str(Name);
    P.u64(Key.Primary);
    P.u64(Key.Verify);
  }
  writeAtomic(tuPath(TuHash), encodeFile(ManiMagic, P.take()));
}

FuncStoreStats FuncStore::stats() const {
  std::lock_guard<std::mutex> G(M);
  return Counters;
}
