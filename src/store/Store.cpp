//===- store/Store.cpp - Persistent content-addressed result store -------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "store/Store.h"

#include "driver/Compiler.h"
#include "logic/Checker.h"
#include "support/FailPoint.h"
#include "support/Hash.h"
#include "support/Io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace qcc {
namespace store {

//===----------------------------------------------------------------------===//
// The ProgramResult record
//===----------------------------------------------------------------------===//

void writeResult(ByteWriter &W, const batch::ProgramResult &R) {
  W.str(R.Id);
  W.boolean(R.Ok);
  W.boolean(R.CacheHit);
  W.boolean(R.StoreHit);
  W.str(R.Diagnostics);
  W.u64(R.Bounds.size());
  for (const batch::FunctionReport &F : R.Bounds) {
    W.str(F.Function);
    W.str(F.SymbolicBound);
    W.boolean(F.ConcreteBytes.has_value());
    if (F.ConcreteBytes)
      W.u64(*F.ConcreteBytes);
  }
  W.u64(R.SkippedRecursive.size());
  for (const std::string &S : R.SkippedRecursive)
    W.str(S);
  W.boolean(R.Theorem1Checked);
  W.boolean(R.Theorem1Ok);
  W.u32(R.Theorem1StackBytes);
  W.u8(static_cast<uint8_t>(R.Status));
  W.u8(static_cast<uint8_t>(R.Stop));
  W.u32(R.Retries);
  W.u64(R.Metrics.PassMicros.size());
  for (const auto &P : R.Metrics.PassMicros) {
    W.str(P.first);
    W.u64(P.second);
  }
  W.u64(R.Metrics.ReplayedEvents.size());
  for (const auto &P : R.Metrics.ReplayedEvents) {
    W.str(P.first);
    W.u64(P.second);
  }
  W.u64(R.Metrics.ProofNodes);
  W.u64(R.Metrics.TotalMicros);
  W.str(R.ProofBlob);
}

bool readResult(ByteReader &R, batch::ProgramResult &Out) {
  Out = batch::ProgramResult();
  if (!R.str(Out.Id) || !R.boolean(Out.Ok) || !R.boolean(Out.CacheHit) ||
      !R.boolean(Out.StoreHit) || !R.str(Out.Diagnostics))
    return false;
  uint64_t N;
  if (!R.u64(N) || N > R.remaining())
    return false;
  Out.Bounds.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    batch::FunctionReport F;
    bool HasConcrete;
    if (!R.str(F.Function) || !R.str(F.SymbolicBound) ||
        !R.boolean(HasConcrete))
      return false;
    if (HasConcrete) {
      uint64_t Bytes;
      if (!R.u64(Bytes))
        return false;
      F.ConcreteBytes = Bytes;
    }
    Out.Bounds.push_back(std::move(F));
  }
  if (!R.u64(N) || N > R.remaining())
    return false;
  Out.SkippedRecursive.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    std::string S;
    if (!R.str(S))
      return false;
    Out.SkippedRecursive.push_back(std::move(S));
  }
  uint8_t Status, Stop;
  if (!R.boolean(Out.Theorem1Checked) || !R.boolean(Out.Theorem1Ok) ||
      !R.u32(Out.Theorem1StackBytes) || !R.u8(Status) || !R.u8(Stop) ||
      !R.u32(Out.Retries))
    return false;
  if (Status > static_cast<uint8_t>(batch::JobStatus::Cancelled) ||
      Stop > static_cast<uint8_t>(StopCause::Cancelled))
    return R.fail();
  Out.Status = static_cast<batch::JobStatus>(Status);
  Out.Stop = static_cast<StopCause>(Stop);
  if (!R.u64(N) || N > R.remaining())
    return false;
  Out.Metrics.PassMicros.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    std::string Name;
    uint64_t V;
    if (!R.str(Name) || !R.u64(V))
      return false;
    Out.Metrics.PassMicros.emplace_back(std::move(Name), V);
  }
  if (!R.u64(N) || N > R.remaining())
    return false;
  Out.Metrics.ReplayedEvents.reserve(static_cast<size_t>(N));
  for (uint64_t I = 0; I != N; ++I) {
    std::string Name;
    uint64_t V;
    if (!R.str(Name) || !R.u64(V))
      return false;
    Out.Metrics.ReplayedEvents.emplace_back(std::move(Name), V);
  }
  return R.u64(Out.Metrics.ProofNodes) && R.u64(Out.Metrics.TotalMicros) &&
         R.str(Out.ProofBlob);
}

//===----------------------------------------------------------------------===//
// Entry image
//===----------------------------------------------------------------------===//

std::string VerificationStore::encodeEntry(const batch::JobKey &Key,
                                           const batch::ProgramResult &Result) {
  ByteWriter P;
  P.u64(Key.Primary);
  P.u64(Key.Verify);
  writeResult(P, Result);
  std::string Payload = P.take();
  ByteWriter H;
  for (char C : Magic)
    H.u8(static_cast<uint8_t>(C));
  H.u32(FormatVersion);
  H.u32(0); // reserved
  H.u64(Fnv1a64().bytes(Payload.data(), Payload.size()).digest());
  H.u64(Payload.size());
  std::string Out = H.take();
  Out += Payload;
  return Out;
}

bool VerificationStore::decodeEntry(const std::string &Bytes,
                                    batch::JobKey &Key,
                                    batch::ProgramResult &Result) {
  if (Bytes.size() < HeaderSize)
    return false;
  ByteReader H(Bytes.data(), HeaderSize);
  for (char C : Magic) {
    uint8_t B;
    if (!H.u8(B) || B != static_cast<uint8_t>(C))
      return false;
  }
  uint32_t Version, Reserved;
  uint64_t Checksum, Size;
  if (!H.u32(Version) || Version != FormatVersion || !H.u32(Reserved) ||
      Reserved != 0 || !H.u64(Checksum) || !H.u64(Size))
    return false;
  if (Size != Bytes.size() - HeaderSize)
    return false;
  const char *Payload = Bytes.data() + HeaderSize;
  if (Fnv1a64().bytes(Payload, static_cast<size_t>(Size)).digest() != Checksum)
    return false;
  ByteReader R(Payload, static_cast<size_t>(Size));
  if (!R.u64(Key.Primary) || !R.u64(Key.Verify))
    return false;
  return readResult(R, Result) && R.done();
}

std::string VerificationStore::entryName(const batch::JobKey &Key) {
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "%016llx-%016llx%s",
                static_cast<unsigned long long>(Key.Primary),
                static_cast<unsigned long long>(Key.Verify), EntrySuffix);
  return Buf;
}

bool VerificationStore::isTruncatedEntry(const std::string &Bytes) {
  // Anything shorter than a header is truncation by definition: a crash
  // between open and the first full write, or a torn copy.
  if (Bytes.size() < HeaderSize)
    return true;
  // With a whole header present, classify as truncation only when the
  // header itself is plausible (magic + version) but promises more
  // payload than the file holds. Bad magic/version is corruption, not
  // truncation — a different failure shape, counted separately.
  ByteReader H(Bytes.data(), HeaderSize);
  for (char C : Magic) {
    uint8_t B;
    if (!H.u8(B) || B != static_cast<uint8_t>(C))
      return false;
  }
  uint32_t Version, Reserved;
  uint64_t Checksum, Size;
  if (!H.u32(Version) || Version != FormatVersion || !H.u32(Reserved) ||
      !H.u64(Checksum) || !H.u64(Size))
    return false;
  return Size > Bytes.size() - HeaderSize;
}

//===----------------------------------------------------------------------===//
// Directory plumbing
//===----------------------------------------------------------------------===//

namespace {

/// Scoped flock on the store's .lock file (shared or exclusive). Blocking:
/// writers are short (one entry write + eviction scan), so readers never
/// starve long.
class DirLock {
public:
  DirLock(int Fd, bool Exclusive) : Fd(Fd) {
    // "store.flock": delay here models lock contention; crash models a
    // writer dying at (or while holding) the lock — flock releases on
    // process death, so recovery must need no lock-file surgery. Err and
    // Short are ignored: skipping the lock would break the protocol the
    // fault is supposed to *test*.
    (void)failpoint::fire("store.flock");
    if (Fd >= 0)
      while (::flock(Fd, Exclusive ? LOCK_EX : LOCK_SH) != 0 &&
             errno == EINTR) {
      }
  }
  ~DirLock() {
    if (Fd >= 0)
      ::flock(Fd, LOCK_UN);
  }
  DirLock(const DirLock &) = delete;
  DirLock &operator=(const DirLock &) = delete;

private:
  int Fd;
};

// Entry reads go through io::readFile: an ifstream slurp fails the whole
// stream when a signal interrupts the underlying read() mid-transfer,
// which would cost an intact entry a spurious quarantine.
bool readFile(const std::string &Path, std::string &Out) {
  return io::readFile(Path, Out);
}

bool hasSuffix(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// Committed entries in \p Dir (no recursion: quarantine/ is unaffected).
std::vector<fs::directory_entry> entryFiles(const std::string &Dir) {
  std::vector<fs::directory_entry> Files;
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    if (It->is_regular_file(EC) &&
        hasSuffix(It->path().filename().string(),
                  VerificationStore::EntrySuffix))
      Files.push_back(*It);
  }
  return Files;
}

} // namespace

std::unique_ptr<VerificationStore>
VerificationStore::open(const StoreOptions &O, std::string *Error) {
  std::error_code EC;
  fs::create_directories(fs::path(O.Dir) / "quarantine", EC);
  if (EC) {
    if (Error)
      *Error = "cannot create store directory '" + O.Dir +
               "': " + EC.message();
    return nullptr;
  }
  std::string LockPath = (fs::path(O.Dir) / ".lock").string();
  int Fd = ::open(LockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open store lock '" + LockPath +
               "': " + std::strerror(errno);
    return nullptr;
  }
  std::unique_ptr<VerificationStore> S(
      new VerificationStore(O, Fd));
  S->scanAndQuarantine();
  return S;
}

VerificationStore::VerificationStore(StoreOptions O, int Fd)
    : Opts(std::move(O)), Dir(Opts.Dir), LockFd(Fd) {}

VerificationStore::~VerificationStore() {
  if (LockFd >= 0)
    ::close(LockFd);
}

std::string VerificationStore::entryPath(const batch::JobKey &Key) const {
  return (fs::path(Dir) / entryName(Key)).string();
}

void VerificationStore::quarantineLocked(const std::string &Path,
                                         bool Truncated) {
  std::error_code EC;
  fs::path Dest = fs::path(Dir) / "quarantine" / fs::path(Path).filename();
  fs::rename(Path, Dest, EC);
  if (EC)
    fs::remove(Path, EC); // a bad entry must not stay servable
  std::lock_guard<std::mutex> G(StatsMutex);
  ++Counters.Quarantined;
  if (Truncated)
    ++Counters.Truncated;
}

void VerificationStore::evictLocked() {
  if (Opts.BudgetBytes == 0)
    return;
  struct Candidate {
    fs::path Path;
    uint64_t Size;
    fs::file_time_type MTime;
  };
  std::vector<Candidate> Entries;
  uint64_t Total = 0;
  std::error_code EC;
  for (const fs::directory_entry &E : entryFiles(Dir)) {
    uint64_t Size = E.file_size(EC);
    if (EC)
      continue;
    Entries.push_back({E.path(), Size, E.last_write_time(EC)});
    Total += Size;
  }
  // Oldest access first; path name breaks mtime ties so the order is
  // deterministic on coarse-granularity filesystems.
  std::sort(Entries.begin(), Entries.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.MTime != B.MTime)
                return A.MTime < B.MTime;
              return A.Path < B.Path;
            });
  for (const Candidate &E : Entries) {
    if (Total <= Opts.BudgetBytes)
      break;
    if (!fs::remove(E.Path, EC) || EC)
      continue;
    Total -= E.Size;
    std::lock_guard<std::mutex> G(StatsMutex);
    ++Counters.EvictedEntries;
    Counters.EvictedBytes += E.Size;
  }
}

void VerificationStore::scanAndQuarantine() {
  std::lock_guard<std::mutex> G(IoMutex);
  DirLock L(LockFd, /*Exclusive=*/true);
  std::error_code EC;
  // Crash recovery: unfinished temp files are dead weight; committed
  // entries were renamed into place atomically and are unaffected.
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    std::string Name = It->path().filename().string();
    if (Name.compare(0, 5, ".tmp-") == 0)
      fs::remove(It->path(), EC);
  }
  for (const fs::directory_entry &E : entryFiles(Dir)) {
    std::string Bytes;
    batch::JobKey Key;
    batch::ProgramResult R;
    // Each damaged entry quarantines by itself; the reload as a whole
    // always succeeds — zero-length files, partial headers, and every
    // other truncation shape a crash can leave are data, not errors.
    if (!readFile(E.path().string(), Bytes) || !decodeEntry(Bytes, Key, R) ||
        entryName(Key) != E.path().filename().string())
      quarantineLocked(E.path().string(), isTruncatedEntry(Bytes));
  }
}

//===----------------------------------------------------------------------===//
// Fetch / put
//===----------------------------------------------------------------------===//

bool VerificationStore::verifyEntryProofs(const batch::BatchJob &Job,
                                          const batch::ProgramResult &R,
                                          Supervisor *Sup) {
  if (!R.Ok)
    return true; // a failed verdict carries no proof obligation
  if (R.ProofBlob.empty())
    return false; // an Ok verdict without its proofs is not trustworthy
  DiagnosticEngine ParseDiags;
  std::optional<clight::Program> P =
      driver::parseOnly(Job.Source, ParseDiags, Job.Options);
  if (!P)
    return false;
  // Decode straight into the flat form: store verification re-checks
  // every derivation anyway, and the forest walk needs no pointer tree.
  ProofForest PF;
  if (!decodeProofsForest(R.ProofBlob, &*P, PF))
    return false;
  // Root the loaded context in trust: every spec in Gamma must be either
  // the job's own seeded specification (part of the content key, so the
  // cold run was given it) or proved by a derivation in this very blob,
  // which the checker re-validates below. Without this, a tampered entry
  // could smuggle an unproved spec in as if it had been derived.
  auto SpecText = [](const logic::FunctionSpec &S) {
    std::string Out = S.Pre->str() + " -> " + S.Post->str();
    for (const logic::Cmp &C : S.ResultFacts)
      Out += " ; " + C.str();
    return Out;
  };
  for (const auto &[Name, Spec] : PF.Gamma) {
    auto Seeded = Job.Options.SeededSpecs.find(Name);
    if (Seeded != Job.Options.SeededSpecs.end()) {
      if (SpecText(Seeded->second) != SpecText(Spec))
        return false;
      continue;
    }
    bool Proved = false;
    for (const logic::DerivationForest::Root &Root : PF.Forest.roots())
      Proved |= Root.Function == Name && SpecText(Root.Spec) == SpecText(Spec);
    if (!Proved)
      return false;
  }
  // Every bound the verdict reports must be the call bound of a (now
  // trust-rooted) Gamma spec — the proofs must actually cover the claims.
  for (const batch::FunctionReport &FR : R.Bounds) {
    auto It = PF.Gamma.find(FR.Function);
    if (It == PF.Gamma.end())
      return false;
    if (!FR.SymbolicBound.empty() &&
        logic::bAdd(logic::bMetric(FR.Function), It->second.Pre)->str() !=
            FR.SymbolicBound)
      return false;
  }
  logic::EntailOptions EO;
  EO.SymbolicOnly = true; // match the analyzer: fully symbolic certificates
  logic::EntailMemo Memo;
  logic::ProofChecker Checker(*P, &PF.Gamma, EO);
  Checker.setSupervisor(Sup);
  Checker.setMemo(&Memo);
  for (uint32_t RI = 0; RI != PF.Forest.roots().size(); ++RI) {
    DiagnosticEngine CheckDiags;
    if (!Checker.checkFunctionBound(PF.Forest, RI, CheckDiags))
      return false;
  }
  return !(Sup && Sup->stopRequested());
}

std::shared_ptr<const batch::ProgramResult>
VerificationStore::fetch(const batch::JobKey &Key, const batch::BatchJob &Job,
                         Supervisor *Sup) {
  std::string Path = entryPath(Key);
  std::string Bytes;
  bool Present;
  {
    std::lock_guard<std::mutex> G(IoMutex);
    DirLock L(LockFd, /*Exclusive=*/false);
    // "store.read": any injected fault degrades the lookup to a miss —
    // the same contract a real read error gets.
    Present = !failpoint::fire("store.read") && readFile(Path, Bytes);
  }
  if (!Present) {
    std::lock_guard<std::mutex> G(StatsMutex);
    ++Counters.Misses;
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> G(StatsMutex);
    Counters.BytesRead += Bytes.size();
  }
  if (Sup) {
    Sup->charge(Bytes.size());
    if (Sup->stopRequested()) { // budget stop degrades to a miss
      std::lock_guard<std::mutex> G(StatsMutex);
      ++Counters.Misses;
      return nullptr;
    }
  }
  batch::JobKey Stored;
  auto Result = std::make_shared<batch::ProgramResult>();
  // The embedded key must match the requested one: decodeEntry catches
  // damaged bytes, this catches intact entries under the wrong name. Only
  // definitive verdicts are servable at all.
  bool Good = decodeEntry(Bytes, Stored, *Result) && Stored == Key &&
              (Result->Status == batch::JobStatus::Ok ||
               Result->Status == batch::JobStatus::Failed);
  if (!Good) {
    std::lock_guard<std::mutex> G(IoMutex);
    DirLock L(LockFd, /*Exclusive=*/true);
    quarantineLocked(Path, isTruncatedEntry(Bytes));
    std::lock_guard<std::mutex> G2(StatsMutex);
    ++Counters.Misses;
    return nullptr;
  }
  if (Opts.VerifyProofsOnLoad) {
    if (!verifyEntryProofs(Job, *Result, Sup)) {
      if (Sup && Sup->stopRequested()) {
        // The re-check was stopped, not refuted: miss without prejudice.
        std::lock_guard<std::mutex> G(StatsMutex);
        ++Counters.Misses;
        return nullptr;
      }
      std::lock_guard<std::mutex> G(IoMutex);
      DirLock L(LockFd, /*Exclusive=*/true);
      quarantineLocked(Path);
      std::lock_guard<std::mutex> G2(StatsMutex);
      ++Counters.VerifyFailures;
      ++Counters.Misses;
      return nullptr;
    }
    std::lock_guard<std::mutex> G(StatsMutex);
    ++Counters.VerifiedProofs;
  }
  {
    // LRU touch: a hit is an access; eviction orders by mtime.
    std::error_code EC;
    fs::last_write_time(Path, fs::file_time_type::clock::now(), EC);
  }
  std::lock_guard<std::mutex> G(StatsMutex);
  ++Counters.Hits;
  return Result;
}

void VerificationStore::put(const batch::JobKey &Key,
                            const batch::ProgramResult &Result,
                            Supervisor *Sup) {
  // Only definitive verdicts persist: a budget-stopped attempt must rerun
  // with a fresh budget, never be replayed from disk. (The engine already
  // filters; the store enforces its own invariant.)
  if (Result.Status != batch::JobStatus::Ok &&
      Result.Status != batch::JobStatus::Failed)
    return;
  std::string Bytes = encodeEntry(Key, Result);
  // Charged, but never aborted: the SIGINT drain contract says an
  // in-flight put flushes even when the interrupt token has fired.
  if (Sup)
    Sup->charge(Bytes.size());
  std::lock_guard<std::mutex> G(IoMutex);
  DirLock L(LockFd, /*Exclusive=*/true);
  std::string Tmp =
      (fs::path(Dir) / (".tmp-" + std::to_string(::getpid()) + "-" +
                        std::to_string(TmpSeq.fetch_add(1))))
          .string();
  bool Written = false;
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd >= 0) {
    // Failpoints at each commit boundary: "store.write" fires after the
    // tmp file exists but before any byte lands (crash → empty tmp),
    // "store.fsync" between write and the durability barrier (crash →
    // complete but maybe-unsynced tmp), "store.rename" before the
    // rename (crash → durable tmp that never became visible). Short at
    // store.write truncates the tmp to half — the torn-write shape.
    auto FA = failpoint::fire("store.write");
    size_t WriteLen =
        FA.K == failpoint::Kind::Short ? Bytes.size() / 2 : Bytes.size();
    // Full-transfer write and EINTR-proof fsync (support/Io.h): a signal
    // during the put cannot leave a truncated temp file behind. fsync
    // before rename: the entry must be durable before it becomes
    // visible, or a crash could commit a torn file under a valid name.
    Written = FA.K != failpoint::Kind::Err &&
              io::writeFull(Fd, Bytes.data(), WriteLen) &&
              WriteLen == Bytes.size() &&
              !failpoint::fire("store.fsync") && io::fsyncFull(Fd);
    ::close(Fd);
  }
  std::error_code EC;
  if (Written) {
    if (failpoint::fire("store.rename")) {
      Written = false;
    } else {
      fs::rename(Tmp, entryPath(Key), EC);
      Written = !EC;
    }
  }
  if (!Written) {
    fs::remove(Tmp, EC);
    std::lock_guard<std::mutex> G2(StatsMutex);
    ++Counters.WriteFailures;
    return;
  }
  {
    std::lock_guard<std::mutex> G2(StatsMutex);
    ++Counters.Writes;
    Counters.BytesWritten += Bytes.size();
  }
  evictLocked();
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

StoreStats VerificationStore::stats() const {
  std::lock_guard<std::mutex> G(StatsMutex);
  return Counters;
}

size_t VerificationStore::entryCount() const {
  std::lock_guard<std::mutex> G(IoMutex);
  DirLock L(LockFd, /*Exclusive=*/false);
  return entryFiles(Dir).size();
}

uint64_t VerificationStore::residentBytes() const {
  std::lock_guard<std::mutex> G(IoMutex);
  DirLock L(LockFd, /*Exclusive=*/false);
  uint64_t Total = 0;
  std::error_code EC;
  for (const fs::directory_entry &E : entryFiles(Dir)) {
    uint64_t Size = E.file_size(EC);
    if (!EC)
      Total += Size;
  }
  return Total;
}

} // namespace store
} // namespace qcc
