//===- store/Store.h - Persistent content-addressed result store *- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe, content-addressed on-disk verification store: one file
/// per (source, options) content key, holding the serialized verdict,
/// per-pass metrics, and the checked proof artifacts in external form
/// (store/Serialize.h). It unifies PR 1's in-memory result cache and
/// PR 5's resume journal into a single persistent answer: a warm batch
/// rerun in a *fresh process* — or another client of the future `qccd`
/// daemon — serves every unchanged job from disk instead of recompiling.
///
/// Trust posture (mirroring VeriFast's treatment of CompCert artifacts):
/// the store is an accelerator whose entries are *checkable*, not
/// oracular. Every entry carries a versioned header (magic, format
/// version, payload checksum) and both halves of its 128-bit content key;
/// `--store-verify` re-attaches each loaded derivation to a freshly
/// parsed Clight program and re-runs the proof checker before trusting
/// the verdict.
///
/// Robustness contract, enforced by tests/StoreTest.cpp:
///
///   * **Atomicity.** Entries are written to a temp file, fsync'd, then
///     renamed into place; readers never observe a torn entry.
///   * **Corruption tolerance.** A truncated, bit-flipped, zero-length or
///     wrong-version file is *quarantined* (moved to `quarantine/`) and
///     reported as a miss — never a crash, never a wrong verdict.
///   * **Eviction.** A byte budget evicts least-recently-used entries
///     (access bumps mtime) so the store is safe to leave running.
///   * **Cross-process safety.** A directory-level flock protocol
///     (shared for reads, exclusive for writes/eviction/quarantine)
///     serializes concurrent clients.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_STORE_STORE_H
#define QCC_STORE_STORE_H

#include "batch/Batch.h"
#include "store/Serialize.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace qcc {
namespace store {

/// Configuration of one store handle.
struct StoreOptions {
  /// Store directory; created (with its quarantine/ subdirectory) when
  /// missing.
  std::string Dir;
  /// LRU byte budget over entry payload files (0 = unbounded). Enforced
  /// after every write.
  uint64_t BudgetBytes = 0;
  /// Re-check loaded proof derivations with the ProofChecker against a
  /// freshly parsed program before serving a hit (`--store-verify`).
  /// A proof that no longer checks quarantines the entry.
  bool VerifyProofsOnLoad = false;
};

/// Operation counters for one store handle's lifetime.
struct StoreStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Writes = 0;
  uint64_t WriteFailures = 0;
  uint64_t EvictedEntries = 0;
  uint64_t EvictedBytes = 0;
  /// Corrupt entries moved to quarantine/ (open-scan or lookup).
  uint64_t Quarantined = 0;
  /// The subset of quarantines whose shape is truncation — zero-length
  /// files, partial headers, or payloads shorter than the header's
  /// declared size: what a crash between open and write, or a torn
  /// copy, leaves behind. Counted on top of Quarantined.
  uint64_t Truncated = 0;
  /// Entries whose proofs re-checked clean under VerifyProofsOnLoad.
  uint64_t VerifiedProofs = 0;
  /// Entries rejected because their loaded proofs failed re-checking.
  uint64_t VerifyFailures = 0;
  uint64_t BytesRead = 0;
  uint64_t BytesWritten = 0;
};

/// The on-disk store. Implements the batch engine's ResultStore
/// interface; thread-safe within a process and flock-coordinated across
/// processes.
class VerificationStore final : public batch::ResultStore {
public:
  //===--------------------------------------------------------------------===//
  // Entry file format (version 1)
  //===--------------------------------------------------------------------===//
  //
  //   offset  size  field
  //        0     8  magic "QCCSTORE"
  //        8     4  format version (little-endian u32) = 1
  //       12     4  reserved flags = 0
  //       16     8  payload checksum: FNV-1a 64 over the payload bytes
  //       24     8  payload size in bytes
  //       32     -  payload: primary key u64, verify key u64, then the
  //                 ProgramResult record (store/Serialize conventions),
  //                 whose last field is the proof blob
  //
  // The reader rejects (and quarantines) anything whose magic, version,
  // declared size, checksum, embedded keys, or record structure is off.
  // Bumping FormatVersion orphans old entries deliberately: they reload
  // as quarantined, never as silently reinterpreted bytes — the golden
  // fixtures under tests/store-corpus/ keep the bump honest.

  static constexpr char Magic[8] = {'Q', 'C', 'C', 'S', 'T', 'O', 'R', 'E'};
  static constexpr uint32_t FormatVersion = 1;
  static constexpr size_t HeaderSize = 32;
  static constexpr const char *EntrySuffix = ".qcs";

  /// Opens (creating when missing) the store at \p O.Dir: removes stale
  /// temp files, validates every resident entry (header and checksum),
  /// and quarantines corrupt ones. Returns null with \p Error set when
  /// the directory or its lock cannot be established.
  static std::unique_ptr<VerificationStore> open(const StoreOptions &O,
                                                 std::string *Error = nullptr);

  ~VerificationStore() override;

  /// ResultStore: lookup by content key. \p Job supplies the source for
  /// `--store-verify` proof re-checking; \p Sup, when non-null, is
  /// charged for bytes read (a budget stop degrades to a miss).
  std::shared_ptr<const batch::ProgramResult>
  fetch(const batch::JobKey &Key, const batch::BatchJob &Job,
        Supervisor *Sup) override;

  /// ResultStore: persist one definitive result (atomic temp+rename,
  /// then LRU eviction). Never throws; failures count in stats().
  void put(const batch::JobKey &Key, const batch::ProgramResult &Result,
           Supervisor *Sup) override;

  StoreStats stats() const;

  /// Resident committed entries / payload bytes (scans the directory, so
  /// it observes other processes' writes too).
  size_t entryCount() const;
  uint64_t residentBytes() const;

  const std::string &directory() const { return Dir; }

  //===--------------------------------------------------------------------===//
  // Format functions, exposed for the round-trip / golden-file tests
  //===--------------------------------------------------------------------===//

  /// The complete file image of one entry (header + payload). A pure
  /// function of its arguments: byte-stable across runs and platforms.
  static std::string encodeEntry(const batch::JobKey &Key,
                                 const batch::ProgramResult &Result);

  /// Decodes a full entry image; false on any structural violation.
  static bool decodeEntry(const std::string &Bytes, batch::JobKey &Key,
                          batch::ProgramResult &Result);

  /// The entry file name for \p Key: "<primary>-<verify>.qcs" in hex.
  static std::string entryName(const batch::JobKey &Key);

  /// True iff \p Bytes look like a *truncated* entry image (empty file,
  /// partial header, or payload shorter than the header's declared size)
  /// as opposed to some other corruption. Used to classify quarantines.
  static bool isTruncatedEntry(const std::string &Bytes);

private:
  VerificationStore(StoreOptions O, int LockFd);

  std::string entryPath(const batch::JobKey &Key) const;
  /// Moves a damaged entry into quarantine/ (EX lock held by caller).
  /// \p Truncated additionally bumps the truncation-shape counter.
  void quarantineLocked(const std::string &Path, bool Truncated = false);
  /// Enforces the byte budget, oldest mtime first (EX lock held).
  void evictLocked();
  void scanAndQuarantine();
  /// `--store-verify`: reparse the job, re-attach the loaded derivations,
  /// re-run the proof checker. True iff every bound still checks.
  bool verifyEntryProofs(const batch::BatchJob &Job,
                         const batch::ProgramResult &R, Supervisor *Sup);

  StoreOptions Opts;
  std::string Dir;
  int LockFd = -1;
  /// flock coordinates *processes*; two threads sharing this handle share
  /// one open file description (a second flock converts, not blocks), so
  /// intra-process exclusion needs a real mutex around each I/O section.
  mutable std::mutex IoMutex;
  mutable std::mutex StatsMutex;
  StoreStats Counters;
  std::atomic<uint64_t> TmpSeq{0};
};

/// The ProgramResult record serializers (the payload body after the two
/// key words). Exposed for round-trip tests; decode is total on hostile
/// input.
void writeResult(ByteWriter &W, const batch::ProgramResult &R);
bool readResult(ByteReader &R, batch::ProgramResult &Out);

} // namespace store
} // namespace qcc

#endif // QCC_STORE_STORE_H
