//===- fuzz/Mutator.h - Derivation (proof-object) mutation ------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial mutation of checked derivations. The proof checker is the
/// reproduction's trusted core (it stands in for the paper's Coq
/// soundness proof), so the harness forges proofs at scale: take the
/// interactively derived Table 2 bounds — the richest derivations in the
/// repository, covering every rule of the logic — apply a random
/// soundness-relevant corruption, and demand the checker reject the
/// mutant. A mutant that still checks is a soundness hole and is reported
/// verbatim (rule, node index, mutation kind) for replay.
///
/// Mutation kinds mirror the classic forged-proof moves: claim less
/// potential than the proof needed (precondition shrink), claim more is
/// left over (postcondition inflate), retag a paying rule as a free one,
/// drop the sub-derivations a rule's side conditions depend on, corrupt a
/// bound expression in place, and substitute a cheaper specification.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FUZZ_MUTATOR_H
#define QCC_FUZZ_MUTATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {
namespace fuzz {

/// The corruption families the mutator draws from.
enum class MutationKind : uint8_t {
  PreZero,        ///< Set a node's precondition to 0.
  PostInflate,    ///< Add potential to a node's claimed postcondition.
  RetagAsSkip,    ///< Retag a paying rule (call/frame) as Skip.
  DropChildren,   ///< Clear a node's sub-derivations.
  SpecShrink,     ///< Replace the function's spec with a cheaper one.
  PerturbBound,   ///< Erase a callee's metric from a call's precondition.
  RedirectStmt    ///< Point the root derivation at a different statement.
};

inline constexpr unsigned NumMutationKinds = 7;

const char *mutationKindName(MutationKind K);

/// Outcome of one mutation campaign.
struct MutationReport {
  unsigned Tried = 0;    ///< Mutants actually distinct from the original.
  unsigned Rejected = 0; ///< Mutants the checker refused.
  /// Accepted mutants — soundness violations. Each entry names the seed,
  /// function, node, and mutation for exact replay.
  std::vector<std::string> Survivors;

  bool ok() const { return Survivors.empty(); }
};

/// Runs \p Count seeded mutations against the checked Table 2
/// derivations. Mutations that do not change the derivation (e.g.
/// zeroing an already-zero precondition) are re-drawn, so Tried == Count
/// unless generation itself fails.
MutationReport mutateDerivations(uint64_t Seed, unsigned Count);

} // namespace fuzz
} // namespace qcc

#endif // QCC_FUZZ_MUTATOR_H
