//===- fuzz/Generator.cpp - Random and adversarial program sources --------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

using namespace qcc;
using namespace qcc::fuzz;

//===----------------------------------------------------------------------===//
// Grammar-random programs (the differential tester's generator)
//===----------------------------------------------------------------------===//

std::string ProgramGenerator::generate() {
  Out = "typedef unsigned int u32;\n";
  NumGlobals = 1 + R.below(3);
  for (unsigned G = 0; G != NumGlobals; ++G) {
    ArraySizes.push_back(4 + R.below(13));
    Out += "u32 g" + std::to_string(G) + "[" +
           std::to_string(ArraySizes[G]) + "];\n";
  }
  Out += "u32 s0 = " + std::to_string(R.below(1000)) + ";\n";
  Out += "int s1;\n";

  unsigned NumFunctions = 1 + R.below(4);
  for (unsigned F = 0; F != NumFunctions; ++F)
    emitFunction(F);
  emitMain();
  return Out;
}

// Expression generation over the current scope. Depth-limited.
std::string ProgramGenerator::expr(unsigned Depth) {
  if (Depth == 0 || R.chance(35)) {
    switch (R.below(4)) {
    case 0:
      return std::to_string(R.below(64));
    case 1:
      if (!Scope.empty())
        return Scope[R.below(Scope.size())];
      return std::to_string(R.below(64));
    case 2:
      return R.chance(50) ? "s0" : "s1";
    default: {
      unsigned G = R.below(NumGlobals);
      return "g" + std::to_string(G) + "[(" + expr(0) + ") % " +
             std::to_string(ArraySizes[G]) + "]";
    }
    }
  }
  static const char *SafeOps[] = {"+", "-", "*", "&", "|", "^",
                                  "<<", ">>", "<", "<=", "==", "!="};
  switch (R.below(10)) {
  case 0: {
    // Division: usually guarded, sometimes allowed to trap.
    const char *Guard = R.chance(85) ? " | 1)" : ")";
    return "((" + expr(Depth - 1) + ") " + (R.chance(50) ? "/" : "%") +
           " ((" + expr(Depth - 1) + ")" + Guard + ")";
  }
  case 1:
    return "(" + expr(Depth - 1) + " ? " + expr(Depth - 1) + " : " +
           expr(Depth - 1) + ")";
  case 2:
    return "(" + std::string(R.chance(50) ? "~" : "!") + "(" +
           expr(Depth - 1) + "))";
  case 3:
    return "((" + expr(Depth - 1) + ") " +
           (R.chance(50) ? "&&" : "||") + " (" + expr(Depth - 1) + "))";
  default:
    return "((" + expr(Depth - 1) + ") " + SafeOps[R.below(12)] + " (" +
           expr(Depth - 1) + "))";
  }
}

std::string ProgramGenerator::callExpr(unsigned UpTo) {
  unsigned F = R.below(UpTo);
  std::string Call = "f" + std::to_string(F) + "(";
  for (unsigned A = 0; A != Arity[F]; ++A) {
    if (A)
      Call += ", ";
    Call += expr(1);
  }
  return Call + ")";
}

/// A writable local that is not a protected loop counter.
std::string ProgramGenerator::writableLocal() {
  std::vector<std::string> Options;
  for (const std::string &V : Scope)
    if (!Protected.count(V))
      Options.push_back(V);
  if (Options.empty())
    return R.chance(50) ? "s0" : "s1";
  return Options[R.below(Options.size())];
}

void ProgramGenerator::statement(unsigned Depth, unsigned FnIndex,
                                 std::string Indent) {
  switch (R.below(Depth > 0 ? 7 : 4)) {
  case 0: { // Assignment.
    Out += Indent + writableLocal() + " = " + expr(2) + ";\n";
    return;
  }
  case 1: { // Array store.
    unsigned G = R.below(NumGlobals);
    Out += Indent + "g" + std::to_string(G) + "[(" + expr(1) + ") % " +
           std::to_string(ArraySizes[G]) + "] = " + expr(2) + ";\n";
    return;
  }
  case 2: { // Call (possibly into a local).
    if (FnIndex == 0) {
      Out += Indent + writableLocal() + " = " + expr(2) + ";\n";
      return;
    }
    Out += Indent + writableLocal() + " = " + callExpr(FnIndex) + ";\n";
    return;
  }
  case 3: { // Global update.
    Out += Indent + (R.chance(50) ? "s0" : "s1") + " = " + expr(2) +
           ";\n";
    return;
  }
  case 4: { // If.
    Out += Indent + "if (" + expr(2) + ") {\n";
    statement(Depth - 1, FnIndex, Indent + "  ");
    if (R.chance(60)) {
      Out += Indent + "} else {\n";
      statement(Depth - 1, FnIndex, Indent + "  ");
    }
    Out += Indent + "}\n";
    return;
  }
  case 5: { // Bounded for-loop with a protected fresh counter.
    std::string I = "i" + std::to_string(LoopCounter++);
    Locals.push_back(I);
    Scope.push_back(I);
    Protected.insert(I);
    Out += Indent + "for (" + I + " = 0; " + I + " < " +
           std::to_string(1 + R.below(6)) + "; " + I + "++) {\n";
    statement(Depth - 1, FnIndex, Indent + "  ");
    if (R.chance(30))
      Out += Indent + "  if (" + expr(1) + ") break;\n";
    Out += Indent + "}\n";
    Protected.erase(I);
    return;
  }
  default: { // Block of two.
    statement(Depth - 1, FnIndex, Indent);
    statement(Depth - 1, FnIndex, Indent);
    return;
  }
  }
}

void ProgramGenerator::beginFunction(unsigned NParams) {
  Scope.clear();
  Locals.clear();
  Protected.clear();
  LoopCounter = 0;
  for (unsigned P = 0; P != NParams; ++P)
    Scope.push_back("p" + std::to_string(P));
  unsigned NLocals = 1 + R.below(3);
  for (unsigned L = 0; L != NLocals; ++L) {
    Locals.push_back("v" + std::to_string(L));
    Scope.push_back("v" + std::to_string(L));
  }
}

void ProgramGenerator::emitBody(unsigned FnIndex) {
  // Pre-declare the loop counters this body will use: generate into a
  // scratch buffer first, then splice declarations.
  std::string Saved = std::move(Out);
  Out.clear();
  unsigned NStatements = 2 + R.below(4);
  for (unsigned S = 0; S != NStatements; ++S)
    statement(2, FnIndex, "  ");
  std::string Body = std::move(Out);
  Out = std::move(Saved);
  if (!Locals.empty()) {
    Out += "  u32 ";
    for (size_t L = 0; L != Locals.size(); ++L) {
      if (L)
        Out += ", ";
      Out += Locals[L];
    }
    Out += ";\n";
  }
  Out += Body;
}

void ProgramGenerator::emitFunction(unsigned F) {
  Arity.push_back(R.below(4));
  beginFunction(Arity[F]);
  Out += "u32 f" + std::to_string(F) + "(";
  for (unsigned P = 0; P != Arity[F]; ++P) {
    if (P)
      Out += ", ";
    Out += "u32 p" + std::to_string(P);
  }
  Out += ") {\n";
  emitBody(F);
  Out += "  return " + expr(2) + ";\n}\n";
}

void ProgramGenerator::emitMain() {
  beginFunction(0);
  Out += "int main() {\n";
  emitBody(static_cast<unsigned>(Arity.size()));
  Out += "  return (int)((" + expr(2) + ") & 0xff);\n}\n";
}

//===----------------------------------------------------------------------===//
// Adversarial sources
//===----------------------------------------------------------------------===//

const char *qcc::fuzz::adversarialKindName(AdversarialKind K) {
  switch (K) {
  case AdversarialKind::DeepExpression:   return "deep-expression";
  case AdversarialKind::DeeperThanParser: return "deeper-than-parser";
  case AdversarialKind::BoundaryConstants:return "boundary-constants";
  case AdversarialKind::CallChain:        return "call-chain";
  case AdversarialKind::WideCalls:        return "wide-calls";
  case AdversarialKind::DiamondCalls:     return "diamond-calls";
  case AdversarialKind::Recursion:        return "recursion";
  case AdversarialKind::EmptySource:      return "empty-source";
  case AdversarialKind::TruncatedSource:  return "truncated-source";
  case AdversarialKind::GarbageTokens:    return "garbage-tokens";
  }
  return "?";
}

namespace {

std::string nestedExpr(unsigned Depth) {
  std::string E;
  E.reserve(Depth * 4 + 8);
  for (unsigned I = 0; I != Depth; ++I)
    E += "(1+";
  E += "x";
  for (unsigned I = 0; I != Depth; ++I)
    E += ")";
  return E;
}

std::string wrap(const std::string &Body) {
  return "typedef unsigned int u32;\nint main() {\n" + Body + "}\n";
}

} // namespace

std::string qcc::fuzz::generateAdversarial(AdversarialKind K, uint64_t Seed) {
  Rng R(Seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(K));
  switch (K) {
  case AdversarialKind::DeepExpression:
    // Near (just under) the parser's recursion budget: must still parse.
    return wrap("  u32 x;\n  x = 1;\n  x = " +
                nestedExpr(100 + R.below(60)) + ";\n  return (int)x;\n");
  case AdversarialKind::DeeperThanParser:
    // Far past any reasonable budget: must be *diagnosed*, not a stack
    // overflow in the recursive-descent parser.
    return wrap("  u32 x;\n  x = 1;\n  x = " +
                nestedExpr(5000 + R.below(5000)) + ";\n  return (int)x;\n");
  case AdversarialKind::BoundaryConstants: {
    static const char *Edges[] = {"4294967295u", "4294967294u",
                                  "2147483648u", "2147483647",
                                  "0x80000000u", "0xffffffffu", "0"};
    std::string B = "  u32 x, y;\n  x = " + std::string(Edges[R.below(7)]) +
                    ";\n  y = " + Edges[R.below(7)] +
                    ";\n  x = x + y;\n  x = x * y;\n  x = x - y;\n"
                    "  if (x < y) { x = y; }\n  return (int)(x & 0xff);\n";
    return wrap(B);
  }
  case AdversarialKind::CallChain: {
    // f0 calls f1 calls ... calls fN: the bound composes linearly and
    // the analyzer's callee-first walk gets a maximal chain.
    unsigned N = 20 + R.below(40);
    std::string S = "typedef unsigned int u32;\n";
    S += "u32 f" + std::to_string(N) + "(u32 a) { return a + 1; }\n";
    for (unsigned I = N; I != 0; --I)
      S += "u32 f" + std::to_string(I - 1) + "(u32 a) { return f" +
           std::to_string(I) + "(a) + 1; }\n";
    S += "int main() { return (int)(f0(0) & 0xff); }\n";
    return S;
  }
  case AdversarialKind::WideCalls: {
    // One caller fanning out to many leaves: max over many call sites.
    unsigned N = 30 + R.below(50);
    std::string S = "typedef unsigned int u32;\n";
    for (unsigned I = 0; I != N; ++I)
      S += "u32 f" + std::to_string(I) + "(u32 a) { return a + " +
           std::to_string(I) + "; }\n";
    S += "int main() {\n  u32 x;\n  x = 0;\n";
    for (unsigned I = 0; I != N; ++I)
      S += "  x = x + f" + std::to_string(I) + "(x);\n";
    S += "  return (int)(x & 0xff);\n}\n";
    return S;
  }
  case AdversarialKind::DiamondCalls: {
    // Layered diamond: each layer calls the next twice. Path count grows
    // exponentially; bounds and analysis must stay linear in the graph.
    unsigned Layers = 8 + R.below(8);
    std::string S = "typedef unsigned int u32;\n";
    S += "u32 d" + std::to_string(Layers) + "(u32 a) { return a; }\n";
    for (unsigned I = Layers; I != 0; --I)
      S += "u32 d" + std::to_string(I - 1) + "(u32 a) { return d" +
           std::to_string(I) + "(a) + d" + std::to_string(I) + "(a + 1); }\n";
    S += "int main() { return (int)(d0(1) & 0xff); }\n";
    return S;
  }
  case AdversarialKind::Recursion: {
    // Direct and mutual recursion: the automatic analyzer must *skip*
    // these (no unsound bound), and everything else must still work.
    return "typedef unsigned int u32;\n"
           "u32 even(u32 n);\n"
           "u32 odd(u32 n) { if (n == 0u) { return 0u; } "
           "return even(n - 1u); }\n"
           "u32 even(u32 n) { if (n == 0u) { return 1u; } "
           "return odd(n - 1u); }\n"
           "u32 down(u32 n) { if (n == 0u) { return 0u; } "
           "return down(n - 1u) + 1u; }\n"
           "int main() { return (int)((even(" +
           std::to_string(R.below(8)) + "u) + down(" +
           std::to_string(R.below(8)) + "u)) & 0xffu); }\n";
  }
  case AdversarialKind::EmptySource: {
    static const char *Variants[] = {
        "", " ", "\n\n\n", "/* nothing */", "// only a comment\n",
        "typedef unsigned int u32;\n"};
    return Variants[R.below(6)];
  }
  case AdversarialKind::TruncatedSource: {
    // A valid random program cut mid-stream: every prefix must be
    // rejected gracefully.
    std::string Full = ProgramGenerator(Seed).generate();
    if (Full.size() < 2)
      return Full;
    return Full.substr(0, 1 + R.below(static_cast<uint32_t>(Full.size() - 1)));
  }
  case AdversarialKind::GarbageTokens: {
    static const char Alphabet[] =
        "{}()[];,+-*/%&|^<>=!~?: \nabcxyz0123456789\"'\\#@$.";
    std::string S;
    unsigned N = 1 + R.below(512);
    S.reserve(N);
    for (unsigned I = 0; I != N; ++I)
      S += Alphabet[R.below(sizeof(Alphabet) - 1)];
    return S;
  }
  }
  return "";
}
