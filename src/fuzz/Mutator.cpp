//===- fuzz/Mutator.cpp - Derivation (proof-object) mutation --------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "frontend/Frontend.h"
#include "fuzz/Rng.h"
#include "logic/Builder.h"
#include "logic/Checker.h"
#include "programs/Corpus.h"

using namespace qcc;
using namespace qcc::fuzz;
using namespace qcc::logic;

const char *qcc::fuzz::mutationKindName(MutationKind K) {
  switch (K) {
  case MutationKind::PreZero:      return "pre-zero";
  case MutationKind::PostInflate:  return "post-inflate";
  case MutationKind::RetagAsSkip:  return "retag-as-skip";
  case MutationKind::DropChildren: return "drop-children";
  case MutationKind::SpecShrink:   return "spec-shrink";
  case MutationKind::PerturbBound: return "perturb-bound";
  case MutationKind::RedirectStmt: return "redirect-stmt";
  }
  return "?";
}

namespace {

bool isConstZero(const BoundExpr &E) {
  return E && E->K == BoundExprNode::Kind::Const && E->Value == ExtNat(0);
}

bool isCallRule(Rule R) {
  return R == Rule::Call || R == Rule::CallBalanced || R == Rule::CallHavoc ||
         R == Rule::ExternalCall;
}

/// Rewrites \p E with every occurrence of M(\p Func) replaced by 0 — the
/// forged claim "calling Func is free".
BoundExpr zeroMetric(const BoundExpr &E, const std::string &Func) {
  if (!E)
    return E;
  switch (E->K) {
  case BoundExprNode::Kind::Const:
  case BoundExprNode::Kind::Log2W:
  case BoundExprNode::Kind::Log2C:
  case BoundExprNode::Kind::NatTerm:
    return E;
  case BoundExprNode::Kind::MetricVar:
    return E->Func == Func ? bZero() : E;
  case BoundExprNode::Kind::Add:
    return bAdd(zeroMetric(E->Lhs, Func), zeroMetric(E->Rhs, Func));
  case BoundExprNode::Kind::Max:
    return bMax(zeroMetric(E->Lhs, Func), zeroMetric(E->Rhs, Func));
  case BoundExprNode::Kind::Mul:
    return bMul(zeroMetric(E->Lhs, Func), zeroMetric(E->Rhs, Func));
  case BoundExprNode::Kind::Scale:
    return bScale(E->Factor, zeroMetric(E->Lhs, Func));
  case BoundExprNode::Kind::Guard:
    return bGuard(*E->Condition, zeroMetric(E->Lhs, Func));
  case BoundExprNode::Kind::Ite:
    return bIte(*E->Condition, zeroMetric(E->Lhs, Func),
                zeroMetric(E->Rhs, Func));
  }
  return E;
}

struct Corpus {
  clight::Program Program;
  FunctionContext Gamma;
  std::vector<FunctionBound> Bounds; ///< Checked, in deterministic order.
  std::string BuildError;            ///< Non-empty when setup failed.
};

/// Parses the Table 2 file and derives every interactive bound once per
/// campaign; each is sanity-checked before mutation begins.
Corpus buildCorpus() {
  Corpus C;
  DiagnosticEngine D;
  auto CL = frontend::parseProgram(programs::table2Source(), D);
  if (!CL) {
    C.BuildError = "table2 corpus does not parse: " + D.str();
    return C;
  }
  C.Program = std::move(*CL);
  FunctionContext Specs = programs::table2Specs();
  DerivationBuilder Builder(C.Program, Specs, {});
  for (const auto &[Callee, Hint] : programs::table2CallHints())
    Builder.setCallResultHint(Callee, Hint);
  for (const auto &[Name, Spec] : Specs) {
    DiagnosticEngine BD;
    auto FB = Builder.buildFunctionBound(Name, Spec, BD);
    if (!FB) {
      C.BuildError = "cannot derive '" + Name + "': " + BD.str();
      return C;
    }
    C.Bounds.push_back(std::move(*FB));
  }
  C.Gamma = Builder.context();
  ProofChecker Checker(C.Program, C.Gamma, {});
  for (const FunctionBound &FB : C.Bounds) {
    DiagnosticEngine CD;
    if (!Checker.checkFunctionBound(FB, CD)) {
      C.BuildError =
          "unmutated '" + FB.Function + "' fails to check: " + CD.str();
      return C;
    }
  }
  return C;
}

FunctionBound cloneBound(const FunctionBound &FB) {
  return FunctionBound{FB.Function, FB.Spec, FB.Body->clone()};
}

/// Applies one random mutation; returns its description, or nullopt when
/// the drawn site is unsuitable (caller re-draws).
std::optional<std::string> applyMutation(FunctionBound &Mutant,
                                         MutationKind K, Rng &R) {
  size_t N = Mutant.Body->size();
  size_t Index = R.below(static_cast<uint32_t>(N));
  Derivation *Node = Mutant.Body->nodeAt(Index);
  if (!Node)
    return std::nullopt;
  std::string Where = std::string(mutationKindName(K)) + " at node " +
                      std::to_string(Index) + " (" + ruleName(Node->R) + ")";
  switch (K) {
  case MutationKind::PreZero:
    // Claim zero potential where the proof needed some.
    if (isConstZero(Node->Pre))
      return std::nullopt;
    Node->Pre = bZero();
    return Where;
  case MutationKind::PostInflate:
    // Claim the function leaves more potential than its body establishes.
    Mutant.Spec.Post = bAdd(Mutant.Spec.Post, bMetric(Mutant.Function));
    return std::string(mutationKindName(K)) + " on spec";
  case MutationKind::RetagAsSkip:
    // A paying rule relabeled as the free one.
    if (!isCallRule(Node->R) && Node->R != Rule::Frame)
      return std::nullopt;
    Node->R = Rule::Skip;
    return Where;
  case MutationKind::DropChildren:
    if (Node->Children.empty())
      return std::nullopt;
    Node->Children.clear();
    return Where;
  case MutationKind::SpecShrink:
    // The cheapest possible claim: {0} f {0}.
    if (isConstZero(Mutant.Spec.Pre) && isConstZero(Mutant.Spec.Post))
      return std::nullopt;
    Mutant.Spec = FunctionSpec::balanced(bZero());
    return std::string(mutationKindName(K)) + " on spec";
  case MutationKind::PerturbBound: {
    // At a call node, erase the callee's metric from the precondition:
    // the claim "this call costs nothing".
    if (!isCallRule(Node->R) || Node->R == Rule::ExternalCall || !Node->S)
      return std::nullopt;
    BoundExpr Zeroed = zeroMetric(Node->Pre, Node->S->Callee);
    if (Zeroed == Node->Pre || structurallyEqual(Zeroed, Node->Pre))
      return std::nullopt;
    Node->Pre = Zeroed;
    return Where + " zeroing M(" + Node->S->Callee + ")";
  }
  case MutationKind::RedirectStmt: {
    // A derivation for one statement must not certify a different one.
    if (Mutant.Body->Children.empty() ||
        Mutant.Body->Children[0]->S == Mutant.Body->S)
      return std::nullopt;
    Mutant.Body->S = Mutant.Body->Children[0]->S;
    return std::string(mutationKindName(K)) + " at root";
  }
  }
  return std::nullopt;
}

} // namespace

MutationReport qcc::fuzz::mutateDerivations(uint64_t Seed, unsigned Count) {
  MutationReport Report;
  Corpus C = buildCorpus();
  if (!C.BuildError.empty()) {
    Report.Survivors.push_back("corpus setup failed: " + C.BuildError);
    return Report;
  }

  for (unsigned I = 0; I != Count; ++I) {
    Rng R(Seed * 0x100000001b3ull + I);
    // Re-draw until an applicable (function, kind, node) triple is hit;
    // every campaign of any size finds one (PreZero alone always applies
    // somewhere).
    for (unsigned Attempt = 0; Attempt != 64; ++Attempt) {
      const FunctionBound &Original =
          C.Bounds[R.below(static_cast<uint32_t>(C.Bounds.size()))];
      auto K = static_cast<MutationKind>(R.below(NumMutationKinds));
      FunctionBound Mutant = cloneBound(Original);
      auto Description = applyMutation(Mutant, K, R);
      if (!Description)
        continue;
      ++Report.Tried;
      // Both representations must reject: the store serves proofs in
      // flat form without ever rebuilding the tree, so a mutant that
      // slips past either checker is a soundness hole.
      ProofChecker Checker(C.Program, C.Gamma, {});
      DiagnosticEngine CD;
      bool TreeAccepts = Checker.checkFunctionBound(Mutant, CD);
      DerivationForest Fo;
      uint32_t RootIdx =
          Fo.addRoot(Mutant.Function, Mutant.Spec, *Mutant.Body);
      ProofChecker ForestChecker(C.Program, C.Gamma, {});
      DiagnosticEngine FD;
      bool ForestAccepts = ForestChecker.checkFunctionBound(Fo, RootIdx, FD);
      if (TreeAccepts || ForestAccepts)
        Report.Survivors.push_back(
            std::string("mutant ACCEPTED (soundness hole, ") +
            (TreeAccepts && ForestAccepts ? "both checkers"
             : TreeAccepts               ? "tree checker"
                                         : "forest checker") +
            "): seed " + std::to_string(Seed) + " iteration " +
            std::to_string(I) + ", function '" + Original.Function + "', " +
            *Description);
      else
        ++Report.Rejected;
      break;
    }
  }
  return Report;
}
