//===- fuzz/Fuzz.h - The fault-injection / no-crash harness -----*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline-wide hardening harness behind `qcc --fuzz N --seed S` and
/// the `qcc_fuzz` ctest target. One invariant, three attack surfaces:
///
///   no input — hostile source text, corrupted intermediate program, or
///   forged proof object — may crash qcc or extract an unsound bound;
///   qcc either verifies the input or reports structured diagnostics.
///
/// The harness therefore runs three campaigns per invocation:
///
///   1. *Sources*: N seeded programs (grammar-random plus the adversarial
///      families of fuzz/Generator.h) through the full pipeline on the
///      batch engine — compile, translation-validate, bound, Theorem 1.
///   2. *Proof objects*: seeded corruptions of the Table 2 derivations
///      (fuzz/Mutator.h); the proof checker must reject every mutant.
///   3. *Pass boundaries*: every fault in fuzz/FaultInject.h injected
///      into a pipeline run; each stage validator must catch its own.
///
/// Any violation is recorded with the seed that produced it, so every
/// report replays deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FUZZ_FUZZ_H
#define QCC_FUZZ_FUZZ_H

#include "support/Supervision.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {
namespace fuzz {

/// Harness configuration (`qcc --fuzz N --seed S` sets Count and Seed).
struct FuzzOptions {
  uint64_t Count = 256;  ///< Generated source programs.
  uint64_t Seed = 1;     ///< Base seed; determines everything.
  unsigned Jobs = 0;     ///< Batch workers; 0 = hardware concurrency.
  unsigned Mutants = 64; ///< Derivation mutants to forge.
  bool Faults = true;    ///< Run the pass-boundary fault campaign.
  /// Every fourth generated source is adversarial (cycling through the
  /// AdversarialKind families) instead of grammar-random.
  bool Adversarial = true;
  /// Campaign 4: seeded crash-recovery chaos scenarios against the
  /// persistent store (fuzz/Chaos.h) — forked writers felled by
  /// failpoint crashes and timed SIGKILLs, with recovery asserted
  /// bit-identical to the fault-free run. 0 skips the campaign (the
  /// CLI runs 200). Forks: only safe when the caller has no other live
  /// threads at campaign time (the earlier campaigns join theirs).
  uint64_t FailPointRuns = 0;
  /// Scratch directory for campaign 4's per-scenario stores; empty
  /// derives one under the system temp directory.
  std::string ChaosDir;
  /// Campaign-wide cancel token (the CLI's SIGINT handler cancels it).
  /// A cancelled harness stops between campaigns and jobs, marks the
  /// report Interrupted, and still returns everything observed so far.
  Supervisor *Interrupt = nullptr;
};

/// Everything one harness run observed.
struct FuzzReport {
  uint64_t Generated = 0; ///< Source programs fed to the pipeline.
  uint64_t Verified = 0;  ///< Compiled, validated, bounded, Theorem 1 ok.
  uint64_t Diagnosed = 0; ///< Properly rejected with diagnostics.
  unsigned MutantsTried = 0;
  unsigned MutantsRejected = 0;
  unsigned FaultsTried = 0;
  unsigned FaultsRejected = 0;
  uint64_t ChaosRan = 0;     ///< Campaign 4 scenarios executed.
  uint64_t ChaosCrashes = 0; ///< Writers crashed or killed mid-commit.
  uint64_t ChaosQuarantined = 0; ///< Damage quarantined on recovery.
  /// Invariant violations, each with its seed for replay. Crashes do not
  /// appear here — a crash kills the process, which is the point.
  std::vector<std::string> Violations;
  /// Jobs stopped without a verdict (cancelled or budget-quarantined);
  /// they count in none of the buckets above.
  uint64_t Unfinished = 0;
  /// The interrupt token fired: the report is a partial campaign record,
  /// not a full run.
  bool Interrupted = false;

  bool ok() const { return Violations.empty(); }

  /// Human-readable summary (what `qcc --fuzz` prints).
  std::string str() const;
};

/// Runs the harness. Deterministic in \p Options (modulo wall time).
FuzzReport runFuzz(const FuzzOptions &Options = {});

} // namespace fuzz
} // namespace qcc

#endif // QCC_FUZZ_FUZZ_H
