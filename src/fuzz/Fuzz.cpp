//===- fuzz/Fuzz.cpp - The fault-injection / no-crash harness -------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "batch/Batch.h"
#include "driver/Compiler.h"
#include "fuzz/Chaos.h"
#include "fuzz/FaultInject.h"
#include "fuzz/Generator.h"
#include "fuzz/Mutator.h"

#include <filesystem>

#include <unistd.h>

using namespace qcc;
using namespace qcc::fuzz;

namespace {

/// A source exercising every corruptible construct the fault table needs:
/// parameters, a bounded loop with a break (Cminor Exit statements), array
/// and global stores, spills, and calls at every level.
const char *faultSource() {
  return "typedef unsigned int u32;\n"
         "u32 g0[8];\n"
         "u32 total = 0;\n"
         "u32 helper(u32 n, u32 step) {\n"
         "  u32 acc, i0;\n"
         "  acc = n;\n"
         "  for (i0 = 0; i0 < 4; i0++) {\n"
         "    g0[(acc + i0) % 8] = acc;\n"
         "    acc = acc + step;\n"
         "    if (100u < acc) break;\n"
         "  }\n"
         "  total = total + acc;\n"
         "  return acc;\n"
         "}\n"
         "int main() {\n"
         "  u32 x;\n"
         "  x = helper(3u, 2u);\n"
         "  x = x + helper(x, 1u);\n"
         "  return (int)(x & 0xff);\n"
         "}\n";
}

/// Was the Theorem 1 failure a genuine stack overflow at bound - 4? The
/// generator deliberately emits a fraction of unguarded divisions, and a
/// program that traps on its own data fails at *any* stack size — that is
/// the program's fault and Theorem 1 says nothing about it. Only an
/// exhausted stack contradicts the verified bound.
bool overflowedAtBound(const std::string &Source, uint32_t StackBytes) {
  DiagnosticEngine D;
  driver::CompilerOptions CO;
  // Re-produce the same Asm; validation and bounds don't affect it.
  CO.ValidateTranslation = false;
  CO.AnalyzeBounds = false;
  auto C = driver::compile(Source, D, CO);
  if (!C)
    return true; // Can't re-examine: keep the report, loudly.
  return driver::runWithStackSize(*C, StackBytes).StackOverflow;
}

} // namespace

std::string FuzzReport::str() const {
  std::string S;
  if (Interrupted)
    S += "fuzz: INTERRUPTED - partial campaign report (" +
         std::to_string(Unfinished) + " jobs unfinished)\n";
  S += "fuzz: " + std::to_string(Generated) + " programs (" +
                  std::to_string(Verified) + " verified, " +
                  std::to_string(Diagnosed) + " diagnosed), " +
                  std::to_string(MutantsRejected) + "/" +
                  std::to_string(MutantsTried) + " mutants rejected, " +
                  std::to_string(FaultsRejected) + "/" +
                  std::to_string(FaultsTried) + " faults rejected\n";
  if (ChaosRan)
    S += "fuzz: " + std::to_string(ChaosRan) + " chaos scenarios (" +
         std::to_string(ChaosCrashes) + " writers crashed/killed, " +
         std::to_string(ChaosQuarantined) + " entries quarantined)\n";
  if (ok()) {
    S += "fuzz: no invariant violations\n";
  } else {
    S += "fuzz: " + std::to_string(Violations.size()) + " VIOLATION" +
         (Violations.size() == 1 ? "" : "S") + ":\n";
    for (const std::string &V : Violations)
      S += "  " + V + "\n";
  }
  return S;
}

FuzzReport qcc::fuzz::runFuzz(const FuzzOptions &Options) {
  FuzzReport Report;

  auto Stopped = [&Options] {
    return Options.Interrupt && Options.Interrupt->stopRequested();
  };

  // Campaign 1: sources through the full pipeline on the batch engine.
  // Generation itself is interruptible: at large --fuzz counts it is the
  // first long phase SIGINT can land in.
  std::vector<batch::BatchJob> Jobs;
  Jobs.reserve(Options.Count);
  for (uint64_t I = 0; I != Options.Count && !Stopped(); ++I) {
    uint64_t Seed = Options.Seed * 0x9e3779b97f4a7c15ull + I;
    batch::BatchJob J;
    if (Options.Adversarial && I % 4 == 3) {
      auto K = static_cast<AdversarialKind>((I / 4) % NumAdversarialKinds);
      J.Id = std::string("adv-") + adversarialKindName(K) + "-" +
             std::to_string(Seed);
      J.Source = generateAdversarial(K, Seed);
    } else {
      J.Id = "gen-" + std::to_string(Seed);
      J.Source = ProgramGenerator(Seed).generate();
    }
    Jobs.push_back(std::move(J));
  }
  batch::BatchOptions BO;
  BO.Jobs = Options.Jobs;
  BO.CheckTheorem1 = true;
  BO.Interrupt = Options.Interrupt;
  batch::BatchResult Batch = batch::runBatch(Jobs, BO);

  Report.Generated = Jobs.size();
  for (size_t I = 0; I != Batch.Programs.size(); ++I) {
    const batch::ProgramResult &R = Batch.Programs[I];
    if (R.Status == batch::JobStatus::Cancelled ||
        R.Status == batch::JobStatus::Quarantined) {
      // No verdict: neither verified, diagnosed, nor a violation.
      ++Report.Unfinished;
      continue;
    }
    if (R.Theorem1Checked && !R.Theorem1Ok) {
      if (overflowedAtBound(Jobs[I].Source, R.Theorem1StackBytes))
        Report.Violations.push_back(
            "program " + R.Id + ": UNSOUND BOUND - stack overflow at " +
            "verified bound - 4 (" + std::to_string(R.Theorem1StackBytes) +
            " bytes): " + R.Diagnostics);
      else
        ++Report.Diagnosed; // Trapped on its own data (e.g. division).
    } else if (R.Ok) {
      ++Report.Verified;
    } else if (R.Diagnostics.empty()) {
      Report.Violations.push_back("program " + R.Id +
                                  ": rejected without any diagnostic");
    } else {
      ++Report.Diagnosed;
    }
  }

  if (Stopped()) {
    Report.Interrupted = true;
    return Report; // Partial: campaigns 2 and 3 never started.
  }

  // Campaign 2: forged proof objects against the checker.
  MutationReport MR = mutateDerivations(Options.Seed, Options.Mutants);
  Report.MutantsTried = MR.Tried;
  Report.MutantsRejected = MR.Rejected;
  for (const std::string &S : MR.Survivors)
    Report.Violations.push_back("derivation " + S);

  // Campaign 3: every fault in the table, at its pipeline stage.
  if (Options.Faults) {
    for (size_t F = 0; F != allFaults().size(); ++F) {
      if (Stopped())
        break;
      ++Report.FaultsTried;
      std::string V = injectAndCheck(F, faultSource(), Options.Seed + F);
      if (V.empty())
        ++Report.FaultsRejected;
      else
        Report.Violations.push_back(V);
    }
  }

  // Campaign 4: crash-recovery chaos against the persistent store. Runs
  // last, when the batch pool's threads have all joined — the harness
  // forks. The scratch directory is per-process so parallel harnesses
  // (ctest -j) never share scenario stores.
  if (Options.FailPointRuns && !Stopped()) {
    ChaosOptions CO;
    CO.Seed = Options.Seed;
    CO.Scenarios = Options.FailPointRuns;
    CO.Interrupt = Options.Interrupt;
    CO.ScratchDir =
        !Options.ChaosDir.empty()
            ? Options.ChaosDir
            : (std::filesystem::temp_directory_path() /
               ("qcc-fuzz-chaos-" + std::to_string(::getpid())))
                  .string();
    ChaosReport CR = runStoreChaos(CO);
    Report.ChaosRan = CR.Ran;
    Report.ChaosCrashes = CR.CrashedChildren + CR.KilledChildren;
    Report.ChaosQuarantined = CR.Quarantined;
    for (const std::string &V : CR.Violations)
      Report.Violations.push_back("chaos " + V);
    if (Options.ChaosDir.empty() && CR.ok()) {
      // Clean runs leave nothing behind; failing scenarios keep their
      // store directories for inspection (the report names the seeds).
      std::error_code EC;
      std::filesystem::remove_all(CO.ScratchDir, EC);
    }
  }

  Report.Interrupted = Stopped();
  return Report;
}
