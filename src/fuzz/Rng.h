//===- fuzz/Rng.h - Deterministic random-number generation ------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The splitmix64 generator every randomized component shares: the
/// differential tester, the program generator, the derivation mutator,
/// and the fault injector. Seeds fully determine output, so any failure
/// report ("seed 12034 crashed the RTL verifier") replays exactly.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FUZZ_RNG_H
#define QCC_FUZZ_RNG_H

#include <cstdint>

namespace qcc {
namespace fuzz {

/// Deterministic splitmix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N).
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }

  /// True with probability \p Percent / 100.
  bool chance(uint32_t Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace fuzz
} // namespace qcc

#endif // QCC_FUZZ_RNG_H
