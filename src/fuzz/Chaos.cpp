//===- fuzz/Chaos.cpp - Crash-recovery chaos harness ----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Chaos.h"

#include "batch/Batch.h"
#include "store/Store.h"
#include "support/FailPoint.h"

#include <chrono>
#include <filesystem>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace qcc;
using namespace qcc::fuzz;

namespace fs = std::filesystem;

namespace {

/// One scenario family: the failpoint spec the child writer arms, and
/// whether the parent fells it with a timed SIGKILL instead of (or on
/// top of) a crash action.
struct Shape {
  const char *Name;
  const char *Spec; ///< QCC_FAILPOINTS grammar; "" = no failpoints.
  bool Kill;        ///< Parent SIGKILLs the child at a seeded moment.
};

/// The scenario matrix. Crash shapes target each commit boundary of the
/// store's temp+fsync+rename protocol at varying hit counts (so with
/// three puts per child, the crash lands before, between, and after
/// commits — and sometimes not at all, which is a valid fault-free
/// run). Error/short shapes must be absorbed: the put fails, the child
/// exits cleanly. Kill shapes race a raw SIGKILL against a writer loop,
/// with delay failpoints widening the windows at each boundary.
/// Deliberately absent: "io.read"/"store.read" faults, which would make
/// the child's own recovery scan quarantine healthy entries and break
/// the warm-store invariant the parent asserts.
const Shape Shapes[] = {
    {"crash-write-1", "store.write=crash@1", false},
    {"crash-write-2", "store.write=crash@2", false},
    {"crash-write-3", "store.write=crash@3", false},
    {"crash-write-4", "store.write=crash@4", false},
    {"crash-fsync-1", "store.fsync=crash@1", false},
    {"crash-fsync-2", "store.fsync=crash@2", false},
    {"crash-fsync-3", "store.fsync=crash@3", false},
    {"crash-rename-1", "store.rename=crash@1", false},
    {"crash-rename-2", "store.rename=crash@2", false},
    {"crash-rename-3", "store.rename=crash@3", false},
    {"crash-iowrite-2", "io.write=crash@2", false},
    {"crash-iofsync-1", "io.fsync=crash@1", false},
    {"crash-prob", "store.write=crash@p0.4", false},
    {"err-write-1", "store.write=err@1", false},
    {"err-write-enospc", "store.write=err:enospc@2", false},
    {"short-write-1", "store.write=short@1", false},
    {"short-write-2", "store.write=short@2", false},
    {"err-fsync-1", "store.fsync=err@1", false},
    {"err-rename-2", "store.rename=err@2", false},
    {"err-iowrite", "io.write=err:eio@1", false},
    {"short-iowrite", "io.write=short@3", false},
    {"err-iofsync", "io.fsync=err@2", false},
    {"short-prob", "store.write=short@p0.5", false},
    {"err-prob", "store.fsync=err@p0.3", false},
    {"kill-plain", "", true},
    {"kill-slow-fsync", "store.fsync=delay:3", true},
    {"kill-slow-write", "store.write=delay:2@p0.7", true},
    {"kill-slow-rename", "store.rename=delay:2", true},
    {"kill-slow-flock", "store.flock=delay:2", true},
};
constexpr size_t NumShapes = sizeof(Shapes) / sizeof(Shapes[0]);

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// Three tiny programs that verify definitively: the material every
/// scenario's store traffics in. Small keeps 200+ scenarios fast; three
/// keeps hit-count triggers meaningful (the crash can land before,
/// between, or after the child's puts).
constexpr size_t NumJobs = 3;

const char *chaosSource(size_t I) {
  static const char *Srcs[NumJobs] = {
      "int main() { return 0; }\n",

      "unsigned int f(unsigned int n) { return n + 7u; }\n"
      "int main() { return (int)(f(5u) & 0xffu); }\n",

      "unsigned int g[4];\n"
      "unsigned int fill(unsigned int s) {\n"
      "  unsigned int i;\n"
      "  for (i = 0u; i < 4u; i++) g[i] = s + i;\n"
      "  return g[3];\n"
      "}\n"
      "int main() { return (int)(fill(2u) & 0x7fu); }\n",
  };
  return Srcs[I];
}

/// The fault-free reference material: jobs, keys, results, and the
/// byte-exact entry image each key must serve (or miss) forever.
struct Reference {
  batch::BatchJob Jobs[NumJobs];
  batch::JobKey Keys[NumJobs];
  batch::ProgramResult Results[NumJobs];
  std::string Images[NumJobs];
  bool Ok = true;
};

Reference buildReference() {
  Reference Ref;
  batch::BatchOptions BO;
  for (size_t I = 0; I != NumJobs; ++I) {
    Ref.Jobs[I].Id = "chaos-" + std::to_string(I);
    Ref.Jobs[I].Source = chaosSource(I);
    Ref.Keys[I] = batch::jobKey(Ref.Jobs[I], BO.CheckTheorem1);
    Ref.Results[I] =
        batch::runSupervisedJob(Ref.Jobs[I], BO, /*Dog=*/nullptr);
    if (Ref.Results[I].Status != batch::JobStatus::Ok &&
        Ref.Results[I].Status != batch::JobStatus::Failed)
      Ref.Ok = false; // Only definitive verdicts are storable.
    Ref.Images[I] =
        store::VerificationStore::encodeEntry(Ref.Keys[I], Ref.Results[I]);
  }
  return Ref;
}

/// The child writer: arm the scenario's failpoints (per-process, so the
/// parent stays unarmed), open the store, and put every key — once for
/// crash/fault shapes, forever for kill shapes (the parent ends those).
/// Exits only through _exit: a forked gtest/fuzz child must not run
/// atexit handlers or flush shared stdio buffers.
[[noreturn]] void childWriter(const Shape &S, uint64_t Seed,
                              const store::StoreOptions &SO,
                              const Reference &Ref) {
  if (S.Spec[0]) {
    std::string Error;
    if (!failpoint::Registry::instance().configure(S.Spec, Seed, &Error))
      ::_exit(3);
  }
  auto St = store::VerificationStore::open(SO);
  if (!St)
    ::_exit(4);
  size_t Start = static_cast<size_t>(Seed % NumJobs);
  do {
    for (size_t I = 0; I != NumJobs; ++I) {
      size_t K = (Start + I) % NumJobs;
      St->put(Ref.Keys[K], Ref.Results[K], nullptr);
    }
  } while (S.Kill);
  ::_exit(0);
}

/// Temp-file litter under \p Dir (what a crashed writer leaves behind;
/// reopening must sweep it).
uint64_t countTmpFiles(const std::string &Dir) {
  uint64_t N = 0;
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC))
    if (It->path().filename().string().rfind(".tmp-", 0) == 0)
      ++N;
  return N;
}

} // namespace

std::string ChaosReport::str() const {
  std::string S;
  if (Interrupted)
    S += "chaos: INTERRUPTED - partial campaign report\n";
  S += "chaos: " + std::to_string(Ran) + " scenarios (" +
       std::to_string(CrashedChildren) + " crashed, " +
       std::to_string(KilledChildren) + " killed, " +
       std::to_string(SurvivedChildren) + " absorbed), " +
       std::to_string(TornTmps) + " torn temp files swept, " +
       std::to_string(Quarantined) + " entries quarantined\n";
  if (ok()) {
    S += "chaos: no invariant violations\n";
  } else {
    S += "chaos: " + std::to_string(Violations.size()) + " VIOLATION" +
         (Violations.size() == 1 ? "" : "S") + ":\n";
    for (const std::string &V : Violations)
      S += "  " + V + "\n";
  }
  return S;
}

ChaosReport qcc::fuzz::runStoreChaos(const ChaosOptions &Options) {
  ChaosReport Report;
  auto Stopped = [&Options] {
    return Options.Interrupt && Options.Interrupt->stopRequested();
  };

  if (Options.ScratchDir.empty()) {
    Report.Violations.push_back("chaos harness: ScratchDir is required");
    return Report;
  }
  std::error_code EC;
  fs::create_directories(Options.ScratchDir, EC);
  if (EC) {
    Report.Violations.push_back("chaos harness: cannot create scratch dir " +
                                Options.ScratchDir + ": " + EC.message());
    return Report;
  }

  Reference Ref = buildReference();
  if (!Ref.Ok) {
    Report.Violations.push_back(
        "chaos harness: reference jobs did not verify definitively");
    return Report;
  }

  for (uint64_t N = 0; N != Options.Scenarios; ++N) {
    if (Stopped()) {
      Report.Interrupted = true;
      break;
    }
    uint64_t Seed = Options.Seed * 0x9e3779b97f4a7c15ull + N;
    uint64_t Rng = Seed;
    const Shape &S = Shapes[N % NumShapes];
    // Even scenarios crash into a pre-populated (warm) store, where the
    // invariant is strictly stronger: atomic rename means a dying
    // writer can never damage the committed entry it was replacing, so
    // every key must still *hit*, bit-identically.
    bool Warm = (N % 2) == 0;
    std::string Tag = std::string(S.Name) + (Warm ? "/warm" : "/cold") +
                      " seed " + std::to_string(Seed);

    fs::path Dir = fs::path(Options.ScratchDir) / ("s" + std::to_string(N));
    fs::remove_all(Dir, EC);
    store::StoreOptions SO;
    SO.Dir = Dir.string();

    if (Warm) {
      auto St = store::VerificationStore::open(SO);
      if (!St) {
        Report.Violations.push_back(Tag + ": cannot pre-populate store");
        continue;
      }
      for (size_t I = 0; I != NumJobs; ++I)
        St->put(Ref.Keys[I], Ref.Results[I], nullptr);
    }

    pid_t Pid = ::fork();
    if (Pid < 0) {
      Report.Violations.push_back(Tag + ": fork failed");
      break;
    }
    if (Pid == 0)
      childWriter(S, Seed, SO, Ref); // _exits; never returns.

    if (S.Kill) {
      // A seeded 0..7ms fuse: early kills land mid-open, late ones land
      // mid-put — and the delay failpoints stretch each boundary.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(splitmix64(Rng) % 8));
      ::kill(Pid, SIGKILL);
    }
    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid) {
      Report.Violations.push_back(Tag + ": waitpid failed");
      continue;
    }
    if (WIFSIGNALED(Status) && WTERMSIG(Status) == SIGKILL && S.Kill) {
      ++Report.KilledChildren;
    } else if (WIFEXITED(Status) &&
               WEXITSTATUS(Status) == failpoint::CrashExitCode) {
      ++Report.CrashedChildren;
    } else if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
      ++Report.SurvivedChildren;
    } else {
      // A real crash (SIGSEGV/SIGABRT), or the child could not even set
      // up: either way the no-crash contract is broken.
      Report.Violations.push_back(
          Tag + ": writer died unexpectedly (" +
          (WIFSIGNALED(Status)
               ? "signal " + std::to_string(WTERMSIG(Status))
               : "exit " + std::to_string(WEXITSTATUS(Status))) +
          ")");
      continue;
    }

    // Recovery. Count the litter first: reopening must sweep it.
    Report.TornTmps += countTmpFiles(SO.Dir);
    std::string Error;
    auto St = store::VerificationStore::open(SO, &Error);
    if (!St) {
      Report.Violations.push_back(Tag + ": reopen failed: " + Error);
      continue;
    }
    Report.Quarantined += St->stats().Quarantined;
    if (countTmpFiles(SO.Dir) != 0)
      Report.Violations.push_back(Tag + ": temp litter survived reopen");

    // No torn reads, ever: each key misses or serves the reference
    // image bit for bit. A warm store must not even miss.
    for (size_t I = 0; I != NumJobs; ++I) {
      auto R = St->fetch(Ref.Keys[I], Ref.Jobs[I], nullptr);
      if (!R) {
        if (Warm)
          Report.Violations.push_back(
              Tag + ": committed entry " + std::to_string(I) +
              " lost (warm store must stay warm)");
        continue;
      }
      if (store::VerificationStore::encodeEntry(Ref.Keys[I], *R) !=
          Ref.Images[I])
        Report.Violations.push_back(Tag + ": CORRUPTION ESCAPE - entry " +
                                    std::to_string(I) +
                                    " re-encodes differently");
    }

    // And the store is still fully functional: a clean put/fetch round
    // of every key serves bit-identical images.
    for (size_t I = 0; I != NumJobs; ++I)
      St->put(Ref.Keys[I], Ref.Results[I], nullptr);
    for (size_t I = 0; I != NumJobs; ++I) {
      auto R = St->fetch(Ref.Keys[I], Ref.Jobs[I], nullptr);
      if (!R || store::VerificationStore::encodeEntry(Ref.Keys[I], *R) !=
                    Ref.Images[I]) {
        Report.Violations.push_back(
            Tag + ": store wedged after recovery (entry " +
            std::to_string(I) + ")");
        break;
      }
    }

    ++Report.Ran;
    if (Report.Violations.empty())
      fs::remove_all(Dir, EC); // Keep failing scenarios for inspection.
  }
  Report.Interrupted = Report.Interrupted || Stopped();
  return Report;
}
