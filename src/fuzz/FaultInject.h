//===- fuzz/FaultInject.h - Pass-boundary fault injection -------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injection at the driver's pass boundaries. Every lowering's
/// output is corrupted through driver::CompilerOptions::FaultHook — a
/// dangling callee, an out-of-range temporary, a branch to a label that
/// does not exist, a frame layout that wraps 32-bit arithmetic — and the
/// harness demands the driver *reject with diagnostics* rather than
/// crash in a downstream consumer. This is what makes the pass-boundary
/// validators (cminor/rtl/mach/x86 Verify) load-bearing: after each one
/// accepts, the next pass's preconditions genuinely hold.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FUZZ_FAULTINJECT_H
#define QCC_FUZZ_FAULTINJECT_H

#include "driver/Compiler.h"
#include "fuzz/Rng.h"

#include <string>
#include <vector>

namespace qcc {
namespace fuzz {

/// One fault the injector can apply.
struct FaultSite {
  driver::PipelineStage Stage;
  const char *Name;
};

/// Every fault, in deterministic order (multiple per pipeline stage).
const std::vector<FaultSite> &allFaults();

/// Applies fault \p Index (into allFaults()) to \p C. Guaranteed to leave
/// the stage's IR malformed: when the drawn corruption finds no suitable
/// site (e.g. no Exit statement to deepen), it falls back to renaming the
/// entry point, which every validator rejects.
void applyFault(size_t Index, driver::Compilation &C, Rng &R);

/// Compiles \p Source with fault \p Index installed at its stage and
/// checks the contract: compilation must fail *and* carry diagnostics.
/// Returns the empty string on success, else a violation description.
std::string injectAndCheck(size_t Index, const std::string &Source,
                           uint64_t Seed);

} // namespace fuzz
} // namespace qcc

#endif // QCC_FUZZ_FAULTINJECT_H
