//===- fuzz/Generator.h - Random and adversarial program sources *- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded source-program generation for the fuzz harness and the
/// differential tester (Csmith-style; cf. the paper's reference to Yang
/// et al., PLDI 2011). Two families:
///
///   * `ProgramGenerator` draws grammar-random programs in the verified
///     subset, built to terminate (loops bounded by construction) and
///     mostly to avoid traps; the differential tester runs them through
///     every pipeline level.
///   * `generateAdversarial` produces stress inputs a grammar walk would
///     almost never reach: expressions nested to (and past) any plausible
///     recursion limit, constants at the 2^32 boundary, degenerate call
///     graphs (deep chains, wide fan-out, diamonds, recursion), and
///     empty / truncated / garbage sources.
///
/// The harness contract for every generated source: the pipeline either
/// verifies it or reports diagnostics — it never crashes and never emits
/// an unsound bound.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FUZZ_GENERATOR_H
#define QCC_FUZZ_GENERATOR_H

#include "fuzz/Rng.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace qcc {
namespace fuzz {

/// Generates one random program in the subset per seed.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate();

private:
  std::string expr(unsigned Depth);
  std::string callExpr(unsigned UpTo);
  std::string writableLocal();
  void statement(unsigned Depth, unsigned FnIndex, std::string Indent);
  void beginFunction(unsigned NParams);
  void emitBody(unsigned FnIndex);
  void emitFunction(unsigned F);
  void emitMain();

  Rng R;
  std::string Out;
  unsigned NumGlobals = 0;
  std::vector<uint32_t> ArraySizes;
  std::vector<unsigned> Arity;
  std::vector<std::string> Scope;  ///< Readable names.
  std::vector<std::string> Locals; ///< Declared in this function.
  std::set<std::string> Protected; ///< Live loop counters.
  unsigned LoopCounter = 0;
};

/// The adversarial source families.
enum class AdversarialKind : uint8_t {
  DeepExpression,     ///< Parenthesized nesting near the parser's limit.
  DeeperThanParser,   ///< Nesting far past any reasonable limit.
  BoundaryConstants,  ///< Literals at and around 2^32 - 1.
  CallChain,          ///< f0 -> f1 -> ... -> fN, N deep.
  WideCalls,          ///< One caller fanning out to many callees.
  DiamondCalls,       ///< Exponential path-count diamond call graph.
  Recursion,          ///< Direct + mutual recursion (analyzer must skip).
  EmptySource,        ///< "" and whitespace/comment-only variants.
  TruncatedSource,    ///< A valid program cut mid-token.
  GarbageTokens       ///< Random bytes that lex poorly.
};

inline constexpr unsigned NumAdversarialKinds = 10;

/// Display name of \p K ("deep-expression", ...).
const char *adversarialKindName(AdversarialKind K);

/// Generates one adversarial source of family \p K. Deterministic in
/// (\p K, \p Seed).
std::string generateAdversarial(AdversarialKind K, uint64_t Seed);

} // namespace fuzz
} // namespace qcc

#endif // QCC_FUZZ_GENERATOR_H
