//===- fuzz/Chaos.h - Crash-recovery chaos harness --------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-recovery chaos harness: seeded fork-based scenarios that
/// kill store writers mid-operation — with failpoint crashes at each
/// commit boundary (support/FailPoint.h) and with raw SIGKILL at seeded
/// moments — then reopen the store and assert the recovery invariants:
///
///   * reopening never fails and never crashes: damage is quarantined
///     (or swept, for temp-file litter), counted, and reported as misses;
///   * no committed entry is ever torn: every fetch either misses or
///     re-encodes bit-identical to the fault-free reference image;
///   * a store that was warm before the crash stays warm: atomic
///     rename means a dying writer cannot damage the entry it was
///     replacing;
///   * the store remains fully writable afterwards: a clean put/fetch
///     round of every key must serve bit-identical images.
///
/// Each scenario runs in a forked child (the failpoint registry is
/// per-process, so the parent harness stays unarmed), which makes the
/// harness safe to embed in `qcc --fuzz` (campaign 4) and in the
/// `chaos`-labeled ctest slice. Scenarios are pure functions of
/// (Seed, index): every violation line names the shape and seed that
/// replay it.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FUZZ_CHAOS_H
#define QCC_FUZZ_CHAOS_H

#include "support/Supervision.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {
namespace fuzz {

/// Configuration of one chaos campaign.
struct ChaosOptions {
  uint64_t Seed = 1;
  /// Seeded crash/fault scenarios to run (the acceptance floor is 200).
  uint64_t Scenarios = 200;
  /// Directory the per-scenario stores live beneath (required; created
  /// when missing, scenario subdirectories are removed as they pass).
  std::string ScratchDir;
  /// Campaign-wide cancel token; a cancelled campaign stops between
  /// scenarios and marks the report Interrupted.
  Supervisor *Interrupt = nullptr;
};

/// Everything one chaos campaign observed.
struct ChaosReport {
  uint64_t Ran = 0;             ///< Scenarios executed to completion.
  uint64_t CrashedChildren = 0; ///< Writers felled by a crash failpoint.
  uint64_t KilledChildren = 0;  ///< Writers felled by a timed SIGKILL.
  uint64_t SurvivedChildren = 0; ///< Writers that absorbed their faults.
  uint64_t TornTmps = 0;   ///< Temp-file litter found before recovery.
  uint64_t Quarantined = 0; ///< Damaged entries quarantined on reopen.
  /// Invariant violations, each naming the scenario shape and seed that
  /// replay it. Empty is the whole point.
  std::vector<std::string> Violations;
  bool Interrupted = false;

  bool ok() const { return Violations.empty(); }

  /// Human-readable summary.
  std::string str() const;
};

/// Runs the store-writer chaos campaign. Deterministic in \p Options
/// modulo scheduling (SIGKILL timing races are the point; the recovery
/// invariants hold for every interleaving). Must be called from a
/// moment when the process has no other live threads (it forks).
ChaosReport runStoreChaos(const ChaosOptions &Options);

} // namespace fuzz
} // namespace qcc

#endif // QCC_FUZZ_CHAOS_H
