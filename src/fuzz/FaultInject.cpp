//===- fuzz/FaultInject.cpp - Pass-boundary fault injection ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "fuzz/FaultInject.h"

#include "x86/Verify.h"

using namespace qcc;
using namespace qcc::fuzz;
using driver::PipelineStage;

namespace {

//===----------------------------------------------------------------------===//
// IR walkers
//===----------------------------------------------------------------------===//

void collectClightStmts(clight::Stmt *S, clight::StmtKind K,
                        std::vector<clight::Stmt *> &Out) {
  if (!S)
    return;
  if (S->Kind == K)
    Out.push_back(S);
  collectClightStmts(S->First.get(), K, Out);
  collectClightStmts(S->Second.get(), K, Out);
}

void collectCminorStmts(cminor::Stmt *S, cminor::StmtKind K,
                        std::vector<cminor::Stmt *> &Out) {
  if (!S)
    return;
  if (S->Kind == K)
    Out.push_back(S);
  collectCminorStmts(S->First.get(), K, Out);
  collectCminorStmts(S->Second.get(), K, Out);
}

/// Picks one element of \p V uniformly; null when empty.
template <typename T> T *pick(std::vector<T *> &V, Rng &R) {
  if (V.empty())
    return nullptr;
  return V[R.below(static_cast<uint32_t>(V.size()))];
}

//===----------------------------------------------------------------------===//
// The fault table
//===----------------------------------------------------------------------===//

const std::vector<FaultSite> Faults = {
    {PipelineStage::Clight, "clight-null-body"},
    {PipelineStage::Clight, "clight-dangling-callee"},
    {PipelineStage::Clight, "clight-entry-removed"},
    {PipelineStage::Cminor, "cminor-params-exceed-temps"},
    {PipelineStage::Cminor, "cminor-temp-out-of-range"},
    {PipelineStage::Cminor, "cminor-null-child"},
    {PipelineStage::Cminor, "cminor-exit-too-deep"},
    {PipelineStage::Cminor, "cminor-call-arity"},
    {PipelineStage::Rtl, "rtl-entry-out-of-range"},
    {PipelineStage::Rtl, "rtl-succ-out-of-range"},
    {PipelineStage::Rtl, "rtl-params-exceed-regs"},
    {PipelineStage::Rtl, "rtl-dangling-callee"},
    {PipelineStage::Mach, "mach-frame-wraparound"},
    {PipelineStage::Mach, "mach-spill-out-of-range"},
    {PipelineStage::Mach, "mach-undefined-label"},
    {PipelineStage::Mach, "mach-call-args-overflow"},
    {PipelineStage::Asm, "asm-undefined-call-target"},
    {PipelineStage::Asm, "asm-misaligned-globals"},
    {PipelineStage::Asm, "asm-global-bloat"},
    {PipelineStage::Asm, "asm-entry-removed"},
};

/// The always-applicable fallback: every stage validator checks that the
/// entry point resolves.
void renameEntry(PipelineStage S, driver::Compilation &C) {
  switch (S) {
  case PipelineStage::Clight: C.Clight.EntryPoint = "__nonexistent"; break;
  case PipelineStage::Cminor: C.Cminor.EntryPoint = "__nonexistent"; break;
  case PipelineStage::Rtl:    C.Rtl.EntryPoint = "__nonexistent"; break;
  case PipelineStage::Mach:   C.Mach.EntryPoint = "__nonexistent"; break;
  case PipelineStage::Asm:    C.Asm.EntryPoint = "__nonexistent"; break;
  }
}

/// Applies the drawn corruption; false when the IR offers no site for it.
bool applyDrawn(size_t Index, driver::Compilation &C, Rng &R) {
  const std::string Name = Faults[Index].Name;
  if (Name == "clight-null-body") {
    auto &Fs = C.Clight.Functions;
    if (Fs.empty())
      return false;
    Fs[R.below(static_cast<uint32_t>(Fs.size()))].Body = nullptr;
    return true;
  }
  if (Name == "clight-dangling-callee") {
    std::vector<clight::Stmt *> Calls;
    for (clight::Function &F : C.Clight.Functions)
      collectClightStmts(F.Body.get(), clight::StmtKind::Call, Calls);
    if (clight::Stmt *S = pick(Calls, R)) {
      S->Callee = "__missing";
      return true;
    }
    return false;
  }
  if (Name == "clight-entry-removed") {
    C.Clight.EntryPoint = "__nonexistent";
    return true;
  }
  if (Name == "cminor-params-exceed-temps") {
    auto &Fs = C.Cminor.Functions;
    if (Fs.empty())
      return false;
    cminor::Function &F = Fs[R.below(static_cast<uint32_t>(Fs.size()))];
    F.NumParams = F.NumTemps + 8;
    return true;
  }
  if (Name == "cminor-temp-out-of-range") {
    for (cminor::Function &F : C.Cminor.Functions) {
      std::vector<cminor::Stmt *> Assigns;
      collectCminorStmts(F.Body.get(), cminor::StmtKind::Assign, Assigns);
      if (cminor::Stmt *S = pick(Assigns, R)) {
        S->TempIndex = F.NumTemps + 7;
        return true;
      }
    }
    return false;
  }
  if (Name == "cminor-null-child") {
    for (cminor::Function &F : C.Cminor.Functions) {
      std::vector<cminor::Stmt *> Assigns;
      collectCminorStmts(F.Body.get(), cminor::StmtKind::Assign, Assigns);
      collectCminorStmts(F.Body.get(), cminor::StmtKind::GlobStore, Assigns);
      if (cminor::Stmt *S = pick(Assigns, R)) {
        S->Value = nullptr;
        return true;
      }
    }
    return false;
  }
  if (Name == "cminor-exit-too-deep") {
    for (cminor::Function &F : C.Cminor.Functions) {
      std::vector<cminor::Stmt *> Exits;
      collectCminorStmts(F.Body.get(), cminor::StmtKind::Exit, Exits);
      if (cminor::Stmt *S = pick(Exits, R)) {
        S->ExitDepth += 10;
        return true;
      }
    }
    return false;
  }
  if (Name == "cminor-call-arity") {
    for (cminor::Function &F : C.Cminor.Functions) {
      std::vector<cminor::Stmt *> Calls;
      collectCminorStmts(F.Body.get(), cminor::StmtKind::Call, Calls);
      if (cminor::Stmt *S = pick(Calls, R)) {
        S->Args.push_back(cminor::Expr::constant(1));
        return true;
      }
    }
    return false;
  }
  if (Name == "rtl-entry-out-of-range") {
    auto &Fs = C.Rtl.Functions;
    if (Fs.empty())
      return false;
    rtl::Function &F = Fs[R.below(static_cast<uint32_t>(Fs.size()))];
    F.Entry = static_cast<rtl::Node>(F.Nodes.size()) + 5;
    return true;
  }
  if (Name == "rtl-succ-out-of-range") {
    for (rtl::Function &F : C.Rtl.Functions)
      for (rtl::Instr &I : F.Nodes)
        if (I.K != rtl::InstrKind::Return) {
          I.Succ = static_cast<rtl::Node>(F.Nodes.size()) + 9;
          return true;
        }
    return false;
  }
  if (Name == "rtl-params-exceed-regs") {
    auto &Fs = C.Rtl.Functions;
    if (Fs.empty())
      return false;
    rtl::Function &F = Fs[R.below(static_cast<uint32_t>(Fs.size()))];
    F.NumParams = F.NumRegs + 4;
    return true;
  }
  if (Name == "rtl-dangling-callee") {
    for (rtl::Function &F : C.Rtl.Functions)
      for (rtl::Instr &I : F.Nodes)
        if (I.K == rtl::InstrKind::Call) {
          I.Name = "__missing";
          return true;
        }
    return false;
  }
  if (Name == "mach-frame-wraparound") {
    auto &Fs = C.Mach.Functions;
    if (Fs.empty())
      return false;
    // Large enough that 4 * (MaxOutgoing + SpillSlots) wraps uint32 (or
    // at least dwarfs the addressable stack): exactly the bug class the
    // frame-layout audit guards with mach::MaxFrameWords.
    Fs[R.below(static_cast<uint32_t>(Fs.size()))].MaxOutgoing = 1u << 30;
    return true;
  }
  if (Name == "mach-spill-out-of-range") {
    for (mach::Function &F : C.Mach.Functions)
      for (mach::Instr &I : F.Code)
        if (I.K == mach::InstrKind::GetStack ||
            I.K == mach::InstrKind::SetStack) {
          I.Index = F.SpillSlots + 3;
          return true;
        }
    return false;
  }
  if (Name == "mach-undefined-label") {
    for (mach::Function &F : C.Mach.Functions)
      for (mach::Instr &I : F.Code)
        if (I.K == mach::InstrKind::Goto || I.K == mach::InstrKind::Brnz) {
          I.Index = 0xdeadbeefu;
          return true;
        }
    return false;
  }
  if (Name == "mach-call-args-overflow") {
    for (mach::Function &F : C.Mach.Functions)
      for (mach::Instr &I : F.Code)
        if (I.K == mach::InstrKind::Call) {
          I.NArgs = F.MaxOutgoing + 2;
          return true;
        }
    return false;
  }
  if (Name == "asm-undefined-call-target") {
    for (x86::AsmFunction &F : C.Asm.Functions)
      for (x86::Instr &I : F.Code)
        if (I.K == x86::InstrKind::CallDirect) {
          I.Name = "__undefined";
          return true;
        }
    return false;
  }
  if (Name == "asm-misaligned-globals") {
    C.Asm.GlobalBase = 0x10000001u;
    return true;
  }
  if (Name == "asm-global-bloat") {
    // A hostile layout demanding a multi-gigabyte memory image.
    C.Asm.GlobalSize = x86::MaxGlobalBytes + 4;
    return true;
  }
  if (Name == "asm-entry-removed") {
    C.Asm.EntryPoint = "__nonexistent";
    return true;
  }
  return false;
}

} // namespace

const std::vector<FaultSite> &qcc::fuzz::allFaults() { return Faults; }

void qcc::fuzz::applyFault(size_t Index, driver::Compilation &C, Rng &R) {
  if (!applyDrawn(Index, C, R))
    renameEntry(Faults[Index].Stage, C);
}

std::string qcc::fuzz::injectAndCheck(size_t Index, const std::string &Source,
                                      uint64_t Seed) {
  const FaultSite &F = Faults[Index];
  DiagnosticEngine Diags;
  driver::CompilerOptions Options;
  // Replay validation and bound analysis are downstream of the stage
  // validators; the contract under test is that the validator at the
  // corrupted boundary already rejects.
  Options.ValidateTranslation = false;
  Options.AnalyzeBounds = false;
  bool Applied = false;
  Options.FaultHook = [&](PipelineStage S, driver::Compilation &C) {
    if (S != F.Stage || Applied)
      return;
    Rng R(Seed);
    applyFault(Index, C, R);
    Applied = true;
  };
  auto Result = driver::compile(Source, Diags, Options);
  std::string Tag = std::string("fault '") + F.Name + "' (seed " +
                    std::to_string(Seed) + "): ";
  if (!Applied)
    return Tag + "pipeline never reached stage " + stageName(F.Stage) +
           " (diagnostics: " + Diags.str() + ")";
  if (Result)
    return Tag + "corrupted IR compiled successfully";
  if (!Diags.hasErrors())
    return Tag + "rejected without any diagnostic";
  return "";
}
