//===- mach/Mach.h - Mach intermediate language -----------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mach, the last language before assembly generation. Virtual registers
/// are gone: values live in six x86-32 physical registers or in stack
/// slots, and each function's *stack frame is completely laid out*:
///
///   frame = [outgoing argument area][spill slots]      (4-byte words)
///   SF(f) = 4 * (MaxOutgoing + SpillSlots)
///
/// As in the paper (section 3.2, "Generation of Target Cost Metric"),
/// SF(f) is a static constant per function, and the compiler's cost
/// metric is M(f) = SF(f) + 4, the +4 paying for the return address the
/// caller's `call` pushes.
///
/// Calling convention (cdecl-like, matching the stack-merged assembly):
/// arguments are stored by the caller into its outgoing area (reachable
/// at [esp + 4*i] right before `call`); the callee reads parameter i at
/// [esp + SF(f) + 4 + 4*i] — plain pointer arithmetic, no back link
/// (paper section 3.2). Results return in EAX.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_MACH_MACH_H
#define QCC_MACH_MACH_H

#include "events/Metric.h"
#include "events/Trace.h"
#include "events/TraceSink.h"
#include "rtl/Rtl.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {
namespace mach {

using clight::BinOp;
using clight::UnOp;
using clight::ExternalDecl;
using clight::GlobalVar;

/// The six allocatable/scratch x86-32 registers (ESP is the stack
/// pointer; EBP is reserved as an assembly-emission scratch).
enum class PReg : uint8_t { EAX, EBX, ECX, EDX, ESI, EDI };

const char *pregName(PReg R);

using LabelId = uint32_t;

enum class InstrKind : uint8_t {
  MovImm,     ///< Dst = Imm.
  Mov,        ///< Dst = Src1.
  Unary,      ///< Dst = U(Src1).
  Binary,     ///< Dst = Src1 B Src2 (three-address; expanded at emission).
  GlobLoad,   ///< Dst = global Name.
  GlobStore,  ///< global Name = Src1.
  ArrayLoad,  ///< Dst = Name[Src1].
  ArrayStore, ///< Name[Src1] = Src2.
  GetStack,   ///< Dst = spill slot Index.
  SetStack,   ///< spill slot Index = Src1.
  GetParam,   ///< Dst = incoming parameter Index.
  SetOutgoing,///< outgoing argument Index = Src1.
  Call,       ///< Call Name with NArgs outgoing args; result in EAX.
  TailCall,   ///< Tail call: copy NArgs outgoing args over the incoming
              ///< parameter area, release this frame, and jump to Name;
              ///< the callee returns directly to this frame's caller.
              ///< (Section 3.3's second deferred optimization.)
  Label,      ///< Branch target Index.
  Goto,       ///< Jump to label Index.
  Brnz,       ///< If Src1 != 0 jump to label Index.
  Return      ///< Leave; result (if any) already in EAX.
};

struct Instr {
  InstrKind K;
  PReg Dst = PReg::EAX;
  PReg Src1 = PReg::EAX;
  PReg Src2 = PReg::EAX;
  uint32_t Imm = 0;
  uint32_t Index = 0; ///< Slot / parameter / outgoing / label id.
  uint32_t NArgs = 0; ///< Call.
  UnOp U = UnOp::Neg;
  BinOp B = BinOp::Add;
  std::string Name;   ///< Global / array / callee.

  std::string str() const;
};

struct Function {
  std::string Name;
  uint32_t NumParams = 0;
  bool ReturnsValue = false;
  uint32_t SpillSlots = 0;
  uint32_t MaxOutgoing = 0;
  std::vector<Instr> Code;
  SourceLoc Loc;

  /// The laid-out frame size in bytes (excludes the return address).
  uint32_t frameSize() const { return 4 * (MaxOutgoing + SpillSlots); }
};

struct Program {
  std::vector<GlobalVar> Globals;
  std::vector<ExternalDecl> Externals;
  std::vector<Function> Functions;
  std::string EntryPoint = "main";

  const Function *findFunction(const std::string &Name) const;
  const GlobalVar *findGlobal(const std::string &Name) const;
  const ExternalDecl *findExternal(const std::string &Name) const;

  /// The compiler-produced cost metric: M(f) = SF(f) + 4 for every
  /// function (Paper Theorem 1, hypothesis 2).
  StackMetric costMetric() const;

  std::string str() const;
};

/// Options for the RTL -> Mach lowering.
struct LowerOptions {
  /// Recognize `x = call f; return x` (and the void analogue) and emit
  /// TailCall when the callee is internal and its argument count fits the
  /// caller's incoming parameter area. Off by default: tail calls keep
  /// bounds sound but break their 4-byte tightness (Paper section 3.3).
  bool TailCalls = false;
};

/// Lowers RTL to Mach: register allocation + frame layout.
Program lowerFromRtl(const rtl::Program &P, LowerOptions Options = {});

/// Runs the entry point; emits the same events as the upper levels.
Behavior runProgram(const Program &P, uint64_t Fuel = 200'000'000,
                    const Supervisor *Sup = nullptr);

/// Streaming variant: events are delivered to \p Sink; only the outcome
/// is returned.
Outcome runProgram(const Program &P, TraceSink &Sink,
                   uint64_t Fuel = 200'000'000,
                   const Supervisor *Sup = nullptr);

} // namespace mach
} // namespace qcc

#endif // QCC_MACH_MACH_H
