//===- mach/Verify.h - Mach well-formedness checks --------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness of Mach programs: every stack-slot,
/// parameter, and outgoing-argument index lies inside the laid-out frame,
/// every branch label is defined, every callee resolves with a matching
/// argument count, and the frame layout M(f) = SF(f) + 4 cannot overflow
/// its 32-bit arithmetic. The driver runs this after the RTL -> Mach pass,
/// so the assembly emitter and the Mach interpreter may index frames
/// without further checks.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_MACH_VERIFY_H
#define QCC_MACH_VERIFY_H

#include "mach/Mach.h"
#include "support/Diagnostics.h"

namespace qcc {
namespace mach {

/// The largest MaxOutgoing + SpillSlots a verified function may declare:
/// keeps frameSize() = 4 * (MaxOutgoing + SpillSlots) and the metric
/// M(f) = SF(f) + 4 comfortably inside uint32_t (and any realistic frame
/// orders of magnitude below it).
inline constexpr uint32_t MaxFrameWords = 1u << 28;

/// Checks \p P; reports problems to \p Diags. Returns true when no errors
/// were found.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

} // namespace mach
} // namespace qcc

#endif // QCC_MACH_VERIFY_H
