//===- mach/Lower.cpp - RTL to Mach: regalloc and frame layout ------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation and stack-frame layout:
///
///   * the RTL graph is linearized in reverse postorder,
///   * live intervals are computed from the liveness fixpoint,
///   * intervals crossing a call are spilled outright (every register is
///     caller-saved in this convention),
///   * the rest go through linear scan over {EBX, ECX, ESI, EDI}; EAX and
///     EDX are reserved as operand-staging scratch registers.
///
/// The resulting spill-slot count plus the widest outgoing-argument area
/// determine SF(f) — this file is, indirectly, where every number in
/// Table 1 comes from.
///
//===----------------------------------------------------------------------===//

#include "mach/Mach.h"

#include "rtl/Liveness.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace qcc;
using namespace qcc::mach;
namespace r = qcc::rtl;

namespace {

/// Where a virtual register lives after allocation.
struct Location {
  enum class Kind : uint8_t { None, Register, Spill } K = Kind::None;
  PReg R = PReg::EAX;
  uint32_t Slot = 0;
};

struct Interval {
  r::Reg VReg;
  uint32_t Start;
  uint32_t End;
  bool CrossesCall = false;
};

class FunctionLowering {
public:
  FunctionLowering(const r::Function &F, const r::Program &P,
                   LowerOptions Options)
      : Source(F), Prog(P), Options(Options) {}

  Function run() {
    linearize();
    allocate();
    emit();

    Function Out;
    Out.Name = Source.Name;
    Out.NumParams = Source.NumParams;
    Out.ReturnsValue = Source.ReturnsValue;
    Out.SpillSlots = NextSlot;
    Out.MaxOutgoing = MaxOutgoing;
    Out.Code = std::move(Code);
    Out.Loc = Source.Loc;
    return Out;
  }

private:
  //===--------------------------------------------------------------------===//
  // Linearization
  //===--------------------------------------------------------------------===//

  void linearize() {
    // Reverse postorder via the classic two-phase iterative DFS; a node
    // pushed twice by two predecessors is skipped on its second visit.
    std::vector<bool> Visited(Source.Nodes.size(), false);
    std::vector<std::pair<r::Node, bool>> Stack;
    Stack.push_back({Source.Entry, false});
    std::vector<r::Node> Post;
    while (!Stack.empty()) {
      auto [N, Expanded] = Stack.back();
      Stack.pop_back();
      if (Expanded) {
        Post.push_back(N);
        continue;
      }
      if (Visited[N])
        continue;
      Visited[N] = true;
      Stack.push_back({N, true});
      for (r::Node S : Source.successors(N))
        if (!Visited[S])
          Stack.push_back({S, false});
    }
    Order.assign(Post.rbegin(), Post.rend());
    PosOf.assign(Source.Nodes.size(), UINT32_MAX);
    for (uint32_t P = 0; P != Order.size(); ++P)
      PosOf[Order[P]] = P;
  }

  //===--------------------------------------------------------------------===//
  // Allocation
  //===--------------------------------------------------------------------===//

  void allocate() {
    r::LivenessInfo L = r::computeLiveness(Source);

    std::map<r::Reg, Interval> Ranges;
    auto Touch = [&Ranges](r::Reg R, uint32_t P) {
      auto [It, New] = Ranges.try_emplace(R, Interval{R, P, P, false});
      if (!New) {
        It->second.Start = std::min(It->second.Start, P);
        It->second.End = std::max(It->second.End, P);
      }
    };

    for (uint32_t P = 0; P != Order.size(); ++P) {
      r::Node N = Order[P];
      const r::Instr &I = Source.Nodes[N];
      for (r::Reg R : L.LiveIn[N])
        Touch(R, P);
      for (r::Reg R : L.LiveOut[N])
        Touch(R, P);
      for (r::Reg R : r::instrUses(I))
        Touch(R, P);
      if (auto D = r::instrDef(I))
        Touch(*D, P);
    }
    // Parameters are live from position 0 (the entry moves read them).
    for (r::Reg R = 0; R != Source.NumParams; ++R)
      if (Ranges.count(R))
        Touch(R, 0);

    // Spill anything live across a call: all registers are caller-saved.
    // The precise condition is liveness-based: a value live *out* of a
    // call node survives the callee's register clobbering unless it is
    // the call's own result.
    for (r::Node N = 0; N != Source.Nodes.size(); ++N) {
      const r::Instr &I = Source.Nodes[N];
      if (I.K != r::InstrKind::Call)
        continue;
      for (r::Reg R : L.LiveOut[N]) {
        if (I.HasDest && R == I.Dst)
          continue;
        if (auto It = Ranges.find(R); It != Ranges.end())
          It->second.CrossesCall = true;
      }
    }

    Locations.assign(Source.NumRegs, Location{});
    std::vector<Interval> Work;
    for (auto &[R, IV] : Ranges) {
      if (IV.CrossesCall)
        Locations[R] = spillLocation(R);
      else
        Work.push_back(IV);
    }

    // Linear scan.
    std::sort(Work.begin(), Work.end(), [](const Interval &A,
                                           const Interval &B) {
      return A.Start < B.Start || (A.Start == B.Start && A.VReg < B.VReg);
    });
    const PReg Allocatable[] = {PReg::EBX, PReg::ECX, PReg::ESI, PReg::EDI};
    std::vector<Interval> Active; // Sorted by End.
    std::map<PReg, bool> Free;
    for (PReg R : Allocatable)
      Free[R] = true;

    for (const Interval &IV : Work) {
      // Expire intervals that ended strictly before this one starts.
      // Note: an interval ending at IV.Start may share its position with
      // IV's definition; keep both apart to stay conservative.
      Active.erase(std::remove_if(Active.begin(), Active.end(),
                                  [&](const Interval &A) {
                                    if (A.End < IV.Start) {
                                      Free[Locations[A.VReg].R] = true;
                                      return true;
                                    }
                                    return false;
                                  }),
                   Active.end());

      PReg Chosen = PReg::EAX;
      bool Found = false;
      for (PReg R : Allocatable) {
        if (Free[R]) {
          Chosen = R;
          Found = true;
          break;
        }
      }
      if (Found) {
        Free[Chosen] = false;
        Locations[IV.VReg] = Location{Location::Kind::Register, Chosen, 0};
        Active.push_back(IV);
        continue;
      }
      // Spill the active interval with the furthest end if it outlives
      // this one; otherwise spill this one.
      auto Furthest = std::max_element(
          Active.begin(), Active.end(),
          [](const Interval &A, const Interval &B) { return A.End < B.End; });
      if (Furthest != Active.end() && Furthest->End > IV.End) {
        PReg R = Locations[Furthest->VReg].R;
        Locations[Furthest->VReg] = spillLocation(Furthest->VReg);
        Locations[IV.VReg] = Location{Location::Kind::Register, R, 0};
        Active.erase(Furthest);
        Active.push_back(IV);
      } else {
        Locations[IV.VReg] = spillLocation(IV.VReg);
      }
    }
  }

  Location spillLocation(r::Reg) {
    return Location{Location::Kind::Spill, PReg::EAX, NextSlot++};
  }

  //===--------------------------------------------------------------------===//
  // Emission
  //===--------------------------------------------------------------------===//

  void push(Instr I) { Code.push_back(std::move(I)); }

  /// Materializes \p VReg into a register: its own if allocated, else
  /// \p Scratch via a stack reload. Unallocated (dead) registers read as
  /// the scratch register's current garbage — they are never actually
  /// observed.
  PReg fetch(r::Reg VReg, PReg Scratch) {
    const Location &Loc = Locations[VReg];
    switch (Loc.K) {
    case Location::Kind::Register:
      return Loc.R;
    case Location::Kind::Spill: {
      Instr I;
      I.K = InstrKind::GetStack;
      I.Dst = Scratch;
      I.Index = Loc.Slot;
      push(std::move(I));
      return Scratch;
    }
    case Location::Kind::None:
      return Scratch;
    }
    return Scratch;
  }

  /// Returns the register a result for \p VReg should be computed into.
  PReg destFor(r::Reg VReg) {
    const Location &Loc = Locations[VReg];
    return Loc.K == Location::Kind::Register ? Loc.R : PReg::EAX;
  }

  /// Stores the value computed in \p From into \p VReg's home, if any.
  void commit(r::Reg VReg, PReg From) {
    const Location &Loc = Locations[VReg];
    switch (Loc.K) {
    case Location::Kind::Register:
      if (Loc.R != From) {
        Instr I;
        I.K = InstrKind::Mov;
        I.Dst = Loc.R;
        I.Src1 = From;
        push(std::move(I));
      }
      return;
    case Location::Kind::Spill: {
      Instr I;
      I.K = InstrKind::SetStack;
      I.Index = Loc.Slot;
      I.Src1 = From;
      push(std::move(I));
      return;
    }
    case Location::Kind::None:
      return; // Dead destination.
    }
  }

  void emit() {
    // Entry moves: parameters to their allocated homes.
    for (uint32_t P = 0; P != Source.NumParams; ++P) {
      if (Locations[P].K == Location::Kind::None)
        continue;
      Instr I;
      I.K = InstrKind::GetParam;
      I.Dst = PReg::EAX;
      I.Index = P;
      push(std::move(I));
      commit(P, PReg::EAX);
    }

    for (uint32_t P = 0; P != Order.size(); ++P) {
      r::Node N = Order[P];
      // Every node gets a label named after it; branches resolve to them.
      {
        Instr L;
        L.K = InstrKind::Label;
        L.Index = N;
        push(std::move(L));
      }
      emitNode(N, P);
    }
  }

  void gotoNode(r::Node Target, uint32_t CurrentPos) {
    if (CurrentPos + 1 < Order.size() && Order[CurrentPos + 1] == Target)
      return; // Falls through.
    Instr I;
    I.K = InstrKind::Goto;
    I.Index = Target;
    push(std::move(I));
  }

  void emitNode(r::Node N, uint32_t Pos) {
    const r::Instr &I = Source.Nodes[N];
    switch (I.K) {
    case r::InstrKind::Nop:
      break;
    case r::InstrKind::Const: {
      PReg D = destFor(I.Dst);
      Instr M;
      M.K = InstrKind::MovImm;
      M.Dst = D;
      M.Imm = I.Imm;
      push(std::move(M));
      commit(I.Dst, D);
      break;
    }
    case r::InstrKind::Move: {
      PReg S = fetch(I.Src1, PReg::EAX);
      commit(I.Dst, S);
      break;
    }
    case r::InstrKind::Unary: {
      PReg S = fetch(I.Src1, PReg::EAX);
      PReg D = destFor(I.Dst);
      Instr M;
      M.K = InstrKind::Unary;
      M.U = I.U;
      M.Dst = D;
      M.Src1 = S;
      push(std::move(M));
      commit(I.Dst, D);
      break;
    }
    case r::InstrKind::Binary: {
      PReg A = fetch(I.Src1, PReg::EAX);
      PReg B = fetch(I.Src2, PReg::EDX);
      PReg D = destFor(I.Dst);
      Instr M;
      M.K = InstrKind::Binary;
      M.B = I.B;
      M.Dst = D;
      M.Src1 = A;
      M.Src2 = B;
      push(std::move(M));
      commit(I.Dst, D);
      break;
    }
    case r::InstrKind::GlobLoad: {
      PReg D = destFor(I.Dst);
      Instr M;
      M.K = InstrKind::GlobLoad;
      M.Dst = D;
      M.Name = I.Name;
      push(std::move(M));
      commit(I.Dst, D);
      break;
    }
    case r::InstrKind::GlobStore: {
      PReg S = fetch(I.Src1, PReg::EAX);
      Instr M;
      M.K = InstrKind::GlobStore;
      M.Name = I.Name;
      M.Src1 = S;
      push(std::move(M));
      break;
    }
    case r::InstrKind::ArrayLoad: {
      PReg Idx = fetch(I.Src1, PReg::EAX);
      PReg D = destFor(I.Dst);
      Instr M;
      M.K = InstrKind::ArrayLoad;
      M.Dst = D;
      M.Name = I.Name;
      M.Src1 = Idx;
      push(std::move(M));
      commit(I.Dst, D);
      break;
    }
    case r::InstrKind::ArrayStore: {
      PReg Idx = fetch(I.Src1, PReg::EAX);
      PReg V = fetch(I.Src2, PReg::EDX);
      Instr M;
      M.K = InstrKind::ArrayStore;
      M.Name = I.Name;
      M.Src1 = Idx;
      M.Src2 = V;
      push(std::move(M));
      break;
    }
    case r::InstrKind::Call: {
      MaxOutgoing =
          std::max(MaxOutgoing, static_cast<uint32_t>(I.Args.size()));
      for (uint32_t A = 0; A != I.Args.size(); ++A) {
        PReg S = fetch(I.Args[A], PReg::EAX);
        Instr M;
        M.K = InstrKind::SetOutgoing;
        M.Index = A;
        M.Src1 = S;
        push(std::move(M));
      }
      if (isTailCall(I)) {
        Instr T;
        T.K = InstrKind::TailCall;
        T.Name = I.Name;
        T.NArgs = static_cast<uint32_t>(I.Args.size());
        push(std::move(T));
        return; // The following Return node is subsumed by the jump.
      }
      Instr C;
      C.K = InstrKind::Call;
      C.Name = I.Name;
      C.NArgs = static_cast<uint32_t>(I.Args.size());
      push(std::move(C));
      if (I.HasDest)
        commit(I.Dst, PReg::EAX);
      break;
    }
    case r::InstrKind::Cond: {
      PReg S = fetch(I.Src1, PReg::EAX);
      Instr B;
      B.K = InstrKind::Brnz;
      B.Src1 = S;
      B.Index = I.Succ;
      push(std::move(B));
      gotoNode(I.Succ2, Pos);
      return;
    }
    case r::InstrKind::Return: {
      if (I.HasValue) {
        PReg S = fetch(I.Src1, PReg::EAX);
        if (S != PReg::EAX) {
          Instr M;
          M.K = InstrKind::Mov;
          M.Dst = PReg::EAX;
          M.Src1 = S;
          push(std::move(M));
        }
      }
      Instr R;
      R.K = InstrKind::Return;
      push(std::move(R));
      return;
    }
    }
    // Unconditional successor.
    gotoNode(I.Succ, Pos);
  }

  /// True when the call's continuation is nothing but `return` of the
  /// call's own result (or a bare `return` for a void pair) and the
  /// callee's arguments fit the caller's incoming parameter area — the
  /// conditions under which the frame can be released before the jump.
  bool isTailCall(const r::Instr &Call) const {
    if (!Options.TailCalls)
      return false;
    if (!Prog.findFunction(Call.Name))
      return false; // External calls keep the event-emitting stub.
    if (Call.Args.size() > Source.NumParams)
      return false; // No room above the return address for the arguments.
    // Walk the continuation through nops and copy chains of the result
    // register; a `return` of the (possibly renamed) result is a tail
    // position.
    r::Reg Result = Call.HasDest ? Call.Dst : r::Reg(UINT32_MAX);
    r::Node Cur = Call.Succ;
    for (unsigned Steps = 0; Steps != 8 && Cur != r::NoNode; ++Steps) {
      const r::Instr &Next = Source.Nodes[Cur];
      switch (Next.K) {
      case r::InstrKind::Nop:
        Cur = Next.Succ;
        continue;
      case r::InstrKind::Move:
        if (Call.HasDest && Next.Src1 == Result) {
          Result = Next.Dst;
          Cur = Next.Succ;
          continue;
        }
        return false;
      case r::InstrKind::Return:
        if (Next.HasValue)
          return Call.HasDest && Next.Src1 == Result;
        return true; // Void tail position (EAX is ignored).
      default:
        return false;
      }
    }
    return false;
  }

  const r::Function &Source;
  const r::Program &Prog;
  LowerOptions Options;
  std::vector<r::Node> Order;
  std::vector<uint32_t> PosOf;
  std::vector<Location> Locations;
  uint32_t NextSlot = 0;
  uint32_t MaxOutgoing = 0;
  std::vector<Instr> Code;
};

} // namespace

Program qcc::mach::lowerFromRtl(const r::Program &P, LowerOptions Options) {
  Program Out;
  Out.Globals = P.Globals;
  Out.Externals = P.Externals;
  Out.EntryPoint = P.EntryPoint;
  LowerOptions PerFunction = Options;
  for (const r::Function &F : P.Functions) {
    // The entry function's "caller" is the startup stub: keep its return
    // conventional.
    PerFunction.TailCalls = Options.TailCalls && F.Name != P.EntryPoint;
    Out.Functions.push_back(FunctionLowering(F, P, PerFunction).run());
  }
  return Out;
}
