//===- mach/MachInterp.cpp - Mach interpreter -----------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "mach/Mach.h"

#include "events/SymbolTable.h"

#include <limits>
#include <map>
#include <optional>
#include <unordered_map>

using namespace qcc;
using namespace qcc::mach;

namespace {

struct Activation {
  const Function *F;
  uint32_t Regs[6] = {0, 0, 0, 0, 0, 0};
  std::vector<uint32_t> Spill;
  std::vector<uint32_t> Outgoing;
  std::vector<uint32_t> Params;
  size_t Pc = 0;
};

class Machine {
public:
  Machine(const Program &P, TraceSink &Sink, uint64_t Fuel,
          const Supervisor *Sup)
      : P(P), Sink(Sink), Fuel(Fuel), Sup(Sup) {
    for (const GlobalVar &G : P.Globals) {
      std::vector<uint32_t> Cells = G.Init;
      Cells.resize(G.Size, 0);
      Globals[G.Name] = std::move(Cells);
    }
    for (const Function &F : P.Functions) {
      std::map<uint32_t, size_t> &Labels = LabelMap[F.Name];
      for (size_t I = 0; I != F.Code.size(); ++I)
        if (F.Code[I].K == InstrKind::Label)
          Labels[F.Code[I].Index] = I;
    }
  }

  Outcome run() {
    const Function *Entry = P.findFunction(P.EntryPoint);
    if (!Entry)
      return Outcome::fails("entry point is not defined");
    Sink.onEvent(Event::call(sym(Entry->Name)));
    Current = makeActivation(Entry, {});

    uint64_t Steps = 0;
    for (;;) {
      if (++Steps > Fuel)
        return Outcome::exhausted();
      if (Supervisor::shouldPoll(Steps, Sup))
        return Outcome::stopped(Sup->cause());
      if (Current.Pc >= Current.F->Code.size()) {
        // Fall off the end of a function: void return.
        if (auto O = doReturn())
          return *O;
        continue;
      }
      std::string Fault;
      if (!step(Fault)) {
        if (Fault == "$halt")
          return Outcome::converges(static_cast<int32_t>(ReturnValue));
        return Outcome::fails(std::move(Fault));
      }
    }
  }

private:
  static Activation makeActivation(const Function *F,
                                   std::vector<uint32_t> Args) {
    Activation A;
    A.F = F;
    A.Spill.assign(F->SpillSlots, 0);
    A.Outgoing.assign(F->MaxOutgoing, 0);
    A.Params = std::move(Args);
    A.Params.resize(F->NumParams, 0);
    return A;
  }

  uint32_t &reg(PReg R) { return Current.Regs[static_cast<unsigned>(R)]; }

  SymId sym(const std::string &Name) {
    auto [It, New] = SymCache.try_emplace(&Name, 0);
    if (New)
      It->second = SymbolTable::global().intern(Name);
    return It->second;
  }

  /// Returns nullopt to continue execution, or the final outcome when
  /// the entry function returns.
  std::optional<Outcome> doReturn() {
    uint32_t V = reg(PReg::EAX);
    Sink.onEvent(Event::ret(sym(Current.F->Name)));
    if (Stack.empty()) {
      return Outcome::converges(static_cast<int32_t>(V));
    }
    Current = std::move(Stack.back());
    Stack.pop_back();
    reg(PReg::EAX) = V; // Results travel in EAX.
    return std::nullopt;
  }

  bool binOp(BinOp Op, uint32_t A, uint32_t B, uint32_t &Out,
             std::string &Fault) {
    int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
    switch (Op) {
    case BinOp::Add: Out = A + B; return true;
    case BinOp::Sub: Out = A - B; return true;
    case BinOp::Mul: Out = A * B; return true;
    case BinOp::DivU:
      if (B == 0) { Fault = "division trap"; return false; }
      Out = A / B;
      return true;
    case BinOp::ModU:
      if (B == 0) { Fault = "division trap"; return false; }
      Out = A % B;
      return true;
    case BinOp::DivS:
      if (SB == 0 ||
          (SA == std::numeric_limits<int32_t>::min() && SB == -1)) {
        Fault = "division trap";
        return false;
      }
      Out = static_cast<uint32_t>(SA / SB);
      return true;
    case BinOp::ModS:
      if (SB == 0 ||
          (SA == std::numeric_limits<int32_t>::min() && SB == -1)) {
        Fault = "division trap";
        return false;
      }
      Out = static_cast<uint32_t>(SA % SB);
      return true;
    case BinOp::And: Out = A & B; return true;
    case BinOp::Or: Out = A | B; return true;
    case BinOp::Xor: Out = A ^ B; return true;
    case BinOp::Shl: Out = A << (B & 31); return true;
    case BinOp::ShrU: Out = A >> (B & 31); return true;
    case BinOp::ShrS: Out = static_cast<uint32_t>(SA >> (B & 31)); return true;
    case BinOp::Eq: Out = A == B; return true;
    case BinOp::Ne: Out = A != B; return true;
    case BinOp::LtU: Out = A < B; return true;
    case BinOp::LeU: Out = A <= B; return true;
    case BinOp::GtU: Out = A > B; return true;
    case BinOp::GeU: Out = A >= B; return true;
    case BinOp::LtS: Out = SA < SB; return true;
    case BinOp::LeS: Out = SA <= SB; return true;
    case BinOp::GtS: Out = SA > SB; return true;
    case BinOp::GeS: Out = SA >= SB; return true;
    }
    Fault = "bad binary op";
    return false;
  }

  bool step(std::string &Fault) {
    const Instr &I = Current.F->Code[Current.Pc];
    ++Current.Pc;
    switch (I.K) {
    case InstrKind::Label:
      return true;
    case InstrKind::MovImm:
      reg(I.Dst) = I.Imm;
      return true;
    case InstrKind::Mov:
      reg(I.Dst) = reg(I.Src1);
      return true;
    case InstrKind::Unary: {
      uint32_t V = reg(I.Src1);
      switch (I.U) {
      case UnOp::Neg: reg(I.Dst) = 0u - V; break;
      case UnOp::BoolNot: reg(I.Dst) = V == 0 ? 1u : 0u; break;
      case UnOp::BitNot: reg(I.Dst) = ~V; break;
      }
      return true;
    }
    case InstrKind::Binary: {
      uint32_t Out;
      if (!binOp(I.B, reg(I.Src1), reg(I.Src2), Out, Fault))
        return false;
      reg(I.Dst) = Out;
      return true;
    }
    case InstrKind::GlobLoad: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound global";
        return false;
      }
      reg(I.Dst) = It->second[0];
      return true;
    }
    case InstrKind::GlobStore: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound global";
        return false;
      }
      It->second[0] = reg(I.Src1);
      return true;
    }
    case InstrKind::ArrayLoad: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound array";
        return false;
      }
      uint32_t Idx = reg(I.Src1);
      if (Idx >= It->second.size()) {
        Fault = "memory trap";
        return false;
      }
      reg(I.Dst) = It->second[Idx];
      return true;
    }
    case InstrKind::ArrayStore: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound array";
        return false;
      }
      uint32_t Idx = reg(I.Src1);
      if (Idx >= It->second.size()) {
        Fault = "memory trap";
        return false;
      }
      It->second[Idx] = reg(I.Src2);
      return true;
    }
    case InstrKind::GetStack:
      reg(I.Dst) = Current.Spill[I.Index];
      return true;
    case InstrKind::SetStack:
      Current.Spill[I.Index] = reg(I.Src1);
      return true;
    case InstrKind::GetParam:
      reg(I.Dst) = Current.Params[I.Index];
      return true;
    case InstrKind::SetOutgoing:
      Current.Outgoing[I.Index] = reg(I.Src1);
      return true;
    case InstrKind::Call: {
      std::vector<uint32_t> Args(Current.Outgoing.begin(),
                                 Current.Outgoing.begin() + I.NArgs);
      if (const Function *Callee = P.findFunction(I.Name)) {
        Sink.onEvent(Event::call(sym(Callee->Name)));
        Stack.push_back(std::move(Current));
        Current = makeActivation(Callee, std::move(Args));
        return true;
      }
      std::vector<int32_t> IOArgs(Args.begin(), Args.end());
      Sink.onEvent(Event::external(
          sym(I.Name), SymbolTable::global().internArgs(IOArgs), 0));
      reg(PReg::EAX) = 0;
      return true;
    }
    case InstrKind::TailCall: {
      // The frame is released before the jump: semantically the caller
      // has returned, so its ret event precedes the callee's call event.
      // Quantitative refinement accepts the reordering (the open-call
      // profile is pointwise dominated by the conventional one).
      std::vector<uint32_t> Args(Current.Outgoing.begin(),
                                 Current.Outgoing.begin() + I.NArgs);
      const Function *Callee = P.findFunction(I.Name);
      if (!Callee) {
        Fault = "tail call to unknown function";
        return false;
      }
      Sink.onEvent(Event::ret(sym(Current.F->Name)));
      Sink.onEvent(Event::call(sym(Callee->Name)));
      uint32_t Result = reg(PReg::EAX);
      Current = makeActivation(Callee, std::move(Args));
      reg(PReg::EAX) = Result;
      return true;
    }
    case InstrKind::Goto: {
      auto &Labels = LabelMap[Current.F->Name];
      auto It = Labels.find(I.Index);
      if (It == Labels.end()) {
        Fault = "unknown label";
        return false;
      }
      Current.Pc = It->second;
      return true;
    }
    case InstrKind::Brnz: {
      if (reg(I.Src1) == 0)
        return true;
      auto &Labels = LabelMap[Current.F->Name];
      auto It = Labels.find(I.Index);
      if (It == Labels.end()) {
        Fault = "unknown label";
        return false;
      }
      Current.Pc = It->second;
      return true;
    }
    case InstrKind::Return: {
      if (auto O = doReturn()) {
        ReturnValue = static_cast<uint32_t>(O->ReturnCode);
        Fault = "$halt";
        return false;
      }
      return true;
    }
    }
    Fault = "bad instruction";
    return false;
  }

  const Program &P;
  TraceSink &Sink;
  uint64_t Fuel;
  const Supervisor *Sup;
  std::map<std::string, std::vector<uint32_t>> Globals;
  std::map<std::string, std::map<uint32_t, size_t>> LabelMap;
  Activation Current;
  std::vector<Activation> Stack;
  std::unordered_map<const std::string *, SymId> SymCache;
  uint32_t ReturnValue = 0;
};

} // namespace

Behavior qcc::mach::runProgram(const Program &P, uint64_t Fuel,
                               const Supervisor *Sup) {
  RecordingSink R;
  return runProgram(P, R, Fuel, Sup).intoBehavior(std::move(R.Events));
}

Outcome qcc::mach::runProgram(const Program &P, TraceSink &Sink,
                              uint64_t Fuel, const Supervisor *Sup) {
  return Machine(P, Sink, Fuel, Sup).run();
}
