//===- mach/Verify.cpp - Mach well-formedness checks ----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "mach/Verify.h"

#include <set>

using namespace qcc;
using namespace qcc::mach;

namespace {

class Verifier {
public:
  Verifier(const Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  void run() {
    std::set<std::string> Seen;
    for (const GlobalVar &G : P.Globals) {
      if (!Seen.insert(G.Name).second)
        Diags.error(G.Loc, "mach: duplicate global '" + G.Name + "'");
      if (G.Size == 0)
        Diags.error(G.Loc, "mach: global '" + G.Name + "' has no cells");
      if (G.Init.size() > G.Size)
        Diags.error(G.Loc, "mach: initializer of '" + G.Name +
                               "' exceeds its size");
    }
    for (const ExternalDecl &E : P.Externals)
      if (!Seen.insert(E.Name).second)
        Diags.error(E.Loc, "mach: duplicate declaration '" + E.Name + "'");
    for (const Function &F : P.Functions)
      if (!Seen.insert(F.Name).second)
        Diags.error(F.Loc, "mach: duplicate function '" + F.Name + "'");

    const Function *Main = P.findFunction(P.EntryPoint);
    if (!Main)
      Diags.error(SourceLoc(),
                  "mach: entry point '" + P.EntryPoint + "' is not defined");
    else if (Main->NumParams != 0)
      Diags.error(Main->Loc, "mach: entry point must take no parameters");

    for (const Function &F : P.Functions)
      verifyFunction(F);
  }

private:
  void verifyFunction(const Function &F) {
    Fn = &F;
    // Frame-layout wraparound audit: the frame size and the cost metric
    // M(f) = SF(f) + 4 are computed in uint32_t; cap the word count so
    // neither can wrap (a wrapped SF would certify an unsound bound).
    if (static_cast<uint64_t>(F.MaxOutgoing) + F.SpillSlots > MaxFrameWords)
      Diags.error(F.Loc, "mach: frame of '" + F.Name + "' (" +
                             std::to_string(F.MaxOutgoing) + " outgoing + " +
                             std::to_string(F.SpillSlots) +
                             " spill words) exceeds the layout limit");

    std::set<uint32_t> Labels;
    for (const Instr &I : F.Code)
      if (I.K == InstrKind::Label && !Labels.insert(I.Index).second)
        Diags.error(F.Loc, "mach: duplicate label L" + std::to_string(I.Index) +
                               " in '" + F.Name + "'");
    for (size_t Pc = 0; Pc != F.Code.size(); ++Pc)
      verifyInstr(F.Code[Pc], Pc, Labels);
  }

  void bad(size_t Pc, const std::string &Message) {
    Diags.error(Fn->Loc, "mach: instruction " + std::to_string(Pc) + " in '" +
                             Fn->Name + "': " + Message);
  }

  void checkLabel(uint32_t Id, size_t Pc, const std::set<uint32_t> &Labels) {
    if (!Labels.count(Id))
      bad(Pc, "branch to undefined label L" + std::to_string(Id));
  }

  void checkGlobal(const std::string &Name, bool WantArray, size_t Pc) {
    const GlobalVar *G = P.findGlobal(Name);
    if (!G) {
      bad(Pc, "unknown global '" + Name + "'");
      return;
    }
    if (G->IsArray != WantArray)
      bad(Pc, WantArray ? "subscript applied to scalar '" + Name + "'"
                        : "global array '" + Name +
                              "' accessed without subscript");
  }

  void verifyInstr(const Instr &I, size_t Pc, const std::set<uint32_t> &Labels) {
    switch (I.K) {
    case InstrKind::MovImm:
    case InstrKind::Mov:
    case InstrKind::Unary:
    case InstrKind::Binary:
    case InstrKind::Label:
    case InstrKind::Return:
      break;
    case InstrKind::GlobLoad:
    case InstrKind::GlobStore:
      checkGlobal(I.Name, /*WantArray=*/false, Pc);
      break;
    case InstrKind::ArrayLoad:
    case InstrKind::ArrayStore:
      checkGlobal(I.Name, /*WantArray=*/true, Pc);
      break;
    case InstrKind::GetStack:
    case InstrKind::SetStack:
      if (I.Index >= Fn->SpillSlots)
        bad(Pc, "spill slot " + std::to_string(I.Index) + " out of range (" +
                    std::to_string(Fn->SpillSlots) + " slots)");
      break;
    case InstrKind::GetParam:
      if (I.Index >= Fn->NumParams)
        bad(Pc, "parameter " + std::to_string(I.Index) + " out of range (" +
                    std::to_string(Fn->NumParams) + " parameters)");
      break;
    case InstrKind::SetOutgoing:
      if (I.Index >= Fn->MaxOutgoing)
        bad(Pc, "outgoing slot " + std::to_string(I.Index) +
                    " out of range (" + std::to_string(Fn->MaxOutgoing) +
                    " slots)");
      break;
    case InstrKind::Call:
      if (I.NArgs > Fn->MaxOutgoing)
        bad(Pc, "call passes " + std::to_string(I.NArgs) +
                    " argument(s) through " + std::to_string(Fn->MaxOutgoing) +
                    " outgoing slot(s)");
      if (const Function *Callee = P.findFunction(I.Name)) {
        if (Callee->NumParams != I.NArgs)
          bad(Pc, "call to '" + I.Name + "' with " + std::to_string(I.NArgs) +
                      " argument(s), expects " +
                      std::to_string(Callee->NumParams));
      } else if (const ExternalDecl *Ext = P.findExternal(I.Name)) {
        if (Ext->Arity != I.NArgs)
          bad(Pc, "call to external '" + I.Name + "' with " +
                      std::to_string(I.NArgs) + " argument(s), expects " +
                      std::to_string(Ext->Arity));
      } else {
        bad(Pc, "call to unknown function '" + I.Name + "'");
      }
      break;
    case InstrKind::TailCall: {
      if (I.NArgs > Fn->MaxOutgoing)
        bad(Pc, "tail call passes " + std::to_string(I.NArgs) +
                    " argument(s) through " + std::to_string(Fn->MaxOutgoing) +
                    " outgoing slot(s)");
      // The callee reuses this frame's incoming parameter area, so its
      // arguments must fit there (mach/Lower.cpp only emits such sites).
      if (I.NArgs > Fn->NumParams)
        bad(Pc, "tail call passes " + std::to_string(I.NArgs) +
                    " argument(s) through " + std::to_string(Fn->NumParams) +
                    " incoming parameter slot(s)");
      const Function *Callee = P.findFunction(I.Name);
      if (!Callee)
        bad(Pc, "tail call to unknown or external function '" + I.Name + "'");
      else if (Callee->NumParams != I.NArgs)
        bad(Pc, "tail call to '" + I.Name + "' with " +
                    std::to_string(I.NArgs) + " argument(s), expects " +
                    std::to_string(Callee->NumParams));
      break;
    }
    case InstrKind::Goto:
    case InstrKind::Brnz:
      checkLabel(I.Index, Pc, Labels);
      break;
    }
  }

  const Program &P;
  DiagnosticEngine &Diags;
  const Function *Fn = nullptr;
};

} // namespace

bool qcc::mach::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  Verifier(P, Diags).run();
  return Diags.errorCount() == Before;
}
