//===- mach/Mach.cpp - Mach intermediate language -------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "mach/Mach.h"

using namespace qcc;
using namespace qcc::mach;

const char *qcc::mach::pregName(PReg R) {
  switch (R) {
  case PReg::EAX: return "eax";
  case PReg::EBX: return "ebx";
  case PReg::ECX: return "ecx";
  case PReg::EDX: return "edx";
  case PReg::ESI: return "esi";
  case PReg::EDI: return "edi";
  }
  return "?";
}

std::string Instr::str() const {
  auto R = [](PReg P) { return std::string(pregName(P)); };
  switch (K) {
  case InstrKind::MovImm:
    return R(Dst) + " = " + std::to_string(Imm);
  case InstrKind::Mov:
    return R(Dst) + " = " + R(Src1);
  case InstrKind::Unary: {
    const char *Sp = U == UnOp::Neg ? "-" : U == UnOp::BoolNot ? "!" : "~";
    return R(Dst) + " = " + Sp + R(Src1);
  }
  case InstrKind::Binary:
    return R(Dst) + " = " + R(Src1) + " " + clight::binOpSpelling(B) + " " +
           R(Src2);
  case InstrKind::GlobLoad:
    return R(Dst) + " = [" + Name + "]";
  case InstrKind::GlobStore:
    return "[" + Name + "] = " + R(Src1);
  case InstrKind::ArrayLoad:
    return R(Dst) + " = " + Name + "[" + R(Src1) + "]";
  case InstrKind::ArrayStore:
    return Name + "[" + R(Src1) + "] = " + R(Src2);
  case InstrKind::GetStack:
    return R(Dst) + " = stack[" + std::to_string(Index) + "]";
  case InstrKind::SetStack:
    return "stack[" + std::to_string(Index) + "] = " + R(Src1);
  case InstrKind::GetParam:
    return R(Dst) + " = param[" + std::to_string(Index) + "]";
  case InstrKind::SetOutgoing:
    return "out[" + std::to_string(Index) + "] = " + R(Src1);
  case InstrKind::Call:
    return "call " + Name + " (" + std::to_string(NArgs) + " args)";
  case InstrKind::TailCall:
    return "tailcall " + Name + " (" + std::to_string(NArgs) + " args)";
  case InstrKind::Label:
    return "L" + std::to_string(Index) + ":";
  case InstrKind::Goto:
    return "goto L" + std::to_string(Index);
  case InstrKind::Brnz:
    return "brnz " + R(Src1) + ", L" + std::to_string(Index);
  case InstrKind::Return:
    return "return";
  }
  return "<bad instr>";
}

const Function *Program::findFunction(const std::string &Name) const {
  for (const Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const GlobalVar *Program::findGlobal(const std::string &Name) const {
  for (const GlobalVar &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const ExternalDecl *Program::findExternal(const std::string &Name) const {
  for (const ExternalDecl &E : Externals)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

StackMetric Program::costMetric() const {
  StackMetric M;
  for (const Function &F : Functions)
    M.setCost(F.Name, F.frameSize() + 4);
  return M;
}

std::string Program::str() const {
  std::string Out;
  for (const Function &F : Functions) {
    Out += F.Name + ": (frame " + std::to_string(F.frameSize()) +
           " bytes: " + std::to_string(F.MaxOutgoing) + " out + " +
           std::to_string(F.SpillSlots) + " spill)\n";
    for (const Instr &I : F.Code)
      Out += (I.K == InstrKind::Label ? "  " : "    ") + I.str() + "\n";
  }
  return Out;
}
