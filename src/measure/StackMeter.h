//===- measure/StackMeter.h - Stack-usage measurement -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement harness standing in for the paper's ptrace-based tool
/// (section 6): "our tool forks the monitored process as a child then
/// executes it step by step while keeping track of its stack
/// consumption". Here the ASM_sz machine plays the processor, and the
/// meter reports ESP-at-main-entry minus the observed ESP low-water mark.
/// The baseline excludes main's own return address — which is precisely
/// why verified bounds exceed measurements by exactly 4 bytes on
/// worst-case runs (paper section 6, Figure 7).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_MEASURE_STACKMETER_H
#define QCC_MEASURE_STACKMETER_H

#include "x86/Asm.h"
#include "x86/Machine.h"

#include <cstdint>
#include <string>

namespace qcc {
namespace measure {

/// The outcome of one measured run.
struct Measurement {
  bool Ok = false;            ///< Converged normally.
  bool StackOverflow = false; ///< Trapped on stack exhaustion.
  uint32_t StackBytes = 0;    ///< Measured consumption (valid when Ok).
  int32_t ExitCode = 0;
  std::string Error;
  Trace IOEvents;
  /// Why the run stopped short, if it did: fuel, deadline, memory budget
  /// or cancellation. A stopped run is neither Ok nor a violation — the
  /// meter withholds its verdict.
  StopCause Stop = StopCause::None;
};

/// A comfortably large stack for measurement runs (the paper measures on
/// Linux with the default 8 MiB; the corpus needs far less).
inline constexpr uint32_t MeasureStackSize = 1u << 22;

/// The largest sz the machine can host: its stack block of sz + 4 bytes
/// must fit below the fixed stack top (0x7fff0000). Larger requests would
/// wrap the block's base address; measureProgram rejects them instead.
inline constexpr uint32_t MaxStackSize = 0x7ffe0000u;

/// Runs \p P on a stack of \p StackSize bytes and measures consumption.
Measurement measureProgram(const x86::Program &P,
                           uint32_t StackSize = MeasureStackSize,
                           uint64_t Fuel = x86::DefaultFuel,
                           const Supervisor *Sup = nullptr);

} // namespace measure
} // namespace qcc

#endif // QCC_MEASURE_STACKMETER_H
