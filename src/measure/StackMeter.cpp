//===- measure/StackMeter.cpp - Stack-usage measurement -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "measure/StackMeter.h"

using namespace qcc;
using namespace qcc::measure;

Measurement qcc::measure::measureProgram(const x86::Program &P,
                                         uint32_t StackSize, uint64_t Fuel,
                                         const Supervisor *Sup) {
  if (StackSize > MaxStackSize) {
    Measurement Out;
    Out.Error = "stack size " + std::to_string(StackSize) +
                " exceeds the machine's addressable stack region (" +
                std::to_string(MaxStackSize) + " bytes)";
    return Out;
  }
  x86::Machine M(P, StackSize);
  Behavior B = M.run(Fuel, Sup);

  Measurement Out;
  Out.IOEvents = B.Events;
  Out.Stop = B.Stop;
  switch (B.Kind) {
  case BehaviorKind::Converges:
    Out.Ok = true;
    Out.ExitCode = B.ReturnCode;
    Out.StackBytes = M.measuredStackBytes();
    return Out;
  case BehaviorKind::Diverges:
    Out.Error = B.Stop == StopCause::None || B.Stop == StopCause::FuelExhausted
                    ? "fuel exhausted"
                    : std::string("stopped: ") + stopCauseName(B.Stop);
    return Out;
  case BehaviorKind::Fails:
    Out.Error = B.FailureReason;
    Out.StackOverflow = M.stackOverflowed();
    return Out;
  }
  return Out;
}
