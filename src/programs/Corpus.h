//===- programs/Corpus.h - The evaluation corpus ----------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus of Paper section 6, re-expressed in the verified
/// C subset:
///
///   * Table 1 files (automatic bounds): MiBench dijkstra / bitcount /
///     blowfish / md5 / fft, CertiKOS-style vmm.c and proc.c, CompCert
///     test-suite mandelbrot.c and nbody.c,
///   * Table 2 functions (interactive bounds): recid, bsearch, fib,
///     qsort, filter_pos, sum, fact_sq, filter_find,
///   * the Section 2 illustrative program.
///
/// Adaptations preserve each benchmark's call structure and recursion
/// pattern (what stack bounds depend on); floating-point kernels are
/// re-expressed in fixed point and byte-level I/O as word arrays
/// (DESIGN.md section 1 records every substitution).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_PROGRAMS_CORPUS_H
#define QCC_PROGRAMS_CORPUS_H

#include "logic/Logic.h"

#include <map>
#include <string>
#include <vector>

namespace qcc {
namespace programs {

/// One corpus file plus the metadata the experiments need.
struct CorpusProgram {
  std::string Id;       ///< Paper-style path, e.g. "mibench/net/dijkstra.c".
  std::string Source;   ///< Full source text in the subset.
  /// The functions whose automatic bounds Table 1 reports.
  std::vector<std::string> Table1Functions;
};

/// The Table 1 corpus, in the paper's order.
const std::vector<CorpusProgram> &table1Corpus();

/// One corpus entry with everything batch verification needs: a name,
/// the source, and the interactively derived specifications to seed
/// (empty for the automatic Table 1 files).
struct VerificationUnit {
  std::string Id;
  std::string Source;
  logic::FunctionContext SeededSpecs;
};

/// The whole evaluation corpus in deterministic order: every Table 1
/// file, the Section 2 program (seeded with search's spec), and the
/// Table 2 recursive file (seeded with all eight interactive specs).
/// What `qcc --batch corpus` and the batch engine fan out over.
std::vector<VerificationUnit> verificationCorpus();

/// The single file holding the Table 2 recursive functions (plus a main
/// exercising all of them).
const std::string &table2Source();

/// The Table 2 corpus with a custom main (e.g. "return (int)fib(12);"),
/// leaving globals zero-initialized — the worst-case driver form the
/// gap-4 and Figure 7 experiments use.
std::string table2DriverSource(const std::string &MainBody);

/// The interactively derived specifications for the Table 2 functions
/// (Paper's hand-crafted Coq proofs; here the creative inputs to the
/// derivation builder, validated by the proof checker).
logic::FunctionContext table2Specs();

/// Result-free majorants for Q:CALL-HAVOC call sites in the Table 2
/// corpus (qsort's partition), keyed by callee name.
std::map<std::string, logic::BoundExpr> table2CallHints();

/// Symbolic rendering of each Table 2 bound for reporting, keyed by
/// function name (e.g. "M(bsearch) * (1 + clog2(hi - lo))").
std::map<std::string, std::string> table2BoundText();

/// Worst-case-realizing argument sets for each Table 2 function, used by
/// the gap-4 experiment; keyed by function name.
std::map<std::string, std::vector<uint32_t>> table2WorstCaseArgs();

/// The Section 2 illustrative program (parametric in ALEN and SEED).
const std::string &section2Source();

/// The interactive spec for section 2's `search`.
logic::FunctionContext section2Specs();

} // namespace programs
} // namespace qcc

#endif // QCC_PROGRAMS_CORPUS_H
