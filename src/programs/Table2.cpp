//===- programs/Table2.cpp - The recursive corpus and its specs -----------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight Table 2 functions and their interactively derived
/// specifications. In the paper these are hand-crafted Coq proofs; here
/// the creative step is the same — choosing each specification — while
/// the derivation builder mechanizes the rule applications and the proof
/// checker validates the result (DESIGN.md section 1).
///
/// Specification shapes, with M abbreviating the metric variable of the
/// function itself (paper's bounds in parentheses, with their CompCert
/// frame constants):
///
///   recid(a)                M(recid) * a                        (8a)
///   bsearch(x, lo, hi)      M * (1 + clog2(hi - lo))            (40(1+log2))
///   fib(n)                  M * max(1, n)                       (24n)
///   qsort(lo, hi)           M * [hi - lo]                       (48(hi-lo))
///   filter_pos(sz, lo, hi)  M * [hi - lo]                       (48(hi-lo))
///   sum(lo, hi)             M * [hi - lo]                       (32(hi-lo))
///   fact_sq(n)              M(fact) * max(1, n^2)               (40+24n^2)
///   filter_find(lo, hi)     (M(ff) + M(bsearch)(1+clog2 BL))[hi-lo]
///                                                 (128+48(hi-lo)+40 log2 BL)
///
/// qsort's recursion splits at the pivot returned by partition; the
/// derivation uses Q:CALL-HAVOC with partition's assumed result facts
/// lo <= $result < hi (the functional side condition the paper leaves to
/// a separate safety development).
///
//===----------------------------------------------------------------------===//

#include "programs/Corpus.h"

using namespace qcc::logic;

namespace qcc {
namespace programs {

const char *Table2SourceText = R"(
#define ALEN 512
#define BL 64

typedef unsigned int u32;

u32 a[ALEN];
u32 b[ALEN];
u32 blist[BL];
u32 t2_state = 0x1234567u;

u32 t2_rand() {
  t2_state = t2_state * 1664525 + 1013904223;
  return t2_state;
}

/* recid: the recursive identity (depth a). */
u32 recid(u32 n) {
  if (n == 0) return 0;
  return recid(n - 1) + 1;
}

/* bsearch: binary search over a[lo, hi). */
u32 bsearch(u32 x, u32 lo, u32 hi) {
  u32 mid = lo + (hi - lo) / 2;
  if (hi - lo <= 1) return lo;
  if (a[mid] > x) hi = mid; else lo = mid;
  return bsearch(x, lo, hi);
}

/* fib: the exponential-time, linear-depth Fibonacci. */
u32 fib(u32 n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

/* Hoare partition step for qsort over a[lo, hi); returns the pivot
   position p with lo <= p < hi. */
u32 partition(u32 lo, u32 hi) {
  u32 pivot = a[hi - 1];
  u32 i = lo;
  u32 j, t;
  for (j = lo; j < hi - 1; j++) {
    if (a[j] < pivot) {
      t = a[i]; a[i] = a[j]; a[j] = t;
      i = i + 1;
    }
  }
  t = a[i]; a[i] = a[hi - 1]; a[hi - 1] = t;
  return i;
}

/* qsort: classic quicksort over a[lo, hi); worst-case linear depth. */
void qsort(u32 lo, u32 hi) {
  u32 p;
  if (hi - lo < 2) return;
  p = partition(lo, hi);
  qsort(lo, p);
  qsort(p + 1, hi);
}

/* filter_pos: copy the positive (here: odd, staying unsigned) elements
   of a[lo, hi) to b, recursively; returns the count. */
u32 filter_pos(u32 sz, u32 lo, u32 hi) {
  u32 rest;
  if (hi <= lo) return 0;
  rest = filter_pos(sz, lo + 1, hi);
  if ((a[lo] & 1) != 0) {
    b[rest] = a[lo];
    return rest + 1;
  }
  return rest;
}

/* sum over a[lo, hi), recursively. */
u32 sum(u32 lo, u32 hi) {
  if (hi <= lo) return 0;
  return a[lo] + sum(lo + 1, hi);
}

/* fact and fact_sq: the factorial of n^2 (modular arithmetic keeps the
   value finite; the stack is what matters). */
u32 fact(u32 n) {
  if (n < 2) return 1;
  return n * fact(n - 1);
}

u32 fact_sq(u32 n) {
  return fact(n * n);
}

/* filter_find: count the elements of a[lo, hi) that binary search locates
   in the sorted table blist (each step pays one bsearch of width BL). */
u32 filter_find(u32 lo, u32 hi) {
  u32 rest, idx;
  if (hi <= lo) return 0;
  rest = filter_find(lo + 1, hi);
  idx = bsearch(a[lo], 0, BL);
  if (blist[idx] == a[lo]) {
    return rest + 1;
  }
  return rest;
}

)";

const char *Table2DefaultMain = R"(
int main() {
  u32 i, acc;
  for (i = 0; i < ALEN; i++) {
    a[i] = t2_rand() % 1000;
  }
  for (i = 0; i < BL; i++) {
    blist[i] = i * 3;
  }
  acc = recid(10);
  acc = acc + bsearch(a[7], 0, ALEN);
  acc = acc + fib(10);
  qsort(0, 64);
  acc = acc + filter_pos(ALEN, 0, 32);
  acc = acc + sum(0, 32);
  acc = acc + fact_sq(4);
  acc = acc + filter_find(0, 16);
  return (int)(acc & 0x7fffffffu);
}
)";

const std::string &table2Source() {
  static const std::string Source =
      std::string(Table2SourceText) + Table2DefaultMain;
  return Source;
}

std::string table2DriverSource(const std::string &MainBody) {
  return std::string(Table2SourceText) + "\nint main() { " + MainBody +
         " }\n";
}

namespace {

IntTerm v(const char *Name) { return IntTermNode::var(Name); }
IntTerm c(int64_t V) { return IntTermNode::constant(V); }

/// M(f) * [hi - lo] — the linear-recursion shape.
FunctionSpec linearSpec(const char *F, const char *Lo, const char *Hi) {
  return FunctionSpec::balanced(
      bMul(bMetric(F), bNatTerm(IntTermNode::sub(v(Hi), v(Lo)))));
}

} // namespace

FunctionContext table2Specs() {
  FunctionContext Specs;

  // Every specification below is *tight*: on a worst-case-realizing run
  // the measured consumption equals the instantiated bound minus 4 (the
  // paper's section 6 observation). A spec {B} f {B} counts the stack
  // below f's own frame; the reported Table 2 value is the call bound
  // M(f) + B.

  // recid: the chain recid(n) -> ... -> recid(0) holds n callee frames.
  Specs["recid"] =
      FunctionSpec::balanced(bMul(bMetric("recid"), bNatTerm(v("n"))));

  // bsearch: the halving chain below bsearch(lo, hi) holds exactly
  // clog2(hi - lo) frames; call bound M * (1 + clog2(hi - lo)) — the
  // paper's 40(1 + log2(hi - lo)) with CompCert's 40-byte frame.
  Specs["bsearch"] = FunctionSpec::balanced(
      bMul(bMetric("bsearch"),
           bLog2C(IntTermNode::sub(v("hi"), v("lo")))));

  // fib: the deepest chain fib(n) -> fib(n-1) -> ... -> fib(1) holds
  // n - 1 callee frames (none for n <= 1); call bound M * n — the
  // paper's 24n.
  Specs["fib"] = FunctionSpec::balanced(
      bIte(Cmp{v("n"), CmpRel::Ge, c(1)},
           bMul(bMetric("fib"), bNatTerm(IntTermNode::sub(v("n"), c(1)))),
           bZero()));

  // partition: leaf, {0} partition {0}; its ResultFacts lo <= $result <
  // hi are the assumed functional side condition feeding Q:CALL-HAVOC.
  {
    FunctionSpec P = FunctionSpec::balanced(bZero());
    P.ResultFacts = {Cmp{v("lo"), CmpRel::Le, v(resultVarName())},
                     Cmp{v(resultVarName()), CmpRel::Lt, v("hi")}};
    Specs["partition"] = P;
  }

  // qsort: on sorted input the pivot degenerates and the chain loses one
  // element per level: w - 2 qsort frames plus, at the bottom, the larger
  // of one partition frame and one trivial qsort frame.
  {
    IntTerm W = IntTermNode::sub(v("hi"), v("lo"));
    Specs["qsort"] = FunctionSpec::balanced(
        bIte(Cmp{W, CmpRel::Ge, c(2)},
             bAdd(bMul(bMetric("qsort"),
                       bNatTerm(IntTermNode::sub(W, c(2)))),
                  bMax(bMetric("partition"), bMetric("qsort"))),
             bZero()));
  }

  // filter_pos and sum: plain linear recursion, one frame per element
  // plus the final empty-range activation: exactly [hi - lo] frames.
  Specs["filter_pos"] = linearSpec("filter_pos", "lo", "hi");
  Specs["sum"] = linearSpec("sum", "lo", "hi");

  // fact: the chain fact(n) -> ... -> fact(1) holds n - 1 callee frames.
  Specs["fact"] = FunctionSpec::balanced(
      bIte(Cmp{v("n"), CmpRel::Ge, c(1)},
           bMul(bMetric("fact"), bNatTerm(IntTermNode::sub(v("n"), c(1)))),
           bZero()));

  // fact_sq: one fact activation plus its chain: M(fact) * max(1, n^2);
  // call bound M(fact_sq) + 24 n^2-shaped — the paper's 40 + 24 n^2.
  Specs["fact_sq"] = FunctionSpec::balanced(
      bMul(bMetric("fact"),
           bMax(bConst(1), bNatTerm(IntTermNode::mul(v("n"), v("n"))))));

  // filter_find: the recursion descends first and runs bsearch on the
  // way back up, so the peak is (w - 1) filter_find frames plus the
  // larger of one more filter_find frame and a full bsearch excursion
  // over the constant-width table: M(bsearch) * (1 + clog2(BL)).
  {
    IntTerm W = IntTermNode::sub(v("hi"), v("lo"));
    BoundExpr BsearchExcursion =
        bMul(bMetric("bsearch"), bAdd(bConst(1), bLog2C(c(64)))); // BL=64.
    Specs["filter_find"] = FunctionSpec::balanced(
        bIte(Cmp{W, CmpRel::Ge, c(1)},
             bAdd(bMul(bMetric("filter_find"),
                       bNatTerm(IntTermNode::sub(W, c(1)))),
                  bMax(bMetric("filter_find"), BsearchExcursion)),
             bZero()));
  }

  return Specs;
}

std::map<std::string, logic::BoundExpr> table2CallHints() {
  // qsort's continuation after `p = partition(lo, hi)` needs a
  // result-free majorant: for every p in [lo, hi), both recursive
  // requirements M(qsort) + B(p - lo) and M(qsort) + B(hi - p - 1) stay
  // below qsort's own tight bound B(hi - lo) (checked by the proof
  // checker by sampling p under partition's ResultFacts).
  // The guard encodes the call site's path condition: partition is only
  // reached when hi - lo >= 2, and off-path the majorant may be oo (the
  // conditional join upstream selects the other branch there).
  IntTerm W = IntTermNode::sub(v("hi"), v("lo"));
  return {{"partition",
           bGuard(Cmp{W, CmpRel::Ge, c(2)},
                  bAdd(bMul(bMetric("qsort"),
                            bNatTerm(IntTermNode::sub(W, c(2)))),
                       bMax(bMetric("partition"), bMetric("qsort"))))}};
}

std::map<std::string, std::string> table2BoundText() {
  std::map<std::string, std::string> Text;
  for (const auto &[F, Spec] : table2Specs())
    Text[F] = Spec.Pre->str();
  return Text;
}

std::map<std::string, std::vector<uint32_t>> table2WorstCaseArgs() {
  // Argument vectors whose runs realize each bound's worst case (the
  // gap-4 experiment): power-of-two widths for bsearch, already-sorted
  // input makes qsort's pivot degenerate, etc.
  return {
      {"recid", {24}},
      {"bsearch", {0, 0, 256}},
      {"fib", {12}},
      {"qsort", {0, 48}},
      {"filter_pos", {512, 0, 40}},
      {"sum", {0, 48}},
      {"fact_sq", {5}},
      {"filter_find", {0, 12}},
  };
}

} // namespace programs
} // namespace qcc
