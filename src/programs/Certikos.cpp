//===- programs/Certikos.cpp - CertiKOS-style kernel modules --------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two CertiKOS-style modules of Table 1: virtual memory management
/// (vmm.c: physical page allocator + per-process page tables) and process
/// management (proc.c: thread descriptors, ready queues, scheduler
/// bootstrap). The paper's simplified development version of CertiKOS is
/// closed source; these modules reproduce the function inventory and call
/// structure Table 1 reports bounds for.
///
//===----------------------------------------------------------------------===//

#include "programs/Corpus.h"

namespace qcc {
namespace programs {

//===----------------------------------------------------------------------===//
// certikos/vmm.c — physical page allocator over a free list plus
// one-level page tables per process.
//===----------------------------------------------------------------------===//

const char *VmmSource = R"(
#define NPAGES 256
#define NPROC 8
#define PTSIZE 64
#define PG_INVALID 0xffffffffu

typedef unsigned int u32;

u32 pg_next[NPAGES];   /* free-list links */
u32 pg_refcnt[NPAGES];
u32 pg_free_head;
u32 pg_nfree;

u32 pt[NPROC * PTSIZE]; /* page-table entries: physical page or invalid */
u32 pt_kern[PTSIZE];    /* the shared kernel mapping */

void mem_init() {
  u32 i;
  for (i = 0; i < NPAGES; i++) {
    pg_refcnt[i] = 0;
    if (i + 1 < NPAGES) pg_next[i] = i + 1;
    else pg_next[i] = PG_INVALID;
  }
  pg_free_head = 0;
  pg_nfree = NPAGES;
}

u32 palloc() {
  u32 pg;
  if (pg_nfree == 0) return PG_INVALID;
  pg = pg_free_head;
  pg_free_head = pg_next[pg];
  pg_nfree = pg_nfree - 1;
  pg_refcnt[pg] = 1;
  return pg;
}

void pfree(u32 pg) {
  if (pg >= NPAGES) return;
  if (pg_refcnt[pg] == 0) return;
  pg_refcnt[pg] = pg_refcnt[pg] - 1;
  if (pg_refcnt[pg] == 0) {
    pg_next[pg] = pg_free_head;
    pg_free_head = pg;
    pg_nfree = pg_nfree + 1;
  }
}

void pt_init_kern() {
  u32 i;
  for (i = 0; i < PTSIZE; i++) {
    /* Identity-map the kernel window. */
    pt_kern[i] = i;
  }
}

void pt_init(u32 proc) {
  u32 i;
  for (i = 0; i < PTSIZE; i++) {
    pt[proc * PTSIZE + i] = PG_INVALID;
  }
}

void pmap_init() {
  u32 p;
  pt_init_kern();
  for (p = 0; p < NPROC; p++) {
    pt_init(p);
  }
}

u32 pt_insert(u32 proc, u32 vpage, u32 ppage) {
  u32 old = pt[proc * PTSIZE + vpage];
  if (old != PG_INVALID) {
    pfree(old);
  }
  pt[proc * PTSIZE + vpage] = ppage;
  return 0;
}

u32 pt_read(u32 proc, u32 vpage) {
  return pt[proc * PTSIZE + vpage];
}

u32 pt_resv(u32 proc, u32 vpage) {
  u32 pg = palloc();
  if (pg == PG_INVALID) return 1;
  pt_insert(proc, vpage, pg);
  return 0;
}

void pt_free(u32 proc) {
  u32 i, entry;
  for (i = 0; i < PTSIZE; i++) {
    entry = pt[proc * PTSIZE + i];
    if (entry != PG_INVALID) {
      pfree(entry);
      pt[proc * PTSIZE + i] = PG_INVALID;
    }
  }
}

int main() {
  u32 p, v, failed, probe;
  mem_init();
  pmap_init();
  failed = 0;
  for (p = 0; p < NPROC; p++) {
    for (v = 0; v < 16; v++) {
      failed = failed + pt_resv(p, v);
    }
  }
  /* Remap process 0: exercises the pfree path inside pt_insert. */
  for (v = 0; v < 16; v++) {
    failed = failed + pt_resv(0, v);
  }
  probe = pt_read(3, 5);
  for (p = 0; p < NPROC; p++) {
    pt_free(p);
  }
  if (pg_nfree != NPAGES) return -1;
  return (int)(failed + (probe != PG_INVALID));
}
)";

//===----------------------------------------------------------------------===//
// certikos/proc.c — thread descriptors, per-priority ready queues, kernel
// context creation, scheduler bootstrap, and thread spawning.
//===----------------------------------------------------------------------===//

const char *ProcSource = R"(
#define NTHREAD 16
#define NQUEUE 4
#define TD_FREE 0
#define TD_READY 1
#define TD_RUNNING 2
#define NIL 0xffffffffu

typedef unsigned int u32;

u32 td_state[NTHREAD];
u32 td_next[NTHREAD];
u32 td_prio[NTHREAD];
u32 td_entry[NTHREAD];
u32 kctxt_esp[NTHREAD];
u32 kctxt_eip[NTHREAD];
u32 tq_head[NQUEUE];
u32 tq_tail[NQUEUE];
u32 nspawned;

void enqueue(u32 q, u32 td) {
  td_next[td] = NIL;
  if (tq_tail[q] == NIL) {
    tq_head[q] = td;
  } else {
    td_next[tq_tail[q]] = td;
  }
  tq_tail[q] = td;
}

u32 dequeue(u32 q) {
  u32 td = tq_head[q];
  if (td == NIL) return NIL;
  tq_head[q] = td_next[td];
  if (tq_head[q] == NIL) {
    tq_tail[q] = NIL;
  }
  td_next[td] = NIL;
  return td;
}

void tdqueue_init() {
  u32 q;
  for (q = 0; q < NQUEUE; q++) {
    tq_head[q] = NIL;
    tq_tail[q] = NIL;
  }
}

void thread_init() {
  u32 td;
  for (td = 0; td < NTHREAD; td++) {
    td_state[td] = TD_FREE;
    td_next[td] = NIL;
    td_prio[td] = 0;
    td_entry[td] = 0;
  }
  nspawned = 0;
}

void kctxt_new(u32 td, u32 entry) {
  /* A fresh kernel context: a fake stack top and entry point. */
  kctxt_esp[td] = 0x80000000u - td * 0x1000u;
  kctxt_eip[td] = entry;
}

void sched_init() {
  tdqueue_init();
  thread_init();
}

u32 thread_spawn(u32 entry, u32 prio) {
  u32 td;
  for (td = 0; td < NTHREAD; td++) {
    if (td_state[td] == TD_FREE) break;
  }
  if (td == NTHREAD) return NIL;
  td_state[td] = TD_READY;
  td_prio[td] = prio;
  td_entry[td] = entry;
  kctxt_new(td, entry);
  enqueue(prio % NQUEUE, td);
  nspawned = nspawned + 1;
  return td;
}

u32 sched_pick() {
  u32 q, td;
  for (q = 0; q < NQUEUE; q++) {
    td = dequeue(q);
    if (td != NIL) {
      td_state[td] = TD_RUNNING;
      return td;
    }
  }
  return NIL;
}

int main() {
  u32 i, td, picked;
  sched_init();
  for (i = 0; i < 12; i++) {
    thread_spawn(0x1000u + i, i);
  }
  picked = 0;
  for (i = 0; i < 12; i++) {
    td = sched_pick();
    if (td != NIL) picked = picked + 1;
  }
  return (int)(picked + nspawned);
}
)";

} // namespace programs
} // namespace qcc
