//===- programs/Corpus.cpp - Corpus registry ------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "programs/Corpus.h"

using namespace qcc::logic;

namespace qcc {
namespace programs {

// Defined in Mibench.cpp / Certikos.cpp / Compcert.cpp.
extern const char *DijkstraSource;
extern const char *BitcountSource;
extern const char *BlowfishSource;
extern const char *Md5Source;
extern const char *FftSource;
extern const char *VmmSource;
extern const char *ProcSource;
extern const char *MandelbrotSource;
extern const char *NbodySource;

const std::vector<CorpusProgram> &table1Corpus() {
  static const std::vector<CorpusProgram> Corpus = {
      {"mibench/net/dijkstra.c",
       DijkstraSource,
       {"enqueue", "dequeue", "dijkstra"}},
      {"mibench/auto/bitcount.c",
       BitcountSource,
       {"bitcount", "bitstring"}},
      {"mibench/sec/blowfish.c",
       BlowfishSource,
       {"BF_encrypt", "BF_options", "BF_ecb_encrypt"}},
      {"mibench/sec/pgp/md5.c",
       Md5Source,
       {"MD5Init", "MD5Update", "MD5Final", "MD5Transform"}},
      {"mibench/tele/fft.c",
       FftSource,
       {"IsPowerOfTwo", "NumberOfBitsNeeded", "ReverseBits", "fft_fixed"}},
      {"certikos/vmm.c",
       VmmSource,
       {"palloc", "pfree", "mem_init", "pmap_init", "pt_free", "pt_init",
        "pt_init_kern", "pt_insert", "pt_read", "pt_resv"}},
      {"certikos/proc.c",
       ProcSource,
       {"enqueue", "dequeue", "kctxt_new", "sched_init", "tdqueue_init",
        "thread_init", "thread_spawn", "main"}},
      {"compcert/mandelbrot.c", MandelbrotSource, {"mb_iters", "main"}},
      {"compcert/nbody.c",
       NbodySource,
       {"advance", "energy", "offset_momentum", "setup_bodies", "main"}},
  };
  return Corpus;
}

std::vector<VerificationUnit> verificationCorpus() {
  std::vector<VerificationUnit> Units;
  for (const CorpusProgram &P : table1Corpus())
    Units.push_back({P.Id, P.Source, {}});
  Units.push_back({"section2/search.c", section2Source(), section2Specs()});
  Units.push_back({"table2/recursive.c", table2Source(), table2Specs()});
  return Units;
}

//===----------------------------------------------------------------------===//
// The Section 2 illustrative program
//===----------------------------------------------------------------------===//

const char *Section2SourceText = R"(
#define ALEN 64
#define SEED 1

typedef unsigned int u32;

u32 a[ALEN];
u32 seed = SEED;

u32 search(u32 elem, u32 beg, u32 end) {
  u32 mid = beg + (end - beg) / 2;
  if (end - beg <= 1) return beg;
  if (a[mid] > elem) end = mid; else beg = mid;
  return search(elem, beg, end);
}

u32 random() {
  seed = (seed * 1664525) + 1013904223;
  return seed;
}

void init() {
  u32 i, rnd, prev = 0;
  for (i = 0; i < ALEN; i++) {
    rnd = random();
    a[i] = prev + rnd % 17;
    prev = a[i];
  }
}

int main() {
  u32 idx, elem;
  init();
  elem = random() % (17 * ALEN);
  idx = search(elem, 0, ALEN);
  return a[idx] == elem;
}
)";

const std::string &section2Source() {
  static const std::string Source = Section2SourceText;
  return Source;
}

FunctionContext section2Specs() {
  FunctionContext Specs;
  // The paper's L(Delta) for search, in the tight ceiling-log form: the
  // halving chain below search(beg, end) holds clog2(end - beg) frames.
  Specs["search"] = FunctionSpec::balanced(
      bMul(bMetric("search"),
           bLog2C(IntTermNode::sub(IntTermNode::var("end"),
                                   IntTermNode::var("beg")))));
  return Specs;
}

} // namespace programs
} // namespace qcc
