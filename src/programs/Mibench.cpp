//===- programs/Mibench.cpp - MiBench-derived corpus files ----------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five MiBench-derived files of Table 1, adapted to the verified C
/// subset. Call graphs and per-function local pressure mirror the
/// originals; pointer-based data structures are re-expressed over global
/// arrays and floating-point kernels in fixed point (DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "programs/Corpus.h"

namespace qcc {
namespace programs {

//===----------------------------------------------------------------------===//
// mibench/net/dijkstra.c — single-source shortest paths with an explicit
// work queue (the original's malloc'd queue nodes become a ring buffer).
//===----------------------------------------------------------------------===//

const char *DijkstraSource = R"(
#define NUM_NODES 16
#define QSIZE 256
#define NONE 9999

typedef unsigned int u32;

u32 adj[NUM_NODES * NUM_NODES];
u32 dist[NUM_NODES];
u32 prev[NUM_NODES];

u32 q_node[QSIZE];
u32 q_dist[QSIZE];
u32 q_prev[QSIZE];
u32 q_head;
u32 q_tail;
u32 q_count;

u32 rand_state = 1;

u32 next_rand() {
  rand_state = rand_state * 1103515245 + 12345;
  return (rand_state >> 16) & 0x7fff;
}

void enqueue(u32 node, u32 d, u32 p) {
  q_node[q_tail] = node;
  q_dist[q_tail] = d;
  q_prev[q_tail] = p;
  q_tail = (q_tail + 1) % QSIZE;
  q_count = q_count + 1;
}

u32 deq_node;
u32 deq_dist;
u32 deq_prev;

void dequeue() {
  deq_node = q_node[q_head];
  deq_dist = q_dist[q_head];
  deq_prev = q_prev[q_head];
  q_head = (q_head + 1) % QSIZE;
  q_count = q_count - 1;
}

u32 qcount() {
  return q_count;
}

u32 dijkstra(u32 chStart, u32 chEnd) {
  u32 v, d, w;
  u32 i;
  for (i = 0; i < NUM_NODES; i++) {
    dist[i] = NONE;
    prev[i] = NONE;
  }
  q_head = 0; q_tail = 0; q_count = 0;
  dist[chStart] = 0;
  enqueue(chStart, 0, NONE);
  while (qcount() > 0) {
    dequeue();
    v = deq_node;
    d = deq_dist;
    if (dist[v] >= d) {
      for (w = 0; w < NUM_NODES; w++) {
        u32 cost = adj[v * NUM_NODES + w];
        if (cost != NONE) {
          if (d + cost < dist[w]) {
            dist[w] = d + cost;
            prev[w] = v;
            if (q_count < QSIZE - 1) {
              enqueue(w, d + cost, v);
            }
          }
        }
      }
    }
  }
  return dist[chEnd];
}

int main() {
  u32 i, j, total;
  for (i = 0; i < NUM_NODES; i++) {
    for (j = 0; j < NUM_NODES; j++) {
      if (i == j) adj[i * NUM_NODES + j] = 0;
      else adj[i * NUM_NODES + j] = next_rand() % 100 + 1;
    }
  }
  total = 0;
  for (i = 0; i < 8; i++) {
    total = total + dijkstra(i, NUM_NODES - 1 - i);
  }
  return total & 0x7fffffff;
}
)";

//===----------------------------------------------------------------------===//
// mibench/auto/bitcount.c — the bit-counting shoot-out (loop counter,
// shift counter, nibble-table lookup) plus the binary-string renderer.
//===----------------------------------------------------------------------===//

const char *BitcountSource = R"(
#define ITERATIONS 256

typedef unsigned int u32;

u32 ntbl[16] = {0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};
u32 strbuf[32];
u32 rand_state = 7;

u32 next_rand() {
  rand_state = rand_state * 1664525 + 1013904223;
  return rand_state;
}

u32 bitcount(u32 x) {
  u32 n = 0;
  while (x != 0) {
    x = x & (x - 1);
    n = n + 1;
  }
  return n;
}

u32 bit_shifter(u32 x) {
  u32 n = 0;
  u32 i;
  for (i = 0; i < 32; i++) {
    n = n + ((x >> i) & 1);
  }
  return n;
}

u32 ntbl_bitcount(u32 x) {
  return ntbl[x & 0xf] + ntbl[(x >> 4) & 0xf] + ntbl[(x >> 8) & 0xf] +
         ntbl[(x >> 12) & 0xf] + ntbl[(x >> 16) & 0xf] +
         ntbl[(x >> 20) & 0xf] + ntbl[(x >> 24) & 0xf] +
         ntbl[(x >> 28) & 0xf];
}

u32 bitstring(u32 x) {
  u32 i;
  u32 ones = 0;
  for (i = 0; i < 32; i++) {
    strbuf[31 - i] = x & 1;
    ones = ones + (x & 1);
    x = x >> 1;
  }
  return ones;
}

int main() {
  u32 i, x, total;
  total = 0;
  for (i = 0; i < ITERATIONS; i++) {
    x = next_rand();
    total = total + bitcount(x);
    total = total + bit_shifter(x);
    total = total + ntbl_bitcount(x);
    total = total + bitstring(x);
  }
  return (total / 4) & 0xff;
}
)";

//===----------------------------------------------------------------------===//
// mibench/sec/blowfish.c — the Blowfish Feistel core. The P-array and
// S-boxes are seeded by a generator instead of the digits of pi; the
// 16-round structure, key mixing and ECB driver match the original.
//===----------------------------------------------------------------------===//

const char *BlowfishSource = R"(
#define NBLOCKS 32

typedef unsigned int u32;

u32 P[18];
u32 S[1024]; /* 4 x 256 */
u32 bf_xl;
u32 bf_xr;
u32 inbuf[2 * NBLOCKS];
u32 outbuf[2 * NBLOCKS];
u32 key[4] = {0x13570246u, 0x89abcdefu, 0xdeadbeefu, 0xcafebabeu};
u32 gen_state = 0x243f6a88u;

u32 gen() {
  gen_state = gen_state * 0x9e3779b1u + 0x7f4a7c15u;
  return gen_state;
}

u32 bf_f(u32 x) {
  u32 a = (x >> 24) & 0xff;
  u32 b = (x >> 16) & 0xff;
  u32 c = (x >> 8) & 0xff;
  u32 d = x & 0xff;
  return ((S[a] + S[256 + b]) ^ S[512 + c]) + S[768 + d];
}

void BF_encrypt() {
  u32 i;
  u32 l = bf_xl;
  u32 r = bf_xr;
  u32 t;
  for (i = 0; i < 16; i++) {
    l = l ^ P[i];
    r = bf_f(l) ^ r;
    t = l; l = r; r = t;
  }
  t = l; l = r; r = t;
  r = r ^ P[16];
  l = l ^ P[17];
  bf_xl = l;
  bf_xr = r;
}

u32 BF_options() {
  return 16; /* rounds */
}

void BF_set_key() {
  u32 i;
  for (i = 0; i < 18; i++) {
    P[i] = gen() ^ key[i % 4];
  }
  for (i = 0; i < 1024; i++) {
    S[i] = gen();
  }
  /* Key-schedule mixing: run the cipher over the zero block and fold the
     results back into P, as the original does. */
  bf_xl = 0; bf_xr = 0;
  for (i = 0; i < 9; i++) {
    BF_encrypt();
    P[2 * i] = bf_xl;
    P[2 * i + 1] = bf_xr;
  }
}

void BF_ecb_encrypt(u32 blk) {
  bf_xl = inbuf[2 * blk];
  bf_xr = inbuf[2 * blk + 1];
  BF_encrypt();
  outbuf[2 * blk] = bf_xl;
  outbuf[2 * blk + 1] = bf_xr;
}

int main() {
  u32 i, acc;
  for (i = 0; i < 2 * NBLOCKS; i++) {
    inbuf[i] = gen();
  }
  BF_set_key();
  for (i = 0; i < NBLOCKS; i++) {
    BF_ecb_encrypt(i);
  }
  acc = BF_options();
  for (i = 0; i < 2 * NBLOCKS; i++) {
    acc = acc ^ outbuf[i];
  }
  return acc & 0x7fffffff;
}
)";

//===----------------------------------------------------------------------===//
// mibench/sec/pgp/md5.c — the MD5 driver structure (Init / Update /
// Final / Transform) over word-granular input. The 64-step transform
// keeps the original's four-round shape with table-driven rotation
// amounts; the sine-derived constants come from a generator.
//===----------------------------------------------------------------------===//

const char *Md5Source = R"(
#define MSG_WORDS 64

typedef unsigned int u32;

u32 md5_state[4];
u32 md5_count;
u32 md5_block[16];
u32 md5_fill;
u32 Ttab[64];
u32 Rtab[64];
u32 message[MSG_WORDS];
u32 t_state = 0x67452301u;

u32 t_gen() {
  t_state = t_state * 0x41c64e6du + 0x3039u;
  return t_state;
}

u32 rotl(u32 x, u32 c) {
  return (x << c) | (x >> (32 - c));
}

void MD5Transform() {
  u32 a = md5_state[0];
  u32 b = md5_state[1];
  u32 c = md5_state[2];
  u32 d = md5_state[3];
  u32 i, f, g, tmp;
  for (i = 0; i < 64; i++) {
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + Ttab[i] + md5_block[g], Rtab[i]);
    a = tmp;
  }
  md5_state[0] = md5_state[0] + a;
  md5_state[1] = md5_state[1] + b;
  md5_state[2] = md5_state[2] + c;
  md5_state[3] = md5_state[3] + d;
}

void MD5Init() {
  u32 i;
  md5_state[0] = 0x67452301u;
  md5_state[1] = 0xefcdab89u;
  md5_state[2] = 0x98badcfeu;
  md5_state[3] = 0x10325476u;
  md5_count = 0;
  md5_fill = 0;
  for (i = 0; i < 64; i++) {
    Ttab[i] = t_gen();
    Rtab[i] = 1 + (t_gen() % 31);
  }
}

void MD5Update(u32 word) {
  md5_block[md5_fill] = word;
  md5_fill = md5_fill + 1;
  md5_count = md5_count + 1;
  if (md5_fill == 16) {
    MD5Transform();
    md5_fill = 0;
  }
}

u32 MD5Final() {
  /* Pad with 0x80000000 then zeros, appending the word count. */
  MD5Update(0x80000000u);
  while (md5_fill != 15) {
    MD5Update(0);
  }
  MD5Update(md5_count);
  return md5_state[0] ^ md5_state[1] ^ md5_state[2] ^ md5_state[3];
}

int main() {
  u32 i, digest;
  for (i = 0; i < MSG_WORDS; i++) {
    message[i] = t_gen();
  }
  MD5Init();
  for (i = 0; i < MSG_WORDS; i++) {
    MD5Update(message[i]);
  }
  digest = MD5Final();
  return digest & 0x7fffffff;
}
)";

//===----------------------------------------------------------------------===//
// mibench/tele/fft.c — the FFT helpers and a fixed-point butterfly pass
// (the original's double-precision fft_float; twiddle factors come from
// quarter-wave integer tables).
//===----------------------------------------------------------------------===//

const char *FftSource = R"(
#define NPOINTS 64
#define SCALE 4096

typedef unsigned int u32;

int re[NPOINTS];
int im[NPOINTS];
int re2[NPOINTS];
int im2[NPOINTS];
int sin_t[NPOINTS];
int cos_t[NPOINTS];
u32 w_state = 0x2545f491u;

u32 w_gen() {
  w_state = w_state * 0x9e3779b1u + 0x85ebca6bu;
  return w_state;
}

u32 IsPowerOfTwo(u32 x) {
  if (x < 2) return 0;
  if ((x & (x - 1)) != 0) return 0;
  return 1;
}

u32 NumberOfBitsNeeded(u32 n) {
  u32 i = 0;
  while ((n & 1) == 0) {
    n = n >> 1;
    i = i + 1;
  }
  return i;
}

u32 ReverseBits(u32 index, u32 bits) {
  u32 i, rev;
  rev = 0;
  for (i = 0; i < bits; i++) {
    rev = (rev << 1) | (index & 1);
    index = index >> 1;
  }
  return rev;
}

void init_tables() {
  u32 i;
  for (i = 0; i < NPOINTS; i++) {
    /* Quarter-wave-folded pseudo twiddles in [-SCALE, SCALE]. */
    sin_t[i] = (int)(w_gen() % (2 * SCALE + 1)) - SCALE;
    cos_t[i] = (int)(w_gen() % (2 * SCALE + 1)) - SCALE;
  }
}

u32 fft_fixed(u32 size) {
  u32 bits, i, j, blockEnd, blockSize, k, n;
  int tr, ti;
  if (IsPowerOfTwo(size) == 0) return 1;
  bits = NumberOfBitsNeeded(size);
  for (i = 0; i < size; i++) {
    j = ReverseBits(i, bits);
    re2[j] = re[i];
    im2[j] = im[i];
  }
  blockEnd = 1;
  blockSize = 2;
  while (blockSize <= size) {
    for (i = 0; i < size; i = i + blockSize) {
      for (n = 0; n < blockEnd; n++) {
        k = (n * size) / blockSize;
        j = i + n;
        tr = (cos_t[k] * re2[j + blockEnd] - sin_t[k] * im2[j + blockEnd])
             / SCALE;
        ti = (sin_t[k] * re2[j + blockEnd] + cos_t[k] * im2[j + blockEnd])
             / SCALE;
        re2[j + blockEnd] = re2[j] - tr;
        im2[j + blockEnd] = im2[j] - ti;
        re2[j] = re2[j] + tr;
        im2[j] = im2[j] + ti;
      }
    }
    blockEnd = blockSize;
    blockSize = blockSize << 1;
  }
  return 0;
}

int main() {
  u32 i, bad;
  int acc;
  init_tables();
  for (i = 0; i < NPOINTS; i++) {
    re[i] = (int)(w_gen() % 2001) - 1000;
    im[i] = 0;
  }
  bad = fft_fixed(NPOINTS);
  if (bad != 0) return -1;
  acc = 0;
  for (i = 0; i < NPOINTS; i++) {
    acc = acc ^ re2[i] ^ im2[i];
  }
  return acc & 0x7fffffff;
}
)";

} // namespace programs
} // namespace qcc
