//===- programs/Compcert.cpp - CompCert test-suite corpus files -----------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two CompCert-test-suite files of Table 1: mandelbrot.c (escape-time
/// iteration over the complex plane) and nbody.c (the n-body simulation of
/// part of the solar system: advance / energy / offset_momentum /
/// setup_bodies). Both originals compute in double precision; these
/// versions use 16.16 / scaled-integer fixed point, preserving every
/// function and call site of the originals.
///
//===----------------------------------------------------------------------===//

#include "programs/Corpus.h"

namespace qcc {
namespace programs {

//===----------------------------------------------------------------------===//
// compcert/mandelbrot.c
//===----------------------------------------------------------------------===//

const char *MandelbrotSource = R"(
#define WIDTH 24
#define HEIGHT 24
#define MAXITER 40
#define ONE 4096 /* 20.12 fixed point */

typedef unsigned int u32;

u32 bitmap[HEIGHT];

u32 mb_iters(int cr, int ci) {
  int zr = 0;
  int zi = 0;
  int zr2, zi2, t;
  u32 n;
  for (n = 0; n < MAXITER; n++) {
    zr2 = (zr * zr) / ONE;
    zi2 = (zi * zi) / ONE;
    if (zr2 + zi2 > 4 * ONE) break;
    t = zr2 - zi2 + cr;
    zi = (2 * zr * zi) / ONE + ci;
    zr = t;
  }
  return n;
}

int main() {
  u32 x, y, inside;
  int cr, ci;
  inside = 0;
  for (y = 0; y < HEIGHT; y++) {
    bitmap[y] = 0;
    for (x = 0; x < WIDTH; x++) {
      /* Map the pixel grid onto [-2, 0.5] x [-1.25, 1.25]. */
      cr = ((int)x * 5 * ONE / 2) / WIDTH - 2 * ONE;
      ci = ((int)y * 5 * ONE / 2) / HEIGHT - (5 * ONE / 4);
      if (mb_iters(cr, ci) == MAXITER) {
        bitmap[y] = bitmap[y] | (1u << x);
        inside = inside + 1;
      }
    }
  }
  return (int)inside;
}
)";

//===----------------------------------------------------------------------===//
// compcert/nbody.c
//===----------------------------------------------------------------------===//

const char *NbodySource = R"(
#define NBODIES 5
#define STEPS 12
#define FP 1024 /* fixed-point unit */

typedef unsigned int u32;

int bx[NBODIES];
int by[NBODIES];
int bz[NBODIES];
int vx[NBODIES];
int vy[NBODIES];
int vz[NBODIES];
int mass[NBODIES];

u32 seed = 42;

u32 nrand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

int isqrt(int v) {
  /* Integer Newton iteration; v >= 0. */
  int x, next;
  if (v < 2) return v;
  x = v / 2;
  while (1) {
    next = (x + v / x) / 2;
    if (next >= x) break;
    x = next;
  }
  return x;
}

void offset_momentum() {
  int px = 0;
  int py = 0;
  int pz = 0;
  u32 i;
  for (i = 0; i < NBODIES; i++) {
    px = px + vx[i] * mass[i] / FP;
    py = py + vy[i] * mass[i] / FP;
    pz = pz + vz[i] * mass[i] / FP;
  }
  vx[0] = vx[0] - px * FP / mass[0];
  vy[0] = vy[0] - py * FP / mass[0];
  vz[0] = vz[0] - pz * FP / mass[0];
}

void advance(int dt) {
  u32 i, j;
  int dx, dy, dz, d2, d, mag;
  for (i = 0; i < NBODIES; i++) {
    for (j = i + 1; j < NBODIES; j++) {
      dx = bx[i] - bx[j];
      dy = by[i] - by[j];
      dz = bz[i] - bz[j];
      d2 = (dx * dx + dy * dy + dz * dz) / FP;
      if (d2 < 1) d2 = 1;
      d = isqrt(d2 * FP);
      if (d < 1) d = 1;
      mag = dt * FP / (d2 / FP * d + 1);
      vx[i] = vx[i] - dx * mass[j] / FP * mag / FP;
      vy[i] = vy[i] - dy * mass[j] / FP * mag / FP;
      vz[i] = vz[i] - dz * mass[j] / FP * mag / FP;
      vx[j] = vx[j] + dx * mass[i] / FP * mag / FP;
      vy[j] = vy[j] + dy * mass[i] / FP * mag / FP;
      vz[j] = vz[j] + dz * mass[i] / FP * mag / FP;
    }
  }
  for (i = 0; i < NBODIES; i++) {
    bx[i] = bx[i] + dt * vx[i] / FP;
    by[i] = by[i] + dt * vy[i] / FP;
    bz[i] = bz[i] + dt * vz[i] / FP;
  }
}

int energy() {
  int e = 0;
  int dx, dy, dz, d2, d;
  u32 i, j;
  for (i = 0; i < NBODIES; i++) {
    e = e + mass[i] *
            ((vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]) / FP) / FP / 2;
    for (j = i + 1; j < NBODIES; j++) {
      dx = bx[i] - bx[j];
      dy = by[i] - by[j];
      dz = bz[i] - bz[j];
      d2 = (dx * dx + dy * dy + dz * dz) / FP;
      if (d2 < 1) d2 = 1;
      d = isqrt(d2 * FP);
      if (d < 1) d = 1;
      e = e - mass[i] * mass[j] / d;
    }
  }
  return e;
}

void setup_bodies() {
  u32 i;
  for (i = 0; i < NBODIES; i++) {
    bx[i] = (int)(nrand() % (8 * FP)) - 4 * FP;
    by[i] = (int)(nrand() % (8 * FP)) - 4 * FP;
    bz[i] = (int)(nrand() % (8 * FP)) - 4 * FP;
    vx[i] = (int)(nrand() % FP) - FP / 2;
    vy[i] = (int)(nrand() % FP) - FP / 2;
    vz[i] = (int)(nrand() % FP) - FP / 2;
    mass[i] = FP + (int)(nrand() % (4 * FP));
  }
}

int main() {
  int e0, e1;
  u32 s;
  setup_bodies();
  offset_momentum();
  e0 = energy();
  for (s = 0; s < STEPS; s++) {
    advance(FP / 100);
  }
  e1 = energy();
  return (e0 - e1) & 0x7fffffff;
}
)";

} // namespace programs
} // namespace qcc
